#!/usr/bin/env bash
# clang-tidy over every translation unit in src/, tools/ and bench/, driven by the
# compile_commands.json that the top-level CMakeLists always exports
# (CMAKE_EXPORT_COMPILE_COMMANDS ON). Check selection and the documented
# exclusions live in .clang-tidy.
#
#   scripts/lint.sh [build_dir]
#
# The container image may not ship clang-tidy (only the GCC toolchain is
# guaranteed); in that case this is a documented skip, not a failure, so
# check.sh stays green on minimal images while CI images with LLVM get the
# full static-analysis pass.
set -euo pipefail

build_dir="${1:-build}"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "lint.sh: clang-tidy not installed; skipping static analysis" >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  cmake -B "$build_dir" -S .
fi

mapfile -t sources < <(find src tools bench -name '*.cpp' | sort)
echo "lint.sh: clang-tidy over ${#sources[@]} translation units"

if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -p "$build_dir" -quiet -warnings-as-errors='*' \
    "${sources[@]}"
else
  clang-tidy -p "$build_dir" --quiet --warnings-as-errors='*' \
    "${sources[@]}"
fi
echo "lint.sh: clean"
