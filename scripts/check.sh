#!/usr/bin/env bash
# Full verification: the tier-1 suite in the default build, example smoke
# tests (including run-artifact schema validation), the static
# forwarding-state verifier (tools/mifo-verify, docs/VERIFICATION.md), the
# clang-tidy pass (scripts/lint.sh — skipped when LLVM is absent), then the
# concurrency-sensitive tests once under ThreadSanitizer, the whole suite
# once under UBSan (MIFO_SANITIZE; see the top-level CMakeLists), and the
# gcov coverage leg (scripts/coverage.sh; MIFO_SKIP_COVERAGE=1 to skip).
#
#   scripts/check.sh [build_dir] [tsan_build_dir] [ubsan_build_dir] [cov_dir]
set -euo pipefail

build_dir="${1:-build}"
tsan_dir="${2:-build-tsan}"
ubsan_dir="${3:-build-ubsan}"
jobs="$(nproc)"

echo "=== tier-1: build + ctest (${build_dir}) ==="
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "=== examples: smoke tests + artifact validation ==="
artifact_dir="$(mktemp -d)"
trap 'rm -rf "$artifact_dir"' EXIT

"$build_dir"/examples/quickstart > /dev/null
# rib_explorer saves mifo_topology.txt into its cwd; keep that in the tmpdir.
rib_bin="$(cd "$build_dir" && pwd)/examples/rib_explorer"
(cd "$artifact_dir" && "$rib_bin" > /dev/null)
"$build_dir"/examples/convergence_demo 100 > /dev/null
"$build_dir"/examples/testbed_demo 2 4 > /dev/null

# loop_demo must show the two Algorithm-1 moments the paper hinges on:
# the valley-free Tag-Check drop and a detected deflection return.
loop_out="$("$build_dir"/examples/loop_demo)"
grep -q "tag-check-FAIL" <<< "$loop_out"
grep -q "return-detected" <<< "$loop_out"

# A small internet_scale run must emit a parseable, schema-conformant
# run artifact (docs/OBSERVABILITY.md, mifo.run_artifact.v1).
MIFO_ARTIFACT_DIR="$artifact_dir" MIFO_THREADS=0 \
  "$build_dir"/examples/internet_scale 200 2000 0.5 > /dev/null
python3 - "$artifact_dir/internet_scale.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    a = json.load(f)
assert a["schema"] == "mifo.run_artifact.v1", a.get("schema")
assert a["bench"] == "internet_scale"
assert {"topo_n", "flows"} <= a["scale"].keys()
assert len(a["arms"]) == 3, [arm["name"] for arm in a["arms"]]
for arm in a["arms"]:
    assert {"name", "mode", "deploy_ratio", "summary", "drops",
            "utilization"} <= arm.keys(), arm["name"]
    s = arm["summary"]
    assert {"total", "completed", "unreachable", "mean_throughput_mbps",
            "median_throughput_mbps", "frac_at_500mbps",
            "offload"} <= s.keys()
    assert s["completed"] + s["unreachable"] <= s["total"]
    assert arm["utilization"], "empty utilization series"
    for smp in arm["utilization"]:
        assert {"t", "mean_util", "max_util", "frac_congested",
                "total_spare_mbps", "active_flows"} <= smp.keys()
assert a["metrics"], "metrics snapshot missing"
for m in a["metrics"]:
    assert {"name", "kind", "value"} <= m.keys() or "bins" in m, m
print(f"artifact OK: {len(a['arms'])} arms, "
      f"{len(a['arms'][0]['utilization'])} samples, "
      f"{len(a['metrics'])} metrics")
PY

echo "=== mifo-verify: static loop-freedom proofs ==="
# The rib_explorer topology dump from the smoke test above, plus a fresh
# power-law topology, must both verify LOOP-FREE and lint-clean.
"$build_dir"/tools/mifo-verify -q --topo "$artifact_dir/mifo_topology.txt" \
  --dests 4
"$build_dir"/tools/mifo-verify -q --gen 300 --seed 11 --dests 8
# Negative control: a planted Eq.3 violation must be caught with a concrete
# router-level counterexample cycle (nonzero exit).
if mutated_out="$("$build_dir"/tools/mifo-verify --gen 120 --seed 7 \
    --dests 4 --mutate-valley)"; then
  echo "mifo-verify missed the planted cycle"
  exit 1
fi
grep -q "COUNTEREXAMPLE" <<< "$mutated_out"
grep -q "verdict: CYCLE-FOUND" <<< "$mutated_out"
# Incremental mode (docs/VERIFICATION.md): the warm pass must be pure
# cache on an unchanged deployment and the built-in differential pass must
# report verdicts identical to the from-scratch full provers.
inc_out="$("$build_dir"/tools/mifo-verify --gen 120 --seed 7 --dests 4 \
  --incremental)"
grep -q "cache hits" <<< "$inc_out"
grep -q "differential: incremental verdicts identical" <<< "$inc_out"
# Negative control: a planted forwarding blackhole (FIB entry evicted at a
# router its neighbor still forwards to) must be caught with a concrete
# witness walk (nonzero exit).
if bh_out="$("$build_dir"/tools/mifo-verify --gen 120 --seed 7 --dests 4 \
    --mutate-blackhole)"; then
  echo "mifo-verify missed the planted blackhole"
  exit 1
fi
grep -q "blackhole\[no-route\]" <<< "$bh_out"
grep -q "verdict: BLACKHOLE-FOUND" <<< "$bh_out"
echo "verifier OK: both topologies proved loop-free, incremental mode" \
     "agreed with the full provers, planted cycle and blackhole caught"

echo "=== mifo-chaos: safety under churn (docs/CHAOS.md) ==="
# A randomized chaos run must end SAFE-UNDER-CHURN (exit 0) and emit a
# schema-valid chaos artifact...
MIFO_ARTIFACT_DIR="$artifact_dir" \
  "$build_dir"/tools/mifo-chaos --gen --ases 36 --seed 5 --duration 0.8 \
  --flows 24 > /dev/null
python3 - "$artifact_dir/chaos_run.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    a = json.load(f)
assert a["schema"] == "mifo.run_artifact.v1", a.get("schema")
assert a["bench"] == "chaos_run"
assert {"topo_n", "flows", "seed"} <= a["scale"].keys()
c = a["chaos"]
assert c["safe"] is True
assert c["checks_run"] == c["checks_clean"] > 0
assert c["violations"] == []
assert c["events"], "empty event log"
assert c["events_applied"] > 0
for ev in c["events"]:
    assert {"t", "kind", "applied", "clean_immediate",
            "clean_reconverged"} <= ev.keys(), ev
latencies = [ev["recovery_latency"] for ev in c["events"]
             if "recovery_latency" in ev]
assert latencies and all(l >= 0 for l in latencies), latencies
assert {"drops", "metrics"} <= a.keys()
# Flight-recorder sections (docs/OBSERVABILITY.md): structured fault spans,
# the per-class recovery-latency table, the merged cross-shard timeline, and
# the top-congested-links snapshot.
spans = c["spans"]
assert spans and len(spans) == c["events_applied"], len(spans)
for sp in spans:
    assert {"event_index", "kind", "t_injected"} <= sp.keys(), sp
    if "t_first_impact" in sp:
        assert sp["t_first_impact"] >= sp["t_injected"], sp
    if "t_verified" in sp:
        assert sp["t_verified"] >= sp.get("t_reconverged",
                                          sp["t_injected"]), sp
rbc = c["recovery_by_class"]
assert rbc, "empty recovery_by_class"
for kind, row in rbc.items():
    assert row["count"] > 0 and row["min_s"] <= row["mean_s"] <= \
        row["max_s"], (kind, row)
tl = a["timeline"]
assert tl["events"], "empty merged timeline"
epochs = [ev["epoch"] for ev in tl["events"]]
assert epochs == sorted(epochs), "timeline not epoch-monotone"
assert a["links"], "empty congested-links snapshot"
for ln in a["links"]:
    assert {"router", "port", "bytes_sent"} <= ln.keys(), ln
print(f"chaos artifact OK: {c['events_applied']} events, "
      f"{c['checks_run']} clean snapshots, "
      f"{len(latencies)} recovery latencies, {len(spans)} spans, "
      f"{len(tl['events'])} timeline events")
PY
# ...bit-reproducibly: the same (topology, seed, plan) gives the same bytes.
mv "$artifact_dir/chaos_run.json" "$artifact_dir/chaos_run.first.json"
MIFO_ARTIFACT_DIR="$artifact_dir" \
  "$build_dir"/tools/mifo-chaos --gen --ases 36 --seed 5 --duration 0.8 \
  --flows 24 > /dev/null
diff "$artifact_dir/chaos_run.first.json" "$artifact_dir/chaos_run.json"
# Negative control: with a planted Eq.3-violating deflection ring the run
# must turn UNSAFE (exit 2) with a concrete counterexample cycle.
if chaos_out="$(MIFO_ARTIFACT_DIR=- "$build_dir"/tools/mifo-chaos --gen \
    --ases 36 --seed 5 --duration 0.8 --flows 24 --mutate-valley)"; then
  echo "mifo-chaos missed the planted violation"
  exit 1
fi
grep -q "COUNTEREXAMPLE" <<< "$chaos_out"
grep -q "cycle" <<< "$chaos_out"
grep -q "verdict: UNSAFE" <<< "$chaos_out"
# Incremental-vs-full differential gate (docs/VERIFICATION.md): a
# high-churn randomized run (>=100 applied events) in differential mode
# re-proves every snapshot both ways and must see zero divergences. The
# resulting artifact feeds the mifo-trace gates below, so the per-span
# verify-cost columns are exercised there too.
MIFO_ARTIFACT_DIR="$artifact_dir" \
  "$build_dir"/tools/mifo-chaos --gen --ases 36 --seed 5 --duration 3.0 \
  --rate 30 --flows 24 --verify-mode differential -q
python3 - "$artifact_dir/chaos_run.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    a = json.load(f)
c = a["chaos"]
assert c["verify_mode"] == "differential", c["verify_mode"]
assert c["events_applied"] >= 100, c["events_applied"]
assert c["safe"] is True
assert c["differential_mismatches"] == 0, c["differential_mismatches"]
assert c["checks_run"] == c["checks_clean"] > 0
# The proof cache must actually carry the run: most snapshots serve most
# destinations from cache instead of re-proving them.
assert c["total_cache_hits"] > c["total_dirty_destinations"], \
    (c["total_cache_hits"], c["total_dirty_destinations"])
spans = c["spans"]
assert spans and all({"dirty_destinations", "states_explored",
                      "cache_hits"} <= sp.keys() for sp in spans)
# The delta routing table mirrored the churn and the retained from-scratch
# route oracle agreed with every published segment at every snapshot.
assert c["route_events"] > 0, "no routing-plane events in a churn run"
assert c["route_differential_mismatches"] == 0, \
    c["route_differential_mismatches"]
assert c["total_route_recomputed"] > 0
span_recomputed = sum(sp["route_recomputed"] for sp in spans)
span_patched = sum(sp["route_patched"] for sp in spans)
assert span_recomputed == c["total_route_recomputed"]
assert span_patched == c["total_route_patched"]
print(f"chaos differential OK: {c['events_applied']} events, "
      f"{c['checks_run']} snapshots verified both ways, 0 mismatches, "
      f"{c['total_cache_hits']} cache hits vs "
      f"{c['total_dirty_destinations']} re-proofs, "
      f"{c['route_events']} route events delta-maintained clean")
PY
# Negative control for the route oracle: a planted stale route segment
# (delta recompute skipped, stats still claim the work) is invisible to the
# loop/valley/lint provers — only the from-scratch route differential can
# catch it, and it must (exit 2, route-differential counterexample).
if stale_out="$(MIFO_ARTIFACT_DIR=- "$build_dir"/tools/mifo-chaos --gen \
    --ases 36 --seed 5 --duration 0.8 --flows 24 --mutate-stale-route)"; then
  echo "mifo-chaos missed the planted stale route segment"
  exit 1
fi
grep -q "route-differential" <<< "$stale_out"
grep -q "verdict: UNSAFE" <<< "$stale_out"
echo "chaos OK: randomized churn proved safe, reproducible, planted" \
     "violation caught, incremental differential clean, stale route caught"

echo "=== mifo-trace: flight-recorder rendering (docs/OBSERVABILITY.md) ==="
# --check proves the merged timeline is epoch-monotone and every span
# causally ordered (exit 2 otherwise), and the human rendering must be
# byte-reproducible for the same artifact bytes.
"$build_dir"/tools/mifo-trace --check "$artifact_dir/chaos_run.json" \
  > /dev/null
"$build_dir"/tools/mifo-trace "$artifact_dir/chaos_run.json" \
  > "$artifact_dir/trace_render.first.txt"
"$build_dir"/tools/mifo-trace "$artifact_dir/chaos_run.json" \
  > "$artifact_dir/trace_render.second.txt"
diff "$artifact_dir/trace_render.first.txt" \
     "$artifact_dir/trace_render.second.txt"
grep -q "recovery latency by failure class" \
  "$artifact_dir/trace_render.first.txt"
# The differential-mode artifact above carries per-span verify-cost
# accounting; the span table must surface it.
grep -q "dirty" "$artifact_dir/trace_render.first.txt"
grep -q "cached" "$artifact_dir/trace_render.first.txt"
echo "mifo-trace OK: timeline checked, rendering byte-reproducible"

echo "=== sharded plane: sharded-vs-serial differential gate ==="
# The scaling bench doubles as the full-scale differential: every worker
# count must reproduce the serial oracle's outcome digest (per-flow
# completions + drop buckets + conservation totals; DESIGN.md §6). Reduced
# scale here — the committed BENCH_bench_sharded_plane.json carries the
# 1000+-router run.
MIFO_ARTIFACT_DIR="$artifact_dir" MIFO_TOPO_N=64 MIFO_FLOWS=16 \
  "$build_dir"/bench/bench_sharded_plane --benchmark_filter=none > /dev/null
python3 - "$artifact_dir/sharded_plane.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    a = json.load(f)
assert a["schema"] == "mifo.run_artifact.v1", a.get("schema")
assert a["bench"] == "sharded_plane"
assert a["scale"]["routers"] > 0
arms = {arm["name"]: arm for arm in a["arms"]}
assert {"serial", "1w", "2w", "4w", "8w"} <= arms.keys(), sorted(arms)
serial = arms["serial"]["outcome_digest"]
for name, arm in arms.items():
    s = arm["summary"]
    assert s["flows_done"] == s["flows_total"] > 0, name
    assert arm["outcome_digest"] == serial, (name, arm["outcome_digest"])
    assert arm["digest_matches_serial"] is True, name
    assert arm["rings"]["overflow"] == 0, name
    # Per-arm drop buckets must agree with the serial oracle (the digest
    # already covers them; this keeps the JSON section honest too). The
    # sharded arms add a ring_overflow bucket the serial plane cannot have.
    common = {k: v for k, v in arm["drops"].items() if k != "ring_overflow"}
    assert common == arms["serial"]["drops"], name
    assert arm["drops"].get("ring_overflow", 0) == 0, name
    # Arms with >=2 workers carry per-ring-pair occupancy stats; serial and
    # the single-worker arm have no cross-shard rings.
    pairs = arm["rings"]["pairs"]
    if name in ("serial", "1w"):
        assert pairs == [], name
    else:
        assert pairs, name
        for p in pairs:
            assert {"from", "to", "pushed", "overflow",
                    "occupancy_peak"} <= p.keys(), (name, p)
            assert p["overflow"] == 0, (name, p)
print(f"sharded differential OK: {len(arms)} arms bit-exact "
      f"({a['scale']['routers']} routers, digest {serial})")
PY

echo "=== incremental verifier: dirty-set cost + differential gate ==="
# Reduced-scale run of the verify-incremental bench (the committed
# BENCH_bench_verify_incremental.json carries the 1269-router figures):
# single-link and single-withdraw events must re-explore >=10x fewer
# states than the full provers, and every arm's incremental verdict must
# match the from-scratch oracle.
MIFO_ARTIFACT_DIR="$artifact_dir" MIFO_TOPO_N=120 \
  "$build_dir"/bench/bench_verify_incremental --benchmark_filter=none \
  > /dev/null
python3 - "$artifact_dir/verify_incremental.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    a = json.load(f)
assert a["schema"] == "mifo.run_artifact.v1", a.get("schema")
assert a["bench"] == "verify_incremental"
assert a["scale"]["routers"] > 0 and a["scale"]["destinations"] > 0
assert a["cold"]["destinations"] > 0 and a["cold"]["states_explored"] > 0
arms = {arm["name"]: arm for arm in a["arms"]}
assert {"link_down", "link_down_reconv", "withdraw"} <= arms.keys(), \
    sorted(arms)
for name, arm in arms.items():
    assert {"dirty_destinations", "states_explored", "cache_hits",
            "full_states", "reduction", "differential_match"} <= arm.keys()
    assert arm["differential_match"] is True, name
    assert arm["dirty_destinations"] + arm["cache_hits"] == \
        a["cold"]["destinations"], name
# The headline claims: a pure link event dirties nothing (the deflection
# graph never reads port state) and a single withdrawal stays local.
assert arms["link_down"]["dirty_destinations"] == 0
assert arms["link_down"]["reduction"] >= 10, arms["link_down"]["reduction"]
assert arms["withdraw"]["reduction"] >= 10, arms["withdraw"]["reduction"]
print(f"incremental verifier OK: {len(arms)} arms differential-clean, "
      f"link_down {arms['link_down']['reduction']:.0f}x / withdraw "
      f"{arms['withdraw']['reduction']:.0f}x fewer states than full")
PY

echo "=== delta routes: churn differential + recompute-reduction gate ==="
# Reduced-scale run of bench_route_delta (the committed
# BENCH_bench_route_delta.json carries the 1269-router figures): the seeded
# churn mix must stay oracle-identical (0 differential mismatches), the
# per-event accounting must partition the destination universe, and the
# delta engine must re-run the decision process >=10x less often than a
# rebuild-everything policy.
route_env=(MIFO_ARTIFACT_DIR="$artifact_dir" MIFO_TOPO_N=120
           MIFO_DEST_POOL=32 MIFO_EVENTS=120)
env "${route_env[@]}" "$build_dir"/bench/bench_route_delta \
  --benchmark_filter=none > /dev/null
python3 - "$artifact_dir/route_delta.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    a = json.load(f)
assert a["schema"] == "mifo.run_artifact.v1", a.get("schema")
assert a["bench"] == "route_delta"
assert {"topo_n", "routers", "destinations", "events", "seed"} <= \
    a["scale"].keys()
assert a["scale"]["routers"] > 0
c = a["churn"]
assert c["events_applied"] > 0
touched = c["destinations_recomputed"] + c["destinations_patched"]
assert touched + c["destinations_kept"] == \
    c["events_applied"] * a["scale"]["destinations"]
assert c["full_rebuild_work"] == \
    c["events_applied"] * a["scale"]["destinations"]
assert c["work_reduction"] >= 10, c["work_reduction"]
assert c["differential_checks"] > 0
assert c["differential_mismatches"] == 0, c["differential_mismatches"]
arms = {arm["name"]: arm for arm in a["arms"]}
assert {"withdraw", "reannounce", "session_down", "session_up"} == \
    arms.keys(), sorted(arms)
for name, arm in arms.items():
    assert {"events", "recomputed", "patched", "kept"} <= arm.keys(), name
# Prefix events touch exactly their origin destination.
for name in ("withdraw", "reannounce"):
    assert arms[name]["recomputed"] == arms[name]["events"], name
    assert arms[name]["patched"] == 0, name
assert "timing" in a  # stripped before the byte-reproducibility diff
print(f"route delta OK: {c['events_applied']} events, "
      f"{c['work_reduction']:.1f}x fewer decision runs, "
      f"{c['destinations_patched']} view patches, "
      f"{c['differential_checks']} oracle sweeps clean")
PY

# Same-seed byte-reproducibility (timing stripped, as for steady_state).
mv "$artifact_dir/route_delta.json" "$artifact_dir/route_delta.first.json"
env "${route_env[@]}" "$build_dir"/bench/bench_route_delta \
  --benchmark_filter=none > /dev/null
for f in route_delta.first.json route_delta.json; do
  python3 - "$artifact_dir/$f" "$artifact_dir/$f.stripped" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    a = json.load(f)
del a["timing"]
with open(sys.argv[2], "w") as f:
    json.dump(a, f, indent=1, sort_keys=True)
PY
done
diff "$artifact_dir/route_delta.first.json.stripped" \
     "$artifact_dir/route_delta.json.stripped"
echo "route delta artifact byte-reproducible (timing stripped)"

# The committed full-scale benchmark figures must back the headline claim:
# >=10x recompute reduction with a clean oracle at the 1269-router scale.
python3 - BENCH_bench_route_delta.json <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    a = json.load(f)
rows = {b["name"].split("/")[0]: b for b in a["benchmarks"]}
gate = rows["BM_ChurnWorkReduction"]
assert gate["work_reduction"] >= 10, gate["work_reduction"]
assert gate["differential_mismatches"] == 0, gate
assert gate["events"] > 0 and gate["destinations"] > 0
print(f"committed route-delta figures OK: {gate['work_reduction']:.1f}x "
      f"reduction over {gate['events']:.0f} events, 0 mismatches")
PY

echo "=== steady-state: open-loop workload + incremental max-min ==="
# Reduced-scale run of bench_steady_state (the committed
# BENCH_bench_steady_state.json carries the 12k-concurrent figures): the
# differential arm must reach its concurrency target with the from-scratch
# oracle matching bitwise on every event, and the incremental solver must
# beat the full re-solve by a wide margin even at smoke scale.
steady_env=(MIFO_ARTIFACT_DIR="$artifact_dir" MIFO_TOPO_N=200
            MIFO_STEADY_TARGET=400 MIFO_STEADY_ENDPOINTS=64
            MIFO_STEADY_DIFF_DURATION=4)
env "${steady_env[@]}" "$build_dir"/bench/bench_steady_state \
  --benchmark_filter=none > /dev/null
python3 - "$artifact_dir/steady_state.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    a = json.load(f)
assert a["schema"] == "mifo.run_artifact.v1", a.get("schema")
assert a["bench"] == "steady_state"
assert {"topo_n", "endpoints", "target_concurrent", "rho"} <= \
    a["scale"].keys()
target = a["scale"]["target_concurrent"]
wkl = a["workload"]
assert wkl["bottleneck_share"] > 0 and wkl["offered_mbps"] > 0
assert wkl["arrival_rate"] > 0 and wkl["flow_cap_mbps"] > 0
arms = {arm["name"]: arm for arm in a["arms"]}
assert {"BGP", "MIFO@100", "MIFO@100+chaos", "BGP+differential"} == \
    arms.keys(), sorted(arms)
for name, arm in arms.items():
    w = arm["workload"]
    assert w["generated"] > 0 and w["completed"] > 0, name
    s = w["solver"]
    assert s["events"] > 0 and s["reduction"] >= 2, (name, s["reduction"])
    assert s["differential_mismatches"] == 0, name
    assert len(w["throughput_cdf_of_cap"]) == 11, name
    assert len(arm["load"]) > 0, name
diff = arms["BGP+differential"]["workload"]
assert diff["solver"]["differential_checks"] >= diff["solver"]["events"]
assert diff["peak_active_flows"] >= target, \
    (diff["peak_active_flows"], target)
assert "timing" in a  # stripped before the byte-reproducibility diff
print(f"steady-state OK: diff arm peak {diff['peak_active_flows']} >= "
      f"{target}, {diff['solver']['differential_checks']} oracle checks "
      f"clean, reduction {diff['solver']['reduction']:.1f}x")
PY

# Same-seed byte-reproducibility: two runs must emit identical artifacts
# once the wall-clock timing section is dropped.
mv "$artifact_dir/steady_state.json" "$artifact_dir/steady_state.first.json"
env "${steady_env[@]}" "$build_dir"/bench/bench_steady_state \
  --benchmark_filter=none > /dev/null
for f in steady_state.first.json steady_state.json; do
  python3 - "$artifact_dir/$f" "$artifact_dir/$f.stripped" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    a = json.load(f)
del a["timing"]
with open(sys.argv[2], "w") as f:
    json.dump(a, f, indent=1, sort_keys=True)
PY
done
diff "$artifact_dir/steady_state.first.json.stripped" \
     "$artifact_dir/steady_state.json.stripped"
echo "steady-state artifact byte-reproducible (timing stripped)"

echo "=== clang-tidy (scripts/lint.sh) ==="
scripts/lint.sh "$build_dir"

echo "=== TSan: thread-pool + fluid-sim + sharded-plane + delta-route tests (${tsan_dir}) ==="
cmake -B "$tsan_dir" -S . -DMIFO_SANITIZE=thread
cmake --build "$tsan_dir" -j "$jobs" \
  --target test_common test_sim test_dataplane test_integration test_bgp
"$tsan_dir"/tests/test_common --gtest_filter='ThreadPool.*:ParallelFor.*:GlobalPool.*:SpscRing.*'
"$tsan_dir"/tests/test_sim --gtest_filter='FluidSim.*'
"$tsan_dir"/tests/test_dataplane --gtest_filter='ShardedNetwork.*'
"$tsan_dir"/tests/test_integration --gtest_filter='ShardedDifferential.*:ShardedFlightRecorder.*'
# scripts/tsan.supp masks libstdc++'s _Sp_atomic spinlock internals (a
# known TSan happens-before blind spot); our delta-table code stays
# instrumented.
TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp" \
  "$tsan_dir"/tests/test_bgp --gtest_filter='RouteDeltaEpochSwap.*'

echo "=== UBSan: full test suite (${ubsan_dir}) ==="
# -fno-sanitize-recover=all is wired in by the CMakeLists, so any UB aborts
# the test binary: green here means UB-free on every exercised path.
cmake -B "$ubsan_dir" -S . -DMIFO_SANITIZE=undefined
cmake --build "$ubsan_dir" -j "$jobs"
ctest --test-dir "$ubsan_dir" --output-on-failure -j "$jobs"

echo "=== coverage: gcov over the tier-1 suite (scripts/coverage.sh) ==="
if [[ "${MIFO_SKIP_COVERAGE:-0}" == "1" ]]; then
  echo "coverage: skipped (MIFO_SKIP_COVERAGE=1)"
else
  scripts/coverage.sh "${4:-build-cov}"
fi

echo "OK: tier-1 suite, example smoke tests, artifact schema, verifier," \
     "lint, TSan, UBSan, and coverage all passed"
