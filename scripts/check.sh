#!/usr/bin/env bash
# Full verification: the tier-1 suite in the default build, example smoke
# tests (including run-artifact schema validation), then the
# concurrency-sensitive tests (thread pool, fluid-sim warmup) once under
# ThreadSanitizer (MIFO_SANITIZE=thread; see the top-level CMakeLists).
#
#   scripts/check.sh [build_dir] [tsan_build_dir]
set -euo pipefail

build_dir="${1:-build}"
tsan_dir="${2:-build-tsan}"
jobs="$(nproc)"

echo "=== tier-1: build + ctest (${build_dir}) ==="
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "=== examples: smoke tests + artifact validation ==="
artifact_dir="$(mktemp -d)"
trap 'rm -rf "$artifact_dir"' EXIT

"$build_dir"/examples/quickstart > /dev/null
# rib_explorer saves mifo_topology.txt into its cwd; keep that in the tmpdir.
rib_bin="$(cd "$build_dir" && pwd)/examples/rib_explorer"
(cd "$artifact_dir" && "$rib_bin" > /dev/null)
"$build_dir"/examples/convergence_demo 100 > /dev/null
"$build_dir"/examples/testbed_demo 2 4 > /dev/null

# loop_demo must show the two Algorithm-1 moments the paper hinges on:
# the valley-free Tag-Check drop and a detected deflection return.
loop_out="$("$build_dir"/examples/loop_demo)"
grep -q "tag-check-FAIL" <<< "$loop_out"
grep -q "return-detected" <<< "$loop_out"

# A small internet_scale run must emit a parseable, schema-conformant
# run artifact (docs/OBSERVABILITY.md, mifo.run_artifact.v1).
MIFO_ARTIFACT_DIR="$artifact_dir" MIFO_THREADS=0 \
  "$build_dir"/examples/internet_scale 200 2000 0.5 > /dev/null
python3 - "$artifact_dir/internet_scale.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    a = json.load(f)
assert a["schema"] == "mifo.run_artifact.v1", a.get("schema")
assert a["bench"] == "internet_scale"
assert {"topo_n", "flows"} <= a["scale"].keys()
assert len(a["arms"]) == 3, [arm["name"] for arm in a["arms"]]
for arm in a["arms"]:
    assert {"name", "mode", "deploy_ratio", "summary", "drops",
            "utilization"} <= arm.keys(), arm["name"]
    s = arm["summary"]
    assert {"total", "completed", "unreachable", "mean_throughput_mbps",
            "median_throughput_mbps", "frac_at_500mbps",
            "offload"} <= s.keys()
    assert s["completed"] + s["unreachable"] <= s["total"]
    assert arm["utilization"], "empty utilization series"
    for smp in arm["utilization"]:
        assert {"t", "mean_util", "max_util", "frac_congested",
                "total_spare_mbps", "active_flows"} <= smp.keys()
assert a["metrics"], "metrics snapshot missing"
for m in a["metrics"]:
    assert {"name", "kind", "value"} <= m.keys() or "bins" in m, m
print(f"artifact OK: {len(a['arms'])} arms, "
      f"{len(a['arms'][0]['utilization'])} samples, "
      f"{len(a['metrics'])} metrics")
PY

echo "=== TSan: thread-pool + fluid-sim tests (${tsan_dir}) ==="
cmake -B "$tsan_dir" -S . -DMIFO_SANITIZE=thread
cmake --build "$tsan_dir" -j "$jobs" --target test_common test_sim
"$tsan_dir"/tests/test_common --gtest_filter='ThreadPool.*:ParallelFor.*:GlobalPool.*'
"$tsan_dir"/tests/test_sim --gtest_filter='FluidSim.*'

echo "OK: tier-1 suite, example smoke tests, artifact schema, and TSan all passed"
