#!/usr/bin/env bash
# Full verification: the tier-1 suite in the default build, then the
# concurrency-sensitive tests (thread pool, fluid-sim warmup) once under
# ThreadSanitizer (MIFO_SANITIZE=thread; see the top-level CMakeLists).
#
#   scripts/check.sh [build_dir] [tsan_build_dir]
set -euo pipefail

build_dir="${1:-build}"
tsan_dir="${2:-build-tsan}"
jobs="$(nproc)"

echo "=== tier-1: build + ctest (${build_dir}) ==="
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j "$jobs"
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"

echo "=== TSan: thread-pool + fluid-sim tests (${tsan_dir}) ==="
cmake -B "$tsan_dir" -S . -DMIFO_SANITIZE=thread
cmake --build "$tsan_dir" -j "$jobs" --target test_common test_sim
"$tsan_dir"/tests/test_common --gtest_filter='ThreadPool.*:ParallelFor.*:GlobalPool.*'
"$tsan_dir"/tests/test_sim --gtest_filter='FluidSim.*'

echo "OK: tier-1 suite and TSan concurrency tests all passed"
