#!/usr/bin/env bash
# Reproduce every table/figure of the paper plus the ablations.
#
#   scripts/run_experiments.sh [build_dir] [out_file]
#
# Environment knobs (see bench/bench_common.hpp):
#   MIFO_TOPO_N, MIFO_FLOWS, MIFO_DEST_POOL, MIFO_ARRIVAL, MIFO_SEED,
#   MIFO_FLOW_MB (Fig. 12), MIFO_FLOWS_PER_PAIR (Fig. 12)
set -euo pipefail

build_dir="${1:-build}"
out_file="${2:-/dev/stdout}"

{
  for b in "${build_dir}"/bench/bench_*; do
    [ -x "$b" ] || continue
    echo "##### $b"
    "$b"
    echo
  done
} | tee "$out_file"
