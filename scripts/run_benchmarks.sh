#!/usr/bin/env bash
# Record the performance trajectory: run the perf-critical benches with
# google-benchmark's JSON reporter and write BENCH_<name>.json at the repo
# root. Diff those files across commits to see hot-path regressions.
#
#   scripts/run_benchmarks.sh [build_dir]
#
# Environment knobs: MIFO_TOPO_N, MIFO_FLOWS, MIFO_DEST_POOL, MIFO_ARRIVAL,
# MIFO_SEED, MIFO_THREADS (see bench/bench_common.hpp and EXPERIMENTS.md).
set -euo pipefail

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

# Perf runs track timings, not figure outputs: suppress run-artifact JSON
# emission unless the caller asks for it.
export MIFO_ARTIFACT_DIR="${MIFO_ARTIFACT_DIR:--}"

benches=(
  bench_forwarding_engine
  bench_maxmin
  bench_fig5_throughput_deployment
  bench_sharded_plane
  bench_verify_incremental
  bench_route_delta
  bench_steady_state
)

for name in "${benches[@]}"; do
  bin="${build_dir}/bench/${name}"
  if [ ! -x "$bin" ]; then
    echo "missing ${bin} — build first (cmake --build ${build_dir} -j)" >&2
    exit 1
  fi
  out="${repo_root}/BENCH_${name}.json"
  echo "### ${name} -> ${out}"
  # The figure tables print to stdout; keep the JSON clean via benchmark_out.
  "$bin" --benchmark_out="$out" --benchmark_out_format=json \
         --benchmark_format=console
done
