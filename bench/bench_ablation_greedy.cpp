// Ablation A3 — alternative-selection policy. The paper's greedy picks the
// neighbor with the most *local* spare capacity (Section III-C). This sweep
// varies the two engineering knobs of our implementation: the spare margin
// an alternative must win by, and the allowed AS-path stretch; both default
// to conservative values because an unconstrained greedy deflects onto
// marginally-better, longer paths and wastes network capacity.

#include "bench_common.hpp"

namespace {

using namespace mifo;

void print_ablation() {
  const auto s = bench::load_scale(400, 8000, 64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);
  const auto deployed = traffic::random_deployment(g.num_ases(), 0.5,
                                                   s.seed * 7 + 5);

  std::printf("=== Ablation A3: greedy alternative-selection knobs ===\n");
  std::printf("%-8s %-12s %10s %10s %10s\n", "margin", "extra hops", "mean",
              ">=500", "offload");
  for (const double margin : {0.0, 0.2, 0.4}) {
    for (const std::uint16_t hops : {0, 1, 8}) {
      sim::SimConfig cfg;
      cfg.mode = sim::RoutingMode::Mifo;
      cfg.spare_margin = margin;
      cfg.max_extra_hops = hops;
      sim::FluidSim fs(g, cfg);
      fs.set_deployment(deployed);
      const auto sum = sim::summarize(fs.run(specs));
      std::printf("%-8.1f %-12u %9.0f %9.1f%% %9.1f%%\n", margin, hops,
                  sum.mean_throughput, 100.0 * sum.frac_at_500mbps,
                  100.0 * sum.offload);
    }
  }
  std::printf("(BGP baseline mean: %.0f Mbps)\n",
              sim::summarize(
                  bench::run_sim(g, specs, sim::RoutingMode::Bgp, 0.0, s.seed))
                  .mean_throughput);

  // The paper's design argument (Section III-C): local link monitoring
  // instead of end-to-end path probing. Quantify what the cheap signal
  // gives up against the probing oracle.
  std::printf("\n--- local link monitoring (paper) vs end-to-end probing ---\n");
  std::printf("%-16s %10s %10s %10s\n", "selection", "mean", ">=500",
              "offload");
  for (const auto sel : {core::AltSelection::LocalGreedy,
                         core::AltSelection::EndToEndProbe}) {
    sim::SimConfig cfg;
    cfg.mode = sim::RoutingMode::Mifo;
    cfg.alt_selection = sel;
    sim::FluidSim fs(g, cfg);
    fs.set_deployment(deployed);
    const auto sum = sim::summarize(fs.run(specs));
    std::printf("%-16s %9.0f %9.1f%% %9.1f%%\n",
                sel == core::AltSelection::LocalGreedy ? "local greedy"
                                                       : "e2e probe",
                sum.mean_throughput, 100.0 * sum.frac_at_500mbps,
                100.0 * sum.offload);
  }
}

void BM_GreedyRun(benchmark::State& state) {
  const auto s = bench::load_scale(400, 2000, 64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);
  sim::SimConfig cfg;
  cfg.mode = sim::RoutingMode::Mifo;
  cfg.spare_margin = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    sim::FluidSim fs(g, cfg);
    fs.set_deployment(traffic::random_deployment(g.num_ases(), 0.5, 1));
    benchmark::DoNotOptimize(fs.run(specs).size());
  }
}
BENCHMARK(BM_GreedyRun)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_ablation)
