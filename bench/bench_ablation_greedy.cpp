// Ablation A3 — alternative-selection policy. The paper's greedy picks the
// neighbor with the most *local* spare capacity (Section III-C). This sweep
// varies the two engineering knobs of our implementation: the spare margin
// an alternative must win by, and the allowed AS-path stretch; both default
// to conservative values because an unconstrained greedy deflects onto
// marginally-better, longer paths and wastes network capacity.

#include "bench_common.hpp"

namespace {

using namespace mifo;

void print_ablation() {
  const auto s = bench::load_scale(400, 8000, 64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);
  const std::vector<double> margins{0.0, 0.2, 0.4};
  const std::vector<std::uint16_t> hop_caps{0, 1, 8};

  // 3x3 knob grid + the two selection policies + the BGP baseline, one
  // concurrent run_arm arm each; everything lands in the run artifact.
  obs::Registry reg;
  const std::size_t grid = margins.size() * hop_caps.size();
  std::vector<bench::ArmResult> results(grid + 3);
  std::vector<std::function<void()>> arms;
  for (std::size_t mi = 0; mi < margins.size(); ++mi) {
    for (std::size_t hi = 0; hi < hop_caps.size(); ++hi) {
      arms.emplace_back([&, mi, hi] {
        sim::SimConfig cfg;
        cfg.spare_margin = margins[mi];
        cfg.max_extra_hops = hop_caps[hi];
        char suffix[32];
        std::snprintf(suffix, sizeof(suffix), ",m=%.1f,h=%u", margins[mi],
                      hop_caps[hi]);
        results[mi * hop_caps.size() + hi] =
            bench::run_arm(g, specs, sim::RoutingMode::Mifo, 0.5, s.seed,
                           &reg, 0.0, suffix, &cfg);
      });
    }
  }
  for (const auto sel : {core::AltSelection::LocalGreedy,
                         core::AltSelection::EndToEndProbe}) {
    const std::size_t slot =
        grid + (sel == core::AltSelection::LocalGreedy ? 0 : 1);
    arms.emplace_back([&, sel, slot] {
      sim::SimConfig cfg;
      cfg.alt_selection = sel;
      const char* suffix =
          sel == core::AltSelection::LocalGreedy ? ",sel=local" : ",sel=probe";
      results[slot] = bench::run_arm(g, specs, sim::RoutingMode::Mifo, 0.5,
                                     s.seed, &reg, 0.0, suffix, &cfg);
    });
  }
  arms.emplace_back([&] {
    results.back() =
        bench::run_arm(g, specs, sim::RoutingMode::Bgp, 0.0, s.seed, &reg);
  });
  bench::run_arms(s.threads, arms);

  std::printf("=== Ablation A3: greedy alternative-selection knobs ===\n");
  std::printf("%-8s %-12s %10s %10s %10s\n", "margin", "extra hops", "mean",
              ">=500", "offload");
  for (std::size_t mi = 0; mi < margins.size(); ++mi) {
    for (std::size_t hi = 0; hi < hop_caps.size(); ++hi) {
      const auto sum =
          sim::summarize(results[mi * hop_caps.size() + hi].records);
      std::printf("%-8.1f %-12u %9.0f %9.1f%% %9.1f%%\n", margins[mi],
                  hop_caps[hi], sum.mean_throughput,
                  100.0 * sum.frac_at_500mbps, 100.0 * sum.offload);
    }
  }
  std::printf("(BGP baseline mean: %.0f Mbps)\n",
              sim::summarize(results.back().records).mean_throughput);

  // The paper's design argument (Section III-C): local link monitoring
  // instead of end-to-end path probing. Quantify what the cheap signal
  // gives up against the probing oracle.
  std::printf("\n--- local link monitoring (paper) vs end-to-end probing ---\n");
  std::printf("%-16s %10s %10s %10s\n", "selection", "mean", ">=500",
              "offload");
  for (std::size_t i = 0; i < 2; ++i) {
    const auto sum = sim::summarize(results[grid + i].records);
    std::printf("%-16s %9.0f %9.1f%% %9.1f%%\n",
                i == 0 ? "local greedy" : "e2e probe", sum.mean_throughput,
                100.0 * sum.frac_at_500mbps, 100.0 * sum.offload);
  }
  bench::emit_run_artifact("ablation_greedy", s, results, &reg);
}

void BM_GreedyRun(benchmark::State& state) {
  const auto s = bench::load_scale(400, 2000, 64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);
  sim::SimConfig cfg;
  cfg.mode = sim::RoutingMode::Mifo;
  cfg.spare_margin = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    sim::FluidSim fs(g, cfg);
    fs.set_deployment(traffic::random_deployment(g.num_ases(), 0.5, 1));
    benchmark::DoNotOptimize(fs.run(specs).size());
  }
}
BENCHMARK(BM_GreedyRun)->Arg(0)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_ablation)
