// Open-loop steady-state experiment: the gravity/Poisson/bounded-Pareto
// workload engine drives FluidSim::run_stream at 10k+ concurrent flows,
// with the incremental max–min solver re-solving only the bottleneck
// component each arrival/departure touches.
//
// Arms:
//   BGP / MIFO@100      — long steady runs for the Fig.5/6-style
//                         throughput CDFs (scaled to the per-flow cap) and
//                         the per-event solve-work reduction headline
//   MIFO@100+chaos      — failure-during-flash-crowd composition: the
//                         busiest calibrated links degrade and flap inside
//                         the crowd window (chaos::apply_to_fluid_window)
//   BGP+differential    — a fast ramp to the concurrency target with the
//                         from-scratch oracle checked after EVERY event
//
// Calibration: per-link expected load is computed from the gravity weights
// over the endpoints' BGP default paths; the arrival rate is chosen so the
// most-loaded link sits at MIFO_STEADY_RHO utilization, and the per-flow
// cap at offered/target keeps the open-loop system near MIFO_STEADY_TARGET
// concurrent flows.
//
// Knobs (on top of bench_common's MIFO_TOPO_N / MIFO_SEED / MIFO_THREADS):
//   MIFO_STEADY_TARGET     target concurrent flows        (default 12000)
//   MIFO_STEADY_ENDPOINTS  gravity endpoints              (default 512)
//   MIFO_STEADY_RHO        bottleneck utilization target  (default 0.85)
//   MIFO_STEADY_DURATION   steady-arm sim seconds; 0 = auto (3x ramp time)
//   MIFO_STEADY_DIFF_DURATION  differential-arm ramp seconds (default 8)

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "chaos/fluid.hpp"
#include "chaos/plan.hpp"
#include "common/contracts.hpp"
#include "traffic/workload.hpp"

namespace {

using namespace mifo;

struct SteadyScale {
  bench::Scale base;
  std::size_t target;
  std::size_t endpoints;
  double rho;
  double duration;       ///< 0 = auto
  double diff_duration;
};

SteadyScale load_steady_scale() {
  SteadyScale s;
  s.base = bench::load_scale(/*topo_n=*/1500, /*flows=*/0, /*dest_pool=*/0,
                             /*arrival=*/0.0);
  s.target = env_u64("MIFO_STEADY_TARGET", 12000);
  s.endpoints = env_u64("MIFO_STEADY_ENDPOINTS", 512);
  s.rho = env_double("MIFO_STEADY_RHO", 0.85);
  s.duration = env_double("MIFO_STEADY_DURATION", 0.0);
  s.diff_duration = env_double("MIFO_STEADY_DIFF_DURATION", 8.0);
  return s;
}

/// Calibrated open-loop operating point.
struct Calibration {
  double bottleneck_share = 0.0;  ///< worst link's fraction of offered load
  double offered_mbps = 0.0;
  double lambda = 0.0;            ///< arrivals/s
  double flow_cap = 0.0;          ///< Mbps
  double mean_flow_mb = 0.0;      ///< megabits
  double ramp = 0.0;              ///< seconds to reach `target` concurrent
  std::vector<std::uint32_t> hot_links;  ///< busiest directed links
};

traffic::WorkloadParams base_params(const SteadyScale& s) {
  traffic::WorkloadParams wp;
  wp.seed = s.base.seed * 11 + 3;
  wp.max_endpoints = s.endpoints;
  wp.pareto_alpha = 1.3;
  wp.size_min = 1 * kMegaByte;
  wp.size_max = 1000 * kMegaByte;
  return wp;
}

/// Expected per-link load from the gravity marginals over the endpoints'
/// BGP default paths: load[l] = sum over (s,d) pairs of w_s * w_d whose
/// default path crosses l, as a fraction of total offered traffic. The
/// worst link pins the arrival rate for a given utilization target.
Calibration calibrate(const topo::AsGraph& g, const SteadyScale& s) {
  traffic::WorkloadParams wp = base_params(s);
  wp.arrival_rate = 1.0;  // placeholder; only endpoints/sizes matter here
  wp.duration = 1.0;
  traffic::WorkloadEngine probe(g, wp);
  const auto& eps = probe.endpoints();
  const auto& w = probe.marginals();

  sim::SimConfig cfg;
  cfg.mode = sim::RoutingMode::Bgp;
  sim::FluidSim paths(g, cfg);
  std::vector<double> load(g.num_directed_links(), 0.0);
  for (std::size_t di = 0; di < eps.size(); ++di) {
    const bgp::RouteStore& store = paths.routes_for(eps[di]);
    for (std::size_t si = 0; si < eps.size(); ++si) {
      if (si == di) continue;
      const auto walk = core::bgp_walk(g, store, eps[si]);
      if (!walk.reachable) continue;
      const double share = w[si] * w[di];
      for (const LinkId l : walk.links) load[l.value()] += share;
    }
  }

  Calibration c;
  c.mean_flow_mb = probe.mean_flow_megabits();
  std::uint32_t worst = 0;
  for (std::uint32_t l = 0; l < load.size(); ++l) {
    if (load[l] > load[worst]) worst = l;
  }
  c.bottleneck_share = load[worst];
  MIFO_EXPECTS(c.bottleneck_share > 0.0);
  c.offered_mbps = s.rho * kGigabit / c.bottleneck_share;
  c.lambda = c.offered_mbps / c.mean_flow_mb;
  c.flow_cap = std::clamp(
      c.offered_mbps / static_cast<double>(s.target), 0.05, kGigabit);
  c.ramp = static_cast<double>(s.target) / c.lambda;

  // Busiest directed links, for the chaos arm's targeted failures.
  std::vector<std::uint32_t> order(load.size());
  for (std::uint32_t l = 0; l < load.size(); ++l) order[l] = l;
  std::sort(order.begin(), order.end(), [&load](std::uint32_t a,
                                                std::uint32_t b) {
    return load[a] != load[b] ? load[a] > load[b] : a < b;
  });
  for (std::size_t i = 0; i < order.size() && c.hot_links.size() < 3; ++i) {
    // Keep one direction per adjacency (the twin is failed alongside).
    const LinkId l(order[i]);
    const LinkId twin = g.twin(l);
    if (std::find(c.hot_links.begin(), c.hot_links.end(), twin.value()) ==
        c.hot_links.end()) {
      c.hot_links.push_back(l.value());
    }
  }
  return c;
}

/// Mean flow duration *within a run of length T*: flows run at the cap
/// when uncongested, so duration ~ size/cap, but heavy-tail elephants
/// outlive any finite horizon — the concurrency an open-loop run actually
/// builds is lambda * integral_0^T P(size > cap*u) du, not lambda*E[size]/cap.
double effective_mean_duration(const traffic::WorkloadParams& wp, double cap,
                               double horizon) {
  const double lo = to_megabits(wp.size_min);
  const double hi = to_megabits(wp.size_max);
  const double a = wp.pareto_alpha;
  const double tail = std::pow(lo / hi, a);
  const auto survival = [&](double megabits) {
    if (megabits <= lo) return 1.0;
    if (megabits >= hi) return 0.0;
    return (std::pow(lo / megabits, a) - tail) / (1.0 - tail);
  };
  const int steps = 4096;
  const double dt = horizon / steps;
  double integral = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double u = (static_cast<double>(i) + 0.5) * dt;
    integral += survival(cap * u) * dt;
  }
  return integral;
}

struct SteadyArm {
  std::string name;
  std::string mode;
  sim::StreamResult res;
  double lambda = 0.0;
  double duration = 0.0;
};

sim::SimConfig arm_config(const SteadyScale& s, const Calibration& c,
                          sim::RoutingMode mode) {
  sim::SimConfig cfg;
  cfg.mode = mode;
  cfg.flow_rate_cap = c.flow_cap;
  cfg.threads = s.base.threads;
  // At thousands of concurrent flows a 0.1s daemon tick dominates runtime;
  // re-evaluate on the paper's 1s telemetry period instead.
  cfg.reeval_interval = 1.0;
  return cfg;
}

SteadyArm run_steady_arm(const topo::AsGraph& g, const SteadyScale& s,
                         const Calibration& c, sim::RoutingMode mode,
                         double duration, bool chaos_arm,
                         obs::Registry& reg) {
  SteadyArm arm;
  arm.mode = sim::to_string(mode);
  arm.name = mode == sim::RoutingMode::Bgp ? "BGP" : "MIFO@100";
  if (chaos_arm) arm.name += "+chaos";
  arm.lambda = c.lambda;
  arm.duration = duration;

  traffic::WorkloadParams wp = base_params(s);
  wp.arrival_rate = c.lambda;
  wp.duration = duration;
  sim::FluidSim fs(g, arm_config(s, c, mode));
  fs.attach_registry(reg, "arm=" + arm.name);
  if (mode != sim::RoutingMode::Bgp) {
    fs.set_deployment(std::vector<bool>(g.num_ases(), true));
  }

  if (chaos_arm) {
    // Flash crowd over the middle fifth of the run, and the calibrated
    // bottleneck links degrade then flap inside that window.
    traffic::FlashCrowd fc;
    fc.start = 0.4 * duration;
    fc.duration = 0.2 * duration;
    fc.rate_multiplier = 2.0;
    fc.hotspot_share = 0.3;
    wp.flash_crowds.push_back(fc);

    chaos::Plan plan;
    plan.duration = 1.0;
    for (std::size_t i = 0; i < c.hot_links.size(); ++i) {
      chaos::Event down;
      down.t = 0.1 + 0.2 * static_cast<double>(i);
      down.kind = i == 0 ? chaos::EventKind::LinkDown
                         : chaos::EventKind::Degrade;
      down.value = 0.25;
      down.a = g.link_from(LinkId(c.hot_links[i]));
      down.b = g.link_to(LinkId(c.hot_links[i]));
      plan.events.push_back(down);
      chaos::Event up = down;
      up.t = down.t + 0.3;
      up.kind = i == 0 ? chaos::EventKind::LinkUp : chaos::EventKind::Restore;
      plan.events.push_back(up);
    }
    plan.normalize();
    (void)chaos::apply_to_fluid_window(plan, g, fs, fc.start, fc.duration);
  }

  traffic::WorkloadEngine eng(g, wp);
  sim::StreamConfig sc;
  sc.epoch = std::max(0.25, duration / 80.0);
  sc.max_time = duration;  // truncate instead of draining the tail
  sc.measure_solve_latency = mode != sim::RoutingMode::Bgp && !chaos_arm;
  arm.res = fs.run_stream(eng, sc);
  return arm;
}

/// Fast ramp to the concurrency target with the from-scratch oracle
/// asserted after every solver event.
SteadyArm run_differential_arm(const topo::AsGraph& g, const SteadyScale& s,
                               const Calibration& c, obs::Registry& reg) {
  SteadyArm arm;
  arm.mode = "BGP";
  arm.name = "BGP+differential";
  arm.duration = s.diff_duration;
  // Flows complete during the ramp (M/G/inf: N(T) = lambda*D*(1-e^-T/D)
  // with D the mean at-cap duration), so size lambda to clear the target
  // with 10% headroom even if every flow runs at the full cap. Congestion
  // only stretches durations, i.e. raises concurrency further.
  const double mean_duration = c.mean_flow_mb / c.flow_cap;
  const double ramp_fill = 1.0 - std::exp(-s.diff_duration / mean_duration);
  arm.lambda = 1.1 * static_cast<double>(s.target) /
               (mean_duration * ramp_fill);

  traffic::WorkloadParams wp = base_params(s);
  wp.seed = s.base.seed * 17 + 7;
  wp.arrival_rate = arm.lambda;
  wp.duration = s.diff_duration;
  sim::FluidSim fs(g, arm_config(s, c, sim::RoutingMode::Bgp));
  fs.attach_registry(reg, "arm=" + arm.name);
  traffic::WorkloadEngine eng(g, wp);
  sim::StreamConfig sc;
  sc.epoch = std::max(0.25, s.diff_duration / 16.0);
  sc.differential = true;
  sc.max_time = s.diff_duration;
  arm.res = fs.run_stream(eng, sc);
  return arm;
}

/// CDF of completed-flow throughput as a fraction of the per-flow cap
/// (the cap plays the access-link role of the paper's 1 Gbps bins).
std::vector<double> cap_cdf(const SteadyArm& arm, double cap) {
  std::vector<double> frac;
  for (const auto& r : arm.res.records) {
    if (r.completed) frac.push_back(r.throughput() / cap);
  }
  std::sort(frac.begin(), frac.end());
  std::vector<double> cdf(11, 1.0);
  if (frac.empty()) return cdf;
  for (int b = 0; b <= 10; ++b) {
    const double x = 0.1 * b;
    const auto it = std::upper_bound(frac.begin(), frac.end(), x);
    cdf[static_cast<std::size_t>(b)] =
        static_cast<double>(it - frac.begin()) / static_cast<double>(frac.size());
  }
  return cdf;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1));
  return v[idx];
}

obs::Json arm_workload_json(const SteadyArm& arm, double cap) {
  const auto& st = arm.res.solver;
  obs::Json j = obs::Json::object();
  j.set("name", obs::Json::str(arm.name));
  j.set("mode", obs::Json::str(arm.mode));
  j.set("arrival_rate", obs::Json::num(arm.lambda));
  j.set("duration", obs::Json::num(arm.res.duration));
  j.set("truncated", obs::Json::boolean(arm.res.truncated));

  obs::Json wkl = obs::Json::object();
  wkl.set("peak_active_flows", obs::Json::num(arm.res.peak_active));
  std::uint64_t completed = 0;
  std::uint64_t unreachable = 0;
  double delivered_mb = 0.0;
  for (const auto& r : arm.res.records) {
    if (r.completed) {
      ++completed;
      delivered_mb += to_megabits(r.spec.size);
    }
    if (r.unreachable) ++unreachable;
  }
  wkl.set("generated", obs::Json::num(
                           static_cast<std::uint64_t>(arm.res.records.size())));
  wkl.set("completed", obs::Json::num(completed));
  wkl.set("unreachable", obs::Json::num(unreachable));
  wkl.set("delivered_megabits", obs::Json::num(delivered_mb));

  obs::Json solver = obs::Json::object();
  solver.set("events", obs::Json::num(st.events));
  solver.set("components_solved", obs::Json::num(st.components_solved));
  solver.set("flows_resolved", obs::Json::num(st.flows_resolved));
  solver.set("incidences_resolved", obs::Json::num(st.incidences_resolved));
  solver.set("full_incidences", obs::Json::num(st.full_incidences));
  solver.set("peak_component", obs::Json::num(st.peak_component));
  solver.set("reduction", obs::Json::num(st.reduction()));
  solver.set("differential_checks", obs::Json::num(st.differential_checks));
  solver.set("differential_mismatches",
             obs::Json::num(st.differential_mismatches));
  wkl.set("solver", std::move(solver));

  obs::Json cdf = obs::Json::array();
  for (const double v : cap_cdf(arm, cap)) cdf.push(obs::Json::num(v));
  wkl.set("throughput_cdf_of_cap", std::move(cdf));
  j.set("workload", std::move(wkl));
  j.set("load", obs::to_json(arm.res.load));
  return j;
}

// Headline numbers stashed for the counter-export benchmark below.
double g_peak_active = 0.0;
double g_reduction = 0.0;
double g_diff_checks = 0.0;
double g_diff_mismatches = 0.0;
double g_diff_peak = 0.0;

void print_steady_state() {
  const SteadyScale s = load_steady_scale();
  const topo::AsGraph g = bench::make_topology(s.base);

  std::printf("bench_steady_state: %zu ASes, %zu endpoints, target %zu "
              "concurrent, rho %.2f (seed %llu)\n",
              g.num_ases(), s.endpoints, s.target, s.rho,
              static_cast<unsigned long long>(s.base.seed));

  const Calibration c = calibrate(g, s);
  const double duration =
      s.duration > 0.0 ? s.duration : std::max(20.0, 3.0 * c.ramp);
  std::printf("calibration: bottleneck share %.4f of offered -> offered "
              "%.0f Mbps, lambda %.1f flows/s, flow cap %.3f Mbps, mean "
              "flow %.1f Mb, ramp %.1fs, duration %.1fs\n",
              c.bottleneck_share, c.offered_mbps, c.lambda, c.flow_cap,
              c.mean_flow_mb, c.ramp, duration);

  // Heavy-tail horizon correction for the steady arms: elephants outlive
  // the run, so the mean duration seen *inside* it is shorter than
  // E[size]/cap and the naive lambda undershoots the concurrency target.
  // Rescaling lambda to target/D_eff(T) restores the design point — end-of-
  // run consumed bandwidth ~ target*cap = offered, i.e. bottleneck at rho.
  Calibration cs = c;
  const double d_eff = effective_mean_duration(base_params(s), c.flow_cap,
                                               duration);
  cs.lambda = static_cast<double>(s.target) / d_eff;
  std::printf("heavy-tail correction: effective mean duration %.1fs within "
              "%.1fs horizon -> steady lambda %.1f flows/s\n",
              d_eff, duration, cs.lambda);

  obs::Registry reg;
  std::vector<SteadyArm> arms;
  arms.push_back(run_steady_arm(g, s, cs, sim::RoutingMode::Bgp, duration,
                                /*chaos_arm=*/false, reg));
  arms.push_back(run_steady_arm(g, s, cs, sim::RoutingMode::Mifo, duration,
                                /*chaos_arm=*/false, reg));
  arms.push_back(run_steady_arm(g, s, cs, sim::RoutingMode::Mifo, duration,
                                /*chaos_arm=*/true, reg));
  arms.push_back(run_differential_arm(g, s, c, reg));
  const SteadyArm& mifo_arm = arms[1];
  const SteadyArm& diff_arm = arms.back();

  std::printf("\n=== steady-state arms ===\n");
  std::printf("%-18s %10s %10s %12s %12s %10s %14s\n", "arm", "flows",
              "peak", "events", "reduction", "peak-comp", "diff");
  for (const SteadyArm& a : arms) {
    const auto& st = a.res.solver;
    char diff[32];
    if (st.differential_checks > 0) {
      std::snprintf(diff, sizeof(diff), "%llu/%llu ok",
                    static_cast<unsigned long long>(
                        st.differential_checks - st.differential_mismatches),
                    static_cast<unsigned long long>(st.differential_checks));
    } else {
      std::snprintf(diff, sizeof(diff), "-");
    }
    std::printf("%-18s %10zu %10llu %12llu %11.1fx %10llu %14s\n",
                a.name.c_str(), a.res.records.size(),
                static_cast<unsigned long long>(a.res.peak_active),
                static_cast<unsigned long long>(st.events), st.reduction(),
                static_cast<unsigned long long>(st.peak_component), diff);
  }

  std::printf("\n=== throughput CDF (fraction of %.3f Mbps cap) ===\n",
              c.flow_cap);
  std::printf("%-12s", "<=cap*");
  for (const SteadyArm& a : arms) std::printf("%18s", a.name.c_str());
  std::printf("\n");
  std::vector<std::vector<double>> cdfs;
  cdfs.reserve(arms.size());
  for (const SteadyArm& a : arms) cdfs.push_back(cap_cdf(a, c.flow_cap));
  for (int b = 0; b <= 10; ++b) {
    std::printf("%-12.1f", 0.1 * b);
    for (const auto& cdf : cdfs) {
      std::printf("%17.1f%%", 100.0 * cdf[static_cast<std::size_t>(b)]);
    }
    std::printf("\n");
  }

  std::printf("\n=== incremental re-solve latency (MIFO arm, %llu peak "
              "concurrent) ===\n",
              static_cast<unsigned long long>(mifo_arm.res.peak_active));
  const auto& lat = mifo_arm.res.solve_seconds;
  std::printf("events %zu  p50 %.2fus  p99 %.2fus  p999 %.2fus  max %.2fus\n",
              lat.size(), 1e6 * percentile(lat, 0.5),
              1e6 * percentile(lat, 0.99), 1e6 * percentile(lat, 0.999),
              1e6 * percentile(lat, 1.0));

  g_peak_active = static_cast<double>(mifo_arm.res.peak_active);
  g_reduction = mifo_arm.res.solver.reduction();
  g_diff_checks =
      static_cast<double>(diff_arm.res.solver.differential_checks);
  g_diff_mismatches =
      static_cast<double>(diff_arm.res.solver.differential_mismatches);
  g_diff_peak = static_cast<double>(diff_arm.res.peak_active);

  // --- run artifact (mifo.run_artifact.v1 + workload sections) -------------
  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json::str("mifo.run_artifact.v1"));
  root.set("bench", obs::Json::str("steady_state"));
  obs::Json scale = obs::Json::object();
  scale.set("topo_n",
            obs::Json::num(static_cast<std::uint64_t>(s.base.topo_n)));
  scale.set("flows", obs::Json::num(static_cast<std::uint64_t>(
                         arms[0].res.records.size())));
  scale.set("endpoints",
            obs::Json::num(static_cast<std::uint64_t>(s.endpoints)));
  scale.set("target_concurrent",
            obs::Json::num(static_cast<std::uint64_t>(s.target)));
  scale.set("rho", obs::Json::num(s.rho));
  scale.set("seed", obs::Json::num(static_cast<std::uint64_t>(s.base.seed)));
  root.set("scale", std::move(scale));

  obs::Json wkl = obs::Json::object();
  wkl.set("bottleneck_share", obs::Json::num(c.bottleneck_share));
  wkl.set("offered_mbps", obs::Json::num(c.offered_mbps));
  wkl.set("arrival_rate", obs::Json::num(c.lambda));
  wkl.set("arrival_rate_steady", obs::Json::num(cs.lambda));
  wkl.set("effective_mean_duration", obs::Json::num(d_eff));
  wkl.set("flow_cap_mbps", obs::Json::num(c.flow_cap));
  wkl.set("mean_flow_megabits", obs::Json::num(c.mean_flow_mb));
  wkl.set("ramp_seconds", obs::Json::num(c.ramp));
  wkl.set("duration", obs::Json::num(duration));
  wkl.set("pareto_alpha", obs::Json::num(base_params(s).pareto_alpha));
  root.set("workload", std::move(wkl));

  obs::Json ja = obs::Json::array();
  for (const SteadyArm& a : arms) ja.push(arm_workload_json(a, c.flow_cap));
  root.set("arms", std::move(ja));
  root.set("metrics", obs::to_json(reg.snapshot()));

  // Wall-clock data is nondeterministic; artifact consumers byte-compare
  // same-seed runs after dropping this section (scripts/check.sh).
  obs::Json timing = obs::Json::object();
  timing.set("solve_events",
             obs::Json::num(static_cast<std::uint64_t>(lat.size())));
  timing.set("solve_p50_us", obs::Json::num(1e6 * percentile(lat, 0.5)));
  timing.set("solve_p99_us", obs::Json::num(1e6 * percentile(lat, 0.99)));
  timing.set("solve_p999_us", obs::Json::num(1e6 * percentile(lat, 0.999)));
  timing.set("solve_max_us", obs::Json::num(1e6 * percentile(lat, 1.0)));
  root.set("timing", std::move(timing));

  const std::string path = obs::write_artifact("steady_state", root);
  if (!path.empty()) std::printf("\nartifact: %s\n", path.c_str());
}

/// Timing benchmark: one open-loop streaming event (arrival or departure)
/// through the incremental solver at a few hundred concurrent flows.
void BM_StreamOpenLoop(benchmark::State& state) {
  topo::GeneratorParams gp;
  gp.num_ases = 300;
  gp.seed = 5;
  const topo::AsGraph g = topo::generate_topology(gp);
  traffic::WorkloadParams wp;
  wp.seed = 9;
  wp.arrival_rate = 400.0;
  wp.duration = 2.0;
  wp.max_endpoints = 64;
  sim::SimConfig cfg;
  cfg.mode = sim::RoutingMode::Bgp;
  cfg.flow_rate_cap = 20.0;
  sim::FluidSim fs(g, cfg);
  std::uint64_t events = 0;
  for (auto _ : state) {
    traffic::WorkloadEngine eng(g, wp);
    sim::StreamConfig sc;
    const auto res = fs.run_stream(eng, sc);
    events = res.solver.events;
    benchmark::DoNotOptimize(res.peak_active);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(events * state.iterations()));
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_StreamOpenLoop)->Unit(benchmark::kMillisecond);

/// Incremental vs from-scratch on one synthetic event at N concurrent
/// flows: the microbenchmark behind the reduction headline.
void BM_IncrementalArrivalAtN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(17);
  const std::size_t links = 4096;
  std::vector<double> caps(links, kGigabit);
  sim::IncrementalMaxMin inc(caps, 2.0);
  std::vector<std::uint32_t> path(4);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& l : path) l = static_cast<std::uint32_t>(rng.bounded(links));
    (void)inc.add_flow(path);
  }
  for (auto _ : state) {
    for (auto& l : path) l = static_cast<std::uint32_t>(rng.bounded(links));
    const auto slot = inc.add_flow(path);
    benchmark::DoNotOptimize(inc.rate(slot));
    inc.remove_flow(slot);
  }
  state.counters["reduction"] = inc.stats().reduction();
}
BENCHMARK(BM_IncrementalArrivalAtN)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

/// Exports the figure-run headline counters into the benchmark JSON so the
/// committed BENCH_bench_steady_state.json carries them.
void BM_SteadyStateSummary(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_peak_active);
  }
  state.counters["peak_active_flows"] = g_peak_active;
  state.counters["solve_reduction"] = g_reduction;
  state.counters["diff_peak_active"] = g_diff_peak;
  state.counters["diff_checks"] = g_diff_checks;
  state.counters["diff_mismatches"] = g_diff_mismatches;
}
BENCHMARK(BM_SteadyStateSummary);

}  // namespace

MIFO_BENCH_MAIN(print_steady_state)
