// Fig. 12 — testbed experiment on the Fig. 11 topology (packet-level
// emulation of the paper's 15-machine prototype deployment).
//
// Paper headlines: aggregate throughput 1.7 Gbps (MIFO) vs 0.94 Gbps (BGP),
// +81%; all MIFO flows complete within 1.1 s while 80% of BGP flows take
// more than 1.6 s; the whole workload finishes in 30 s vs 51 s.
//
// Default here: 10 MB flows (sub-minute run). MIFO_FLOW_MB=100 reproduces
// the paper's exact 100 MB x 30-flow workload.

#include <algorithm>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "testbed/fig11.hpp"

namespace {

using namespace mifo;

void print_fig12() {
  testbed::Fig12Params params;
  params.flow_size = env_u64("MIFO_FLOW_MB", 10) * kMegaByte;
  params.flows_per_pair = env_u64("MIFO_FLOWS_PER_PAIR", 30);
  params.bucket = 0.25;
  params.link_sample_interval = 0.05;

  // The two emulation arms are independent (each owns its Network); fan
  // them out over the shared pool like the fluid-sim benches do.
  testbed::Fig12Result res[2];
  std::vector<std::function<void()>> arms;
  for (const bool with_mifo : {false, true}) {
    arms.emplace_back([&params, &res, with_mifo] {
      testbed::Fig12Params p = params;
      p.mifo = with_mifo;
      res[with_mifo ? 1 : 0] = testbed::run_fig12(p);
    });
  }
  bench::run_arms(default_thread_count(), arms);
  const auto& bgp = res[0];
  const auto& mifo = res[1];

  std::printf("=== Fig. 12(a): aggregate throughput over time (Gbps) ===\n");
  std::printf("%-10s %10s %10s\n", "time(s)", "BGP", "MIFO");
  const std::size_t buckets =
      std::max(bgp.throughput_gbps.size(), mifo.throughput_gbps.size());
  for (std::size_t b = 0; b < buckets; ++b) {
    auto at = [b](const testbed::Fig12Result& r) {
      return b < r.throughput_gbps.size() ? r.throughput_gbps[b] : 0.0;
    };
    std::printf("%-10.2f %10.2f %10.2f\n",
                static_cast<double>(b) * bgp.bucket, at(bgp), at(mifo));
  }
  std::printf("aggregate: BGP %.2f Gbps, MIFO %.2f Gbps -> +%.0f%% "
              "(paper: 0.94 vs 1.7, +81%%)\n",
              bgp.aggregate_gbps, mifo.aggregate_gbps,
              100.0 * (mifo.aggregate_gbps / bgp.aggregate_gbps - 1.0));
  std::printf("workload completion: BGP %.2f s, MIFO %.2f s "
              "(paper: 51 s vs 30 s at 100 MB)\n",
              bgp.total_time, mifo.total_time);

  std::printf("\n=== Fig. 12(b): flow completion time CDF ===\n");
  Cdf bgp_cdf;
  bgp_cdf.add_all(bgp.fct);
  Cdf mifo_cdf;
  mifo_cdf.add_all(mifo.fct);
  const double hi = std::max(bgp_cdf.quantile(1.0), mifo_cdf.quantile(1.0));
  std::printf("%-14s %10s %10s\n", "FCT (s)", "BGP", "MIFO");
  for (int i = 0; i <= 10; ++i) {
    const double x = hi * i / 10.0;
    std::printf("%-14.3f %9.1f%% %9.1f%%\n", x, 100.0 * bgp_cdf.at(x),
                100.0 * mifo_cdf.at(x));
  }
  std::printf("median FCT: BGP %.3f s, MIFO %.3f s; max: BGP %.3f s, "
              "MIFO %.3f s\n",
              bgp_cdf.quantile(0.5), mifo_cdf.quantile(0.5),
              bgp_cdf.quantile(1.0), mifo_cdf.quantile(1.0));
  std::printf("MIFO deflected %llu pkts, %llu IP-in-IP encaps, %llu flow "
              "switches, 0 loops (ttl_drops=%llu)\n",
              static_cast<unsigned long long>(mifo.counters.deflected),
              static_cast<unsigned long long>(mifo.counters.encapsulated),
              static_cast<unsigned long long>(mifo.counters.flow_switches),
              static_cast<unsigned long long>(mifo.counters.ttl_drops));

  // Run artifact with the per-link congestion traces (packet plane).
  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json::str("mifo.run_artifact.v1"));
  root.set("bench", obs::Json::str("fig12_testbed"));
  obs::Json scale = obs::Json::object();
  scale.set("flow_mb",
            obs::Json::num(static_cast<std::uint64_t>(
                params.flow_size / kMegaByte)));
  scale.set("flows_per_pair",
            obs::Json::num(static_cast<std::uint64_t>(params.flows_per_pair)));
  root.set("scale", std::move(scale));
  obs::Json ja = obs::Json::array();
  for (const bool with_mifo : {false, true}) {
    const auto& r = res[with_mifo ? 1 : 0];
    Cdf cdf;
    cdf.add_all(r.fct);
    obs::Json a = obs::Json::object();
    a.set("name", obs::Json::str(with_mifo ? "MIFO" : "BGP"));
    obs::Json sum = obs::Json::object();
    sum.set("flows", obs::Json::num(static_cast<std::uint64_t>(r.fct.size())));
    sum.set("aggregate_gbps", obs::Json::num(r.aggregate_gbps));
    sum.set("total_time_s", obs::Json::num(r.total_time));
    sum.set("median_fct_s", obs::Json::num(cdf.quantile(0.5)));
    sum.set("max_fct_s", obs::Json::num(cdf.quantile(1.0)));
    a.set("summary", std::move(sum));
    obs::Json ctr = obs::Json::object();
    ctr.set("deflected", obs::Json::num(r.counters.deflected));
    ctr.set("encapsulated", obs::Json::num(r.counters.encapsulated));
    ctr.set("flow_switches", obs::Json::num(r.counters.flow_switches));
    ctr.set("ttl_drops", obs::Json::num(r.counters.ttl_drops));
    a.set("counters", std::move(ctr));
    a.set("links", obs::to_json(r.link_samples));
    ja.push(std::move(a));
  }
  root.set("arms", std::move(ja));
  const std::string path = obs::write_artifact("fig12_testbed", root);
  if (!path.empty()) std::printf("\nartifact: %s\n", path.c_str());
}

void BM_TestbedRun(benchmark::State& state) {
  testbed::Fig12Params params;
  params.flow_size = 2 * kMegaByte;
  params.flows_per_pair = 3;
  params.mifo = state.range(0) != 0;
  for (auto _ : state) {
    auto res = testbed::run_fig12(params);
    benchmark::DoNotOptimize(res.aggregate_gbps);
  }
}
BENCHMARK(BM_TestbedRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_fig12)
