// Fig. 5(a–c) — flow-throughput CDFs under uniform traffic at 100%, 50%
// and 10% deployment of MIFO/MIRO vs plain BGP.
//
// Paper headlines (44k ASes, 1M flows): at 100% deployment ~80% of MIFO
// flows exceed 500 Mbps vs ~50% for MIRO; at 50% MIFO still delivers 500
// Mbps to half the flows vs 35% for MIRO; even at 10% MIFO > MIRO. The
// reproduction target is the ordering MIFO > MIRO > BGP at every
// deployment ratio and the growth of both with deployment.

#include "bench_common.hpp"

namespace {

using namespace mifo;

void print_fig5() {
  const auto s = bench::load_scale(400, 8000, 64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);

  // The seven sweep arms (one BGP baseline + MIRO/MIFO per ratio) are
  // independent sims over the same const topology: run them concurrently,
  // print in deterministic order afterwards. Solver counters and the
  // utilization time series land in the run artifact.
  const std::vector<double> ratios{1.0, 0.5, 0.1};
  const SimTime sample_dt = 0.05;
  obs::Registry reg;
  std::vector<bench::ArmResult> results(1 + 2 * ratios.size());
  std::vector<std::function<void()>> arms;
  arms.emplace_back([&] {
    results[0] = bench::run_arm(g, specs, sim::RoutingMode::Bgp, 0.0, s.seed,
                                &reg, sample_dt);
  });
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    arms.emplace_back([&, i] {
      results[1 + 2 * i] = bench::run_arm(
          g, specs, sim::RoutingMode::Miro, ratios[i], s.seed, &reg, sample_dt);
    });
    arms.emplace_back([&, i] {
      results[2 + 2 * i] = bench::run_arm(
          g, specs, sim::RoutingMode::Mifo, ratios[i], s.seed, &reg, sample_dt);
    });
  }
  bench::run_arms(s.threads, arms);

  for (std::size_t i = 0; i < ratios.size(); ++i) {
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Fig. 5: throughput CDF, uniform traffic, %.0f%% deployment",
                  100.0 * ratios[i]);
    bench::print_throughput_cdf(title,
                                {{"BGP", &results[0].records},
                                 {"MIRO", &results[1 + 2 * i].records},
                                 {"MIFO", &results[2 + 2 * i].records}});
  }
  std::printf("\npaper (100%%): ~80%% of MIFO flows >=500 Mbps vs ~50%% MIRO;"
              " ordering MIFO > MIRO > BGP at every ratio\n");
  bench::emit_run_artifact("fig5_throughput_deployment", s, results, &reg);
}

void BM_FluidSimMifo(benchmark::State& state) {
  const auto s = bench::load_scale(400, 2000, 64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);
  for (auto _ : state) {
    auto recs = bench::run_sim(g, specs, sim::RoutingMode::Mifo, 0.5, s.seed);
    benchmark::DoNotOptimize(recs.size());
  }
  state.SetItemsProcessed(state.iterations() * specs.size());
}
BENCHMARK(BM_FluidSimMifo)->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_fig5)
