// Table I — attributes of the AS topology.
//
// Paper (UCLA IRL trace, Nov 2014): 44,340 nodes, 109,360 links,
// 75,046 P/C (69%), 34,314 peering (31%). We print the same attributes for
// the generated topology (default 10,000 ASes; MIFO_TOPO_N=44340 for paper
// scale) plus the generator-calibration ratios.

#include "bench_common.hpp"

namespace {

using namespace mifo;

void print_table1() {
  const auto s = bench::load_scale(10000, 0, 0, 100.0);
  topo::GeneratorParams gp;
  gp.num_ases = s.topo_n;
  gp.seed = s.seed;
  const auto g = topo::generate_topology(gp);
  const auto a = topo::attributes(g);

  std::printf("=== Table I: attributes of the topology ===\n");
  std::printf("%-12s %10s %10s %10s %14s\n", "source", "nodes", "links",
              "P/C", "peering");
  std::printf("%-12s %10s %10s %10s %14s\n", "paper", "44340", "109360",
              "75046 (69%)", "34314 (31%)");
  const double pc_pct =
      100.0 * static_cast<double>(a.pc_links) / static_cast<double>(a.links);
  std::printf("%-12s %10zu %10zu %7zu (%2.0f%%) %9zu (%2.0f%%)\n",
              "generated", a.nodes, a.links, a.pc_links, pc_pct,
              a.peering_links, 100.0 - pc_pct);
  std::printf("avg degree %.2f (paper ~4.93), max degree %zu, tier1 %zu, "
              "transit %zu, stubs %zu\n",
              a.avg_degree, a.max_degree, a.tier1, a.transit, a.stubs);
  std::printf("invariants: pc_acyclic=%d connected=%d\n",
              topo::is_pc_acyclic(g) ? 1 : 0, topo::is_connected(g) ? 1 : 0);
}

void BM_GenerateTopology(benchmark::State& state) {
  topo::GeneratorParams gp;
  gp.num_ases = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto g = topo::generate_topology(gp);
    benchmark::DoNotOptimize(g.num_adjacencies());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateTopology)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_TopologyAnalysis(benchmark::State& state) {
  topo::GeneratorParams gp;
  gp.num_ases = static_cast<std::size_t>(state.range(0));
  const auto g = topo::generate_topology(gp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::is_pc_acyclic(g));
    benchmark::DoNotOptimize(topo::is_connected(g));
  }
}
BENCHMARK(BM_TopologyAnalysis)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_table1)
