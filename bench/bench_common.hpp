// Shared helpers for the experiment benches.
//
// Every bench prints its paper-figure table(s) first (deterministic under
// MIFO_SEED) and then runs its google-benchmark timings. Scale knobs come
// from the environment so the experiments can be rerun at paper scale:
//   MIFO_TOPO_N      topology size (ASes)
//   MIFO_FLOWS       number of flows
//   MIFO_DEST_POOL   distinct destination ASes (0 = unrestricted)
//   MIFO_ARRIVAL     flow arrival rate (flows/s)
//   MIFO_SEED        master seed
//   MIFO_THREADS     worker threads (0 = hardware_concurrency); drives both
//                    the per-sim route-cache warmup and the concurrent
//                    figure arms — results are bit-identical at any setting
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "obs/artifact.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "sim/fluid_sim.hpp"
#include "sim/metrics.hpp"
#include "topo/analysis.hpp"
#include "topo/generator.hpp"
#include "traffic/traffic.hpp"

namespace mifo::bench {

struct Scale {
  std::size_t topo_n;
  std::size_t flows;
  std::size_t dest_pool;
  double arrival;
  std::uint64_t seed;
  std::size_t threads;
};

/// Defaults sized for single-core minutes; the paper ran 44,340 ASes and
/// one million flows (document per-bench in EXPERIMENTS.md).
inline Scale load_scale(std::size_t topo_n, std::size_t flows,
                        std::size_t dest_pool, double arrival) {
  Scale s;
  s.topo_n = env_u64("MIFO_TOPO_N", topo_n);
  s.flows = env_u64("MIFO_FLOWS", flows);
  s.dest_pool = env_u64("MIFO_DEST_POOL", dest_pool);
  s.arrival = env_double("MIFO_ARRIVAL", arrival);
  s.seed = env_u64("MIFO_SEED", 1);
  s.threads = default_thread_count();
  return s;
}

/// Runs independent experiment arms (each a void() closure producing its
/// result by side effect into its own slot) across MIFO_THREADS workers.
/// Each arm owns its FluidSim, so arms only share const topology state.
inline void run_arms(std::size_t threads,
                     const std::vector<std::function<void()>>& arms) {
  if (threads <= 1 || arms.size() < 2) {
    for (const auto& arm : arms) arm();
    return;
  }
  ThreadPool pool(std::min(threads, arms.size()));
  parallel_for(pool, arms.size(), [&arms](std::size_t i) { arms[i](); });
}

inline topo::AsGraph make_topology(const Scale& s) {
  topo::GeneratorParams gp;
  gp.num_ases = s.topo_n;
  gp.seed = s.seed;
  return topo::generate_topology(gp);
}

inline std::vector<traffic::FlowSpec> make_uniform(const topo::AsGraph& g,
                                                   const Scale& s) {
  traffic::TrafficParams tp;
  tp.num_flows = s.flows;
  tp.dest_pool = s.dest_pool;
  tp.arrival_rate = s.arrival;
  tp.seed = s.seed * 3 + 1;
  return traffic::uniform_traffic(g, tp);
}

inline std::vector<sim::FlowRecord> run_sim(
    const topo::AsGraph& g, const std::vector<traffic::FlowSpec>& specs,
    sim::RoutingMode mode, double deploy_ratio, std::uint64_t seed,
    std::size_t threads = 0) {
  sim::SimConfig cfg;
  cfg.mode = mode;
  cfg.threads = threads;
  sim::FluidSim fs(g, cfg);
  fs.set_deployment(
      traffic::random_deployment(g.num_ases(), deploy_ratio, seed * 7 + 5));
  return fs.run(specs);
}

/// One experiment arm's full result: the flow records the tables are built
/// from, plus the observability by-products the run artifact carries.
struct ArmResult {
  std::string name;  ///< e.g. "MIFO@50"
  std::string mode;
  double deploy_ratio = 0.0;
  std::vector<sim::FlowRecord> records;
  obs::UtilSeries samples;
};

/// run_sim plus observability: solver counters go into `reg` (labelled
/// `arm=<name>`), link utilization is sampled every `sample_interval`
/// seconds (0 disables). Safe to call from run_arms workers — registry
/// registration is thread-safe and each arm owns its shard. `base_cfg`
/// seeds the SimConfig (ablation knobs: thresholds, margins, selection);
/// the routing mode always comes from `mode`.
inline ArmResult run_arm(const topo::AsGraph& g,
                         const std::vector<traffic::FlowSpec>& specs,
                         sim::RoutingMode mode, double deploy_ratio,
                         std::uint64_t seed, obs::Registry* reg = nullptr,
                         SimTime sample_interval = 0.0,
                         const std::string& name_suffix = {},
                         const sim::SimConfig* base_cfg = nullptr) {
  ArmResult r;
  r.mode = sim::to_string(mode);
  r.deploy_ratio = deploy_ratio;
  char name[64];
  std::snprintf(name, sizeof(name), "%s@%.0f%s", r.mode.c_str(),
                100.0 * deploy_ratio, name_suffix.c_str());
  r.name = name;
  sim::SimConfig cfg = base_cfg != nullptr ? *base_cfg : sim::SimConfig{};
  cfg.mode = mode;
  sim::FluidSim fs(g, cfg);
  if (reg != nullptr) fs.attach_registry(*reg, "arm=" + r.name);
  if (sample_interval > 0.0) fs.enable_sampling(sample_interval);
  fs.set_deployment(
      traffic::random_deployment(g.num_ases(), deploy_ratio, seed * 7 + 5));
  r.records = fs.run(specs);
  r.samples = fs.samples();
  return r;
}

/// An arm as run-artifact JSON: RunSummary fields, the drop breakdown a
/// fluid run can have (flows, not packets), and the utilization series.
inline obs::Json arm_json(const ArmResult& arm) {
  const sim::RunSummary sum = sim::summarize(arm.records);
  obs::Json a = obs::Json::object();
  a.set("name", obs::Json::str(arm.name));
  a.set("mode", obs::Json::str(arm.mode));
  a.set("deploy_ratio", obs::Json::num(arm.deploy_ratio));
  obs::Json s = obs::Json::object();
  s.set("total", obs::Json::num(static_cast<std::uint64_t>(sum.total)));
  s.set("completed",
        obs::Json::num(static_cast<std::uint64_t>(sum.completed)));
  s.set("unreachable",
        obs::Json::num(static_cast<std::uint64_t>(sum.unreachable)));
  s.set("mean_throughput_mbps", obs::Json::num(sum.mean_throughput));
  s.set("median_throughput_mbps", obs::Json::num(sum.median_throughput));
  s.set("frac_at_500mbps", obs::Json::num(sum.frac_at_500mbps));
  s.set("offload", obs::Json::num(sum.offload));
  a.set("summary", std::move(s));
  const std::uint64_t incomplete = static_cast<std::uint64_t>(
      sum.total - sum.completed - sum.unreachable);
  a.set("drops", obs::drops_json({{"unreachable", sum.unreachable},
                                  {"incomplete", incomplete}}));
  a.set("utilization", obs::to_json(arm.samples));
  return a;
}

/// Writes `<bench>.json` (schema mifo.run_artifact.v1) plus one
/// `<bench>_<arm>_util.csv` per sampled arm, and announces the paths.
/// No-op under MIFO_ARTIFACT_DIR=-.
inline void emit_run_artifact(const std::string& bench_name, const Scale& s,
                              const std::vector<ArmResult>& arms,
                              const obs::Registry* reg = nullptr) {
  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json::str("mifo.run_artifact.v1"));
  root.set("bench", obs::Json::str(bench_name));
  obs::Json scale = obs::Json::object();
  scale.set("topo_n", obs::Json::num(static_cast<std::uint64_t>(s.topo_n)));
  scale.set("flows", obs::Json::num(static_cast<std::uint64_t>(s.flows)));
  scale.set("dest_pool",
            obs::Json::num(static_cast<std::uint64_t>(s.dest_pool)));
  scale.set("arrival", obs::Json::num(s.arrival));
  scale.set("seed", obs::Json::num(static_cast<std::uint64_t>(s.seed)));
  root.set("scale", std::move(scale));
  obs::Json ja = obs::Json::array();
  for (const ArmResult& arm : arms) ja.push(arm_json(arm));
  root.set("arms", std::move(ja));
  if (reg != nullptr) root.set("metrics", obs::to_json(reg->snapshot()));
  const std::string path = obs::write_artifact(bench_name, root);
  if (!path.empty()) std::printf("\nartifact: %s\n", path.c_str());
  for (const ArmResult& arm : arms) {
    if (arm.samples.empty()) continue;
    std::string an = arm.name;
    for (char& c : an) {
      const bool alnum = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                         (c >= 'A' && c <= 'Z');
      if (!alnum) c = '_';
    }
    std::vector<std::vector<double>> rows;
    rows.reserve(arm.samples.size());
    for (const obs::UtilSample& u : arm.samples) {
      rows.push_back({u.t, u.mean_util, u.max_util, u.frac_congested,
                      u.total_spare_mbps,
                      static_cast<double>(u.active_flows)});
    }
    const std::string csv = obs::write_csv(
        bench_name + "_" + an + "_util",
        {"t", "mean_util", "max_util", "frac_congested", "total_spare_mbps",
         "active_flows"},
        rows);
    if (!csv.empty()) std::printf("artifact: %s\n", csv.c_str());
  }
}

/// Prints a Fig. 5/6-style CDF table: rows are throughput bins, columns the
/// schemes.
inline void print_throughput_cdf(
    const std::string& title,
    const std::vector<std::pair<std::string, const std::vector<sim::FlowRecord>*>>&
        series) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-18s", "Throughput(Mbps)");
  for (const auto& [name, recs] : series) std::printf("%12s", name.c_str());
  std::printf("\n");
  std::vector<Cdf> cdfs;
  cdfs.reserve(series.size());
  for (const auto& [name, recs] : series) {
    cdfs.push_back(sim::throughput_cdf(*recs));
  }
  for (int t = 0; t <= 1000; t += 100) {
    std::printf("%-18d", t);
    for (const auto& cdf : cdfs) {
      std::printf("%11.1f%%", 100.0 * cdf.at(t));
    }
    std::printf("\n");
  }
  std::printf("%-18s", ">=500 Mbps");
  for (const auto& [name, recs] : series) {
    std::printf("%11.1f%%", 100.0 * sim::fraction_at_least(*recs, 500.0));
  }
  std::printf("\n");
}

}  // namespace mifo::bench

/// Figure benches print their tables once, then hand over to the benchmark
/// runner for the registered timing benchmarks.
#define MIFO_BENCH_MAIN(print_figure_fn)                  \
  int main(int argc, char** argv) {                       \
    ::benchmark::Initialize(&argc, argv);                 \
    print_figure_fn();                                    \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }
