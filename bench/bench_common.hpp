// Shared helpers for the experiment benches.
//
// Every bench prints its paper-figure table(s) first (deterministic under
// MIFO_SEED) and then runs its google-benchmark timings. Scale knobs come
// from the environment so the experiments can be rerun at paper scale:
//   MIFO_TOPO_N      topology size (ASes)
//   MIFO_FLOWS       number of flows
//   MIFO_DEST_POOL   distinct destination ASes (0 = unrestricted)
//   MIFO_ARRIVAL     flow arrival rate (flows/s)
//   MIFO_SEED        master seed
//   MIFO_THREADS     worker threads (0 = hardware_concurrency); drives both
//                    the per-sim route-cache warmup and the concurrent
//                    figure arms — results are bit-identical at any setting
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/thread_pool.hpp"
#include "sim/fluid_sim.hpp"
#include "sim/metrics.hpp"
#include "topo/analysis.hpp"
#include "topo/generator.hpp"
#include "traffic/traffic.hpp"

namespace mifo::bench {

struct Scale {
  std::size_t topo_n;
  std::size_t flows;
  std::size_t dest_pool;
  double arrival;
  std::uint64_t seed;
  std::size_t threads;
};

/// Defaults sized for single-core minutes; the paper ran 44,340 ASes and
/// one million flows (document per-bench in EXPERIMENTS.md).
inline Scale load_scale(std::size_t topo_n, std::size_t flows,
                        std::size_t dest_pool, double arrival) {
  Scale s;
  s.topo_n = env_u64("MIFO_TOPO_N", topo_n);
  s.flows = env_u64("MIFO_FLOWS", flows);
  s.dest_pool = env_u64("MIFO_DEST_POOL", dest_pool);
  s.arrival = env_double("MIFO_ARRIVAL", arrival);
  s.seed = env_u64("MIFO_SEED", 1);
  s.threads = default_thread_count();
  return s;
}

/// Runs independent experiment arms (each a void() closure producing its
/// result by side effect into its own slot) across MIFO_THREADS workers.
/// Each arm owns its FluidSim, so arms only share const topology state.
inline void run_arms(std::size_t threads,
                     const std::vector<std::function<void()>>& arms) {
  if (threads <= 1 || arms.size() < 2) {
    for (const auto& arm : arms) arm();
    return;
  }
  ThreadPool pool(std::min(threads, arms.size()));
  parallel_for(pool, arms.size(), [&arms](std::size_t i) { arms[i](); });
}

inline topo::AsGraph make_topology(const Scale& s) {
  topo::GeneratorParams gp;
  gp.num_ases = s.topo_n;
  gp.seed = s.seed;
  return topo::generate_topology(gp);
}

inline std::vector<traffic::FlowSpec> make_uniform(const topo::AsGraph& g,
                                                   const Scale& s) {
  traffic::TrafficParams tp;
  tp.num_flows = s.flows;
  tp.dest_pool = s.dest_pool;
  tp.arrival_rate = s.arrival;
  tp.seed = s.seed * 3 + 1;
  return traffic::uniform_traffic(g, tp);
}

inline std::vector<sim::FlowRecord> run_sim(
    const topo::AsGraph& g, const std::vector<traffic::FlowSpec>& specs,
    sim::RoutingMode mode, double deploy_ratio, std::uint64_t seed,
    std::size_t threads = 0) {
  sim::SimConfig cfg;
  cfg.mode = mode;
  cfg.threads = threads;
  sim::FluidSim fs(g, cfg);
  fs.set_deployment(
      traffic::random_deployment(g.num_ases(), deploy_ratio, seed * 7 + 5));
  return fs.run(specs);
}

/// Prints a Fig. 5/6-style CDF table: rows are throughput bins, columns the
/// schemes.
inline void print_throughput_cdf(
    const std::string& title,
    const std::vector<std::pair<std::string, const std::vector<sim::FlowRecord>*>>&
        series) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-18s", "Throughput(Mbps)");
  for (const auto& [name, recs] : series) std::printf("%12s", name.c_str());
  std::printf("\n");
  std::vector<Cdf> cdfs;
  cdfs.reserve(series.size());
  for (const auto& [name, recs] : series) {
    cdfs.push_back(sim::throughput_cdf(*recs));
  }
  for (int t = 0; t <= 1000; t += 100) {
    std::printf("%-18d", t);
    for (const auto& cdf : cdfs) {
      std::printf("%11.1f%%", 100.0 * cdf.at(t));
    }
    std::printf("\n");
  }
  std::printf("%-18s", ">=500 Mbps");
  for (const auto& [name, recs] : series) {
    std::printf("%11.1f%%", 100.0 * sim::fraction_at_least(*recs, 500.0));
  }
  std::printf("\n");
}

}  // namespace mifo::bench

/// Figure benches print their tables once, then hand over to the benchmark
/// runner for the registered timing benchmarks.
#define MIFO_BENCH_MAIN(print_figure_fn)                  \
  int main(int argc, char** argv) {                       \
    ::benchmark::Initialize(&argc, argv);                 \
    print_figure_fn();                                    \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }
