// Ablation A4 — forwarding-engine micro-benchmark: packets/second through
// Algorithm 1 on its distinct code paths (default forward, tag+check
// deflection, IP-in-IP encapsulation towards an iBGP peer). The paper's
// argument for data-plane path selection is precisely that this operation
// stays line-speed cheap.

#include "bench_common.hpp"
#include "dataplane/network.hpp"

namespace {

using namespace mifo;
using namespace mifo::dp;

struct EngineFixture {
  Network net;
  RouterId rx;
  PortId in_cust, out_def, out_alt, ibgp;
  static constexpr Addr kDst = 0x80000042;

  EngineFixture() {
    rx = net.add_router(AsId(100));
    const RouterId peer = net.add_router(AsId(100));
    const RouterId cust = net.add_router(AsId(1));
    const RouterId def = net.add_router(AsId(3));
    const RouterId alt = net.add_router(AsId(4));
    in_cust = net.connect_ebgp(cust, rx, topo::Rel::Provider).second;
    out_def = net.connect_ebgp(rx, def, topo::Rel::Peer).first;
    out_alt = net.connect_ebgp(rx, alt, topo::Rel::Peer).first;
    ibgp = net.connect_ibgp(rx, peer).first;
    net.router(rx).config().mifo_enabled = true;
    net.router(rx).fib().set_route(kDst, out_def);
  }

  Router& router() { return net.router(rx); }

  Packet pkt(std::uint64_t flow) {
    Packet p;
    p.src = 0x80000001;
    p.dst = kDst;
    p.flow = FlowId(flow);
    p.size_bytes = 1000;
    return p;
  }

  /// Drain queued packets/events so queues do not grow across iterations.
  void drain() { net.run_until(net.now() + 10.0); }
};

void BM_DefaultForward(benchmark::State& state) {
  EngineFixture fx;
  std::uint64_t flow = 0;
  int batch = 0;
  for (auto _ : state) {
    fx.router().handle_packet(fx.net, fx.pkt(flow++), fx.in_cust);
    if (++batch == 256) {
      state.PauseTiming();
      fx.drain();
      batch = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DefaultForward);

void BM_PinnedDeflection(benchmark::State& state) {
  EngineFixture fx;
  fx.router().fib().set_alt(EngineFixture::kDst, fx.out_alt);
  // Pre-pin one flow by congesting the default and pushing one packet.
  for (int i = 0; i < 61; ++i) {
    Packet filler = fx.pkt(999);
    fx.net.transmit_router(fx.rx, fx.out_def, filler);
  }
  fx.router().handle_packet(fx.net, fx.pkt(7), fx.in_cust);
  int batch = 0;
  for (auto _ : state) {
    fx.router().handle_packet(fx.net, fx.pkt(7), fx.in_cust);
    if (++batch == 256) {
      state.PauseTiming();
      fx.drain();
      // Re-congest so the pin logic stays on the deflection path.
      for (int i = 0; i < 61; ++i) {
        Packet filler = fx.pkt(999);
        fx.net.transmit_router(fx.rx, fx.out_def, filler);
      }
      fx.router().handle_packet(fx.net, fx.pkt(7), fx.in_cust);
      batch = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PinnedDeflection);

void BM_EncapDeflection(benchmark::State& state) {
  EngineFixture fx;
  fx.router().fib().set_alt(EngineFixture::kDst, fx.ibgp);
  for (int i = 0; i < 61; ++i) {
    Packet filler = fx.pkt(999);
    fx.net.transmit_router(fx.rx, fx.out_def, filler);
  }
  fx.router().handle_packet(fx.net, fx.pkt(7), fx.in_cust);
  int batch = 0;
  for (auto _ : state) {
    fx.router().handle_packet(fx.net, fx.pkt(7), fx.in_cust);
    if (++batch == 256) {
      state.PauseTiming();
      fx.drain();
      for (int i = 0; i < 61; ++i) {
        Packet filler = fx.pkt(999);
        fx.net.transmit_router(fx.rx, fx.out_def, filler);
      }
      fx.router().handle_packet(fx.net, fx.pkt(7), fx.in_cust);
      batch = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncapDeflection);

void BM_FibLookup(benchmark::State& state) {
  Fib fib;
  for (std::uint32_t i = 1; i <= 100000; ++i) fib.set_route(i, PortId(0));
  std::uint32_t addr = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fib.lookup(addr));
    addr = addr % 100000 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FibLookup);

void print_header() {
  std::printf("=== Ablation A4: Algorithm 1 forwarding micro-benchmarks ===\n"
              "(items_per_second = packets/s through the engine)\n");
}

}  // namespace

MIFO_BENCH_MAIN(print_header)
