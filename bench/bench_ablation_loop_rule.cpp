// Ablation A1 — the valley-free data-plane rule (the paper's central
// mechanism, Section III-A). With the rule disabled, hop-by-hop deflection
// loops even on the paper's 3-peer example and on generated topologies;
// with the rule, every walk terminates loop-free (the theorem).

#include <unordered_map>

#include "bench_common.hpp"
#include "core/walk.hpp"

namespace {

using namespace mifo;

/// Deflecting walk WITHOUT the Tag-Check gate: at a congested default
/// egress, deflect to the RIB neighbor with the most spare capacity,
/// regardless of valley-freeness. Returns true iff the walk loops (exceeds
/// the 2N hop bound without reaching the destination).
bool unguarded_walk_loops(const topo::AsGraph& g,
                          const bgp::DestRoutes& routes, AsId src,
                          const core::UtilizationFn& util,
                          double threshold) {
  AsId cur = src;
  if (!routes.best(cur).valid()) return false;
  std::size_t hops = 0;
  while (cur != routes.dest()) {
    const bgp::Route& def = routes.best(cur);
    AsId next = def.next_hop;
    const LinkId def_link = g.link(cur, next);
    if (util(def_link) >= threshold) {
      AsId best = AsId::invalid();
      double best_spare = 1.0 - util(def_link);
      for (const auto& nb : g.neighbors(cur)) {
        if (nb.as == next) continue;
        if (!bgp::rib_route_from(g, routes, cur, nb.as)) continue;
        const double spare = 1.0 - util(nb.link);
        if (spare > best_spare) {
          best = nb.as;
          best_spare = spare;
        }
      }
      if (best.valid()) next = best;
    }
    cur = next;
    if (++hops > 2 * g.num_ases() + 2) return true;  // loop
  }
  return false;
}

void print_ablation() {
  std::printf("=== Ablation A1: valley-free rule on the data plane ===\n");

  // The paper's Fig. 2(a) worst case: every default congested.
  topo::AsGraph fig2a(4);
  fig2a.add_provider_customer(AsId(1), AsId(0));
  fig2a.add_provider_customer(AsId(2), AsId(0));
  fig2a.add_provider_customer(AsId(3), AsId(0));
  fig2a.add_peering(AsId(1), AsId(2));
  fig2a.add_peering(AsId(2), AsId(3));
  fig2a.add_peering(AsId(3), AsId(1));
  const auto routes2a = bgp::compute_routes(fig2a, AsId(0));
  auto congested_defaults = [&fig2a](LinkId l) {
    // The three direct customer links are congested, peer links idle.
    return fig2a.link_to(l) == AsId(0) ? 0.95 : 0.0;
  };
  const bool fig2a_loops = unguarded_walk_loops(fig2a, routes2a, AsId(1),
                                                congested_defaults, 0.7);
  std::printf("Fig.2(a), rule OFF: %s\n",
              fig2a_loops ? "LOOP (1->2->3->1->...)" : "no loop");
  const auto guarded = core::mifo_walk(fig2a, routes2a,
                                       std::vector<bool>(4, true), AsId(1),
                                       congested_defaults);
  std::printf("Fig.2(a), rule ON : delivered via");
  for (const AsId as : guarded.path) std::printf(" %u", as.value());
  std::printf(" (loop-free)\n\n");

  // Generated topologies, adversarial random congestion.
  const auto s = bench::load_scale(600, 0, 0, 100.0);
  const auto g = bench::make_topology(s);
  Rng rng(s.seed * 131 + 7);
  std::size_t trials = 0;
  std::size_t unguarded_loops = 0;
  std::size_t guarded_loops = 0;
  const std::vector<bool> all(g.num_ases(), true);
  for (int t = 0; t < 20; ++t) {
    const AsId dest(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
    const auto routes = bgp::compute_routes(g, dest);
    std::unordered_map<std::uint32_t, double> util_map;
    Rng trial_rng = rng.split();
    auto util = [&util_map, &trial_rng](LinkId l) -> double {
      auto [it, inserted] = util_map.try_emplace(l.value(), 0.0);
      if (inserted) it->second = trial_rng.bernoulli(0.6) ? 0.95 : 0.1;
      return it->second;
    };
    for (std::uint32_t src = 0; src < g.num_ases(); src += 29) {
      if (AsId(src) == dest || !routes.best(AsId(src)).valid()) continue;
      ++trials;
      if (unguarded_walk_loops(g, routes, AsId(src), util, 0.7)) {
        ++unguarded_loops;
      }
      // The guarded walk MIFO_ASSERTs internally on a loop; reaching the
      // destination is the pass condition.
      const auto w = core::mifo_walk(g, routes, all, AsId(src), util);
      if (!w.reachable) ++guarded_loops;
    }
  }
  std::printf("generated topology (%zu walks, 60%% links congested):\n",
              trials);
  std::printf("  rule OFF: %zu walks looped (%.1f%%)\n", unguarded_loops,
              100.0 * static_cast<double>(unguarded_loops) /
                  static_cast<double>(trials));
  std::printf("  rule ON : %zu walks looped (theorem: always 0)\n",
              guarded_loops);
}

void BM_GuardedWalk(benchmark::State& state) {
  const auto s = bench::load_scale(600, 0, 0, 100.0);
  const auto g = bench::make_topology(s);
  const auto routes = bgp::compute_routes(g, AsId(0));
  const std::vector<bool> all(g.num_ases(), true);
  auto util = [](LinkId l) { return (l.value() % 3 == 0) ? 0.9 : 0.1; };
  std::uint32_t src = 1;
  for (auto _ : state) {
    auto w = core::mifo_walk(
        g, routes, all,
        AsId(1 + (src++ % static_cast<std::uint32_t>(g.num_ases() - 1))),
        util);
    benchmark::DoNotOptimize(w.path.size());
  }
}
BENCHMARK(BM_GuardedWalk);

}  // namespace

MIFO_BENCH_MAIN(print_ablation)
