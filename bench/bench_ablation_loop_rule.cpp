// Ablation A1 — the valley-free data-plane rule (the paper's central
// mechanism, Section III-A). With the rule disabled, hop-by-hop deflection
// loops even on the paper's 3-peer example and on generated topologies;
// with the rule, every walk terminates loop-free (the theorem).

#include <unordered_map>

#include "bench_common.hpp"
#include "core/walk.hpp"

namespace {

using namespace mifo;

/// Deflecting walk WITHOUT the Tag-Check gate: at a congested default
/// egress, deflect to the RIB neighbor with the most spare capacity,
/// regardless of valley-freeness. Returns true iff the walk loops (exceeds
/// the 2N hop bound without reaching the destination).
bool unguarded_walk_loops(const topo::AsGraph& g,
                          const bgp::RouteStore& routes, AsId src,
                          const core::UtilizationFn& util,
                          double threshold) {
  AsId cur = src;
  if (!routes.best(cur).valid()) return false;
  std::size_t hops = 0;
  while (cur != routes.dest()) {
    const bgp::Route& def = routes.best(cur);
    AsId next = def.next_hop;
    const LinkId def_link = g.link(cur, next);
    if (util(def_link) >= threshold) {
      AsId best = AsId::invalid();
      double best_spare = 1.0 - util(def_link);
      for (const auto& nb : g.neighbors(cur)) {
        if (nb.as == next) continue;
        if (!routes.rib_from(cur, nb.as)) continue;
        const double spare = 1.0 - util(nb.link);
        if (spare > best_spare) {
          best = nb.as;
          best_spare = spare;
        }
      }
      if (best.valid()) next = best;
    }
    cur = next;
    if (++hops > 2 * g.num_ases() + 2) return true;  // loop
  }
  return false;
}

void print_ablation() {
  std::printf("=== Ablation A1: valley-free rule on the data plane ===\n");

  // The paper's Fig. 2(a) worst case: every default congested.
  topo::AsGraph fig2a(4);
  fig2a.add_provider_customer(AsId(1), AsId(0));
  fig2a.add_provider_customer(AsId(2), AsId(0));
  fig2a.add_provider_customer(AsId(3), AsId(0));
  fig2a.add_peering(AsId(1), AsId(2));
  fig2a.add_peering(AsId(2), AsId(3));
  fig2a.add_peering(AsId(3), AsId(1));
  const bgp::RouteStore routes2a(fig2a, AsId(0));
  auto congested_defaults = [&fig2a](LinkId l) {
    // The three direct customer links are congested, peer links idle.
    return fig2a.link_to(l) == AsId(0) ? 0.95 : 0.0;
  };
  const bool fig2a_loops = unguarded_walk_loops(fig2a, routes2a, AsId(1),
                                                congested_defaults, 0.7);
  std::printf("Fig.2(a), rule OFF: %s\n",
              fig2a_loops ? "LOOP (1->2->3->1->...)" : "no loop");
  const auto guarded = core::mifo_walk(fig2a, routes2a,
                                       std::vector<bool>(4, true), AsId(1),
                                       congested_defaults);
  std::printf("Fig.2(a), rule ON : delivered via");
  for (const AsId as : guarded.path) std::printf(" %u", as.value());
  std::printf(" (loop-free)\n\n");

  // Generated topologies, adversarial random congestion. Per-trial state
  // (destination draw + split RNG) is pre-drawn serially in the original
  // master-RNG order, so the concurrent trials are bit-identical to the old
  // serial sweep.
  const auto s = bench::load_scale(600, 0, 0, 100.0);
  const auto g = bench::make_topology(s);
  Rng rng(s.seed * 131 + 7);
  constexpr std::size_t kTrials = 20;
  struct Trial {
    AsId dest = AsId::invalid();
    Rng rng{0};
    std::size_t walks = 0;
    std::size_t unguarded = 0;
    std::size_t guarded = 0;
  };
  std::vector<Trial> trial_state(kTrials);
  for (auto& tr : trial_state) {
    tr.dest = AsId(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
    tr.rng = rng.split();
  }
  const std::vector<bool> all(g.num_ases(), true);
  std::vector<std::function<void()>> trial_arms;
  for (std::size_t t = 0; t < kTrials; ++t) {
    trial_arms.emplace_back([&, t] {
      Trial& tr = trial_state[t];
      const AsId dest = tr.dest;
      const bgp::RouteStore routes(g, dest);
      std::unordered_map<std::uint32_t, double> util_map;
      Rng& trial_rng = tr.rng;
      auto util = [&util_map, &trial_rng](LinkId l) -> double {
        auto [it, inserted] = util_map.try_emplace(l.value(), 0.0);
        if (inserted) it->second = trial_rng.bernoulli(0.6) ? 0.95 : 0.1;
        return it->second;
      };
      for (std::uint32_t src = 0; src < g.num_ases(); src += 29) {
        if (AsId(src) == dest || !routes.best(AsId(src)).valid()) continue;
        ++tr.walks;
        if (unguarded_walk_loops(g, routes, AsId(src), util, 0.7)) {
          ++tr.unguarded;
        }
        // The guarded walk MIFO_ASSERTs internally on a loop; reaching the
        // destination is the pass condition.
        const auto w = core::mifo_walk(g, routes, all, AsId(src), util);
        if (!w.reachable) ++tr.guarded;
      }
    });
  }
  bench::run_arms(s.threads, trial_arms);
  std::size_t trials = 0;
  std::size_t unguarded_loops = 0;
  std::size_t guarded_loops = 0;
  for (const Trial& tr : trial_state) {
    trials += tr.walks;
    unguarded_loops += tr.unguarded;
    guarded_loops += tr.guarded;
  }
  std::printf("generated topology (%zu walks, 60%% links congested):\n",
              trials);
  std::printf("  rule OFF: %zu walks looped (%.1f%%)\n", unguarded_loops,
              100.0 * static_cast<double>(unguarded_loops) /
                  static_cast<double>(trials));
  std::printf("  rule ON : %zu walks looped (theorem: always 0)\n",
              guarded_loops);

  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json::str("mifo.run_artifact.v1"));
  root.set("bench", obs::Json::str("ablation_loop_rule"));
  obs::Json scale = obs::Json::object();
  scale.set("topo_n", obs::Json::num(static_cast<std::uint64_t>(s.topo_n)));
  scale.set("seed", obs::Json::num(static_cast<std::uint64_t>(s.seed)));
  root.set("scale", std::move(scale));
  obs::Json arms = obs::Json::array();
  for (const auto& [name, loops] :
       {std::pair<const char*, std::size_t>{"rule_off", unguarded_loops},
        std::pair<const char*, std::size_t>{"rule_on", guarded_loops}}) {
    obs::Json a = obs::Json::object();
    a.set("name", obs::Json::str(name));
    obs::Json sum = obs::Json::object();
    sum.set("walks", obs::Json::num(static_cast<std::uint64_t>(trials)));
    sum.set("looped", obs::Json::num(static_cast<std::uint64_t>(loops)));
    a.set("summary", std::move(sum));
    arms.push(std::move(a));
  }
  root.set("arms", std::move(arms));
  const std::string path = obs::write_artifact("ablation_loop_rule", root);
  if (!path.empty()) std::printf("artifact: %s\n", path.c_str());
}

void BM_GuardedWalk(benchmark::State& state) {
  const auto s = bench::load_scale(600, 0, 0, 100.0);
  const auto g = bench::make_topology(s);
  const bgp::RouteStore routes(g, AsId(0));
  const std::vector<bool> all(g.num_ases(), true);
  auto util = [](LinkId l) { return (l.value() % 3 == 0) ? 0.9 : 0.1; };
  std::uint32_t src = 1;
  for (auto _ : state) {
    auto w = core::mifo_walk(
        g, routes, all,
        AsId(1 + (src++ % static_cast<std::uint32_t>(g.num_ases() - 1))),
        util);
    benchmark::DoNotOptimize(w.path.size());
  }
}
BENCHMARK(BM_GuardedWalk);

}  // namespace

MIFO_BENCH_MAIN(print_ablation)
