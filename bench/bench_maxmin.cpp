// Ablation A5 — max–min solver and fluid-simulator scaling: the
// progressive-filling allocator is the inner loop of every Fig. 5/6/8/9
// experiment.

#include <algorithm>
#include <set>
#include <span>

#include "bench_common.hpp"
#include "sim/maxmin.hpp"

namespace {

using namespace mifo;

struct MaxMinInstance {
  std::vector<double> caps;
  std::vector<std::vector<std::uint32_t>> paths;
  std::vector<std::span<const std::uint32_t>> views;

  MaxMinInstance(std::size_t flows, std::size_t links)
      : caps(links, 1000.0), paths(flows) {
    Rng rng(42);
    for (auto& p : paths) {
      std::set<std::uint32_t> ls;
      const std::size_t hops = 2 + rng.bounded(4);
      while (ls.size() < hops) {
        ls.insert(static_cast<std::uint32_t>(rng.bounded(links)));
      }
      p.assign(ls.begin(), ls.end());
    }
    views.assign(paths.begin(), paths.end());
  }

  [[nodiscard]] sim::MaxMinInput input() const {
    sim::MaxMinInput in;
    in.flow_links = views;
    in.link_capacity = caps;
    in.flow_cap = 1000.0;
    in.num_links = caps.size();
    return in;
  }
};

// The dense-workspace solver exactly as FluidSim drives it: one workspace
// reused across re-evaluation ticks (allocation-free steady state).
void BM_MaxMin(benchmark::State& state) {
  const MaxMinInstance inst(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(1)));
  sim::MaxMinWorkspace ws;
  for (auto _ : state) {
    const auto rates = sim::max_min_rates(inst.input(), ws);
    benchmark::DoNotOptimize(rates.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MaxMin)
    ->Args({100, 200})
    ->Args({1000, 2000})
    ->Args({5000, 5000})
    ->Unit(benchmark::kMicrosecond);

// The original hash-map link-compaction solver, kept as the speedup
// yardstick (and differential-test oracle).
void BM_MaxMinReference(benchmark::State& state) {
  const MaxMinInstance inst(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    auto rates = sim::max_min_rates_reference(inst.input());
    benchmark::DoNotOptimize(rates.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MaxMinReference)
    ->Args({100, 200})
    ->Args({1000, 2000})
    ->Args({5000, 5000})
    ->Unit(benchmark::kMicrosecond);

void BM_FluidSimEvents(benchmark::State& state) {
  const auto s = bench::load_scale(400, static_cast<std::size_t>(state.range(0)),
                                   64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);
  for (auto _ : state) {
    auto recs = bench::run_sim(g, specs, sim::RoutingMode::Mifo, 0.5, s.seed);
    benchmark::DoNotOptimize(recs.size());
  }
  state.SetItemsProcessed(state.iterations() * specs.size());
}
BENCHMARK(BM_FluidSimEvents)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

// The per-destination route-cache warmup every simulated run pays before
// its first event: one CSR RouteStore per destination in the pool. The
// csr_bytes counter records the warmed cache's resident footprint (the
// sim.route_cache_bytes gauge), so both warmup time and memory land in
// BENCH_bench_maxmin.json.
void BM_RouteCacheWarmup(benchmark::State& state) {
  const auto s = bench::load_scale(
      static_cast<std::size_t>(state.range(0)), 0, 64, 800.0);
  const auto g = bench::make_topology(s);
  const std::uint32_t dests = static_cast<std::uint32_t>(
      std::min<std::size_t>(s.dest_pool, g.num_ases()));
  std::size_t bytes = 0;
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.threads = 1;
    sim::FluidSim fs(g, cfg);
    bytes = 0;
    for (std::uint32_t d = 0; d < dests; ++d) {
      bytes += fs.routes_for(AsId(d)).bytes();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["csr_bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(state.iterations() * dests);
}
BENCHMARK(BM_RouteCacheWarmup)
    ->Arg(400)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void print_header() {
  std::printf("=== Ablation A5: max-min solver / fluid simulator scaling ===\n"
              "(items_per_second = flows allocated or simulated per second)\n");
}

}  // namespace

MIFO_BENCH_MAIN(print_header)
