// Ablation A5 — max–min solver and fluid-simulator scaling: the
// progressive-filling allocator is the inner loop of every Fig. 5/6/8/9
// experiment.

#include <set>

#include "bench_common.hpp"
#include "sim/maxmin.hpp"

namespace {

using namespace mifo;

void BM_MaxMin(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  const auto links = static_cast<std::size_t>(state.range(1));
  Rng rng(42);
  std::vector<double> caps(links, 1000.0);
  std::vector<std::vector<std::uint32_t>> paths(flows);
  for (auto& p : paths) {
    std::set<std::uint32_t> ls;
    const std::size_t hops = 2 + rng.bounded(4);
    while (ls.size() < hops) {
      ls.insert(static_cast<std::uint32_t>(rng.bounded(links)));
    }
    p.assign(ls.begin(), ls.end());
  }
  for (auto _ : state) {
    sim::MaxMinInput in;
    in.flow_links = paths;
    in.link_capacity = caps;
    in.flow_cap = 1000.0;
    auto rates = sim::max_min_rates(in);
    benchmark::DoNotOptimize(rates.data());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_MaxMin)
    ->Args({100, 200})
    ->Args({1000, 2000})
    ->Args({5000, 5000})
    ->Unit(benchmark::kMicrosecond);

void BM_FluidSimEvents(benchmark::State& state) {
  const auto s = bench::load_scale(400, static_cast<std::size_t>(state.range(0)),
                                   64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);
  for (auto _ : state) {
    auto recs = bench::run_sim(g, specs, sim::RoutingMode::Mifo, 0.5, s.seed);
    benchmark::DoNotOptimize(recs.size());
  }
  state.SetItemsProcessed(state.iterations() * specs.size());
}
BENCHMARK(BM_FluidSimEvents)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void print_header() {
  std::printf("=== Ablation A5: max-min solver / fluid simulator scaling ===\n"
              "(items_per_second = flows allocated or simulated per second)\n");
}

}  // namespace

MIFO_BENCH_MAIN(print_header)
