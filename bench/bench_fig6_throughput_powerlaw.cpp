// Fig. 6(a–c) — throughput CDFs under power-law (content-provider) traffic
// for alpha in {0.8, 1.0, 1.2} at 50% deployment.
//
// Paper headlines: BGP degrades as skew grows; at alpha=1.0, 40% of MIFO
// flows achieve 500 Mbps vs 17% (MIRO) and 7% (BGP). Reproduction target:
// the same ordering at every alpha, and a BGP curve that worsens with
// alpha.

#include "bench_common.hpp"

namespace {

using namespace mifo;

void print_fig6() {
  const auto s = bench::load_scale(400, 8000, 0, 800.0);
  const auto g = bench::make_topology(s);

  // Generate each alpha's trace up front, then run the nine (alpha, mode)
  // sweep arms concurrently and print in deterministic order.
  const std::vector<double> alphas{0.8, 1.0, 1.2};
  std::vector<std::vector<traffic::FlowSpec>> specs(alphas.size());
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    traffic::PowerLawParams tp;
    tp.num_flows = s.flows;
    tp.arrival_rate = s.arrival;
    tp.alpha = alphas[i];
    tp.seed = s.seed * 3 + 1;
    specs[i] = traffic::power_law_traffic(g, tp);
  }

  const std::vector<std::pair<sim::RoutingMode, double>> modes{
      {sim::RoutingMode::Bgp, 0.0},
      {sim::RoutingMode::Miro, 0.5},
      {sim::RoutingMode::Mifo, 0.5}};
  obs::Registry reg;
  std::vector<bench::ArmResult> results(alphas.size() * modes.size());
  std::vector<std::function<void()>> arms;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ",alpha=%.1f", alphas[i]);
    const std::string sfx = suffix;
    for (std::size_t m = 0; m < modes.size(); ++m) {
      arms.emplace_back([&, i, m, sfx] {
        results[i * modes.size() + m] =
            bench::run_arm(g, specs[i], modes[m].first, modes[m].second,
                           s.seed, &reg, 0.05, sfx);
      });
    }
  }
  bench::run_arms(s.threads, arms);

  for (std::size_t i = 0; i < alphas.size(); ++i) {
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Fig. 6: throughput CDF, power-law alpha=%.1f, 50%% "
                  "deployment",
                  alphas[i]);
    bench::print_throughput_cdf(
        title, {{"BGP", &results[i * modes.size()].records},
                {"MIRO", &results[i * modes.size() + 1].records},
                {"MIFO", &results[i * modes.size() + 2].records}});
  }
  std::printf("\npaper (alpha=1.0): 40%% MIFO / 17%% MIRO / 7%% BGP flows "
              ">=500 Mbps; BGP degrades as skew grows\n");
  bench::emit_run_artifact("fig6_throughput_powerlaw", s, results, &reg);
}

void BM_PowerLawTrafficGen(benchmark::State& state) {
  const auto s = bench::load_scale(400, 8000, 0, 800.0);
  const auto g = bench::make_topology(s);
  traffic::PowerLawParams tp;
  tp.num_flows = s.flows;
  tp.alpha = 1.0;
  for (auto _ : state) {
    auto specs = traffic::power_law_traffic(g, tp);
    benchmark::DoNotOptimize(specs.size());
  }
  state.SetItemsProcessed(state.iterations() * s.flows);
}
BENCHMARK(BM_PowerLawTrafficGen)->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_fig6)
