// Fig. 6(a–c) — throughput CDFs under power-law (content-provider) traffic
// for alpha in {0.8, 1.0, 1.2} at 50% deployment.
//
// Paper headlines: BGP degrades as skew grows; at alpha=1.0, 40% of MIFO
// flows achieve 500 Mbps vs 17% (MIRO) and 7% (BGP). Reproduction target:
// the same ordering at every alpha, and a BGP curve that worsens with
// alpha.

#include "bench_common.hpp"

namespace {

using namespace mifo;

void print_fig6() {
  const auto s = bench::load_scale(400, 8000, 0, 800.0);
  const auto g = bench::make_topology(s);

  for (const double alpha : {0.8, 1.0, 1.2}) {
    traffic::PowerLawParams tp;
    tp.num_flows = s.flows;
    tp.arrival_rate = s.arrival;
    tp.alpha = alpha;
    tp.seed = s.seed * 3 + 1;
    const auto specs = traffic::power_law_traffic(g, tp);

    const auto bgp =
        bench::run_sim(g, specs, sim::RoutingMode::Bgp, 0.0, s.seed);
    const auto miro =
        bench::run_sim(g, specs, sim::RoutingMode::Miro, 0.5, s.seed);
    const auto mifo =
        bench::run_sim(g, specs, sim::RoutingMode::Mifo, 0.5, s.seed);
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Fig. 6: throughput CDF, power-law alpha=%.1f, 50%% "
                  "deployment",
                  alpha);
    bench::print_throughput_cdf(
        title, {{"BGP", &bgp}, {"MIRO", &miro}, {"MIFO", &mifo}});
  }
  std::printf("\npaper (alpha=1.0): 40%% MIFO / 17%% MIRO / 7%% BGP flows "
              ">=500 Mbps; BGP degrades as skew grows\n");
}

void BM_PowerLawTrafficGen(benchmark::State& state) {
  const auto s = bench::load_scale(400, 8000, 0, 800.0);
  const auto g = bench::make_topology(s);
  traffic::PowerLawParams tp;
  tp.num_flows = s.flows;
  tp.alpha = 1.0;
  for (auto _ : state) {
    auto specs = traffic::power_law_traffic(g, tp);
    benchmark::DoNotOptimize(specs.size());
  }
  state.SetItemsProcessed(state.iterations() * s.flows);
}
BENCHMARK(BM_PowerLawTrafficGen)->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_fig6)
