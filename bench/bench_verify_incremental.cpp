// Incremental vs full verification cost on the scaled deployment
// (docs/VERIFICATION.md, "Incremental verification").
//
// The dirty-set engine (verify/incremental.hpp) memoizes per-destination
// proofs and re-runs the provers only on the destinations a change can have
// invalidated. This bench quantifies the payoff on the scaled Fig. 12-style
// topology (testbed::scaled_expand_mask, 1000+ routers): for single-event
// faults — one link down, one link down plus a daemon reconvergence tick,
// one prefix withdrawal — it compares the states the incremental engine
// re-explores against a from-scratch full-prover pass on the same state,
// and cross-checks every incremental verdict against the full provers
// (differential must hold, or the numbers are meaningless).
//
// Target: >=10x reduction in re-explored states for single-link and
// single-withdraw events (check.sh parses the artifact and enforces it).
// A pure link flip is the extreme case: the deflection graph never reads
// port liveness, so the dirty set is empty and nothing is re-explored.
//
// Scale knobs: MIFO_TOPO_N (ASes; default 500 -> ~1269 routers),
// MIFO_DEST_POOL (prefixes; default 16), MIFO_SEED.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "chaos/route_control.hpp"
#include "dataplane/change_log.hpp"
#include "testbed/emulation.hpp"
#include "testbed/sharded_emulation.hpp"
#include "verify/changeset.hpp"
#include "verify/deflection_graph.hpp"
#include "verify/incremental.hpp"
#include "verify/lint.hpp"
#include "verify/valley.hpp"

namespace {

using namespace mifo;

/// A MIFO-enabled deployment with owners spread across the id space —
/// the same shape mifo-verify builds, at the caller's scale.
struct Deployment {
  topo::AsGraph g;
  testbed::Emulation em;
  std::vector<std::pair<dp::Addr, AsId>> owners;
  std::vector<AsId> owner_ases;
};

Deployment build_deployment(std::size_t num_ases, std::size_t dests,
                            std::uint64_t seed, bool expand) {
  Deployment d;
  topo::GeneratorParams gp;
  gp.num_ases = num_ases;
  gp.num_tier1 = 10;  // match testbed::ScaledParams' 1269-router topology
  gp.seed = seed;
  d.g = topo::generate_topology(gp);
  const std::vector<bool> mask =
      expand ? testbed::scaled_expand_mask(d.g, 16)
             : std::vector<bool>(num_ases, false);
  testbed::EmulationBuilder builder(d.g, mask);
  for (std::size_t i = 0; i < dests; ++i) {
    const std::size_t as = i * (num_ases - 1) / (dests > 1 ? dests - 1 : 1);
    d.owner_ases.push_back(AsId(static_cast<std::uint32_t>(as)));
    builder.attach_host(d.owner_ases.back());
  }
  d.em = builder.finalize();
  dp::Network& net = *d.em.net;
  for (std::size_t i = 0; i < net.num_routers(); ++i) {
    net.router(RouterId(static_cast<std::uint32_t>(i)))
        .config()
        .mifo_enabled = true;
  }
  for (const auto& daemon : d.em.daemons) daemon->tick(net, 0.0);
  d.owners.reserve(d.em.hosts.size());
  for (const auto& att : d.em.hosts) d.owners.emplace_back(att.addr, att.as);
  return d;
}

std::vector<std::string> rendered(const auto& items) {
  std::vector<std::string> out;
  out.reserve(items.size());
  for (const auto& item : items) out.push_back(item.to_string());
  std::sort(out.begin(), out.end());
  return out;
}

struct ArmRow {
  std::string name;
  std::size_t dirty = 0;
  std::size_t states = 0;
  std::size_t cache_hits = 0;
  std::size_t full_states = 0;  ///< from-scratch cost on the same state
  double reduction = 0.0;
  bool match = false;  ///< incremental verdict == full-prover verdict
};

/// Drains the change log, runs the warm incremental pass, and checks the
/// result against a from-scratch full-prover run on the same state.
ArmRow measure_arm(const std::string& name, Deployment& d,
                   dp::ChangeLog& log, verify::ChangeSet& changes,
                   verify::IncrementalVerifier& inc) {
  const dp::Network& net = *d.em.net;
  changes.drain(log);
  const auto res = inc.check(net, d.g, d.em.daemons, d.owners, changes);
  changes.clear();

  const auto full_loop = verify::check_loop_freedom(net);
  const auto full_valley = verify::check_valley_freedom(net);
  const auto full_lint =
      verify::lint_deployment(net, d.g, d.em.daemons, d.owners);

  ArmRow row;
  row.name = name;
  row.dirty = res.stats.dirty_destinations;
  row.states = res.stats.states_explored;
  row.cache_hits = res.stats.cache_hits;
  row.full_states = full_loop.stats.states + full_valley.stats.states;
  row.reduction = static_cast<double>(row.full_states) /
                  static_cast<double>(std::max<std::size_t>(1, row.states));
  row.match =
      full_loop.loop_free == res.loop.loop_free &&
      rendered(full_loop.cycles) == rendered(res.loop.cycles) &&
      rendered(full_valley.violations) == rendered(res.valley.violations) &&
      rendered(full_lint) == rendered(res.lint);
  return row;
}

void print_verify_incremental() {
  const std::uint64_t seed = env_u64("MIFO_SEED", 42);
  const std::size_t num_ases = env_u64("MIFO_TOPO_N", 500);
  const std::size_t dests = env_u64("MIFO_DEST_POOL", 16);

  Deployment d = build_deployment(num_ases, dests, seed, /*expand=*/true);
  dp::Network& net = *d.em.net;
  chaos::RouteController ctl(d.em, d.g);

  dp::ChangeLog log;
  verify::ChangeSet changes;
  verify::IncrementalVerifier inc(verify::IncrementalConfig{
      .lint = true, .valley = true, .blackhole = false});
  net.attach_change_log(&log);
  const auto cold = inc.check(net, d.g, d.em.daemons, d.owners, changes);

  std::printf("=== incremental verification: %zu routers, %zu destinations "
              "(cold pass: %zu states) ===\n",
              net.num_routers(), cold.stats.destinations,
              cold.stats.states_explored);

  std::vector<ArmRow> arms;

  // Arm 1: one inter-AS link down, nothing else. The deflection graph is
  // port-state-independent, so the dirty set is provably empty. Pick a port
  // some router has installed as an alternative, so arm 2's reconvergence
  // tick has a spare to re-elect.
  {
    RouterId down_r = RouterId::invalid();
    PortId down_p = PortId::invalid();
    for (std::size_t i = 0; i < net.num_routers() && !down_r.valid(); ++i) {
      const dp::Router& r = net.router(RouterId(static_cast<std::uint32_t>(i)));
      for (const auto& [dst, fe] : r.fib()) {
        if (fe.alt_port.valid() &&
            r.port(fe.alt_port).kind == dp::PortKind::Ebgp) {
          down_r = RouterId(static_cast<std::uint32_t>(i));
          down_p = fe.alt_port;
          break;
        }
      }
    }
    if (!down_r.valid()) {
      const auto& eg = d.em.wirings[d.owner_ases.front().value()].egresses.front();
      down_r = eg.router;
      down_p = eg.port;
    }
    net.set_port_up(down_r, down_p, false);
    arms.push_back(measure_arm("link_down", d, log, changes, inc));
  }

  // Arm 2: the daemons reconverge on the failed link — alt ports re-elected
  // where the dead egress was the spare. Only those destinations re-prove.
  {
    for (const auto& daemon : d.em.daemons) daemon->tick(net, 0.02);
    arms.push_back(measure_arm("link_down_reconv", d, log, changes, inc));
  }

  // Arm 3: withdraw one origin. Exactly that prefix's proofs invalidate.
  {
    const bool ok = ctl.withdraw(d.owner_ases[dests / 2]);
    arms.push_back(measure_arm(ok ? "withdraw" : "withdraw_noop", d, log,
                               changes, inc));
  }

  std::printf("%-18s %7s %9s %7s %11s %10s %6s\n", "arm", "dirty", "states",
              "cached", "full_states", "reduction", "diff");
  bool all_match = true;
  for (const ArmRow& a : arms) {
    all_match = all_match && a.match;
    std::printf("%-18s %7zu %9zu %7zu %11zu %9.1fx %6s\n", a.name.c_str(),
                a.dirty, a.states, a.cache_hits, a.full_states, a.reduction,
                a.match ? "OK" : "DIFF");
  }
  std::printf("differential: incremental verdicts %s the full provers on "
              "every arm\n",
              all_match ? "identical to" : "DIVERGED from");
  std::printf("target: >=10x state reduction for single-link and "
              "single-withdraw events\n");

  // mifo.run_artifact.v1 (the check.sh gate parses this).
  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json::str("mifo.run_artifact.v1"));
  root.set("bench", obs::Json::str("verify_incremental"));
  obs::Json scale = obs::Json::object();
  scale.set("topo_n", obs::Json::num(static_cast<std::uint64_t>(num_ases)));
  scale.set("routers",
            obs::Json::num(static_cast<std::uint64_t>(net.num_routers())));
  scale.set("destinations",
            obs::Json::num(static_cast<std::uint64_t>(dests)));
  scale.set("seed", obs::Json::num(seed));
  root.set("scale", std::move(scale));
  obs::Json cold_j = obs::Json::object();
  cold_j.set("destinations", obs::Json::num(static_cast<std::uint64_t>(
                                 cold.stats.destinations)));
  cold_j.set("states_explored", obs::Json::num(static_cast<std::uint64_t>(
                                    cold.stats.states_explored)));
  root.set("cold", std::move(cold_j));
  obs::Json ja = obs::Json::array();
  for (const ArmRow& a : arms) {
    obs::Json j = obs::Json::object();
    j.set("name", obs::Json::str(a.name));
    j.set("dirty_destinations",
          obs::Json::num(static_cast<std::uint64_t>(a.dirty)));
    j.set("states_explored",
          obs::Json::num(static_cast<std::uint64_t>(a.states)));
    j.set("cache_hits",
          obs::Json::num(static_cast<std::uint64_t>(a.cache_hits)));
    j.set("full_states",
          obs::Json::num(static_cast<std::uint64_t>(a.full_states)));
    j.set("reduction", obs::Json::num(a.reduction));
    j.set("differential_match", obs::Json::boolean(a.match));
    ja.push(std::move(j));
  }
  root.set("arms", std::move(ja));
  const std::string path = obs::write_artifact("verify_incremental", root);
  if (!path.empty()) std::printf("\nartifact: %s\n", path.c_str());
}

/// Timing benchmarks at differential-test scale (48 ASes) so iterations
/// stay sub-100ms.
void BM_FullProvers(benchmark::State& state) {
  Deployment d = build_deployment(48, 8, 42, /*expand=*/false);
  const dp::Network& net = *d.em.net;
  std::size_t states = 0;
  for (auto _ : state) {
    const auto lc = verify::check_loop_freedom(net);
    const auto vc = verify::check_valley_freedom(net);
    const auto lint = verify::lint_deployment(net, d.g, d.em.daemons,
                                              d.owners);
    states = lc.stats.states + vc.stats.states;
    benchmark::DoNotOptimize(lc.loop_free && vc.valley_free && lint.empty());
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_FullProvers)->Unit(benchmark::kMicrosecond);

void BM_IncrementalAllCached(benchmark::State& state) {
  Deployment d = build_deployment(48, 8, 42, /*expand=*/false);
  verify::ChangeSet changes;
  verify::IncrementalVerifier inc;
  (void)inc.check(*d.em.net, d.g, d.em.daemons, d.owners, changes);
  std::size_t hits = 0;
  for (auto _ : state) {
    const auto res = inc.check(*d.em.net, d.g, d.em.daemons, d.owners,
                               changes);
    hits = res.stats.cache_hits;
    benchmark::DoNotOptimize(res.loop.loop_free);
  }
  state.counters["cache_hits"] = static_cast<double>(hits);
}
BENCHMARK(BM_IncrementalAllCached)->Unit(benchmark::kMicrosecond);

void BM_IncrementalOneDirty(benchmark::State& state) {
  Deployment d = build_deployment(48, 8, 42, /*expand=*/false);
  verify::ChangeSet changes;
  verify::IncrementalVerifier inc;
  (void)inc.check(*d.em.net, d.g, d.em.daemons, d.owners, changes);
  std::size_t states = 0;
  for (auto _ : state) {
    changes.note_fib(RouterId(0), d.owners.front().first);
    const auto res = inc.check(*d.em.net, d.g, d.em.daemons, d.owners,
                               changes);
    changes.clear();
    states = res.stats.states_explored;
    benchmark::DoNotOptimize(res.loop.loop_free);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_IncrementalOneDirty)->Unit(benchmark::kMicrosecond);

}  // namespace

MIFO_BENCH_MAIN(print_verify_incremental)
