// Sharded packet plane scaling (DESIGN.md §6): aggregate forwarding rate of
// the scaled Fig. 12-style scenario (1000+ routers, testbed/
// sharded_emulation.hpp) versus worker count, with the serial dp::Network as
// arm zero. Every arm must reproduce the serial arm's outcome digest —
// identical per-flow completions, drop buckets and conservation totals — so
// this bench doubles as the full-scale sharded-vs-serial differential gate
// scripts/check.sh parses out of the run artifact.
//
// Speedup is wall-clock and therefore needs hardware: the >=3x-at-4-workers
// target assumes at least four hardware threads. The artifact records
// hardware_threads so a single-core CI box reporting ~1x reads as what it
// is — correctness evidence with amortized-overhead numbers, not a scaling
// measurement.
//
// Scale knobs: MIFO_TOPO_N (ASes; default 500 -> ~1269 routers), MIFO_FLOWS
// (total flows), MIFO_FLOW_MB, MIFO_SEED.

#include <algorithm>
#include <thread>

#include "bench_common.hpp"
#include "testbed/sharded_emulation.hpp"

namespace {

using namespace mifo;

testbed::ScaledParams scale_from_env() {
  testbed::ScaledParams p;
  p.num_ases = env_u64("MIFO_TOPO_N", p.num_ases);
  const std::size_t flows =
      env_u64("MIFO_FLOWS", p.num_host_pairs * p.flows_per_pair);
  p.num_host_pairs = std::max<std::size_t>(1, flows / p.flows_per_pair);
  p.flow_size = env_u64("MIFO_FLOW_MB", 1) * kMegaByte;
  p.seed = env_u64("MIFO_SEED", 42);
  return p;
}

struct Arm {
  std::string name;
  std::size_t shards = 0;  ///< 0 = serial oracle engine
  testbed::ScaledResult r;
};

void print_sharded_plane() {
  testbed::ScaledParams p = scale_from_env();

  std::vector<Arm> arms;
  arms.push_back({"serial", 0, {}});
  for (const std::size_t w : {1u, 2u, 4u, 8u}) {
    arms.push_back({std::to_string(w) + "w", w, {}});
  }
  // Timing arms are strictly sequential: each sharded arm wants the whole
  // machine to itself.
  for (Arm& a : arms) {
    p.num_shards = a.shards;
    a.r = testbed::run_scaled(p);
  }
  const testbed::ScaledResult& serial = arms.front().r;
  const double serial_pps =
      static_cast<double>(serial.delivered_pkts) / serial.wall_run_seconds;

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("=== sharded packet plane: %zu routers, %zu flows x %llu B "
              "(%u hardware threads) ===\n",
              serial.num_routers, serial.flows_total,
              static_cast<unsigned long long>(p.flow_size), hw);
  std::printf("%-8s %8s %10s %12s %9s %12s %10s %8s %7s\n", "arm", "flows",
              "delivered", "run(s)", "pkts/s", "speedup", "ring_push",
              "overflow", "digest");
  bool digests_ok = true;
  for (const Arm& a : arms) {
    const double pps =
        static_cast<double>(a.r.delivered_pkts) / a.r.wall_run_seconds;
    const bool match = a.r.outcome_digest == serial.outcome_digest;
    digests_ok = digests_ok && match;
    std::printf("%-8s %5zu/%zu %10llu %12.3f %9.0f %11.2fx %10llu %8llu %7s\n",
                a.name.c_str(), a.r.flows_done, a.r.flows_total,
                static_cast<unsigned long long>(a.r.delivered_pkts),
                a.r.wall_run_seconds, pps, pps / serial_pps,
                static_cast<unsigned long long>(a.r.ring_pushed),
                static_cast<unsigned long long>(a.r.ring_overflow),
                match ? "OK" : "DIFF");
  }
  std::printf("differential: %s (every arm vs the serial oracle, digest over "
              "per-flow outcomes + drop buckets)\n",
              digests_ok ? "bit-exact" : "MISMATCH");
  std::printf("target: >=3x at 4 workers; wall-clock speedup needs >=4 "
              "hardware threads (this host: %u)\n", hw);

  // mifo.run_artifact.v1 (the check.sh differential gate parses this).
  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json::str("mifo.run_artifact.v1"));
  root.set("bench", obs::Json::str("sharded_plane"));
  obs::Json scale = obs::Json::object();
  scale.set("topo_n", obs::Json::num(static_cast<std::uint64_t>(p.num_ases)));
  scale.set("routers",
            obs::Json::num(static_cast<std::uint64_t>(serial.num_routers)));
  scale.set("flows",
            obs::Json::num(static_cast<std::uint64_t>(serial.flows_total)));
  scale.set("flow_bytes",
            obs::Json::num(static_cast<std::uint64_t>(p.flow_size)));
  scale.set("seed", obs::Json::num(static_cast<std::uint64_t>(p.seed)));
  scale.set("hardware_threads",
            obs::Json::num(static_cast<std::uint64_t>(hw)));
  root.set("scale", std::move(scale));
  obs::Json ja = obs::Json::array();
  for (const Arm& a : arms) {
    const double pps =
        static_cast<double>(a.r.delivered_pkts) / a.r.wall_run_seconds;
    obs::Json j = obs::Json::object();
    j.set("name", obs::Json::str(a.name));
    j.set("shards", obs::Json::num(static_cast<std::uint64_t>(a.shards)));
    obs::Json s = obs::Json::object();
    s.set("flows_done",
          obs::Json::num(static_cast<std::uint64_t>(a.r.flows_done)));
    s.set("flows_total",
          obs::Json::num(static_cast<std::uint64_t>(a.r.flows_total)));
    s.set("injected_pkts", obs::Json::num(a.r.injected_pkts));
    s.set("delivered_pkts", obs::Json::num(a.r.delivered_pkts));
    s.set("wall_run_seconds", obs::Json::num(a.r.wall_run_seconds));
    s.set("pkts_per_sec", obs::Json::num(pps));
    s.set("speedup_vs_serial", obs::Json::num(pps / serial_pps));
    s.set("last_completion_s", obs::Json::num(a.r.last_completion));
    j.set("summary", std::move(s));
    obs::Json rings = obs::Json::object();
    rings.set("pushed", obs::Json::num(a.r.ring_pushed));
    rings.set("overflow", obs::Json::num(a.r.ring_overflow));
    rings.set("occupancy_peak",
              obs::Json::num(static_cast<std::uint64_t>(a.r.ring_peak)));
    obs::Json pairs = obs::Json::array();
    for (const dp::RingStats& rs : a.r.ring_pairs) {
      obs::Json pj = obs::Json::object();
      pj.set("from", obs::Json::num(static_cast<std::uint64_t>(rs.from)));
      pj.set("to", obs::Json::num(static_cast<std::uint64_t>(rs.to)));
      pj.set("pushed", obs::Json::num(rs.pushed));
      pj.set("overflow", obs::Json::num(rs.overflow));
      pj.set("occupancy_peak",
             obs::Json::num(static_cast<std::uint64_t>(rs.peak)));
      pairs.push(std::move(pj));
    }
    rings.set("pairs", std::move(pairs));
    j.set("rings", std::move(rings));
    obs::Json drops = obs::Json::object();
    for (const auto& [reason, count] : a.r.drops) {
      drops.set(reason, obs::Json::num(count));
    }
    j.set("drops", std::move(drops));
    char digest[20];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(a.r.outcome_digest));
    j.set("outcome_digest", obs::Json::str(digest));
    j.set("digest_matches_serial",
          obs::Json::boolean(a.r.outcome_digest == serial.outcome_digest));
    ja.push(std::move(j));
  }
  root.set("arms", std::move(ja));
  const std::string path = obs::write_artifact("sharded_plane", root);
  if (!path.empty()) std::printf("\nartifact: %s\n", path.c_str());
}

/// Timing benchmark at differential-test scale (48 ASes) so google-benchmark
/// iterations stay sub-100ms; arg = worker count, 0 = serial engine.
void BM_ScaledRun(benchmark::State& state) {
  testbed::ScaledParams p;
  p.num_ases = 48;
  p.num_tier1 = 4;
  p.num_host_pairs = 8;
  p.flows_per_pair = 2;
  p.flow_size = 200 * 1000;
  p.time_cap = 30.0;
  p.num_shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto r = testbed::run_scaled(p);
    benchmark::DoNotOptimize(r.outcome_digest);
  }
}
BENCHMARK(BM_ScaledRun)->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_sharded_plane)
