// Delta BGP route recomputation under churn (DESIGN.md §5.1b).
//
// `DeltaRoutingTable` maintains one epoch-swapped CSR RouteStore per
// tracked destination and, per routing event, re-runs Gao–Rexford only for
// the destinations whose best-route assignment the event can change
// (RIB-row-only changes get a view patch with no decision run). This bench
// drives a seeded churn mix — prefix withdrawals/re-announcements
// dominating occasional session flaps, the shape of measured BGP update
// streams — over the scaled Fig. 12-style deployment
// (testbed::scaled_expand_mask, 1269 routers at default scale) and
// reports, per event, the reconvergence latency and the recompute-work
// reduction against the from-scratch baseline (events * tracked
// destinations). Every few events the retained from-scratch oracle
// (`differential_check`) re-verifies each published segment; any mismatch
// invalidates the run (check.sh enforces zero).
//
// Target: >=10x fewer destinations recomputed than a rebuild-everything
// policy across the churn mix, with sub-second per-event reconvergence
// (check.sh parses the artifact and enforces the reduction; latency lives
// in the nondeterministic `timing` section, which byte-reproducibility
// diffs strip).
//
// Scale knobs: MIFO_TOPO_N (ASes; default 500 -> ~1269 routers),
// MIFO_DEST_POOL (tracked destinations; default 64), MIFO_SEED.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "bgp/delta.hpp"
#include "common/rng.hpp"
#include "testbed/emulation.hpp"
#include "testbed/sharded_emulation.hpp"

namespace {

using namespace mifo;
using bgp::DeltaRoutingTable;
using bgp::DeltaStats;
using bgp::RouteEvent;

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  return v[static_cast<std::size_t>(idx + 0.5)];
}

/// The scaled deployment (for the router count headline) plus the AS-level
/// structures the delta table runs on.
struct Setup {
  topo::AsGraph g;
  std::size_t routers = 0;
  std::vector<AsId> dests;
  std::vector<std::pair<AsId, AsId>> edges;
};

Setup build_setup(std::size_t num_ases, std::size_t dest_pool,
                  std::uint64_t seed) {
  Setup s;
  topo::GeneratorParams gp;
  gp.num_ases = num_ases;
  gp.num_tier1 = 10;  // match testbed::ScaledParams' 1269-router topology
  gp.seed = seed;
  s.g = topo::generate_topology(gp);
  testbed::EmulationBuilder builder(s.g, testbed::scaled_expand_mask(s.g, 16));
  const testbed::Emulation em = builder.finalize();
  s.routers = em.net->num_routers();

  const std::size_t dests = std::min(dest_pool, num_ases);
  for (std::size_t i = 0; i < dests; ++i) {
    const std::size_t as = i * (num_ases - 1) / (dests > 1 ? dests - 1 : 1);
    s.dests.push_back(AsId(static_cast<std::uint32_t>(as)));
  }
  for (std::uint32_t i = 0; i < s.g.num_ases(); ++i) {
    const AsId a(i);
    for (const auto& nb : s.g.neighbors(a)) {
      if (a < nb.as) s.edges.emplace_back(a, nb.as);
    }
  }
  return s;
}

struct KindRow {
  const char* name;
  std::size_t events = 0;
  std::size_t recomputed = 0;
  std::size_t patched = 0;
  std::size_t unchanged = 0;
  std::vector<double> latency_s{};
};

/// Totals of one seeded churn run over a fresh delta table (shared by the
/// figure print and BM_ChurnWorkReduction, whose exported counters land in
/// BENCH_bench_route_delta.json).
struct ChurnTotals {
  KindRow rows[4] = {{"withdraw"}, {"reannounce"}, {"session_down"},
                     {"session_up"}};
  std::size_t universe = 0;
  std::size_t applied = 0;
  std::size_t recomputed = 0;
  std::size_t patched = 0;
  std::size_t unchanged = 0;
  std::size_t checks = 0;
  std::size_t mismatches = 0;
  std::vector<double> latency_s;

  [[nodiscard]] std::size_t full_work() const { return applied * universe; }
  [[nodiscard]] double reduction() const {
    return static_cast<double>(full_work()) /
           static_cast<double>(std::max<std::size_t>(1, recomputed));
  }
};

ChurnTotals run_churn(const Setup& s, std::uint64_t seed,
                      std::size_t num_events) {
  DeltaRoutingTable table(s.g, s.dests);
  ChurnTotals t;
  t.universe = table.destinations().size();
  t.latency_s.reserve(num_events);
  std::vector<AsId> live(s.dests);
  std::vector<AsId> withdrawn;
  std::vector<std::pair<AsId, AsId>> up_edges(s.edges);
  std::vector<std::pair<AsId, AsId>> down_edges;

  Rng rng(seed * 9973 + 5);
  for (std::size_t e = 0; e < num_events; ++e) {
    // Weighted churn mix: 8-in-10 prefix events, 2-in-10 session flaps —
    // the shape of measured BGP update streams, where per-prefix
    // announce/withdraw churn outnumbers session resets by a wide margin.
    // Repairs draw from the live failure pools so the run stays busy and
    // ends near the initial state.
    std::size_t kind;
    const std::uint64_t dice = rng.bounded(10);
    if (dice < 4) {
      kind = live.empty() ? 1 : 0;
    } else if (dice < 8) {
      kind = withdrawn.empty() ? 0 : 1;
    } else if (dice == 8) {
      kind = up_edges.empty() ? 3 : 2;
    } else {
      kind = down_edges.empty() ? 2 : 3;
    }
    RouteEvent ev = RouteEvent::withdraw(AsId::invalid());
    if (kind == 0) {
      const std::size_t i = rng.bounded(live.size());
      ev = RouteEvent::withdraw(live[i]);
      withdrawn.push_back(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else if (kind == 1) {
      const std::size_t i = rng.bounded(withdrawn.size());
      ev = RouteEvent::reannounce(withdrawn[i]);
      live.push_back(withdrawn[i]);
      withdrawn[i] = withdrawn.back();
      withdrawn.pop_back();
    } else if (kind == 2) {
      const std::size_t i = rng.bounded(up_edges.size());
      ev = RouteEvent::session_down(up_edges[i].first, up_edges[i].second);
      down_edges.push_back(up_edges[i]);
      up_edges[i] = up_edges.back();
      up_edges.pop_back();
    } else {
      const std::size_t i = rng.bounded(down_edges.size());
      ev = RouteEvent::session_up(down_edges[i].first, down_edges[i].second);
      up_edges.push_back(down_edges[i]);
      down_edges[i] = down_edges.back();
      down_edges.pop_back();
    }

    const auto t0 = std::chrono::steady_clock::now();
    const DeltaStats st = table.apply(ev);
    const auto t1 = std::chrono::steady_clock::now();
    if (!st.applied) continue;
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    ++t.applied;
    t.recomputed += st.recomputed;
    t.patched += st.patched;
    t.unchanged += st.unchanged;
    t.latency_s.push_back(secs);
    t.rows[kind].events += 1;
    t.rows[kind].recomputed += st.recomputed;
    t.rows[kind].patched += st.patched;
    t.rows[kind].unchanged += st.unchanged;
    t.rows[kind].latency_s.push_back(secs);

    if ((e + 1) % 25 == 0) {
      ++t.checks;
      t.mismatches += table.differential_check().size();
    }
  }
  ++t.checks;
  t.mismatches += table.differential_check().size();
  return t;
}

void print_route_delta() {
  const std::uint64_t seed = env_u64("MIFO_SEED", 42);
  const std::size_t num_ases = env_u64("MIFO_TOPO_N", 500);
  const std::size_t dest_pool = env_u64("MIFO_DEST_POOL", 64);
  const std::size_t num_events = env_u64("MIFO_EVENTS", 200);

  const Setup s = build_setup(num_ases, dest_pool, seed);
  const ChurnTotals t = run_churn(s, seed, num_events);
  const std::size_t universe = t.universe;
  const std::size_t applied_events = t.applied;
  const std::size_t total_recomputed = t.recomputed;
  const std::size_t total_patched = t.patched;
  const std::size_t total_unchanged = t.unchanged;
  const std::size_t differential_checks = t.checks;
  const std::size_t differential_mismatches = t.mismatches;
  const std::vector<double>& latency_s = t.latency_s;
  const std::size_t full_work = t.full_work();
  const double reduction = t.reduction();

  std::printf("=== delta route recomputation: %zu ASes, %zu routers, "
              "%zu tracked destinations, %zu churn events ===\n",
              s.g.num_ases(), s.routers, universe, num_events);
  std::printf("%-14s %7s %10s %9s %9s %10s %10s %10s\n", "event", "count",
              "recomputed", "patched", "kept", "p50_us", "p99_us", "max_us");
  for (const KindRow& r : t.rows) {
    std::printf("%-14s %7zu %10zu %9zu %9zu %10.1f %10.1f %10.1f\n", r.name,
                r.events, r.recomputed, r.patched, r.unchanged,
                1e6 * percentile(r.latency_s, 0.5),
                1e6 * percentile(r.latency_s, 0.99),
                1e6 * percentile(r.latency_s, 1.0));
  }
  std::printf("recompute work: %zu of %zu destination decision runs "
              "(%.1fx reduction vs rebuild-everything), %zu view patches\n",
              total_recomputed, full_work, reduction, total_patched);
  std::printf("per-event reconvergence: p50 %.1f us, p99 %.1f us, max %.3f "
              "ms (sub-second target)\n",
              1e6 * percentile(latency_s, 0.5),
              1e6 * percentile(latency_s, 0.99),
              1e3 * percentile(latency_s, 1.0));
  std::printf("differential: %zu oracle sweeps, %zu mismatches\n",
              differential_checks, differential_mismatches);
  std::printf("target: >=10x recompute reduction, 0 mismatches\n");

  // mifo.run_artifact.v1 (the check.sh gate parses this). Wall-clock data
  // is nondeterministic; artifact consumers byte-compare same-seed runs
  // after dropping the `timing` section (scripts/check.sh).
  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json::str("mifo.run_artifact.v1"));
  root.set("bench", obs::Json::str("route_delta"));
  obs::Json scale = obs::Json::object();
  scale.set("topo_n", obs::Json::num(static_cast<std::uint64_t>(num_ases)));
  scale.set("routers", obs::Json::num(static_cast<std::uint64_t>(s.routers)));
  scale.set("destinations",
            obs::Json::num(static_cast<std::uint64_t>(universe)));
  scale.set("events", obs::Json::num(static_cast<std::uint64_t>(num_events)));
  scale.set("seed", obs::Json::num(seed));
  root.set("scale", std::move(scale));
  obs::Json churn = obs::Json::object();
  churn.set("events_applied",
            obs::Json::num(static_cast<std::uint64_t>(applied_events)));
  churn.set("destinations_recomputed",
            obs::Json::num(static_cast<std::uint64_t>(total_recomputed)));
  churn.set("destinations_patched",
            obs::Json::num(static_cast<std::uint64_t>(total_patched)));
  churn.set("destinations_kept",
            obs::Json::num(static_cast<std::uint64_t>(total_unchanged)));
  churn.set("full_rebuild_work",
            obs::Json::num(static_cast<std::uint64_t>(full_work)));
  churn.set("work_reduction", obs::Json::num(reduction));
  churn.set("differential_checks",
            obs::Json::num(static_cast<std::uint64_t>(differential_checks)));
  churn.set("differential_mismatches",
            obs::Json::num(
                static_cast<std::uint64_t>(differential_mismatches)));
  root.set("churn", std::move(churn));
  obs::Json ja = obs::Json::array();
  for (const KindRow& r : t.rows) {
    obs::Json j = obs::Json::object();
    j.set("name", obs::Json::str(r.name));
    j.set("events", obs::Json::num(static_cast<std::uint64_t>(r.events)));
    j.set("recomputed",
          obs::Json::num(static_cast<std::uint64_t>(r.recomputed)));
    j.set("patched", obs::Json::num(static_cast<std::uint64_t>(r.patched)));
    j.set("kept", obs::Json::num(static_cast<std::uint64_t>(r.unchanged)));
    ja.push(std::move(j));
  }
  root.set("arms", std::move(ja));
  obs::Json timing = obs::Json::object();
  timing.set("event_p50_us", obs::Json::num(1e6 * percentile(latency_s, 0.5)));
  timing.set("event_p99_us", obs::Json::num(1e6 * percentile(latency_s, 0.99)));
  timing.set("event_max_us", obs::Json::num(1e6 * percentile(latency_s, 1.0)));
  root.set("timing", std::move(timing));
  const std::string path = obs::write_artifact("route_delta", root);
  if (!path.empty()) std::printf("\nartifact: %s\n", path.c_str());
}

/// The headline gate, exported as google-benchmark counters so the
/// committed BENCH_bench_route_delta.json carries the recompute-reduction
/// and differential-mismatch figures (check.sh asserts work_reduction >= 10
/// and differential_mismatches == 0 at the committed default scale). Same
/// seeded churn mix and knobs as the figure print above.
void BM_ChurnWorkReduction(benchmark::State& state) {
  const std::uint64_t seed = env_u64("MIFO_SEED", 42);
  const std::size_t num_ases = env_u64("MIFO_TOPO_N", 500);
  const std::size_t dest_pool = env_u64("MIFO_DEST_POOL", 64);
  const std::size_t num_events = env_u64("MIFO_EVENTS", 200);
  const Setup s = build_setup(num_ases, dest_pool, seed);
  ChurnTotals t;
  for (auto _ : state) {
    t = run_churn(s, seed, num_events);
    benchmark::DoNotOptimize(t.recomputed);
  }
  state.counters["events"] = static_cast<double>(t.applied);
  state.counters["destinations"] = static_cast<double>(t.universe);
  state.counters["recomputed"] = static_cast<double>(t.recomputed);
  state.counters["patched"] = static_cast<double>(t.patched);
  state.counters["work_reduction"] = t.reduction();
  state.counters["differential_mismatches"] =
      static_cast<double>(t.mismatches);
}
BENCHMARK(BM_ChurnWorkReduction)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);  // deterministic counters, one full churn run

/// Timing benchmarks at differential-test scale (48 ASes, every AS
/// tracked) so iterations stay sub-100ms.

topo::AsGraph micro_graph() {
  topo::GeneratorParams gp;
  gp.num_ases = 48;
  gp.seed = 42;
  return topo::generate_topology(gp);
}

std::vector<AsId> micro_dests(const topo::AsGraph& g) {
  std::vector<AsId> d;
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) d.emplace_back(i);
  return d;
}

void BM_DeltaWithdrawReannounce(benchmark::State& state) {
  const topo::AsGraph g = micro_graph();
  DeltaRoutingTable table(g, micro_dests(g));
  std::size_t recomputed = 0;
  for (auto _ : state) {
    recomputed = table.apply(RouteEvent::withdraw(AsId(7))).recomputed;
    recomputed += table.apply(RouteEvent::reannounce(AsId(7))).recomputed;
    benchmark::DoNotOptimize(recomputed);
  }
  state.counters["recomputed"] = static_cast<double>(recomputed);
}
BENCHMARK(BM_DeltaWithdrawReannounce)->Unit(benchmark::kMicrosecond);

void BM_DeltaSessionFlap(benchmark::State& state) {
  const topo::AsGraph g = micro_graph();
  DeltaRoutingTable table(g, micro_dests(g));
  const AsId a(0);
  const AsId b = g.neighbors(a).front().as;
  std::size_t recomputed = 0;
  std::size_t patched = 0;
  for (auto _ : state) {
    DeltaStats st = table.apply(RouteEvent::session_down(a, b));
    recomputed = st.recomputed;
    patched = st.patched;
    st = table.apply(RouteEvent::session_up(a, b));
    recomputed += st.recomputed;
    patched += st.patched;
    benchmark::DoNotOptimize(recomputed);
  }
  state.counters["recomputed"] = static_cast<double>(recomputed);
  state.counters["patched"] = static_cast<double>(patched);
}
BENCHMARK(BM_DeltaSessionFlap)->Unit(benchmark::kMicrosecond);

void BM_FullRebuildAllDestinations(benchmark::State& state) {
  // The baseline the delta engine displaces: from-scratch Gao-Rexford for
  // every tracked destination (what a withdraw would cost without deltas).
  const topo::AsGraph g = micro_graph();
  DeltaRoutingTable table(g, micro_dests(g));
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes = 0;
    for (const AsId d : table.destinations()) {
      bytes += table.rebuild_full(d).bytes();
    }
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["stores"] =
      static_cast<double>(table.destinations().size());
}
BENCHMARK(BM_FullRebuildAllDestinations)->Unit(benchmark::kMicrosecond);

}  // namespace

MIFO_BENCH_MAIN(print_route_delta)
