// Fig. 8 — fraction of traffic offloaded to alternative paths as MIFO
// deployment grows from 10% to 100%.
//
// Paper headlines: at full deployment about half the flows travel over
// alternative paths; even 10% deployment offloads a non-trivial ~9%.

#include "bench_common.hpp"

namespace {

using namespace mifo;

void print_fig8() {
  const auto s = bench::load_scale(400, 8000, 64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);

  // Ten independent deployment-sweep arms over the same const topology:
  // fan out on the shared pool, print in deterministic order, and land the
  // per-arm summaries in the run artifact.
  obs::Registry reg;
  std::vector<bench::ArmResult> results(10);
  std::vector<std::function<void()>> arms;
  for (int pct = 10; pct <= 100; pct += 10) {
    arms.emplace_back([&, pct] {
      results[pct / 10 - 1] = bench::run_arm(
          g, specs, sim::RoutingMode::Mifo, pct / 100.0, s.seed, &reg);
    });
  }
  bench::run_arms(s.threads, arms);

  std::printf("=== Fig. 8: traffic offloaded to alternative paths ===\n");
  std::printf("%-12s %22s\n", "deployment", "flows on alt paths (%)");
  for (int pct = 10; pct <= 100; pct += 10) {
    char label[16];
    std::snprintf(label, sizeof(label), "%d%%", pct);
    std::printf("%-12s %21.1f%%\n", label,
                100.0 * sim::offload_fraction(results[pct / 10 - 1].records));
  }
  std::printf("paper: ~9%% at 10%% deployment, ~50%% at 100%%\n");
  bench::emit_run_artifact("fig8_offload", s, results, &reg);
}

void BM_OffloadRun(benchmark::State& state) {
  const auto s = bench::load_scale(400, 2000, 64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);
  for (auto _ : state) {
    auto recs = bench::run_sim(g, specs, sim::RoutingMode::Mifo,
                               static_cast<double>(state.range(0)) / 100.0,
                               s.seed);
    benchmark::DoNotOptimize(sim::offload_fraction(recs));
  }
}
BENCHMARK(BM_OffloadRun)->Arg(10)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_fig8)
