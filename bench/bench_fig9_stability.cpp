// Fig. 9 — path-switch distribution (stability) under full MIFO deployment.
//
// Paper headlines: 67.7% of (switching) flows switch paths exactly once and
// 97.5% at most twice — MIFO does not thrash traffic between paths.

#include "bench_common.hpp"

namespace {

using namespace mifo;

void print_fig9() {
  const auto s = bench::load_scale(400, 8000, 64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);

  // Single full-deployment arm through the shared arm/artifact pipeline so
  // the run lands in a mifo.run_artifact.v1 like the other figures.
  obs::Registry reg;
  std::vector<bench::ArmResult> results(1);
  results[0] =
      bench::run_arm(g, specs, sim::RoutingMode::Mifo, 1.0, s.seed, &reg);
  const auto& recs = results[0].records;
  const auto dist = sim::switch_distribution(recs);

  std::printf("=== Fig. 9: path switches per flow (switching flows) ===\n");
  std::printf("%-12s %12s %12s\n", "#switches", "flows (%)", "paper (%)");
  const char* paper[] = {"67.7", "29.8", "1.8", "0.7"};
  for (std::uint64_t k = 1; k <= 4; ++k) {
    std::printf("%-12llu %11.1f%% %11s%%\n",
                static_cast<unsigned long long>(k),
                100.0 * dist.fraction_of(k), k <= 4 ? paper[k - 1] : "-");
  }
  std::printf("%-12s %11.1f%% %11s%%\n", ">4",
              100.0 * (1.0 - dist.fraction_at_most(4)), "0.0");
  std::printf("switch<=2: %.1f%% (paper 97.5%%), switching flows: %llu of "
              "%zu delivered\n",
              100.0 * dist.fraction_at_most(2),
              static_cast<unsigned long long>(dist.total()), recs.size());
  bench::emit_run_artifact("fig9_stability", s, results, &reg);
}

void BM_StabilityRun(benchmark::State& state) {
  const auto s = bench::load_scale(400, 2000, 64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);
  for (auto _ : state) {
    auto recs = bench::run_sim(g, specs, sim::RoutingMode::Mifo, 1.0, s.seed);
    benchmark::DoNotOptimize(sim::switch_distribution(recs).total());
  }
}
BENCHMARK(BM_StabilityRun)->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_fig9)
