// Ablation A2 — congestion-threshold sweep. The paper leaves the congestion
// definition open ("It is an open to different congestion definitions");
// this sweep quantifies how the deflection trigger affects throughput,
// offload and stability.

#include "bench_common.hpp"

namespace {

using namespace mifo;

void print_ablation() {
  const auto s = bench::load_scale(400, 8000, 64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);
  const std::vector<double> thresholds{0.3, 0.5, 0.7, 0.9};

  // One concurrent arm per threshold plus the BGP baseline, all through
  // run_arm so the sweep lands in the run artifact with solver counters.
  obs::Registry reg;
  std::vector<bench::ArmResult> results(thresholds.size() + 1);
  std::vector<std::function<void()>> arms;
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    arms.emplace_back([&, i] {
      sim::SimConfig cfg;
      cfg.congest_threshold = thresholds[i];
      cfg.low_watermark = thresholds[i] * 0.7;
      char suffix[32];
      std::snprintf(suffix, sizeof(suffix), ",thr=%.1f", thresholds[i]);
      results[i] = bench::run_arm(g, specs, sim::RoutingMode::Mifo, 0.5,
                                  s.seed, &reg, 0.0, suffix, &cfg);
    });
  }
  arms.emplace_back([&] {
    results.back() =
        bench::run_arm(g, specs, sim::RoutingMode::Bgp, 0.0, s.seed, &reg);
  });
  bench::run_arms(s.threads, arms);

  std::printf("=== Ablation A2: congestion threshold sweep (50%% depl.) ===\n");
  std::printf("%-10s %10s %10s %10s %12s\n", "threshold", "mean", ">=500",
              "offload", "avg switches");
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const auto& recs = results[i].records;
    const auto sum = sim::summarize(recs);
    double switches = 0.0;
    for (const auto& r : recs) switches += r.path_switches;
    std::printf("%-10.1f %9.0f %9.1f%% %9.1f%% %12.2f\n", thresholds[i],
                sum.mean_throughput, 100.0 * sum.frac_at_500mbps,
                100.0 * sum.offload,
                switches / static_cast<double>(recs.size()));
  }
  std::printf("(BGP baseline mean for reference: %.0f Mbps)\n",
              sim::summarize(results.back().records).mean_throughput);
  bench::emit_run_artifact("ablation_threshold", s, results, &reg);
}

void BM_ThresholdRun(benchmark::State& state) {
  const auto s = bench::load_scale(400, 2000, 64, 800.0);
  const auto g = bench::make_topology(s);
  const auto specs = bench::make_uniform(g, s);
  sim::SimConfig cfg;
  cfg.mode = sim::RoutingMode::Mifo;
  cfg.congest_threshold = static_cast<double>(state.range(0)) / 10.0;
  cfg.low_watermark = cfg.congest_threshold * 0.7;
  for (auto _ : state) {
    sim::FluidSim fs(g, cfg);
    fs.set_deployment(traffic::random_deployment(g.num_ases(), 0.5, 1));
    benchmark::DoNotOptimize(fs.run(specs).size());
  }
}
BENCHMARK(BM_ThresholdRun)->Arg(5)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_ablation)
