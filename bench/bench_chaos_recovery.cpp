// Chaos recovery — goodput dip and recovery time after a link failure,
// MIFO vs plain BGP (docs/CHAOS.md), the paper's testbed failover
// experiment at emulation scale.
//
// Each arm picks a multihomed stub among the prefix owners, sources every
// flow at its host, and degrades the stub's primary provider link to 5%
// of capacity mid-run (restoring it later). Plain BGP keeps forwarding
// into the shrunken pipe until the link comes back; MIFO routers see the
// egress queue saturate and deflect (customer-tagged, so Eq. 3 permits
// it) onto the second provider, so the goodput dip is shallower and
// recovery does not wait for the repair. Arms (mode x seed) are
// independent emulations and fan out on the shared thread pool; every arm
// also carries the full safety-under-churn verification, so the
// comparison doubles as a chaos-engine soak test.

#include <algorithm>
#include <cmath>
#include <map>

#include "bench_common.hpp"
#include "chaos/engine.hpp"
#include "chaos/plan.hpp"
#include "testbed/emulation.hpp"

namespace {

using namespace mifo;

constexpr SimTime kFailAt = 0.4;
constexpr SimTime kRestoreAt = 0.9;
constexpr SimTime kDuration = 1.4;
constexpr SimTime kBucket = 0.02;
constexpr double kDegradeTo = 0.05;

struct ChaosArmResult {
  std::string name;
  std::uint64_t seed = 0;
  bool mifo = false;
  double baseline_mbps = 0.0;  ///< mean goodput before the fault
  double dip_mbps = 0.0;       ///< worst bucket during the fault window
  double recovery_s = -1.0;    ///< first return to 90% of baseline
  std::size_t flows_done = 0;
  std::size_t flows_total = 0;
  std::uint64_t delivered = 0;
  std::uint64_t injected = 0;
  chaos::Report report;
};

/// The faulted AS: a multihomed edge AS among the prefix owners. Degrading
/// a tier-1 peering link would prove little — peer-tagged transit traffic
/// fails the Eq. 3 tag check and legally cannot deflect — but traffic
/// entering at a multihomed stub is customer-tagged and may swing to the
/// second provider, which is exactly the paper's testbed failover scenario.
AsId fault_stub(const topo::AsGraph& g, const std::vector<AsId>& owners) {
  AsId edge = owners.front();
  std::size_t best_deg = 0;
  for (const AsId as : owners) {
    const std::size_t d = g.degree(as);
    if (d < 2) continue;  // single-homed: no legal alternative exists
    if (best_deg == 0 || d < best_deg) {
      edge = as;
      best_deg = d;
    }
  }
  return edge;
}

/// Which neighbor AS a packet from `from` towards `dst` actually exits
/// through: follow the installed default route, resolving iBGP hops to the
/// sibling border router that owns the eBGP port. Invalid if the FIB has
/// no route or delivery is local.
AsId egress_neighbor(const dp::Network& net, RouterId from, dp::Addr dst) {
  RouterId r = from;
  for (int hop = 0; hop < 8; ++hop) {
    const dp::Router& router = net.router(r);
    const auto fe = router.fib().lookup(dst);
    if (!fe.has_value()) return AsId::invalid();
    const dp::Port& port = router.port(fe->out_port);
    if (port.kind == dp::PortKind::Ebgp) return port.neighbor_as;
    if (port.kind != dp::PortKind::Ibgp || !port.peer.is_router()) {
      return AsId::invalid();  // host delivery: dst is local
    }
    r = RouterId(port.peer.id);
  }
  return AsId::invalid();
}

ChaosArmResult run_chaos_arm(const bench::Scale& s, std::uint64_t seed,
                             bool mifo, obs::Registry* reg) {
  ChaosArmResult r;
  r.name = std::string(mifo ? "MIFO" : "BGP") + "@s" + std::to_string(seed);
  r.seed = seed;
  r.mifo = mifo;

  topo::GeneratorParams gp;
  gp.num_ases = std::min<std::size_t>(s.topo_n, 48);
  gp.seed = seed;
  const topo::AsGraph g = topo::generate_topology(gp);
  const std::size_t n = g.num_ases();

  testbed::EmulationBuilder builder(g, std::vector<bool>(n, false));
  const std::size_t num_dests = std::min<std::size_t>(s.dest_pool, n);
  std::vector<AsId> owners;
  for (std::size_t i = 0; i < num_dests; ++i) {
    owners.push_back(
        AsId(static_cast<std::uint32_t>(i * (n - 1) / (num_dests - 1))));
    builder.attach_host(owners.back());
  }
  const AsId hot_a = fault_stub(g, owners);
  auto em = builder.finalize();
  dp::Network& net = *em.net;
  if (mifo) {
    std::vector<AsId> all;
    for (std::size_t i = 0; i < n; ++i) {
      all.push_back(AsId(static_cast<std::uint32_t>(i)));
    }
    em.enable_mifo(all, dp::RouterConfig{}, 0.01);
  }
  net.enable_delivery_trace(kBucket);

  // Every flow sources at the faulted stub's host and targets only the
  // prefixes whose installed default exits through the stub's *primary*
  // provider — the provider carrying the plurality of the stub's default
  // routes, resolved from the FIBs themselves, not guessed from degree.
  // Degrading that one link therefore hits 100% of the offered load.
  std::size_t src_idx = 0;
  while (em.hosts[src_idx].as != hot_a) ++src_idx;
  RouterId src_router = RouterId::invalid();
  for (std::uint32_t rid = 0; rid < net.num_routers(); ++rid) {
    const dp::Router& router = net.router(RouterId(rid));
    if (router.as() != hot_a) continue;
    for (std::uint32_t p = 0; p < router.num_ports(); ++p) {
      const dp::Port& port = router.port(PortId(p));
      if (port.kind == dp::PortKind::Host &&
          port.peer == dp::NodeRef::host(em.hosts[src_idx].host)) {
        src_router = RouterId(rid);
      }
    }
  }
  std::map<AsId, std::vector<std::size_t>> dests_by_egress;
  for (std::size_t i = 0; i < em.hosts.size(); ++i) {
    if (i == src_idx) continue;
    const AsId via = egress_neighbor(net, src_router, em.hosts[i].addr);
    if (via.valid()) dests_by_egress[via].push_back(i);
  }
  AsId hot_b = AsId::invalid();
  for (const auto& [via, dests] : dests_by_egress) {
    if (!hot_b.valid() || dests.size() > dests_by_egress[hot_b].size()) {
      hot_b = via;
    }
  }
  const std::vector<std::size_t>& hot_dests = dests_by_egress[hot_b];

  // Sized so the offered load saturates the access link for the whole run:
  // the fault must hit live traffic, and recovery must be observable.
  Rng traffic_rng(hash_combine(seed, 0xbc5));
  const Bytes per_flow = static_cast<Bytes>(
      kGigabit * 1e6 / 8.0 * 1.5 * kDuration / static_cast<double>(s.flows));
  for (std::size_t i = 0; i < s.flows; ++i) {
    dp::FlowParams fp;
    fp.src = em.hosts[src_idx].host;
    fp.dst = em.hosts[hot_dests[i % hot_dests.size()]].host;
    fp.size = per_flow;
    fp.start = traffic_rng.uniform(0.0, 0.25 * kFailAt);
    net.start_flow(fp);
  }

  chaos::Plan plan;
  plan.duration = kDuration;
  chaos::Event fail;
  fail.t = kFailAt;
  fail.kind = chaos::EventKind::Degrade;
  fail.a = hot_a;
  fail.b = hot_b;
  fail.value = kDegradeTo;
  plan.events.push_back(fail);
  chaos::Event restore = fail;
  restore.t = kRestoreAt;
  restore.kind = chaos::EventKind::Restore;
  plan.events.push_back(restore);
  plan.normalize();

  chaos::EngineConfig ec;
  ec.seed = seed;
  chaos::Engine engine(em, g, ec);
  if (reg != nullptr) engine.attach_registry(*reg, "arm=" + r.name);
  r.report = engine.run(plan);
  net.run_to_completion(kDuration + 30.0);

  // Goodput timeline -> dip depth and time back to 90% of baseline.
  const auto& buckets = net.delivery_buckets();
  const auto bucket_mbps = [&](std::size_t i) {
    return to_megabits(buckets[i]) / kBucket;
  };
  const auto idx = [&](SimTime t) {
    return std::min(buckets.size(),
                    static_cast<std::size_t>(t / kBucket));
  };
  double base_sum = 0.0;
  std::size_t base_n = 0;
  for (std::size_t i = idx(0.5 * kFailAt); i < idx(kFailAt); ++i) {
    base_sum += bucket_mbps(i);
    ++base_n;
  }
  r.baseline_mbps = base_n > 0 ? base_sum / static_cast<double>(base_n) : 0.0;
  r.dip_mbps = r.baseline_mbps;
  for (std::size_t i = idx(kFailAt); i < idx(kRestoreAt); ++i) {
    r.dip_mbps = std::min(r.dip_mbps, bucket_mbps(i));
  }
  for (std::size_t i = idx(kFailAt); i < buckets.size(); ++i) {
    if (bucket_mbps(i) >= 0.9 * r.baseline_mbps) {
      r.recovery_s = static_cast<double>(i) * kBucket - kFailAt;
      break;
    }
  }

  for (const auto& f : net.flows()) r.flows_done += f.done ? 1 : 0;
  r.flows_total = net.flows().size();
  r.delivered = net.delivered_pkts();
  r.injected = net.injected_pkts();
  return r;
}

obs::Json arm_json(const ChaosArmResult& r) {
  obs::Json j = obs::Json::object();
  j.set("name", obs::Json::str(r.name));
  j.set("mode", obs::Json::str(r.mifo ? "MIFO" : "BGP"));
  j.set("seed", obs::Json::num(r.seed));
  j.set("baseline_mbps", obs::Json::num(r.baseline_mbps));
  j.set("dip_mbps", obs::Json::num(r.dip_mbps));
  j.set("recovery_s", obs::Json::num(r.recovery_s));
  j.set("flows_done", obs::Json::num(static_cast<std::uint64_t>(r.flows_done)));
  j.set("flows_total",
        obs::Json::num(static_cast<std::uint64_t>(r.flows_total)));
  j.set("delivered", obs::Json::num(r.delivered));
  j.set("injected", obs::Json::num(r.injected));
  j.set("chaos", r.report.to_json());
  return j;
}

void print_chaos_recovery() {
  const auto s = bench::load_scale(48, 64, 6, 0.0);
  const std::vector<std::uint64_t> seeds{s.seed, s.seed + 1, s.seed + 2};

  obs::Registry reg;
  std::vector<ChaosArmResult> results(2 * seeds.size());
  std::vector<std::function<void()>> arms;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    arms.emplace_back([&, i] {
      results[2 * i] = run_chaos_arm(s, seeds[i], /*mifo=*/false, &reg);
    });
    arms.emplace_back([&, i] {
      results[2 * i + 1] = run_chaos_arm(s, seeds[i], /*mifo=*/true, &reg);
    });
  }
  bench::run_arms(s.threads, arms);

  std::printf("=== chaos recovery: primary-provider degrade to %.0f%%, "
              "t=[%.1f,%.1f) of %.1f s ===\n",
              100.0 * kDegradeTo, kFailAt, kRestoreAt, kDuration);
  std::printf("%-10s %14s %12s %10s %12s %8s\n", "arm", "baseline Mb/s",
              "dip Mb/s", "dip %", "recovery s", "flows");
  for (const auto& r : results) {
    const double dip_pct =
        r.baseline_mbps > 0.0
            ? 100.0 * (1.0 - r.dip_mbps / r.baseline_mbps)
            : 0.0;
    std::printf("%-10s %14.0f %12.0f %9.1f%% %12.3f %5zu/%zu\n",
                r.name.c_str(), r.baseline_mbps, r.dip_mbps, dip_pct,
                r.recovery_s, r.flows_done, r.flows_total);
  }
  double mifo_dip = 0.0, bgp_dip = 0.0;
  for (const auto& r : results) {
    const double dip_pct =
        r.baseline_mbps > 0.0
            ? 100.0 * (1.0 - r.dip_mbps / r.baseline_mbps)
            : 0.0;
    (r.mifo ? mifo_dip : bgp_dip) += dip_pct / static_cast<double>(seeds.size());
  }
  std::printf("mean dip: BGP %.1f%%, MIFO %.1f%% — MIFO offloads the "
              "degraded link onto alternative paths\n",
              bgp_dip, mifo_dip);
  bool all_safe = true;
  for (const auto& r : results) all_safe = all_safe && r.report.safe;
  std::printf("safety-under-churn: %s across %zu arms\n",
              all_safe ? "all snapshots clean" : "VIOLATIONS FOUND",
              results.size());

  // Verified recovery latency (failure -> first clean verify after repair)
  // pooled across arms, broken down by failure class and mode.
  struct ClassAgg {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::map<std::string, ClassAgg> by_class;
  for (const auto& r : results) {
    for (const auto& ae : r.report.log) {
      if (ae.recovery_latency < 0.0) continue;
      const std::string key = std::string(r.mifo ? "MIFO/" : "BGP/") +
                              chaos::to_string(ae.event.kind);
      ClassAgg& agg = by_class[key];
      if (agg.count == 0 || ae.recovery_latency < agg.min) {
        agg.min = ae.recovery_latency;
      }
      if (agg.count == 0 || ae.recovery_latency > agg.max) {
        agg.max = ae.recovery_latency;
      }
      ++agg.count;
      agg.sum += ae.recovery_latency;
    }
  }
  if (!by_class.empty()) {
    std::printf("=== verified recovery latency by failure class ===\n");
    std::printf("%-20s %6s %9s %9s %9s\n", "mode/class", "count", "mean(s)",
                "min(s)", "max(s)");
    for (const auto& [key, agg] : by_class) {
      std::printf("%-20s %6zu %9.4f %9.4f %9.4f\n", key.c_str(), agg.count,
                  agg.sum / static_cast<double>(agg.count), agg.min, agg.max);
    }
  }

  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json::str("mifo.run_artifact.v1"));
  root.set("bench", obs::Json::str("chaos_recovery"));
  obs::Json scale = obs::Json::object();
  scale.set("topo_n", obs::Json::num(static_cast<std::uint64_t>(s.topo_n)));
  scale.set("flows", obs::Json::num(static_cast<std::uint64_t>(s.flows)));
  scale.set("dest_pool",
            obs::Json::num(static_cast<std::uint64_t>(s.dest_pool)));
  scale.set("arrival", obs::Json::num(0.0));
  scale.set("seed", obs::Json::num(s.seed));
  root.set("scale", std::move(scale));
  obs::Json arms_json = obs::Json::array();
  for (const auto& r : results) arms_json.push(arm_json(r));
  root.set("arms", std::move(arms_json));
  root.set("metrics", obs::to_json(reg.snapshot()));
  const std::string path = obs::write_artifact("chaos_recovery", root);
  if (!path.empty()) std::printf("artifact: %s\n", path.c_str());
}

void BM_ChaosRecoveryArm(benchmark::State& state) {
  const auto s = bench::load_scale(32, 24, 4, 0.0);
  for (auto _ : state) {
    const auto r = run_chaos_arm(s, s.seed, state.range(0) != 0, nullptr);
    benchmark::DoNotOptimize(r.delivered);
  }
}
BENCHMARK(BM_ChaosRecoveryArm)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_chaos_recovery)
