// Fig. 7 — available paths per AS pair: MIFO vs MIRO at 50% and 100%
// deployment (log-scale y in the paper).
//
// Paper headlines: 50%-deployed MIFO already exceeds fully-deployed MIRO;
// at 100% MIFO deployment 90% of pairs have >= 100 alternative paths and
// nearly half have thousands. Absolute counts scale with topology size;
// the orderings and orders-of-magnitude separation are the reproduction
// target.

#include <algorithm>

#include "bench_common.hpp"
#include "bgp/path_count.hpp"
#include "miro/miro.hpp"

namespace {

using namespace mifo;

struct Series {
  std::string name;
  std::vector<double> counts;  // paths per sampled pair
};

void print_fig7() {
  const auto s = bench::load_scale(4000, 0, 0, 100.0);
  const std::size_t num_dests = env_u64("MIFO_FIG7_DESTS", 24);
  const auto g = bench::make_topology(s);
  const auto order = topo::pc_topological_order(g);

  const auto full = traffic::random_deployment(g.num_ases(), 1.0, s.seed);
  const auto half = traffic::random_deployment(g.num_ases(), 0.5, s.seed);

  std::vector<Series> series{{"MIRO-50%", {}},
                             {"MIRO-100%", {}},
                             {"MIFO-50%", {}},
                             {"MIFO-100%", {}}};

  Rng rng(s.seed * 11 + 2);
  for (std::size_t d = 0; d < num_dests; ++d) {
    const AsId dest(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
    const bgp::RouteStore routes(g, dest);
    const auto mifo_half = bgp::count_mifo_paths(g, routes, order, half);
    const auto mifo_full = bgp::count_mifo_paths(g, routes, order, full);
    for (std::uint32_t src = 0; src < g.num_ases(); src += 16) {
      if (AsId(src) == dest || !routes.best(AsId(src)).valid()) continue;
      series[0].counts.push_back(static_cast<double>(
          miro::path_count(g, routes, AsId(src), half)));
      series[1].counts.push_back(static_cast<double>(
          miro::path_count(g, routes, AsId(src), full)));
      series[2].counts.push_back(mifo_half.paths_from(AsId(src)));
      series[3].counts.push_back(mifo_full.paths_from(AsId(src)));
    }
  }

  std::printf("=== Fig. 7: available paths per AS pair (%zu pairs) ===\n",
              series[0].counts.size());
  std::printf("%-22s", "percentile of pairs");
  for (const auto& se : series) std::printf("%12s", se.name.c_str());
  std::printf("\n");
  for (auto& se : series) std::sort(se.counts.begin(), se.counts.end());
  for (const double pct : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    { char plabel[16]; std::snprintf(plabel, sizeof(plabel), "%.0f%%", pct); std::printf("%-22s", plabel); }
    for (const auto& se : series) {
      const auto idx = static_cast<std::size_t>(
          pct / 100.0 * static_cast<double>(se.counts.size() - 1));
      std::printf("%12.0f", se.counts[idx]);
    }
    std::printf("\n");
  }
  auto frac_at_least = [](const Series& se, double x) {
    const auto it =
        std::lower_bound(se.counts.begin(), se.counts.end(), x);
    return 100.0 * static_cast<double>(se.counts.end() - it) /
           static_cast<double>(se.counts.size());
  };
  std::printf("pairs with >=100 paths: ");
  for (const auto& se : series) {
    std::printf(" %s=%.1f%%", se.name.c_str(), frac_at_least(se, 100.0));
  }
  std::printf("\npaper: 50%% MIFO > 100%% MIRO everywhere; 90%% of pairs "
              ">=100 paths under full MIFO (44k-AS topology)\n");
}

void BM_PathCountDp(benchmark::State& state) {
  topo::GeneratorParams gp;
  gp.num_ases = static_cast<std::size_t>(state.range(0));
  const auto g = topo::generate_topology(gp);
  const auto order = topo::pc_topological_order(g);
  const std::vector<bool> all(g.num_ases(), true);
  const bgp::RouteStore routes(g, AsId(0));
  for (auto _ : state) {
    auto counts = bgp::count_mifo_paths(g, routes, order, all);
    benchmark::DoNotOptimize(counts.tagged.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PathCountDp)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_ComputeRoutes(benchmark::State& state) {
  topo::GeneratorParams gp;
  gp.num_ases = static_cast<std::size_t>(state.range(0));
  const auto g = topo::generate_topology(gp);
  std::uint32_t dest = 0;
  for (auto _ : state) {
    auto routes = bgp::compute_routes(
        g, AsId(dest++ % static_cast<std::uint32_t>(g.num_ases())));
    benchmark::DoNotOptimize(routes.num_ases());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ComputeRoutes)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

MIFO_BENCH_MAIN(print_fig7)
