file(REMOVE_RECURSE
  "CMakeFiles/test_topo.dir/topo/test_analysis.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_analysis.cpp.o.d"
  "CMakeFiles/test_topo.dir/topo/test_as_graph.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_as_graph.cpp.o.d"
  "CMakeFiles/test_topo.dir/topo/test_generator.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_generator.cpp.o.d"
  "CMakeFiles/test_topo.dir/topo/test_relationship.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_relationship.cpp.o.d"
  "CMakeFiles/test_topo.dir/topo/test_serialization.cpp.o"
  "CMakeFiles/test_topo.dir/topo/test_serialization.cpp.o.d"
  "test_topo"
  "test_topo.pdb"
  "test_topo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
