file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_daemon.cpp.o"
  "CMakeFiles/test_core.dir/core/test_daemon.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_link_monitor.cpp.o"
  "CMakeFiles/test_core.dir/core/test_link_monitor.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_walk.cpp.o"
  "CMakeFiles/test_core.dir/core/test_walk.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_walk_property.cpp.o"
  "CMakeFiles/test_core.dir/core/test_walk_property.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
