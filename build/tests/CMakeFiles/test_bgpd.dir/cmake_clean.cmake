file(REMOVE_RECURSE
  "CMakeFiles/test_bgpd.dir/bgpd/test_session_network.cpp.o"
  "CMakeFiles/test_bgpd.dir/bgpd/test_session_network.cpp.o.d"
  "CMakeFiles/test_bgpd.dir/bgpd/test_speaker.cpp.o"
  "CMakeFiles/test_bgpd.dir/bgpd/test_speaker.cpp.o.d"
  "test_bgpd"
  "test_bgpd.pdb"
  "test_bgpd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
