# Empty compiler generated dependencies file for test_bgpd.
# This may be replaced when dependencies are built.
