file(REMOVE_RECURSE
  "CMakeFiles/test_dataplane.dir/dataplane/test_failure_injection.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/test_failure_injection.cpp.o.d"
  "CMakeFiles/test_dataplane.dir/dataplane/test_fib.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/test_fib.cpp.o.d"
  "CMakeFiles/test_dataplane.dir/dataplane/test_forwarding_engine.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/test_forwarding_engine.cpp.o.d"
  "CMakeFiles/test_dataplane.dir/dataplane/test_network.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/test_network.cpp.o.d"
  "CMakeFiles/test_dataplane.dir/dataplane/test_packet.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/test_packet.cpp.o.d"
  "CMakeFiles/test_dataplane.dir/dataplane/test_transport.cpp.o"
  "CMakeFiles/test_dataplane.dir/dataplane/test_transport.cpp.o.d"
  "test_dataplane"
  "test_dataplane.pdb"
  "test_dataplane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
