file(REMOVE_RECURSE
  "CMakeFiles/test_bgp.dir/bgp/test_ibgp.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_ibgp.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/test_path_count.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_path_count.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/test_routing.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_routing.cpp.o.d"
  "CMakeFiles/test_bgp.dir/bgp/test_routing_property.cpp.o"
  "CMakeFiles/test_bgp.dir/bgp/test_routing_property.cpp.o.d"
  "test_bgp"
  "test_bgp.pdb"
  "test_bgp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
