file(REMOVE_RECURSE
  "CMakeFiles/test_miro.dir/miro/test_miro.cpp.o"
  "CMakeFiles/test_miro.dir/miro/test_miro.cpp.o.d"
  "test_miro"
  "test_miro.pdb"
  "test_miro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
