# Empty dependencies file for test_miro.
# This may be replaced when dependencies are built.
