file(REMOVE_RECURSE
  "CMakeFiles/bench_forwarding_engine.dir/bench_forwarding_engine.cpp.o"
  "CMakeFiles/bench_forwarding_engine.dir/bench_forwarding_engine.cpp.o.d"
  "bench_forwarding_engine"
  "bench_forwarding_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forwarding_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
