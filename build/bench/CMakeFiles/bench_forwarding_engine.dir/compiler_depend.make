# Empty compiler generated dependencies file for bench_forwarding_engine.
# This may be replaced when dependencies are built.
