file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_offload.dir/bench_fig8_offload.cpp.o"
  "CMakeFiles/bench_fig8_offload.dir/bench_fig8_offload.cpp.o.d"
  "bench_fig8_offload"
  "bench_fig8_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
