# Empty dependencies file for bench_fig8_offload.
# This may be replaced when dependencies are built.
