file(REMOVE_RECURSE
  "CMakeFiles/bench_maxmin.dir/bench_maxmin.cpp.o"
  "CMakeFiles/bench_maxmin.dir/bench_maxmin.cpp.o.d"
  "bench_maxmin"
  "bench_maxmin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maxmin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
