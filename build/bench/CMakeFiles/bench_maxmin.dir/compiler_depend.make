# Empty compiler generated dependencies file for bench_maxmin.
# This may be replaced when dependencies are built.
