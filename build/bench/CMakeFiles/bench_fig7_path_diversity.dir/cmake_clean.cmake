file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_path_diversity.dir/bench_fig7_path_diversity.cpp.o"
  "CMakeFiles/bench_fig7_path_diversity.dir/bench_fig7_path_diversity.cpp.o.d"
  "bench_fig7_path_diversity"
  "bench_fig7_path_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_path_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
