# Empty dependencies file for bench_fig5_throughput_deployment.
# This may be replaced when dependencies are built.
