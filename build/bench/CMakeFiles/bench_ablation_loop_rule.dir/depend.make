# Empty dependencies file for bench_ablation_loop_rule.
# This may be replaced when dependencies are built.
