# Empty dependencies file for bench_fig6_throughput_powerlaw.
# This may be replaced when dependencies are built.
