file(REMOVE_RECURSE
  "CMakeFiles/loop_demo.dir/loop_demo.cpp.o"
  "CMakeFiles/loop_demo.dir/loop_demo.cpp.o.d"
  "loop_demo"
  "loop_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
