# Empty dependencies file for internet_scale.
# This may be replaced when dependencies are built.
