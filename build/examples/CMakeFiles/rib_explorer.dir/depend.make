# Empty dependencies file for rib_explorer.
# This may be replaced when dependencies are built.
