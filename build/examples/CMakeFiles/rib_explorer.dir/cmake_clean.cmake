file(REMOVE_RECURSE
  "CMakeFiles/rib_explorer.dir/rib_explorer.cpp.o"
  "CMakeFiles/rib_explorer.dir/rib_explorer.cpp.o.d"
  "rib_explorer"
  "rib_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rib_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
