file(REMOVE_RECURSE
  "libmifo_core.a"
)
