
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/daemon.cpp" "src/core/CMakeFiles/mifo_core.dir/daemon.cpp.o" "gcc" "src/core/CMakeFiles/mifo_core.dir/daemon.cpp.o.d"
  "/root/repo/src/core/link_monitor.cpp" "src/core/CMakeFiles/mifo_core.dir/link_monitor.cpp.o" "gcc" "src/core/CMakeFiles/mifo_core.dir/link_monitor.cpp.o.d"
  "/root/repo/src/core/walk.cpp" "src/core/CMakeFiles/mifo_core.dir/walk.cpp.o" "gcc" "src/core/CMakeFiles/mifo_core.dir/walk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/mifo_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/mifo_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/miro/CMakeFiles/mifo_miro.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mifo_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mifo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
