file(REMOVE_RECURSE
  "CMakeFiles/mifo_core.dir/daemon.cpp.o"
  "CMakeFiles/mifo_core.dir/daemon.cpp.o.d"
  "CMakeFiles/mifo_core.dir/link_monitor.cpp.o"
  "CMakeFiles/mifo_core.dir/link_monitor.cpp.o.d"
  "CMakeFiles/mifo_core.dir/walk.cpp.o"
  "CMakeFiles/mifo_core.dir/walk.cpp.o.d"
  "libmifo_core.a"
  "libmifo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mifo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
