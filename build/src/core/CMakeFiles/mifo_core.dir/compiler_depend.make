# Empty compiler generated dependencies file for mifo_core.
# This may be replaced when dependencies are built.
