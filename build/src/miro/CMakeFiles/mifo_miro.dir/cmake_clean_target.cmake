file(REMOVE_RECURSE
  "libmifo_miro.a"
)
