# Empty compiler generated dependencies file for mifo_miro.
# This may be replaced when dependencies are built.
