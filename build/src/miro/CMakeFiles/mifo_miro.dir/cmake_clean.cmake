file(REMOVE_RECURSE
  "CMakeFiles/mifo_miro.dir/miro.cpp.o"
  "CMakeFiles/mifo_miro.dir/miro.cpp.o.d"
  "libmifo_miro.a"
  "libmifo_miro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mifo_miro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
