# Empty dependencies file for mifo_bgpd.
# This may be replaced when dependencies are built.
