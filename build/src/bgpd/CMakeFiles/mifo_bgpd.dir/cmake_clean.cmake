file(REMOVE_RECURSE
  "CMakeFiles/mifo_bgpd.dir/session_network.cpp.o"
  "CMakeFiles/mifo_bgpd.dir/session_network.cpp.o.d"
  "CMakeFiles/mifo_bgpd.dir/speaker.cpp.o"
  "CMakeFiles/mifo_bgpd.dir/speaker.cpp.o.d"
  "libmifo_bgpd.a"
  "libmifo_bgpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mifo_bgpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
