file(REMOVE_RECURSE
  "libmifo_bgpd.a"
)
