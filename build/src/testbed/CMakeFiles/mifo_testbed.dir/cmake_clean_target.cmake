file(REMOVE_RECURSE
  "libmifo_testbed.a"
)
