
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testbed/emulation.cpp" "src/testbed/CMakeFiles/mifo_testbed.dir/emulation.cpp.o" "gcc" "src/testbed/CMakeFiles/mifo_testbed.dir/emulation.cpp.o.d"
  "/root/repo/src/testbed/fig11.cpp" "src/testbed/CMakeFiles/mifo_testbed.dir/fig11.cpp.o" "gcc" "src/testbed/CMakeFiles/mifo_testbed.dir/fig11.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mifo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/mifo_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/mifo_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/miro/CMakeFiles/mifo_miro.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mifo_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mifo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
