# Empty compiler generated dependencies file for mifo_testbed.
# This may be replaced when dependencies are built.
