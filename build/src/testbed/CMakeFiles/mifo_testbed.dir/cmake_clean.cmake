file(REMOVE_RECURSE
  "CMakeFiles/mifo_testbed.dir/emulation.cpp.o"
  "CMakeFiles/mifo_testbed.dir/emulation.cpp.o.d"
  "CMakeFiles/mifo_testbed.dir/fig11.cpp.o"
  "CMakeFiles/mifo_testbed.dir/fig11.cpp.o.d"
  "libmifo_testbed.a"
  "libmifo_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mifo_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
