file(REMOVE_RECURSE
  "CMakeFiles/mifo_dataplane.dir/fib.cpp.o"
  "CMakeFiles/mifo_dataplane.dir/fib.cpp.o.d"
  "CMakeFiles/mifo_dataplane.dir/network.cpp.o"
  "CMakeFiles/mifo_dataplane.dir/network.cpp.o.d"
  "CMakeFiles/mifo_dataplane.dir/router.cpp.o"
  "CMakeFiles/mifo_dataplane.dir/router.cpp.o.d"
  "CMakeFiles/mifo_dataplane.dir/transport.cpp.o"
  "CMakeFiles/mifo_dataplane.dir/transport.cpp.o.d"
  "libmifo_dataplane.a"
  "libmifo_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mifo_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
