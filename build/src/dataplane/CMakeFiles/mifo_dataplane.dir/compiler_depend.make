# Empty compiler generated dependencies file for mifo_dataplane.
# This may be replaced when dependencies are built.
