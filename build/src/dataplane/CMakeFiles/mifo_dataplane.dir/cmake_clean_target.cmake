file(REMOVE_RECURSE
  "libmifo_dataplane.a"
)
