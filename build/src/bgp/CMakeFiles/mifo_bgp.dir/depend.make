# Empty dependencies file for mifo_bgp.
# This may be replaced when dependencies are built.
