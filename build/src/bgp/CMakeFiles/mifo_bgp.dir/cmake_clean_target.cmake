file(REMOVE_RECURSE
  "libmifo_bgp.a"
)
