file(REMOVE_RECURSE
  "CMakeFiles/mifo_bgp.dir/ibgp.cpp.o"
  "CMakeFiles/mifo_bgp.dir/ibgp.cpp.o.d"
  "CMakeFiles/mifo_bgp.dir/path_count.cpp.o"
  "CMakeFiles/mifo_bgp.dir/path_count.cpp.o.d"
  "CMakeFiles/mifo_bgp.dir/routing.cpp.o"
  "CMakeFiles/mifo_bgp.dir/routing.cpp.o.d"
  "libmifo_bgp.a"
  "libmifo_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mifo_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
