file(REMOVE_RECURSE
  "CMakeFiles/mifo_common.dir/env.cpp.o"
  "CMakeFiles/mifo_common.dir/env.cpp.o.d"
  "CMakeFiles/mifo_common.dir/logging.cpp.o"
  "CMakeFiles/mifo_common.dir/logging.cpp.o.d"
  "CMakeFiles/mifo_common.dir/rng.cpp.o"
  "CMakeFiles/mifo_common.dir/rng.cpp.o.d"
  "CMakeFiles/mifo_common.dir/stats.cpp.o"
  "CMakeFiles/mifo_common.dir/stats.cpp.o.d"
  "CMakeFiles/mifo_common.dir/thread_pool.cpp.o"
  "CMakeFiles/mifo_common.dir/thread_pool.cpp.o.d"
  "libmifo_common.a"
  "libmifo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mifo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
