# Empty dependencies file for mifo_common.
# This may be replaced when dependencies are built.
