file(REMOVE_RECURSE
  "libmifo_common.a"
)
