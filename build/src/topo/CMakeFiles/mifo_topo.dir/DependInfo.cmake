
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/analysis.cpp" "src/topo/CMakeFiles/mifo_topo.dir/analysis.cpp.o" "gcc" "src/topo/CMakeFiles/mifo_topo.dir/analysis.cpp.o.d"
  "/root/repo/src/topo/as_graph.cpp" "src/topo/CMakeFiles/mifo_topo.dir/as_graph.cpp.o" "gcc" "src/topo/CMakeFiles/mifo_topo.dir/as_graph.cpp.o.d"
  "/root/repo/src/topo/generator.cpp" "src/topo/CMakeFiles/mifo_topo.dir/generator.cpp.o" "gcc" "src/topo/CMakeFiles/mifo_topo.dir/generator.cpp.o.d"
  "/root/repo/src/topo/relationship.cpp" "src/topo/CMakeFiles/mifo_topo.dir/relationship.cpp.o" "gcc" "src/topo/CMakeFiles/mifo_topo.dir/relationship.cpp.o.d"
  "/root/repo/src/topo/serialization.cpp" "src/topo/CMakeFiles/mifo_topo.dir/serialization.cpp.o" "gcc" "src/topo/CMakeFiles/mifo_topo.dir/serialization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mifo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
