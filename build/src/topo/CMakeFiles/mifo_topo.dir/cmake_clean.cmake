file(REMOVE_RECURSE
  "CMakeFiles/mifo_topo.dir/analysis.cpp.o"
  "CMakeFiles/mifo_topo.dir/analysis.cpp.o.d"
  "CMakeFiles/mifo_topo.dir/as_graph.cpp.o"
  "CMakeFiles/mifo_topo.dir/as_graph.cpp.o.d"
  "CMakeFiles/mifo_topo.dir/generator.cpp.o"
  "CMakeFiles/mifo_topo.dir/generator.cpp.o.d"
  "CMakeFiles/mifo_topo.dir/relationship.cpp.o"
  "CMakeFiles/mifo_topo.dir/relationship.cpp.o.d"
  "CMakeFiles/mifo_topo.dir/serialization.cpp.o"
  "CMakeFiles/mifo_topo.dir/serialization.cpp.o.d"
  "libmifo_topo.a"
  "libmifo_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mifo_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
