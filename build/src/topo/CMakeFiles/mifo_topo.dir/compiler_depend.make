# Empty compiler generated dependencies file for mifo_topo.
# This may be replaced when dependencies are built.
