file(REMOVE_RECURSE
  "libmifo_topo.a"
)
