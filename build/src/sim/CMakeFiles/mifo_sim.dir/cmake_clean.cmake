file(REMOVE_RECURSE
  "CMakeFiles/mifo_sim.dir/fluid_sim.cpp.o"
  "CMakeFiles/mifo_sim.dir/fluid_sim.cpp.o.d"
  "CMakeFiles/mifo_sim.dir/maxmin.cpp.o"
  "CMakeFiles/mifo_sim.dir/maxmin.cpp.o.d"
  "CMakeFiles/mifo_sim.dir/metrics.cpp.o"
  "CMakeFiles/mifo_sim.dir/metrics.cpp.o.d"
  "libmifo_sim.a"
  "libmifo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mifo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
