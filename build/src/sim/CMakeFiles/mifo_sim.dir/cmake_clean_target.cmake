file(REMOVE_RECURSE
  "libmifo_sim.a"
)
