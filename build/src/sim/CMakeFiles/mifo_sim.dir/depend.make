# Empty dependencies file for mifo_sim.
# This may be replaced when dependencies are built.
