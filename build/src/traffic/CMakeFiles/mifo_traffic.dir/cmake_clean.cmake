file(REMOVE_RECURSE
  "CMakeFiles/mifo_traffic.dir/traffic.cpp.o"
  "CMakeFiles/mifo_traffic.dir/traffic.cpp.o.d"
  "libmifo_traffic.a"
  "libmifo_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mifo_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
