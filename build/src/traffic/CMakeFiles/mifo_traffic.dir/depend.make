# Empty dependencies file for mifo_traffic.
# This may be replaced when dependencies are built.
