file(REMOVE_RECURSE
  "libmifo_traffic.a"
)
