#include "chaos/plan.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/contracts.hpp"
#include "common/rng.hpp"

namespace mifo::chaos {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::LinkDown:
      return "link-down";
    case EventKind::LinkUp:
      return "link-up";
    case EventKind::Degrade:
      return "degrade";
    case EventKind::Restore:
      return "restore";
    case EventKind::Withdraw:
      return "withdraw";
    case EventKind::Reannounce:
      return "reannounce";
    case EventKind::IbgpDrop:
      return "ibgp-drop";
    case EventKind::IbgpRestore:
      return "ibgp-restore";
    case EventKind::RouterFreeze:
      return "freeze";
    case EventKind::RouterRestart:
      return "restart";
    case EventKind::Burst:
      return "burst";
    case EventKind::PlantValley:
      return "plant-valley";
    case EventKind::PlantStaleRoute:
      return "plant-stale-route";
  }
  return "?";
}

bool is_recovery(EventKind k) {
  return k == EventKind::LinkUp || k == EventKind::Restore ||
         k == EventKind::Reannounce || k == EventKind::IbgpRestore ||
         k == EventKind::RouterRestart;
}

std::optional<EventKind> recovery_of(EventKind k) {
  switch (k) {
    case EventKind::LinkDown:
      return EventKind::LinkUp;
    case EventKind::Degrade:
      return EventKind::Restore;
    case EventKind::Withdraw:
      return EventKind::Reannounce;
    case EventKind::IbgpDrop:
      return EventKind::IbgpRestore;
    case EventKind::RouterFreeze:
      return EventKind::RouterRestart;
    default:
      return std::nullopt;
  }
}

std::string Event::to_string() const {
  char buf[128];
  switch (kind) {
    case EventKind::LinkDown:
    case EventKind::LinkUp:
    case EventKind::Restore:
      std::snprintf(buf, sizeof(buf), "at %.6f %s %u %u", t,
                    chaos::to_string(kind), a.value(), b.value());
      break;
    case EventKind::Degrade:
      std::snprintf(buf, sizeof(buf), "at %.6f degrade %u %u %.6f", t,
                    a.value(), b.value(), value);
      break;
    case EventKind::Withdraw:
    case EventKind::Reannounce:
    case EventKind::IbgpDrop:
    case EventKind::IbgpRestore:
    case EventKind::RouterFreeze:
    case EventKind::RouterRestart:
      std::snprintf(buf, sizeof(buf), "at %.6f %s %u", t,
                    chaos::to_string(kind), a.value());
      break;
    case EventKind::Burst:
      std::snprintf(buf, sizeof(buf), "at %.6f burst %u %u %u %.6f", t,
                    a.value(), b.value(), count, value);
      break;
    case EventKind::PlantValley:
      std::snprintf(buf, sizeof(buf), "at %.6f plant-valley", t);
      break;
    case EventKind::PlantStaleRoute:
      std::snprintf(buf, sizeof(buf), "at %.6f plant-stale-route", t);
      break;
  }
  return buf;
}

void Plan::normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& x, const Event& y) { return x.t < y.t; });
}

namespace {

/// Parses one event (everything after the time) from the token stream.
bool parse_event(std::istringstream& ls, SimTime t, Event& ev,
                 std::string& error) {
  std::string word;
  if (!(ls >> word)) {
    error = "missing event kind";
    return false;
  }
  ev.t = t;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  if (word == "link-down" || word == "link-up" || word == "restore") {
    ev.kind = word == "link-down"  ? EventKind::LinkDown
              : word == "link-up" ? EventKind::LinkUp
                                  : EventKind::Restore;
    if (!(ls >> a >> b)) {
      error = word + ": expected two AS ids";
      return false;
    }
    ev.a = AsId(a);
    ev.b = AsId(b);
  } else if (word == "degrade") {
    ev.kind = EventKind::Degrade;
    if (!(ls >> a >> b >> ev.value)) {
      error = "degrade: expected two AS ids and a factor";
      return false;
    }
    ev.a = AsId(a);
    ev.b = AsId(b);
  } else if (word == "withdraw" || word == "reannounce" ||
             word == "ibgp-drop" || word == "ibgp-restore" ||
             word == "freeze" || word == "restart") {
    ev.kind = word == "withdraw"       ? EventKind::Withdraw
              : word == "reannounce"   ? EventKind::Reannounce
              : word == "ibgp-drop"    ? EventKind::IbgpDrop
              : word == "ibgp-restore" ? EventKind::IbgpRestore
              : word == "freeze"       ? EventKind::RouterFreeze
                                       : EventKind::RouterRestart;
    if (!(ls >> a)) {
      error = word + ": expected an AS id";
      return false;
    }
    ev.a = AsId(a);
  } else if (word == "burst") {
    ev.kind = EventKind::Burst;
    if (!(ls >> a >> b >> ev.count >> ev.value)) {
      error = "burst: expected SRC DST COUNT SIZE_MB";
      return false;
    }
    ev.a = AsId(a);
    ev.b = AsId(b);
  } else if (word == "plant-valley") {
    ev.kind = EventKind::PlantValley;
  } else if (word == "plant-stale-route") {
    ev.kind = EventKind::PlantStaleRoute;
  } else {
    error = "unknown event kind: " + word;
    return false;
  }
  return true;
}

}  // namespace

std::optional<Plan> parse_plan(std::istream& in, std::string& error) {
  Plan plan;
  std::string line;
  std::size_t lineno = 0;
  // `every` directives expand against the final duration, so buffer them
  // until the whole file is read (duration may come last).
  struct Every {
    SimTime start;
    SimTime period;
    Event ev;
  };
  std::vector<Every> repeats;

  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;  // blank / comment-only line
    std::string sub_error;
    if (word == "duration") {
      if (!(ls >> plan.duration) || plan.duration <= 0.0) {
        sub_error = "duration: expected a positive time";
      }
    } else if (word == "at") {
      SimTime t = 0.0;
      Event ev;
      if (!(ls >> t) || t < 0.0) {
        sub_error = "at: expected a non-negative time";
      } else if (parse_event(ls, t, ev, sub_error)) {
        plan.events.push_back(ev);
      }
    } else if (word == "every") {
      Every rep{};
      if (!(ls >> rep.start >> rep.period) || rep.period <= 0.0) {
        sub_error = "every: expected START PERIOD";
      } else if (parse_event(ls, rep.start, rep.ev, sub_error)) {
        repeats.push_back(rep);
      }
    } else if (word == "fail") {
      SimTime t = 0.0;
      SimTime mttr = 0.0;
      std::string kw;
      std::string what;
      Event fail;
      if (!(ls >> t >> kw >> mttr >> what) || kw != "mttr" || mttr <= 0.0) {
        sub_error = "fail: expected T mttr M <link|prefix|ibgp|router> ...";
      } else {
        std::uint32_t a = 0;
        std::uint32_t b = 0;
        fail.t = t;
        if (what == "link" && (ls >> a >> b)) {
          fail.kind = EventKind::LinkDown;
          fail.a = AsId(a);
          fail.b = AsId(b);
        } else if (what == "prefix" && (ls >> a)) {
          fail.kind = EventKind::Withdraw;
          fail.a = AsId(a);
        } else if (what == "ibgp" && (ls >> a)) {
          fail.kind = EventKind::IbgpDrop;
          fail.a = AsId(a);
        } else if (what == "router" && (ls >> a)) {
          fail.kind = EventKind::RouterFreeze;
          fail.a = AsId(a);
        } else {
          sub_error = "fail: bad subject '" + what + "'";
        }
        if (sub_error.empty()) {
          plan.events.push_back(fail);
          Event rec = fail;
          rec.t = t + mttr;
          rec.kind = *recovery_of(fail.kind);
          plan.events.push_back(rec);
        }
      }
    } else {
      sub_error = "unknown directive: " + word;
    }
    if (!sub_error.empty()) {
      error = "line " + std::to_string(lineno) + ": " + sub_error;
      return std::nullopt;
    }
  }

  for (const auto& rep : repeats) {
    for (SimTime t = rep.start; t <= plan.duration; t += rep.period) {
      Event ev = rep.ev;
      ev.t = t;
      plan.events.push_back(ev);
    }
  }
  plan.normalize();
  return plan;
}

std::optional<Plan> parse_plan(const std::string& text, std::string& error) {
  std::istringstream in(text);
  return parse_plan(in, error);
}

std::string format_plan(const Plan& plan) {
  std::string out = "duration " + std::to_string(plan.duration) + "\n";
  for (const Event& ev : plan.events) out += ev.to_string() + "\n";
  return out;
}

Plan generate_plan(const topo::AsGraph& g, const GenParams& params) {
  MIFO_EXPECTS(g.num_ases() >= 2);
  MIFO_EXPECTS(params.duration > 0.0);
  MIFO_EXPECTS(params.rate > 0.0);
  MIFO_EXPECTS(params.mttr > 0.0);
  Rng rng(hash_combine(params.seed, 0xc4a05));
  Plan plan;
  plan.duration = params.duration;

  const auto random_adjacency = [&](AsId& a, AsId& b) {
    // Uniform over ASes, then over that AS's adjacencies; every link is
    // reachable and the bias towards low-degree ASes' links is fine for
    // fault injection (stub links fail in the wild too).
    for (int tries = 0; tries < 64; ++tries) {
      const AsId cand(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
      const auto nbs = g.neighbors(cand);
      if (nbs.empty()) continue;
      a = cand;
      b = nbs[rng.bounded(nbs.size())].as;
      return true;
    }
    return false;
  };
  const auto random_owner = [&]() -> AsId {
    if (!params.prefix_owners.empty()) {
      return params.prefix_owners[rng.bounded(params.prefix_owners.size())];
    }
    return AsId(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
  };

  // Poisson fault arrivals over [5% .. 70%] of the duration: the head room
  // lets the deployment warm up, the tail room guarantees every repair
  // lands before the plan ends (recovery times are clamped there).
  const SimTime t_lo = 0.05 * params.duration;
  const SimTime t_hi = 0.70 * params.duration;
  const SimTime t_rec_max = 0.90 * params.duration;
  SimTime t = t_lo;
  while (true) {
    t += rng.exponential(params.rate);
    if (t > t_hi) break;
    // Category weights: link faults dominate (they are the paper's headline
    // churn source), the rest share the remainder.
    const std::uint64_t cat = rng.bounded(8);
    Event ev;
    ev.t = t;
    const SimTime t_rec =
        std::min(t + rng.exponential(1.0 / params.mttr), t_rec_max);
    switch (cat) {
      case 0:
      case 1:
      case 2: {  // link down -> up
        if (!random_adjacency(ev.a, ev.b)) continue;
        ev.kind = EventKind::LinkDown;
        break;
      }
      case 3: {  // degrade -> restore
        if (!random_adjacency(ev.a, ev.b)) continue;
        ev.kind = EventKind::Degrade;
        ev.value = rng.uniform(0.05, 0.5);
        break;
      }
      case 4: {  // withdraw -> reannounce
        ev.kind = EventKind::Withdraw;
        ev.a = random_owner();
        break;
      }
      case 5: {  // iBGP stale window
        ev.kind = EventKind::IbgpDrop;
        ev.a = AsId(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
        break;
      }
      case 6: {  // router freeze -> restart
        ev.kind = EventKind::RouterFreeze;
        ev.a = AsId(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
        break;
      }
      default: {  // congestion burst (one-shot)
        ev.kind = EventKind::Burst;
        ev.a = AsId(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
        ev.b = AsId(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
        ev.count = params.burst_flows;
        ev.value = params.burst_mb;
        break;
      }
    }
    plan.events.push_back(ev);
    if (const auto rec_kind = recovery_of(ev.kind)) {
      Event rec = ev;
      rec.t = t_rec;
      rec.kind = *rec_kind;
      plan.events.push_back(rec);
    }
  }

  plan.normalize();
  return plan;
}

}  // namespace mifo::chaos
