#include "chaos/engine.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "common/contracts.hpp"
#include "obs/trace.hpp"

namespace mifo::chaos {

namespace {

std::uint64_t port_key(RouterId r, PortId p) {
  return (static_cast<std::uint64_t>(r.value()) << 32) | p.value();
}

/// Sorted copies for order-insensitive differential comparison: the full
/// lint pass orders issues by daemon while the incremental merge orders by
/// destination, so equality is on multisets of rendered strings.
std::vector<std::string> sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

const char* to_string(VerifyMode m) {
  switch (m) {
    case VerifyMode::Full:
      return "full";
    case VerifyMode::Incremental:
      return "incremental";
    case VerifyMode::Differential:
      return "differential";
  }
  return "?";
}

obs::Json Report::to_json() const {
  obs::Json root = obs::Json::object();
  root.set("safe", obs::Json::boolean(safe));
  root.set("checks_run",
           obs::Json::num(static_cast<std::uint64_t>(checks_run)));
  root.set("checks_clean",
           obs::Json::num(static_cast<std::uint64_t>(checks_clean)));
  root.set("events_applied",
           obs::Json::num(static_cast<std::uint64_t>(events_applied)));
  root.set("verify_mode", obs::Json::str(chaos::to_string(verify_mode)));
  root.set("differential_mismatches",
           obs::Json::num(static_cast<std::uint64_t>(differential_mismatches)));
  root.set("total_dirty_destinations",
           obs::Json::num(
               static_cast<std::uint64_t>(total_dirty_destinations)));
  root.set("total_cache_hits",
           obs::Json::num(static_cast<std::uint64_t>(total_cache_hits)));
  root.set("route_events",
           obs::Json::num(static_cast<std::uint64_t>(route_events)));
  root.set("total_route_recomputed",
           obs::Json::num(static_cast<std::uint64_t>(total_route_recomputed)));
  root.set("total_route_patched",
           obs::Json::num(static_cast<std::uint64_t>(total_route_patched)));
  root.set("total_route_unchanged",
           obs::Json::num(static_cast<std::uint64_t>(total_route_unchanged)));
  root.set("route_differential_mismatches",
           obs::Json::num(
               static_cast<std::uint64_t>(route_differential_mismatches)));

  obs::Json events = obs::Json::array();
  for (const AppliedEvent& ae : log) {
    obs::Json e = obs::Json::object();
    e.set("t", obs::Json::num(ae.event.t));
    e.set("kind", obs::Json::str(chaos::to_string(ae.event.kind)));
    e.set("applied", obs::Json::boolean(ae.applied));
    e.set("detail", obs::Json::str(ae.detail));
    e.set("clean_immediate", obs::Json::boolean(ae.clean_immediate));
    e.set("clean_reconverged", obs::Json::boolean(ae.clean_reconverged));
    if (ae.recovery_latency >= 0.0) {
      e.set("recovery_latency", obs::Json::num(ae.recovery_latency));
    }
    events.push(std::move(e));
  }
  root.set("events", std::move(events));

  obs::Json viols = obs::Json::array();
  for (const Violation& v : violations) {
    obs::Json j = obs::Json::object();
    j.set("t", obs::Json::num(v.t));
    j.set("event_index",
          obs::Json::num(static_cast<std::uint64_t>(v.event_index)));
    j.set("description", obs::Json::str(v.description));
    viols.push(std::move(j));
  }
  root.set("violations", std::move(viols));

  obs::Json span_arr = obs::Json::array();
  for (const Span& sp : spans) {
    obs::Json j = obs::Json::object();
    j.set("event_index",
          obs::Json::num(static_cast<std::uint64_t>(sp.event_index)));
    j.set("kind", obs::Json::str(chaos::to_string(sp.kind)));
    j.set("t_injected", obs::Json::num(sp.t_injected));
    if (sp.t_first_impact >= 0.0) {
      j.set("t_first_impact", obs::Json::num(sp.t_first_impact));
    }
    if (sp.t_reconverged >= 0.0) {
      j.set("t_reconverged", obs::Json::num(sp.t_reconverged));
    }
    if (sp.t_verified >= 0.0) {
      j.set("t_verified", obs::Json::num(sp.t_verified));
    }
    j.set("dirty_destinations",
          obs::Json::num(static_cast<std::uint64_t>(sp.dirty_destinations)));
    j.set("states_explored",
          obs::Json::num(static_cast<std::uint64_t>(sp.states_explored)));
    j.set("cache_hits",
          obs::Json::num(static_cast<std::uint64_t>(sp.cache_hits)));
    j.set("route_recomputed",
          obs::Json::num(static_cast<std::uint64_t>(sp.route_recomputed)));
    j.set("route_patched",
          obs::Json::num(static_cast<std::uint64_t>(sp.route_patched)));
    j.set("route_unchanged",
          obs::Json::num(static_cast<std::uint64_t>(sp.route_unchanged)));
    span_arr.push(std::move(j));
  }
  root.set("spans", std::move(span_arr));

  // Per-failure-class recovery-latency breakdown: every failure kind whose
  // paired recovery was verified clean contributes (t_verified - t_injected).
  struct ClassAgg {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  std::map<std::string, ClassAgg> by_class;  // ordered => stable JSON
  for (const AppliedEvent& ae : log) {
    if (ae.recovery_latency < 0.0) continue;
    ClassAgg& agg = by_class[std::string(chaos::to_string(ae.event.kind))];
    if (agg.count == 0 || ae.recovery_latency < agg.min) {
      agg.min = ae.recovery_latency;
    }
    if (agg.count == 0 || ae.recovery_latency > agg.max) {
      agg.max = ae.recovery_latency;
    }
    ++agg.count;
    agg.sum += ae.recovery_latency;
  }
  obs::Json classes = obs::Json::object();
  for (const auto& [kind, agg] : by_class) {
    obs::Json j = obs::Json::object();
    j.set("count", obs::Json::num(agg.count));
    j.set("mean_s", obs::Json::num(agg.sum / static_cast<double>(agg.count)));
    j.set("min_s", obs::Json::num(agg.min));
    j.set("max_s", obs::Json::num(agg.max));
    classes.set(kind, std::move(j));
  }
  root.set("recovery_by_class", std::move(classes));
  return root;
}

Engine::Engine(testbed::Emulation& em, const topo::AsGraph& g,
               EngineConfig cfg)
    : em_(&em),
      g_(&g),
      cfg_(cfg),
      route_ctl_(em, g),
      rng_(hash_combine(cfg.seed, 0xc4a06)),
      inc_(verify::IncrementalConfig{.lint = cfg.lint,
                                     .valley = cfg.valley,
                                     .blackhole = false}) {
  owners_.reserve(em.hosts.size());
  for (const auto& att : em.hosts) owners_.emplace_back(att.addr, att.as);
  if (cfg_.verify_mode != VerifyMode::Full) {
    em.net->attach_change_log(&change_log_);
  }
}

void Engine::attach_registry(obs::Registry& reg, const std::string& labels) {
  reg_ = &reg;
  m_events_ = reg.counter("chaos.events_applied", labels);
  m_checks_ = reg.counter("chaos.checks", labels);
  m_violations_ = reg.counter("chaos.violations", labels);
  // Explicit bounds: observed recovery latencies span ~10 ms (one daemon
  // tick) to ~1 s (drain-resolved), so uniform 50 ms bins would smear the
  // entire fast mode into one bucket.
  m_recovery_ = reg.histogram(
      "chaos.recovery_latency",
      {0.0, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1.0, 1.5, 2.0},
      labels);
  m_dirty_dests_ = reg.counter("verify.dirty_destinations", labels);
  m_states_explored_ = reg.counter("verify.states_explored", labels);
  m_cache_hits_ = reg.counter("verify.cache_hits", labels);
  shard_ = &reg.create_shard();
  dump_ = std::make_unique<obs::DumpService>(reg);
}

std::uint64_t Engine::drop_sum() const {
  std::uint64_t total = 0;
  for (const auto& [reason, count] : em_->net->drop_breakdown()) {
    total += count;
  }
  return total;
}

Engine::FullVerdict Engine::run_full_provers() const {
  const dp::Network& net = *em_->net;
  FullVerdict out;
  const auto loop_check = verify::check_loop_freedom(net);
  out.loop_free = loop_check.loop_free;
  out.loop_stats = loop_check.stats;
  out.states_explored = loop_check.stats.states;
  for (const auto& cycle : loop_check.cycles) {
    out.cycles.push_back(cycle.to_string());
  }
  if (cfg_.valley) {
    const auto vc = verify::check_valley_freedom(net);
    out.states_explored += vc.stats.states;
    for (const auto& v : vc.violations) out.valleys.push_back(v.to_string());
  }
  if (cfg_.lint) {
    for (const auto& issue :
         verify::lint_deployment(net, *g_, em_->daemons, owners_)) {
      out.lints.push_back(issue.to_string());
    }
  }
  return out;
}

bool Engine::snapshot(Report& report, SimTime t) {
  if (!cfg_.verify) return true;
  ++report.checks_run;
  if (shard_) shard_->add(m_checks_);

  // First-impact attribution: any fault whose injection-time drop baseline
  // has been exceeded by now saw its first dropped packet in (inject, t].
  const std::uint64_t drops_now = drop_sum();
  for (std::size_t i = 0; i < pending_impacts_.size();) {
    if (drops_now > pending_impacts_[i].drop_baseline) {
      report.spans[pending_impacts_[i].span_index].t_first_impact = t;
      pending_impacts_[i] = pending_impacts_.back();
      pending_impacts_.pop_back();
    } else {
      ++i;
    }
  }

  const dp::Network& net = *em_->net;
  report.verify_mode = cfg_.verify_mode;
  bool clean = true;
  last_cost_ = verify::IncrementalStats{};

  const auto report_strings = [&](const char* label,
                                  const std::vector<std::string>& items) {
    for (const std::string& s : items) {
      report.violations.push_back(
          Violation{t, last_event_index_, std::string(label) + ": " + s});
    }
  };

  if (cfg_.verify_mode == VerifyMode::Full) {
    const FullVerdict full = run_full_provers();
    report.last_stats = full.loop_stats;
    clean = full.loop_free && full.valleys.empty() && full.lints.empty();
    report_strings("cycle", full.cycles);
    report_strings("valley", full.valleys);
    report_strings("lint", full.lints);
    last_cost_.destinations = full.loop_stats.destinations;
    last_cost_.dirty_destinations = full.loop_stats.destinations;
    last_cost_.states_explored = full.states_explored;
  } else {
    changes_.drain(change_log_);
    const verify::IncrementalResult inc =
        inc_.check(net, *g_, em_->daemons, owners_, changes_);
    changes_.clear();
    report.last_stats = inc.loop.stats;
    clean = inc.loop.loop_free && inc.valley.valley_free && inc.lint.empty();
    std::vector<std::string> inc_cycles;
    std::vector<std::string> inc_valleys;
    std::vector<std::string> inc_lints;
    for (const auto& c : inc.loop.cycles) inc_cycles.push_back(c.to_string());
    for (const auto& v : inc.valley.violations) {
      inc_valleys.push_back(v.to_string());
    }
    for (const auto& i : inc.lint) inc_lints.push_back(i.to_string());
    report_strings("cycle", inc_cycles);
    report_strings("valley", inc_valleys);
    report_strings("lint", inc_lints);
    last_cost_ = inc.stats;
    report.total_dirty_destinations += inc.stats.dirty_destinations;
    report.total_cache_hits += inc.stats.cache_hits;

    if (cfg_.verify_mode == VerifyMode::Differential) {
      // Oracle pass: the untouched full provers on the same state. The
      // incremental result must be verdict- and counterexample-identical
      // (lints compare as multisets — the full pass orders by daemon, the
      // incremental merge by destination).
      const FullVerdict full = run_full_provers();
      const bool match = full.loop_free == inc.loop.loop_free &&
                         sorted(full.cycles) == sorted(inc_cycles) &&
                         sorted(full.valleys) == sorted(inc_valleys) &&
                         sorted(full.lints) == sorted(inc_lints);
      if (!match) {
        ++report.differential_mismatches;
        report.violations.push_back(Violation{
            t, last_event_index_,
            "differential: incremental verdict diverged from full prover "
            "(cycles " +
                std::to_string(inc_cycles.size()) + "/" +
                std::to_string(full.cycles.size()) + ", valleys " +
                std::to_string(inc_valleys.size()) + "/" +
                std::to_string(full.valleys.size()) + ", lints " +
                std::to_string(inc_lints.size()) + "/" +
                std::to_string(full.lints.size()) + ", loop_free " +
                (inc.loop.loop_free ? "1" : "0") + "/" +
                (full.loop_free ? "1" : "0") + ")"});
        clean = false;
      }
      // Route-plane oracle: every delta-maintained CSR segment must be
      // element-identical to a from-scratch Gao-Rexford rebuild on the
      // current masked graph (withdrawn prefixes compare against the
      // all-invalid store). This is what catches plant_stale_route.
      for (const AsId d : route_ctl_.delta().differential_check()) {
        ++report.route_differential_mismatches;
        report.violations.push_back(Violation{
            t, last_event_index_,
            "route-differential: delta segment for AS" +
                std::to_string(d.value()) +
                " diverged from from-scratch rebuild"});
        clean = false;
      }
    }
  }
  if (shard_) {
    shard_->add(m_dirty_dests_,
                static_cast<double>(last_cost_.dirty_destinations));
    shard_->add(m_states_explored_,
                static_cast<double>(last_cost_.states_explored));
    shard_->add(m_cache_hits_, static_cast<double>(last_cost_.cache_hits));
  }
  if (!clean) {
    report.safe = false;
    if (shard_) shard_->add(m_violations_);
  } else {
    ++report.checks_clean;
    // A clean snapshot resolves every repair that happened before it: the
    // state machine is provably safe again, so the outage's verification
    // debt is paid. Latency counts from the *failure*, not the repair.
    for (std::size_t i = 0; i < pending_recoveries_.size();) {
      if (pending_recoveries_[i].recover_t <= t) {
        const PendingRecovery& pr = pending_recoveries_[i];
        AppliedEvent& fail_ev = report.log[pr.fail_index];
        fail_ev.recovery_latency = t - pr.fail_t;
        if (shard_) shard_->observe(m_recovery_, t - pr.fail_t);
        for (Span& sp : report.spans) {
          if (sp.event_index == pr.fail_index) {
            sp.t_verified = t;
            break;
          }
        }
        pending_recoveries_[i] = pending_recoveries_.back();
        pending_recoveries_.pop_back();
      } else {
        ++i;
      }
    }
  }
  if (dump_) dump_->service();
  return clean;
}

void Engine::set_link_state(AsId a, AsId b, bool down, std::string& detail) {
  dp::Network& net = *em_->net;
  const auto* eg_ab = em_->wirings[a.value()].egress_to(b);
  const auto* eg_ba = em_->wirings[b.value()].egress_to(a);
  if (eg_ab == nullptr || eg_ba == nullptr) {
    detail = "no such adjacency";
    return;
  }
  for (const auto* eg : {eg_ab, eg_ba}) {
    const std::uint64_t key = port_key(eg->router, eg->port);
    int& depth = down_depth_[key];
    if (down) {
      if (depth++ == 0) net.set_port_up(eg->router, eg->port, false);
    } else {
      if (depth > 0 && --depth == 0) {
        net.set_port_up(eg->router, eg->port, true);
      }
    }
  }
  // The delta routing table models the BGP session, which is down while
  // *any* fault holds the adjacency down — so it sees only the undirected
  // 0 <-> 1 depth transitions, composing with overlapping faults the same
  // way the per-port depth map does.
  const AsId lo = a < b ? a : b;
  const AsId hi = a < b ? b : a;
  const std::uint64_t akey =
      (static_cast<std::uint64_t>(lo.value()) << 32) | hi.value();
  int& adepth = adj_down_depth_[akey];
  if (down) {
    if (adepth++ == 0) route_ctl_.session_down(a, b);
  } else if (adepth > 0 && --adepth == 0) {
    route_ctl_.session_up(a, b);
  }
  detail = std::string(down ? "down" : "up") + " r" +
           std::to_string(eg_ab->router.value()) + ":p" +
           std::to_string(eg_ab->port.value()) + " <-> r" +
           std::to_string(eg_ba->router.value()) + ":p" +
           std::to_string(eg_ba->port.value());
}

void Engine::scale_link_rate(AsId a, AsId b, double factor,
                             std::string& detail) {
  dp::Network& net = *em_->net;
  const auto* eg_ab = em_->wirings[a.value()].egress_to(b);
  const auto* eg_ba = em_->wirings[b.value()].egress_to(a);
  if (eg_ab == nullptr || eg_ba == nullptr) {
    detail = "no such adjacency";
    return;
  }
  factor = std::clamp(factor, 0.01, 1.0);
  for (const auto* eg : {eg_ab, eg_ba}) {
    dp::Port& port = net.router(eg->router).port(eg->port);
    const std::uint64_t key = port_key(eg->router, eg->port);
    const auto it = nominal_rate_.try_emplace(key, port.rate).first;
    port.rate = it->second * factor;
  }
  detail = "rate x" + std::to_string(factor);
}

void Engine::freeze_as(AsId as, bool freeze, std::string& detail) {
  dp::Network& net = *em_->net;
  const core::AsWiring& wiring = em_->wirings[as.value()];
  // Every port of every router in the AS goes down (and the remote end of
  // each eBGP link with it — a dead router kills the link both ways).
  // The down-depth map makes this compose with per-link faults.
  std::size_t ports = 0;
  const auto flip = [&](RouterId r, PortId p) {
    const std::uint64_t key = port_key(r, p);
    int& depth = down_depth_[key];
    if (freeze) {
      if (depth++ == 0) net.set_port_up(r, p, false);
    } else {
      if (depth > 0 && --depth == 0) net.set_port_up(r, p, true);
    }
    ++ports;
  };
  for (const RouterId r : wiring.routers) {
    const dp::Router& router = net.router(r);
    for (std::size_t pi = 0; pi < router.num_ports(); ++pi) {
      flip(r, PortId(static_cast<std::uint32_t>(pi)));
    }
  }
  for (const auto& eg : wiring.egresses) {
    const auto* back = em_->wirings[eg.neighbor.value()].egress_to(as);
    MIFO_ASSERT(back != nullptr);
    flip(back->router, back->port);
  }
  em_->daemons[as.value()]->set_frozen(freeze);
  if (!freeze) {
    // Restart loses the daemon-programmed state: alt ports come back only
    // once the (unfrozen) daemon re-elects them on its next tick.
    for (const RouterId r : wiring.routers) {
      dp::Fib& fib = net.router(r).fib();
      std::vector<dp::Addr> with_alt;
      for (const auto& [dst, fe] : fib) {
        if (fe.alt_port.valid()) with_alt.push_back(dst);
      }
      for (const dp::Addr dst : with_alt) fib.clear_alt(dst);
    }
  }
  detail = std::to_string(wiring.routers.size()) + " routers, " +
           std::to_string(ports) + " ports " + (freeze ? "down" : "up");
}

void Engine::start_burst(const Event& ev, std::string& detail) {
  dp::Network& net = *em_->net;
  // Candidate hosts inside the requested ASes; fall back to any host so a
  // generated plan's burst never silently fizzles on a host-less AS.
  std::vector<HostId> srcs;
  std::vector<HostId> dsts;
  for (const auto& att : em_->hosts) {
    if (att.as == ev.a) srcs.push_back(att.host);
    if (att.as == ev.b) dsts.push_back(att.host);
  }
  if (srcs.empty()) {
    for (const auto& att : em_->hosts) srcs.push_back(att.host);
  }
  if (dsts.empty()) {
    for (const auto& att : em_->hosts) dsts.push_back(att.host);
  }
  std::uint32_t started = 0;
  for (std::uint32_t i = 0; i < std::max(1u, ev.count); ++i) {
    const HostId src = srcs[rng_.bounded(srcs.size())];
    HostId dst = dsts[rng_.bounded(dsts.size())];
    if (dst == src) {
      if (dsts.size() < 2 && em_->hosts.size() >= 2) {
        for (const auto& att : em_->hosts) {
          if (att.host != src) dsts.push_back(att.host);
        }
      }
      dst = dsts[rng_.bounded(dsts.size())];
      if (dst == src) continue;
    }
    dp::FlowParams fp;
    fp.src = src;
    fp.dst = dst;
    fp.size = static_cast<Bytes>(std::max(0.001, ev.value) * 1e6);
    fp.start = net.now();
    net.start_flow(fp);
    ++started;
  }
  detail = std::to_string(started) + " flows of " +
           std::to_string(ev.value) + " MB";
}

bool Engine::plant_valley(std::string& detail) {
  // Same planted violation as `mifo-verify --mutate-valley`: wire the alt
  // ports of a peering triangle into a ring for one remotely-owned prefix
  // and disable the Tag-Check — the exact state Eq. 3 exists to forbid.
  dp::Network& net = *em_->net;
  std::vector<AsId> ring;
  for (std::size_t i = 0; i < g_->num_ases() && ring.empty(); ++i) {
    const AsId a(static_cast<std::uint32_t>(i));
    const auto nbs = g_->neighbors(a);
    for (std::size_t x = 0; x < nbs.size() && ring.empty(); ++x) {
      if (nbs[x].rel != topo::Rel::Peer || !(a < nbs[x].as)) continue;
      for (std::size_t y = x + 1; y < nbs.size(); ++y) {
        if (nbs[y].rel != topo::Rel::Peer || !(a < nbs[y].as)) continue;
        if (g_->rel(nbs[x].as, nbs[y].as) == topo::Rel::Peer) {
          ring = {a, nbs[x].as, nbs[y].as};
          break;
        }
      }
    }
  }
  if (ring.size() != 3) {
    detail = "no peering triangle in topology";
    return false;
  }
  dp::Addr dst = dp::kInvalidAddr;
  for (const auto& att : em_->hosts) {
    if (att.as != ring[0] && att.as != ring[1] && att.as != ring[2]) {
      dst = att.addr;
      break;
    }
  }
  if (dst == dp::kInvalidAddr) {
    detail = "no prefix owned outside the ring";
    return false;
  }
  for (int i = 0; i < 3; ++i) {
    const auto* eg = em_->wirings[ring[i].value()].egress_to(ring[(i + 1) % 3]);
    if (eg == nullptr || !net.router(eg->router).fib().contains(dst)) {
      detail = "mutation target unreachable";
      return false;
    }
  }
  for (int i = 0; i < 3; ++i) {
    const auto* eg = em_->wirings[ring[i].value()].egress_to(ring[(i + 1) % 3]);
    net.router(eg->router).fib().set_alt(dst, eg->port);
    net.router(eg->router).config().enforce_tag_check = false;
    // The config write bypasses the hooked mutators, so record it by hand —
    // otherwise incremental snapshots would keep serving the stale proof.
    if (auto* log = net.change_log()) log->note_config(eg->router);
  }
  planted_violation_ = true;
  detail = "ring AS" + std::to_string(ring[0].value()) + "-AS" +
           std::to_string(ring[1].value()) + "-AS" +
           std::to_string(ring[2].value()) + " dst=" + std::to_string(dst);
  return true;
}

bool Engine::plant_stale_route(std::string& detail) {
  // Negative control for the route differential oracle — the routing-plane
  // sibling of plant_valley: withdraw a live origin but make the delta
  // table skip that destination's republish, leaving a stale CSR segment.
  // The speakers and FIBs reconverge honestly, so the loop/valley/lint
  // provers stay clean; only the Differential snapshot's from-scratch
  // Gao-Rexford rebuild can expose the divergence.
  if (cfg_.verify_mode != VerifyMode::Differential) {
    detail = "requires differential verify mode";
    return false;
  }
  for (const auto& [addr, as] : owners_) {
    if (route_ctl_.withdrawn(as) || !route_ctl_.delta().tracks(as)) continue;
    route_ctl_.delta().plant_stale(as);
    const bool ok = route_ctl_.withdraw(as);
    MIFO_ASSERT(ok);
    planted_violation_ = true;
    detail = "stale segment planted for AS" + std::to_string(as.value()) +
             " (origin withdrawn, republish skipped)";
    return true;
  }
  detail = "no live tracked origin to withdraw";
  return false;
}

void Engine::note_route_delta(Report& report, Span& sp) {
  const std::size_t total = route_ctl_.delta_events();
  if (total == seen_route_events_) return;  // no routing-plane effect
  seen_route_events_ = total;
  const bgp::DeltaStats& st = route_ctl_.last_delta_stats();
  if (!st.applied) return;
  sp.route_recomputed = st.recomputed;
  sp.route_patched = st.patched;
  sp.route_unchanged = st.unchanged;
  ++report.route_events;
  report.total_route_recomputed += st.recomputed;
  report.total_route_patched += st.patched;
  report.total_route_unchanged += st.unchanged;
  if (cfg_.verify_mode != VerifyMode::Full) {
    // The touched set (recomputed + view-patched) doubles as the verifier's
    // routing dirty set: every destination whose published segment the
    // delta engine swapped is re-proved at the next snapshot, even when its
    // FIB rows happened not to move (the RoutingChange -> pfx row of the
    // ChangeSet mapping).
    for (const AsId dest : st.touched_dests) {
      for (const auto& [addr, as] : owners_) {
        if (as == dest) changes_.note_routing(addr);
      }
    }
  }
}

std::pair<bool, std::string> Engine::apply(const Event& ev) {
  std::string detail;
  switch (ev.kind) {
    case EventKind::LinkDown:
      set_link_state(ev.a, ev.b, true, detail);
      return {detail != "no such adjacency", detail};
    case EventKind::LinkUp:
      set_link_state(ev.a, ev.b, false, detail);
      return {detail != "no such adjacency", detail};
    case EventKind::Degrade:
      scale_link_rate(ev.a, ev.b, ev.value, detail);
      return {detail != "no such adjacency", detail};
    case EventKind::Restore:
      scale_link_rate(ev.a, ev.b, 1.0, detail);
      return {detail != "no such adjacency", detail};
    case EventKind::Withdraw: {
      const bool ok = route_ctl_.withdraw(ev.a);
      return {ok, ok ? "origin withdrawn, RIBs reconverged"
                     : "AS owns no prefix / already withdrawn"};
    }
    case EventKind::Reannounce: {
      const bool ok = route_ctl_.reannounce(ev.a);
      return {ok, ok ? "origin re-announced, FIBs reinstalled"
                     : "AS not withdrawn"};
    }
    case EventKind::IbgpDrop:
      em_->daemons[ev.a.value()]->set_stale(true);
      return {true, "spare adverts frozen at last values"};
    case EventKind::IbgpRestore:
      em_->daemons[ev.a.value()]->set_stale(false);
      return {true, "fresh spare adverts resume"};
    case EventKind::RouterFreeze:
      freeze_as(ev.a, true, detail);
      return {true, detail};
    case EventKind::RouterRestart:
      freeze_as(ev.a, false, detail);
      return {true, detail};
    case EventKind::Burst:
      start_burst(ev, detail);
      return {true, detail};
    case EventKind::PlantValley: {
      const bool ok = plant_valley(detail);
      return {ok, detail};
    }
    case EventKind::PlantStaleRoute: {
      const bool ok = plant_stale_route(detail);
      return {ok, detail};
    }
  }
  return {false, "unknown event"};
}

Report Engine::run(const Plan& plan) {
  MIFO_EXPECTS(em_ != nullptr);
  dp::Network& net = *em_->net;
  Report report;
  report.verify_mode = cfg_.verify_mode;
  report.log.reserve(plan.events.size());

  // Unified timeline: plan events interleaved with pending reconvergence
  // snapshots, processed in time order on top of the packet event queue.
  std::vector<SimTime> checks;  // ascending
  std::size_t ei = 0;
  std::size_t ci = 0;
  const double inf = std::numeric_limits<double>::infinity();
  while (ei < plan.events.size() || ci < checks.size()) {
    const SimTime t_ev = ei < plan.events.size() ? plan.events[ei].t : inf;
    const SimTime t_ck = ci < checks.size() ? checks[ci] : inf;
    if (t_ck < t_ev) {
      net.run_until(t_ck);
      ++ci;
      // Collapse snapshots that landed at (numerically) the same instant.
      while (ci < checks.size() && checks[ci] <= t_ck) ++ci;
      const bool clean = snapshot(report, t_ck);
      if (!report.log.empty()) {
        report.log.back().clean_reconverged =
            report.log.back().clean_reconverged && clean;
      }
      continue;
    }
    const Event& ev = plan.events[ei];
    net.run_until(ev.t);
    // Baseline before the fault lands: apply() can drop queued packets
    // synchronously (a pulled cable flushes its queue), and that flush IS
    // the first impact.
    const std::uint64_t drops_before = drop_sum();
    const auto [applied, detail] = apply(ev);
    AppliedEvent ae;
    ae.event = ev;
    ae.applied = applied;
    ae.detail = detail;
    last_event_index_ = report.log.size();
    if (applied) {
      ++report.events_applied;
      if (shard_) shard_->add(m_events_);
      Span sp;
      sp.event_index = report.log.size();
      sp.kind = ev.kind;
      sp.t_injected = ev.t;
      pending_impacts_.push_back(
          PendingImpact{report.spans.size(), drops_before});
      report.spans.push_back(sp);
      if (obs::Tracer* tr = net.tracer()) {
        obs::TraceEvent te;
        te.t = ev.t;
        te.kind = obs::TraceKind::ChaosEvent;
        te.router = ev.a.valid() ? ev.a.value() : 0;
        te.value = static_cast<double>(static_cast<int>(ev.kind));
        tr->record(te);
      }
      if (applied && is_recovery(ev.kind)) {
        // Pair with the latest unresolved failure of the recovery's
        // counterpart kind on the same subject.
        for (std::size_t i = report.log.size(); i-- > 0;) {
          const AppliedEvent& prior = report.log[i];
          if (!prior.applied || prior.recovery_latency >= 0.0) continue;
          const auto rec = recovery_of(prior.event.kind);
          if (!rec || *rec != ev.kind || prior.event.a != ev.a) continue;
          const bool pending_already =
              std::any_of(pending_recoveries_.begin(),
                          pending_recoveries_.end(),
                          [i](const PendingRecovery& p) {
                            return p.fail_index == i;
                          });
          if (pending_already) continue;
          pending_recoveries_.push_back(
              PendingRecovery{i, prior.event.t, ev.t});
          for (Span& fsp : report.spans) {
            if (fsp.event_index == i) {
              fsp.t_reconverged = ev.t;
              break;
            }
          }
          break;
        }
      }
    }
    report.log.push_back(std::move(ae));
    ++ei;
    if (applied) {
      // Route-delta accounting must precede the immediate snapshot so the
      // recompute set lands in the verifier's dirty set for this check.
      note_route_delta(report, report.spans.back());
      report.log.back().clean_immediate = snapshot(report, ev.t);
      // The immediate snapshot's verify cost is this event's footprint.
      Span& sp = report.spans.back();
      sp.dirty_destinations = last_cost_.dirty_destinations;
      sp.states_explored = last_cost_.states_explored;
      sp.cache_hits = last_cost_.cache_hits;
      report.log.back().clean_reconverged = true;
      checks.push_back(ev.t + cfg_.reconv_delay);
    }
  }

  // Drain: run past the plan end so daemons settle and queues empty, then
  // take the final quiescent snapshot.
  net.run_until(plan.duration + cfg_.drain_margin);
  snapshot(report, plan.duration + cfg_.drain_margin);

  if (planted_violation_) {
    // A planted ring is expected to be caught; "safe" keeps meaning "the
    // verifier found nothing", so the caller sees safe == false here.
    MIFO_ASSERT(!report.safe || !cfg_.verify);
  }
  return report;
}

}  // namespace mifo::chaos
