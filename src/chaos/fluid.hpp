// Chaos -> fluid-plane bridge: replays a plan's link-capacity events into
// sim::FluidSim. The fluid simulator has no routers, RIBs or packets, so
// only the capacity-affecting kinds translate (LinkDown/LinkUp as a
// near-zero capacity factor, Degrade/Restore directly); BGP, iBGP, freeze
// and burst events are packet-plane-only and are skipped.
#pragma once

#include <cstddef>

#include "chaos/plan.hpp"
#include "sim/fluid_sim.hpp"

namespace mifo::chaos {

/// Capacity factor a "down" link is scheduled at (FluidSim clamps to the
/// same floor: a dead link crawls instead of dividing by zero).
inline constexpr double kFluidDownFactor = 1e-3;

/// Schedules the plan's link events on `fs` (both directed links of each
/// adjacency). Returns how many plan events translated. Call before run().
std::size_t apply_to_fluid(const Plan& plan, const topo::AsGraph& g,
                           sim::FluidSim& fs);

/// Chaos × workload composition (failure during a flash crowd): schedules
/// the plan's link events compressed onto the window [start, start+length]
/// of a streaming run — event times map linearly from [0, plan.duration].
/// Returns how many plan events translated. Call before run()/run_stream().
std::size_t apply_to_fluid_window(const Plan& plan, const topo::AsGraph& g,
                                  sim::FluidSim& fs, SimTime start,
                                  SimTime length);

}  // namespace mifo::chaos
