// The chaos engine: drives a chaos::Plan into a running packet-level
// emulation and verifies safety under churn (docs/CHAOS.md).
//
// The engine owns the run loop: it advances the dp::Network event queue to
// each scheduled fault, applies it (cable pulls via Network::set_port_up,
// BGP churn via RouteController, daemon staleness/freezes, bursts), then
// snapshots the installed forwarding state and re-runs the verify::
// deflection-graph prover and lints — once immediately after the event and
// once after a reconvergence delay that covers at least one daemon tick. A
// clean chaos run is therefore a safety-under-churn proof over every
// quiescent point; a dirty one yields the concrete counterexample cycle
// together with the event that triggered it.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chaos/plan.hpp"
#include "chaos/route_control.hpp"
#include "common/rng.hpp"
#include "obs/artifact.hpp"
#include "obs/exposition.hpp"
#include "obs/registry.hpp"
#include "dataplane/change_log.hpp"
#include "testbed/emulation.hpp"
#include "verify/changeset.hpp"
#include "verify/deflection_graph.hpp"
#include "verify/incremental.hpp"
#include "verify/lint.hpp"
#include "verify/valley.hpp"

namespace mifo::chaos {

/// How each quiescent-point snapshot proves safety.
enum class VerifyMode : std::uint8_t {
  /// From-scratch full provers at every snapshot (the PR-4 behaviour).
  Full,
  /// verify::IncrementalVerifier fed by the network's ChangeLog: only the
  /// destinations the fault dirtied are re-proved (cost proportional to
  /// the fault's footprint).
  Incremental,
  /// Both, with the full provers as the oracle: any difference in verdict,
  /// counterexamples or lints between the two is itself a violation. The
  /// check.sh differential gate runs chaos plans in this mode.
  Differential,
};

[[nodiscard]] const char* to_string(VerifyMode m);

struct EngineConfig {
  std::uint64_t seed = 1;
  /// Delay after each event before the reconvergence snapshot; keep it a
  /// few daemon intervals so the tick between event and snapshot is real.
  SimTime reconv_delay = 0.05;
  /// Re-run verify:: at every snapshot (the whole point; off only for
  /// throughput-only benches where verification cost would dominate).
  bool verify = true;
  /// Include the FIB/RIB lint pass in each snapshot.
  bool lint = true;
  /// Include the Gao–Rexford valley-freedom prover in each snapshot.
  bool valley = true;
  /// Proof strategy per snapshot (see VerifyMode).
  VerifyMode verify_mode = VerifyMode::Full;
  /// Extra settle time after the last event before the final snapshot.
  SimTime drain_margin = 0.5;
};

/// One applied (or skipped) plan event with its verification outcomes.
struct AppliedEvent {
  Event event;
  bool applied = false;      ///< false: no-op (e.g. withdraw of a non-owner)
  std::string detail;        ///< what concretely changed
  bool clean_immediate = true;  ///< verifier verdict right after the event
  bool clean_reconverged = true;  ///< ...and after reconv_delay
  /// For recovery events: first verifier-clean snapshot time minus the
  /// paired failure time. Negative when not applicable / never clean.
  double recovery_latency = -1.0;
};

/// A verification failure attributed to the event that triggered it.
struct Violation {
  SimTime t = 0.0;               ///< snapshot time
  std::size_t event_index = 0;   ///< last applied event before the snapshot
  std::string description;       ///< cycle or lint rendering
};

/// Structured fault-lifecycle span: the four recovery-latency milestones of
/// one applied plan event, all in simulated seconds. -1 marks a milestone
/// that never happened (e.g. a fault with no packet impact, or no paired
/// recovery event). First impact is attributed by drop-counter movement
/// between verification snapshots, so its resolution is the snapshot
/// cadence and concurrent faults can alias onto one another — it is
/// evidence, not proof, unlike t_verified which is a verifier verdict.
struct Span {
  std::size_t event_index = 0;  ///< index into Report::log
  EventKind kind = EventKind::LinkDown;
  SimTime t_injected = 0.0;
  SimTime t_first_impact = -1.0;  ///< first snapshot with new drops
  SimTime t_reconverged = -1.0;   ///< paired recovery event applied
  SimTime t_verified = -1.0;      ///< first clean verify after the repair
  /// Verification cost of the immediate (injection-time) snapshot — the
  /// per-fault verify footprint mifo-trace's span table renders. Under
  /// VerifyMode::Full, dirty_destinations counts every destination and
  /// cache_hits stays 0.
  std::size_t dirty_destinations = 0;
  std::size_t states_explored = 0;
  std::size_t cache_hits = 0;
  /// Delta route-recompute footprint of the event (bgp::DeltaStats): how
  /// many destinations the routing plane actually re-ran Gao–Rexford for,
  /// view-patched without a decision run, or kept pointer-identical. All 0
  /// for events with no routing effect.
  std::size_t route_recomputed = 0;
  std::size_t route_patched = 0;
  std::size_t route_unchanged = 0;
};

struct Report {
  std::vector<AppliedEvent> log;
  std::vector<Violation> violations;
  std::vector<Span> spans;  ///< one per applied event, log order
  std::size_t checks_run = 0;
  std::size_t checks_clean = 0;
  std::size_t events_applied = 0;
  bool safe = true;  ///< every snapshot loop-free and lint-clean
  verify::VerifyStats last_stats;
  VerifyMode verify_mode = VerifyMode::Full;
  /// Differential mode: snapshots where incremental and full verdicts
  /// disagreed (0 on a correct implementation; any mismatch also lands in
  /// `violations` and forces safe = false).
  std::size_t differential_mismatches = 0;
  /// Cumulative incremental-engine accounting across all snapshots (zeros
  /// under VerifyMode::Full).
  std::size_t total_dirty_destinations = 0;
  std::size_t total_cache_hits = 0;
  /// Delta route-recompute accounting across all applied events
  /// (DESIGN.md §5.1b): events with a routing effect, destinations
  /// recomputed, destinations view-patched, destinations kept
  /// pointer-identical.
  std::size_t route_events = 0;
  std::size_t total_route_recomputed = 0;
  std::size_t total_route_patched = 0;
  std::size_t total_route_unchanged = 0;
  /// Differential mode: destinations whose delta-maintained segment
  /// diverged from a from-scratch rebuild at some snapshot (0 on a correct
  /// implementation; mismatches land in `violations`, force safe = false).
  std::size_t route_differential_mismatches = 0;

  /// The `chaos` section of the extended mifo.run_artifact.v1 schema:
  /// events, violations, spans and the per-failure-class recovery-latency
  /// breakdown (recovery_by_class).
  [[nodiscard]] obs::Json to_json() const;
};

class Engine {
 public:
  /// `em` must be finalized, MIFO-enabled (or not — plain BGP works too,
  /// with nothing to verify but default routes) and must outlive the
  /// engine. `g` is the AS graph the emulation was built from.
  Engine(testbed::Emulation& em, const topo::AsGraph& g,
         EngineConfig cfg = {});

  /// Attach a metrics registry: chaos.events_applied / chaos.checks /
  /// chaos.violations counters and a chaos.recovery_latency histogram
  /// (explicit bounds, 10 ms .. 2 s) accumulate under `labels`. Also arms a
  /// live obs::DumpService: snapshots double as parked points, so SIGUSR1 /
  /// MIFO_OBS_DUMP dumps flow out mid-run without touching the hot path.
  void attach_registry(obs::Registry& reg, const std::string& labels);

  /// Runs the plan to completion (events, snapshots, final drain) and
  /// returns the report. Call once per engine.
  [[nodiscard]] Report run(const Plan& plan);

  [[nodiscard]] RouteController& route_controller() { return route_ctl_; }

 private:
  struct PendingRecovery {
    std::size_t fail_index;  ///< log index of the failure event
    SimTime fail_t;
    SimTime recover_t;
  };

  /// A span still waiting for its first packet impact: resolved at the
  /// first snapshot whose network-wide drop total moved past the baseline
  /// captured at injection.
  struct PendingImpact {
    std::size_t span_index;
    std::uint64_t drop_baseline;
  };

  /// Applies one event; returns {applied, detail}.
  std::pair<bool, std::string> apply(const Event& ev);
  void set_link_state(AsId a, AsId b, bool down, std::string& detail);
  void scale_link_rate(AsId a, AsId b, double factor, std::string& detail);
  void freeze_as(AsId as, bool freeze, std::string& detail);
  void start_burst(const Event& ev, std::string& detail);
  bool plant_valley(std::string& detail);
  bool plant_stale_route(std::string& detail);
  /// Feeds the latest delta-recompute set into the verification dirty set
  /// and the running report totals; fills the span's route columns.
  void note_route_delta(Report& report, Span& sp);

  /// Verification snapshot at the current time; updates report/metrics.
  bool snapshot(Report& report, SimTime t);
  /// Full-prover pass shared by Full and Differential snapshots.
  struct FullVerdict {
    bool loop_free = true;
    std::vector<std::string> cycles;
    std::vector<std::string> valleys;
    std::vector<std::string> lints;
    verify::VerifyStats loop_stats;
    std::size_t states_explored = 0;  ///< loop + valley, for span costing
  };
  [[nodiscard]] FullVerdict run_full_provers() const;

  /// Network-wide drop total (all breakdown buckets) — the span
  /// first-impact signal.
  [[nodiscard]] std::uint64_t drop_sum() const;

  testbed::Emulation* em_;
  const topo::AsGraph* g_;
  EngineConfig cfg_;
  RouteController route_ctl_;
  Rng rng_;
  std::vector<std::pair<dp::Addr, AsId>> owners_;

  /// Down-depth per directed router port (overlapping faults nest).
  std::unordered_map<std::uint64_t, int> down_depth_;
  /// Nominal rate per directed router port touched by Degrade.
  std::unordered_map<std::uint64_t, Mbps> nominal_rate_;
  std::vector<PendingRecovery> pending_recoveries_;
  std::vector<PendingImpact> pending_impacts_;
  /// Down-depth per undirected adjacency: the delta routing table sees a
  /// session event only on the 0 <-> 1 transitions, so overlapping faults
  /// on one link compose the same way they do for ports.
  std::unordered_map<std::uint64_t, int> adj_down_depth_;
  /// High-water mark of route_ctl_.delta_events() — how note_route_delta
  /// tells whether the event just applied had any routing-plane effect.
  std::size_t seen_route_events_ = 0;
  std::size_t last_event_index_ = 0;
  bool planted_violation_ = false;

  /// Incremental verification state (unused under VerifyMode::Full): the
  /// change log is attached to the network at construction, drained into
  /// `changes_` at each snapshot, and resolved by the memoizing verifier.
  dp::ChangeLog change_log_;
  verify::ChangeSet changes_;
  verify::IncrementalVerifier inc_;
  /// Verify cost of the most recent snapshot (copied into the span of the
  /// event that triggered the immediate snapshot).
  verify::IncrementalStats last_cost_;

  std::unique_ptr<obs::DumpService> dump_;
  obs::Registry* reg_ = nullptr;
  obs::Registry::Shard* shard_ = nullptr;
  obs::MetricId m_events_ = 0;
  obs::MetricId m_checks_ = 0;
  obs::MetricId m_violations_ = 0;
  obs::MetricId m_recovery_ = 0;
  obs::MetricId m_dirty_dests_ = 0;
  obs::MetricId m_states_explored_ = 0;
  obs::MetricId m_cache_hits_ = 0;
};

}  // namespace mifo::chaos
