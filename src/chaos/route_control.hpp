// Live BGP route churn for a running emulation.
//
// The testbed builder installs FIBs once, from a converged bgp::compute_routes
// snapshot. Chaos needs the control plane to *move*: withdrawing an origin
// must evict the route from every remote RIB, tear the FIB entries (default
// and daemon-programmed alt) out of the data plane, and re-announcement must
// put them back. RouteController runs a real bgpd::SessionNetwork (per-AS
// Speakers, FIFO message processing) beside the packet plane and replays its
// converged state into the routers' FIBs and the MIFO daemons' prefix
// knowledge after every change.
//
// Beside the speakers the controller maintains a bgp::DeltaRoutingTable over
// the prefix-owning destinations (DESIGN.md §5.1b): every withdraw /
// reannounce / session event is mirrored into it as a delta recompute of
// only the affected destinations, with the from-scratch rebuild retained as
// the differential oracle. Per-event DeltaStats feed the chaos engine's
// recovery spans and the verifier's dirty sets.
#pragma once

#include <memory>
#include <vector>

#include "bgp/delta.hpp"
#include "bgpd/session_network.hpp"
#include "testbed/emulation.hpp"
#include "topo/as_graph.hpp"

namespace mifo::chaos {

class RouteController {
 public:
  /// Originates every prefix-owning AS of `em` and converges. `em` and `g`
  /// must outlive the controller.
  RouteController(testbed::Emulation& em, const topo::AsGraph& g);

  /// Withdraws all prefixes originated by `owner`: converges the speakers,
  /// evicts the FIB entries (default route and any alt riding on it) from
  /// every other AS's routers and drops the prefix from their daemons.
  /// Returns false when `owner` owns no prefix or is already withdrawn.
  bool withdraw(AsId owner);

  /// Re-announces `owner`'s prefixes and reinstalls FIB entries and daemon
  /// PrefixRoutes from the speakers' converged RIBs. Returns false when
  /// `owner` owns no prefix or is not currently withdrawn.
  bool reannounce(AsId owner);

  [[nodiscard]] bool withdrawn(AsId owner) const;
  /// BGP messages processed across all convergence runs (telemetry).
  [[nodiscard]] std::size_t messages_processed() const { return messages_; }

  [[nodiscard]] const bgpd::SessionNetwork& sessions() const {
    return *sessions_;
  }

  /// Marks the eBGP session `a`–`b` down (up) in the delta routing table,
  /// recomputing only the destinations whose best tree the edge carries
  /// (RIB-row-only changes are view-patched without a decision run). The
  /// packet plane's port state is the chaos engine's business; this tracks
  /// the routing-plane view. Returns false when the event is a no-op (not
  /// adjacent, already in that state).
  bool session_down(AsId a, AsId b);
  bool session_up(AsId a, AsId b);

  /// The delta-maintained per-destination route segments (DESIGN.md §5.1b).
  [[nodiscard]] const bgp::DeltaRoutingTable& delta() const { return *delta_; }
  [[nodiscard]] bgp::DeltaRoutingTable& delta() { return *delta_; }

  /// Stats of the most recent applied delta event, and running totals.
  [[nodiscard]] const bgp::DeltaStats& last_delta_stats() const {
    return last_delta_;
  }
  [[nodiscard]] std::size_t delta_events() const { return delta_events_; }
  [[nodiscard]] std::size_t delta_recomputed() const {
    return delta_recomputed_;
  }
  [[nodiscard]] std::size_t delta_patched() const { return delta_patched_; }
  [[nodiscard]] std::size_t delta_unchanged() const {
    return delta_unchanged_;
  }

 private:
  void install_prefix(const testbed::HostAttachment& att);
  void evict_prefix(const testbed::HostAttachment& att);
  void apply_delta(const bgp::RouteEvent& ev);

  testbed::Emulation* em_;
  const topo::AsGraph* g_;
  std::unique_ptr<bgpd::SessionNetwork> sessions_;
  std::unique_ptr<bgp::DeltaRoutingTable> delta_;
  std::vector<AsId> withdrawn_;
  std::size_t messages_ = 0;
  bgp::DeltaStats last_delta_;
  std::size_t delta_events_ = 0;
  std::size_t delta_recomputed_ = 0;
  std::size_t delta_patched_ = 0;
  std::size_t delta_unchanged_ = 0;
};

}  // namespace mifo::chaos
