// Live BGP route churn for a running emulation.
//
// The testbed builder installs FIBs once, from a converged bgp::compute_routes
// snapshot. Chaos needs the control plane to *move*: withdrawing an origin
// must evict the route from every remote RIB, tear the FIB entries (default
// and daemon-programmed alt) out of the data plane, and re-announcement must
// put them back. RouteController runs a real bgpd::SessionNetwork (per-AS
// Speakers, FIFO message processing) beside the packet plane and replays its
// converged state into the routers' FIBs and the MIFO daemons' prefix
// knowledge after every change.
#pragma once

#include <memory>
#include <vector>

#include "bgpd/session_network.hpp"
#include "testbed/emulation.hpp"
#include "topo/as_graph.hpp"

namespace mifo::chaos {

class RouteController {
 public:
  /// Originates every prefix-owning AS of `em` and converges. `em` and `g`
  /// must outlive the controller.
  RouteController(testbed::Emulation& em, const topo::AsGraph& g);

  /// Withdraws all prefixes originated by `owner`: converges the speakers,
  /// evicts the FIB entries (default route and any alt riding on it) from
  /// every other AS's routers and drops the prefix from their daemons.
  /// Returns false when `owner` owns no prefix or is already withdrawn.
  bool withdraw(AsId owner);

  /// Re-announces `owner`'s prefixes and reinstalls FIB entries and daemon
  /// PrefixRoutes from the speakers' converged RIBs. Returns false when
  /// `owner` owns no prefix or is not currently withdrawn.
  bool reannounce(AsId owner);

  [[nodiscard]] bool withdrawn(AsId owner) const;
  /// BGP messages processed across all convergence runs (telemetry).
  [[nodiscard]] std::size_t messages_processed() const { return messages_; }

  [[nodiscard]] const bgpd::SessionNetwork& sessions() const {
    return *sessions_;
  }

 private:
  void install_prefix(const testbed::HostAttachment& att);
  void evict_prefix(const testbed::HostAttachment& att);

  testbed::Emulation* em_;
  const topo::AsGraph* g_;
  std::unique_ptr<bgpd::SessionNetwork> sessions_;
  std::vector<AsId> withdrawn_;
  std::size_t messages_ = 0;
};

}  // namespace mifo::chaos
