// Quiescent-point detection for the sharded packet plane (docs/CHAOS.md,
// DESIGN.md §6).
//
// The serial chaos engine snapshots forwarding state whenever it likes: one
// thread, one event queue, every instant is consistent. The sharded plane is
// only globally consistent when its workers are parked at an epoch barrier —
// and only *quiescent* (safe to prove properties of, rather than merely
// read) when no packet is in flight anywhere: not queued at a port, not
// propagating in a replica's event queue, not crossing shards in an SPSC
// ring.
//
// Detecting that cannot poll queues alone (in-propagation packets live in
// event queues, interleaved with control-plane periodics that never stop
// self-rescheduling), so the predicate is conservation closing:
//     injected == delivered + sum(drop breakdown)
// which holds exactly when every injected packet has reached a terminal
// outcome. `await_quiescence` steps the plane probe-by-probe until the books
// close, then assembles the whole-network router snapshot the verify::
// prover consumes (ShardedNetwork::gather_routers).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "dataplane/shard.hpp"

namespace mifo::chaos {

/// True when no packet is in flight anywhere in the sharded plane. Only
/// meaningful between run_until calls (workers parked at a barrier).
[[nodiscard]] bool is_quiescent(const dp::ShardedNetwork& net);

struct QuiescentPoint {
  bool reached = false;  ///< false: deadline hit with packets still in flight
  SimTime t = 0.0;       ///< sim time the plane went quiescent (when reached)
  /// Whole-network router snapshot at `t`, consistent across shards; feed
  /// directly to verify::check_loop_freedom. Empty unless `reached`.
  std::vector<dp::Router> routers;
};

/// Steps `net` forward in `probe`-wide increments until it is quiescent or
/// `deadline` (sim time) passes, and snapshots the forwarding state at the
/// first quiescent barrier. Control-plane periodics keep ticking throughout;
/// they do not block quiescence.
[[nodiscard]] QuiescentPoint await_quiescence(dp::ShardedNetwork& net,
                                              SimTime deadline,
                                              SimTime probe = 0.01);

}  // namespace mifo::chaos
