#include "chaos/quiesce.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace mifo::chaos {

bool is_quiescent(const dp::ShardedNetwork& net) {
  std::uint64_t dropped = 0;
  for (const auto& [reason, count] : net.drop_breakdown()) dropped += count;
  return net.injected_pkts() == net.delivered_pkts() + dropped;
}

QuiescentPoint await_quiescence(dp::ShardedNetwork& net, SimTime deadline,
                                SimTime probe) {
  MIFO_EXPECTS(probe > 0.0);
  QuiescentPoint qp;
  SimTime t = net.now();
  while (true) {
    if (is_quiescent(net)) {
      qp.reached = true;
      qp.t = net.now();
      qp.routers = net.gather_routers();
      return qp;
    }
    if (t >= deadline) return qp;
    t = std::min(t + probe, deadline);
    net.run_until(t);
  }
}

}  // namespace mifo::chaos
