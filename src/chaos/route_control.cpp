#include "chaos/route_control.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace mifo::chaos {

RouteController::RouteController(testbed::Emulation& em,
                                 const topo::AsGraph& g)
    : em_(&em), g_(&g) {
  sessions_ = std::make_unique<bgpd::SessionNetwork>(g);
  std::vector<AsId> dests;
  for (const auto& att : em.hosts) {
    sessions_->originate(att.as);
    dests.push_back(att.as);
  }
  messages_ += sessions_->run_to_convergence();
  delta_ = std::make_unique<bgp::DeltaRoutingTable>(g, std::move(dests));
}

void RouteController::apply_delta(const bgp::RouteEvent& ev) {
  last_delta_ = delta_->apply(ev);
  if (last_delta_.applied) {
    ++delta_events_;
    delta_recomputed_ += last_delta_.recomputed;
    delta_patched_ += last_delta_.patched;
    delta_unchanged_ += last_delta_.unchanged;
  }
}

bool RouteController::session_down(AsId a, AsId b) {
  apply_delta(bgp::RouteEvent::session_down(a, b));
  return last_delta_.applied;
}

bool RouteController::session_up(AsId a, AsId b) {
  apply_delta(bgp::RouteEvent::session_up(a, b));
  return last_delta_.applied;
}

bool RouteController::withdrawn(AsId owner) const {
  return std::find(withdrawn_.begin(), withdrawn_.end(), owner) !=
         withdrawn_.end();
}

bool RouteController::withdraw(AsId owner) {
  if (withdrawn(owner)) return false;
  bool owns = false;
  for (const auto& att : em_->hosts) owns = owns || att.as == owner;
  if (!owns) return false;

  sessions_->withdraw(owner);
  messages_ += sessions_->run_to_convergence();
  apply_delta(bgp::RouteEvent::withdraw(owner));
  withdrawn_.push_back(owner);
  for (const auto& att : em_->hosts) {
    if (att.as == owner) evict_prefix(att);
  }
  return true;
}

bool RouteController::reannounce(AsId owner) {
  const auto it = std::find(withdrawn_.begin(), withdrawn_.end(), owner);
  if (it == withdrawn_.end()) return false;

  sessions_->originate(owner);
  messages_ += sessions_->run_to_convergence();
  apply_delta(bgp::RouteEvent::reannounce(owner));
  withdrawn_.erase(it);
  for (const auto& att : em_->hosts) {
    if (att.as == owner) install_prefix(att);
  }
  return true;
}

void RouteController::evict_prefix(const testbed::HostAttachment& att) {
  // Remote ASes lose the route entirely: default out_port and (via
  // Fib::remove) any daemon-programmed alt_port riding on the entry go
  // together — a withdrawn prefix must not keep attracting deflections.
  // The owner's own routers keep local delivery: the host did not move.
  dp::Network& net = *em_->net;
  for (const auto& wiring : em_->wirings) {
    if (wiring.as == att.as) continue;
    em_->daemons[wiring.as.value()]->remove_prefix(net, att.addr);
    for (const RouterId r : wiring.routers) {
      net.router(r).fib().remove(att.addr);
    }
  }
}

void RouteController::install_prefix(const testbed::HostAttachment& att) {
  // Mirror of EmulationBuilder::finalize's install pass, but fed from the
  // live speakers' converged RIBs instead of a fresh compute_routes — the
  // state a withdrawal/re-announcement sequence actually leaves behind.
  dp::Network& net = *em_->net;
  const bgp::IbgpPlan& plan = *em_->plan;
  for (const auto& wiring : em_->wirings) {
    const AsId as = wiring.as;
    if (as == att.as) continue;
    const bgpd::Speaker& sp = sessions_->speaker(as);
    const bgp::Route best = sp.best(att.as);
    if (!best.valid()) continue;  // still unreachable from here
    const RouterId egress_router = plan.border_towards(as, best.next_hop);
    const auto* eg = wiring.egress_to(best.next_hop);
    MIFO_ASSERT(eg != nullptr);
    for (const RouterId r : wiring.routers) {
      if (r == egress_router) {
        net.router(r).fib().set_route(att.addr, eg->port);
      } else {
        const PortId via = wiring.intra_port(r, egress_router);
        MIFO_ASSERT(via.valid());
        net.router(r).fib().set_route(att.addr, via);
      }
    }
    core::PrefixRoutes pr;
    pr.prefix = att.addr;
    pr.default_neighbor = best.next_hop;
    for (const auto& rib : sp.rib_in(att.as)) {
      if (rib.neighbor == best.next_hop) continue;
      if (rib.cls == bgp::RouteClass::None) continue;
      pr.alternatives.push_back(rib.neighbor);
    }
    std::sort(pr.alternatives.begin(), pr.alternatives.end());
    em_->daemons[as.value()]->update_prefix(net, std::move(pr));
  }
}

}  // namespace mifo::chaos
