#include "chaos/fluid.hpp"

namespace mifo::chaos {

std::size_t apply_to_fluid(const Plan& plan, const topo::AsGraph& g,
                           sim::FluidSim& fs) {
  std::size_t applied = 0;
  for (const Event& ev : plan.events) {
    double factor = 0.0;
    switch (ev.kind) {
      case EventKind::LinkDown:
        factor = kFluidDownFactor;
        break;
      case EventKind::LinkUp:
      case EventKind::Restore:
        factor = 1.0;
        break;
      case EventKind::Degrade:
        factor = ev.value;
        break;
      default:
        continue;  // packet-plane-only event
    }
    const LinkId ab = g.link(ev.a, ev.b);
    if (!ab.valid()) continue;
    fs.schedule_capacity_event(ev.t, ab, factor);
    fs.schedule_capacity_event(ev.t, g.twin(ab), factor);
    ++applied;
  }
  return applied;
}

}  // namespace mifo::chaos
