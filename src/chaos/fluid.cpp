#include "chaos/fluid.hpp"

#include "common/contracts.hpp"

namespace mifo::chaos {

std::size_t apply_to_fluid(const Plan& plan, const topo::AsGraph& g,
                           sim::FluidSim& fs) {
  return apply_to_fluid_window(plan, g, fs, 0.0, plan.duration);
}

std::size_t apply_to_fluid_window(const Plan& plan, const topo::AsGraph& g,
                                  sim::FluidSim& fs, SimTime start,
                                  SimTime length) {
  MIFO_EXPECTS(start >= 0.0 && length > 0.0);
  MIFO_EXPECTS(plan.duration > 0.0);
  // scale == 1.0 exactly when the window is the plan's own timeline, so
  // apply_to_fluid keeps scheduling the original event times bit-for-bit.
  const double scale = length / plan.duration;
  std::size_t applied = 0;
  for (const Event& ev : plan.events) {
    double factor = 0.0;
    switch (ev.kind) {
      case EventKind::LinkDown:
        factor = kFluidDownFactor;
        break;
      case EventKind::LinkUp:
      case EventKind::Restore:
        factor = 1.0;
        break;
      case EventKind::Degrade:
        factor = ev.value;
        break;
      default:
        continue;  // packet-plane-only event
    }
    const LinkId ab = g.link(ev.a, ev.b);
    if (!ab.valid()) continue;
    const SimTime t = start + ev.t * scale;
    fs.schedule_capacity_event(t, ab, factor);
    fs.schedule_capacity_event(t, g.twin(ab), factor);
    ++applied;
  }
  return applied;
}

}  // namespace mifo::chaos
