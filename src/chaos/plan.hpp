// Fault-injection schedules (docs/CHAOS.md).
//
// A chaos::Plan is a time-ordered list of events injected into a running
// deployment: inter-AS links flap, port capacities degrade, BGP origins are
// withdrawn and re-announced, iBGP sessions go stale, whole routers freeze,
// and congestion bursts arrive. Plans come from a small text DSL (scripted
// scenarios, regression cases) or from a seeded generator (randomized churn
// with Poisson arrivals and exponential repair times) — either way the plan
// is plain data, fully determined before the run starts, so a (plan, seed)
// pair reproduces an experiment bit-for-bit.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "topo/as_graph.hpp"

namespace mifo::chaos {

enum class EventKind : std::uint8_t {
  LinkDown,     ///< inter-AS link a<->b goes down (both directions)
  LinkUp,       ///< ...and comes back
  Degrade,      ///< link a<->b capacity scaled to `value` * nominal
  Restore,      ///< link a<->b capacity back to nominal
  Withdraw,     ///< AS `a` withdraws its originated prefix(es)
  Reannounce,   ///< ...and re-announces them
  IbgpDrop,     ///< AS `a`'s iBGP session drops: spare adverts go stale
  IbgpRestore,  ///< iBGP session re-established
  RouterFreeze,   ///< AS `a`'s routers die: all ports down, daemon frozen
  RouterRestart,  ///< routers come back with alt state lost
  Burst,        ///< `count` congestion flows of `value` MB from AS a to b
  PlantValley,  ///< plant an Eq.3-violating deflection ring (negative test)
  PlantStaleRoute,  ///< withdraw an origin but skip its delta route
                    ///< recompute: a stale CSR segment the differential
                    ///< verify mode must catch (negative test)
};

[[nodiscard]] const char* to_string(EventKind k);

/// Whether `k` is the recovery half of a fail->recover pair.
[[nodiscard]] bool is_recovery(EventKind k);
/// The recovery kind paired with a failure kind (nullopt for one-shot
/// kinds like Burst/PlantValley and for recovery kinds themselves).
[[nodiscard]] std::optional<EventKind> recovery_of(EventKind k);

struct Event {
  SimTime t = 0.0;
  EventKind kind = EventKind::LinkDown;
  AsId a;  ///< subject AS (link endpoint / origin / frozen AS / burst src)
  AsId b;  ///< other link endpoint / burst destination (when applicable)
  double value = 0.0;        ///< Degrade factor or Burst flow size in MB
  std::uint32_t count = 0;   ///< Burst flow count

  /// One-line rendering ("at 0.500 link-down 3 7").
  [[nodiscard]] std::string to_string() const;
};

struct Plan {
  SimTime duration = 1.0;
  std::vector<Event> events;

  /// Stable-sorts events by time (parsers/generators emit sorted plans;
  /// call after hand-building one).
  void normalize();
};

/// Parses the plan DSL. Grammar (one directive per line, `#` comments):
///
///   duration T
///   at T link-down A B | link-up A B
///   at T degrade A B FACTOR | restore A B
///   at T withdraw A | reannounce A
///   at T ibgp-drop A | ibgp-restore A
///   at T freeze A | restart A
///   at T burst SRC DST COUNT SIZE_MB
///   at T plant-valley
///   at T plant-stale-route
///   every START PERIOD <event...>          (expanded until `duration`)
///   fail T mttr M link A B                 (link-down @T, link-up @T+M)
///   fail T mttr M prefix A                 (withdraw / reannounce)
///   fail T mttr M ibgp A                   (ibgp-drop / ibgp-restore)
///   fail T mttr M router A                 (freeze / restart)
///
/// Returns nullopt and fills `error` on the first malformed line.
[[nodiscard]] std::optional<Plan> parse_plan(std::istream& in,
                                             std::string& error);
[[nodiscard]] std::optional<Plan> parse_plan(const std::string& text,
                                             std::string& error);

/// Renders a plan back into the DSL (round-trips through parse_plan).
[[nodiscard]] std::string format_plan(const Plan& plan);

struct GenParams {
  std::uint64_t seed = 1;
  SimTime duration = 2.0;
  /// Mean fault arrival rate (events/sec, Poisson).
  double rate = 4.0;
  /// Mean time-to-repair for paired faults (exponential).
  SimTime mttr = 0.2;
  /// Mean congestion-burst size per flow (MB) and flows per burst.
  double burst_mb = 4.0;
  std::uint32_t burst_flows = 4;
  /// ASes owning a prefix (withdrawals target these); empty = any AS.
  std::vector<AsId> prefix_owners;
};

/// Seeded random plan over `g`: Poisson fault arrivals, uniformly chosen
/// fault category and subject, exponential MTTR. Every failure gets its
/// paired recovery inside the plan duration, so a clean run always ends
/// quiescent and repaired. Deterministic in (g, params).
[[nodiscard]] Plan generate_plan(const topo::AsGraph& g,
                                 const GenParams& params);

}  // namespace mifo::chaos
