// The paper's testbed experiment (Section V, Figs. 11 and 12).
//
// Topology (Fig. 11): 6 ASes, 11 routers, 4 end hosts.
//   AS1 --(customer of)--> AS3, AS2 --(customer of)--> AS3
//   AS3 <--peer--> AS4, AS3 <--peer--> AS6
//   AS4 --(provider of)--> AS5, AS6 --(provider of)--> AS5
// Default BGP paths: (S1,D1): 1->3->4->5 and (S2,D2): 2->3->4->5 — both
// squeeze through the AS3->AS4 link. MIFO's border router Rd (AS3 towards
// AS4) relieves the bottleneck by deflecting to the alternative 3->6->5 via
// its iBGP peer Ra (AS3 towards AS6), using IP-in-IP between Rd and Ra.
//
// AS3, AS4 and AS6 are expanded to border-router level (4+2+2 routers);
// AS1, AS2 and AS5 collapse to one router each — 11 routers, as built with
// 11 machines in the paper.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "obs/timeseries.hpp"
#include "testbed/emulation.hpp"
#include "topo/as_graph.hpp"

namespace mifo::testbed {

/// AS ids in the Fig. 11 graph (0-indexed: paper AS k = id k-1).
struct Fig11Ids {
  AsId as1{0}, as2{1}, as3{2}, as4{3}, as5{4}, as6{5};
};

/// The Fig. 11 AS graph.
[[nodiscard]] topo::AsGraph fig11_graph();

struct Fig12Params {
  /// Paper: 30 flows per source pair, 100 MB each, 1 KB packets. Defaults
  /// are scaled to 10 MB for sub-minute runs; override for paper scale.
  std::size_t flows_per_pair = 30;
  Bytes flow_size = 10 * kMegaByte;
  std::uint32_t pkt_size = 1000;
  bool mifo = false;
  /// Throughput-series bucket width for Fig. 12(a).
  SimTime bucket = 0.1;
  /// Hard cap on emulated time.
  SimTime time_cap = 600.0;
  dp::RouterConfig router_config{};
  SimTime daemon_interval = 0.005;
  /// Per-link utilization sampling period for the run artifact's congestion
  /// traces (dp::Network::enable_link_sampling); 0 disables (the default).
  SimTime link_sample_interval = 0.0;
};

struct Fig12Result {
  std::vector<double> fct;            ///< per-flow completion times (s)
  std::vector<double> throughput_gbps;///< aggregate delivered Gbps per bucket
  SimTime bucket = 0.1;
  SimTime total_time = 0.0;           ///< time to complete all flows
  double aggregate_gbps = 0.0;        ///< delivered bits / total time
  dp::RouterCounters counters;        ///< summed router counters
  /// Per-link congestion trace (empty unless link_sample_interval > 0).
  obs::LinkSeries link_samples;
};

/// Runs the Fig. 12 experiment (both source pairs send their flows
/// back-to-back, starting simultaneously) and reports the paper's two
/// series.
[[nodiscard]] Fig12Result run_fig12(const Fig12Params& params);

}  // namespace mifo::testbed
