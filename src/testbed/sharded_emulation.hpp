// Sharded testbed emulation: the EmulationBuilder counterpart that wires the
// same AS graph into a dp::ShardedNetwork (DESIGN.md §6), plus the scaled
// Fig. 12-style scenario the multi-worker benchmarks and the sharded-vs-
// serial differential gate run.
//
// The paper's testbed is 15 machines; the scaled scenario generates an
// Internet-like topology (topo::generate_topology) and expands transit ASes
// to border-router level so the packet plane holds 1000+ routers — the scale
// where a single event loop stops being enough and per-core forwarding
// workers start paying off.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bgp/ibgp.hpp"
#include "core/daemon.hpp"
#include "dataplane/shard.hpp"
#include "testbed/emulation.hpp"
#include "topo/as_graph.hpp"

namespace mifo::testbed {

/// The finished sharded emulation. Same shape as `Emulation` but the packet
/// plane runs on MIFO_THREADS forwarding workers.
struct ShardedEmulation {
  std::unique_ptr<dp::ShardedNetwork> net;
  std::unique_ptr<bgp::IbgpPlan> plan;
  std::vector<HostAttachment> hosts;
  std::vector<core::AsWiring> wirings;                     // indexed by AS id
  std::vector<std::unique_ptr<core::MifoDaemon>> daemons;  // indexed by AS id

  /// Turns MIFO on for the given ASes. Each AS's daemon tick registers as a
  /// periodic on the shard that owns the AS, so the control plane runs
  /// exactly where its routers' monitor state lives — no cross-shard reads.
  void enable_mifo(const std::vector<AsId>& ases,
                   const dp::RouterConfig& base_config,
                   SimTime daemon_interval = 0.01);

  [[nodiscard]] const HostAttachment& attachment(HostId h) const;
};

class ShardedEmulationBuilder {
 public:
  ShardedEmulationBuilder(const topo::AsGraph& g, std::vector<bool> expand,
                          BuildParams params = {});

  /// Attach a host to the AS (to its first router). Must precede finalize.
  HostId attach_host(AsId as);

  /// Wires everything into `num_shards` forwarding workers.
  [[nodiscard]] ShardedEmulation finalize(std::size_t num_shards,
                                          dp::ShardConfig cfg = {});

 private:
  const topo::AsGraph& g_;
  std::vector<bool> expand_;
  BuildParams params_;
  std::vector<AsId> pending_hosts_;
};

// --- scaled Fig. 12-style scenario -------------------------------------------

struct ScaledParams {
  // Topology: generated Internet-like graph; transit ASes whose degree is in
  // [2, expand_degree_cap] expand to one border router per adjacency
  // (higher-degree cores stay collapsed — a tier-1's full iBGP mesh would
  // dwarf the rest of the network).
  std::size_t num_ases = 500;
  std::size_t num_tier1 = 10;
  std::size_t expand_degree_cap = 16;
  std::uint64_t seed = 42;

  // Traffic: host pairs between distinct ASes, flows staggered so no two
  // flows share a start timestamp (keeps serial-vs-sharded runs comparable;
  // see DESIGN.md §6 on timestamp ties).
  std::size_t num_host_pairs = 40;
  std::size_t flows_per_pair = 2;
  Bytes flow_size = 1 * kMegaByte;
  std::uint32_t pkt_size = 1000;
  SimTime flow_stagger = 2e-3;
  SimTime time_cap = 120.0;

  // MIFO control plane. The tick interval is deliberately off any round
  // number so daemon events never share a timestamp with packet events
  // (whose times are sums of link delays and tx times).
  bool mifo = true;
  dp::RouterConfig router_config{};
  SimTime daemon_interval = 0.0100003;

  /// WAN-realistic inter-AS propagation delay (0.5 ms): it is also the
  /// conservative-window width, i.e. how much work each epoch amortizes the
  /// two barriers over.
  BuildParams build{.ebgp_delay = 500e-6};

  /// 0 = serial dp::Network oracle (EmulationBuilder); >= 1 = sharded plane
  /// with that many forwarding workers.
  std::size_t num_shards = 0;
  dp::ShardConfig shard{};
};

struct ScaledResult {
  std::size_t num_routers = 0;
  std::size_t num_shards = 0;  ///< 0 = serial oracle engine
  std::size_t flows_total = 0;
  std::size_t flows_done = 0;
  std::uint64_t injected_pkts = 0;
  std::uint64_t delivered_pkts = 0;
  std::uint64_t ring_overflow = 0;  ///< always 0 for the serial engine
  std::uint64_t ring_pushed = 0;    ///< total cross-shard handoffs
  std::size_t ring_peak = 0;        ///< high-water occupancy over all rings
  /// Per-directed-pair ring stats (empty for the serial engine): which
  /// shard pairs carry the handoff traffic and where overflow attributes.
  std::vector<dp::RingStats> ring_pairs;
  std::vector<std::pair<std::string, std::uint64_t>> drops;
  SimTime last_completion = 0.0;  ///< sim time of the latest flow finish
  double wall_build_seconds = 0.0;
  double wall_run_seconds = 0.0;
  /// Order-independent digest over conservation totals, the serial drop
  /// buckets and every flow's (done, end_time, receiver progress) — equal
  /// digests mean the engines produced identical outcomes.
  std::uint64_t outcome_digest = 0;
};

/// The scaled scenario's expansion rule: transit ASes with degree in
/// [2, degree_cap] become one border router per adjacency; stubs and
/// very-high-degree cores collapse to a single router.
[[nodiscard]] std::vector<bool> scaled_expand_mask(const topo::AsGraph& g,
                                                   std::size_t degree_cap);

[[nodiscard]] ScaledResult run_scaled(const ScaledParams& params);

}  // namespace mifo::testbed
