#include "testbed/emulation.hpp"

#include "common/contracts.hpp"
#include "testbed/wiring.hpp"

namespace mifo::testbed {

void Emulation::enable_mifo(const std::vector<AsId>& ases,
                            const dp::RouterConfig& base_config,
                            SimTime daemon_interval) {
  for (const AsId as : ases) {
    MIFO_EXPECTS(as.value() < daemons.size());
    for (const RouterId r : wirings[as.value()].routers) {
      dp::RouterConfig cfg = base_config;
      cfg.mifo_enabled = true;
      net->router(r).config() = cfg;
    }
    core::MifoDaemon* daemon = daemons[as.value()].get();
    net->add_periodic(daemon_interval,
                      [daemon](dp::Network& n, SimTime now) {
                        daemon->tick(n, now);
                      });
  }
}

const HostAttachment& Emulation::attachment(HostId h) const {
  for (const auto& a : hosts) {
    if (a.host == h) return a;
  }
  MIFO_EXPECTS(false && "unknown host");
  return hosts.front();  // unreachable
}

EmulationBuilder::EmulationBuilder(const topo::AsGraph& g,
                                   std::vector<bool> expand,
                                   BuildParams params)
    : g_(g), expand_(std::move(expand)), params_(params) {
  MIFO_EXPECTS(expand_.size() == g.num_ases());
}

HostId EmulationBuilder::attach_host(AsId as) {
  MIFO_EXPECTS(as.value() < g_.num_ases());
  pending_hosts_.push_back(as);
  return HostId(static_cast<std::uint32_t>(pending_hosts_.size() - 1));
}

Emulation EmulationBuilder::finalize() {
  Emulation em;
  em.net = std::make_unique<dp::Network>();
  em.plan = std::make_unique<bgp::IbgpPlan>(g_, expand_);

  std::vector<std::vector<core::PrefixRoutes>> prefix_routes;
  wire_network(*em.net, g_, *em.plan, params_, pending_hosts_, em.wirings,
               em.hosts, prefix_routes);

  // Daemons (constructed for every AS; only ticked once enabled).
  em.daemons.reserve(g_.num_ases());
  for (std::size_t i = 0; i < g_.num_ases(); ++i) {
    em.daemons.push_back(std::make_unique<core::MifoDaemon>(
        em.wirings[i], std::move(prefix_routes[i])));
  }

  return em;
}

}  // namespace mifo::testbed
