#include "testbed/emulation.hpp"

#include <unordered_map>

#include "bgp/route_store.hpp"
#include "common/contracts.hpp"

namespace mifo::testbed {

void Emulation::enable_mifo(const std::vector<AsId>& ases,
                            const dp::RouterConfig& base_config,
                            SimTime daemon_interval) {
  for (const AsId as : ases) {
    MIFO_EXPECTS(as.value() < daemons.size());
    for (const RouterId r : wirings[as.value()].routers) {
      dp::RouterConfig cfg = base_config;
      cfg.mifo_enabled = true;
      net->router(r).config() = cfg;
    }
    core::MifoDaemon* daemon = daemons[as.value()].get();
    net->add_periodic(daemon_interval,
                      [daemon](dp::Network& n, SimTime now) {
                        daemon->tick(n, now);
                      });
  }
}

const HostAttachment& Emulation::attachment(HostId h) const {
  for (const auto& a : hosts) {
    if (a.host == h) return a;
  }
  MIFO_EXPECTS(false && "unknown host");
  return hosts.front();  // unreachable
}

EmulationBuilder::EmulationBuilder(const topo::AsGraph& g,
                                   std::vector<bool> expand,
                                   BuildParams params)
    : g_(g), expand_(std::move(expand)), params_(params) {
  MIFO_EXPECTS(expand_.size() == g.num_ases());
}

HostId EmulationBuilder::attach_host(AsId as) {
  MIFO_EXPECTS(as.value() < g_.num_ases());
  pending_hosts_.push_back(as);
  return HostId(static_cast<std::uint32_t>(pending_hosts_.size() - 1));
}

Emulation EmulationBuilder::finalize() {
  Emulation em;
  em.net = std::make_unique<dp::Network>();
  em.plan = std::make_unique<bgp::IbgpPlan>(g_, expand_);
  dp::Network& net = *em.net;
  const bgp::IbgpPlan& plan = *em.plan;

  // Routers (ids in the network match the plan's router ids).
  for (std::size_t i = 0; i < plan.num_routers(); ++i) {
    const auto& br = plan.router(RouterId(static_cast<std::uint32_t>(i)));
    const RouterId created = net.add_router(br.as);
    MIFO_ASSERT(created == br.id);
  }

  em.wirings.resize(g_.num_ases());
  for (std::size_t i = 0; i < g_.num_ases(); ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    em.wirings[i].as = as;
    em.wirings[i].routers = plan.routers_of(as);
  }

  // eBGP links: one physical link per AS adjacency, between the two facing
  // border routers.
  for (std::size_t i = 0; i < g_.num_ases(); ++i) {
    const AsId a(static_cast<std::uint32_t>(i));
    for (const auto& nb : g_.neighbors(a)) {
      if (!(a < nb.as)) continue;  // each adjacency once
      const RouterId ra = plan.border_towards(a, nb.as);
      const RouterId rb = plan.border_towards(nb.as, a);
      const auto [pa, pb] = net.connect_ebgp(ra, rb, nb.rel,
                                             params_.ebgp_rate,
                                             params_.ebgp_delay);
      em.wirings[a.value()].egresses.push_back(
          core::AsWiring::Egress{nb.as, ra, pa, nb.rel});
      em.wirings[nb.as.value()].egresses.push_back(
          core::AsWiring::Egress{a, rb, pb, topo::reverse(nb.rel)});
    }
  }

  // iBGP full mesh inside expanded ASes.
  for (std::size_t i = 0; i < g_.num_ases(); ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    const auto& routers = plan.routers_of(as);
    for (std::size_t x = 0; x < routers.size(); ++x) {
      for (std::size_t y = x + 1; y < routers.size(); ++y) {
        const auto [px, py] = net.connect_ibgp(routers[x], routers[y],
                                               params_.ibgp_rate,
                                               params_.ibgp_delay);
        em.wirings[i].intra.push_back(
            core::AsWiring::IntraPort{routers[x], routers[y], px});
        em.wirings[i].intra.push_back(
            core::AsWiring::IntraPort{routers[y], routers[x], py});
      }
    }
  }

  // Hosts.
  std::unordered_map<std::uint32_t, PortId> host_port;  // host -> router port
  for (const AsId as : pending_hosts_) {
    const RouterId attach = plan.routers_of(as).front();
    const HostId h = net.add_host();
    const PortId rp = net.connect_host(attach, h, params_.host_rate,
                                       params_.host_delay);
    host_port.emplace(h.value(), rp);
    em.hosts.push_back(
        HostAttachment{h, as, attach, net.host_addr(h)});
  }

  // FIBs + per-AS prefix knowledge, one destination prefix per host.
  std::vector<std::vector<core::PrefixRoutes>> prefix_routes(g_.num_ases());
  for (const auto& att : em.hosts) {
    const bgp::RouteStore routes(g_, att.as);
    for (std::size_t x = 0; x < g_.num_ases(); ++x) {
      const AsId as(static_cast<std::uint32_t>(x));
      const auto& routers = plan.routers_of(as);
      if (as == att.as) {
        // Local delivery: towards the attachment router, then the host port.
        for (const RouterId r : routers) {
          if (r == att.router) {
            net.router(r).fib().set_route(att.addr,
                                          host_port.at(att.host.value()));
          } else {
            const PortId via = em.wirings[x].intra_port(r, att.router);
            MIFO_ASSERT(via.valid());
            net.router(r).fib().set_route(att.addr, via);
          }
        }
        prefix_routes[x].push_back(
            core::PrefixRoutes{att.addr, AsId::invalid(), {}});
        continue;
      }
      const bgp::Route& best = routes.best(as);
      if (!best.valid()) continue;  // unreachable: no FIB entry
      const RouterId egress = plan.border_towards(as, best.next_hop);
      const auto* eg = em.wirings[x].egress_to(best.next_hop);
      MIFO_ASSERT(eg != nullptr);
      for (const RouterId r : routers) {
        if (r == egress) {
          net.router(r).fib().set_route(att.addr, eg->port);
        } else {
          const PortId via = em.wirings[x].intra_port(r, egress);
          MIFO_ASSERT(via.valid());
          net.router(r).fib().set_route(att.addr, via);
        }
      }
      core::PrefixRoutes pr;
      pr.prefix = att.addr;
      pr.default_neighbor = best.next_hop;
      for (const auto& nb : g_.neighbors(as)) {
        if (nb.as == best.next_hop) continue;
        if (routes.rib_from(as, nb.as)) {
          pr.alternatives.push_back(nb.as);
        }
      }
      prefix_routes[x].push_back(std::move(pr));
    }
  }

  // Daemons (constructed for every AS; only ticked once enabled).
  em.daemons.reserve(g_.num_ases());
  for (std::size_t i = 0; i < g_.num_ases(); ++i) {
    em.daemons.push_back(std::make_unique<core::MifoDaemon>(
        em.wirings[i], std::move(prefix_routes[i])));
  }

  return em;
}

}  // namespace mifo::testbed
