// Network-wiring template shared by the serial and the sharded emulation
// builders (emulation.cpp / sharded_emulation.cpp).
//
// `NetT` is dp::Network or dp::ShardedNetwork — both expose the same
// construction surface (add_router/connect_ebgp/connect_ibgp/add_host/
// connect_host/host_addr/router). Keeping one template instead of two copies
// is what makes the differential guarantee meaningful: the serial oracle and
// the sharded plane are wired by the *same* code, so an outcome difference
// can only come from the engines.
#pragma once

#include <unordered_map>
#include <vector>

#include "bgp/ibgp.hpp"
#include "bgp/route_store.hpp"
#include "common/contracts.hpp"
#include "core/daemon.hpp"
#include "testbed/emulation.hpp"
#include "topo/as_graph.hpp"

namespace mifo::testbed {

/// Wires routers, eBGP/iBGP links and hosts into `net` per the IbgpPlan and
/// programs BGP-derived FIBs for every pending host. Fills `wirings`,
/// `hosts` and the per-AS `prefix_routes` the MIFO daemons are built from.
template <typename NetT>
void wire_network(NetT& net, const topo::AsGraph& g, const bgp::IbgpPlan& plan,
                  const BuildParams& params,
                  const std::vector<AsId>& pending_hosts,
                  std::vector<core::AsWiring>& wirings,
                  std::vector<HostAttachment>& hosts,
                  std::vector<std::vector<core::PrefixRoutes>>& prefix_routes) {
  // Routers (ids in the network match the plan's router ids).
  for (std::size_t i = 0; i < plan.num_routers(); ++i) {
    const auto& br = plan.router(RouterId(static_cast<std::uint32_t>(i)));
    const RouterId created = net.add_router(br.as);
    MIFO_ASSERT(created == br.id);
  }

  wirings.resize(g.num_ases());
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    wirings[i].as = as;
    wirings[i].routers = plan.routers_of(as);
  }

  // eBGP links: one physical link per AS adjacency, between the two facing
  // border routers.
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const AsId a(static_cast<std::uint32_t>(i));
    for (const auto& nb : g.neighbors(a)) {
      if (!(a < nb.as)) continue;  // each adjacency once
      const RouterId ra = plan.border_towards(a, nb.as);
      const RouterId rb = plan.border_towards(nb.as, a);
      const auto [pa, pb] = net.connect_ebgp(ra, rb, nb.rel, params.ebgp_rate,
                                             params.ebgp_delay);
      wirings[a.value()].egresses.push_back(
          core::AsWiring::Egress{nb.as, ra, pa, nb.rel});
      wirings[nb.as.value()].egresses.push_back(
          core::AsWiring::Egress{a, rb, pb, topo::reverse(nb.rel)});
    }
  }

  // iBGP full mesh inside expanded ASes.
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const auto& routers = wirings[i].routers;
    for (std::size_t x = 0; x < routers.size(); ++x) {
      for (std::size_t y = x + 1; y < routers.size(); ++y) {
        const auto [px, py] = net.connect_ibgp(routers[x], routers[y],
                                               params.ibgp_rate,
                                               params.ibgp_delay);
        wirings[i].intra.push_back(
            core::AsWiring::IntraPort{routers[x], routers[y], px});
        wirings[i].intra.push_back(
            core::AsWiring::IntraPort{routers[y], routers[x], py});
      }
    }
  }

  // Hosts.
  std::unordered_map<std::uint32_t, PortId> host_port;  // host -> router port
  for (const AsId as : pending_hosts) {
    const RouterId attach = plan.routers_of(as).front();
    const HostId h = net.add_host();
    const PortId rp =
        net.connect_host(attach, h, params.host_rate, params.host_delay);
    host_port.emplace(h.value(), rp);
    hosts.push_back(HostAttachment{h, as, attach, net.host_addr(h)});
  }

  // FIBs + per-AS prefix knowledge, one destination prefix per host.
  prefix_routes.assign(g.num_ases(), {});
  for (const auto& att : hosts) {
    const bgp::RouteStore routes(g, att.as);
    for (std::size_t x = 0; x < g.num_ases(); ++x) {
      const AsId as(static_cast<std::uint32_t>(x));
      const auto& routers = plan.routers_of(as);
      if (as == att.as) {
        // Local delivery: towards the attachment router, then the host port.
        for (const RouterId r : routers) {
          if (r == att.router) {
            net.router(r).fib().set_route(att.addr,
                                          host_port.at(att.host.value()));
          } else {
            const PortId via = wirings[x].intra_port(r, att.router);
            MIFO_ASSERT(via.valid());
            net.router(r).fib().set_route(att.addr, via);
          }
        }
        prefix_routes[x].push_back(
            core::PrefixRoutes{att.addr, AsId::invalid(), {}});
        continue;
      }
      const bgp::Route& best = routes.best(as);
      if (!best.valid()) continue;  // unreachable: no FIB entry
      const RouterId egress = plan.border_towards(as, best.next_hop);
      const auto* eg = wirings[x].egress_to(best.next_hop);
      MIFO_ASSERT(eg != nullptr);
      for (const RouterId r : routers) {
        if (r == egress) {
          net.router(r).fib().set_route(att.addr, eg->port);
        } else {
          const PortId via = wirings[x].intra_port(r, egress);
          MIFO_ASSERT(via.valid());
          net.router(r).fib().set_route(att.addr, via);
        }
      }
      core::PrefixRoutes pr;
      pr.prefix = att.addr;
      pr.default_neighbor = best.next_hop;
      for (const auto& nb : g.neighbors(as)) {
        if (nb.as == best.next_hop) continue;
        if (routes.rib_from(as, nb.as)) {
          pr.alternatives.push_back(nb.as);
        }
      }
      prefix_routes[x].push_back(std::move(pr));
    }
  }
}

}  // namespace mifo::testbed
