#include "testbed/sharded_emulation.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "testbed/wiring.hpp"
#include "topo/generator.hpp"

namespace mifo::testbed {

void ShardedEmulation::enable_mifo(const std::vector<AsId>& ases,
                                   const dp::RouterConfig& base_config,
                                   SimTime daemon_interval) {
  for (const AsId as : ases) {
    MIFO_EXPECTS(as.value() < daemons.size());
    for (const RouterId r : wirings[as.value()].routers) {
      dp::RouterConfig cfg = base_config;
      cfg.mifo_enabled = true;
      net->router(r).config() = cfg;
    }
    core::MifoDaemon* daemon = daemons[as.value()].get();
    net->add_periodic(as, daemon_interval,
                      [daemon](dp::Network& n, SimTime now) {
                        daemon->tick(n, now);
                      });
  }
}

const HostAttachment& ShardedEmulation::attachment(HostId h) const {
  for (const auto& a : hosts) {
    if (a.host == h) return a;
  }
  MIFO_EXPECTS(false && "unknown host");
  return hosts.front();  // unreachable
}

ShardedEmulationBuilder::ShardedEmulationBuilder(const topo::AsGraph& g,
                                                 std::vector<bool> expand,
                                                 BuildParams params)
    : g_(g), expand_(std::move(expand)), params_(params) {
  MIFO_EXPECTS(expand_.size() == g.num_ases());
}

HostId ShardedEmulationBuilder::attach_host(AsId as) {
  MIFO_EXPECTS(as.value() < g_.num_ases());
  pending_hosts_.push_back(as);
  return HostId(static_cast<std::uint32_t>(pending_hosts_.size() - 1));
}

ShardedEmulation ShardedEmulationBuilder::finalize(std::size_t num_shards,
                                                   dp::ShardConfig cfg) {
  ShardedEmulation em;
  em.net = std::make_unique<dp::ShardedNetwork>(num_shards, cfg);
  em.plan = std::make_unique<bgp::IbgpPlan>(g_, expand_);

  std::vector<std::vector<core::PrefixRoutes>> prefix_routes;
  wire_network(*em.net, g_, *em.plan, params_, pending_hosts_, em.wirings,
               em.hosts, prefix_routes);

  em.daemons.reserve(g_.num_ases());
  for (std::size_t i = 0; i < g_.num_ases(); ++i) {
    em.daemons.push_back(std::make_unique<core::MifoDaemon>(
        em.wirings[i], std::move(prefix_routes[i])));
  }
  return em;
}

// --- scaled scenario ----------------------------------------------------------

namespace {

struct Scenario {
  topo::AsGraph g;
  std::vector<bool> expand;
  std::vector<std::pair<AsId, AsId>> pairs;  ///< (src AS, dst AS) per host pair
};

Scenario make_scenario(const ScaledParams& p) {
  topo::GeneratorParams gp;
  gp.num_ases = p.num_ases;
  gp.num_tier1 = p.num_tier1;
  gp.seed = p.seed;
  Scenario sc{topo::generate_topology(gp), {}, {}};
  sc.expand = scaled_expand_mask(sc.g, p.expand_degree_cap);

  Rng rng(hash64(p.seed ^ 0x5ca1ab1e5ca1ab1eull));
  const auto n = static_cast<std::uint64_t>(sc.g.num_ases());
  for (std::size_t k = 0; k < p.num_host_pairs; ++k) {
    const auto src = static_cast<std::uint32_t>(rng.bounded(n));
    std::uint32_t dst = src;
    while (dst == src) dst = static_cast<std::uint32_t>(rng.bounded(n));
    sc.pairs.emplace_back(AsId(src), AsId(dst));
  }
  return sc;
}

struct FlowOutcome {
  bool done = false;
  SimTime end_time = 0.0;
  std::uint32_t received = 0;  ///< receiver-side in-order progress
};

/// Order-independent only across engines, not across scenarios: the fields
/// are mixed in a fixed order, so equal digests <=> identical outcomes.
std::uint64_t digest_outcome(
    const ScaledResult& res, const std::vector<FlowOutcome>& flows) {
  std::uint64_t d = hash64(0x6d69666f);  // "mifo"
  const auto mix = [&d](std::uint64_t v) { d = hash_combine(d, hash64(v)); };
  mix(res.injected_pkts);
  mix(res.delivered_pkts);
  for (const auto& [reason, count] : res.drops) {
    if (reason == "ring_overflow") continue;  // absent from the serial oracle
    mix(count);
  }
  for (const FlowOutcome& f : flows) {
    mix(f.done ? 1 : 0);
    mix(std::bit_cast<std::uint64_t>(f.end_time));
    mix(f.received);
  }
  return d;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Runs `net` in parked segments until every flow reports done (or the cap),
/// so control-plane periodics stop costing events once traffic drains. Both
/// engines use the same segmentation, which keeps their runs comparable.
template <typename NetT, typename DonePred>
void run_segmented(NetT& net, SimTime time_cap, const DonePred& all_done) {
  constexpr SimTime kSegment = 0.25;
  SimTime t = 0.0;
  while (t < time_cap && !all_done()) {
    t = std::min(t + kSegment, time_cap);
    net.run_until(t);
  }
}

template <typename NetT>
std::vector<FlowId> schedule_flows(NetT& net, const ScaledParams& p,
                                   const std::vector<HostAttachment>& hosts) {
  std::vector<FlowId> ids;
  for (std::size_t k = 0; k < p.num_host_pairs; ++k) {
    for (std::size_t f = 0; f < p.flows_per_pair; ++f) {
      dp::FlowParams fp;
      fp.src = hosts[2 * k].host;
      fp.dst = hosts[2 * k + 1].host;
      fp.size = p.flow_size;
      fp.pkt_size = p.pkt_size;
      fp.start =
          static_cast<SimTime>(k * p.flows_per_pair + f) * p.flow_stagger;
      ids.push_back(net.start_flow(fp));
    }
  }
  return ids;
}

std::vector<AsId> all_ases(const topo::AsGraph& g) {
  std::vector<AsId> ases;
  ases.reserve(g.num_ases());
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    ases.push_back(AsId(static_cast<std::uint32_t>(i)));
  }
  return ases;
}

}  // namespace

std::vector<bool> scaled_expand_mask(const topo::AsGraph& g,
                                     std::size_t degree_cap) {
  std::vector<bool> expand(g.num_ases());
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const std::size_t deg =
        g.neighbors(AsId(static_cast<std::uint32_t>(i))).size();
    expand[i] = deg >= 2 && deg <= degree_cap;
  }
  return expand;
}

ScaledResult run_scaled(const ScaledParams& p) {
  const auto t0 = std::chrono::steady_clock::now();
  const Scenario sc = make_scenario(p);

  ScaledResult res;
  res.num_shards = p.num_shards;
  res.flows_total = p.num_host_pairs * p.flows_per_pair;
  std::vector<FlowOutcome> outcomes;

  if (p.num_shards == 0) {
    // Serial oracle engine.
    EmulationBuilder builder(sc.g, sc.expand, p.build);
    for (const auto& [src, dst] : sc.pairs) {
      builder.attach_host(src);
      builder.attach_host(dst);
    }
    Emulation em = builder.finalize();
    if (p.mifo) {
      em.enable_mifo(all_ases(sc.g), p.router_config, p.daemon_interval);
    }
    const std::vector<FlowId> ids = schedule_flows(*em.net, p, em.hosts);
    res.wall_build_seconds = seconds_since(t0);

    const auto t1 = std::chrono::steady_clock::now();
    dp::Network& net = *em.net;
    run_segmented(net, p.time_cap, [&] {
      return std::all_of(ids.begin(), ids.end(),
                         [&](FlowId id) { return net.flow(id).done; });
    });
    res.wall_run_seconds = seconds_since(t1);

    res.num_routers = net.num_routers();
    res.injected_pkts = net.injected_pkts();
    res.delivered_pkts = net.delivered_pkts();
    res.drops = net.drop_breakdown();
    for (const FlowId id : ids) {
      const dp::FlowState& f = net.flow(id);
      outcomes.push_back(FlowOutcome{f.done, f.end_time, f.expected});
    }
  } else {
    ShardedEmulationBuilder builder(sc.g, sc.expand, p.build);
    for (const auto& [src, dst] : sc.pairs) {
      builder.attach_host(src);
      builder.attach_host(dst);
    }
    ShardedEmulation em = builder.finalize(p.num_shards, p.shard);
    if (p.mifo) {
      em.enable_mifo(all_ases(sc.g), p.router_config, p.daemon_interval);
    }
    const std::vector<FlowId> ids = schedule_flows(*em.net, p, em.hosts);
    res.wall_build_seconds = seconds_since(t0);

    const auto t1 = std::chrono::steady_clock::now();
    dp::ShardedNetwork& net = *em.net;
    run_segmented(net, p.time_cap, [&] {
      return std::all_of(ids.begin(), ids.end(), [&](FlowId id) {
        return net.sender_flow(id).done;
      });
    });
    res.wall_run_seconds = seconds_since(t1);

    res.num_routers = net.num_routers();
    res.injected_pkts = net.injected_pkts();
    res.delivered_pkts = net.delivered_pkts();
    res.drops = net.drop_breakdown();
    res.ring_overflow = res.drops.back().second;
    res.ring_pairs = net.ring_stats();
    for (const dp::RingStats& rs : res.ring_pairs) {
      res.ring_pushed += rs.pushed;
      res.ring_peak = std::max(res.ring_peak, rs.peak);
    }
    for (const FlowId id : ids) {
      const dp::FlowState& snd = net.sender_flow(id);
      outcomes.push_back(
          FlowOutcome{snd.done, snd.end_time, net.receiver_flow(id).expected});
    }
  }

  for (const FlowOutcome& f : outcomes) {
    if (f.done) {
      ++res.flows_done;
      res.last_completion = std::max(res.last_completion, f.end_time);
    }
  }
  res.outcome_digest = digest_outcome(res, outcomes);
  return res;
}

}  // namespace mifo::testbed
