// Builds a runnable packet-level network (dp::Network) from an AS graph:
// border routers per the IbgpPlan, eBGP links, full-mesh iBGP links, host
// attachments, BGP-derived FIBs, and one MIFO daemon per AS.
//
// This is the substitute for the paper's 15-machine testbed: every
// "machine" becomes a dp::Router (kernel forwarding engine) and the daemons
// play the XORP MIFO module.
#pragma once

#include <memory>
#include <vector>

#include "bgp/ibgp.hpp"
#include "core/daemon.hpp"
#include "dataplane/network.hpp"
#include "topo/as_graph.hpp"

namespace mifo::testbed {

struct BuildParams {
  Mbps ebgp_rate = kGigabit;  ///< paper: Gigabit Ethernet everywhere
  SimTime ebgp_delay = 50e-6;
  Mbps ibgp_rate = kGigabit;
  SimTime ibgp_delay = 20e-6;
  Mbps host_rate = kGigabit;  ///< paper: all machines on Gigabit Ethernet
  SimTime host_delay = 20e-6;
};

struct HostAttachment {
  HostId host;
  AsId as;
  RouterId router;
  dp::Addr addr = dp::kInvalidAddr;
};

/// The finished emulation. Non-movable once daemons are registered.
struct Emulation {
  std::unique_ptr<dp::Network> net;
  std::unique_ptr<bgp::IbgpPlan> plan;
  std::vector<HostAttachment> hosts;
  std::vector<core::AsWiring> wirings;                  // indexed by AS id
  std::vector<std::unique_ptr<core::MifoDaemon>> daemons;  // indexed by AS id

  /// Turns MIFO on for the given ASes: flags every router, registers the
  /// AS's daemon tick. Call once, before running.
  void enable_mifo(const std::vector<AsId>& ases,
                   const dp::RouterConfig& base_config,
                   SimTime daemon_interval = 0.01);

  [[nodiscard]] const HostAttachment& attachment(HostId h) const;
};

class EmulationBuilder {
 public:
  /// `expand[i]` = build one border router per adjacency of AS i (otherwise
  /// the AS collapses to a single router).
  EmulationBuilder(const topo::AsGraph& g, std::vector<bool> expand,
                   BuildParams params = {});

  /// Attach a host to the AS (to its first router). Must precede finalize.
  HostId attach_host(AsId as);

  /// Wires everything and computes/programs the FIBs. Call once.
  [[nodiscard]] Emulation finalize();

 private:
  const topo::AsGraph& g_;
  std::vector<bool> expand_;
  BuildParams params_;
  std::vector<AsId> pending_hosts_;
};

}  // namespace mifo::testbed
