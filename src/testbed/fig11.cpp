#include "testbed/fig11.hpp"

#include "common/contracts.hpp"

namespace mifo::testbed {

topo::AsGraph fig11_graph() {
  const Fig11Ids ids;
  topo::AsGraph g(6);
  // AS3 provides transit to AS1 and AS2.
  g.add_provider_customer(ids.as3, ids.as1);
  g.add_provider_customer(ids.as3, ids.as2);
  // AS3 peers with both upstreams of AS5.
  g.add_peering(ids.as3, ids.as4);
  g.add_peering(ids.as3, ids.as6);
  // AS4 and AS6 provide transit to AS5.
  g.add_provider_customer(ids.as4, ids.as5);
  g.add_provider_customer(ids.as6, ids.as5);
  g.info(ids.as3).tier = 2;
  g.info(ids.as4).tier = 2;
  g.info(ids.as6).tier = 2;
  return g;
}

Fig12Result run_fig12(const Fig12Params& params) {
  const Fig11Ids ids;
  const topo::AsGraph g = fig11_graph();

  // Expand the transit ASes to border-router granularity: AS3 gets four
  // border routers (including Rd towards AS4 and Ra towards AS6), AS4 and
  // AS6 two each; the stub ASes collapse — 11 routers total.
  std::vector<bool> expand(g.num_ases(), false);
  expand[ids.as3.value()] = true;
  expand[ids.as4.value()] = true;
  expand[ids.as6.value()] = true;

  EmulationBuilder builder(g, expand);
  const HostId s1 = builder.attach_host(ids.as1);
  const HostId s2 = builder.attach_host(ids.as2);
  const HostId d1 = builder.attach_host(ids.as5);
  const HostId d2 = builder.attach_host(ids.as5);
  Emulation em = builder.finalize();
  dp::Network& net = *em.net;

  if (params.mifo) {
    em.enable_mifo({ids.as3}, params.router_config, params.daemon_interval);
  }
  net.enable_delivery_trace(params.bucket);
  if (params.link_sample_interval > 0.0) {
    net.enable_link_sampling(params.link_sample_interval);
  }

  // Both pairs stream their flows back-to-back ("one after another"),
  // starting at t=0 simultaneously.
  struct PairState {
    HostId src;
    HostId dst;
    std::size_t remaining;
  };
  std::vector<PairState> pairs{{s1, d1, params.flows_per_pair},
                               {s2, d2, params.flows_per_pair}};

  auto launch = [&](PairState& p) {
    MIFO_EXPECTS(p.remaining > 0);
    --p.remaining;
    dp::FlowParams fp;
    fp.src = p.src;
    fp.dst = p.dst;
    fp.size = params.flow_size;
    fp.pkt_size = params.pkt_size;
    fp.start = net.now();
    net.start_flow(fp);
  };

  net.set_flow_complete_callback([&pairs, &launch](dp::Network& n,
                                                   dp::FlowState& f) {
    (void)n;
    for (auto& p : pairs) {
      if (p.src == f.params.src && p.dst == f.params.dst) {
        if (p.remaining > 0) launch(p);
        return;
      }
    }
  });

  launch(pairs[0]);
  launch(pairs[1]);
  net.run_to_completion(params.time_cap);

  Fig12Result res;
  res.bucket = params.bucket;
  Bytes delivered = 0;
  SimTime last_finish = 0.0;
  for (const auto& f : net.flows()) {
    MIFO_ASSERT(f.done);  // the cap must be generous enough
    res.fct.push_back(f.completion_time());
    delivered += f.params.size;
    last_finish = std::max(last_finish, f.end_time);
  }
  for (const Bytes b : net.delivery_buckets()) {
    res.throughput_gbps.push_back(to_megabits(b) / params.bucket / 1000.0);
  }
  res.total_time = last_finish;
  res.aggregate_gbps =
      last_finish > 0 ? to_megabits(delivered) / last_finish / 1000.0 : 0.0;
  res.counters = net.total_counters();
  res.link_samples = net.link_samples();
  // Periodic events (sampler, daemon ticks) self-reschedule all the way to
  // the time cap; every sample row past workload completion is a zero.
  const SimTime cutoff = last_finish + params.bucket;
  std::erase_if(res.link_samples, [cutoff](const obs::LinkSample& s) {
    return s.t > cutoff;
  });
  return res;
}

}  // namespace mifo::testbed
