// Open-loop internet-scale workload engine (docs/WORKLOAD.md).
//
// Streams an unbounded sequence of FlowSpecs into a long-running FluidSim:
// Poisson arrivals (time-varying rate via Lewis–Shedler thinning),
// heavy-tailed bounded-Pareto flow sizes, a gravity-model traffic matrix
// over the top-connectivity stub ASes, diurnal load modulation, and
// scripted flash-crowd / hotspot events. Everything draws from ONE seeded
// Rng in pull order, so a (topology, WorkloadParams) pair reproduces the
// exact flow stream byte-for-byte regardless of MIFO_THREADS or how far the
// consumer reads ahead.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "topo/as_graph.hpp"
#include "traffic/spec.hpp"

namespace mifo::traffic {

/// A scripted load surge: while active, the arrival rate is multiplied by
/// `rate_multiplier` and a `hotspot_share` fraction of arrivals is steered
/// to one hotspot destination (a flash crowd on one content source).
struct FlashCrowd {
  SimTime start = 0.0;
  SimTime duration = 0.0;
  /// Arrival-rate factor while active (>1 surge, <1 lull; must be > 0).
  double rate_multiplier = 1.0;
  /// Fraction of arrivals redirected to the hotspot endpoint [0, 1].
  double hotspot_share = 0.0;
  /// Which endpoint (by gravity-weight rank, 0 = heaviest) is the hotspot.
  std::size_t hotspot_rank = 0;
};

struct WorkloadParams {
  std::uint64_t seed = 1;
  /// Base Poisson arrival rate, flows per second (before modulation).
  double arrival_rate = 500.0;
  /// Arrivals stop after this horizon (flows in flight keep draining).
  SimTime duration = 60.0;

  // Bounded-Pareto flow sizes: P(X > x) ~ x^-alpha on [size_min, size_max].
  // alpha in (1, 2) gives the heavy-tailed mice/elephants mix of measured
  // internet traffic (most bytes in a small fraction of flows).
  double pareto_alpha = 1.3;
  Bytes size_min = 4 * kMegaByte;
  Bytes size_max = 4000 * kMegaByte;

  /// Endpoints = the `max_endpoints` best-connected stub ASes
  /// (rank_by_connectivity order); 0 = every stub AS. Bounding the set also
  /// bounds the simulator's per-destination route-cache footprint.
  std::size_t max_endpoints = 512;
  /// Gravity-marginal skew: endpoint i (0-based rank) carries weight
  /// (i+1)^-gravity_skew; pair (s, d) then attracts traffic proportional to
  /// w_s * w_d (s != d) — the classic gravity traffic matrix.
  double gravity_skew = 0.9;

  /// Diurnal modulation: rate factor 1 + A * sin(2*pi*t/period), A in
  /// [0, 1). 0 disables (flat load).
  double diurnal_amplitude = 0.0;
  SimTime diurnal_period = 60.0;

  std::vector<FlashCrowd> flash_crowds;
};

class WorkloadEngine {
 public:
  WorkloadEngine(const topo::AsGraph& g, WorkloadParams p);

  /// Pulls the next arrival (strictly increasing times). Returns false once
  /// the horizon is exhausted; the stream then stays exhausted.
  [[nodiscard]] bool next(FlowSpec& out);

  /// Instantaneous arrival rate at time t (base * diurnal * flash crowds).
  [[nodiscard]] double rate_at(SimTime t) const;
  /// Analytic offered load at time t: rate_at(t) * mean flow size.
  [[nodiscard]] double offered_load_mbps(SimTime t) const;
  /// Mean bounded-Pareto flow size in megabits (closed form).
  [[nodiscard]] double mean_flow_megabits() const;

  /// Gravity endpoints in weight-rank order (index = FlashCrowd rank).
  [[nodiscard]] const std::vector<AsId>& endpoints() const {
    return endpoints_;
  }
  /// Normalized gravity marginals, aligned with endpoints().
  [[nodiscard]] std::span<const double> marginals() const { return weights_; }
  [[nodiscard]] AsId hotspot(const FlashCrowd& fc) const {
    return endpoints_[fc.hotspot_rank];
  }
  [[nodiscard]] const WorkloadParams& params() const { return p_; }
  [[nodiscard]] std::uint64_t generated() const { return generated_; }
  [[nodiscard]] bool exhausted() const { return exhausted_; }

 private:
  [[nodiscard]] AsId sample_endpoint();
  [[nodiscard]] Bytes sample_size();

  WorkloadParams p_;
  std::vector<AsId> endpoints_;
  std::vector<double> weights_;  ///< normalized marginals, rank order
  std::vector<double> cum_;      ///< cumulative weights for inverse-CDF draws
  double lambda_max_ = 0.0;      ///< thinning envelope: rate_at(t) <= this
  double mean_megabits_ = 0.0;
  Rng rng_;
  SimTime t_ = 0.0;
  bool exhausted_ = false;
  std::uint64_t generated_ = 0;
};

}  // namespace mifo::traffic
