#include "traffic/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/contracts.hpp"
#include "traffic/traffic.hpp"

namespace mifo::traffic {

WorkloadEngine::WorkloadEngine(const topo::AsGraph& g, WorkloadParams p)
    : p_(std::move(p)), rng_(p_.seed) {
  MIFO_EXPECTS(p_.arrival_rate > 0.0);
  MIFO_EXPECTS(p_.duration > 0.0);
  MIFO_EXPECTS(p_.pareto_alpha > 0.0);
  MIFO_EXPECTS(p_.size_min >= 1 && p_.size_max >= p_.size_min);
  MIFO_EXPECTS(p_.gravity_skew >= 0.0);
  MIFO_EXPECTS(p_.diurnal_amplitude >= 0.0 && p_.diurnal_amplitude < 1.0);
  MIFO_EXPECTS(p_.diurnal_period > 0.0);

  // Endpoints: the best-connected stub ASes (the paper takes stub ASes as
  // traffic consumers; connectivity rank orders the gravity marginals).
  const std::vector<AsId> ranked = rank_by_connectivity(g);
  for (const AsId as : ranked) {
    if (g.info(as).tier == 3) endpoints_.push_back(as);
  }
  if (endpoints_.size() < 2) endpoints_ = ranked;  // degenerate tiny graphs
  if (p_.max_endpoints != 0 && endpoints_.size() > p_.max_endpoints) {
    endpoints_.resize(p_.max_endpoints);
  }
  MIFO_EXPECTS(endpoints_.size() >= 2);

  // Zipf-over-rank gravity marginals, normalized.
  weights_.resize(endpoints_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] = std::pow(static_cast<double>(i + 1), -p_.gravity_skew);
    total += weights_[i];
  }
  cum_.resize(weights_.size());
  double run = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] /= total;
    run += weights_[i];
    cum_[i] = run;
  }
  cum_.back() = 1.0;  // close the CDF against rounding

  // Thinning envelope: every modulation factor is bounded by its peak, so
  // the product over "all crowds surging at once" dominates rate_at(t).
  lambda_max_ = p_.arrival_rate * (1.0 + p_.diurnal_amplitude);
  for (const FlashCrowd& fc : p_.flash_crowds) {
    MIFO_EXPECTS(fc.start >= 0.0 && fc.duration >= 0.0);
    MIFO_EXPECTS(fc.rate_multiplier > 0.0);
    MIFO_EXPECTS(fc.hotspot_share >= 0.0 && fc.hotspot_share <= 1.0);
    MIFO_EXPECTS(fc.hotspot_rank < endpoints_.size());
    lambda_max_ *= std::max(1.0, fc.rate_multiplier);
  }

  // Closed-form bounded-Pareto mean (megabits), for offered-load gauges and
  // arrival-rate calibration.
  const double lo = to_megabits(p_.size_min);
  const double hi = to_megabits(p_.size_max);
  const double a = p_.pareto_alpha;
  if (p_.size_min == p_.size_max) {
    mean_megabits_ = lo;
  } else if (std::abs(a - 1.0) < 1e-12) {
    mean_megabits_ = lo * hi / (hi - lo) * std::log(hi / lo);
  } else {
    const double la = std::pow(lo, a);
    mean_megabits_ = la / (1.0 - std::pow(lo / hi, a)) * a / (a - 1.0) *
                     (std::pow(lo, 1.0 - a) - std::pow(hi, 1.0 - a));
  }
}

double WorkloadEngine::rate_at(SimTime t) const {
  double rate = p_.arrival_rate;
  if (p_.diurnal_amplitude > 0.0) {
    rate *= 1.0 + p_.diurnal_amplitude *
                      std::sin(2.0 * std::numbers::pi * t / p_.diurnal_period);
  }
  for (const FlashCrowd& fc : p_.flash_crowds) {
    if (t >= fc.start && t < fc.start + fc.duration) {
      rate *= fc.rate_multiplier;
    }
  }
  return rate;
}

double WorkloadEngine::offered_load_mbps(SimTime t) const {
  return rate_at(t) * mean_megabits_;
}

double WorkloadEngine::mean_flow_megabits() const { return mean_megabits_; }

AsId WorkloadEngine::sample_endpoint() {
  const double u = rng_.uniform();
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
  const std::size_t i =
      std::min(static_cast<std::size_t>(it - cum_.begin()), cum_.size() - 1);
  return endpoints_[i];
}

Bytes WorkloadEngine::sample_size() {
  if (p_.size_min == p_.size_max) return p_.size_min;
  // Bounded-Pareto inverse CDF.
  const double u = rng_.uniform();
  const double a = p_.pareto_alpha;
  const double lo = static_cast<double>(p_.size_min);
  const double hi = static_cast<double>(p_.size_max);
  const double ratio = 1.0 - u * (1.0 - std::pow(lo / hi, a));
  const double x = lo / std::pow(ratio, 1.0 / a);
  const auto b = static_cast<Bytes>(std::llround(x));
  return std::clamp(b, p_.size_min, p_.size_max);
}

bool WorkloadEngine::next(FlowSpec& out) {
  if (exhausted_) return false;
  // Lewis–Shedler thinning: candidate arrivals at the envelope rate, each
  // accepted with probability rate_at(t) / lambda_max.
  for (;;) {
    t_ += rng_.exponential(lambda_max_);
    if (t_ > p_.duration) {
      exhausted_ = true;
      return false;
    }
    if (rng_.uniform() * lambda_max_ <= rate_at(t_)) break;
  }

  const AsId src = sample_endpoint();
  AsId dst = AsId::invalid();
  for (const FlashCrowd& fc : p_.flash_crowds) {
    if (fc.hotspot_share <= 0.0) continue;
    if (t_ < fc.start || t_ >= fc.start + fc.duration) continue;
    if (rng_.bernoulli(fc.hotspot_share)) {
      dst = hotspot(fc);
      break;
    }
  }
  if (!dst.valid() || dst == src) {
    do {
      dst = sample_endpoint();
    } while (dst == src);
  }
  out = FlowSpec{src, dst, sample_size(), t_};
  ++generated_;
  return true;
}

}  // namespace mifo::traffic
