// Synthetic interdomain traffic matrices (Section IV): uniform random AS
// pairs, and the power-law content-provider model where the probability of
// consuming traffic from the i-th ranked provider is F(i) = a * i^-alpha and
// providers are ranked by (#providers + #peers).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "topo/as_graph.hpp"
#include "traffic/spec.hpp"

namespace mifo::traffic {

struct TrafficParams {
  std::size_t num_flows = 100000;
  double arrival_rate = 100.0;  ///< flows per second (Poisson)
  Bytes flow_size = 10 * kMegaByte;
  std::uint64_t seed = 7;
  /// Number of distinct destination ASes to draw from. The simulator caches
  /// converged routes per destination, so a bounded pool keeps memory flat;
  /// 0 = unbounded (any AS may be a destination). Memory implication of 0:
  /// FluidSim's route cache then grows one bgp::RouteStore per *distinct
  /// destination actually drawn* — up to num_ases stores, i.e. O(n^2) route
  /// rows across the cache on an n-AS topology — so unbounded pools are for
  /// small topologies or short traces, not internet-scale runs.
  std::size_t dest_pool = 512;
};

/// Uniform traffic: source and destination chosen uniformly among all ASes
/// (src != dst), destinations restricted to a random pool of
/// `params.dest_pool` ASes.
[[nodiscard]] std::vector<FlowSpec> uniform_traffic(const topo::AsGraph& g,
                                                    const TrafficParams& p);

struct PowerLawParams : TrafficParams {
  double alpha = 1.0;
  /// Number of top-ranked ASes treated as content providers; 0 = derive
  /// from the topology size (all ASes ranked).
  std::size_t num_providers = 0;
};

/// Power-law traffic: flow sources are content providers sampled by Zipf
/// rank over (#providers + #peers); destinations are uniform stub ASes.
[[nodiscard]] std::vector<FlowSpec> power_law_traffic(const topo::AsGraph& g,
                                                      const PowerLawParams& p);

/// Content-provider ranking used by power_law_traffic: AS ids sorted by
/// (#providers + #peers) descending, ties by lower id.
[[nodiscard]] std::vector<AsId> rank_by_connectivity(const topo::AsGraph& g);

/// Random deployment mask: each AS is MIFO/MIRO capable with probability
/// `ratio` (deterministic under `seed`). Ratio 1.0 yields all-true.
[[nodiscard]] std::vector<bool> random_deployment(std::size_t num_ases,
                                                  double ratio,
                                                  std::uint64_t seed);

}  // namespace mifo::traffic
