// Flow specification shared by the traffic generators and the simulator.
#pragma once

#include "common/types.hpp"

namespace mifo::traffic {

struct FlowSpec {
  AsId src;
  AsId dst;
  Bytes size = 10 * kMegaByte;  ///< paper: 10 MB flows
  SimTime arrival = 0.0;        ///< Poisson arrivals, lambda = 100 flows/s
};

}  // namespace mifo::traffic
