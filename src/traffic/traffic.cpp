#include "traffic/traffic.hpp"

#include <algorithm>
#include <numeric>

#include "common/contracts.hpp"

namespace mifo::traffic {

namespace {

/// Poisson arrival times with the given rate, starting at t=0.
std::vector<SimTime> poisson_arrivals(std::size_t n, double rate, Rng& rng) {
  MIFO_EXPECTS(rate > 0.0);
  std::vector<SimTime> times;
  times.reserve(n);
  SimTime t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(rate);
    times.push_back(t);
  }
  return times;
}

std::vector<AsId> sample_dest_pool(const topo::AsGraph& g, std::size_t pool,
                                   Rng& rng) {
  std::vector<AsId> all(g.num_ases());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = AsId(static_cast<std::uint32_t>(i));
  }
  if (pool == 0 || pool >= all.size()) return all;
  rng.shuffle(all);
  all.resize(pool);
  return all;
}

}  // namespace

std::vector<FlowSpec> uniform_traffic(const topo::AsGraph& g,
                                      const TrafficParams& p) {
  MIFO_EXPECTS(g.num_ases() >= 2);
  Rng rng(p.seed);
  const auto dests = sample_dest_pool(g, p.dest_pool, rng);
  const auto arrivals = poisson_arrivals(p.num_flows, p.arrival_rate, rng);

  std::vector<FlowSpec> flows;
  flows.reserve(p.num_flows);
  for (std::size_t i = 0; i < p.num_flows; ++i) {
    const AsId dst = dests[rng.bounded(dests.size())];
    AsId src;
    do {
      src = AsId(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
    } while (src == dst);
    flows.push_back(FlowSpec{src, dst, p.flow_size, arrivals[i]});
  }
  return flows;
}

std::vector<AsId> rank_by_connectivity(const topo::AsGraph& g) {
  std::vector<AsId> ids(g.num_ases());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = AsId(static_cast<std::uint32_t>(i));
  }
  std::vector<std::size_t> score(g.num_ases());
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    score[i] = g.provider_count(as) + g.peer_count(as);
  }
  std::sort(ids.begin(), ids.end(), [&score](AsId a, AsId b) {
    if (score[a.value()] != score[b.value()]) {
      return score[a.value()] > score[b.value()];
    }
    return a < b;
  });
  return ids;
}

std::vector<FlowSpec> power_law_traffic(const topo::AsGraph& g,
                                        const PowerLawParams& p) {
  MIFO_EXPECTS(g.num_ases() >= 2);
  Rng rng(p.seed);
  auto ranked = rank_by_connectivity(g);
  std::size_t n_providers = p.num_providers == 0
                                ? std::max<std::size_t>(1, ranked.size() / 4)
                                : std::min(p.num_providers, ranked.size());
  ranked.resize(n_providers);
  const ZipfSampler zipf(n_providers, p.alpha);

  // Consumers are stub ASes (the paper: "take stub ASes as traffic
  // consumers").
  std::vector<AsId> stubs;
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    if (g.info(as).tier == 3) stubs.push_back(as);
  }
  if (stubs.empty()) {
    for (std::size_t i = 0; i < g.num_ases(); ++i) {
      stubs.push_back(AsId(static_cast<std::uint32_t>(i)));
    }
  }

  const auto arrivals = poisson_arrivals(p.num_flows, p.arrival_rate, rng);
  std::vector<FlowSpec> flows;
  flows.reserve(p.num_flows);
  for (std::size_t i = 0; i < p.num_flows; ++i) {
    const AsId src = ranked[zipf.sample(rng) - 1];
    AsId dst;
    do {
      dst = stubs[rng.bounded(stubs.size())];
    } while (dst == src);
    flows.push_back(FlowSpec{src, dst, p.flow_size, arrivals[i]});
  }
  return flows;
}

std::vector<bool> random_deployment(std::size_t num_ases, double ratio,
                                    std::uint64_t seed) {
  MIFO_EXPECTS(ratio >= 0.0 && ratio <= 1.0);
  std::vector<bool> deployed(num_ases, false);
  if (ratio >= 1.0) {
    std::fill(deployed.begin(), deployed.end(), true);
    return deployed;
  }
  Rng rng(seed);
  for (std::size_t i = 0; i < num_ases; ++i) {
    deployed[i] = rng.bernoulli(ratio);
  }
  return deployed;
}

}  // namespace mifo::traffic
