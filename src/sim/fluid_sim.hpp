// Event-driven flow-level (fluid) simulator for the AS topology.
//
// Replaces the paper's NS-3 runs for the Figs. 5/6/8/9 experiments: flows
// arrive by a Poisson process, rates follow max–min fair sharing of the
// 1 Gbps inter-AS links, and the routing policy (BGP / MIRO / MIFO) decides
// each flow's AS-level path at admission and on periodic re-evaluation
// ticks (the MIFO daemon period). Path switches and alternative-path usage
// are recorded per flow for the load-balancing and stability figures.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/route_store.hpp"
#include "core/walk.hpp"
#include "miro/miro.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "sim/maxmin.hpp"
#include "topo/as_graph.hpp"
#include "traffic/spec.hpp"
#include "traffic/workload.hpp"

namespace mifo::sim {

enum class RoutingMode : std::uint8_t { Bgp, Miro, Mifo };

[[nodiscard]] constexpr const char* to_string(RoutingMode m) {
  switch (m) {
    case RoutingMode::Bgp:
      return "BGP";
    case RoutingMode::Miro:
      return "MIRO";
    case RoutingMode::Mifo:
      return "MIFO";
  }
  return "?";
}

struct SimConfig {
  RoutingMode mode = RoutingMode::Bgp;
  Mbps link_capacity = kGigabit;  ///< paper: all links 1 Gbps
  /// Utilization of the default egress at which MIFO deflects.
  double congest_threshold = 0.7;
  /// Greedy-selection knobs (see core::WalkConfig; swept by ablation A3).
  double spare_margin = 0.2;
  std::uint16_t max_extra_hops = 1;
  core::AltSelection alt_selection = core::AltSelection::LocalGreedy;
  /// Default-path utilization under which a deflected flow resumes it.
  double low_watermark = 0.5;
  /// Path re-evaluation period (the daemon tick).
  SimTime reeval_interval = 0.1;
  /// Per-flow ceiling (access-link speed); the paper's flows cannot exceed
  /// one link's capacity.
  Mbps flow_rate_cap = kGigabit;
  /// Workers for the pre-run route-cache warmup; 0 defers to MIFO_THREADS /
  /// hardware_concurrency. Results are bit-identical at any setting (route
  /// computation is pure per destination; only cache fill order varies).
  std::size_t threads = 0;
  miro::MiroConfig miro{};
};

struct FlowRecord {
  traffic::FlowSpec spec;
  SimTime finish = -1.0;
  bool completed = false;
  bool unreachable = false;
  std::uint32_t path_switches = 0;
  /// Whether the flow was ever carried over a non-default path.
  bool used_alternative = false;

  [[nodiscard]] Mbps throughput() const {
    const SimTime d = finish - spec.arrival;
    return (completed && d > 0.0) ? to_megabits(spec.size) / d : 0.0;
  }
};

/// Knobs for the open-loop streaming event loop (run_stream).
struct StreamConfig {
  /// Goodput-epoch length for the per-epoch LoadSeries.
  SimTime epoch = 0.5;
  /// Run the from-scratch oracle after EVERY solver event and assert
  /// bitwise-identical rates (the differential acceptance gate; makes each
  /// event O(active flows)).
  bool differential = false;
  /// Record the wall-clock latency of every incremental re-solve into
  /// StreamResult::solve_seconds (nondeterministic timing data — keep it
  /// out of byte-compared artifact sections).
  bool measure_solve_latency = false;
  /// Hard stop: flows still active at this sim time are left incomplete
  /// and the result is marked truncated. 0 = run until the stream drains.
  SimTime max_time = 0.0;
};

/// Outcome of one open-loop streaming run.
struct StreamResult {
  std::vector<FlowRecord> records;    ///< one per generated flow
  obs::LoadSeries load;               ///< per-epoch goodput series
  IncrementalMaxMin::Stats solver;    ///< incremental-solver work counters
  std::uint64_t peak_active = 0;      ///< max concurrent flows observed
  SimTime duration = 0.0;             ///< sim time the stream ran
  bool truncated = false;             ///< hit StreamConfig::max_time
  /// Per-event incremental re-solve wall times (only when
  /// StreamConfig::measure_solve_latency; excludes differential checking).
  std::vector<double> solve_seconds;
};

class FluidSim {
 public:
  FluidSim(const topo::AsGraph& g, SimConfig cfg);

  /// MIFO/MIRO capability mask (defaults to all-false, i.e. plain BGP).
  void set_deployment(std::vector<bool> deployed);

  /// Runs the whole trace to completion and returns one record per flow.
  [[nodiscard]] std::vector<FlowRecord> run(
      std::vector<traffic::FlowSpec> specs);

  /// Open-loop streaming run: pulls arrivals from the workload engine one
  /// event at a time (millions of flows never materialize as a vector) and
  /// re-solves rates incrementally per arrival/departure via
  /// IncrementalMaxMin — the companion to run(), whose per-event
  /// from-scratch solve is retained as the differential oracle.
  [[nodiscard]] StreamResult run_stream(traffic::WorkloadEngine& workload,
                                        const StreamConfig& sc);
  /// Same event loop over a pre-generated trace (tests / replays).
  [[nodiscard]] StreamResult run_stream(std::vector<traffic::FlowSpec> specs,
                                        const StreamConfig& sc);

  /// Schedule a capacity change on one directed link: at time `t` its
  /// capacity becomes `factor * SimConfig::link_capacity`. The factor is
  /// clamped to [1e-3, 10] — a "down" link keeps a sliver of capacity so
  /// utilization stays finite and flows pinned to it crawl rather than
  /// divide by zero. Call before run(); run() applies events in time order
  /// and resets all capacities to link_capacity at its start.
  void schedule_capacity_event(SimTime t, LinkId link, double factor);

  /// Converged routes towards `dest` (cached CSR store; exposed for tests).
  [[nodiscard]] const bgp::RouteStore& routes_for(AsId dest);

  /// Evicts the cached route stores of `dests` (misses are ignored), so a
  /// routing event's delta touched set (bgp::DeltaStats::touched_dests)
  /// maps one-to-one onto cache invalidations: the next routes_for /
  /// warm_route_cache of an evicted destination rebuilds from the current
  /// graph instead of serving the pre-event tree. Returns how many entries
  /// were actually dropped.
  std::size_t invalidate_routes(std::span<const AsId> dests);

  // --- observability ---------------------------------------------------------
  /// Attach a metrics registry; solver counters (sim.arrivals, sim.ticks,
  /// sim.solver_runs, …) accumulate into a private shard tagged with
  /// `labels` (e.g. "mode=MIFO,ratio=0.5"). The registry must outlive the
  /// sim; snapshot after run(), not concurrently.
  void attach_registry(obs::Registry& reg, const std::string& labels);

  /// Periodically record aggregate link-utilization samples during run()
  /// (mean/max utilization over loaded links, congested fraction, total
  /// spare, active flow count). 0 disables (the default).
  void enable_sampling(SimTime interval) { sample_interval_ = interval; }
  [[nodiscard]] const obs::UtilSeries& samples() const { return samples_; }

 private:
  /// Computes (in parallel, across SimConfig::threads workers) the route
  /// trees of every uncached destination appearing in `specs`, so the event
  /// loop never stalls on a cache miss. The lazy serial path in routes_for
  /// remains the fallback; warmed results are byte-for-byte what it would
  /// have produced.
  void warm_route_cache(std::span<const traffic::FlowSpec> specs);
  struct ActiveFlow {
    std::uint32_t record = 0;           ///< index into records
    std::uint32_t dest_as = 0;
    std::vector<std::uint32_t> links;   ///< current path (directed links)
    std::vector<std::uint32_t> deflt;   ///< default-path links
    double remaining_mb = 0.0;          ///< megabits left
    double rate = 0.0;
    bool deflected = false;
  };

  [[nodiscard]] double utilization(std::uint32_t link) const;
  [[nodiscard]] core::WalkResult route_flow(AsId src, AsId dest);
  /// Shared streaming event loop behind both run_stream overloads:
  /// `source` yields arrivals in nondecreasing time order, `offered` (may
  /// be null) reports the analytic offered load for the epoch series.
  [[nodiscard]] StreamResult run_stream_impl(
      const std::function<bool(traffic::FlowSpec&)>& source,
      const std::function<double(SimTime)>& offered, const StreamConfig& sc);
  void warm_route_cache_dests(std::vector<std::uint32_t> dests);
  void recompute_rates();
  void reevaluate_paths(std::vector<FlowRecord>& records);
  void take_sample(SimTime t);

  struct CapacityEvent {
    SimTime t = 0.0;
    std::uint32_t link = 0;
    double factor = 1.0;
  };

  const topo::AsGraph& g_;
  SimConfig cfg_;
  std::vector<bool> deployed_;
  std::vector<CapacityEvent> cap_events_;
  std::unordered_map<std::uint32_t, std::unique_ptr<bgp::RouteStore>> cache_;
  std::size_t cache_bytes_ = 0;  ///< resident footprint of cache_ stores
  std::vector<double> capacity_;  ///< per directed link
  std::vector<double> alloc_;    ///< per directed link, allocated Mbps
  std::vector<ActiveFlow> active_;
  /// Solver scratch reused across ticks (allocation-free steady state).
  MaxMinWorkspace maxmin_ws_;
  /// Per-tick views into the active flows' link vectors for MaxMinInput.
  std::vector<std::span<const std::uint32_t>> flow_links_view_;

  // Observability (all optional; zero-cost when unattached/disabled).
  obs::Registry::Shard* shard_ = nullptr;
  obs::MetricId m_arrivals_ = 0;
  obs::MetricId m_unreachable_ = 0;
  obs::MetricId m_completions_ = 0;
  obs::MetricId m_ticks_ = 0;
  obs::MetricId m_solver_runs_ = 0;
  obs::MetricId m_reroutes_ = 0;
  obs::MetricId m_cache_bytes_ = 0;
  obs::MetricId m_route_invalidations_ = 0;
  // Streaming-run metrics (gauges track the latest epoch edge; counters
  // accumulate IncrementalMaxMin work).
  obs::MetricId m_active_flows_ = 0;
  obs::MetricId m_offered_load_ = 0;
  obs::MetricId m_solver_components_ = 0;
  obs::MetricId m_solver_incidences_ = 0;
  obs::MetricId m_solver_full_incidences_ = 0;
  obs::MetricId m_solver_diff_checks_ = 0;
  SimTime sample_interval_ = 0.0;
  SimTime next_sample_ = 0.0;
  obs::UtilSeries samples_;
};

}  // namespace mifo::sim
