// Aggregation of simulation results into the figures' quantities.
#pragma once

#include <span>

#include "common/stats.hpp"
#include "sim/fluid_sim.hpp"

namespace mifo::sim {

/// Per-flow end-to-end throughput CDF over completed flows (Figs. 5/6 axes).
[[nodiscard]] Cdf throughput_cdf(std::span<const FlowRecord> records);

/// Fraction of delivered flows carried over alternative paths (Fig. 8).
[[nodiscard]] double offload_fraction(std::span<const FlowRecord> records);

/// Distribution of per-flow path-switch counts among flows that switched at
/// least once (Fig. 9's population).
[[nodiscard]] IntCounter switch_distribution(
    std::span<const FlowRecord> records);

/// Fraction of completed flows achieving at least `mbps` throughput (the
/// paper's "X% of the flows can use at least 50% of the link capacity").
[[nodiscard]] double fraction_at_least(std::span<const FlowRecord> records,
                                       Mbps mbps);

struct RunSummary {
  std::size_t total = 0;
  std::size_t completed = 0;
  std::size_t unreachable = 0;
  double mean_throughput = 0.0;
  double median_throughput = 0.0;
  double frac_at_500mbps = 0.0;
  double offload = 0.0;
};

[[nodiscard]] RunSummary summarize(std::span<const FlowRecord> records);

}  // namespace mifo::sim
