// Max–min fair rate allocation by progressive filling (water-filling).
//
// The fluid simulator's stand-in for per-packet TCP dynamics: on an AS-level
// topology with long-lived greedy flows, TCP throughput converges to an
// approximately max–min fair share of the bottleneck links, which is what
// the paper's NS-3 runs measure at the flow level.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mifo::sim {

struct MaxMinInput {
  /// One entry per flow: the directed link ids its path crosses. Flows with
  /// empty paths receive `flow_cap`.
  std::span<const std::vector<std::uint32_t>> flow_links;
  /// Capacity of link id l (only ids referenced by flows are read).
  std::span<const double> link_capacity;
  /// Per-flow rate ceiling (access-link speed); <=0 disables the ceiling.
  double flow_cap = 0.0;
};

/// Max–min fair rates, one per flow. Exact progressive filling:
/// every flow's rate rises uniformly until its first bottleneck freezes it.
/// O(#bottleneck-rounds * #used-links + total path length).
[[nodiscard]] std::vector<double> max_min_rates(const MaxMinInput& in);

}  // namespace mifo::sim
