// Max–min fair rate allocation by progressive filling (water-filling).
//
// The fluid simulator's stand-in for per-packet TCP dynamics: on an AS-level
// topology with long-lived greedy flows, TCP throughput converges to an
// approximately max–min fair share of the bottleneck links, which is what
// the paper's NS-3 runs measure at the flow level.
//
// The solver runs every re-evaluation tick of every FluidSim, so its hot
// path is allocation-free: link ids are dense (AsGraph::num_directed_links
// is the universe), and all per-link state lives in epoch-stamped arrays
// inside a caller-owned MaxMinWorkspace that is reused across calls. Only
// links actually referenced by a flow are ever (re-)initialised.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mifo::sim {

struct MaxMinInput {
  /// One entry per flow: the directed link ids its path crosses (borrowed,
  /// not copied — typically views straight into the simulator's per-flow
  /// link vectors). Flows with empty paths receive `flow_cap`.
  std::span<const std::span<const std::uint32_t>> flow_links;
  /// Capacity of link id l (only ids referenced by flows are read).
  std::span<const double> link_capacity;
  /// Per-flow rate ceiling (access-link speed); <=0 disables the ceiling.
  double flow_cap = 0.0;
  /// Size of the link-id universe (ids are < num_links). 0 defaults to
  /// link_capacity.size().
  std::size_t num_links = 0;
};

/// Reusable scratch state for max_min_rates. Construct once (e.g. per
/// FluidSim) and pass to every call; all vectors grow to a high-water mark
/// and are never shrunk, so steady-state calls perform no allocation.
struct MaxMinWorkspace {
  std::vector<double> rates;  ///< per-flow output of the last call

  // Per-flow scratch.
  std::vector<std::uint8_t> frozen;

  // Dense id -> compact-index mapping over the link universe, replacing the
  // per-call hash map. `link_epoch[l] == epoch` marks local_id[l] as valid
  // for the current call; stale entries are ignored, so per-call setup is
  // O(links touched), not O(universe).
  std::vector<std::uint32_t> local_id;
  std::vector<std::uint32_t> link_epoch;

  // Compact per-used-link state, indexed by local id in first-seen order so
  // the water-filling rounds scan memory sequentially (cleared per call,
  // capacity retained).
  std::vector<double> rem_cap;
  std::vector<std::uint32_t> count;         ///< unfrozen flows crossing l
  std::vector<std::uint32_t> charge_stamp;  ///< within-flow dedup (flow+1)
  std::vector<std::uint32_t> flows_begin;   ///< CSR offsets into flow_of
  std::vector<std::uint32_t> flows_cursor;
  std::vector<std::uint32_t> flow_of;       ///< CSR payload: flows per link
  std::vector<std::uint32_t> path_begin;    ///< CSR offsets, size nf+1
  std::vector<std::uint32_t> path_links;    ///< deduplicated per-flow links
  /// Links still carrying unfrozen flows, stably compacted every round so
  /// late water-filling rounds scan only the surviving constraint set.
  std::vector<std::uint32_t> active_links;

  std::uint32_t epoch = 0;
};

/// Max–min fair rates, one per flow, written into (and viewing) `ws.rates`.
/// Exact progressive filling: every flow's rate rises uniformly until its
/// first bottleneck freezes it.
/// O(#bottleneck-rounds * #used-links + total path length); allocation-free
/// once `ws` has warmed up to the instance size.
[[nodiscard]] std::span<const double> max_min_rates(const MaxMinInput& in,
                                                    MaxMinWorkspace& ws);

/// Convenience overload with a throwaway workspace.
[[nodiscard]] std::vector<double> max_min_rates(const MaxMinInput& in);

/// Reference implementation (the original hash-map link-compaction solver),
/// retained verbatim for differential property tests: the dense-workspace
/// solver must return identical rates on every instance.
[[nodiscard]] std::vector<double> max_min_rates_reference(
    const MaxMinInput& in);

}  // namespace mifo::sim
