// Max–min fair rate allocation by progressive filling (water-filling).
//
// The fluid simulator's stand-in for per-packet TCP dynamics: on an AS-level
// topology with long-lived greedy flows, TCP throughput converges to an
// approximately max–min fair share of the bottleneck links, which is what
// the paper's NS-3 runs measure at the flow level.
//
// The solver runs every re-evaluation tick of every FluidSim, so its hot
// path is allocation-free: link ids are dense (AsGraph::num_directed_links
// is the universe), and all per-link state lives in epoch-stamped arrays
// inside a caller-owned MaxMinWorkspace that is reused across calls. Only
// links actually referenced by a flow are ever (re-)initialised.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mifo::sim {

struct MaxMinInput {
  /// One entry per flow: the directed link ids its path crosses (borrowed,
  /// not copied — typically views straight into the simulator's per-flow
  /// link vectors). Flows with empty paths receive `flow_cap`.
  std::span<const std::span<const std::uint32_t>> flow_links;
  /// Capacity of link id l (only ids referenced by flows are read).
  std::span<const double> link_capacity;
  /// Per-flow rate ceiling (access-link speed); <=0 disables the ceiling.
  double flow_cap = 0.0;
  /// Size of the link-id universe (ids are < num_links). 0 defaults to
  /// link_capacity.size().
  std::size_t num_links = 0;
};

/// Reusable scratch state for max_min_rates. Construct once (e.g. per
/// FluidSim) and pass to every call; all vectors grow to a high-water mark
/// and are never shrunk, so steady-state calls perform no allocation.
struct MaxMinWorkspace {
  std::vector<double> rates;  ///< per-flow output of the last call

  // Per-flow scratch.
  std::vector<std::uint8_t> frozen;

  // Dense id -> compact-index mapping over the link universe, replacing the
  // per-call hash map. `link_epoch[l] == epoch` marks local_id[l] as valid
  // for the current call; stale entries are ignored, so per-call setup is
  // O(links touched), not O(universe).
  std::vector<std::uint32_t> local_id;
  std::vector<std::uint32_t> link_epoch;

  // Compact per-used-link state, indexed by local id in first-seen order so
  // the water-filling rounds scan memory sequentially (cleared per call,
  // capacity retained).
  std::vector<double> rem_cap;
  std::vector<std::uint32_t> count;         ///< unfrozen flows crossing l
  std::vector<std::uint32_t> charge_stamp;  ///< within-flow dedup (flow+1)
  std::vector<std::uint32_t> flows_begin;   ///< CSR offsets into flow_of
  std::vector<std::uint32_t> flows_cursor;
  std::vector<std::uint32_t> flow_of;       ///< CSR payload: flows per link
  std::vector<std::uint32_t> path_begin;    ///< CSR offsets, size nf+1
  std::vector<std::uint32_t> path_links;    ///< deduplicated per-flow links
  /// Links still carrying unfrozen flows, stably compacted every round so
  /// late water-filling rounds scan only the surviving constraint set.
  std::vector<std::uint32_t> active_links;

  std::uint32_t epoch = 0;
};

/// Max–min fair rates, one per flow, written into (and viewing) `ws.rates`.
/// Exact progressive filling: every flow's rate rises uniformly until its
/// first bottleneck freezes it.
/// O(#bottleneck-rounds * #used-links + total path length); allocation-free
/// once `ws` has warmed up to the instance size.
[[nodiscard]] std::span<const double> max_min_rates(const MaxMinInput& in,
                                                    MaxMinWorkspace& ws);

/// Convenience overload with a throwaway workspace.
[[nodiscard]] std::vector<double> max_min_rates(const MaxMinInput& in);

/// Reference implementation (the original hash-map link-compaction solver),
/// retained verbatim for differential property tests: the dense-workspace
/// solver must return identical rates on every instance.
[[nodiscard]] std::vector<double> max_min_rates_reference(
    const MaxMinInput& in);

/// Incremental max–min solver over a dynamic flow population (the open-loop
/// streaming workload's arrival/departure event interface).
///
/// Max–min allocations decompose exactly over connected components of the
/// flow↔link sharing graph, where only *constrained* links couple flows: a
/// link crossed by n capped flows can never bind while n * flow_cap <=
/// capacity, so it imposes no constraint and is pruned from the instance
/// without changing any rate. Each arrival / departure / path change /
/// capacity change therefore re-solves only the bottleneck-connected
/// component(s) it touches. Under internet-shaped load (access-capped flows
/// over fat links) components stay tiny, so per-event work sits orders of
/// magnitude below the from-scratch solve FluidSim::recompute_rates runs.
///
/// Exactness: every component is solved by one *canonical* max_min_rates
/// call — members ordered by their monotonic admission sequence, paths
/// filtered to constrained links — and the retained from-scratch oracle
/// (oracle_rates) performs the same canonical decomposition over the whole
/// population, so incremental and oracle rates are bitwise identical
/// (asserted per event by check_differential and
/// tests/sim/test_maxmin_incremental.cpp).
class IncrementalMaxMin {
 public:
  /// Dense handle for a live flow; reused after removal (the admission
  /// sequence number, not the slot, is the canonical identity).
  using Slot = std::uint32_t;
  static constexpr Slot kInvalidSlot = 0xffffffffu;

  /// One rate movement from the last mutating call. A slot may appear more
  /// than once (update_path solves the departure and arrival halves
  /// separately); apply deltas in order.
  struct RateChange {
    Slot slot = 0;
    double old_rate = 0.0;
    double new_rate = 0.0;
  };

  struct Stats {
    std::uint64_t events = 0;               ///< mutating calls processed
    std::uint64_t components_solved = 0;
    std::uint64_t flows_resolved = 0;       ///< sum of solved component sizes
    std::uint64_t incidences_resolved = 0;  ///< incremental solve work
    /// What from-scratch re-solves would have cost: active flows + total
    /// path incidences at each event (FluidSim::recompute_rates's scan).
    std::uint64_t full_incidences = 0;
    std::uint64_t peak_component = 0;       ///< largest component solved
    std::uint64_t differential_checks = 0;
    std::uint64_t differential_mismatches = 0;

    /// Per-event solve-work reduction vs from-scratch (the headline figure).
    [[nodiscard]] double reduction() const {
      return static_cast<double>(full_incidences) /
             static_cast<double>(incidences_resolved != 0 ? incidences_resolved
                                                          : 1);
    }
  };

  /// Takes the directed-link capacity universe and the per-flow cap
  /// (<=0 disables the cap — every touched link is then constrained).
  IncrementalMaxMin(std::vector<double> link_capacity, double flow_cap);

  /// Admit a flow crossing `links` (deduplicated, order preserved); returns
  /// its slot. Rates of its bottleneck component are re-solved.
  Slot add_flow(std::span<const std::uint32_t> links);
  /// Retire a flow; the component it leaves behind is re-solved (it may
  /// split). The removed flow itself reports no RateChange.
  void remove_flow(Slot s);
  /// Move a live flow onto a new path (departure + arrival halves, same
  /// admission sequence). No-op when the deduplicated path is unchanged.
  void update_path(Slot s, std::span<const std::uint32_t> links);
  /// Change one link's capacity (chaos events); re-solves every component
  /// the change can reach (the link's flows seed splits and merges alike).
  void set_capacity(std::uint32_t link, double capacity);

  /// Rate movements from the last mutating call (see RateChange).
  [[nodiscard]] std::span<const RateChange> changes() const {
    return changes_;
  }

  [[nodiscard]] bool live(Slot s) const {
    return s < flows_.size() && flows_[s].live;
  }
  [[nodiscard]] double rate(Slot s) const { return flows_[s].rate; }
  [[nodiscard]] std::span<const std::uint32_t> links_of(Slot s) const {
    return flows_[s].links;
  }
  [[nodiscard]] std::size_t active_flows() const { return active_; }
  [[nodiscard]] std::size_t num_links() const { return capacity_.size(); }
  [[nodiscard]] double capacity(std::uint32_t link) const {
    return capacity_[link];
  }
  [[nodiscard]] double flow_cap() const { return flow_cap_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// From-scratch canonical solve of the current population, indexed by
  /// slot (dead slots hold 0). The differential oracle: must equal the
  /// incrementally maintained rates element-for-element.
  [[nodiscard]] std::vector<double> oracle_rates();
  /// Runs the oracle and compares exactly; updates the differential
  /// counters. Returns true when every rate matches bitwise.
  bool check_differential();

 private:
  struct Flow {
    std::uint64_t seq = 0;               ///< monotonic admission sequence
    std::vector<std::uint32_t> links;    ///< deduplicated path
    std::vector<std::uint32_t> pos;      ///< index in flows_on_[links[i]]
    double rate = 0.0;
    bool live = false;
  };
  struct Incidence {
    Slot slot = 0;
    std::uint32_t ord = 0;  ///< back-pointer: index into Flow::pos
  };

  [[nodiscard]] bool constrained(std::uint32_t l) const;
  void link_insert(Slot s);
  void link_remove(Slot s);
  void next_epoch();
  /// BFS over constrained links from `seed`, appending the (unvisited part
  /// of the) component to `out` under the current mark epoch.
  void gather_component(Slot seed, std::vector<Slot>& out);
  /// Canonical component solve: sorts members by seq, filters paths to
  /// constrained links, runs max_min_rates. Returns per-member rates.
  std::span<const double> canonical_solve(std::vector<Slot>& members);
  /// canonical_solve + stored-rate update + RateChange / stats recording.
  void solve_members(std::vector<Slot>& members);
  void note_event();

  double flow_cap_ = 0.0;
  std::vector<double> capacity_;
  std::vector<Flow> flows_;
  std::vector<Slot> free_;
  std::vector<std::vector<Incidence>> flows_on_;  ///< live flows per link
  std::uint64_t next_seq_ = 1;
  std::size_t active_ = 0;
  std::uint64_t total_incidences_ = 0;
  Stats stats_;

  // Event scratch (allocation-free steady state).
  MaxMinWorkspace ws_;
  std::vector<RateChange> changes_;
  std::vector<std::uint32_t> flow_mark_;
  std::vector<std::uint32_t> link_mark_;
  std::uint32_t mark_epoch_ = 0;
  std::vector<Slot> members_;
  std::vector<Slot> spill_;
  std::vector<Slot> seeds_;
  std::vector<std::uint32_t> tmp_links_;
  std::vector<std::uint32_t> sub_links_;
  std::vector<std::uint32_t> sub_begin_;
  std::vector<std::span<const std::uint32_t>> sub_views_;
};

}  // namespace mifo::sim
