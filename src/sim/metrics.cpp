#include "sim/metrics.hpp"

namespace mifo::sim {

Cdf throughput_cdf(std::span<const FlowRecord> records) {
  Cdf cdf;
  for (const auto& r : records) {
    if (r.completed) cdf.add(r.throughput());
  }
  return cdf;
}

double offload_fraction(std::span<const FlowRecord> records) {
  std::size_t delivered = 0;
  std::size_t offloaded = 0;
  for (const auto& r : records) {
    if (!r.completed) continue;
    ++delivered;
    if (r.used_alternative) ++offloaded;
  }
  return delivered == 0 ? 0.0
                        : static_cast<double>(offloaded) /
                              static_cast<double>(delivered);
}

IntCounter switch_distribution(std::span<const FlowRecord> records) {
  IntCounter counter;
  for (const auto& r : records) {
    if (r.completed && r.path_switches > 0) counter.add(r.path_switches);
  }
  return counter;
}

double fraction_at_least(std::span<const FlowRecord> records, Mbps mbps) {
  std::size_t total = 0;
  std::size_t ok = 0;
  for (const auto& r : records) {
    if (!r.completed) continue;
    ++total;
    if (r.throughput() >= mbps) ++ok;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(ok) / static_cast<double>(total);
}

RunSummary summarize(std::span<const FlowRecord> records) {
  RunSummary s;
  s.total = records.size();
  RunningStats stats;
  Cdf cdf;
  for (const auto& r : records) {
    if (r.unreachable) ++s.unreachable;
    if (!r.completed) continue;
    ++s.completed;
    stats.add(r.throughput());
    cdf.add(r.throughput());
  }
  s.mean_throughput = stats.mean();
  s.median_throughput = s.completed > 0 ? cdf.quantile(0.5) : 0.0;
  s.frac_at_500mbps = fraction_at_least(records, 500.0);
  s.offload = offload_fraction(records);
  return s;
}

}  // namespace mifo::sim
