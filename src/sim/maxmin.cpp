#include "sim/maxmin.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/contracts.hpp"

namespace mifo::sim {

std::span<const double> max_min_rates(const MaxMinInput& in,
                                      MaxMinWorkspace& ws) {
  const std::size_t nf = in.flow_links.size();
  ws.rates.assign(nf, 0.0);
  if (nf == 0) return ws.rates;
  const std::size_t nl =
      in.num_links != 0 ? in.num_links : in.link_capacity.size();

  ws.frozen.assign(nf, 0);
  if (ws.link_epoch.size() < nl) {
    ws.link_epoch.resize(nl, 0);
    ws.local_id.resize(nl);
  }
  if (++ws.epoch == 0) {
    // Epoch counter wrapped: stamps from ~4G calls ago could alias the new
    // epoch, so pay one full clear and restart.
    std::fill(ws.link_epoch.begin(), ws.link_epoch.end(), 0u);
    ws.epoch = 1;
  }
  const std::uint32_t epoch = ws.epoch;
  ws.rem_cap.clear();
  ws.count.clear();
  ws.charge_stamp.clear();
  ws.path_begin.clear();
  ws.path_links.clear();
  ws.path_begin.push_back(0);

  // Pass 1: compact touched links into first-seen local indices and build
  // the deduplicated path CSR. A path may cross the same link at most once
  // per direction by construction; de-duplicate defensively (charge_stamp)
  // so capacity is not double-charged.
  for (std::size_t f = 0; f < nf; ++f) {
    const std::uint32_t flow_stamp = static_cast<std::uint32_t>(f) + 1;
    for (const std::uint32_t l : in.flow_links[f]) {
      MIFO_EXPECTS(l < nl && l < in.link_capacity.size());
      if (ws.link_epoch[l] != epoch) {
        ws.link_epoch[l] = epoch;
        ws.local_id[l] = static_cast<std::uint32_t>(ws.rem_cap.size());
        ws.rem_cap.push_back(in.link_capacity[l]);
        ws.count.push_back(0);
        ws.charge_stamp.push_back(0);
      }
      const std::uint32_t idx = ws.local_id[l];
      if (ws.charge_stamp[idx] == flow_stamp) continue;  // duplicate in path
      ws.charge_stamp[idx] = flow_stamp;
      ws.path_links.push_back(idx);
      ++ws.count[idx];
    }
    ws.path_begin.push_back(static_cast<std::uint32_t>(ws.path_links.size()));
  }
  const std::size_t n_used = ws.rem_cap.size();

  // Pass 2: invert the path CSR into a flows-per-link CSR.
  ws.flows_begin.resize(n_used);
  ws.flows_cursor.resize(n_used);
  std::uint32_t cum = 0;
  for (std::size_t l = 0; l < n_used; ++l) {
    ws.flows_begin[l] = cum;
    ws.flows_cursor[l] = cum;
    cum += ws.count[l];
  }
  ws.flow_of.resize(cum);
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::uint32_t p = ws.path_begin[f]; p < ws.path_begin[f + 1]; ++p) {
      ws.flow_of[ws.flows_cursor[ws.path_links[p]]++] =
          static_cast<std::uint32_t>(f);
    }
  }

  const double cap_level = in.flow_cap > 0.0
                               ? in.flow_cap
                               : std::numeric_limits<double>::infinity();
  std::size_t unfrozen = nf;
  double level = 0.0;
  constexpr double kEps = 1e-9;

  // Flows with no links saturate immediately at the cap.
  for (std::size_t f = 0; f < nf; ++f) {
    if (ws.path_begin[f] == ws.path_begin[f + 1]) {
      ws.rates[f] = in.flow_cap > 0.0 ? in.flow_cap : 0.0;
      ws.frozen[f] = 1;
      --unfrozen;
    }
  }

  auto freeze_flow = [&](std::uint32_t f) {
    if (ws.frozen[f]) return;
    ws.frozen[f] = 1;
    ws.rates[f] = level;
    --unfrozen;
    for (std::uint32_t p = ws.path_begin[f]; p < ws.path_begin[f + 1]; ++p) {
      --ws.count[ws.path_links[p]];
    }
  };

  // Links that still carry unfrozen flows, stably compacted each round:
  // iteration order stays first-seen order (matching the reference solver
  // exactly — min and per-link charging are order-exact anyway), but late
  // rounds only touch the surviving constraint set instead of all of
  // n_used.
  ws.active_links.resize(n_used);
  for (std::size_t l = 0; l < n_used; ++l) {
    ws.active_links[l] = static_cast<std::uint32_t>(l);
  }

  while (unfrozen > 0) {
    // Smallest uniform increment until some constraint binds.
    double delta = cap_level - level;
    for (const std::uint32_t l : ws.active_links) {
      if (ws.count[l] == 0) continue;
      delta = std::min(delta, ws.rem_cap[l] / ws.count[l]);
    }
    MIFO_ASSERT(delta >= 0.0);
    level += delta;

    // Charge the increment and find saturated links.
    const bool at_cap = level >= cap_level - kEps;
    for (const std::uint32_t l : ws.active_links) {
      if (ws.count[l] == 0) continue;
      ws.rem_cap[l] -= delta * ws.count[l];
    }

    // Freeze flows on saturated links (and everyone if the cap bound).
    if (at_cap) {
      for (std::size_t f = 0; f < nf; ++f) {
        if (!ws.frozen[f]) freeze_flow(static_cast<std::uint32_t>(f));
      }
      break;
    }
    bool froze_any = false;
    for (const std::uint32_t l : ws.active_links) {
      if (ws.count[l] == 0) continue;
      if (ws.rem_cap[l] <= 1e-6) {
        for (std::uint32_t c = ws.flows_begin[l]; c < ws.flows_cursor[l];
             ++c) {
          freeze_flow(ws.flow_of[c]);
        }
        froze_any = true;
      }
    }
    // Numerical backstop: if nothing froze despite a positive delta, freeze
    // the tightest link to guarantee progress.
    if (!froze_any) {
      std::uint32_t tightest = 0;
      bool found = false;
      double best = std::numeric_limits<double>::infinity();
      for (const std::uint32_t l : ws.active_links) {
        if (ws.count[l] == 0) continue;
        if (ws.rem_cap[l] < best) {
          best = ws.rem_cap[l];
          tightest = l;
          found = true;
        }
      }
      if (!found) break;  // no constrained links remain
      for (std::uint32_t c = ws.flows_begin[tightest];
           c < ws.flows_cursor[tightest]; ++c) {
        freeze_flow(ws.flow_of[c]);
      }
    }

    // Stable compaction: drop links whose flows are all frozen.
    std::erase_if(ws.active_links,
                  [&ws](std::uint32_t l) { return ws.count[l] == 0; });
  }

  return ws.rates;
}

std::vector<double> max_min_rates(const MaxMinInput& in) {
  MaxMinWorkspace ws;
  const auto rates = max_min_rates(in, ws);
  return {rates.begin(), rates.end()};
}

std::vector<double> max_min_rates_reference(const MaxMinInput& in) {
  const std::size_t nf = in.flow_links.size();
  std::vector<double> rates(nf, 0.0);
  if (nf == 0) return rates;

  // Compact the used links into local indices.
  std::unordered_map<std::uint32_t, std::uint32_t> link_index;
  std::vector<double> rem_cap;       // remaining capacity per used link
  std::vector<std::uint32_t> count;  // unfrozen flows per used link
  std::vector<std::vector<std::uint32_t>> flows_on;  // flows per used link

  std::vector<std::vector<std::uint32_t>> paths(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    paths[f].reserve(in.flow_links[f].size());
    for (const std::uint32_t l : in.flow_links[f]) {
      auto [it, inserted] =
          link_index.try_emplace(l, static_cast<std::uint32_t>(rem_cap.size()));
      if (inserted) {
        MIFO_EXPECTS(l < in.link_capacity.size());
        rem_cap.push_back(in.link_capacity[l]);
        count.push_back(0);
        flows_on.emplace_back();
      }
      // A path may cross the same link at most once per direction by
      // construction; de-duplicate defensively so capacity is not
      // double-charged.
      if (std::find(paths[f].begin(), paths[f].end(), it->second) ==
          paths[f].end()) {
        paths[f].push_back(it->second);
        ++count[it->second];
        flows_on[it->second].push_back(static_cast<std::uint32_t>(f));
      }
    }
  }

  const double cap_level = in.flow_cap > 0.0
                               ? in.flow_cap
                               : std::numeric_limits<double>::infinity();
  std::vector<bool> frozen(nf, false);
  std::size_t unfrozen = nf;
  double level = 0.0;
  constexpr double kEps = 1e-9;

  // Flows with no links saturate immediately at the cap.
  for (std::size_t f = 0; f < nf; ++f) {
    if (paths[f].empty()) {
      rates[f] = in.flow_cap > 0.0 ? in.flow_cap : 0.0;
      frozen[f] = true;
      --unfrozen;
    }
  }

  while (unfrozen > 0) {
    // Smallest uniform increment until some constraint binds.
    double delta = cap_level - level;
    for (std::size_t l = 0; l < rem_cap.size(); ++l) {
      if (count[l] == 0) continue;
      delta = std::min(delta, rem_cap[l] / count[l]);
    }
    MIFO_ASSERT(delta >= 0.0);
    level += delta;

    // Charge the increment and find saturated links.
    bool at_cap = level >= cap_level - kEps;
    for (std::size_t l = 0; l < rem_cap.size(); ++l) {
      if (count[l] == 0) continue;
      rem_cap[l] -= delta * count[l];
    }

    // Freeze flows on saturated links (and everyone if the cap bound).
    auto freeze_flow = [&](std::uint32_t f) {
      if (frozen[f]) return;
      frozen[f] = true;
      rates[f] = level;
      --unfrozen;
      for (const std::uint32_t l : paths[f]) --count[l];
    };
    if (at_cap) {
      for (std::size_t f = 0; f < nf; ++f) {
        if (!frozen[f]) freeze_flow(static_cast<std::uint32_t>(f));
      }
      break;
    }
    bool froze_any = false;
    for (std::size_t l = 0; l < rem_cap.size(); ++l) {
      if (count[l] == 0) continue;
      if (rem_cap[l] <= 1e-6) {
        for (const std::uint32_t f : flows_on[l]) freeze_flow(f);
        froze_any = true;
      }
    }
    // Numerical backstop: if nothing froze despite a positive delta, freeze
    // the tightest link to guarantee progress.
    if (!froze_any) {
      std::size_t tightest = rem_cap.size();
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t l = 0; l < rem_cap.size(); ++l) {
        if (count[l] == 0) continue;
        if (rem_cap[l] < best) {
          best = rem_cap[l];
          tightest = l;
        }
      }
      if (tightest == rem_cap.size()) break;  // no constrained links remain
      for (const std::uint32_t f : flows_on[tightest]) freeze_flow(f);
    }
  }

  return rates;
}

}  // namespace mifo::sim
