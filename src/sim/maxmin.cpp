#include "sim/maxmin.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/contracts.hpp"

namespace mifo::sim {

std::span<const double> max_min_rates(const MaxMinInput& in,
                                      MaxMinWorkspace& ws) {
  const std::size_t nf = in.flow_links.size();
  ws.rates.assign(nf, 0.0);
  if (nf == 0) return ws.rates;
  const std::size_t nl =
      in.num_links != 0 ? in.num_links : in.link_capacity.size();

  ws.frozen.assign(nf, 0);
  if (ws.link_epoch.size() < nl) {
    ws.link_epoch.resize(nl, 0);
    ws.local_id.resize(nl);
  }
  if (++ws.epoch == 0) {
    // Epoch counter wrapped: stamps from ~4G calls ago could alias the new
    // epoch, so pay one full clear and restart.
    std::fill(ws.link_epoch.begin(), ws.link_epoch.end(), 0u);
    ws.epoch = 1;
  }
  const std::uint32_t epoch = ws.epoch;
  ws.rem_cap.clear();
  ws.count.clear();
  ws.charge_stamp.clear();
  ws.path_begin.clear();
  ws.path_links.clear();
  ws.path_begin.push_back(0);

  // Pass 1: compact touched links into first-seen local indices and build
  // the deduplicated path CSR. A path may cross the same link at most once
  // per direction by construction; de-duplicate defensively (charge_stamp)
  // so capacity is not double-charged.
  for (std::size_t f = 0; f < nf; ++f) {
    const std::uint32_t flow_stamp = static_cast<std::uint32_t>(f) + 1;
    for (const std::uint32_t l : in.flow_links[f]) {
      MIFO_EXPECTS(l < nl && l < in.link_capacity.size());
      if (ws.link_epoch[l] != epoch) {
        ws.link_epoch[l] = epoch;
        ws.local_id[l] = static_cast<std::uint32_t>(ws.rem_cap.size());
        ws.rem_cap.push_back(in.link_capacity[l]);
        ws.count.push_back(0);
        ws.charge_stamp.push_back(0);
      }
      const std::uint32_t idx = ws.local_id[l];
      if (ws.charge_stamp[idx] == flow_stamp) continue;  // duplicate in path
      ws.charge_stamp[idx] = flow_stamp;
      ws.path_links.push_back(idx);
      ++ws.count[idx];
    }
    ws.path_begin.push_back(static_cast<std::uint32_t>(ws.path_links.size()));
  }
  const std::size_t n_used = ws.rem_cap.size();

  // Pass 2: invert the path CSR into a flows-per-link CSR.
  ws.flows_begin.resize(n_used);
  ws.flows_cursor.resize(n_used);
  std::uint32_t cum = 0;
  for (std::size_t l = 0; l < n_used; ++l) {
    ws.flows_begin[l] = cum;
    ws.flows_cursor[l] = cum;
    cum += ws.count[l];
  }
  ws.flow_of.resize(cum);
  for (std::size_t f = 0; f < nf; ++f) {
    for (std::uint32_t p = ws.path_begin[f]; p < ws.path_begin[f + 1]; ++p) {
      ws.flow_of[ws.flows_cursor[ws.path_links[p]]++] =
          static_cast<std::uint32_t>(f);
    }
  }

  const double cap_level = in.flow_cap > 0.0
                               ? in.flow_cap
                               : std::numeric_limits<double>::infinity();
  std::size_t unfrozen = nf;
  double level = 0.0;
  constexpr double kEps = 1e-9;

  // Flows with no links saturate immediately at the cap.
  for (std::size_t f = 0; f < nf; ++f) {
    if (ws.path_begin[f] == ws.path_begin[f + 1]) {
      ws.rates[f] = in.flow_cap > 0.0 ? in.flow_cap : 0.0;
      ws.frozen[f] = 1;
      --unfrozen;
    }
  }

  auto freeze_flow = [&](std::uint32_t f) {
    if (ws.frozen[f]) return;
    ws.frozen[f] = 1;
    ws.rates[f] = level;
    --unfrozen;
    for (std::uint32_t p = ws.path_begin[f]; p < ws.path_begin[f + 1]; ++p) {
      --ws.count[ws.path_links[p]];
    }
  };

  // Links that still carry unfrozen flows, stably compacted each round:
  // iteration order stays first-seen order (matching the reference solver
  // exactly — min and per-link charging are order-exact anyway), but late
  // rounds only touch the surviving constraint set instead of all of
  // n_used.
  ws.active_links.resize(n_used);
  for (std::size_t l = 0; l < n_used; ++l) {
    ws.active_links[l] = static_cast<std::uint32_t>(l);
  }

  while (unfrozen > 0) {
    // Smallest uniform increment until some constraint binds.
    double delta = cap_level - level;
    for (const std::uint32_t l : ws.active_links) {
      if (ws.count[l] == 0) continue;
      delta = std::min(delta, ws.rem_cap[l] / ws.count[l]);
    }
    MIFO_ASSERT(delta >= 0.0);
    level += delta;

    // Charge the increment and find saturated links.
    const bool at_cap = level >= cap_level - kEps;
    for (const std::uint32_t l : ws.active_links) {
      if (ws.count[l] == 0) continue;
      ws.rem_cap[l] -= delta * ws.count[l];
    }

    // Freeze flows on saturated links (and everyone if the cap bound).
    if (at_cap) {
      for (std::size_t f = 0; f < nf; ++f) {
        if (!ws.frozen[f]) freeze_flow(static_cast<std::uint32_t>(f));
      }
      break;
    }
    bool froze_any = false;
    for (const std::uint32_t l : ws.active_links) {
      if (ws.count[l] == 0) continue;
      if (ws.rem_cap[l] <= 1e-6) {
        for (std::uint32_t c = ws.flows_begin[l]; c < ws.flows_cursor[l];
             ++c) {
          freeze_flow(ws.flow_of[c]);
        }
        froze_any = true;
      }
    }
    // Numerical backstop: if nothing froze despite a positive delta, freeze
    // the tightest link to guarantee progress.
    if (!froze_any) {
      std::uint32_t tightest = 0;
      bool found = false;
      double best = std::numeric_limits<double>::infinity();
      for (const std::uint32_t l : ws.active_links) {
        if (ws.count[l] == 0) continue;
        if (ws.rem_cap[l] < best) {
          best = ws.rem_cap[l];
          tightest = l;
          found = true;
        }
      }
      if (!found) break;  // no constrained links remain
      for (std::uint32_t c = ws.flows_begin[tightest];
           c < ws.flows_cursor[tightest]; ++c) {
        freeze_flow(ws.flow_of[c]);
      }
    }

    // Stable compaction: drop links whose flows are all frozen.
    std::erase_if(ws.active_links,
                  [&ws](std::uint32_t l) { return ws.count[l] == 0; });
  }

  return ws.rates;
}

std::vector<double> max_min_rates(const MaxMinInput& in) {
  MaxMinWorkspace ws;
  const auto rates = max_min_rates(in, ws);
  return {rates.begin(), rates.end()};
}

std::vector<double> max_min_rates_reference(const MaxMinInput& in) {
  const std::size_t nf = in.flow_links.size();
  std::vector<double> rates(nf, 0.0);
  if (nf == 0) return rates;

  // Compact the used links into local indices.
  std::unordered_map<std::uint32_t, std::uint32_t> link_index;
  std::vector<double> rem_cap;       // remaining capacity per used link
  std::vector<std::uint32_t> count;  // unfrozen flows per used link
  std::vector<std::vector<std::uint32_t>> flows_on;  // flows per used link

  std::vector<std::vector<std::uint32_t>> paths(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    paths[f].reserve(in.flow_links[f].size());
    for (const std::uint32_t l : in.flow_links[f]) {
      auto [it, inserted] =
          link_index.try_emplace(l, static_cast<std::uint32_t>(rem_cap.size()));
      if (inserted) {
        MIFO_EXPECTS(l < in.link_capacity.size());
        rem_cap.push_back(in.link_capacity[l]);
        count.push_back(0);
        flows_on.emplace_back();
      }
      // A path may cross the same link at most once per direction by
      // construction; de-duplicate defensively so capacity is not
      // double-charged.
      if (std::find(paths[f].begin(), paths[f].end(), it->second) ==
          paths[f].end()) {
        paths[f].push_back(it->second);
        ++count[it->second];
        flows_on[it->second].push_back(static_cast<std::uint32_t>(f));
      }
    }
  }

  const double cap_level = in.flow_cap > 0.0
                               ? in.flow_cap
                               : std::numeric_limits<double>::infinity();
  std::vector<bool> frozen(nf, false);
  std::size_t unfrozen = nf;
  double level = 0.0;
  constexpr double kEps = 1e-9;

  // Flows with no links saturate immediately at the cap.
  for (std::size_t f = 0; f < nf; ++f) {
    if (paths[f].empty()) {
      rates[f] = in.flow_cap > 0.0 ? in.flow_cap : 0.0;
      frozen[f] = true;
      --unfrozen;
    }
  }

  while (unfrozen > 0) {
    // Smallest uniform increment until some constraint binds.
    double delta = cap_level - level;
    for (std::size_t l = 0; l < rem_cap.size(); ++l) {
      if (count[l] == 0) continue;
      delta = std::min(delta, rem_cap[l] / count[l]);
    }
    MIFO_ASSERT(delta >= 0.0);
    level += delta;

    // Charge the increment and find saturated links.
    bool at_cap = level >= cap_level - kEps;
    for (std::size_t l = 0; l < rem_cap.size(); ++l) {
      if (count[l] == 0) continue;
      rem_cap[l] -= delta * count[l];
    }

    // Freeze flows on saturated links (and everyone if the cap bound).
    auto freeze_flow = [&](std::uint32_t f) {
      if (frozen[f]) return;
      frozen[f] = true;
      rates[f] = level;
      --unfrozen;
      for (const std::uint32_t l : paths[f]) --count[l];
    };
    if (at_cap) {
      for (std::size_t f = 0; f < nf; ++f) {
        if (!frozen[f]) freeze_flow(static_cast<std::uint32_t>(f));
      }
      break;
    }
    bool froze_any = false;
    for (std::size_t l = 0; l < rem_cap.size(); ++l) {
      if (count[l] == 0) continue;
      if (rem_cap[l] <= 1e-6) {
        for (const std::uint32_t f : flows_on[l]) freeze_flow(f);
        froze_any = true;
      }
    }
    // Numerical backstop: if nothing froze despite a positive delta, freeze
    // the tightest link to guarantee progress.
    if (!froze_any) {
      std::size_t tightest = rem_cap.size();
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t l = 0; l < rem_cap.size(); ++l) {
        if (count[l] == 0) continue;
        if (rem_cap[l] < best) {
          best = rem_cap[l];
          tightest = l;
        }
      }
      if (tightest == rem_cap.size()) break;  // no constrained links remain
      for (const std::uint32_t f : flows_on[tightest]) freeze_flow(f);
    }
  }

  return rates;
}

IncrementalMaxMin::IncrementalMaxMin(std::vector<double> link_capacity,
                                     double flow_cap)
    : flow_cap_(flow_cap),
      capacity_(std::move(link_capacity)),
      flows_on_(capacity_.size()),
      link_mark_(capacity_.size(), 0) {
  for (const double c : capacity_) MIFO_EXPECTS(c > 0.0);
}

bool IncrementalMaxMin::constrained(std::uint32_t l) const {
  const std::size_t n = flows_on_[l].size();
  if (n == 0) return false;
  if (flow_cap_ <= 0.0) return true;
  // n capped flows can demand at most n * flow_cap: while that fits, the
  // link can never be the binding constraint nor saturate before the cap
  // round, so excluding it from the instance leaves every rate unchanged.
  return static_cast<double>(n) * flow_cap_ > capacity_[l];
}

void IncrementalMaxMin::link_insert(Slot s) {
  Flow& f = flows_[s];
  f.pos.resize(f.links.size());
  for (std::size_t i = 0; i < f.links.size(); ++i) {
    auto& on = flows_on_[f.links[i]];
    f.pos[i] = static_cast<std::uint32_t>(on.size());
    on.push_back(Incidence{s, static_cast<std::uint32_t>(i)});
  }
}

void IncrementalMaxMin::link_remove(Slot s) {
  Flow& f = flows_[s];
  for (std::size_t i = 0; i < f.links.size(); ++i) {
    auto& on = flows_on_[f.links[i]];
    const std::uint32_t p = f.pos[i];
    on[p] = on.back();
    on.pop_back();
    if (p < on.size()) flows_[on[p].slot].pos[on[p].ord] = p;
  }
}

void IncrementalMaxMin::next_epoch() {
  if (++mark_epoch_ == 0) {
    // Epoch counter wrapped: stamps from ~4G events ago could alias the new
    // epoch, so pay one full clear and restart.
    std::fill(flow_mark_.begin(), flow_mark_.end(), 0u);
    std::fill(link_mark_.begin(), link_mark_.end(), 0u);
    mark_epoch_ = 1;
  }
}

void IncrementalMaxMin::gather_component(Slot seed, std::vector<Slot>& out) {
  if (flow_mark_[seed] == mark_epoch_) return;
  flow_mark_[seed] = mark_epoch_;
  const std::size_t head0 = out.size();
  out.push_back(seed);
  for (std::size_t head = head0; head < out.size(); ++head) {
    for (const std::uint32_t l : flows_[out[head]].links) {
      if (link_mark_[l] == mark_epoch_) continue;
      link_mark_[l] = mark_epoch_;
      if (!constrained(l)) continue;
      for (const Incidence& inc : flows_on_[l]) {
        if (flow_mark_[inc.slot] == mark_epoch_) continue;
        flow_mark_[inc.slot] = mark_epoch_;
        out.push_back(inc.slot);
      }
    }
  }
}

std::span<const double> IncrementalMaxMin::canonical_solve(
    std::vector<Slot>& members) {
  // The canonical instance fixes everything floating-point order depends
  // on: member order (admission sequence), per-path link order (original
  // path order, constrained links only), and the shared capacity universe.
  // oracle_rates builds the very same instances, so rates match bitwise.
  std::sort(members.begin(), members.end(), [this](Slot a, Slot b) {
    return flows_[a].seq < flows_[b].seq;
  });
  sub_links_.clear();
  sub_begin_.clear();
  sub_views_.clear();
  sub_begin_.push_back(0);
  for (const Slot s : members) {
    for (const std::uint32_t l : flows_[s].links) {
      if (constrained(l)) sub_links_.push_back(l);
    }
    sub_begin_.push_back(static_cast<std::uint32_t>(sub_links_.size()));
  }
  sub_views_.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    sub_views_.emplace_back(sub_links_.data() + sub_begin_[i],
                            sub_begin_[i + 1] - sub_begin_[i]);
  }
  MaxMinInput in;
  in.flow_links = sub_views_;
  in.link_capacity = capacity_;
  in.flow_cap = flow_cap_;
  in.num_links = capacity_.size();
  return max_min_rates(in, ws_);
}

void IncrementalMaxMin::solve_members(std::vector<Slot>& members) {
  const std::span<const double> rates = canonical_solve(members);
  std::uint64_t path_len = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    Flow& f = flows_[members[i]];
    path_len += f.links.size();
    if (rates[i] != f.rate) {
      changes_.push_back(RateChange{members[i], f.rate, rates[i]});
      f.rate = rates[i];
    }
  }
  ++stats_.components_solved;
  stats_.flows_resolved += members.size();
  stats_.incidences_resolved += members.size() + path_len;
  stats_.peak_component =
      std::max<std::uint64_t>(stats_.peak_component, members.size());
}

void IncrementalMaxMin::note_event() {
  ++stats_.events;
  stats_.full_incidences += active_ + total_incidences_;
}

IncrementalMaxMin::Slot IncrementalMaxMin::add_flow(
    std::span<const std::uint32_t> links) {
  Slot s = kInvalidSlot;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    s = static_cast<Slot>(flows_.size());
    flows_.emplace_back();
    flow_mark_.push_back(0);
  }
  Flow& f = flows_[s];
  f.seq = next_seq_++;
  f.live = true;
  f.rate = 0.0;
  f.links.clear();
  for (const std::uint32_t l : links) {
    MIFO_EXPECTS(l < capacity_.size());
    if (std::find(f.links.begin(), f.links.end(), l) == f.links.end()) {
      f.links.push_back(l);
    }
  }
  link_insert(s);
  ++active_;
  total_incidences_ += f.links.size();

  changes_.clear();
  note_event();
  // An arrival only raises link counts, so constrained statuses only turn
  // on: the new flow's component (under post-insert statuses) contains
  // every flow whose rate can move.
  next_epoch();
  members_.clear();
  gather_component(s, members_);
  solve_members(members_);
  return s;
}

void IncrementalMaxMin::remove_flow(Slot s) {
  MIFO_EXPECTS(live(s));
  changes_.clear();
  // The departing flow's component before removal bounds the blast radius;
  // afterwards it may have split, so re-solve each remainder component.
  next_epoch();
  spill_.clear();
  gather_component(s, spill_);
  Flow& f = flows_[s];
  link_remove(s);
  total_incidences_ -= f.links.size();
  --active_;
  f.live = false;
  f.rate = 0.0;
  f.links.clear();
  f.pos.clear();
  note_event();
  next_epoch();
  for (const Slot m : spill_) {
    if (m == s || flow_mark_[m] == mark_epoch_) continue;
    members_.clear();
    gather_component(m, members_);
    solve_members(members_);
  }
  free_.push_back(s);
}

void IncrementalMaxMin::update_path(Slot s,
                                    std::span<const std::uint32_t> links) {
  MIFO_EXPECTS(live(s));
  tmp_links_.clear();
  for (const std::uint32_t l : links) {
    MIFO_EXPECTS(l < capacity_.size());
    if (std::find(tmp_links_.begin(), tmp_links_.end(), l) ==
        tmp_links_.end()) {
      tmp_links_.push_back(l);
    }
  }
  changes_.clear();
  Flow& f = flows_[s];
  if (tmp_links_ == f.links) return;

  // Departure half: re-solve what the flow leaves behind…
  next_epoch();
  spill_.clear();
  gather_component(s, spill_);
  link_remove(s);
  total_incidences_ -= f.links.size();
  next_epoch();
  flow_mark_[s] = mark_epoch_;  // exclude s from the remainder decomposition
  for (const Slot m : spill_) {
    if (m == s || flow_mark_[m] == mark_epoch_) continue;
    members_.clear();
    gather_component(m, members_);
    solve_members(members_);
  }
  // …arrival half on the new path (same slot, same admission sequence, so
  // the canonical ordering is unchanged).
  f.links.assign(tmp_links_.begin(), tmp_links_.end());
  link_insert(s);
  total_incidences_ += f.links.size();
  note_event();
  next_epoch();
  members_.clear();
  gather_component(s, members_);
  solve_members(members_);
}

void IncrementalMaxMin::set_capacity(std::uint32_t link, double capacity) {
  MIFO_EXPECTS(link < capacity_.size());
  MIFO_EXPECTS(capacity > 0.0);
  changes_.clear();
  if (capacity_[link] == capacity) return;
  const bool was = constrained(link);
  capacity_[link] = capacity;
  if (flows_on_[link].empty()) return;
  note_event();
  if (!was && !constrained(link)) return;  // can still never bind
  // The link's own flows seed every affected component: a component can
  // only split or merge across `link`, so each resulting component holds a
  // flow that crosses it.
  seeds_.clear();
  for (const Incidence& inc : flows_on_[link]) seeds_.push_back(inc.slot);
  std::sort(seeds_.begin(), seeds_.end());
  next_epoch();
  for (const Slot m : seeds_) {
    if (flow_mark_[m] == mark_epoch_) continue;
    members_.clear();
    gather_component(m, members_);
    solve_members(members_);
  }
}

std::vector<double> IncrementalMaxMin::oracle_rates() {
  std::vector<double> out(flows_.size(), 0.0);
  std::vector<Slot> order;
  order.reserve(active_);
  for (Slot s = 0; s < flows_.size(); ++s) {
    if (flows_[s].live) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [this](Slot a, Slot b) {
    return flows_[a].seq < flows_[b].seq;
  });
  next_epoch();
  std::vector<Slot> members;
  for (const Slot s : order) {
    if (flow_mark_[s] == mark_epoch_) continue;
    members.clear();
    gather_component(s, members);
    const std::span<const double> rates = canonical_solve(members);
    for (std::size_t i = 0; i < members.size(); ++i) {
      out[members[i]] = rates[i];
    }
  }
  return out;
}

bool IncrementalMaxMin::check_differential() {
  const std::vector<double> oracle = oracle_rates();
  bool ok = true;
  for (Slot s = 0; s < flows_.size(); ++s) {
    const double expect = flows_[s].live ? flows_[s].rate : 0.0;
    if (oracle[s] != expect) {
      ok = false;
      break;
    }
  }
  ++stats_.differential_checks;
  if (!ok) ++stats_.differential_mismatches;
  return ok;
}

}  // namespace mifo::sim
