#include "sim/maxmin.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/contracts.hpp"

namespace mifo::sim {

std::vector<double> max_min_rates(const MaxMinInput& in) {
  const std::size_t nf = in.flow_links.size();
  std::vector<double> rates(nf, 0.0);
  if (nf == 0) return rates;

  // Compact the used links into local indices.
  std::unordered_map<std::uint32_t, std::uint32_t> link_index;
  std::vector<double> rem_cap;       // remaining capacity per used link
  std::vector<std::uint32_t> count;  // unfrozen flows per used link
  std::vector<std::vector<std::uint32_t>> flows_on;  // flows per used link

  std::vector<std::vector<std::uint32_t>> paths(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    paths[f].reserve(in.flow_links[f].size());
    for (const std::uint32_t l : in.flow_links[f]) {
      auto [it, inserted] =
          link_index.try_emplace(l, static_cast<std::uint32_t>(rem_cap.size()));
      if (inserted) {
        MIFO_EXPECTS(l < in.link_capacity.size());
        rem_cap.push_back(in.link_capacity[l]);
        count.push_back(0);
        flows_on.emplace_back();
      }
      // A path may cross the same link at most once per direction by
      // construction; de-duplicate defensively so capacity is not
      // double-charged.
      if (std::find(paths[f].begin(), paths[f].end(), it->second) ==
          paths[f].end()) {
        paths[f].push_back(it->second);
        ++count[it->second];
        flows_on[it->second].push_back(static_cast<std::uint32_t>(f));
      }
    }
  }

  const double cap_level = in.flow_cap > 0.0
                               ? in.flow_cap
                               : std::numeric_limits<double>::infinity();
  std::vector<bool> frozen(nf, false);
  std::size_t unfrozen = nf;
  double level = 0.0;
  constexpr double kEps = 1e-9;

  // Flows with no links saturate immediately at the cap.
  for (std::size_t f = 0; f < nf; ++f) {
    if (paths[f].empty()) {
      rates[f] = in.flow_cap > 0.0 ? in.flow_cap : 0.0;
      frozen[f] = true;
      --unfrozen;
    }
  }

  while (unfrozen > 0) {
    // Smallest uniform increment until some constraint binds.
    double delta = cap_level - level;
    for (std::size_t l = 0; l < rem_cap.size(); ++l) {
      if (count[l] == 0) continue;
      delta = std::min(delta, rem_cap[l] / count[l]);
    }
    MIFO_ASSERT(delta >= 0.0);
    level += delta;

    // Charge the increment and find saturated links.
    bool at_cap = level >= cap_level - kEps;
    for (std::size_t l = 0; l < rem_cap.size(); ++l) {
      if (count[l] == 0) continue;
      rem_cap[l] -= delta * count[l];
    }

    // Freeze flows on saturated links (and everyone if the cap bound).
    auto freeze_flow = [&](std::uint32_t f) {
      if (frozen[f]) return;
      frozen[f] = true;
      rates[f] = level;
      --unfrozen;
      for (const std::uint32_t l : paths[f]) --count[l];
    };
    if (at_cap) {
      for (std::size_t f = 0; f < nf; ++f) {
        if (!frozen[f]) freeze_flow(static_cast<std::uint32_t>(f));
      }
      break;
    }
    bool froze_any = false;
    for (std::size_t l = 0; l < rem_cap.size(); ++l) {
      if (count[l] == 0) continue;
      if (rem_cap[l] <= 1e-6) {
        for (const std::uint32_t f : flows_on[l]) freeze_flow(f);
        froze_any = true;
      }
    }
    // Numerical backstop: if nothing froze despite a positive delta, freeze
    // the tightest link to guarantee progress.
    if (!froze_any) {
      std::size_t tightest = rem_cap.size();
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t l = 0; l < rem_cap.size(); ++l) {
        if (count[l] == 0) continue;
        if (rem_cap[l] < best) {
          best = rem_cap[l];
          tightest = l;
        }
      }
      if (tightest == rem_cap.size()) break;  // no constrained links remain
      for (const std::uint32_t f : flows_on[tightest]) freeze_flow(f);
    }
  }

  return rates;
}

}  // namespace mifo::sim
