#include "sim/fluid_sim.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <queue>

#include "common/contracts.hpp"
#include "common/thread_pool.hpp"

namespace mifo::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kRemEps = 1e-6;   // megabits (~0.1 byte)
constexpr double kTimeEps = 1e-12;
}  // namespace

FluidSim::FluidSim(const topo::AsGraph& g, SimConfig cfg)
    : g_(g), cfg_(cfg) {
  MIFO_EXPECTS(cfg.link_capacity > 0.0);
  MIFO_EXPECTS(cfg.congest_threshold > 0.0 && cfg.congest_threshold <= 1.0);
  MIFO_EXPECTS(cfg.low_watermark >= 0.0 &&
               cfg.low_watermark <= cfg.congest_threshold);
  MIFO_EXPECTS(cfg.reeval_interval > 0.0);
  deployed_.assign(g.num_ases(), false);
  capacity_.assign(g.num_directed_links(), cfg.link_capacity);
  alloc_.assign(g.num_directed_links(), 0.0);
}

void FluidSim::set_deployment(std::vector<bool> deployed) {
  MIFO_EXPECTS(deployed.size() == g_.num_ases());
  deployed_ = std::move(deployed);
}

void FluidSim::attach_registry(obs::Registry& reg, const std::string& labels) {
  m_arrivals_ = reg.counter("sim.arrivals", labels);
  m_unreachable_ = reg.counter("sim.unreachable", labels);
  m_completions_ = reg.counter("sim.completions", labels);
  m_ticks_ = reg.counter("sim.ticks", labels);
  m_solver_runs_ = reg.counter("sim.solver_runs", labels);
  m_reroutes_ = reg.counter("sim.reroutes", labels);
  m_cache_bytes_ = reg.gauge("sim.route_cache_bytes", labels);
  m_route_invalidations_ = reg.counter("sim.route_invalidations", labels);
  m_active_flows_ = reg.gauge("sim.active_flows", labels);
  m_offered_load_ = reg.gauge("sim.offered_load_mbps", labels);
  m_solver_components_ = reg.counter("sim.solver_components", labels);
  m_solver_incidences_ = reg.counter("sim.solver_incidences", labels);
  m_solver_full_incidences_ =
      reg.counter("sim.solver_full_incidences", labels);
  m_solver_diff_checks_ = reg.counter("sim.solver_diff_checks", labels);
  shard_ = &reg.create_shard();
  shard_->set(m_cache_bytes_, static_cast<double>(cache_bytes_));
}

const bgp::RouteStore& FluidSim::routes_for(AsId dest) {
  auto it = cache_.find(dest.value());
  if (it == cache_.end()) {
    it = cache_
             .emplace(dest.value(),
                      std::make_unique<bgp::RouteStore>(g_, dest))
             .first;
    cache_bytes_ += it->second->bytes();
    if (shard_) shard_->set(m_cache_bytes_, static_cast<double>(cache_bytes_));
  }
  return *it->second;
}

std::size_t FluidSim::invalidate_routes(std::span<const AsId> dests) {
  std::size_t dropped = 0;
  for (const AsId dest : dests) {
    const auto it = cache_.find(dest.value());
    if (it == cache_.end()) continue;
    cache_bytes_ -= it->second->bytes();
    cache_.erase(it);
    ++dropped;
  }
  if (dropped != 0 && shard_) {
    shard_->set(m_cache_bytes_, static_cast<double>(cache_bytes_));
    shard_->add(m_route_invalidations_, static_cast<double>(dropped));
  }
  return dropped;
}

void FluidSim::warm_route_cache(std::span<const traffic::FlowSpec> specs) {
  std::vector<std::uint32_t> dests;
  dests.reserve(specs.size());
  for (const auto& s : specs) dests.push_back(s.dst.value());
  warm_route_cache_dests(std::move(dests));
}

void FluidSim::warm_route_cache_dests(std::vector<std::uint32_t> dests) {
  // Unique destinations not yet cached, in sorted order (deterministic).
  std::sort(dests.begin(), dests.end());
  dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
  std::erase_if(dests,
                [this](std::uint32_t d) { return cache_.contains(d); });

  const std::size_t threads =
      cfg_.threads != 0 ? cfg_.threads : default_thread_count();
  if (threads <= 1 || dests.size() < 2) return;  // lazy serial path suffices

  // compute_routes is pure per destination, so each slot is independent;
  // the cache itself is only touched from this thread, after the join.
  std::vector<std::unique_ptr<bgp::RouteStore>> computed(dests.size());
  ThreadPool pool(std::min(threads, dests.size()));
  parallel_for(pool, dests.size(), [this, &dests, &computed](std::size_t i) {
    computed[i] = std::make_unique<bgp::RouteStore>(g_, AsId(dests[i]));
  });
  for (std::size_t i = 0; i < dests.size(); ++i) {
    cache_bytes_ += computed[i]->bytes();
    cache_.emplace(dests[i], std::move(computed[i]));
  }
  if (shard_) shard_->set(m_cache_bytes_, static_cast<double>(cache_bytes_));
}

void FluidSim::schedule_capacity_event(SimTime t, LinkId link, double factor) {
  MIFO_EXPECTS(t >= 0.0);
  MIFO_EXPECTS(link.value() < g_.num_directed_links());
  cap_events_.push_back(
      CapacityEvent{t, link.value(), std::clamp(factor, 1e-3, 10.0)});
}

double FluidSim::utilization(std::uint32_t link) const {
  return alloc_[link] / capacity_[link];
}

core::WalkResult FluidSim::route_flow(AsId src, AsId dest) {
  const bgp::RouteStore& routes = routes_for(dest);
  switch (cfg_.mode) {
    case RoutingMode::Bgp:
      return core::bgp_walk(g_, routes, src);
    case RoutingMode::Mifo: {
      core::WalkConfig wc;
      wc.congest_threshold = cfg_.congest_threshold;
      wc.min_spare_margin = cfg_.spare_margin;
      wc.max_extra_hops = cfg_.max_extra_hops;
      wc.selection = cfg_.alt_selection;
      return core::mifo_walk(
          g_, routes, deployed_, src,
          [this](LinkId l) { return utilization(l.value()); }, wc);
    }
    case RoutingMode::Miro: {
      core::WalkResult def = core::bgp_walk(g_, routes, src);
      if (!def.reachable) return def;
      double worst = 0.0;
      for (const LinkId l : def.links) {
        worst = std::max(worst, utilization(l.value()));
      }
      if (worst < cfg_.congest_threshold) return def;
      // Source-only deflection over the (pre-negotiated, static) tunnels:
      // take the most-preferred alternative whose own first hop is not
      // congested. MIRO tunnels are negotiated on the control plane; the
      // source has no end-to-end load visibility.
      const auto alts =
          miro::alternatives(g_, routes, src, deployed_, cfg_.miro);
      for (const auto& alt : alts) {
        const LinkId first = g_.link(src, alt.next_hop);
        if (utilization(first.value()) >= cfg_.congest_threshold) continue;
        const auto path = miro::alt_path(g_, routes, src, alt.next_hop);
        if (path.empty()) continue;
        core::WalkResult cand;
        cand.reachable = true;
        cand.path = path;
        cand.links = core::links_of_path(g_, path);
        cand.deflections = 1;
        return cand;
      }
      return def;
    }
  }
  return {};
}

void FluidSim::recompute_rates() {
  // Clear previous allocations (only links that were touched).
  for (const auto& f : active_) {
    for (const std::uint32_t l : f.links) alloc_[l] = 0.0;
  }
  flow_links_view_.clear();
  flow_links_view_.reserve(active_.size());
  for (const auto& f : active_) flow_links_view_.emplace_back(f.links);

  MaxMinInput in;
  in.flow_links = flow_links_view_;
  in.link_capacity = capacity_;
  in.flow_cap = cfg_.flow_rate_cap;
  in.num_links = capacity_.size();
  const std::span<const double> rates = max_min_rates(in, maxmin_ws_);

  for (std::size_t i = 0; i < active_.size(); ++i) {
    active_[i].rate = rates[i];
    for (const std::uint32_t l : active_[i].links) alloc_[l] += rates[i];
  }
  if (shard_) shard_->add(m_solver_runs_);
}

void FluidSim::reevaluate_paths(std::vector<FlowRecord>& records) {
  if (cfg_.mode == RoutingMode::Bgp) return;
  for (auto& f : active_) {
    FlowRecord& rec = records[f.record];
    const AsId src = rec.spec.src;
    const AsId dst = rec.spec.dst;

    // Evaluate congestion as the flow's border routers would see it:
    // without the flow's own contribution. A lone flow saturating a link is
    // not congestion worth fleeing — counting it makes every full link
    // "congested" under max–min and the flow would oscillate between its
    // default and an alternative forever.
    for (const std::uint32_t l : f.links) alloc_[l] -= f.rate;

    bool should_reroute = false;
    if (!f.deflected) {
      // Default path hit congestion?
      for (const std::uint32_t l : f.links) {
        if (utilization(l) >= cfg_.congest_threshold) {
          should_reroute = true;
          break;
        }
      }
    } else {
      // Hysteresis: resume the default path once it has drained…
      bool default_clear = true;
      for (const std::uint32_t l : f.deflt) {
        if (utilization(l) >= cfg_.low_watermark) {
          default_clear = false;
          break;
        }
      }
      // Deflected flows do NOT hop between alternatives: under max–min
      // sharing every loaded bottleneck sits at full utilization, so
      // alternative-fleeing would re-shuffle the whole population every
      // tick. The paper's stability numbers (Fig. 9: two thirds of
      // switching flows switch exactly once) reflect this
      // deflect-once/return-once discipline.
      should_reroute = default_clear;
    }

    if (should_reroute) {
      core::WalkResult w = route_flow(src, dst);
      MIFO_ASSERT(w.reachable);  // it was reachable at admission
      std::vector<std::uint32_t> links;
      links.reserve(w.links.size());
      for (const LinkId l : w.links) links.push_back(l.value());
      if (links != f.links) {
        f.links = std::move(links);
        f.deflected = w.deflections > 0;
        ++rec.path_switches;
        rec.used_alternative = rec.used_alternative || f.deflected;
        if (shard_) shard_->add(m_reroutes_);
      }
    }

    // Re-charge the (possibly moved) flow so later flows in this tick see
    // the shifted load.
    for (const std::uint32_t l : f.links) alloc_[l] += f.rate;
  }
}

void FluidSim::take_sample(SimTime t) {
  obs::UtilSample s;
  s.t = t;
  double sum = 0.0;
  std::uint32_t loaded = 0;
  std::uint32_t congested = 0;
  for (std::size_t l = 0; l < alloc_.size(); ++l) {
    if (alloc_[l] <= 0.0) continue;
    const double u = alloc_[l] / capacity_[l];
    ++loaded;
    sum += u;
    s.max_util = std::max(s.max_util, u);
    if (u >= cfg_.congest_threshold) ++congested;
    s.total_spare_mbps += std::max(0.0, capacity_[l] - alloc_[l]);
  }
  s.mean_util = loaded != 0 ? sum / loaded : 0.0;
  s.frac_congested =
      loaded != 0 ? static_cast<double>(congested) / loaded : 0.0;
  s.active_flows = static_cast<std::uint32_t>(active_.size());
  samples_.push_back(s);
}

std::vector<FlowRecord> FluidSim::run(std::vector<traffic::FlowSpec> specs) {
  std::sort(specs.begin(), specs.end(),
            [](const traffic::FlowSpec& a, const traffic::FlowSpec& b) {
              return a.arrival < b.arrival;
            });
  std::vector<FlowRecord> records(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) records[i].spec = specs[i];

  warm_route_cache(specs);

  active_.clear();
  // Completions tear allocations down flow by flow, which can leave tiny
  // floating-point residues behind; start every run from exact zeros.
  std::fill(alloc_.begin(), alloc_.end(), 0.0);
  // Chaos capacity events mutate capacity_ mid-run; start from a clean slate
  // so back-to-back run() calls on one sim are independent.
  std::fill(capacity_.begin(), capacity_.end(), cfg_.link_capacity);
  std::stable_sort(cap_events_.begin(), cap_events_.end(),
                   [](const CapacityEvent& a, const CapacityEvent& b) {
                     return a.t < b.t;
                   });
  std::size_t ci = 0;
  samples_.clear();
  next_sample_ = sample_interval_;
  SimTime t = 0.0;
  SimTime next_tick = cfg_.reeval_interval;
  std::size_t ai = 0;

  while (ai < specs.size() || !active_.empty()) {
    const SimTime t_arr = ai < specs.size() ? specs[ai].arrival : kInf;
    SimTime t_comp = kInf;
    for (const auto& f : active_) {
      if (f.rate > 0.0) {
        t_comp = std::min(t_comp, t + f.remaining_mb / f.rate);
      }
    }
    const SimTime t_tick =
        (cfg_.mode == RoutingMode::Bgp || active_.empty()) ? kInf : next_tick;
    // Pending capacity events only matter while flows exist to reshare; an
    // event before the next arrival with nothing active applies then too,
    // keeping event/arrival interleaving exact.
    const SimTime t_ev = ci < cap_events_.size() ? cap_events_[ci].t : kInf;
    const SimTime t_next = std::min({t_arr, t_comp, t_tick, t_ev});
    MIFO_ASSERT(t_next < kInf);
    MIFO_ASSERT(t_next >= t - kTimeEps);

    // Fluid advance.
    const SimTime dt = std::max(0.0, t_next - t);
    if (dt > 0.0) {
      for (auto& f : active_) f.remaining_mb -= f.rate * dt;
    }
    // Utilization samples describe the interval just advanced (alloc_ still
    // holds the rates that were in force over [t, t_next]).
    if (sample_interval_ > 0.0) {
      while (next_sample_ <= t_next + kTimeEps) {
        take_sample(next_sample_);
        next_sample_ += sample_interval_;
      }
    }
    t = t_next;

    bool changed = false;

    // Capacity events (link down/up/degrade) due now.
    while (ci < cap_events_.size() && cap_events_[ci].t <= t + kTimeEps) {
      capacity_[cap_events_[ci].link] =
          cfg_.link_capacity * cap_events_[ci].factor;
      changed = true;
      ++ci;
    }

    // Completions.
    for (std::size_t i = 0; i < active_.size();) {
      if (active_[i].remaining_mb <= kRemEps) {
        FlowRecord& rec = records[active_[i].record];
        rec.completed = true;
        rec.finish = t;
        if (shard_) shard_->add(m_completions_);
        for (const std::uint32_t l : active_[i].links) {
          alloc_[l] -= active_[i].rate;
        }
        active_[i] = std::move(active_.back());
        active_.pop_back();
        changed = true;
      } else {
        ++i;
      }
    }

    // Arrivals.
    while (ai < specs.size() && specs[ai].arrival <= t + kTimeEps) {
      const auto& spec = specs[ai];
      core::WalkResult w = route_flow(spec.src, spec.dst);
      if (!w.reachable) {
        records[ai].unreachable = true;
        if (shard_) shard_->add(m_unreachable_);
        ++ai;
        continue;
      }
      if (shard_) shard_->add(m_arrivals_);
      ActiveFlow f;
      f.record = static_cast<std::uint32_t>(ai);
      f.dest_as = spec.dst.value();
      f.links.reserve(w.links.size());
      for (const LinkId l : w.links) f.links.push_back(l.value());
      const auto& routes = routes_for(spec.dst);
      const auto def = core::bgp_walk(g_, routes, spec.src);
      f.deflt.reserve(def.links.size());
      for (const LinkId l : def.links) f.deflt.push_back(l.value());
      f.remaining_mb = to_megabits(spec.size);
      f.deflected = w.deflections > 0;
      if (f.deflected) {
        // The initial deflection is the flow's first path switch.
        records[ai].path_switches = 1;
        records[ai].used_alternative = true;
      }
      active_.push_back(std::move(f));
      changed = true;
      ++ai;
    }

    // Re-evaluation tick.
    if (t_tick < kInf && t >= t_tick - kTimeEps) {
      if (shard_) shard_->add(m_ticks_);
      reevaluate_paths(records);
      changed = true;
      while (next_tick <= t + kTimeEps) next_tick += cfg_.reeval_interval;
    }

    if (changed) recompute_rates();
  }

  return records;
}

StreamResult FluidSim::run_stream(traffic::WorkloadEngine& workload,
                                  const StreamConfig& sc) {
  std::vector<std::uint32_t> dests;
  dests.reserve(workload.endpoints().size());
  for (const AsId a : workload.endpoints()) dests.push_back(a.value());
  warm_route_cache_dests(std::move(dests));
  return run_stream_impl(
      [&workload](traffic::FlowSpec& out) { return workload.next(out); },
      [&workload](SimTime t) { return workload.offered_load_mbps(t); }, sc);
}

StreamResult FluidSim::run_stream(std::vector<traffic::FlowSpec> specs,
                                  const StreamConfig& sc) {
  std::sort(specs.begin(), specs.end(),
            [](const traffic::FlowSpec& a, const traffic::FlowSpec& b) {
              return a.arrival < b.arrival;
            });
  warm_route_cache(specs);
  std::size_t next = 0;
  return run_stream_impl(
      [&specs, next](traffic::FlowSpec& out) mutable {
        if (next >= specs.size()) return false;
        out = specs[next++];
        return true;
      },
      nullptr, sc);
}

StreamResult FluidSim::run_stream_impl(
    const std::function<bool(traffic::FlowSpec&)>& source,
    const std::function<double(SimTime)>& offered, const StreamConfig& sc) {
  MIFO_EXPECTS(sc.epoch > 0.0);
  StreamResult res;

  // Same clean slate as run(): exact zero allocations, pristine capacities,
  // chaos events sorted and pending.
  active_.clear();
  std::fill(alloc_.begin(), alloc_.end(), 0.0);
  std::fill(capacity_.begin(), capacity_.end(), cfg_.link_capacity);
  std::stable_sort(cap_events_.begin(), cap_events_.end(),
                   [](const CapacityEvent& a, const CapacityEvent& b) {
                     return a.t < b.t;
                   });
  std::size_t ci = 0;

  IncrementalMaxMin solver(capacity_, cfg_.flow_rate_cap);

  // Streaming flow table, indexed by solver slot. Fluid state settles
  // lazily (remaining_mb is exact as of update_t), so an event only touches
  // the flows whose rates actually moved, not the whole population.
  struct SFlow {
    std::uint32_t record = 0;
    std::vector<std::uint32_t> links;
    std::vector<std::uint32_t> deflt;
    double remaining_mb = 0.0;
    SimTime update_t = 0.0;
    double rate = 0.0;
    std::uint32_t gen = 0;  ///< bumps on every rate change / reuse / death
    bool deflected = false;
    bool live = false;
    AsId src;
    AsId dst;
  };
  std::vector<SFlow> sflows;

  // Lazy completion heap: predictions are exact while a flow's rate holds;
  // any rate change bumps the generation, orphaning stale entries.
  struct Pending {
    SimTime t = 0.0;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };
  const auto later = [](const Pending& a, const Pending& b) {
    if (a.t != b.t) return a.t > b.t;
    if (a.slot != b.slot) return a.slot > b.slot;
    return a.gen > b.gen;
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(later)> heap(
      later);

  SimTime t = 0.0;
  double total_rate = 0.0;  ///< Σ live rates (goodput integrand)
  std::size_t active = 0;
  SimTime next_tick = cfg_.reeval_interval;
  SimTime epoch_end = sc.epoch;
  double epoch_mb = 0.0;
  std::uint64_t epoch_arrivals = 0;
  std::uint64_t epoch_completions = 0;

  const auto timed = [&](auto&& op) {
    if (!sc.measure_solve_latency) {
      op();
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    op();
    const auto t1 = std::chrono::steady_clock::now();
    res.solve_seconds.push_back(
        std::chrono::duration<double>(t1 - t0).count());
  };

  // Propagate the solver's rate movements: settle each touched flow's
  // remaining bytes at its old rate, shift link allocations by the delta,
  // and re-predict its completion.
  const auto apply_changes = [&] {
    for (const IncrementalMaxMin::RateChange& ch : solver.changes()) {
      SFlow& f = sflows[ch.slot];
      f.remaining_mb -= f.rate * (t - f.update_t);
      f.update_t = t;
      const double delta = ch.new_rate - ch.old_rate;
      for (const std::uint32_t l : f.links) alloc_[l] += delta;
      total_rate += delta;
      f.rate = ch.new_rate;
      ++f.gen;
      if (f.rate > 0.0) {
        heap.push(Pending{t + std::max(0.0, f.remaining_mb) / f.rate,
                          ch.slot, f.gen});
      }
    }
    if (sc.differential) (void)solver.check_differential();
  };

  const auto emit_epoch = [&](SimTime edge, SimTime length) {
    obs::LoadSample s;
    s.t = edge;
    s.goodput_mbps = length > 0.0 ? epoch_mb / length : 0.0;
    s.offered_mbps = offered ? offered(edge) : 0.0;
    std::uint32_t loaded = 0;
    std::uint32_t congested = 0;
    for (std::size_t l = 0; l < alloc_.size(); ++l) {
      if (alloc_[l] <= 0.0) continue;
      const double u = alloc_[l] / capacity_[l];
      ++loaded;
      s.max_util = std::max(s.max_util, u);
      if (u >= cfg_.congest_threshold) ++congested;
    }
    s.frac_congested =
        loaded != 0 ? static_cast<double>(congested) / loaded : 0.0;
    s.active_flows = active;
    s.arrivals = epoch_arrivals;
    s.completions = epoch_completions;
    res.load.push_back(s);
    if (shard_) {
      shard_->set(m_active_flows_, static_cast<double>(active));
      shard_->set(m_offered_load_, s.offered_mbps);
    }
    epoch_mb = 0.0;
    epoch_arrivals = 0;
    epoch_completions = 0;
  };

  const auto admit = [&](const traffic::FlowSpec& spec) {
    const auto rec_idx = static_cast<std::uint32_t>(res.records.size());
    FlowRecord rec;
    rec.spec = spec;
    res.records.push_back(rec);
    const core::WalkResult w = route_flow(spec.src, spec.dst);
    if (!w.reachable) {
      res.records[rec_idx].unreachable = true;
      if (shard_) shard_->add(m_unreachable_);
      return;
    }
    if (shard_) shard_->add(m_arrivals_);
    std::vector<std::uint32_t> links;
    links.reserve(w.links.size());
    for (const LinkId l : w.links) links.push_back(l.value());
    IncrementalMaxMin::Slot slot = IncrementalMaxMin::kInvalidSlot;
    timed([&] { slot = solver.add_flow(links); });
    if (sflows.size() <= slot) sflows.resize(slot + 1);
    SFlow& f = sflows[slot];
    const std::uint32_t gen = f.gen + 1;  // orphan the slot's stale entries
    f = SFlow{};
    f.gen = gen;
    f.record = rec_idx;
    f.src = spec.src;
    f.dst = spec.dst;
    const std::span<const std::uint32_t> dd = solver.links_of(slot);
    f.links.assign(dd.begin(), dd.end());
    const auto def = core::bgp_walk(g_, routes_for(spec.dst), spec.src);
    f.deflt.reserve(def.links.size());
    for (const LinkId l : def.links) f.deflt.push_back(l.value());
    f.remaining_mb = to_megabits(spec.size);
    f.update_t = t;
    f.live = true;
    f.deflected = w.deflections > 0;
    if (f.deflected) {
      res.records[rec_idx].path_switches = 1;
      res.records[rec_idx].used_alternative = true;
    }
    ++active;
    ++epoch_arrivals;
    res.peak_active = std::max<std::uint64_t>(res.peak_active, active);
    apply_changes();
    MIFO_ASSERT(f.rate > 0.0);  // nonempty path ⇒ positive max–min share
  };

  // The MIFO/MIRO re-evaluation tick, streaming edition: identical
  // discipline to reevaluate_paths (measure congestion without the flow's
  // own rate; deflect-once / return-once hysteresis) but path moves go
  // through the incremental solver instead of a global re-solve.
  const auto reevaluate_stream = [&] {
    for (std::uint32_t slot = 0; slot < sflows.size(); ++slot) {
      SFlow& f = sflows[slot];
      if (!f.live) continue;
      FlowRecord& rec = res.records[f.record];
      for (const std::uint32_t l : f.links) alloc_[l] -= f.rate;

      bool should_reroute = false;
      if (!f.deflected) {
        for (const std::uint32_t l : f.links) {
          if (utilization(l) >= cfg_.congest_threshold) {
            should_reroute = true;
            break;
          }
        }
      } else {
        bool default_clear = true;
        for (const std::uint32_t l : f.deflt) {
          if (utilization(l) >= cfg_.low_watermark) {
            default_clear = false;
            break;
          }
        }
        should_reroute = default_clear;
      }

      bool moved = false;
      if (should_reroute) {
        const core::WalkResult w = route_flow(f.src, f.dst);
        MIFO_ASSERT(w.reachable);  // it was reachable at admission
        std::vector<std::uint32_t> links;
        links.reserve(w.links.size());
        for (const LinkId l : w.links) links.push_back(l.value());
        if (links != f.links) {
          timed([&] { solver.update_path(slot, links); });
          const std::span<const std::uint32_t> dd = solver.links_of(slot);
          f.links.assign(dd.begin(), dd.end());
          f.deflected = w.deflections > 0;
          ++rec.path_switches;
          rec.used_alternative = rec.used_alternative || f.deflected;
          if (shard_) shard_->add(m_reroutes_);
          moved = true;
        }
      }

      for (const std::uint32_t l : f.links) alloc_[l] += f.rate;
      if (moved) apply_changes();
    }
  };

  traffic::FlowSpec pending;
  bool have = source(pending);

  while (have || active > 0) {
    const SimTime t_arr = have ? pending.arrival : kInf;
    const SimTime t_comp = heap.empty() ? kInf : heap.top().t;
    const SimTime t_tick =
        (cfg_.mode == RoutingMode::Bgp || active == 0) ? kInf : next_tick;
    const SimTime t_ev = ci < cap_events_.size() ? cap_events_[ci].t : kInf;
    SimTime t_next = std::min({t_arr, t_comp, t_tick, t_ev});
    MIFO_ASSERT(t_next < kInf);
    bool stop = false;
    if (sc.max_time > 0.0 && t_next > sc.max_time) {
      t_next = std::max(t, sc.max_time);
      stop = true;
    }
    MIFO_ASSERT(t_next >= t - kTimeEps);

    // Integrate goodput across every epoch edge inside [t, t_next].
    SimTime cursor = t;
    while (epoch_end <= t_next + kTimeEps) {
      epoch_mb += total_rate * std::max(0.0, epoch_end - cursor);
      cursor = epoch_end;
      emit_epoch(epoch_end, sc.epoch);
      epoch_end += sc.epoch;
    }
    epoch_mb += total_rate * std::max(0.0, t_next - cursor);
    t = t_next;
    if (stop) {
      res.truncated = active > 0;
      break;
    }

    // Capacity events (chaos link down/degrade/up) due now.
    while (ci < cap_events_.size() && cap_events_[ci].t <= t + kTimeEps) {
      const std::uint32_t link = cap_events_[ci].link;
      const double cap = cfg_.link_capacity * cap_events_[ci].factor;
      capacity_[link] = cap;
      timed([&] { solver.set_capacity(link, cap); });
      apply_changes();
      ++ci;
    }

    // Completions: pop due predictions, skipping orphaned generations.
    while (!heap.empty() && heap.top().t <= t + kTimeEps) {
      const Pending e = heap.top();
      heap.pop();
      SFlow& f = sflows[e.slot];
      if (!f.live || e.gen != f.gen) continue;
      f.remaining_mb -= f.rate * (t - f.update_t);
      f.update_t = t;
      FlowRecord& rec = res.records[f.record];
      rec.completed = true;
      rec.finish = t;
      if (shard_) shard_->add(m_completions_);
      for (const std::uint32_t l : f.links) alloc_[l] -= f.rate;
      total_rate -= f.rate;
      f.live = false;
      ++f.gen;
      --active;
      ++epoch_completions;
      timed([&] { solver.remove_flow(e.slot); });
      apply_changes();
    }

    // Arrivals.
    while (have && pending.arrival <= t + kTimeEps) {
      admit(pending);
      have = source(pending);
    }

    // Re-evaluation tick.
    if (t_tick < kInf && t >= t_tick - kTimeEps) {
      if (shard_) shard_->add(m_ticks_);
      reevaluate_stream();
      while (next_tick <= t + kTimeEps) next_tick += cfg_.reeval_interval;
    }
  }

  // Close the trailing partial epoch so the goodput integral is exact.
  {
    const SimTime start = epoch_end - sc.epoch;
    const SimTime length = t - start;
    if (length > kTimeEps &&
        (epoch_mb > 0.0 || epoch_arrivals + epoch_completions > 0)) {
      emit_epoch(t, length);
    }
  }

  res.duration = t;
  res.solver = solver.stats();
  if (shard_) {
    shard_->add(m_solver_runs_, static_cast<double>(res.solver.events));
    shard_->add(m_solver_components_,
                static_cast<double>(res.solver.components_solved));
    shard_->add(m_solver_incidences_,
                static_cast<double>(res.solver.incidences_resolved));
    shard_->add(m_solver_full_incidences_,
                static_cast<double>(res.solver.full_incidences));
    shard_->add(m_solver_diff_checks_,
                static_cast<double>(res.solver.differential_checks));
  }
  return res;
}

}  // namespace mifo::sim
