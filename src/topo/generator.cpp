#include "topo/generator.hpp"

#include <algorithm>
#include <array>
#include <numeric>

#include "common/contracts.hpp"

namespace mifo::topo {

namespace {

/// Weighted pick of a provider among `candidates` with weight
/// (degree + 1) — classic preferential attachment, yielding the heavy-tailed
/// degree distribution of the measured AS graph.
AsId pick_preferential(const AsGraph& g, std::span<const AsId> candidates,
                       Rng& rng) {
  MIFO_EXPECTS(!candidates.empty());
  double total = 0.0;
  for (AsId c : candidates) total += static_cast<double>(g.degree(c)) + 1.0;
  double x = rng.uniform() * total;
  for (AsId c : candidates) {
    x -= static_cast<double>(g.degree(c)) + 1.0;
    if (x <= 0.0) return c;
  }
  return candidates.back();
}

std::size_t sample_provider_count(const std::array<double, 4>& weights,
                                  Rng& rng) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  MIFO_EXPECTS(total > 0.0);
  double x = rng.uniform() * total;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    x -= weights[k];
    if (x <= 0.0) return k + 1;
  }
  return weights.size();
}

}  // namespace

AsGraph generate_topology(const GeneratorParams& params) {
  MIFO_EXPECTS(params.num_ases >= 3);
  MIFO_EXPECTS(params.num_tier1 >= 1);
  MIFO_EXPECTS(params.num_tier1 <= params.num_ases);
  MIFO_EXPECTS(params.peering_fraction >= 0.0 &&
               params.peering_fraction < 1.0);

  Rng rng(params.seed);
  AsGraph g(params.num_ases);

  const std::size_t n = params.num_ases;
  const std::size_t t1 = std::min(params.num_tier1, n);
  const auto num_transit = static_cast<std::size_t>(
      static_cast<double>(n - t1) * params.transit_fraction);
  const std::size_t transit_end = t1 + num_transit;

  // --- Tier 1: full peering mesh. -----------------------------------------
  for (std::size_t i = 0; i < t1; ++i) {
    g.info(AsId(static_cast<std::uint32_t>(i))).tier = 1;
    for (std::size_t j = i + 1; j < t1; ++j) {
      g.add_peering(AsId(static_cast<std::uint32_t>(i)),
                    AsId(static_cast<std::uint32_t>(j)));
    }
  }

  // --- Tier 2 (transit): providers drawn preferentially from earlier
  // transit/tier-1 ASes. The "earlier only" rule keeps the P/C DAG acyclic.
  std::vector<AsId> transit_pool;
  transit_pool.reserve(transit_end);
  for (std::size_t i = 0; i < t1; ++i) {
    transit_pool.push_back(AsId(static_cast<std::uint32_t>(i)));
  }
  for (std::size_t i = t1; i < transit_end; ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    g.info(as).tier = 2;
    const std::size_t want = sample_provider_count(params.multihoming_weights,
                                                   rng);
    for (std::size_t k = 0; k < want; ++k) {
      const AsId provider = pick_preferential(g, transit_pool, rng);
      if (provider != as) g.add_provider_customer(provider, as);
    }
    transit_pool.push_back(as);
  }

  // --- Tier 3 (stubs): multihomed to transit ASes. -------------------------
  for (std::size_t i = transit_end; i < n; ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    g.info(as).tier = 3;
    const std::size_t want = sample_provider_count(params.multihoming_weights,
                                                   rng);
    for (std::size_t k = 0; k < want; ++k) {
      const AsId provider = pick_preferential(g, transit_pool, rng);
      g.add_provider_customer(provider, as);
    }
  }

  // --- Content providers: stubs with abundant peering. --------------------
  const auto num_cp = std::max<std::size_t>(
      n >= 1000 ? 1 : 0, static_cast<std::size_t>(
                             static_cast<double>(n) *
                             params.content_provider_fraction));
  for (std::size_t c = 0; c < num_cp && transit_end < n; ++c) {
    const AsId as(static_cast<std::uint32_t>(
        transit_end + rng.bounded(n - transit_end)));
    if (g.info(as).content_provider) continue;
    g.info(as).content_provider = true;
    const std::size_t want =
        std::min(params.content_provider_peers, transit_pool.size());
    for (std::size_t k = 0; k < want; ++k) {
      const AsId peer = pick_preferential(g, transit_pool, rng);
      if (peer != as) g.add_peering(as, peer);
    }
  }

  // --- Fill remaining peering links up to the target mix. -----------------
  // Peers are drawn within the transit tiers (where real peering
  // concentrates), preferentially by degree.
  const double target = params.peering_fraction;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 40 * n;
  while (attempts++ < max_attempts) {
    const auto total = static_cast<double>(g.num_adjacencies());
    const auto peering = static_cast<double>(g.num_peer_adjacencies());
    if (total > 0.0 && peering / total >= target) break;
    const AsId a = pick_preferential(g, transit_pool, rng);
    const AsId b = pick_preferential(g, transit_pool, rng);
    if (a == b) continue;
    // Only peer ASes of comparable standing: both transit, neither the
    // other's (transitive) neighbor already.
    g.add_peering(a, b);
  }

  return g;
}

}  // namespace mifo::topo
