// CAIDA-style text serialization of AS graphs:
//   <as_a> <as_b> p2c    (a is b's provider)
//   <as_a> <as_b> peer
// plus optional "# tier <as> <tier>" / "# cp <as>" annotation comments.
// Round-trips through parse(serialize(g)).
#pragma once

#include <iosfwd>
#include <string>

#include "topo/as_graph.hpp"

namespace mifo::topo {

void serialize(const AsGraph& g, std::ostream& os);
[[nodiscard]] std::string serialize_to_string(const AsGraph& g);

/// Parses the format above. Aborts via contract on malformed input lines.
[[nodiscard]] AsGraph parse(std::istream& is);
[[nodiscard]] AsGraph parse_string(const std::string& text);

}  // namespace mifo::topo
