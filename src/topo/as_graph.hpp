// The AS-level Internet graph: ASes, annotated adjacency, and the directed
// inter-AS links the flow simulator allocates capacity on.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "topo/relationship.hpp"

namespace mifo::topo {

/// One adjacency entry of an AS.
struct Neighbor {
  AsId as;      ///< the neighboring AS
  Rel rel;      ///< what the neighbor is *to the owning AS*
  LinkId link;  ///< the directed link owner -> neighbor
};

/// Optional per-AS annotations produced by the generator.
struct AsInfo {
  std::uint8_t tier = 3;           ///< 1 = tier-1, 2 = transit, 3 = stub
  bool content_provider = false;   ///< high-peering stub (Google/Facebook
                                   ///< style, Section IV-B)
};

/// Immutable-after-build AS graph. Each undirected adjacency materialises two
/// directed links (one per direction) so the simulator can congest each
/// direction independently, as real inter-AS links do.
class AsGraph {
 public:
  AsGraph() = default;
  explicit AsGraph(std::size_t num_ases) { resize(num_ases); }

  void resize(std::size_t num_ases);
  [[nodiscard]] std::size_t num_ases() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_adjacencies() const {
    return directed_from_.size() / 2;
  }
  [[nodiscard]] std::size_t num_directed_links() const {
    return directed_from_.size();
  }
  [[nodiscard]] std::size_t num_pc_adjacencies() const { return pc_count_; }
  [[nodiscard]] std::size_t num_peer_adjacencies() const {
    return peer_count_;
  }

  /// Adds `provider` -> `customer` transit adjacency. Returns false (and
  /// adds nothing) if the two ASes are already adjacent.
  bool add_provider_customer(AsId provider, AsId customer);

  /// Adds a settlement-free peering adjacency. Returns false if already
  /// adjacent.
  bool add_peering(AsId a, AsId b);

  [[nodiscard]] std::span<const Neighbor> neighbors(AsId as) const;

  /// Relationship of `b` as seen from `a`; nullopt when not adjacent.
  [[nodiscard]] std::optional<Rel> rel(AsId a, AsId b) const;

  [[nodiscard]] bool adjacent(AsId a, AsId b) const {
    return rel(a, b).has_value();
  }

  /// Directed link id for a -> b; invalid() when not adjacent.
  [[nodiscard]] LinkId link(AsId a, AsId b) const;

  [[nodiscard]] AsId link_from(LinkId l) const;
  [[nodiscard]] AsId link_to(LinkId l) const;
  /// The opposite-direction twin of a directed link.
  [[nodiscard]] LinkId twin(LinkId l) const;

  [[nodiscard]] std::size_t degree(AsId as) const {
    return neighbors(as).size();
  }
  [[nodiscard]] std::size_t provider_count(AsId as) const;
  [[nodiscard]] std::size_t peer_count(AsId as) const;
  [[nodiscard]] std::size_t customer_count(AsId as) const;

  [[nodiscard]] AsInfo& info(AsId as);
  [[nodiscard]] const AsInfo& info(AsId as) const;

 private:
  [[nodiscard]] static std::uint64_t key(AsId a, AsId b) {
    return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
  }
  void add_adjacency(AsId a, AsId b, Rel b_is_to_a);

  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<AsInfo> info_;
  std::unordered_map<std::uint64_t, std::uint32_t> edge_index_;  // a,b -> idx
  std::vector<AsId> directed_from_;
  std::vector<AsId> directed_to_;
  std::size_t pc_count_ = 0;
  std::size_t peer_count_ = 0;
};

}  // namespace mifo::topo
