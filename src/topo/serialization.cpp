#include "topo/serialization.hpp"

#include <algorithm>
#include <sstream>

#include "common/contracts.hpp"

namespace mifo::topo {

void serialize(const AsGraph& g, std::ostream& os) {
  os << "# mifo-topology v1\n";
  os << "# nodes " << g.num_ases() << "\n";
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    const auto& info = g.info(as);
    if (info.tier != 3) os << "# tier " << i << " " << int(info.tier) << "\n";
    if (info.content_provider) os << "# cp " << i << "\n";
  }
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    for (const auto& nb : g.neighbors(as)) {
      if (nb.rel == Rel::Customer) {
        os << i << " " << nb.as.value() << " p2c\n";
      } else if (nb.rel == Rel::Peer && as < nb.as) {
        os << i << " " << nb.as.value() << " peer\n";
      }
    }
  }
}

std::string serialize_to_string(const AsGraph& g) {
  std::ostringstream os;
  serialize(g, os);
  return os.str();
}

AsGraph parse(std::istream& is) {
  AsGraph g;
  std::string line;
  std::size_t declared_nodes = 0;
  struct PendingInfo {
    std::uint32_t as;
    int tier;
    bool cp;
  };
  std::vector<PendingInfo> pending;
  auto ensure = [&g](std::uint32_t as) {
    if (as >= g.num_ases()) g.resize(as + 1);
  };
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    if (line[0] == '#') {
      std::string hash, word;
      ls >> hash >> word;
      if (word == "nodes") {
        ls >> declared_nodes;
        g.resize(std::max(declared_nodes, g.num_ases()));
      } else if (word == "tier") {
        std::uint32_t as = 0;
        int tier = 3;
        ls >> as >> tier;
        pending.push_back({as, tier, false});
      } else if (word == "cp") {
        std::uint32_t as = 0;
        ls >> as;
        pending.push_back({as, -1, true});
      }
      continue;
    }
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::string kind;
    ls >> a >> b >> kind;
    MIFO_EXPECTS(!ls.fail());
    ensure(std::max(a, b));
    if (kind == "p2c") {
      g.add_provider_customer(AsId(a), AsId(b));
    } else if (kind == "peer") {
      g.add_peering(AsId(a), AsId(b));
    } else {
      MIFO_EXPECTS(false && "unknown link kind");
    }
  }
  for (const auto& p : pending) {
    ensure(p.as);
    if (p.tier >= 0) g.info(AsId(p.as)).tier = static_cast<std::uint8_t>(p.tier);
    if (p.cp) g.info(AsId(p.as)).content_provider = true;
  }
  return g;
}

AsGraph parse_string(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

}  // namespace mifo::topo
