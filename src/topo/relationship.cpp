#include "topo/relationship.hpp"

namespace mifo::topo {

bool is_valley_free(std::span<const StepDir> steps) {
  // Admissible shape: Up* [Flat] Down*.
  std::size_t i = 0;
  while (i < steps.size() && steps[i] == StepDir::Up) ++i;
  if (i < steps.size() && steps[i] == StepDir::Flat) ++i;
  while (i < steps.size() && steps[i] == StepDir::Down) ++i;
  return i == steps.size();
}

}  // namespace mifo::topo
