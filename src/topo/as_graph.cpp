#include "topo/as_graph.hpp"

#include "common/contracts.hpp"

namespace mifo::topo {

void AsGraph::resize(std::size_t num_ases) {
  MIFO_EXPECTS(num_ases >= adjacency_.size());
  adjacency_.resize(num_ases);
  info_.resize(num_ases);
}

bool AsGraph::add_provider_customer(AsId provider, AsId customer) {
  MIFO_EXPECTS(provider.value() < num_ases());
  MIFO_EXPECTS(customer.value() < num_ases());
  MIFO_EXPECTS(provider != customer);
  if (adjacent(provider, customer)) return false;
  // From the provider's perspective the neighbor (customer) is a Customer.
  add_adjacency(provider, customer, Rel::Customer);
  ++pc_count_;
  return true;
}

bool AsGraph::add_peering(AsId a, AsId b) {
  MIFO_EXPECTS(a.value() < num_ases());
  MIFO_EXPECTS(b.value() < num_ases());
  MIFO_EXPECTS(a != b);
  if (adjacent(a, b)) return false;
  add_adjacency(a, b, Rel::Peer);
  ++peer_count_;
  return true;
}

void AsGraph::add_adjacency(AsId a, AsId b, Rel b_is_to_a) {
  const auto link_ab = LinkId(static_cast<std::uint32_t>(directed_from_.size()));
  directed_from_.push_back(a);
  directed_to_.push_back(b);
  const auto link_ba = LinkId(static_cast<std::uint32_t>(directed_from_.size()));
  directed_from_.push_back(b);
  directed_to_.push_back(a);

  adjacency_[a.value()].push_back(Neighbor{b, b_is_to_a, link_ab});
  adjacency_[b.value()].push_back(Neighbor{a, reverse(b_is_to_a), link_ba});
  edge_index_.emplace(key(a, b), link_ab.value());
  edge_index_.emplace(key(b, a), link_ba.value());
}

std::span<const Neighbor> AsGraph::neighbors(AsId as) const {
  MIFO_EXPECTS(as.value() < num_ases());
  return adjacency_[as.value()];
}

std::optional<Rel> AsGraph::rel(AsId a, AsId b) const {
  const auto it = edge_index_.find(key(a, b));
  if (it == edge_index_.end()) return std::nullopt;
  // The link id indexes the adjacency entry only indirectly; scan is avoided
  // by recovering the relationship from the directed link's endpoints.
  for (const auto& n : adjacency_[a.value()]) {
    if (n.as == b) return n.rel;
  }
  return std::nullopt;
}

LinkId AsGraph::link(AsId a, AsId b) const {
  const auto it = edge_index_.find(key(a, b));
  if (it == edge_index_.end()) return LinkId::invalid();
  return LinkId(it->second);
}

AsId AsGraph::link_from(LinkId l) const {
  MIFO_EXPECTS(l.value() < directed_from_.size());
  return directed_from_[l.value()];
}

AsId AsGraph::link_to(LinkId l) const {
  MIFO_EXPECTS(l.value() < directed_to_.size());
  return directed_to_[l.value()];
}

LinkId AsGraph::twin(LinkId l) const {
  MIFO_EXPECTS(l.value() < directed_from_.size());
  return LinkId(l.value() ^ 1u);
}

std::size_t AsGraph::provider_count(AsId as) const {
  std::size_t n = 0;
  for (const auto& nb : neighbors(as)) n += (nb.rel == Rel::Provider) ? 1 : 0;
  return n;
}

std::size_t AsGraph::peer_count(AsId as) const {
  std::size_t n = 0;
  for (const auto& nb : neighbors(as)) n += (nb.rel == Rel::Peer) ? 1 : 0;
  return n;
}

std::size_t AsGraph::customer_count(AsId as) const {
  std::size_t n = 0;
  for (const auto& nb : neighbors(as)) n += (nb.rel == Rel::Customer) ? 1 : 0;
  return n;
}

AsInfo& AsGraph::info(AsId as) {
  MIFO_EXPECTS(as.value() < info_.size());
  return info_[as.value()];
}

const AsInfo& AsGraph::info(AsId as) const {
  MIFO_EXPECTS(as.value() < info_.size());
  return info_[as.value()];
}

}  // namespace mifo::topo
