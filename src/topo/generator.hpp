// Synthetic Internet-like AS topology generator.
//
// Substitute for the UCLA IRL measured topology the paper evaluates on
// (Table I: 44,340 ASes, 109,360 links, 69% provider/customer, 31% peering).
// The generator reproduces the structural properties MIFO's results depend
// on: a tier-1 peering clique, a transit hierarchy with preferential
// attachment (power-law degrees), multihomed stubs, high-peering content
// providers, an acyclic provider/customer hierarchy, and a configurable
// P/C : peering mix.
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "topo/as_graph.hpp"

namespace mifo::topo {

struct GeneratorParams {
  std::size_t num_ases = 4000;
  /// Size of the tier-1 clique (fully peered).
  std::size_t num_tier1 = 12;
  /// Fraction of non-tier-1 ASes that provide transit (tier 2).
  double transit_fraction = 0.15;
  /// Fraction of ASes that are high-peering content providers (stub ASes
  /// with many peering links, modeling Google/Facebook, Section IV-B).
  double content_provider_fraction = 0.005;
  /// Peering links per content provider (scaled by available transit ASes).
  std::size_t content_provider_peers = 30;
  /// Target fraction of adjacencies that are peering (Table I: 0.314).
  double peering_fraction = 0.314;
  /// Multihoming distribution: probability of k providers is
  /// multihoming_weights[k-1] (normalised internally).
  std::array<double, 4> multihoming_weights{0.45, 0.35, 0.15, 0.05};
  std::uint64_t seed = 1;
};

/// Generates a topology with the invariants documented above. The result is
/// connected and its provider/customer digraph is acyclic by construction
/// (providers are always drawn from earlier-created ASes).
[[nodiscard]] AsGraph generate_topology(const GeneratorParams& params);

}  // namespace mifo::topo
