// Structural analyses over AsGraph: Table-I style attribute reports and the
// graph-theoretic invariants the route computation relies on.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topo/as_graph.hpp"

namespace mifo::topo {

/// The attributes the paper reports in Table I for its measured data set.
struct TopologyAttributes {
  std::size_t nodes = 0;
  std::size_t links = 0;          ///< undirected adjacencies
  std::size_t pc_links = 0;       ///< provider/customer
  std::size_t peering_links = 0;  ///< mutual peering
  double avg_degree = 0.0;
  std::size_t max_degree = 0;
  std::size_t tier1 = 0;
  std::size_t transit = 0;
  std::size_t stubs = 0;
};

[[nodiscard]] TopologyAttributes attributes(const AsGraph& g);

/// Human-readable Table-I style report.
[[nodiscard]] std::string attributes_report(const TopologyAttributes& a);

/// True iff the provider->customer digraph has no cycle. Route computation
/// and the path-counting DP require this.
[[nodiscard]] bool is_pc_acyclic(const AsGraph& g);

/// Topological order of the P/C digraph with every provider before all of
/// its customers. Aborts (contract) if the digraph is cyclic.
[[nodiscard]] std::vector<AsId> pc_topological_order(const AsGraph& g);

/// True iff the underlying undirected graph is connected.
[[nodiscard]] bool is_connected(const AsGraph& g);

/// ASes able to reach `dst` via a pure provider->customer (all-Down) path,
/// i.e. the ASes holding a *customer route* to dst — the paper's most
/// preferred class. Includes dst itself. This is the "uphill set" of dst:
/// dst's providers, their providers, and so on.
[[nodiscard]] std::vector<bool> customer_route_set(const AsGraph& g,
                                                   AsId dst);

/// Degree of every AS, useful for power-law checks and content-provider
/// ranking (paper ranks by #providers + #peers).
[[nodiscard]] std::vector<std::size_t> degrees(const AsGraph& g);

/// One inconsistent adjacency: the two directions disagree about the
/// business relationship (a says b is its customer, but b does not see a as
/// its provider), or one direction is missing entirely.
struct RelAsymmetry {
  AsId a;
  AsId b;
  Rel a_sees_b = Rel::Peer;           ///< what b is to a
  std::optional<Rel> b_sees_a;        ///< what a is to b; nullopt = missing
};

/// Every asymmetric adjacency in the graph (empty on graphs built through
/// the AsGraph API, which wires both directions atomically — this is the
/// defensive invariant the static verifier lints before trusting rel()).
[[nodiscard]] std::vector<RelAsymmetry> relationship_asymmetries(
    const AsGraph& g);

}  // namespace mifo::topo
