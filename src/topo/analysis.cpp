#include "topo/analysis.hpp"

#include <deque>
#include <sstream>

#include "common/contracts.hpp"

namespace mifo::topo {

TopologyAttributes attributes(const AsGraph& g) {
  TopologyAttributes a;
  a.nodes = g.num_ases();
  a.links = g.num_adjacencies();
  a.pc_links = g.num_pc_adjacencies();
  a.peering_links = g.num_peer_adjacencies();
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    a.max_degree = std::max(a.max_degree, g.degree(as));
    switch (g.info(as).tier) {
      case 1:
        ++a.tier1;
        break;
      case 2:
        ++a.transit;
        break;
      default:
        ++a.stubs;
        break;
    }
  }
  a.avg_degree = a.nodes == 0
                     ? 0.0
                     : 2.0 * static_cast<double>(a.links) /
                           static_cast<double>(a.nodes);
  return a;
}

std::string attributes_report(const TopologyAttributes& a) {
  std::ostringstream os;
  os << "nodes=" << a.nodes << " links=" << a.links
     << " p/c=" << a.pc_links << " peering=" << a.peering_links
     << " avg_degree=" << a.avg_degree << " max_degree=" << a.max_degree
     << " tier1=" << a.tier1 << " transit=" << a.transit
     << " stubs=" << a.stubs;
  return os.str();
}

bool is_pc_acyclic(const AsGraph& g) {
  // Kahn's algorithm over provider -> customer edges.
  const std::size_t n = g.num_ases();
  std::vector<std::size_t> indeg(n, 0);  // # providers of each AS
  for (std::size_t i = 0; i < n; ++i) {
    indeg[i] = g.provider_count(AsId(static_cast<std::uint32_t>(i)));
  }
  std::deque<std::uint32_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const AsId as(ready.front());
    ready.pop_front();
    ++visited;
    for (const auto& nb : g.neighbors(as)) {
      if (nb.rel != Rel::Customer) continue;
      if (--indeg[nb.as.value()] == 0) ready.push_back(nb.as.value());
    }
  }
  return visited == n;
}

std::vector<AsId> pc_topological_order(const AsGraph& g) {
  const std::size_t n = g.num_ases();
  std::vector<std::size_t> indeg(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    indeg[i] = g.provider_count(AsId(static_cast<std::uint32_t>(i)));
  }
  std::deque<std::uint32_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<AsId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const AsId as(ready.front());
    ready.pop_front();
    order.push_back(as);
    for (const auto& nb : g.neighbors(as)) {
      if (nb.rel != Rel::Customer) continue;
      if (--indeg[nb.as.value()] == 0) ready.push_back(nb.as.value());
    }
  }
  MIFO_ENSURES(order.size() == n);  // cyclic P/C digraph is a build error
  return order;
}

bool is_connected(const AsGraph& g) {
  const std::size_t n = g.num_ases();
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::deque<std::uint32_t> queue{0};
  seen[0] = true;
  std::size_t visited = 0;
  while (!queue.empty()) {
    const AsId as(queue.front());
    queue.pop_front();
    ++visited;
    for (const auto& nb : g.neighbors(as)) {
      if (!seen[nb.as.value()]) {
        seen[nb.as.value()] = true;
        queue.push_back(nb.as.value());
      }
    }
  }
  return visited == n;
}

std::vector<bool> customer_route_set(const AsGraph& g, AsId dst) {
  MIFO_EXPECTS(dst.value() < g.num_ases());
  std::vector<bool> in_set(g.num_ases(), false);
  std::deque<std::uint32_t> queue{dst.value()};
  in_set[dst.value()] = true;
  while (!queue.empty()) {
    const AsId as(queue.front());
    queue.pop_front();
    for (const auto& nb : g.neighbors(as)) {
      // Walk to providers: they learn a customer route from `as`.
      if (nb.rel == Rel::Provider && !in_set[nb.as.value()]) {
        in_set[nb.as.value()] = true;
        queue.push_back(nb.as.value());
      }
    }
  }
  return in_set;
}

std::vector<RelAsymmetry> relationship_asymmetries(const AsGraph& g) {
  std::vector<RelAsymmetry> out;
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const AsId a(static_cast<std::uint32_t>(i));
    for (const auto& nb : g.neighbors(a)) {
      if (!(a < nb.as)) continue;  // inspect each adjacency once
      const auto back = g.rel(nb.as, a);
      if (!back) {
        out.push_back(RelAsymmetry{a, nb.as, nb.rel, std::nullopt});
      } else if (*back != reverse(nb.rel)) {
        out.push_back(RelAsymmetry{a, nb.as, nb.rel, back});
      }
    }
  }
  return out;
}

std::vector<std::size_t> degrees(const AsGraph& g) {
  std::vector<std::size_t> d(g.num_ases());
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    d[i] = g.degree(AsId(static_cast<std::uint32_t>(i)));
  }
  return d;
}

}  // namespace mifo::topo
