// Business relationships between adjacent ASes and the paper's data-plane
// valley-free rule (Section III-A).
//
// Terminology: for AS u with neighbor v, `Rel` records what v *is to u* —
// `Rel::Customer` means v is u's customer. This matches the paper's
// isCustomer(V_up) in Algorithm 1.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace mifo::topo {

enum class Rel : std::uint8_t {
  Customer,  ///< the neighbor pays us for transit (we are its provider)
  Peer,      ///< settlement-free peering
  Provider,  ///< we pay the neighbor for transit (we are its customer)
};

/// The relationship seen from the other side of the same link.
[[nodiscard]] constexpr Rel reverse(Rel r) {
  switch (r) {
    case Rel::Customer:
      return Rel::Provider;
    case Rel::Provider:
      return Rel::Customer;
    case Rel::Peer:
      return Rel::Peer;
  }
  return Rel::Peer;  // unreachable
}

[[nodiscard]] constexpr const char* to_string(Rel r) {
  switch (r) {
    case Rel::Customer:
      return "customer";
    case Rel::Peer:
      return "peer";
    case Rel::Provider:
      return "provider";
  }
  return "?";
}

/// Direction of one forwarding step, classified by the relationship of the
/// next hop as seen from the current AS.
enum class StepDir : std::uint8_t {
  Up,    ///< next hop is our provider  (v_i < v_{i+1})
  Flat,  ///< next hop is a peer        (v_i = v_{i+1})
  Down,  ///< next hop is our customer  (v_i > v_{i+1})
};

[[nodiscard]] constexpr StepDir step_dir(Rel next_hop_rel) {
  switch (next_hop_rel) {
    case Rel::Provider:
      return StepDir::Up;
    case Rel::Peer:
      return StepDir::Flat;
    case Rel::Customer:
      return StepDir::Down;
  }
  return StepDir::Flat;  // unreachable
}

// ---------------------------------------------------------------------------
// Eq. 3 — the data-plane valley-free transit rule.
//
//   v_i may transit a packet v_{i-1} -> v_i -> v_{i+1}  iff
//   v_{i-1} < v_i  (the upstream neighbor is v_i's customer)   or
//   v_i > v_{i+1}  (the downstream neighbor is v_i's customer).
// ---------------------------------------------------------------------------

/// The full two-relationship form of Eq. 3.
[[nodiscard]] constexpr bool may_transit(Rel upstream, Rel downstream) {
  return upstream == Rel::Customer || downstream == Rel::Customer;
}

// The "one more bit is enough" encoding (Section III-A4): the ingress border
// router *tags* the bit; the egress border router *checks* it.

/// Tag step: bit = 1 iff the upstream neighbor is a customer. Packets
/// originated by the local AS carry bit 1 (no upstream constraint applies;
/// the source may use any RIB route, like traffic received from a customer).
[[nodiscard]] constexpr bool tag_bit(Rel upstream) {
  return upstream == Rel::Customer;
}

/// Check step: deflection to `downstream` is permitted iff the tag is set or
/// the downstream neighbor is a customer.
[[nodiscard]] constexpr bool check_bit(bool tag, Rel downstream) {
  return tag || downstream == Rel::Customer;
}

/// Classifies an AS-level path given the per-step directions; a path is
/// valley-free iff after the first non-Up step every step is Down, with at
/// most one Flat step. This is the control-plane notion (Gao & Rexford);
/// paths admitted hop-by-hop by Eq. 3 are exactly these.
[[nodiscard]] bool is_valley_free(std::span<const StepDir> steps);

}  // namespace mifo::topo
