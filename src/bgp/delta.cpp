#include "bgp/delta.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace mifo::bgp {

namespace {

std::pair<AsId, AsId> norm_pair(AsId x, AsId y) {
  return x < y ? std::pair{x, y} : std::pair{y, x};
}

bool span_equal(std::span<const Route> a, std::span<const Route> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

bool span_equal(std::span<const AsId> a, std::span<const AsId> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace

const char* to_string(RouteEvent::Kind k) {
  switch (k) {
    case RouteEvent::Kind::Withdraw:
      return "withdraw";
    case RouteEvent::Kind::Reannounce:
      return "reannounce";
    case RouteEvent::Kind::SessionDown:
      return "session_down";
    case RouteEvent::Kind::SessionUp:
      return "session_up";
  }
  return "?";
}

std::string RouteEvent::to_string() const {
  std::string s = bgp::to_string(kind);
  s += " AS" + std::to_string(a.value());
  if (b.valid()) s += "-AS" + std::to_string(b.value());
  return s;
}

bool stores_identical(const RouteStore& a, const RouteStore& b) {
  if (a.dest() != b.dest() || a.num_ases() != b.num_ases() ||
      a.num_reachable() != b.num_reachable()) {
    return false;
  }
  if (!span_equal(a.all_best(), b.all_best())) return false;
  for (std::size_t i = 0; i < a.num_ases(); ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    if (!span_equal(a.rib(as), b.rib(as))) return false;
    if (!span_equal(a.path(as), b.path(as))) return false;
  }
  return true;
}

DeltaRoutingTable::DeltaRoutingTable(const topo::AsGraph& base,
                                     std::vector<AsId> dests)
    : base_(&base), dests_(std::move(dests)) {
  std::sort(dests_.begin(), dests_.end());
  dests_.erase(std::unique(dests_.begin(), dests_.end()), dests_.end());
  dest_index_.assign(base.num_ases(), -1);
  for (std::size_t i = 0; i < dests_.size(); ++i) {
    MIFO_EXPECTS(dests_[i].value() < base.num_ases());
    dest_index_[dests_[i].value()] = static_cast<std::int32_t>(i);
  }
  current_ = build_masked();
  segments_ = decltype(segments_)(dests_.size());
  for (std::size_t i = 0; i < dests_.size(); ++i) republish(i);
}

std::size_t DeltaRoutingTable::index_of(AsId dest) const {
  if (dest.value() >= dest_index_.size()) return dests_.size();
  const std::int32_t idx = dest_index_[dest.value()];
  return idx < 0 ? dests_.size() : static_cast<std::size_t>(idx);
}

bool DeltaRoutingTable::tracks(AsId dest) const {
  return index_of(dest) < dests_.size();
}

bool DeltaRoutingTable::withdrawn(AsId origin) const {
  return std::find(withdrawn_.begin(), withdrawn_.end(), origin) !=
         withdrawn_.end();
}

bool DeltaRoutingTable::session_disabled(AsId x, AsId y) const {
  return std::find(disabled_.begin(), disabled_.end(), norm_pair(x, y)) !=
         disabled_.end();
}

std::shared_ptr<const RouteSegment> DeltaRoutingTable::segment(
    AsId dest) const {
  const std::size_t idx = index_of(dest);
  if (idx >= dests_.size()) return nullptr;
  return segments_[idx].load(std::memory_order_acquire);
}

std::shared_ptr<const topo::AsGraph> DeltaRoutingTable::build_masked() const {
  auto g = std::make_shared<topo::AsGraph>(base_->num_ases());
  for (std::size_t i = 0; i < base_->num_ases(); ++i) {
    const AsId a(static_cast<std::uint32_t>(i));
    g->info(a) = base_->info(a);
    for (const auto& nb : base_->neighbors(a)) {
      if (!(a < nb.as)) continue;  // visit each adjacency once
      if (session_disabled(a, nb.as)) continue;
      switch (nb.rel) {
        case topo::Rel::Customer:  // nb is a's customer -> a provides transit
          g->add_provider_customer(a, nb.as);
          break;
        case topo::Rel::Provider:
          g->add_provider_customer(nb.as, a);
          break;
        case topo::Rel::Peer:
          g->add_peering(a, nb.as);
          break;
      }
    }
  }
  return g;
}

RouteStore DeltaRoutingTable::rebuild_full(AsId dest) const {
  if (withdrawn(dest)) {
    // A withdrawn prefix has no converged state anywhere: best invalid at
    // every AS (including the origin — the prefix, not the AS, is gone),
    // every RIB empty, every path empty.
    return RouteStore(*current_,
                      DestRoutes(dest, std::vector<Route>(current_->num_ases())));
  }
  return RouteStore(*current_, dest);
}

bool DeltaRoutingTable::consume_stale(std::size_t idx) {
  if (stale_next_ != dests_[idx]) return false;
  // Planted-staleness control: "forget" this recompute/patch, keep the
  // stale segment published. differential_check / the churn harness must
  // catch the divergence.
  stale_next_ = AsId::invalid();
  return true;
}

void DeltaRoutingTable::republish(std::size_t idx) {
  if (consume_stale(idx)) return;
  auto seg = std::make_shared<const RouteSegment>(
      RouteSegment{current_, rebuild_full(dests_[idx]), epoch_});
  segments_[idx].store(std::move(seg), std::memory_order_release);
}

void DeltaRoutingTable::patch(std::size_t idx) {
  if (consume_stale(idx)) return;
  // The old best assignment is still the fixed point on the new graph (the
  // caller proved it); every view is a pure function of (graph, assignment),
  // so re-derive them without running the decision process.
  const auto old = segments_[idx].load(std::memory_order_relaxed);
  std::vector<Route> bests(old->store.all_best().begin(),
                           old->store.all_best().end());
  auto seg = std::make_shared<const RouteSegment>(RouteSegment{
      current_,
      RouteStore(*current_, DestRoutes(dests_[idx], std::move(bests))),
      epoch_});
  segments_[idx].store(std::move(seg), std::memory_order_release);
}

bool DeltaRoutingTable::would_offer(const RouteSegment& seg, AsId importer,
                                    AsId exporter) const {
  const auto rel = base_->rel(importer, exporter);  // exporter, to importer
  MIFO_ASSERT(rel.has_value());  // session events require base adjacency
  const Route& offer = seg.store.best(exporter);
  if (!offer.valid()) return false;
  if (!may_export(offer.cls, topo::reverse(*rel))) return false;
  // Old-tree poisoning is decisive: if the row is poisoned both ways the
  // tree cannot change, so old-tree and new-tree poisoning coincide.
  return !seg.store.on_best_path(importer, exporter);
}

bool DeltaRoutingTable::would_prefer(const RouteSegment& seg, AsId importer,
                                     AsId exporter) const {
  if (!would_offer(seg, importer, exporter)) return false;
  const auto rel = base_->rel(importer, exporter);
  const Route cand{
      classify(*rel),
      static_cast<std::uint16_t>(seg.store.best(exporter).path_len + 1),
      exporter};
  return cand.better_than(seg.store.best(importer));
}

DeltaStats DeltaRoutingTable::apply(const RouteEvent& ev) {
  DeltaStats st;
  st.destinations = dests_.size();
  st.epoch = epoch_;

  switch (ev.kind) {
    case RouteEvent::Kind::Withdraw:
    case RouteEvent::Kind::Reannounce: {
      const bool is_withdraw = ev.kind == RouteEvent::Kind::Withdraw;
      const std::size_t idx = index_of(ev.a);
      if (idx >= dests_.size() || withdrawn(ev.a) == is_withdraw) break;
      if (is_withdraw) {
        withdrawn_.push_back(ev.a);
      } else {
        withdrawn_.erase(
            std::find(withdrawn_.begin(), withdrawn_.end(), ev.a));
      }
      st.applied = true;
      st.epoch = ++epoch_;
      // Per-destination independence: prefix churn affects exactly the
      // origin's own destination state.
      st.touched_dests.push_back(ev.a);
      st.recomputed = 1;
      republish(idx);
      break;
    }

    case RouteEvent::Kind::SessionDown:
    case RouteEvent::Kind::SessionUp: {
      const bool is_down = ev.kind == RouteEvent::Kind::SessionDown;
      if (ev.a == ev.b || !ev.a.valid() || !ev.b.valid()) break;
      if (!base_->adjacent(ev.a, ev.b)) break;
      if (session_disabled(ev.a, ev.b) == is_down) break;
      if (is_down) {
        disabled_.push_back(norm_pair(ev.a, ev.b));
      } else {
        disabled_.erase(std::find(disabled_.begin(), disabled_.end(),
                                  norm_pair(ev.a, ev.b)));
      }
      st.applied = true;
      st.epoch = ++epoch_;
      current_ = build_masked();
      for (std::size_t i = 0; i < dests_.size(); ++i) {
        const auto seg = segments_[i].load(std::memory_order_relaxed);
        bool recompute;
        bool row_change;
        if (is_down) {
          // The assignment changes iff the edge is in the best tree. A
          // non-tree edge only carried candidates nobody elected — but a
          // RIB row across it (either direction) still disappears, which
          // is a view patch. A stale segment whose graph predates the
          // session answers nullopt — correct, since the matching
          // SessionUp left it unaffected.
          recompute = seg->store.best(ev.a).next_hop == ev.b ||
                      seg->store.best(ev.b).next_hop == ev.a;
          row_change = recompute ||
                       seg->store.rib_from(ev.a, ev.b).has_value() ||
                       seg->store.rib_from(ev.b, ev.a).has_value();
        } else {
          // The new edge creates candidates only at its endpoints; if
          // neither endpoint prefers its candidate the assignment is the
          // old one, and a row merely appears where the session offers.
          recompute = would_prefer(*seg, ev.a, ev.b) ||
                      would_prefer(*seg, ev.b, ev.a);
          row_change = recompute || would_offer(*seg, ev.a, ev.b) ||
                       would_offer(*seg, ev.b, ev.a);
        }
        if (recompute) {
          st.touched_dests.push_back(dests_[i]);
          ++st.recomputed;
          republish(i);
        } else if (row_change) {
          st.touched_dests.push_back(dests_[i]);
          ++st.patched;
          patch(i);
        }
      }
      break;
    }
  }

  st.unchanged = st.destinations - st.recomputed - st.patched;
  return st;
}

std::vector<AsId> DeltaRoutingTable::differential_check() const {
  std::vector<AsId> mismatched;
  for (std::size_t i = 0; i < dests_.size(); ++i) {
    const auto seg = segments_[i].load(std::memory_order_acquire);
    const RouteStore fresh = rebuild_full(dests_[i]);
    if (!stores_identical(seg->store, fresh)) mismatched.push_back(dests_[i]);
  }
  return mismatched;
}

}  // namespace mifo::bgp
