// Counting the forwarding paths MIFO can realize between AS pairs (Fig. 7).
//
// A MIFO path is any AS sequence admissible hop-by-hop under the data-plane
// valley-free rule (Eq. 3) in which every hop uses a route actually present
// in the forwarding AS's BGP RIB (i.e. the next hop exports a route for the
// destination), and in which ASes without MIFO deployed forward only on
// their BGP default next hop.
//
// The count is a dynamic program over states (AS, tag-bit) — exactly the one
// bit the paper adds to packets:
//   f(v): #continuations from v with tag=1 (upstream was a customer, or v is
//         the traffic source);
//   g(v): #continuations with tag=0 (upstream was a peer or provider; Eq. 3
//         then admits only customer next hops).
// Because the provider/customer hierarchy is acyclic, f is evaluated
// providers-first and g customers-first; see DESIGN.md §5.2. Counts may
// exceed 2^64 on dense topologies, hence double.
#pragma once

#include <vector>

#include "bgp/route_store.hpp"
#include "topo/as_graph.hpp"

namespace mifo::bgp {

struct PathCounts {
  /// f — entry with tag=1; query point for a source AS.
  std::vector<double> tagged;
  /// g — entry with tag=0.
  std::vector<double> untagged;

  [[nodiscard]] double paths_from(AsId src) const {
    return tagged[src.value()];
  }
};

/// `deployed[i]` marks MIFO-capable ASes; pass all-true for 100% deployment.
/// `order` must be a providers-first topological order of the P/C digraph
/// (topo::pc_topological_order).
[[nodiscard]] PathCounts count_mifo_paths(const topo::AsGraph& g,
                                          const RouteStore& routes,
                                          const std::vector<AsId>& order,
                                          const std::vector<bool>& deployed);

}  // namespace mifo::bgp
