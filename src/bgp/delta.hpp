// Delta BGP route recomputation under churn (DESIGN.md §5.1b).
//
// `compute_routes` + `RouteStore` rebuild the converged state of one
// destination from scratch in O(E). Under continuous churn that is the wrong
// cost model: a single withdraw touches exactly one destination's tree, and
// a single session flap touches only the destinations that actually held a
// RIB row across the flapped edge. `DeltaRoutingTable` maintains one CSR
// `RouteStore` per tracked destination and, per routing event, re-runs the
// Gao–Rexford decision process only for the destinations whose best-route
// *assignment* the event can change; destinations where only a RIB row
// across the toggled edge (dis)appears get a cheap view-only patch, and
// every other destination keeps its existing segment, pointer-identical.
//
// Publication is epoch-swapped: each destination's converged state lives in
// an immutable `RouteSegment` behind a `std::atomic<std::shared_ptr<...>>`.
// A writer applying an event builds fresh segments off to the side and swaps
// them in one atomic store per destination, so concurrent readers (walk,
// MIRO, FluidSim route cache, verifier, sharded daemons) always observe a
// complete, internally consistent store — either wholly pre-event or wholly
// post-event for that destination. Cross-destination mixes of epochs are
// possible by design; every consumer in this codebase partitions its work
// per destination, which is exactly the granularity the swap protects.
//
// Per event each destination falls into one of three buckets, decided by
// O(1) tests against the pre-event segment (proofs in DESIGN.md §5.1b):
//
//   RECOMPUTE — the best-route assignment itself changes, so the Gao–
//     Rexford decision process re-runs from scratch.
//       Withdraw(o) / Reannounce(o): exactly {o}; per-destination state is
//         computed independently, so prefix events cannot touch any other
//         destination.
//       SessionDown(a,b): the edge lies in the best tree
//         (`best(a).next_hop == b || best(b).next_hop == a`). Removing a
//         non-tree edge only deletes candidates nobody elected, so the old
//         assignment stays the unique fixed point.
//       SessionUp(a,b): an endpoint would switch — the candidate route the
//         new session offers (`{classify(rel), best(exporter).path_len+1,
//         exporter}`) beats the endpoint's current best under the decision
//         order. The new edge creates candidates only *at* a and b, so if
//         neither endpoint switches no AS anywhere can.
//   PATCH — the assignment is provably unchanged but a RIB row across the
//     toggled edge appears or disappears. Every view is a pure function of
//     (graph, best assignment), so the segment is rebuilt by re-deriving
//     the views from the *reused* assignment on the new graph — no routing
//     computation. Tests: SessionDown(a,b) with a row across the edge in
//     either direction (`rib_from`); SessionUp(a,b) where a row would
//     appear (export rule + old-tree poisoning, `would_offer`) but neither
//     endpoint prefers it.
//   UNCHANGED — neither test fires; the segment is kept pointer-identical.
//     Poisoned or export-filtered offers can never beat an endpoint's best
//     (a poisoned offer is at least two hops longer within its class), so
//     skipping them in the tests above is sound.
//
// Stale-graph safety: an unchanged segment keeps the `AsGraph` version it
// was computed against (held alive via shared_ptr). `RouteStore::rib_from`
// returns nullopt for non-adjacent pairs, so a reader probing the toggled
// edge through a stale segment gets exactly the answer a fresh rebuild
// would give (the row exists in neither — otherwise the destination would
// have been recomputed).
//
// The from-scratch converge-then-rebuild path (`compute_routes`,
// `RouteStore(g, dest)`) is retained untouched as the differential oracle —
// the PR-1/PR-5/PR-9 pattern. `rebuild_full` exposes it per destination and
// `differential_check` compares every published segment against it;
// tests/bgp/test_route_delta_diff.cpp asserts element-identical views after
// every event of seeded churn sequences across 100 topologies.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bgp/route_store.hpp"
#include "bgp/routing.hpp"
#include "topo/as_graph.hpp"

namespace mifo::bgp {

/// One routing-plane event: prefix churn or an eBGP session toggling.
struct RouteEvent {
  enum class Kind : std::uint8_t {
    Withdraw,     ///< origin `a` withdraws its prefix
    Reannounce,   ///< origin `a` re-announces its prefix
    SessionDown,  ///< eBGP session `a`–`b` goes down (link event)
    SessionUp,    ///< eBGP session `a`–`b` comes back
  };

  Kind kind = Kind::Withdraw;
  AsId a = AsId::invalid();  ///< origin, or first session endpoint
  AsId b = AsId::invalid();  ///< second session endpoint (session events)

  [[nodiscard]] static RouteEvent withdraw(AsId origin) {
    return RouteEvent{Kind::Withdraw, origin, AsId::invalid()};
  }
  [[nodiscard]] static RouteEvent reannounce(AsId origin) {
    return RouteEvent{Kind::Reannounce, origin, AsId::invalid()};
  }
  [[nodiscard]] static RouteEvent session_down(AsId x, AsId y) {
    return RouteEvent{Kind::SessionDown, x, y};
  }
  [[nodiscard]] static RouteEvent session_up(AsId x, AsId y) {
    return RouteEvent{Kind::SessionUp, x, y};
  }

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] const char* to_string(RouteEvent::Kind k);

/// Per-event accounting: how much of the destination universe the delta
/// engine actually re-ran the decision process for (the bench headline is
/// events*destinations / sum(recomputed)). `recomputed + patched +
/// unchanged == destinations` on every applied event.
struct DeltaStats {
  bool applied = false;          ///< false: no-op (unknown origin, dup, …)
  std::size_t destinations = 0;  ///< tracked universe size
  std::size_t recomputed = 0;    ///< full Gao–Rexford decision re-runs
  std::size_t patched = 0;       ///< view-only republishes (assignment reused)
  std::size_t unchanged = 0;     ///< segments kept pointer-identical
  std::uint64_t epoch = 0;       ///< table epoch after the event
  /// Every destination whose published segment changed (recomputed ∪
  /// patched) — for consumers that invalidate downstream caches or dirty
  /// verification sets (verify::ChangeSet, sim::FluidSim::invalidate_routes).
  std::vector<AsId> touched_dests;
};

/// Immutable published unit: one destination's converged CSR store plus the
/// graph version it was computed against (kept alive for stale readers) and
/// the table epoch that produced it.
struct RouteSegment {
  std::shared_ptr<const topo::AsGraph> graph;
  RouteStore store;
  std::uint64_t epoch = 0;
};

/// Element-wise equality of every reader-visible view of two stores: best
/// routes, RIB rows, AS paths and reachability. The Euler-tour poisoning
/// intervals are a pure function of the best tree (compared via paths), and
/// RIB rows already encode the poisoning decisions.
[[nodiscard]] bool stores_identical(const RouteStore& a, const RouteStore& b);

/// Delta-maintained converged routing state for a fixed set of destination
/// ASes over a base topology with live prefix/session churn.
///
/// Threading: single writer (`apply`, `plant_stale`), any number of
/// concurrent readers through `segment()`. All other accessors are
/// writer-thread-only (they read the mutable withdrawn/disabled bookkeeping).
class DeltaRoutingTable {
 public:
  /// `base` must outlive the table. `dests` are the tracked destination
  /// ASes (duplicates ignored); every destination's initial segment is the
  /// from-scratch converged state on a private copy of `base`.
  DeltaRoutingTable(const topo::AsGraph& base, std::vector<AsId> dests);

  /// Applies one routing event: computes the affected destinations against
  /// the pre-event segments, recomputes only those, and epoch-swaps the new
  /// segments in. Idempotent on duplicates (withdraw of a withdrawn origin,
  /// down of a downed session) — those return applied = false.
  DeltaStats apply(const RouteEvent& ev);

  /// Lock-free reader entry point: the currently published segment for
  /// `dest` (nullptr when `dest` is not tracked). The shared_ptr keeps the
  /// segment and its graph version alive for as long as the reader holds it.
  [[nodiscard]] std::shared_ptr<const RouteSegment> segment(AsId dest) const;

  [[nodiscard]] std::span<const AsId> destinations() const { return dests_; }
  [[nodiscard]] bool tracks(AsId dest) const;
  [[nodiscard]] bool withdrawn(AsId origin) const;
  [[nodiscard]] bool session_disabled(AsId x, AsId y) const;
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Current masked graph version (base minus downed sessions).
  [[nodiscard]] const std::shared_ptr<const topo::AsGraph>& graph() const {
    return current_;
  }

  /// The retained from-scratch oracle: converge-and-rebuild `dest` on the
  /// current masked graph (an all-invalid store when withdrawn). The result
  /// references `graph()` — use before the next session event.
  [[nodiscard]] RouteStore rebuild_full(AsId dest) const;

  /// Compares every published segment against `rebuild_full` and returns
  /// the mismatching destinations (empty on a correct implementation). The
  /// chaos engine's differential verify mode runs this at every snapshot.
  [[nodiscard]] std::vector<AsId> differential_check() const;

  /// TEST ONLY — the planted-staleness negative control: the next apply()
  /// that would recompute `dest` skips the recompute and leaves the stale
  /// segment published (stats still claim the work happened, as a buggy
  /// delta engine's would). differential_check must catch it.
  void plant_stale(AsId dest) { stale_next_ = dest; }

 private:
  [[nodiscard]] std::size_t index_of(AsId dest) const;
  [[nodiscard]] std::shared_ptr<const topo::AsGraph> build_masked() const;
  /// Consumes the planted-staleness control for dests_[idx]: true when the
  /// pending republish/patch must be skipped (leaving the stale segment).
  [[nodiscard]] bool consume_stale(std::size_t idx);
  /// Builds and swaps in the current converged segment for dests_[idx]
  /// (honors the planted-staleness control).
  void republish(std::size_t idx);
  /// View-only republish: rebuilds dests_[idx]'s segment on the current
  /// graph from the best assignment of the published segment — the PATCH
  /// bucket, no decision-process run (honors the staleness control too, so
  /// a buggy "forgot to patch" engine is equally catchable).
  void patch(std::size_t idx);
  /// Would `importer` hold a RIB row from `exporter` were the session up,
  /// judged under `seg`'s (pre-event) tree? Relationship from the base
  /// graph — stale segment graphs may predate the session.
  [[nodiscard]] bool would_offer(const RouteSegment& seg, AsId importer,
                                 AsId exporter) const;
  /// Would `importer` *switch its best route* onto a fresh session from
  /// `exporter`? True iff the session would offer a row and that candidate
  /// beats `importer`'s current best under the decision order.
  [[nodiscard]] bool would_prefer(const RouteSegment& seg, AsId importer,
                                  AsId exporter) const;

  const topo::AsGraph* base_;
  std::shared_ptr<const topo::AsGraph> current_;
  std::vector<AsId> dests_;
  std::vector<std::int32_t> dest_index_;  ///< AS id -> dests_ index or -1
  std::vector<std::atomic<std::shared_ptr<const RouteSegment>>> segments_;
  std::vector<AsId> withdrawn_;
  std::vector<std::pair<AsId, AsId>> disabled_;  ///< normalized (min,max)
  std::uint64_t epoch_ = 0;
  AsId stale_next_ = AsId::invalid();
};

}  // namespace mifo::bgp
