#include "bgp/ibgp.hpp"

#include "common/contracts.hpp"

namespace mifo::bgp {

namespace {
std::uint64_t key(AsId as, AsId neighbor) {
  return (static_cast<std::uint64_t>(as.value()) << 32) | neighbor.value();
}
}  // namespace

IbgpPlan::IbgpPlan(const topo::AsGraph& g, const std::vector<bool>& expand) {
  MIFO_EXPECTS(expand.size() == g.num_ases());
  expanded_ = expand;
  per_as_.resize(g.num_ases());
  for (std::size_t i = 0; i < g.num_ases(); ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    if (expand[i]) {
      for (const auto& nb : g.neighbors(as)) {
        const RouterId id(static_cast<std::uint32_t>(routers_.size()));
        routers_.push_back(BorderRouter{id, as, nb.as});
        per_as_[i].push_back(id);
        border_index_.emplace(key(as, nb.as), id);
      }
      // A degenerate expanded AS with no neighbors still needs one router.
      if (per_as_[i].empty()) {
        const RouterId id(static_cast<std::uint32_t>(routers_.size()));
        routers_.push_back(BorderRouter{id, as, AsId::invalid()});
        per_as_[i].push_back(id);
      }
    } else {
      const RouterId id(static_cast<std::uint32_t>(routers_.size()));
      routers_.push_back(BorderRouter{id, as, AsId::invalid()});
      per_as_[i].push_back(id);
    }
  }
}

const BorderRouter& IbgpPlan::router(RouterId id) const {
  MIFO_EXPECTS(id.value() < routers_.size());
  return routers_[id.value()];
}

const std::vector<RouterId>& IbgpPlan::routers_of(AsId as) const {
  MIFO_EXPECTS(as.value() < per_as_.size());
  return per_as_[as.value()];
}

RouterId IbgpPlan::border_towards(AsId as, AsId neighbor) const {
  MIFO_EXPECTS(as.value() < per_as_.size());
  if (!expanded_[as.value()]) return per_as_[as.value()].front();
  const auto it = border_index_.find(key(as, neighbor));
  MIFO_EXPECTS(it != border_index_.end());
  return it->second;
}

std::vector<RouterId> IbgpPlan::ibgp_peers(RouterId id) const {
  const BorderRouter& r = router(id);
  std::vector<RouterId> peers;
  for (RouterId other : per_as_[r.as.value()]) {
    if (other != id) peers.push_back(other);
  }
  return peers;
}

bool IbgpPlan::expanded(AsId as) const {
  MIFO_EXPECTS(as.value() < expanded_.size());
  return expanded_[as.value()];
}

}  // namespace mifo::bgp
