#include "bgp/path_count.hpp"

#include "common/contracts.hpp"

namespace mifo::bgp {

namespace {

/// True when `as` holds a customer route (or originates the prefix) — the
/// condition under which it exports towards peers and providers, and the
/// only kind of AS a Flat/Down step may enter.
bool exports_upward(const DestRoutes& routes, AsId as) {
  const RouteClass c = routes.best(as).cls;
  return c == RouteClass::Customer || c == RouteClass::Self;
}

/// Best-path chains for BGP loop detection: chains[v] lists the ASes on
/// v's announced (best) path, v first. An AS on a neighbor's chain never
/// receives that announcement.
std::vector<std::vector<std::uint32_t>> best_chains(
    const topo::AsGraph& g, const DestRoutes& routes) {
  std::vector<std::vector<std::uint32_t>> chains(g.num_ases());
  for (std::uint32_t v = 0; v < g.num_ases(); ++v) {
    if (!routes.best(AsId(v)).valid()) continue;
    AsId hop(v);
    chains[v].push_back(hop.value());
    while (hop != routes.dest()) {
      hop = routes.best(hop).next_hop;
      chains[v].push_back(hop.value());
    }
  }
  return chains;
}

bool poisoned(const std::vector<std::uint32_t>& chain, AsId importer) {
  for (const std::uint32_t hop : chain) {
    if (hop == importer.value()) return true;
  }
  return false;
}

}  // namespace

PathCounts count_mifo_paths(const topo::AsGraph& g, const DestRoutes& routes,
                            const std::vector<AsId>& order,
                            const std::vector<bool>& deployed) {
  const std::size_t n = g.num_ases();
  MIFO_EXPECTS(order.size() == n);
  MIFO_EXPECTS(deployed.size() == n);
  MIFO_EXPECTS(routes.num_ases() == n);
  const AsId dest = routes.dest();

  PathCounts pc;
  pc.tagged.assign(n, 0.0);
  pc.untagged.assign(n, 0.0);
  const auto chains = best_chains(g, routes);

  // ---- g (tag = 0): only Down steps remain; customers precede providers
  // in the evaluation, i.e. reverse topological order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const AsId v = *it;
    if (v == dest) {
      pc.untagged[v.value()] = 1.0;
      continue;
    }
    double total = 0.0;
    if (deployed[v.value()]) {
      for (const auto& nb : g.neighbors(v)) {
        if (nb.rel != topo::Rel::Customer) continue;
        if (!exports_upward(routes, nb.as)) continue;
        if (poisoned(chains[nb.as.value()], v)) continue;
        total += pc.untagged[nb.as.value()];
      }
    } else {
      const Route& r = routes.best(v);
      if (r.cls == RouteClass::Customer) total = pc.untagged[r.next_hop.value()];
    }
    pc.untagged[v.value()] = total;
  }

  // ---- f (tag = 1): Up steps recurse into providers' f, so providers are
  // evaluated first (forward topological order). Flat/Down steps drop to g.
  for (const AsId v : order) {
    if (v == dest) {
      pc.tagged[v.value()] = 1.0;
      continue;
    }
    double total = 0.0;
    if (deployed[v.value()]) {
      for (const auto& nb : g.neighbors(v)) {
        if (poisoned(chains[nb.as.value()], v)) continue;  // loop detection
        switch (nb.rel) {
          case topo::Rel::Provider:
            // The provider exports everything to us; f(p)=0 iff it has no
            // realizable continuation, contributing nothing.
            total += pc.tagged[nb.as.value()];
            break;
          case topo::Rel::Peer:
          case topo::Rel::Customer:
            if (exports_upward(routes, nb.as)) {
              total += pc.untagged[nb.as.value()];
            }
            break;
        }
      }
    } else {
      const Route& r = routes.best(v);
      switch (r.cls) {
        case RouteClass::Customer:
        case RouteClass::Peer:
          total = pc.untagged[r.next_hop.value()];
          break;
        case RouteClass::Provider:
          total = pc.tagged[r.next_hop.value()];
          break;
        case RouteClass::Self:
        case RouteClass::None:
          total = 0.0;
          break;
      }
    }
    pc.tagged[v.value()] = total;
  }

  return pc;
}

}  // namespace mifo::bgp
