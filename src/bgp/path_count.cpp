#include "bgp/path_count.hpp"

#include "common/contracts.hpp"

namespace mifo::bgp {

namespace {

/// True when `as` holds a customer route (or originates the prefix) — the
/// condition under which it exports towards peers and providers, and the
/// only kind of AS a Flat/Down step may enter.
bool exports_upward(const RouteStore& routes, AsId as) {
  const RouteClass c = routes.best(as).cls;
  return c == RouteClass::Customer || c == RouteClass::Self;
}

}  // namespace

PathCounts count_mifo_paths(const topo::AsGraph& g, const RouteStore& routes,
                            const std::vector<AsId>& order,
                            const std::vector<bool>& deployed) {
  const std::size_t n = g.num_ases();
  MIFO_EXPECTS(order.size() == n);
  MIFO_EXPECTS(deployed.size() == n);
  MIFO_EXPECTS(routes.num_ases() == n);
  const AsId dest = routes.dest();

  PathCounts pc;
  pc.tagged.assign(n, 0.0);
  pc.untagged.assign(n, 0.0);

  // ---- g (tag = 0): only Down steps remain; customers precede providers
  // in the evaluation, i.e. reverse topological order.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const AsId v = *it;
    if (v == dest) {
      pc.untagged[v.value()] = 1.0;
      continue;
    }
    double total = 0.0;
    if (deployed[v.value()]) {
      for (const auto& nb : g.neighbors(v)) {
        if (nb.rel != topo::Rel::Customer) continue;
        if (!exports_upward(routes, nb.as)) continue;
        if (routes.on_best_path(v, nb.as)) continue;
        total += pc.untagged[nb.as.value()];
      }
    } else {
      const Route& r = routes.best(v);
      if (r.cls == RouteClass::Customer) total = pc.untagged[r.next_hop.value()];
    }
    pc.untagged[v.value()] = total;
  }

  // ---- f (tag = 1): Up steps recurse into providers' f, so providers are
  // evaluated first (forward topological order). Flat/Down steps drop to g.
  for (const AsId v : order) {
    if (v == dest) {
      pc.tagged[v.value()] = 1.0;
      continue;
    }
    double total = 0.0;
    if (deployed[v.value()]) {
      for (const auto& nb : g.neighbors(v)) {
        if (routes.on_best_path(v, nb.as)) continue;  // loop detection
        switch (nb.rel) {
          case topo::Rel::Provider:
            // The provider exports everything to us; f(p)=0 iff it has no
            // realizable continuation, contributing nothing.
            total += pc.tagged[nb.as.value()];
            break;
          case topo::Rel::Peer:
          case topo::Rel::Customer:
            if (exports_upward(routes, nb.as)) {
              total += pc.untagged[nb.as.value()];
            }
            break;
        }
      }
    } else {
      const Route& r = routes.best(v);
      switch (r.cls) {
        case RouteClass::Customer:
        case RouteClass::Peer:
          total = pc.untagged[r.next_hop.value()];
          break;
        case RouteClass::Provider:
          total = pc.tagged[r.next_hop.value()];
          break;
        case RouteClass::Self:
        case RouteClass::None:
          total = 0.0;
          break;
      }
    }
    pc.tagged[v.value()] = total;
  }

  return pc;
}

}  // namespace mifo::bgp
