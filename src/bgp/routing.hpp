// Gao–Rexford interdomain route computation.
//
// For one destination AS the converged BGP state over the whole topology is
// computed in three linear phases (customer routes, peer routes, provider
// routes); see DESIGN.md §5.1. From the converged best routes the per-
// neighbor RIB view (what each neighbor exports to us — MIFO's source of
// alternative paths) is derived with zero extra state.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "bgp/route.hpp"
#include "topo/as_graph.hpp"

namespace mifo::bgp {

/// Converged routing state towards a single destination AS.
class DestRoutes {
 public:
  DestRoutes(AsId dest, std::vector<Route> best)
      : dest_(dest), best_(std::move(best)) {}

  [[nodiscard]] AsId dest() const { return dest_; }

  /// The AS's best (default) route; `cls == Self` at the destination itself
  /// and `None` where the destination is unreachable.
  [[nodiscard]] const Route& best(AsId as) const;

  /// Read-only view of every AS's best route, indexed by AS id — the
  /// static verifier's bulk-introspection hook (no copies).
  [[nodiscard]] std::span<const Route> all() const { return best_; }

  [[nodiscard]] std::size_t num_ases() const { return best_.size(); }

 private:
  AsId dest_;
  std::vector<Route> best_;
};

/// Computes converged Gao–Rexford routes towards `dest`. O(E).
[[nodiscard]] DestRoutes compute_routes(const topo::AsGraph& g, AsId dest);

/// The route `as` holds in its RIB from neighbor `neighbor` — i.e. what the
/// neighbor exports to `as` (its best route, subject to the export rule),
/// reclassified from `as`'s perspective. nullopt when the neighbor exports
/// nothing for this destination.
[[nodiscard]] std::optional<Route> rib_route_from(const topo::AsGraph& g,
                                                  const DestRoutes& routes,
                                                  AsId as, AsId neighbor);

/// All RIB entries of `as` towards the destination, one per exporting
/// neighbor, sorted best-first by the decision process.
[[nodiscard]] std::vector<Route> rib_of(const topo::AsGraph& g,
                                        const DestRoutes& routes, AsId as);

/// The default forwarding path from `src` to the destination (sequence of
/// ASes including both endpoints); empty when unreachable.
[[nodiscard]] std::vector<AsId> as_path(const topo::AsGraph& g,
                                        const DestRoutes& routes, AsId src);

/// Convenience: number of ASes that can reach `dest` at all.
[[nodiscard]] std::size_t reachable_count(const DestRoutes& routes);

}  // namespace mifo::bgp
