#include "bgp/routing.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/contracts.hpp"

namespace mifo::bgp {

namespace {
constexpr std::uint16_t kInf = std::numeric_limits<std::uint16_t>::max();
}

const Route& DestRoutes::best(AsId as) const {
  MIFO_EXPECTS(as.value() < best_.size());
  return best_[as.value()];
}

DestRoutes compute_routes(const topo::AsGraph& g, AsId dest) {
  MIFO_EXPECTS(dest.value() < g.num_ases());
  const std::size_t n = g.num_ases();
  std::vector<Route> best(n);

  // ----- Phase 1: customer routes (BFS from dest along provider edges). ---
  // custlen[u] = length of u's shortest all-downhill path to dest.
  std::vector<std::uint16_t> custlen(n, kInf);
  custlen[dest.value()] = 0;
  std::deque<std::uint32_t> queue{dest.value()};
  while (!queue.empty()) {
    const AsId u(queue.front());
    queue.pop_front();
    for (const auto& nb : g.neighbors(u)) {
      if (nb.rel != topo::Rel::Provider) continue;  // u's provider learns it
      if (custlen[nb.as.value()] == kInf) {
        custlen[nb.as.value()] =
            static_cast<std::uint16_t>(custlen[u.value()] + 1);
        queue.push_back(nb.as.value());
      }
    }
  }
  // Select the lowest-id customer next hop on a shortest downhill path.
  for (std::size_t i = 0; i < n; ++i) {
    if (custlen[i] == kInf || i == dest.value()) continue;
    const AsId u(static_cast<std::uint32_t>(i));
    AsId pick = AsId::invalid();
    for (const auto& nb : g.neighbors(u)) {
      if (nb.rel != topo::Rel::Customer) continue;
      if (custlen[nb.as.value()] != kInf &&
          custlen[nb.as.value()] + 1 == custlen[i]) {
        if (!pick.valid() || nb.as < pick) pick = nb.as;
      }
    }
    MIFO_ASSERT(pick.valid());
    best[i] = Route{RouteClass::Customer, custlen[i], pick};
  }
  best[dest.value()] = Route{RouteClass::Self, 0, dest};

  // ----- Phase 2: peer routes (one peering hop off the customer cone). ----
  for (std::size_t i = 0; i < n; ++i) {
    if (best[i].valid()) continue;  // customer route (or dest) wins
    const AsId u(static_cast<std::uint32_t>(i));
    Route cand;
    for (const auto& nb : g.neighbors(u)) {
      if (nb.rel != topo::Rel::Peer) continue;
      // The peer exports only its own prefix or a customer route.
      if (custlen[nb.as.value()] == kInf) continue;
      const Route offer{RouteClass::Peer,
                        static_cast<std::uint16_t>(custlen[nb.as.value()] + 1),
                        nb.as};
      if (offer.better_than(cand)) cand = offer;
    }
    if (cand.valid()) best[i] = cand;
  }

  // ----- Phase 3: provider routes (bucketed BFS down the hierarchy). ------
  // Every AS holding any route exports it to its customers; unrouted ASes
  // adopt the shortest such offer (lowest next-hop id on ties). Seeded
  // routes (customer/peer/self) are final and are never displaced: class
  // preference dominates length.
  std::vector<std::vector<std::uint32_t>> buckets;
  auto bucket_push = [&buckets](std::size_t len, std::uint32_t as) {
    if (buckets.size() <= len) buckets.resize(len + 1);
    buckets[len].push_back(as);
  };
  std::vector<std::uint16_t> provlen(n, kInf);
  std::vector<AsId> provhop(n, AsId::invalid());
  for (std::size_t i = 0; i < n; ++i) {
    if (best[i].valid()) bucket_push(best[i].path_len, static_cast<std::uint32_t>(i));
  }
  for (std::size_t len = 0; len < buckets.size(); ++len) {
    for (std::size_t qi = 0; qi < buckets[len].size(); ++qi) {
      const std::uint32_t v = buckets[len][qi];
      // Skip stale queue entries (a shorter offer was finalized earlier).
      const std::uint16_t vlen =
          best[v].valid() ? best[v].path_len : provlen[v];
      if (vlen != len) continue;
      if (!best[v].valid()) {
        best[v] = Route{RouteClass::Provider, provlen[v], provhop[v]};
      }
      for (const auto& nb : g.neighbors(AsId(v))) {
        if (nb.rel != topo::Rel::Customer) continue;  // export downward only
        const std::uint32_t w = nb.as.value();
        if (best[w].valid()) continue;  // has a preferred-class route
        const auto cand_len = static_cast<std::uint16_t>(len + 1);
        if (cand_len < provlen[w] ||
            (cand_len == provlen[w] && AsId(v) < provhop[w])) {
          provlen[w] = cand_len;
          provhop[w] = AsId(v);
          bucket_push(cand_len, w);
        }
      }
    }
  }

  return DestRoutes(dest, std::move(best));
}

std::optional<Route> rib_route_from(const topo::AsGraph& g,
                                    const DestRoutes& routes, AsId as,
                                    AsId neighbor) {
  const auto rel_to_as = g.rel(as, neighbor);  // what neighbor is to `as`
  MIFO_EXPECTS(rel_to_as.has_value());
  const Route& offer = routes.best(neighbor);
  if (!offer.valid()) return std::nullopt;
  // What `as` is to the neighbor decides whether the neighbor exports.
  const topo::Rel as_is_to_neighbor = topo::reverse(*rel_to_as);
  if (!may_export(offer.cls, as_is_to_neighbor)) return std::nullopt;
  // BGP loop detection: an announcement whose AS path already contains the
  // importer is rejected on arrival, so it never reaches `as`'s RIB. The
  // neighbor's announced path is its best chain; walk it.
  AsId hop = neighbor;
  while (hop != routes.dest()) {
    hop = routes.best(hop).next_hop;
    if (hop == as) return std::nullopt;  // poisoned
  }
  return Route{classify(*rel_to_as),
               static_cast<std::uint16_t>(offer.path_len + 1), neighbor};
}

std::vector<Route> rib_of(const topo::AsGraph& g, const DestRoutes& routes,
                          AsId as) {
  std::vector<Route> rib;
  if (as == routes.dest()) return rib;
  for (const auto& nb : g.neighbors(as)) {
    if (auto r = rib_route_from(g, routes, as, nb.as)) rib.push_back(*r);
  }
  std::sort(rib.begin(), rib.end(),
            [](const Route& a, const Route& b) { return a.better_than(b); });
  return rib;
}

std::vector<AsId> as_path(const topo::AsGraph& g, const DestRoutes& routes,
                          AsId src) {
  (void)g;
  std::vector<AsId> path;
  if (!routes.best(src).valid()) return path;
  AsId cur = src;
  path.push_back(cur);
  while (cur != routes.dest()) {
    const Route& r = routes.best(cur);
    MIFO_ASSERT(r.valid());
    cur = r.next_hop;
    path.push_back(cur);
    MIFO_ASSERT(path.size() <= routes.num_ases() + 1);  // loop guard
  }
  return path;
}

std::size_t reachable_count(const DestRoutes& routes) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < routes.num_ases(); ++i) {
    if (routes.best(AsId(static_cast<std::uint32_t>(i))).valid()) ++n;
  }
  return n;
}

}  // namespace mifo::bgp
