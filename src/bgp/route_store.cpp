#include "bgp/route_store.hpp"

#include <algorithm>
#include <utility>

#include "common/contracts.hpp"

namespace mifo::bgp {

RouteStore::RouteStore(const topo::AsGraph& g, AsId dest)
    : RouteStore(g, compute_routes(g, dest)) {}

RouteStore::RouteStore(const topo::AsGraph& g, const DestRoutes& routes)
    : g_(&g), dest_(routes.dest()) {
  MIFO_EXPECTS(routes.num_ases() == g.num_ases());
  build(routes);
}

const Route& RouteStore::best(AsId as) const {
  MIFO_EXPECTS(as.value() < best_.size());
  return best_[as.value()];
}

std::span<const Route> RouteStore::rib(AsId as) const {
  MIFO_EXPECTS(as.value() < best_.size());
  return {rib_.data() + rib_off_[as.value()],
          rib_off_[as.value() + 1] - rib_off_[as.value()]};
}

std::span<const AsId> RouteStore::path(AsId src) const {
  MIFO_EXPECTS(src.value() < best_.size());
  return {path_nodes_.data() + path_off_[src.value()],
          path_off_[src.value() + 1] - path_off_[src.value()]};
}

bool RouteStore::on_best_path(AsId as, AsId of) const {
  MIFO_EXPECTS(as.value() < best_.size() && of.value() < best_.size());
  if (!best_[as.value()].valid() || !best_[of.value()].valid()) return false;
  return tin_[as.value()] <= tin_[of.value()] &&
         tout_[of.value()] <= tout_[as.value()];
}

std::optional<Route> RouteStore::rib_from(AsId as, AsId neighbor) const {
  const auto rel_to_as = g_->rel(as, neighbor);  // what neighbor is to `as`
  // Non-adjacent (on the graph this store was built against) exports
  // nothing. Delta segments (bgp/delta.hpp) may outlive a session toggle,
  // so a reader probing the toggled edge through a stale segment must get
  // the same nullopt a fresh rebuild would produce, not an abort.
  if (!rel_to_as.has_value()) return std::nullopt;
  const Route& offer = best_[neighbor.value()];
  if (!offer.valid()) return std::nullopt;
  if (!may_export(offer.cls, topo::reverse(*rel_to_as))) return std::nullopt;
  // BGP loop poisoning: the neighbor's announced AS path is its best chain
  // (neighbor..dest inclusive); `as` rejects the announcement iff it appears
  // on it. Ancestor-or-self in the best-route tree, O(1) via Euler tour.
  if (on_best_path(as, neighbor)) return std::nullopt;
  return Route{classify(*rel_to_as),
               static_cast<std::uint16_t>(offer.path_len + 1), neighbor};
}

std::size_t RouteStore::bytes() const {
  return best_.size() * sizeof(Route) + rib_.size() * sizeof(Route) +
         rib_off_.size() * sizeof(std::uint32_t) +
         path_off_.size() * sizeof(std::uint32_t) +
         path_nodes_.size() * sizeof(AsId) +
         (tin_.size() + tout_.size()) * sizeof(std::uint32_t);
}

void RouteStore::build(const DestRoutes& routes) {
  const std::size_t n = routes.num_ases();
  const auto all = routes.all();
  best_.assign(all.begin(), all.end());
  for (const Route& r : best_) {
    if (r.valid()) ++reachable_;
  }

  // ---- Euler tour of the best-route tree (children CSR, then DFS). -------
  tin_.assign(n, 0);
  tout_.assign(n, 0);
  std::vector<std::uint32_t> child_off(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (best_[i].valid() && AsId(static_cast<std::uint32_t>(i)) != dest_) {
      ++child_off[best_[i].next_hop.value() + 1];
    }
  }
  for (std::size_t i = 0; i < n; ++i) child_off[i + 1] += child_off[i];
  std::vector<std::uint32_t> children(child_off[n]);
  {
    std::vector<std::uint32_t> cursor(child_off.begin(), child_off.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      if (best_[i].valid() && AsId(static_cast<std::uint32_t>(i)) != dest_) {
        children[cursor[best_[i].next_hop.value()]++] =
            static_cast<std::uint32_t>(i);
      }
    }
  }
  if (n > 0 && best_[dest_.value()].valid()) {
    std::uint32_t timer = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;
    stack.reserve(64);
    tin_[dest_.value()] = ++timer;
    stack.emplace_back(dest_.value(), child_off[dest_.value()]);
    while (!stack.empty()) {
      const auto [v, cur] = stack.back();
      if (cur < child_off[v + 1]) {
        ++stack.back().second;
        const std::uint32_t c = children[cur];
        tin_[c] = ++timer;
        stack.emplace_back(c, child_off[c]);
      } else {
        tout_[v] = timer;
        stack.pop_back();
      }
    }
    MIFO_ASSERT(timer == reachable_);  // every reachable AS visited once
  } else {
    // Withdrawn-prefix snapshot (bgp/delta.hpp): the origin itself has no
    // route, so nothing may be reachable and every view stays empty.
    MIFO_ASSERT(reachable_ == 0);
  }

  // ---- Path CSR: one chain walk per reachable AS. ------------------------
  path_off_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    path_off_[i + 1] = path_off_[i] +
                       (best_[i].valid() ? best_[i].path_len + 1u : 0u);
  }
  path_nodes_.resize(path_off_[n]);
  for (std::size_t i = 0; i < n; ++i) {
    if (!best_[i].valid()) continue;
    std::uint32_t at = path_off_[i];
    AsId cur(static_cast<std::uint32_t>(i));
    path_nodes_[at++] = cur;
    while (cur != dest_) {
      cur = best_[cur.value()].next_hop;
      path_nodes_[at++] = cur;
    }
    MIFO_ASSERT(at == path_off_[i + 1]);  // path_len matches chain length
  }

  // ---- RIB CSR: count, offset, fill, then sort each row best-first. ------
  rib_off_.assign(n + 1, 0);
  auto offered = [this](AsId as, const topo::Neighbor& nb) -> std::optional<Route> {
    const Route& offer = best_[nb.as.value()];
    if (!offer.valid()) return std::nullopt;
    if (!may_export(offer.cls, topo::reverse(nb.rel))) return std::nullopt;
    if (on_best_path(as, nb.as)) return std::nullopt;  // poisoned
    return Route{classify(nb.rel),
                 static_cast<std::uint16_t>(offer.path_len + 1), nb.as};
  };
  for (std::size_t i = 0; i < n; ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    if (as == dest_) continue;  // the destination imports nothing
    std::uint32_t count = 0;
    for (const auto& nb : g_->neighbors(as)) {
      if (offered(as, nb)) ++count;
    }
    rib_off_[i + 1] = count;
  }
  for (std::size_t i = 0; i < n; ++i) rib_off_[i + 1] += rib_off_[i];
  rib_.resize(rib_off_[n]);
  for (std::size_t i = 0; i < n; ++i) {
    const AsId as(static_cast<std::uint32_t>(i));
    if (as == dest_) continue;
    std::uint32_t at = rib_off_[i];
    for (const auto& nb : g_->neighbors(as)) {
      if (const auto r = offered(as, nb)) rib_[at++] = *r;
    }
    MIFO_ASSERT(at == rib_off_[i + 1]);
    std::sort(rib_.begin() + rib_off_[i], rib_.begin() + rib_off_[i + 1],
              [](const Route& a, const Route& b) { return a.better_than(b); });
  }
}

}  // namespace mifo::bgp
