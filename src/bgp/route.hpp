// BGP route representation and the Gao–Rexford decision process.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "topo/relationship.hpp"

namespace mifo::bgp {

/// Route class by the relationship of the neighbor the route was learned
/// from. Lower enum value = more preferred (the paper's standard selection:
/// customer > peer > provider).
enum class RouteClass : std::uint8_t {
  Customer = 0,
  Peer = 1,
  Provider = 2,
  Self = 3,  ///< the AS originates the destination prefix itself
  None = 4,
};

[[nodiscard]] constexpr RouteClass classify(topo::Rel neighbor_rel) {
  switch (neighbor_rel) {
    case topo::Rel::Customer:
      return RouteClass::Customer;
    case topo::Rel::Peer:
      return RouteClass::Peer;
    case topo::Rel::Provider:
      return RouteClass::Provider;
  }
  return RouteClass::None;  // unreachable
}

[[nodiscard]] constexpr const char* to_string(RouteClass c) {
  switch (c) {
    case RouteClass::Customer:
      return "customer";
    case RouteClass::Peer:
      return "peer";
    case RouteClass::Provider:
      return "provider";
    case RouteClass::Self:
      return "self";
    case RouteClass::None:
      return "none";
  }
  return "?";
}

/// A single RIB entry: the route towards one destination learned from one
/// neighbor. `path_len` counts AS hops (dest's own route has length 0).
struct Route {
  RouteClass cls = RouteClass::None;
  std::uint16_t path_len = 0;
  AsId next_hop = AsId::invalid();

  [[nodiscard]] constexpr bool valid() const {
    return cls != RouteClass::None;
  }

  /// Gao–Rexford decision process: class, then shortest AS path, then the
  /// lowest next-hop AS id (the paper's two tie-breakers, Section IV-A).
  [[nodiscard]] constexpr bool better_than(const Route& other) const {
    if (!valid()) return false;
    if (!other.valid()) return true;
    if (cls != other.cls) return cls < other.cls;
    if (path_len != other.path_len) return path_len < other.path_len;
    return next_hop < other.next_hop;
  }

  friend constexpr bool operator==(const Route&, const Route&) = default;
};

/// Inverse of `classify` for RIB entries: the relationship of the neighbor a
/// route of this class was learned over. Only meaningful for routes that
/// actually sit in a RIB (Customer/Peer/Provider).
[[nodiscard]] constexpr topo::Rel rel_of(RouteClass c) {
  switch (c) {
    case RouteClass::Customer:
      return topo::Rel::Customer;
    case RouteClass::Provider:
      return topo::Rel::Provider;
    default:
      return topo::Rel::Peer;
  }
}

/// Export rule (valley-free economics, Gao & Rexford): a route may be
/// exported to a customer always; to a peer or provider only if it is a
/// customer route or the exporter originates the prefix.
[[nodiscard]] constexpr bool may_export(RouteClass route_cls,
                                        topo::Rel importer_rel) {
  if (!(route_cls == RouteClass::Customer || route_cls == RouteClass::Peer ||
        route_cls == RouteClass::Provider || route_cls == RouteClass::Self)) {
    return false;
  }
  if (importer_rel == topo::Rel::Customer) return true;  // export everything
  return route_cls == RouteClass::Customer || route_cls == RouteClass::Self;
}

}  // namespace mifo::bgp
