// Router-level expansion of selected ASes (the paper expands tier-1 ASes:
// one border router per inter-AS adjacency, full iBGP mesh inside the AS).
//
// The plan is a pure description — the packet-level data plane and the
// testbed builder consume it to instantiate Router objects and links.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "topo/as_graph.hpp"

namespace mifo::bgp {

struct BorderRouter {
  RouterId id;
  AsId as;                            ///< owning AS
  AsId external_neighbor;             ///< the eBGP-adjacent AS, or invalid()
                                      ///< for a collapsed single-router AS
};

class IbgpPlan {
 public:
  /// `expand[i]` selects ASes that get one border router per adjacency plus
  /// a full iBGP mesh; other ASes collapse to a single router.
  IbgpPlan(const topo::AsGraph& g, const std::vector<bool>& expand);

  [[nodiscard]] std::size_t num_routers() const { return routers_.size(); }
  [[nodiscard]] const BorderRouter& router(RouterId id) const;
  [[nodiscard]] const std::vector<RouterId>& routers_of(AsId as) const;

  /// The border router of `as` that faces `neighbor` (the eBGP speaker for
  /// that adjacency). For collapsed ASes this is the AS's single router.
  [[nodiscard]] RouterId border_towards(AsId as, AsId neighbor) const;

  /// iBGP peers of a router = all other routers of the same AS (full mesh).
  [[nodiscard]] std::vector<RouterId> ibgp_peers(RouterId id) const;

  [[nodiscard]] bool expanded(AsId as) const;

 private:
  std::vector<BorderRouter> routers_;
  std::vector<std::vector<RouterId>> per_as_;
  std::vector<bool> expanded_;
  std::unordered_map<std::uint64_t, RouterId> border_index_;
};

}  // namespace mifo::bgp
