// Compressed-sparse-row route storage for one destination.
//
// `DestRoutes` plus the derived views (`rib_of`, `rib_route_from`, `as_path`)
// are the semantic reference, but they hand out a freshly allocated vector on
// every call. `RouteStore` flattens the converged state into CSR arrays built
// in one pass — per-AS best routes, every per-neighbor RIB row (values +
// column indices + row offsets, rows pre-sorted best-first), and every
// reconstructed AS path — so consumers get `std::span` views into one
// contiguous block and the poisoning test behind `rib_route_from` becomes an
// O(1) Euler-tour ancestor check instead of a best-chain walk.
//
// The legacy `DestRoutes` API is retained as the differential-test oracle
// (tests/bgp/test_route_store_diff.cpp asserts element-identical views), the
// same pattern `MaxMinWorkspace` uses against `max_min_rates_reference`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/route.hpp"
#include "bgp/routing.hpp"
#include "topo/as_graph.hpp"

namespace mifo::bgp {

/// Flat, immutable snapshot of the converged routing state towards one
/// destination: best routes, full RIB views, and AS paths in CSR form.
class RouteStore {
 public:
  /// Computes `compute_routes(g, dest)` and flattens it.
  RouteStore(const topo::AsGraph& g, AsId dest);

  /// Flattens an already-computed `DestRoutes` (the oracle input form). An
  /// all-invalid `DestRoutes` represents a withdrawn prefix (bgp/delta.hpp):
  /// the store builds with every view empty and num_reachable() == 0.
  RouteStore(const topo::AsGraph& g, const DestRoutes& routes);

  [[nodiscard]] AsId dest() const { return dest_; }
  [[nodiscard]] std::size_t num_ases() const { return best_.size(); }

  /// The AS's best (default) route; `cls == Self` at the destination itself
  /// and `None` where the destination is unreachable.
  [[nodiscard]] const Route& best(AsId as) const;

  /// Every AS's best route, indexed by AS id.
  [[nodiscard]] std::span<const Route> all_best() const { return best_; }

  /// All RIB entries of `as`, one per exporting neighbor, sorted best-first
  /// by the decision process — element-identical to `rib_of`. The entry's
  /// `next_hop` is the CSR column index (the exporting neighbor).
  [[nodiscard]] std::span<const Route> rib(AsId as) const;

  /// The route `as` holds from `neighbor` (export rule + loop poisoning) —
  /// identical to `rib_route_from`, but O(1). nullopt when the two are not
  /// adjacent on the graph this store was built against (delta segments may
  /// outlive a session toggle; see bgp/delta.hpp).
  [[nodiscard]] std::optional<Route> rib_from(AsId as, AsId neighbor) const;

  /// The default forwarding path from `src` to the destination, including
  /// both endpoints — identical to `as_path`; empty when unreachable.
  [[nodiscard]] std::span<const AsId> path(AsId src) const;

  /// True when `as` lies on `of`'s best path to the destination (ancestor-
  /// or-self in the best-route tree). False when either is unreachable.
  [[nodiscard]] bool on_best_path(AsId as, AsId of) const;

  /// Number of ASes that can reach the destination (== `reachable_count`).
  [[nodiscard]] std::size_t num_reachable() const { return reachable_; }

  /// Resident footprint of the flattened arrays, in bytes.
  [[nodiscard]] std::size_t bytes() const;

 private:
  void build(const DestRoutes& routes);

  const topo::AsGraph* g_;
  AsId dest_;
  std::vector<Route> best_;
  // RIB CSR: row `as` spans rib_[rib_off_[as] .. rib_off_[as+1]).
  std::vector<std::uint32_t> rib_off_;
  std::vector<Route> rib_;
  // Path CSR: path of `as` spans path_nodes_[path_off_[as] .. path_off_[as+1]).
  std::vector<std::uint32_t> path_off_;
  std::vector<AsId> path_nodes_;
  // Euler-tour intervals over the best-route tree rooted at dest: `a` is an
  // ancestor-or-self of `b` iff tin_[a] <= tin_[b] && tout_[b] <= tout_[a].
  std::vector<std::uint32_t> tin_;
  std::vector<std::uint32_t> tout_;
  std::size_t reachable_ = 0;
};

}  // namespace mifo::bgp
