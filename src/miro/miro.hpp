// MIRO baseline (Xu & Rexford, SIGCOMM 2006) under the paper's "strict
// policy" (Section IV-A): an AS announces only alternative paths with the
// same local preference (relationship class) as its default path, and the
// number of advertised alternatives is strictly limited for scalability.
//
// MIRO tunnels are negotiated pairwise, so deflection happens only at the
// negotiating (source) AS — transit ASes keep forwarding on their defaults.
// This is the property that separates MIRO from MIFO in Figs. 5–7.
#pragma once

#include <vector>

#include "bgp/route_store.hpp"
#include "topo/as_graph.hpp"

namespace mifo::miro {

struct MiroConfig {
  /// Strict-policy cap on alternative routes per destination.
  std::size_t max_alternatives = 2;
};

/// Alternative routes available to `src` towards routes.dest(): neighbors
/// other than the default next hop that export a route of the *same class*
/// as the default, best-first, capped at cfg.max_alternatives. Requires both
/// `src` and the alternate next-hop AS to be MIRO-deployed (the tunnel is
/// negotiated bilaterally); returns empty otherwise.
[[nodiscard]] std::vector<bgp::Route> alternatives(
    const topo::AsGraph& g, const bgp::RouteStore& routes, AsId src,
    const std::vector<bool>& deployed, const MiroConfig& cfg = {});

/// Total number of distinct paths MIRO gives the pair (src, dest):
/// the default plus the surviving alternatives; 0 when unreachable.
[[nodiscard]] std::size_t path_count(const topo::AsGraph& g,
                                     const bgp::RouteStore& routes, AsId src,
                                     const std::vector<bool>& deployed,
                                     const MiroConfig& cfg = {});

/// The full AS path of the alternative through `via` (src prepended to via's
/// default path). Empty when via has no route.
[[nodiscard]] std::vector<AsId> alt_path(const topo::AsGraph& g,
                                         const bgp::RouteStore& routes,
                                         AsId src, AsId via);

}  // namespace mifo::miro
