#include "miro/miro.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace mifo::miro {

std::vector<bgp::Route> alternatives(const topo::AsGraph& g,
                                     const bgp::DestRoutes& routes, AsId src,
                                     const std::vector<bool>& deployed,
                                     const MiroConfig& cfg) {
  MIFO_EXPECTS(src.value() < g.num_ases());
  MIFO_EXPECTS(deployed.size() == g.num_ases());
  std::vector<bgp::Route> alts;
  if (!deployed[src.value()]) return alts;
  const bgp::Route& def = routes.best(src);
  if (!def.valid() || def.cls == bgp::RouteClass::Self) return alts;

  for (const auto& nb : g.neighbors(src)) {
    if (nb.as == def.next_hop) continue;
    if (!deployed[nb.as.value()]) continue;  // bilateral negotiation
    const auto offer = bgp::rib_route_from(g, routes, src, nb.as);
    if (!offer) continue;
    // Strict policy: same local preference class as the default only.
    if (offer->cls != def.cls) continue;
    alts.push_back(*offer);
  }
  std::sort(alts.begin(), alts.end(),
            [](const bgp::Route& a, const bgp::Route& b) {
              return a.better_than(b);
            });
  if (alts.size() > cfg.max_alternatives) alts.resize(cfg.max_alternatives);
  return alts;
}

std::size_t path_count(const topo::AsGraph& g, const bgp::DestRoutes& routes,
                       AsId src, const std::vector<bool>& deployed,
                       const MiroConfig& cfg) {
  const bgp::Route& def = routes.best(src);
  if (!def.valid()) return 0;
  if (def.cls == bgp::RouteClass::Self) return 1;
  return 1 + alternatives(g, routes, src, deployed, cfg).size();
}

std::vector<AsId> alt_path(const topo::AsGraph& g,
                           const bgp::DestRoutes& routes, AsId src,
                           AsId via) {
  std::vector<AsId> path;
  if (!routes.best(via).valid()) return path;
  path.push_back(src);
  const auto tail = bgp::as_path(g, routes, via);
  path.insert(path.end(), tail.begin(), tail.end());
  return path;
}

}  // namespace mifo::miro
