#include "miro/miro.hpp"

#include "common/contracts.hpp"

namespace mifo::miro {

std::vector<bgp::Route> alternatives(const topo::AsGraph& g,
                                     const bgp::RouteStore& routes, AsId src,
                                     const std::vector<bool>& deployed,
                                     const MiroConfig& cfg) {
  MIFO_EXPECTS(src.value() < g.num_ases());
  MIFO_EXPECTS(deployed.size() == g.num_ases());
  std::vector<bgp::Route> alts;
  if (!deployed[src.value()]) return alts;
  const bgp::Route& def = routes.best(src);
  if (!def.valid() || def.cls == bgp::RouteClass::Self) return alts;

  for (const bgp::Route& offer : routes.rib(src)) {
    if (offer.next_hop == def.next_hop) continue;
    if (!deployed[offer.next_hop.value()]) continue;  // bilateral negotiation
    // Strict policy: same local preference class as the default only.
    if (offer.cls != def.cls) continue;
    alts.push_back(offer);
    if (alts.size() == cfg.max_alternatives) break;
  }
  return alts;
}

std::size_t path_count(const topo::AsGraph& g, const bgp::RouteStore& routes,
                       AsId src, const std::vector<bool>& deployed,
                       const MiroConfig& cfg) {
  const bgp::Route& def = routes.best(src);
  if (!def.valid()) return 0;
  if (def.cls == bgp::RouteClass::Self) return 1;
  return 1 + alternatives(g, routes, src, deployed, cfg).size();
}

std::vector<AsId> alt_path(const topo::AsGraph& g,
                           const bgp::RouteStore& routes, AsId src,
                           AsId via) {
  (void)g;
  std::vector<AsId> path;
  const auto tail = routes.path(via);
  if (tail.empty()) return path;
  path.reserve(tail.size() + 1);
  path.push_back(src);
  path.insert(path.end(), tail.begin(), tail.end());
  return path;
}

}  // namespace mifo::miro
