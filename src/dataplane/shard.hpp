// Sharded multi-worker packet plane (DESIGN.md §6).
//
// `dp::Network` is a single-threaded event loop; ShardedNetwork scales it
// across cores the way MW-NFD scales NFD (SNIPPETS.md §3): per-core
// forwarding workers that each own a disjoint slice of the network — their
// routers' event queues, FIBs and per-port tx queues — with no locks on the
// forwarding path, and bounded SPSC rings carrying the packets that cross
// slices.
//
// Partitioning. Routers are partitioned by FNV-1a hash of their AS id (each
// AS's prefixes — and therefore its FIB rows, iBGP mesh, deflection encaps
// and MIFO daemon — stay on one worker); a host lives on its access router's
// shard. Every cross-shard link is consequently an eBGP link, whose
// propagation delay lower-bounds how far ahead one shard can run without
// hearing from another.
//
// Execution. Epoch-stepped conservative time windows: at every barrier the
// workers agree on a horizon = (earliest pending event anywhere) + W, where
// W is the minimum cross-shard link delay, then each worker dispatches its
// local events up to the horizon. Any packet emitted during the window
// arrives at least tx_time + W after its emission, i.e. strictly beyond the
// horizon, so draining the rings at the next barrier can never deliver an
// event into a shard's past — event ordering within a shard stays exactly
// the serial engine's (t, event_seq) order, and a run is deterministic for
// a given shard count. Drained ring batches are injected in the
// content-derived order (t, from_node, from_port), which is unique because
// per-port transmissions are serialized.
//
// The serial `dp::Network` is retained untouched as the differential
// oracle (docs/VERIFICATION.md oracle-retention policy);
// tests/integration/test_sharded_differential.cpp asserts bit-identical
// delivered-packet sets, drop breakdowns and conservation accounting
// between the two engines at 1, 2, 4 and 8 workers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/spsc_ring.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "dataplane/network.hpp"

namespace mifo::dp {

struct ShardConfig {
  /// Capacity (entries) of each cross-shard ring. A full ring drops the
  /// packet — accounted as `ring_overflow` in drop_breakdown(), never
  /// silent — so size this above the worst per-window burst.
  std::size_t ring_capacity = 1u << 12;
  /// Conservative window override (seconds); 0 derives W from the minimum
  /// cross-shard link delay. Overrides larger than that minimum are
  /// rejected — they would break the no-event-in-the-past guarantee.
  SimTime window = 0.0;
};

/// Occupancy/drop statistics of one directed shard-pair ring.
struct RingStats {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint64_t pushed = 0;
  std::uint64_t overflow = 0;   ///< packets dropped: ring full
  std::size_t peak = 0;         ///< high-water occupancy
};

class ShardedNetwork {
 public:
  explicit ShardedNetwork(std::size_t num_shards, ShardConfig cfg = {});
  ~ShardedNetwork();
  ShardedNetwork(const ShardedNetwork&) = delete;
  ShardedNetwork& operator=(const ShardedNetwork&) = delete;

  // --- topology construction (mirrors dp::Network; applied to every
  // --- replica, before the first run) ----------------------------------------
  RouterId add_router(AsId as);
  HostId add_host();
  std::pair<PortId, PortId> connect_ebgp(RouterId a, RouterId b,
                                         topo::Rel b_as_is_to_a_as,
                                         Mbps rate = kGigabit,
                                         SimTime delay = 50e-6);
  std::pair<PortId, PortId> connect_ibgp(RouterId a, RouterId b,
                                         Mbps rate = 10 * kGigabit,
                                         SimTime delay = 20e-6);
  PortId connect_host(RouterId r, HostId h, Mbps rate = kGigabit,
                      SimTime delay = 20e-6);

  // --- partition ---------------------------------------------------------------
  [[nodiscard]] std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(nets_.size());
  }
  /// Shard owning an AS (FNV-1a of the AS id — every router of an AS, and
  /// every destination prefix it originates, maps to one worker).
  [[nodiscard]] std::uint32_t shard_of_as(AsId as) const;
  [[nodiscard]] std::uint32_t shard_of(RouterId r) const;
  [[nodiscard]] std::uint32_t shard_of(HostId h) const;
  /// The shard replica engine (daemon periodics, advanced tests). State of
  /// nodes owned by other shards is structurally present but never touched.
  [[nodiscard]] Network& shard_net(std::uint32_t s) { return *nets_[s]; }

  // --- owner-replica access ---------------------------------------------------
  /// The authoritative Router/Host object (owning shard's replica): FIB
  /// programming, RouterConfig, counters.
  [[nodiscard]] Router& router(RouterId r);
  [[nodiscard]] const Router& router(RouterId r) const;
  [[nodiscard]] std::size_t num_routers() const;
  [[nodiscard]] std::size_t num_hosts() const;
  [[nodiscard]] Addr router_addr(RouterId r) const;
  [[nodiscard]] Addr host_addr(HostId h) const;

  // --- flows -------------------------------------------------------------------
  /// Registers the flow in every replica (receiver state lives at the
  /// destination shard) and schedules transmission on the source host's
  /// shard. Unlike the serial engine there is no completion-callback flow
  /// chaining: schedule the full workload up front (params.start).
  FlowId start_flow(const FlowParams& params);
  [[nodiscard]] std::size_t num_flows() const;
  /// Sender-side state: started/done, completion_time, cwnd, retransmits.
  [[nodiscard]] const FlowState& sender_flow(FlowId id) const;
  /// Receiver-side state: `expected` is the in-order delivered count.
  [[nodiscard]] const FlowState& receiver_flow(FlowId id) const;

  // --- periodic work (management plane) ---------------------------------------
  /// Periodic task owned by `as`'s shard — the MIFO daemon tick. The task
  /// runs on that shard's worker at exact simulated times, interleaved with
  /// the shard's packet events, and must only touch state of ASes on the
  /// same shard (the daemon touches only its own AS).
  void add_periodic(AsId as, SimTime interval,
                    std::function<void(Network&, SimTime)> fn);

  // --- execution ---------------------------------------------------------------
  /// Processes events up to and including `t_end` on every shard. Blocks
  /// until all workers reach `t_end`. Repeated calls continue the run;
  /// between calls everything is parked, so control-plane mutation
  /// (set_port_up, FIB edits via router()) is safe — that is the sharded
  /// plane's management-thread moment.
  void run_until(SimTime t_end);
  /// Runs until every queue and ring drains, capped at `t_cap`.
  void run_to_completion(SimTime t_cap);
  [[nodiscard]] bool idle() const;
  [[nodiscard]] SimTime now() const { return nets_[0]->now(); }
  /// The conservative window W (0 until frozen by the first run).
  [[nodiscard]] SimTime window() const { return window_; }

  // --- failure injection (parked only) ----------------------------------------
  void set_port_up(RouterId r, PortId port, bool up);

  // --- observability (parked only) --------------------------------------------
  void enable_delivery_trace(SimTime bucket_width);
  [[nodiscard]] std::vector<Bytes> delivery_buckets() const;
  void enable_link_sampling(SimTime interval);
  /// Every shard's samples of its owned links, merged on (t, router, port).
  [[nodiscard]] obs::LinkSeries link_samples() const;

  [[nodiscard]] std::uint64_t injected_pkts() const;
  [[nodiscard]] std::uint64_t delivered_pkts() const;
  [[nodiscard]] std::uint64_t misdelivered_pkts() const;
  [[nodiscard]] std::uint64_t stale_flow_pkts() const;
  [[nodiscard]] RouterCounters total_counters() const;
  /// Serial buckets plus `ring_overflow` (packets dropped because a
  /// cross-shard ring was full). Conservation under the sharded plane:
  ///   injected == delivered + misdelivered + stale_flow + router drops
  ///             + port drops + ring_overflow            once drained.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  drop_breakdown() const;
  [[nodiscard]] std::uint64_t queued_pkts() const;
  [[nodiscard]] std::vector<RingStats> ring_stats() const;

  // --- flight recorder (docs/OBSERVABILITY.md) --------------------------------
  /// Creates one Tracer per worker (shard context pre-stamped) and attaches
  /// it to that worker's replica. Call before the first run; parked only.
  void enable_tracing(std::size_t capacity_per_shard = 4096);
  /// Per-flow filter applied to every worker tracer (parked only).
  void set_trace_flow(std::uint64_t flow);
  /// Worker tracer for shard `s` (nullptr until enable_tracing).
  [[nodiscard]] const obs::Tracer* tracer(std::uint32_t s) const;
  /// Snapshot-time causal merge of every worker tracer into one
  /// deterministically ordered timeline (obs::trace_order; parked only).
  [[nodiscard]] obs::Timeline timeline() const;

  /// Per-worker shard-runtime instrumentation, read while parked.
  struct WorkerStats {
    std::uint64_t epochs = 0;        ///< compute windows executed
    Histogram epoch_window;          ///< sim-time span per window (seconds)
    Histogram barrier_wait;          ///< wall-clock wait per rendezvous (s)
    WorkerStats();
  };
  [[nodiscard]] const std::vector<WorkerStats>& worker_stats() const {
    return worker_stats_;
  }

  /// Publishes every shard replica's dp.* metrics (one registry shard each;
  /// they merge at snapshot) plus ring occupancy gauges
  /// (dp.ring_occupancy_peak / dp.ring_pushed / dp.ring_overflow per
  /// directed shard pair), dp.shard_window, per-worker epoch counts and the
  /// epoch-window / barrier-wait histograms. Re-publishing with the same
  /// (registry, labels) overwrites in place — exactly-once per snapshot.
  void publish_metrics(obs::Registry& reg, const std::string& labels) const;

  // --- verification hooks ------------------------------------------------------
  /// Consistent copy of every router (owning replica), in RouterId order —
  /// feed to verify:: at a quiescent point (parked, e.g. after
  /// run_to_completion or between run_until segments).
  [[nodiscard]] std::vector<Router> gather_routers() const;

 private:
  struct RingSlot {
    std::unique_ptr<SpscRing<RemoteEvent>> ring;
    // Producer-written (its worker thread); read only while parked.
    std::uint64_t pushed = 0;
    std::uint64_t overflow = 0;
    std::size_t peak = 0;
  };

  /// Padded per-shard slot the barrier completion reduces over.
  struct alignas(kCacheLine) ShardSlot {
    SimTime next_event = 0.0;
  };

  void freeze();
  void on_remote(std::uint32_t from, RemoteEvent&& ev);
  RingSlot& ring_slot(std::uint32_t from, std::uint32_t to) {
    return rings_[from * nets_.size() + to];
  }
  [[nodiscard]] const RingSlot& ring_slot(std::uint32_t from,
                                          std::uint32_t to) const {
    return rings_[from * nets_.size() + to];
  }
  /// Drains every ring destined to shard `s`, restores the deterministic
  /// (t, from_node, from_port) order, and injects into the replica's queue.
  void drain_into(std::uint32_t s);
  void run_epochs(SimTime t_end);

  ShardConfig cfg_;
  std::vector<std::unique_ptr<Network>> nets_;
  /// Flight recorder: one per worker, attached to that worker's replica.
  std::vector<std::unique_ptr<obs::Tracer>> tracers_;
  /// One per worker; written only by its worker thread, read parked.
  std::vector<WorkerStats> worker_stats_;
  /// publish_metrics() exactly-once state (mirrors Network::PublishSlot).
  struct PublishSlot {
    obs::Registry* reg;
    std::string labels;
    obs::Registry::Shard* shard;
  };
  mutable std::vector<PublishSlot> pub_shards_;
  /// Node id -> owning shard. Address-stable (Network keeps pointers).
  std::vector<std::uint32_t> router_shard_;
  std::vector<std::uint32_t> host_shard_;
  std::vector<AsId> router_as_;
  std::vector<RouterId> host_router_;
  std::vector<RingSlot> rings_;
  std::vector<ShardSlot> slots_;
  /// Scratch batch per shard for barrier drains (worker-owned).
  std::vector<std::vector<RemoteEvent>> drain_scratch_;
  SimTime window_ = 0.0;
  bool frozen_ = false;
};

}  // namespace mifo::dp
