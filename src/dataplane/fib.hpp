// The forwarding information base with MIFO's `alt_port` extension (Fig. 1).
//
// The paper's prototype adds an `alt_port` attribute to the kernel's
// `struct fib_table`; here a FIB entry maps a destination address to the
// default output port plus the (daemon-maintained) alternative port.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/types.hpp"
#include "dataplane/packet.hpp"

namespace mifo::dp {

struct ChangeLog;

struct FibEntry {
  PortId out_port;                      ///< default path
  PortId alt_port = PortId::invalid();  ///< alternative path (may be unset)
};

class Fib {
 public:
  /// Insert or replace the default route for `dst`.
  void set_route(Addr dst, PortId out_port);

  /// Update only the alternative port (what the MIFO daemon does). The
  /// destination must already have a default route.
  void set_alt(Addr dst, PortId alt_port);

  /// Clear the alternative port.
  void clear_alt(Addr dst);

  /// Remove the entry entirely (BGP withdrawal evicted the route). No-op
  /// when absent; returns whether an entry was removed.
  bool remove(Addr dst);

  [[nodiscard]] std::optional<FibEntry> lookup(Addr dst) const;

  [[nodiscard]] bool contains(Addr dst) const { return table_.contains(dst); }

  [[nodiscard]] std::size_t size() const { return table_.size(); }

  /// Number of entries with a programmed alternative (verifier/CLI hook).
  [[nodiscard]] std::size_t num_alt_routes() const {
    std::size_t n = 0;
    for (const auto& [dst, fe] : table_) n += fe.alt_port.valid() ? 1 : 0;
    return n;
  }

  /// Iteration support for the daemon's refresh pass.
  [[nodiscard]] auto begin() const { return table_.begin(); }
  [[nodiscard]] auto end() const { return table_.end(); }

  /// Mirror value-changing writes into `log` as FibChange records tagged
  /// with `self` (the owning router). The daemon rewrites identical alt
  /// ports every tick, so only writes that actually change the entry are
  /// recorded — see dataplane/change_log.hpp. nullptr detaches.
  void attach_change_log(ChangeLog* log, RouterId self) {
    change_log_ = log;
    self_ = self;
  }

 private:
  void note_change(Addr dst);

  std::unordered_map<Addr, FibEntry> table_;
  ChangeLog* change_log_ = nullptr;
  RouterId self_ = RouterId::invalid();
};

}  // namespace mifo::dp
