// Border router with the MIFO forwarding engine (Algorithm 1).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "dataplane/fib.hpp"
#include "dataplane/packet.hpp"
#include "dataplane/port.hpp"

namespace mifo::dp {

class Network;

struct RouterConfig {
  /// Whether this router runs MIFO (deflects on congestion). Routers with
  /// MIFO disabled behave as plain BGP forwarders, but still honour the
  /// returned-packet rule so deflected traffic is not bounced back.
  bool mifo_enabled = false;
  /// tx-queue ratio at which the default port counts as congested (line 11).
  double congest_threshold = 0.5;
  /// Rate utilization of the default egress under which deflected flows
  /// return to the default path (hysteresis, evaluated on daemon ticks).
  double low_watermark = 0.5;
  /// Algorithm 1 drops when the alternative fails the valley-free check
  /// (line 20). For congestion-triggered deflection we instead keep the flow
  /// on the (congested) default unless this faithful-drop flag is set;
  /// returned packets (line 11's sender==nexthop case) always drop when no
  /// admissible alternative exists, since the default would cycle.
  bool drop_on_congested_no_alt = false;
  /// Deflected flows are pinned (flow-level determinism via hashing, II-A);
  /// pins idle longer than this are garbage collected.
  SimTime pin_idle_timeout = 1.0;
  /// Minimum spacing between NEW pins on the same output port. Offloading
  /// is incremental: deflect one flow, let the queue react, then deflect
  /// more if still congested. Without this, every flow sharing a congested
  /// egress deflects within microseconds and the load see-saws between the
  /// default and the alternative.
  SimTime pin_cooldown = 0.01;
  /// Ablation knob for the paper's "one more bit is enough" rule: when
  /// false, eBGP deflection skips the Eq. 3 Tag-Check entirely (Fig. 2(a)
  /// loops become reachable again). The static verifier models the same
  /// flag, so verifier verdict and packet behaviour stay comparable.
  bool enforce_tag_check = true;
};

struct RouterCounters {
  std::uint64_t forwarded = 0;
  std::uint64_t deflected = 0;        ///< packets sent via alt port
  std::uint64_t encapsulated = 0;     ///< IP-in-IP encaps performed
  std::uint64_t returned_detected = 0;///< line-11 sender==nexthop hits
  std::uint64_t valley_drops = 0;     ///< line-20 drops
  std::uint64_t no_route_drops = 0;
  std::uint64_t ttl_drops = 0;
  std::uint64_t flow_switches = 0;    ///< pin transitions default<->alt
};

class Router {
 public:
  Router(RouterId id, AsId as, Addr addr) : id_(id), as_(as), addr_(addr) {}

  [[nodiscard]] RouterId id() const { return id_; }
  [[nodiscard]] AsId as() const { return as_; }
  [[nodiscard]] Addr addr() const { return addr_; }

  [[nodiscard]] Fib& fib() { return fib_; }
  [[nodiscard]] const Fib& fib() const { return fib_; }

  [[nodiscard]] RouterConfig& config() { return config_; }
  [[nodiscard]] const RouterConfig& config() const { return config_; }

  [[nodiscard]] RouterCounters& counters() { return counters_; }
  [[nodiscard]] const RouterCounters& counters() const { return counters_; }

  [[nodiscard]] std::size_t num_ports() const { return ports_.size(); }
  [[nodiscard]] Port& port(PortId p);
  [[nodiscard]] const Port& port(PortId p) const;
  /// Read-only view of all ports, in PortId order. The static verifier
  /// (src/verify/) walks this to enumerate possible ingress tag states.
  [[nodiscard]] std::span<const Port> ports() const { return ports_; }
  /// Used by Network while wiring topology.
  PortId add_port(Port port);

  /// The MIFO forwarding engine — Algorithm 1 of the paper, plus flow
  /// pinning for the paper's flow-level determinism. `in_port` is invalid
  /// for self-originated packets (none exist today; hosts inject via their
  /// access link).
  void handle_packet(Network& net, Packet p, PortId in_port);

  /// Daemon-tick hook: returns pinned-to-alt flows to the default path when
  /// every eBGP egress of this router has *rate* utilization below the low
  /// watermark (measured by the daemon's LinkMonitor — queue occupancy
  /// drains even on a saturated link, so it cannot drive the return
  /// decision); expires idle pins. `port_utilization(port) -> [0,1]` comes
  /// from the daemon; when absent, queue ratio is used as a fallback (unit
  /// tests).
  void reevaluate_flows(
      const Network& net,
      const std::function<double(PortId)>& port_utilization = {});

  /// Number of flows currently pinned to the alternative path.
  [[nodiscard]] std::size_t pinned_alt_flows() const;

 private:
  struct FlowPin {
    bool use_alt = false;
    SimTime last_seen = 0.0;
  };

  void emit(Network& net, PortId port, Packet p);

  RouterId id_;
  AsId as_;
  Addr addr_;
  Fib fib_;
  RouterConfig config_;
  RouterCounters counters_;
  std::vector<Port> ports_;
  std::unordered_map<std::uint64_t, FlowPin> pins_;
};

}  // namespace mifo::dp
