// Packet representation for the packet-level data plane.
//
// Carries the two header artifacts MIFO adds (Section III):
//  * the one-bit valley-free tag ("one more bit is enough", III-A4) — in a
//    real deployment an unused MPLS label bit or a reserved IP-header bit;
//  * an optional outer IP header for the IP-in-IP encapsulation between
//    iBGP peers (III-B).
#pragma once

#include <cstdint>

#include "common/contracts.hpp"
#include "common/types.hpp"

namespace mifo::dp {

/// Flat address space: hosts and router loopbacks.
using Addr = std::uint32_t;
inline constexpr Addr kInvalidAddr = 0;

enum class PacketKind : std::uint8_t { Data, Ack };

struct Packet {
  // ---- inner header -------------------------------------------------------
  Addr src = kInvalidAddr;
  Addr dst = kInvalidAddr;
  FlowId flow;
  PacketKind kind = PacketKind::Data;
  std::uint32_t seq = 0;     ///< data sequence number (packets)
  std::uint32_t ack_no = 0;  ///< cumulative ack (first missing seq)
  std::uint32_t size_bytes = 0;
  std::uint8_t ttl = 64;
  /// MIFO tag bit: 1 iff the packet entered the current AS from a customer
  /// (or originated locally). Rewritten at every AS entering point.
  bool mifo_tag = false;

  // ---- outer header (IP-in-IP), present only between iBGP peers ----------
  bool encapsulated = false;
  Addr outer_src = kInvalidAddr;
  Addr outer_dst = kInvalidAddr;

  // ---- flight-recorder trace context (obs/trace.hpp) ----------------------
  // Stamped at host injection, carried across RemoteEvent handoffs so a
  // trace hook on any shard can attribute the packet to the shard/epoch
  // that injected it. Simulation metadata, not a header: excluded from
  // wire_bytes() and from the outcome digest.
  std::uint32_t origin_shard = 0;
  std::uint64_t inject_epoch = 0;

  [[nodiscard]] std::uint32_t wire_bytes() const {
    // 20-byte outer header overhead when encapsulated.
    return size_bytes + (encapsulated ? 20u : 0u);
  }
};

/// Line 13 of Algorithm 1: wrap with an outer header addressed to the iBGP
/// peer holding the alternative path.
inline void encap(Packet& p, Addr self, Addr ibgp_peer) {
  MIFO_EXPECTS(!p.encapsulated);
  p.encapsulated = true;
  p.outer_src = self;
  p.outer_dst = ibgp_peer;
}

/// Lines 2–3 of Algorithm 1: recover the sender and the original packet.
/// Returns the iBGP sender address.
inline Addr decap(Packet& p) {
  MIFO_EXPECTS(p.encapsulated);
  const Addr sender = p.outer_src;
  p.encapsulated = false;
  p.outer_src = kInvalidAddr;
  p.outer_dst = kInvalidAddr;
  return sender;
}

}  // namespace mifo::dp
