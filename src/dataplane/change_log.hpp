// Append-only record of forwarding-state mutations (the incremental
// verifier's input, DESIGN/VERIFICATION "dirty set").
//
// Every chaos event ultimately lands in the data plane as one of four kinds
// of writes: a FIB entry changed (route install/eviction, alt reprogram), a
// port's link state flipped, a router config knob flipped, or a daemon's
// per-prefix RIB knowledge changed. A ChangeLog attached to a Network (see
// Network::attach_change_log) captures exactly the *value-changing* subset
// of those writes — the MIFO daemon re-programs identical alt ports on
// every tick, so recording raw write traffic would dirty every destination
// every 10 ms and incrementality would buy nothing.
//
// The log is drained (moved out and cleared) by verify::ChangeSet at each
// quiescent point; dataplane code only appends.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "dataplane/packet.hpp"

namespace mifo::dp {

struct ChangeLog {
  /// A router's FIB entry for `dst` changed value (default route set to a
  /// different port, entry removed, or alt programmed/cleared/retargeted).
  struct FibChange {
    RouterId router;
    Addr dst = kInvalidAddr;
  };

  /// A port's administrative link state flipped (recorded only on actual
  /// up<->down transitions, Network::set_port_up early-outs on no-ops).
  struct PortChange {
    RouterId router;
    PortId port;
  };

  /// A RouterConfig knob changed (e.g. a planted-valley mutation disabling
  /// the Tag-Check). Config writes bypass any hookable setter, so the
  /// mutating site records this explicitly.
  struct ConfigChange {
    RouterId router;
  };

  /// A daemon's RIB knowledge for `prefix` changed (update_prefix /
  /// remove_prefix). The FIB writes those trigger are recorded separately;
  /// this record exists because the lints read the RIB knowledge itself.
  struct DaemonChange {
    AsId as;
    Addr prefix = kInvalidAddr;
  };

  std::vector<FibChange> fib;
  std::vector<PortChange> ports;
  std::vector<ConfigChange> configs;
  std::vector<DaemonChange> daemons;

  void note_fib(RouterId r, Addr dst) { fib.push_back({r, dst}); }
  void note_port(RouterId r, PortId p) { ports.push_back({r, p}); }
  void note_config(RouterId r) { configs.push_back({r}); }
  void note_daemon(AsId as, Addr prefix) { daemons.push_back({as, prefix}); }

  [[nodiscard]] bool empty() const {
    return fib.empty() && ports.empty() && configs.empty() && daemons.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return fib.size() + ports.size() + configs.size() + daemons.size();
  }
  void clear() {
    fib.clear();
    ports.clear();
    configs.clear();
    daemons.clear();
  }
};

}  // namespace mifo::dp
