// Event-driven packet network: routers, hosts, links, flows and the event
// loop gluing them together. This is the NS-3/testbed substitute the
// Fig. 11/12 experiments and the Algorithm-1 unit tests run on.
#pragma once

#include <functional>
#include <queue>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "dataplane/packet.hpp"
#include "dataplane/port.hpp"
#include "dataplane/router.hpp"
#include "dataplane/transport.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace mifo::dp {

/// A packet arrival whose destination node lives on another shard of a
/// ShardedNetwork (src/dataplane/shard.hpp). Produced by `begin_tx` when
/// shard mode is enabled; carried over an SPSC ring and re-injected into the
/// owning shard's event queue at the next epoch barrier. The (from_node,
/// from_port) pair keys the deterministic merge order: per-port transmissions
/// are serialized (tx time > 0), so (t, from_node, from_port) is unique.
struct ChangeLog;

struct RemoteEvent {
  SimTime t = 0.0;
  bool to_router = true;
  bool from_router = true;
  std::uint32_t node = 0;       ///< destination router/host id
  std::uint32_t port = 0;       ///< destination ingress port (routers only)
  std::uint32_t from_node = 0;  ///< transmitting node id
  std::uint32_t from_port = 0;  ///< transmitting port index
  Packet pkt;
};

struct Host {
  HostId id;
  Addr addr = kInvalidAddr;
  Port uplink;
  bool connected = false;
};

class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology construction ------------------------------------------------
  RouterId add_router(AsId as);
  HostId add_host();

  /// Inter-AS (eBGP) link; `b_as_is_to_a_as` is the business relationship of
  /// b's AS as seen from a's AS (topo::Rel::Customer = b's AS pays a's).
  std::pair<PortId, PortId> connect_ebgp(RouterId a, RouterId b,
                                         topo::Rel b_as_is_to_a_as,
                                         Mbps rate = kGigabit,
                                         SimTime delay = 50e-6);

  /// Intra-AS (iBGP full-mesh) link. Both routers must share an AS.
  std::pair<PortId, PortId> connect_ibgp(RouterId a, RouterId b,
                                         Mbps rate = 10 * kGigabit,
                                         SimTime delay = 20e-6);

  /// Access link. Returns the router-side port id (host side is implicit).
  PortId connect_host(RouterId r, HostId h, Mbps rate = kGigabit,
                      SimTime delay = 20e-6);

  // --- accessors --------------------------------------------------------------
  [[nodiscard]] std::size_t num_routers() const { return routers_.size(); }
  [[nodiscard]] std::size_t num_hosts() const { return hosts_.size(); }
  /// Read-only view of every router, in RouterId order (verifier hook).
  [[nodiscard]] std::span<const Router> routers() const { return routers_; }
  [[nodiscard]] Router& router(RouterId r);
  [[nodiscard]] const Router& router(RouterId r) const;
  [[nodiscard]] Host& host(HostId h);
  [[nodiscard]] const Host& host(HostId h) const;
  [[nodiscard]] Addr router_addr(RouterId r) const;
  [[nodiscard]] Addr host_addr(HostId h) const;
  [[nodiscard]] SimTime now() const { return now_; }

  // --- flows --------------------------------------------------------------------
  FlowId start_flow(const FlowParams& params);
  /// Registers the flow without scheduling its FlowStart event. Shard
  /// replicas that do not own the source host need the FlowState (the
  /// receiver half lives at the destination shard) but must never send.
  FlowId register_flow(const FlowParams& params);
  [[nodiscard]] const std::vector<FlowState>& flows() const { return flows_; }
  [[nodiscard]] FlowState& flow(FlowId id);
  /// Invoked whenever a flow completes (used to chain back-to-back flows).
  void set_flow_complete_callback(std::function<void(Network&, FlowState&)> cb);

  // --- periodic work (MIFO daemon ticks, monitors) ----------------------------
  void add_periodic(SimTime interval,
                    std::function<void(Network&, SimTime)> fn);

  // --- delivery trace (Fig. 12(a) aggregate-throughput series) ---------------
  void enable_delivery_trace(SimTime bucket_width);
  [[nodiscard]] const std::vector<Bytes>& delivery_buckets() const {
    return delivery_bytes_;
  }
  [[nodiscard]] SimTime delivery_bucket_width() const { return bucket_width_; }

  // --- execution ---------------------------------------------------------------
  /// Processes events up to and including `t_end`.
  void run_until(SimTime t_end);
  /// Runs until the event queue drains or `t_cap` is hit.
  void run_to_completion(SimTime t_cap);
  [[nodiscard]] bool idle() const { return events_.empty(); }
  /// Timestamp of the earliest pending event, +inf when idle. The sharded
  /// plane's conservative-window barrier reduces this across shards.
  [[nodiscard]] SimTime next_event_time() const;

  // --- sharding hooks (src/dataplane/shard.hpp) -------------------------------
  /// Marks this network as shard `self` of a sharded plane. `router_shard`
  /// and `host_shard` map node id -> owning shard (not owned; must outlive
  /// the network). Arrivals whose destination is owned elsewhere are handed
  /// to `sink` instead of the local event queue; link sampling skips
  /// non-owned routers. Disabled (the default) this costs nothing — the
  /// serial engine's behaviour is bit-for-bit unchanged.
  void enable_shard_mode(std::uint32_t self,
                         const std::vector<std::uint32_t>* router_shard,
                         const std::vector<std::uint32_t>* host_shard,
                         std::function<void(RemoteEvent&&)> sink);
  /// Re-injects a cross-shard arrival drained from a ring. Must not be in
  /// this shard's past.
  void inject_remote(RemoteEvent&& ev);

  /// Current conservative epoch window of the owning shard worker (stays 0
  /// on the serial engine). Stamped into the flight-recorder context of
  /// every packet injected by transmit_host and mirrored into the attached
  /// tracer, so trace events and packets agree on the epoch.
  void set_worker_epoch(std::uint64_t epoch) {
    worker_epoch_ = epoch;
    if (tracer_ != nullptr) tracer_->set_epoch(epoch);
  }
  [[nodiscard]] std::uint64_t worker_epoch() const { return worker_epoch_; }

  // --- data-plane services (used by Router and transport) --------------------
  /// Enqueue `p` on router r's port, honouring queue capacity; starts
  /// transmission when the port is idle.
  void transmit_router(RouterId r, PortId port, Packet p);
  /// Enqueue `p` on the host's uplink.
  void transmit_host(HostId h, Packet p);
  /// Lazily arm the flow's retransmission timer.
  void arm_flow_timer(FlowState& f);
  /// Receiver delivered `pkts` packets in order (throughput trace hook).
  void note_delivery(const FlowState& f, std::uint32_t pkts);
  /// A flow just finished (transport calls this exactly once per flow).
  void note_completion(FlowState& f);

  /// Sum of all router counters.
  [[nodiscard]] RouterCounters total_counters() const;

  // --- failure injection -------------------------------------------------------
  /// Administratively set a router port's link state. Taking a port down is
  /// a cable pull: the tx backlog is discarded immediately and accounted as
  /// `drops_down`, so drops during a down interval are attributed to the
  /// outage rather than surfacing later as queue overflow. Bringing it up
  /// resumes transmission of anything enqueued since.
  void set_port_up(RouterId r, PortId port, bool up);

  // --- change capture (incremental verification) ------------------------------
  /// Mirror value-changing FIB writes and link-state flips of every router
  /// into `log` (see dataplane/change_log.hpp). Attach after the topology is
  /// built — routers added later are not wired. The log is not owned and
  /// must outlive the network; nullptr detaches. Disabled (the default)
  /// this costs one pointer test per mutating call and nothing on the
  /// packet path.
  void attach_change_log(ChangeLog* log);
  [[nodiscard]] ChangeLog* change_log() const { return change_log_; }

  // --- observability -----------------------------------------------------------
  /// Opt-in forwarding-decision tracing. The tracer must outlive the
  /// network; nullptr (the default) disables tracing at one pointer test
  /// per hook. Not owned.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  /// Periodically sample every eBGP port's send rate, spare capacity and
  /// queue occupancy into link_samples() (paper III-C link monitoring,
  /// made inspectable). Call before the run; samples accumulate until the
  /// network is destroyed.
  void enable_link_sampling(SimTime interval);
  [[nodiscard]] const obs::LinkSeries& link_samples() const {
    return link_samples_;
  }

  /// Packet-conservation accounting (hosts only; raw transmit_router
  /// injections from tests are not tracked):
  ///   injected == delivered + misdelivered + stale_flow
  ///             + router drops (valley/no-route/ttl)
  ///             + port drops (overflow/down)      once queues drain.
  [[nodiscard]] std::uint64_t injected_pkts() const { return injected_pkts_; }
  [[nodiscard]] std::uint64_t delivered_pkts() const {
    return delivered_pkts_;
  }
  [[nodiscard]] std::uint64_t misdelivered_pkts() const {
    return misdelivered_pkts_;
  }
  [[nodiscard]] std::uint64_t stale_flow_pkts() const {
    return stale_flow_pkts_;
  }

  /// Every drop bucket in the network, by reason — router counters plus
  /// port-level overflow/down drops across routers and host uplinks.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  drop_breakdown() const;

  /// Total packets currently sitting in tx queues (0 once drained).
  [[nodiscard]] std::uint64_t queued_pkts() const;

  /// Publish aggregate counters into `reg` under the given label. Repeated
  /// calls with the same (registry, labels) reuse one registry shard and
  /// overwrite it in place, so a snapshot taken between two publishes (e.g.
  /// racing a barrier rendezvous) never double-counts; calls with distinct
  /// labels still get distinct shards. Snapshot after the run, not
  /// concurrently with it.
  void publish_metrics(obs::Registry& reg, const std::string& labels) const;

 private:
  enum class EvKind : std::uint8_t {
    ArriveRouter,
    ArriveHost,
    TxDoneRouter,
    TxDoneHost,
    FlowStart,
    FlowTimer,
    Periodic,
  };

  struct Event {
    SimTime t = 0.0;
    std::uint64_t order = 0;
    EvKind kind = EvKind::Periodic;
    std::uint32_t a = 0;  ///< node id / flow index / periodic index
    std::uint32_t b = 0;  ///< port id
    Packet pkt;
  };

  struct EventLater {
    bool operator()(const Event& x, const Event& y) const {
      if (x.t != y.t) return x.t > y.t;
      return x.order > y.order;
    }
  };

  struct PeriodicTask {
    SimTime interval;
    std::function<void(Network&, SimTime)> fn;
  };

  void push_event(Event ev);
  void dispatch(const Event& ev);
  /// Cable-pull semantics: discard a downed port's tx backlog as drops_down.
  static void flush_down_queue(Port& port);
  void begin_tx(NodeRef node, Port& port, std::uint32_t port_index);
  void enqueue_on(NodeRef node, Port& port, std::uint32_t port_index,
                  Packet p);
  void deliver_to_host(HostId h, const Packet& p);

  std::vector<Router> routers_;
  std::vector<Host> hosts_;
  std::vector<FlowState> flows_;
  std::vector<PeriodicTask> periodics_;
  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::function<void(Network&, FlowState&)> flow_complete_cb_;
  SimTime now_ = 0.0;
  std::uint64_t event_seq_ = 0;

  SimTime bucket_width_ = 0.0;
  std::vector<Bytes> delivery_bytes_;

  /// Shard mode (see enable_shard_mode); self_shard_ is meaningless and the
  /// maps are null while disabled.
  std::uint32_t self_shard_ = 0;
  const std::vector<std::uint32_t>* router_shard_ = nullptr;
  const std::vector<std::uint32_t>* host_shard_ = nullptr;
  std::function<void(RemoteEvent&&)> remote_sink_;

  obs::Tracer* tracer_ = nullptr;
  ChangeLog* change_log_ = nullptr;
  obs::LinkSeries link_samples_;
  std::uint64_t worker_epoch_ = 0;
  /// publish_metrics() exactly-once state: one registry shard per
  /// (registry, labels) pair ever published to, reused on re-publish.
  struct PublishSlot {
    obs::Registry* reg;
    std::string labels;
    obs::Registry::Shard* shard;
  };
  mutable std::vector<PublishSlot> pub_shards_;
  std::uint64_t injected_pkts_ = 0;
  std::uint64_t delivered_pkts_ = 0;
  std::uint64_t misdelivered_pkts_ = 0;
  std::uint64_t stale_flow_pkts_ = 0;

  friend class Router;
};

}  // namespace mifo::dp
