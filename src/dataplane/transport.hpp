// SACK-based AIMD transport (TCP-Reno congestion control with a selective
// acknowledgment scoreboard) for the packet plane.
//
// The paper's testbed measures competing TCP flows; this module provides the
// closed-loop congestion control that makes the emulated experiments react
// to queue build-up and drops. The receiver acknowledges cumulatively and
// echoes the sequence number that triggered each ACK, which gives the sender
// exact per-packet delivery information (an idealized SACK). Loss is
// inferred when three later packets are selectively acknowledged; each lost
// packet is retransmitted at most once per RTO. This is deliberately robust
// to the reordering bursts MIFO's path switches produce: duplicate arrivals
// are recognised as such and can never masquerade as loss signals (the
// classic dupack-counting livelock).
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "common/types.hpp"
#include "dataplane/packet.hpp"

namespace mifo::dp {

class Network;

struct FlowParams {
  HostId src;
  HostId dst;
  Bytes size = 10 * kMegaByte;
  std::uint32_t pkt_size = 1000;  ///< paper: data packet 1 KB
  SimTime start = 0.0;
};

struct FlowState {
  FlowId id;
  FlowParams params;
  Addr src_addr = kInvalidAddr;
  Addr dst_addr = kInvalidAddr;
  std::uint32_t total_pkts = 0;

  // --- sender: congestion control -----------------------------------------
  double cwnd = 4.0;
  /// Initial slow-start threshold in packets: about one bandwidth-delay
  /// product plus bottleneck queue at gigabit speed, keeping the first
  /// overshoot (and the resulting loss burst) bounded.
  double ssthresh = 96.0;
  bool in_recovery = false;     ///< one multiplicative decrease per window
  std::uint32_t recover_seq = 0;

  // --- sender: scoreboard ---------------------------------------------------
  std::uint32_t next_seq = 0;     ///< next sequence the send loop offers
  std::uint32_t highest_sent = 0; ///< 1 + max seq ever transmitted
  std::uint32_t high_acked = 0;   ///< cumulative: first unacked seq
  std::set<std::uint32_t> sacked;            ///< delivered beyond high_acked
  std::uint32_t highest_sacked = 0;          ///< 1 + max delivered seq
  std::map<std::uint32_t, SimTime> retx_at;  ///< per-seq last retransmission

  SimTime rto = 0.02;
  SimTime last_progress = 0.0;
  bool timer_pending = false;
  std::uint64_t retransmits = 0;

  bool started = false;
  bool done = false;
  SimTime start_time = 0.0;
  SimTime end_time = 0.0;

  // --- receiver --------------------------------------------------------------
  std::uint32_t expected = 0;  ///< next in-order seq awaited
  std::set<std::uint32_t> ooo;

  /// Unacknowledged, un-SACKed segments below the send frontier. After an
  /// RTO rewinds next_seq, SACKed segments above it are excluded.
  [[nodiscard]] std::uint32_t inflight() const {
    if (next_seq <= high_acked) return 0;
    const auto sacked_below = static_cast<std::uint32_t>(
        std::distance(sacked.begin(), sacked.lower_bound(next_seq)));
    return next_seq - high_acked - sacked_below;
  }
  [[nodiscard]] SimTime completion_time() const { return end_time - start_time; }
  [[nodiscard]] Mbps achieved_mbps() const {
    const SimTime d = completion_time();
    return d > 0 ? to_megabits(params.size) / d : 0.0;
  }
};

namespace transport {

/// Begin transmission (called when the FlowStart event fires).
void on_start(Network& net, FlowState& f);

/// Sender-side ACK processing (cumulative ack_no + echoed seq).
void on_ack(Network& net, FlowState& f, const Packet& ack);

/// Receiver-side data processing; emits the cumulative ACK (echoing the
/// data's sequence) and returns the number of packets newly delivered in
/// order (for the throughput trace).
std::uint32_t on_data(Network& net, FlowState& f, const Packet& data);

/// Retransmission-timer expiry.
void on_timer(Network& net, FlowState& f);

}  // namespace transport

}  // namespace mifo::dp
