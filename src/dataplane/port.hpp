// Output ports with byte-bounded tx queues — the congestion signal MIFO
// reads ("the queuing ratio of output ports", Section II-A).
#pragma once

#include <cstdint>
#include <deque>

#include "common/types.hpp"
#include "dataplane/packet.hpp"
#include "topo/relationship.hpp"

namespace mifo::dp {

/// A node in the packet plane is either a router or an end host.
struct NodeRef {
  enum class Kind : std::uint8_t { Router, Host } kind = Kind::Router;
  std::uint32_t id = 0;

  static NodeRef router(RouterId r) { return {Kind::Router, r.value()}; }
  static NodeRef host(HostId h) { return {Kind::Host, h.value()}; }
  [[nodiscard]] bool is_router() const { return kind == Kind::Router; }
  friend bool operator==(NodeRef, NodeRef) = default;
};

/// What is attached on the other side of a port.
enum class PortKind : std::uint8_t {
  Ebgp,  ///< inter-AS link to an eBGP peer
  Ibgp,  ///< intra-AS link to an iBGP peer (full mesh)
  Host,  ///< access link to an end host
};

struct Port {
  PortKind kind = PortKind::Host;
  NodeRef peer;
  PortId peer_port;  ///< the reverse-direction port at the peer
  Addr peer_addr = kInvalidAddr;
  Mbps rate = kGigabit;
  SimTime delay = 50e-6;

  /// eBGP metadata: the neighboring AS and what it is *to this router's AS*.
  AsId neighbor_as = AsId::invalid();
  topo::Rel neighbor_rel = topo::Rel::Peer;

  /// Failure injection: a downed port silently discards everything
  /// enqueued on it (cable pull). The transport's RTO recovers flows once
  /// the port comes back up.
  bool up = true;

  // --- tx queue ------------------------------------------------------------
  std::deque<Packet> queue;
  std::uint64_t queue_bytes = 0;
  std::uint64_t queue_capacity_bytes = 100 * 1000;  // 100 x 1 KB packets
  bool busy = false;

  // --- counters --------------------------------------------------------------
  std::uint64_t bytes_sent_total = 0;
  std::uint64_t pkts_sent_total = 0;
  std::uint64_t drops_overflow = 0;
  std::uint64_t drops_down = 0;
  /// Snapshot used by the link monitor to compute the sending rate over the
  /// last monitoring window (the paper's "link monitoring", III-C).
  std::uint64_t monitor_bytes_snapshot = 0;
  /// When the last flow was newly pinned away from this (congested) port;
  /// gates RouterConfig::pin_cooldown.
  SimTime last_pin_time = -1e18;

  [[nodiscard]] double queue_ratio() const {
    if (queue_capacity_bytes == 0) return 0.0;
    return static_cast<double>(queue_bytes) /
           static_cast<double>(queue_capacity_bytes);
  }

  /// True when a packet fits without overflowing.
  [[nodiscard]] bool can_accept(const Packet& p) const {
    return queue_bytes + p.wire_bytes() <= queue_capacity_bytes;
  }
};

}  // namespace mifo::dp
