#include "dataplane/transport.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "common/env.hpp"
#include "dataplane/network.hpp"

namespace mifo::dp::transport {

namespace {

constexpr std::uint32_t kAckBytes = 40;
/// A packet is inferred lost when this many later packets were delivered
/// (the standard SACK/dupack threshold).
constexpr std::uint32_t kLossThreshold = 3;
/// Retransmission burst bound per ACK event.
constexpr int kRetxBudgetPerAck = 2;

/// Set MIFO_TRACE_FLOW=<id> to stderr-trace one flow's transport events.
bool traced(const FlowState& f) {
  static const std::uint64_t id = env_u64("MIFO_TRACE_FLOW", ~0ull);
  return f.id.value() == id;
}

Packet make_data(const FlowState& f, std::uint32_t seq) {
  Packet p;
  p.src = f.src_addr;
  p.dst = f.dst_addr;
  p.flow = f.id;
  p.kind = PacketKind::Data;
  p.seq = seq;
  p.size_bytes = f.params.pkt_size;
  return p;
}

Packet make_ack(const FlowState& f, std::uint32_t ack_no,
                std::uint32_t echoed_seq) {
  Packet p;
  p.src = f.dst_addr;  // ACKs travel receiver -> sender
  p.dst = f.src_addr;
  p.flow = f.id;
  p.kind = PacketKind::Ack;
  p.ack_no = ack_no;
  p.seq = echoed_seq;  // which data packet triggered this ACK
  p.size_bytes = kAckBytes;
  return p;
}

/// Push data while the window allows. After an RTO rewound next_seq this
/// walks back over the lost window, skipping segments the scoreboard knows
/// were delivered.
void try_send(Network& net, FlowState& f) {
  if (f.done) return;
  const auto window = std::max(1u, static_cast<std::uint32_t>(f.cwnd));
  std::uint32_t inflight = f.inflight();
  while (f.next_seq < f.total_pkts && inflight < window) {
    const std::uint32_t s = f.next_seq++;
    if (f.sacked.count(s) != 0) continue;  // already delivered
    if (s < f.highest_sent) {
      ++f.retransmits;
      f.retx_at[s] = net.now();  // pace retransmit_holes for this seq
    }
    f.highest_sent = std::max(f.highest_sent, f.next_seq);
    ++inflight;
    net.transmit_host(f.params.src, make_data(f, s));
  }
  if (f.high_acked < f.total_pkts) net.arm_flow_timer(f);
}

void enter_recovery(FlowState& f) {
  if (f.in_recovery) return;
  f.ssthresh = std::max(f.cwnd / 2.0, 2.0);
  f.cwnd = f.ssthresh;
  f.in_recovery = true;
  f.recover_seq = f.next_seq;
}

/// Infer losses from the scoreboard and retransmit (bounded, paced per seq).
void retransmit_holes(Network& net, FlowState& f) {
  if (f.highest_sacked < f.high_acked + kLossThreshold) return;
  // Every unsacked seq with >= kLossThreshold delivered packets above it is
  // deemed lost. Holes live in [high_acked, highest_sacked-kLossThreshold].
  // Only segments the send loop has already passed are this function's
  // responsibility — after an RTO rewound next_seq, try_send resends the
  // rest and double-sending would waste the recovery window.
  const std::uint32_t lost_upto =
      std::min(f.highest_sacked - kLossThreshold,
               f.next_seq == 0 ? 0 : f.next_seq - 1);
  int budget = kRetxBudgetPerAck;
  for (std::uint32_t s = f.high_acked; s <= lost_upto && budget > 0; ++s) {
    if (f.sacked.count(s) != 0) continue;
    const auto it = f.retx_at.find(s);
    if (it != f.retx_at.end() && net.now() - it->second < f.rto) continue;
    enter_recovery(f);
    f.retx_at[s] = net.now();
    ++f.retransmits;
    --budget;
    if (traced(f)) {
      std::fprintf(stderr, "[%0.6f] flow %llu RETX seq=%u cwnd=%.1f\n",
                   net.now(), (unsigned long long)f.id.value(), s, f.cwnd);
    }
    net.transmit_host(f.params.src, make_data(f, s));
  }
}

void finish(Network& net, FlowState& f) {
  MIFO_ASSERT(!f.done);
  f.done = true;
  f.end_time = net.now();
  net.note_completion(f);
}

}  // namespace

void on_start(Network& net, FlowState& f) {
  MIFO_EXPECTS(!f.started);
  f.started = true;
  f.start_time = net.now();
  f.last_progress = net.now();
  try_send(net, f);
}

void on_ack(Network& net, FlowState& f, const Packet& ack) {
  if (f.done) return;
  // Scoreboard update: the echoed seq was delivered.
  if (ack.seq >= f.high_acked && ack.seq < f.highest_sent) {
    f.sacked.insert(ack.seq);
    f.highest_sacked = std::max(f.highest_sacked, ack.seq + 1);
  }
  if (ack.ack_no > f.high_acked) {
    // Cumulative progress.
    f.high_acked = ack.ack_no;
    f.last_progress = net.now();
    f.sacked.erase(f.sacked.begin(), f.sacked.lower_bound(f.high_acked));
    f.retx_at.erase(f.retx_at.begin(), f.retx_at.lower_bound(f.high_acked));
    if (f.in_recovery && f.high_acked >= f.recover_seq) f.in_recovery = false;
    if (f.cwnd < f.ssthresh) {
      f.cwnd += 1.0;  // slow start
    } else {
      f.cwnd += 1.0 / f.cwnd;  // congestion avoidance
    }
    if (f.high_acked >= f.total_pkts) {
      finish(net, f);
      return;
    }
  }
  retransmit_holes(net, f);
  try_send(net, f);
}

std::uint32_t on_data(Network& net, FlowState& f, const Packet& data) {
  std::uint32_t newly = 0;
  if (data.seq == f.expected) {
    ++f.expected;
    ++newly;
    // Drain any buffered out-of-order continuation.
    auto it = f.ooo.begin();
    while (it != f.ooo.end() && *it == f.expected) {
      ++f.expected;
      ++newly;
      it = f.ooo.erase(it);
    }
  } else if (data.seq > f.expected) {
    f.ooo.insert(data.seq);
  }
  // Cumulative ACK for every data packet (duplicates included), echoing the
  // arriving sequence so the sender's scoreboard stays exact.
  net.transmit_host(f.params.dst, make_ack(f, f.expected, data.seq));
  return newly;
}

void on_timer(Network& net, FlowState& f) {
  if (f.done) return;
  if (f.high_acked >= f.total_pkts) return;
  if (net.now() - f.last_progress >= f.rto) {
    if (traced(f)) {
      std::fprintf(stderr, "[%0.6f] flow %llu RTO high=%u next=%u cwnd=%.1f\n",
                   net.now(), (unsigned long long)f.id.value(), f.high_acked,
                   f.next_seq, f.cwnd);
    }
    // Retransmission timeout: rewind the send frontier to the first hole
    // and let try_send walk the lost window back out under slow start,
    // skipping SACKed segments.
    f.ssthresh = std::max(f.cwnd / 2.0, 2.0);
    f.cwnd = 2.0;
    f.in_recovery = true;
    f.recover_seq = f.highest_sent;
    f.next_seq = f.high_acked;
    f.last_progress = net.now();
  }
  try_send(net, f);
  net.arm_flow_timer(f);
}

}  // namespace mifo::dp::transport
