#include "dataplane/fib.hpp"

#include "common/contracts.hpp"
#include "dataplane/change_log.hpp"

namespace mifo::dp {

void Fib::note_change(Addr dst) {
  if (change_log_ != nullptr) change_log_->note_fib(self_, dst);
}

void Fib::set_route(Addr dst, PortId out_port) {
  MIFO_EXPECTS(dst != kInvalidAddr);
  MIFO_EXPECTS(out_port.valid());
  auto [it, inserted] = table_.try_emplace(dst, FibEntry{out_port});
  if (inserted || it->second.out_port != out_port) note_change(dst);
  if (!inserted) it->second.out_port = out_port;
}

void Fib::set_alt(Addr dst, PortId alt_port) {
  const auto it = table_.find(dst);
  MIFO_EXPECTS(it != table_.end());
  if (it->second.alt_port != alt_port) note_change(dst);
  it->second.alt_port = alt_port;
}

void Fib::clear_alt(Addr dst) {
  const auto it = table_.find(dst);
  if (it != table_.end()) {
    if (it->second.alt_port.valid()) note_change(dst);
    it->second.alt_port = PortId::invalid();
  }
}

bool Fib::remove(Addr dst) {
  const bool removed = table_.erase(dst) > 0;
  if (removed) note_change(dst);
  return removed;
}

std::optional<FibEntry> Fib::lookup(Addr dst) const {
  const auto it = table_.find(dst);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

}  // namespace mifo::dp
