#include "dataplane/fib.hpp"

#include "common/contracts.hpp"

namespace mifo::dp {

void Fib::set_route(Addr dst, PortId out_port) {
  MIFO_EXPECTS(dst != kInvalidAddr);
  MIFO_EXPECTS(out_port.valid());
  auto [it, inserted] = table_.try_emplace(dst, FibEntry{out_port});
  if (!inserted) it->second.out_port = out_port;
}

void Fib::set_alt(Addr dst, PortId alt_port) {
  const auto it = table_.find(dst);
  MIFO_EXPECTS(it != table_.end());
  it->second.alt_port = alt_port;
}

void Fib::clear_alt(Addr dst) {
  const auto it = table_.find(dst);
  if (it != table_.end()) it->second.alt_port = PortId::invalid();
}

bool Fib::remove(Addr dst) { return table_.erase(dst) > 0; }

std::optional<FibEntry> Fib::lookup(Addr dst) const {
  const auto it = table_.find(dst);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

}  // namespace mifo::dp
