#include "dataplane/router.hpp"

#include <vector>

#include "common/contracts.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "dataplane/network.hpp"

namespace mifo::dp {

namespace {
/// Pin key: the paper pins path choices at flow granularity (five-tuple
/// hashing, Section II-A); direction matters, so the destination joins the
/// flow id.
std::uint64_t pin_key(const Packet& p) {
  return hash_combine(p.flow.value(), p.dst);
}

/// Builds a packet-scoped trace event. Callers fill kind-specific fields.
obs::TraceEvent trace_base(obs::TraceKind kind, SimTime t, RouterId router,
                           const Packet& p) {
  obs::TraceEvent ev;
  ev.t = t;
  ev.kind = kind;
  ev.router = router.value();
  ev.flow = p.flow.value();
  ev.dst = p.dst;
  ev.tag = p.mifo_tag;
  // Flight-recorder context carried by the packet from its injection point
  // (possibly on another shard); the recording tracer adds shard/epoch/seq.
  ev.origin_shard = p.origin_shard;
  ev.inject_epoch = p.inject_epoch;
  return ev;
}
}  // namespace

Port& Router::port(PortId p) {
  MIFO_EXPECTS(p.value() < ports_.size());
  return ports_[p.value()];
}

const Port& Router::port(PortId p) const {
  MIFO_EXPECTS(p.value() < ports_.size());
  return ports_[p.value()];
}

PortId Router::add_port(Port port) {
  ports_.push_back(std::move(port));
  return PortId(static_cast<std::uint32_t>(ports_.size() - 1));
}

void Router::emit(Network& net, PortId out, Packet p) {
  ++counters_.forwarded;
  net.transmit_router(id_, out, std::move(p));
}

// Algorithm 1 — the MIFO forwarding engine. Tracing (tr) is opt-in and
// costs one pointer test per hook when disabled.
void Router::handle_packet(Network& net, Packet p, PortId in_port) {
  obs::Tracer* const tr = net.tracer();
  if (p.ttl == 0) {
    ++counters_.ttl_drops;
    if (tr && tr->wants(p.flow.value())) {
      tr->record(trace_base(obs::TraceKind::DropTtl, net.now(), id_, p));
    }
    return;
  }
  --p.ttl;

  // Lines 1–3: IP-in-IP handling. The outer header names an iBGP peer; if
  // it is not us, forward on the outer destination (only exercised by
  // non-full-mesh intra topologies whose FIBs carry router loopbacks).
  Addr sender = kInvalidAddr;
  if (p.encapsulated) {
    if (p.outer_dst == addr_) {
      sender = decap(p);
      if (tr && tr->wants(p.flow.value())) {
        tr->record(trace_base(obs::TraceKind::Decap, net.now(), id_, p));
      }
    } else {
      const auto outer = fib_.lookup(p.outer_dst);
      if (!outer) {
        ++counters_.no_route_drops;
        if (tr && tr->wants(p.flow.value())) {
          tr->record(
              trace_base(obs::TraceKind::DropNoRoute, net.now(), id_, p));
        }
        return;
      }
      emit(net, outer->out_port, std::move(p));
      return;
    }
  }

  // Line 4: FIB lookup yields the default and alternative output ports.
  const auto fe = fib_.lookup(p.dst);
  if (!fe) {
    ++counters_.no_route_drops;
    if (tr && tr->wants(p.flow.value())) {
      tr->record(trace_base(obs::TraceKind::DropNoRoute, net.now(), id_, p));
    }
    return;
  }
  const PortId iout = fe->out_port;
  const PortId ialt = fe->alt_port;

  // Lines 5–10: at the AS entering point, (re)write the valley-free tag.
  // Host-originated traffic is tagged 1 — the source AS may use any RIB
  // route, exactly like traffic arriving from a customer.
  if (in_port.valid()) {
    const Port& pin = port(in_port);
    if (pin.kind == PortKind::Ebgp) {
      p.mifo_tag = topo::tag_bit(pin.neighbor_rel);
      if (tr && tr->wants(p.flow.value())) {
        obs::TraceEvent ev =
            trace_base(obs::TraceKind::TagSet, net.now(), id_, p);
        ev.rel = pin.neighbor_rel;
        tr->record(ev);
      }
    } else if (pin.kind == PortKind::Host) {
      p.mifo_tag = true;
      if (tr && tr->wants(p.flow.value())) {
        obs::TraceEvent ev =
            trace_base(obs::TraceKind::TagSet, net.now(), id_, p);
        ev.rel = topo::Rel::Customer;  // host traffic behaves like customer
        tr->record(ev);
      }
    }
  }

  Port& out = port(iout);

  // Line 11, first disjunct realized as a *returned packet* test: the iBGP
  // sender that deflected this packet to us is our default next hop —
  // forwarding back would cycle (Fig. 2(b)). (The pseudocode's
  // `s = GetNextHop(I_alt)` is read as `GetNextHop(I_out)`, matching the
  // prose in Section III-B.)
  const bool returned =
      sender != kInvalidAddr && out.peer_addr == sender;
  if (returned) {
    ++counters_.returned_detected;
    if (tr && tr->wants(p.flow.value())) {
      obs::TraceEvent ev =
          trace_base(obs::TraceKind::ReturnDetected, net.now(), id_, p);
      ev.port = iout.value();
      tr->record(ev);
    }
  }

  bool use_alt = returned;

  // Line 11, second disjunct: congestion-triggered deflection, pinned per
  // flow to avoid reordering. Only at MIFO-enabled routers.
  if (!use_alt && config_.mifo_enabled && ialt.valid() &&
      out.kind != PortKind::Host) {
    const std::uint64_t key = pin_key(p);
    const auto it = pins_.find(key);
    if (it != pins_.end()) {
      it->second.last_seen = net.now();
      use_alt = it->second.use_alt;
    } else if (out.queue_ratio() >= config_.congest_threshold &&
               net.now() - out.last_pin_time >= config_.pin_cooldown) {
      const Port& alt = port(ialt);
      const bool admissible = alt.kind == PortKind::Ibgp ||
                              !config_.enforce_tag_check ||
                              topo::check_bit(p.mifo_tag, alt.neighbor_rel);
      if (admissible) {
        pins_.emplace(key, FlowPin{true, net.now()});
        out.last_pin_time = net.now();
        if (tr && tr->wants(p.flow.value())) {
          obs::TraceEvent ev =
              trace_base(obs::TraceKind::PinCreated, net.now(), id_, p);
          ev.port = ialt.value();
          tr->record(ev);
        }
        logc(LogLevel::Debug, "dp.router",
             "[%0.6f] r%u PIN flow=%llu dst=%u", net.now(), id_.value(),
             static_cast<unsigned long long>(p.flow.value()), p.dst);
        ++counters_.flow_switches;
        use_alt = true;
      } else if (config_.drop_on_congested_no_alt) {
        ++counters_.valley_drops;  // faithful line-20 behaviour
        if (tr && tr->wants(p.flow.value())) {
          obs::TraceEvent fail =
              trace_base(obs::TraceKind::TagCheckFail, net.now(), id_, p);
          fail.rel = alt.neighbor_rel;
          fail.port = ialt.value();
          tr->record(fail);
          tr->record(
              trace_base(obs::TraceKind::DropValley, net.now(), id_, p));
        }
        return;
      }
    }
  }

  if (use_alt && ialt.valid()) {
    Port& alt = port(ialt);
    if (alt.kind == PortKind::Ibgp) {
      // Lines 12–15: hand the packet to the iBGP peer holding the
      // alternative path, wrapped so the peer can identify the sender.
      MIFO_ASSERT(!p.encapsulated);
      encap(p, addr_, alt.peer_addr);
      ++counters_.encapsulated;
      ++counters_.deflected;
      if (tr && tr->wants(p.flow.value())) {
        obs::TraceEvent ev =
            trace_base(obs::TraceKind::Encap, net.now(), id_, p);
        ev.port = ialt.value();
        tr->record(ev);
        obs::TraceEvent defl =
            trace_base(obs::TraceKind::Deflect, net.now(), id_, p);
        defl.port = ialt.value();
        tr->record(defl);
      }
      emit(net, ialt, std::move(p));
      return;
    }
    // Lines 16–20: eBGP alternative — the Tag-Check valley-free gate.
    if (!config_.enforce_tag_check ||
        topo::check_bit(p.mifo_tag, alt.neighbor_rel)) {
      ++counters_.deflected;
      if (tr && tr->wants(p.flow.value())) {
        obs::TraceEvent pass =
            trace_base(obs::TraceKind::TagCheckPass, net.now(), id_, p);
        pass.rel = alt.neighbor_rel;
        pass.port = ialt.value();
        tr->record(pass);
        obs::TraceEvent defl =
            trace_base(obs::TraceKind::Deflect, net.now(), id_, p);
        defl.port = ialt.value();
        tr->record(defl);
      }
      emit(net, ialt, std::move(p));
      return;
    }
    if (returned || config_.drop_on_congested_no_alt) {
      // Returned packets must not go back to the default (cycle); without
      // an admissible alternative the packet is dropped (line 20).
      ++counters_.valley_drops;
      if (tr && tr->wants(p.flow.value())) {
        obs::TraceEvent fail =
            trace_base(obs::TraceKind::TagCheckFail, net.now(), id_, p);
        fail.rel = alt.neighbor_rel;
        fail.port = ialt.value();
        tr->record(fail);
        tr->record(trace_base(obs::TraceKind::DropValley, net.now(), id_, p));
      }
      return;
    }
    // Otherwise fall through to the default path (flow was never pinned).
  } else if (use_alt && !ialt.valid()) {
    if (returned) {
      // Returned packet but the daemon has since cleared the alternative:
      // dropping beats cycling between iBGP peers.
      ++counters_.valley_drops;
      if (tr && tr->wants(p.flow.value())) {
        tr->record(trace_base(obs::TraceKind::DropValley, net.now(), id_, p));
      }
      return;
    }
    // A pinned flow whose alternative vanished resumes the default path.
    pins_.erase(pin_key(p));
  }

  // Line 22: default path.
  if (tr && tr->wants(p.flow.value())) {
    obs::TraceEvent ev = trace_base(obs::TraceKind::Forward, net.now(), id_, p);
    ev.port = iout.value();
    tr->record(ev);
  }
  emit(net, iout, std::move(p));
}

void Router::reevaluate_flows(
    const Network& net,
    const std::function<double(PortId)>& port_utilization) {
  const SimTime now = net.now();
  for (auto it = pins_.begin(); it != pins_.end();) {
    const bool idle = now - it->second.last_seen > config_.pin_idle_timeout;
    if (idle) {
      it = pins_.erase(it);
      continue;
    }
    ++it;
  }
  // Hysteresis: release pins (flows resume their defaults) only when every
  // default egress is genuinely underutilized. Pin entries do not record
  // the destination, so release is all-or-nothing per router — matching the
  // daemon's AS-level view of its egress links.
  bool all_drained = true;
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    const Port& port = ports_[i];
    if (port.kind != PortKind::Ebgp) continue;
    const double util =
        port_utilization
            ? port_utilization(PortId(static_cast<std::uint32_t>(i)))
            : port.queue_ratio();
    if (util >= config_.low_watermark) {
      all_drained = false;
      break;
    }
  }
  if (all_drained && !pins_.empty()) {
    logc(LogLevel::Debug, "dp.router", "[%0.6f] r%u RELEASE %zu pins", now,
         id_.value(), pins_.size());
    if (obs::Tracer* tr = net.tracer()) {
      obs::TraceEvent ev;
      ev.t = now;
      ev.kind = obs::TraceKind::PinsReleased;
      ev.router = id_.value();
      ev.value = static_cast<double>(pins_.size());
      tr->record(ev);
    }
    counters_.flow_switches += pins_.size();
    pins_.clear();
  }
}

std::size_t Router::pinned_alt_flows() const {
  std::size_t n = 0;
  for (const auto& [key, pin] : pins_) n += pin.use_alt ? 1 : 0;
  return n;
}

}  // namespace mifo::dp
