#include "dataplane/network.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

#include "common/contracts.hpp"
#include "dataplane/change_log.hpp"
#include "obs/registry.hpp"

namespace mifo::dp {

namespace {
constexpr Addr kHostAddrBit = 0x80000000u;

Addr make_router_addr(RouterId r) { return r.value() + 1; }
Addr make_host_addr(HostId h) { return kHostAddrBit | (h.value() + 1); }
}  // namespace

RouterId Network::add_router(AsId as) {
  const RouterId id(static_cast<std::uint32_t>(routers_.size()));
  routers_.emplace_back(id, as, make_router_addr(id));
  return id;
}

HostId Network::add_host() {
  const HostId id(static_cast<std::uint32_t>(hosts_.size()));
  hosts_.push_back(Host{id, make_host_addr(id), Port{}, false});
  return id;
}

std::pair<PortId, PortId> Network::connect_ebgp(RouterId a, RouterId b,
                                                topo::Rel b_as_is_to_a_as,
                                                Mbps rate, SimTime delay) {
  Router& ra = router(a);
  Router& rb = router(b);
  MIFO_EXPECTS(ra.as() != rb.as());

  Port pa;
  pa.kind = PortKind::Ebgp;
  pa.peer = NodeRef::router(b);
  pa.peer_addr = rb.addr();
  pa.rate = rate;
  pa.delay = delay;
  pa.neighbor_as = rb.as();
  pa.neighbor_rel = b_as_is_to_a_as;

  Port pb = pa;
  pb.peer = NodeRef::router(a);
  pb.peer_addr = ra.addr();
  pb.neighbor_as = ra.as();
  pb.neighbor_rel = topo::reverse(b_as_is_to_a_as);

  const PortId ia = ra.add_port(std::move(pa));
  const PortId ib = rb.add_port(std::move(pb));
  ra.port(ia).peer_port = ib;
  rb.port(ib).peer_port = ia;
  return {ia, ib};
}

std::pair<PortId, PortId> Network::connect_ibgp(RouterId a, RouterId b,
                                                Mbps rate, SimTime delay) {
  Router& ra = router(a);
  Router& rb = router(b);
  MIFO_EXPECTS(ra.as() == rb.as());

  Port pa;
  pa.kind = PortKind::Ibgp;
  pa.peer = NodeRef::router(b);
  pa.peer_addr = rb.addr();
  pa.rate = rate;
  pa.delay = delay;

  Port pb = pa;
  pb.peer = NodeRef::router(a);
  pb.peer_addr = ra.addr();

  const PortId ia = ra.add_port(std::move(pa));
  const PortId ib = rb.add_port(std::move(pb));
  ra.port(ia).peer_port = ib;
  rb.port(ib).peer_port = ia;
  return {ia, ib};
}

PortId Network::connect_host(RouterId r, HostId h, Mbps rate, SimTime delay) {
  Router& rr = router(r);
  Host& hh = host(h);
  MIFO_EXPECTS(!hh.connected);

  Port pr;
  pr.kind = PortKind::Host;
  pr.peer = NodeRef::host(h);
  pr.peer_addr = hh.addr;
  pr.rate = rate;
  pr.delay = delay;
  const PortId ir = rr.add_port(std::move(pr));

  hh.uplink.kind = PortKind::Host;  // host side: single uplink to router
  hh.uplink.peer = NodeRef::router(r);
  hh.uplink.peer_addr = rr.addr();
  hh.uplink.peer_port = ir;
  hh.uplink.rate = rate;
  hh.uplink.delay = delay;
  // Host NIC queue matches the routers': with equal-speed links the sending
  // NIC is often the first bottleneck, and an oversized buffer here would
  // inflate the RTT by orders of magnitude (bufferbloat) and cripple loss
  // recovery.
  hh.uplink.queue_capacity_bytes = 100 * 1000;
  hh.connected = true;

  // Hosts have exactly one uplink and no port table of their own, so there
  // is no meaningful reverse-direction port index. Mark it invalid() rather
  // than 0: a stale 0 would alias the router's (real) port 0 if anything
  // ever traversed it.
  rr.port(ir).peer_port = PortId::invalid();
  return ir;
}

Router& Network::router(RouterId r) {
  MIFO_EXPECTS(r.value() < routers_.size());
  return routers_[r.value()];
}

const Router& Network::router(RouterId r) const {
  MIFO_EXPECTS(r.value() < routers_.size());
  return routers_[r.value()];
}

Host& Network::host(HostId h) {
  MIFO_EXPECTS(h.value() < hosts_.size());
  return hosts_[h.value()];
}

const Host& Network::host(HostId h) const {
  MIFO_EXPECTS(h.value() < hosts_.size());
  return hosts_[h.value()];
}

Addr Network::router_addr(RouterId r) const {
  MIFO_EXPECTS(r.value() < routers_.size());
  return routers_[r.value()].addr();
}

Addr Network::host_addr(HostId h) const {
  MIFO_EXPECTS(h.value() < hosts_.size());
  return hosts_[h.value()].addr;
}

FlowId Network::register_flow(const FlowParams& params) {
  MIFO_EXPECTS(host(params.src).connected);
  MIFO_EXPECTS(host(params.dst).connected);
  MIFO_EXPECTS(params.size > 0);
  MIFO_EXPECTS(params.pkt_size > 0);
  FlowState f;
  f.id = FlowId(flows_.size());
  f.params = params;
  f.src_addr = host_addr(params.src);
  f.dst_addr = host_addr(params.dst);
  f.total_pkts = static_cast<std::uint32_t>(
      (params.size + params.pkt_size - 1) / params.pkt_size);
  flows_.push_back(std::move(f));
  return flows_.back().id;
}

FlowId Network::start_flow(const FlowParams& params) {
  const FlowId id = register_flow(params);

  Event ev;
  ev.t = std::max(params.start, now_);
  ev.kind = EvKind::FlowStart;
  ev.a = static_cast<std::uint32_t>(flows_.size() - 1);
  push_event(ev);
  return id;
}

FlowState& Network::flow(FlowId id) {
  MIFO_EXPECTS(id.value() < flows_.size());
  return flows_[static_cast<std::size_t>(id.value())];
}

void Network::set_flow_complete_callback(
    std::function<void(Network&, FlowState&)> cb) {
  flow_complete_cb_ = std::move(cb);
}

void Network::add_periodic(SimTime interval,
                           std::function<void(Network&, SimTime)> fn) {
  MIFO_EXPECTS(interval > 0.0);
  periodics_.push_back(PeriodicTask{interval, std::move(fn)});
  Event ev;
  ev.t = now_ + interval;
  ev.kind = EvKind::Periodic;
  ev.a = static_cast<std::uint32_t>(periodics_.size() - 1);
  push_event(ev);
}

void Network::enable_delivery_trace(SimTime bucket_width) {
  MIFO_EXPECTS(bucket_width > 0.0);
  bucket_width_ = bucket_width;
  delivery_bytes_.clear();
}

void Network::run_until(SimTime t_end) {
  while (!events_.empty() && events_.top().t <= t_end) {
    const Event ev = events_.top();
    events_.pop();
    now_ = ev.t;
    dispatch(ev);
  }
  now_ = std::max(now_, t_end);
}

void Network::run_to_completion(SimTime t_cap) {
  while (!events_.empty() && events_.top().t <= t_cap) {
    const Event ev = events_.top();
    events_.pop();
    now_ = ev.t;
    dispatch(ev);
  }
}

void Network::push_event(Event ev) {
  ev.order = event_seq_++;
  events_.push(std::move(ev));
}

void Network::dispatch(const Event& ev) {
  switch (ev.kind) {
    case EvKind::ArriveRouter:
      router(RouterId(ev.a)).handle_packet(*this, ev.pkt, PortId(ev.b));
      break;
    case EvKind::ArriveHost:
      deliver_to_host(HostId(ev.a), ev.pkt);
      break;
    case EvKind::TxDoneRouter: {
      Port& p = router(RouterId(ev.a)).port(PortId(ev.b));
      p.busy = false;
      if (!p.up) {  // cable pulled mid-transmission: backlog is lost
        flush_down_queue(p);
        break;
      }
      if (!p.queue.empty()) begin_tx(NodeRef::router(RouterId(ev.a)), p, ev.b);
      break;
    }
    case EvKind::TxDoneHost: {
      Port& p = host(HostId(ev.a)).uplink;
      p.busy = false;
      if (!p.up) {
        flush_down_queue(p);
        break;
      }
      if (!p.queue.empty()) begin_tx(NodeRef::host(HostId(ev.a)), p, 0);
      break;
    }
    case EvKind::FlowStart:
      transport::on_start(*this, flows_[ev.a]);
      break;
    case EvKind::FlowTimer: {
      FlowState& f = flows_[ev.a];
      f.timer_pending = false;
      transport::on_timer(*this, f);
      break;
    }
    case EvKind::Periodic: {
      PeriodicTask& task = periodics_[ev.a];
      task.fn(*this, now_);
      Event next;
      next.t = now_ + task.interval;
      next.kind = EvKind::Periodic;
      next.a = ev.a;
      push_event(next);
      break;
    }
  }
}

void Network::flush_down_queue(Port& port) {
  port.drops_down += port.queue.size();
  port.queue.clear();
  port.queue_bytes = 0;
}

void Network::attach_change_log(ChangeLog* log) {
  change_log_ = log;
  for (std::size_t i = 0; i < routers_.size(); ++i) {
    routers_[i].fib().attach_change_log(log,
                                        RouterId(static_cast<std::uint32_t>(i)));
  }
}

void Network::set_port_up(RouterId r, PortId port, bool up) {
  Port& p = router(r).port(port);
  if (p.up == up) return;
  p.up = up;
  if (change_log_ != nullptr) change_log_->note_port(r, port);
  if (!up) {
    // The in-flight packet (busy tx) is already on the wire and will arrive;
    // everything still queued behind it is discarded now so the drops land
    // in the outage interval.
    flush_down_queue(p);
  } else if (!p.busy && !p.queue.empty()) {
    begin_tx(NodeRef::router(r), p, port.value());
  }
}

void Network::begin_tx(NodeRef node, Port& port, std::uint32_t port_index) {
  MIFO_EXPECTS(!port.busy);
  MIFO_EXPECTS(!port.queue.empty());
  Packet p = std::move(port.queue.front());
  port.queue.pop_front();
  port.queue_bytes -= p.wire_bytes();
  port.busy = true;
  port.bytes_sent_total += p.wire_bytes();
  ++port.pkts_sent_total;

  const SimTime tx = transfer_seconds(p.wire_bytes(), port.rate);

  Event done;
  done.t = now_ + tx;
  done.kind = node.is_router() ? EvKind::TxDoneRouter : EvKind::TxDoneHost;
  done.a = node.id;
  done.b = port_index;
  push_event(done);

  const SimTime arrive_t = now_ + tx + port.delay;

  // Shard mode: an arrival owned by another shard leaves this event queue
  // entirely and crosses over the shard pair's SPSC ring instead. tx > 0
  // guarantees arrive_t strictly exceeds the conservative window horizon,
  // so the receiving shard can never see it in its past.
  if (router_shard_ != nullptr) {
    const std::uint32_t owner = port.peer.is_router()
                                    ? (*router_shard_)[port.peer.id]
                                    : (*host_shard_)[port.peer.id];
    if (owner != self_shard_) {
      RemoteEvent rev;
      rev.t = arrive_t;
      rev.to_router = port.peer.is_router();
      rev.from_router = node.is_router();
      rev.node = port.peer.id;
      rev.port = port.peer.is_router() ? port.peer_port.value() : 0;
      rev.from_node = node.id;
      rev.from_port = port_index;
      rev.pkt = std::move(p);
      remote_sink_(std::move(rev));
      return;
    }
  }

  Event arrive;
  arrive.t = arrive_t;
  if (port.peer.is_router()) {
    arrive.kind = EvKind::ArriveRouter;
    arrive.a = port.peer.id;
    arrive.b = port.peer_port.value();
  } else {
    arrive.kind = EvKind::ArriveHost;
    arrive.a = port.peer.id;
  }
  arrive.pkt = std::move(p);
  push_event(arrive);
}

SimTime Network::next_event_time() const {
  return events_.empty() ? std::numeric_limits<SimTime>::infinity()
                         : events_.top().t;
}

void Network::enable_shard_mode(std::uint32_t self,
                                const std::vector<std::uint32_t>* router_shard,
                                const std::vector<std::uint32_t>* host_shard,
                                std::function<void(RemoteEvent&&)> sink) {
  MIFO_EXPECTS(router_shard != nullptr && host_shard != nullptr);
  MIFO_EXPECTS(sink != nullptr);
  self_shard_ = self;
  router_shard_ = router_shard;
  host_shard_ = host_shard;
  remote_sink_ = std::move(sink);
}

void Network::inject_remote(RemoteEvent&& rev) {
  MIFO_EXPECTS(rev.t >= now_);
  Event ev;
  ev.t = rev.t;
  if (rev.to_router) {
    ev.kind = EvKind::ArriveRouter;
    ev.a = rev.node;
    ev.b = rev.port;
  } else {
    ev.kind = EvKind::ArriveHost;
    ev.a = rev.node;
  }
  ev.pkt = std::move(rev.pkt);
  push_event(std::move(ev));
}

void Network::enqueue_on(NodeRef node, Port& port, std::uint32_t port_index,
                         Packet p) {
  if (!port.up) {
    ++port.drops_down;
    return;
  }
  if (!port.can_accept(p)) {
    ++port.drops_overflow;
    return;
  }
  port.queue_bytes += p.wire_bytes();
  port.queue.push_back(std::move(p));
  if (!port.busy) begin_tx(node, port, port_index);
}

void Network::transmit_router(RouterId r, PortId port, Packet p) {
  Router& rr = router(r);
  enqueue_on(NodeRef::router(r), rr.port(port), port.value(), std::move(p));
}

void Network::transmit_host(HostId h, Packet p) {
  Host& hh = host(h);
  MIFO_EXPECTS(hh.connected);
  ++injected_pkts_;
  // Flight-recorder context: every host-injected packet names the shard and
  // epoch it entered the plane in (0/0 on the serial engine). Travels with
  // the packet across RemoteEvent handoffs; never touches wire_bytes().
  p.origin_shard = router_shard_ != nullptr ? self_shard_ : 0;
  p.inject_epoch = worker_epoch_;
  enqueue_on(NodeRef::host(h), hh.uplink, 0, std::move(p));
}

void Network::arm_flow_timer(FlowState& f) {
  if (f.timer_pending || f.done) return;
  f.timer_pending = true;
  Event ev;
  ev.t = now_ + f.rto;
  ev.kind = EvKind::FlowTimer;
  ev.a = static_cast<std::uint32_t>(f.id.value());
  push_event(ev);
}

void Network::note_delivery(const FlowState& f, std::uint32_t pkts) {
  if (bucket_width_ <= 0.0) return;
  const auto idx = static_cast<std::size_t>(now_ / bucket_width_);
  if (delivery_bytes_.size() <= idx) delivery_bytes_.resize(idx + 1, 0);
  delivery_bytes_[idx] += static_cast<Bytes>(pkts) * f.params.pkt_size;
}

void Network::note_completion(FlowState& f) {
  if (flow_complete_cb_) flow_complete_cb_(*this, f);
}

void Network::deliver_to_host(HostId h, const Packet& p) {
  Host& hh = host(h);
  if (p.dst != hh.addr) {  // mis-delivered; drop (accounted, not silent)
    ++misdelivered_pkts_;
    return;
  }
  // Raw packets injected by tests/tools carry flow ids with no transport
  // state; they end here.
  if (p.flow.value() >= flows_.size()) {
    ++stale_flow_pkts_;
    return;
  }
  ++delivered_pkts_;
  FlowState& f = flow(p.flow);
  if (p.kind == PacketKind::Data) {
    const std::uint32_t delivered = transport::on_data(*this, f, p);
    if (delivered > 0) note_delivery(f, delivered);
  } else {
    transport::on_ack(*this, f, p);
  }
}

void Network::enable_link_sampling(SimTime interval) {
  MIFO_EXPECTS(interval > 0.0);
  // Byte-counter snapshots live in the closure (keyed router<<32|port), so
  // sampling never perturbs the LinkMonitor's own windows.
  auto snapshots =
      std::make_shared<std::unordered_map<std::uint64_t, std::uint64_t>>();
  add_periodic(interval, [snapshots, interval](Network& net, SimTime now) {
    for (std::size_t r = 0; r < net.routers_.size(); ++r) {
      // Shard replicas sample only the routers they own; the merged series
      // (ShardedNetwork::link_samples) then covers each link exactly once.
      if (net.router_shard_ != nullptr &&
          (*net.router_shard_)[r] != net.self_shard_) {
        continue;
      }
      Router& router = net.routers_[r];
      for (std::size_t pi = 0; pi < router.num_ports(); ++pi) {
        const Port& port = router.port(PortId(static_cast<std::uint32_t>(pi)));
        if (port.kind != PortKind::Ebgp) continue;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(r) << 32) | pi;
        std::uint64_t& prev = (*snapshots)[key];
        const Bytes delta = port.bytes_sent_total - prev;
        prev = port.bytes_sent_total;
        const Mbps rate = to_megabits(delta) / interval;
        obs::LinkSample s;
        s.t = now;
        s.router = static_cast<std::uint32_t>(r);
        s.port = static_cast<std::uint32_t>(pi);
        s.utilization = port.rate > 0.0 ? std::min(1.0, rate / port.rate) : 0.0;
        s.spare_mbps = std::max(0.0, port.rate - rate);
        s.queue_ratio = port.queue_ratio();
        net.link_samples_.push_back(s);
      }
    }
  });
}

std::vector<std::pair<std::string, std::uint64_t>> Network::drop_breakdown()
    const {
  const RouterCounters total = total_counters();
  std::uint64_t overflow = 0;
  std::uint64_t down = 0;
  for (const auto& r : routers_) {
    for (std::size_t pi = 0; pi < r.num_ports(); ++pi) {
      const Port& p = r.port(PortId(static_cast<std::uint32_t>(pi)));
      overflow += p.drops_overflow;
      down += p.drops_down;
    }
  }
  for (const auto& h : hosts_) {
    overflow += h.uplink.drops_overflow;
    down += h.uplink.drops_down;
  }
  return {
      {"valley", total.valley_drops},   {"no_route", total.no_route_drops},
      {"ttl", total.ttl_drops},         {"queue_overflow", overflow},
      {"link_down", down},              {"misdelivered", misdelivered_pkts_},
      {"stale_flow", stale_flow_pkts_},
  };
}

std::uint64_t Network::queued_pkts() const {
  std::uint64_t n = 0;
  for (const auto& r : routers_) {
    for (std::size_t pi = 0; pi < r.num_ports(); ++pi) {
      n += r.port(PortId(static_cast<std::uint32_t>(pi))).queue.size();
    }
  }
  for (const auto& h : hosts_) n += h.uplink.queue.size();
  return n;
}

void Network::publish_metrics(obs::Registry& reg,
                              const std::string& labels) const {
  // Exactly-once per (registry, labels): re-publishing overwrites the same
  // shard (set() is idempotent) instead of stacking a second one, so a
  // snapshot racing a later publish cannot double-count this network.
  obs::Registry::Shard* cached = nullptr;
  for (const PublishSlot& slot : pub_shards_) {
    if (slot.reg == &reg && slot.labels == labels) {
      cached = slot.shard;
      break;
    }
  }
  if (cached == nullptr) {
    cached = &reg.create_shard();
    pub_shards_.push_back(PublishSlot{&reg, labels, cached});
  }
  obs::Registry::Shard& shard = *cached;
  const RouterCounters c = total_counters();
  const auto set = [&](const char* name, std::uint64_t v) {
    shard.set(reg.counter(name, labels), static_cast<double>(v));
  };
  set("dp.forwarded", c.forwarded);
  set("dp.deflected", c.deflected);
  set("dp.encapsulated", c.encapsulated);
  set("dp.returned_detected", c.returned_detected);
  set("dp.flow_switches", c.flow_switches);
  set("dp.injected", injected_pkts_);
  set("dp.delivered", delivered_pkts_);
  for (const auto& [reason, count] : drop_breakdown()) {
    shard.set(reg.counter("dp.drops", labels.empty()
                                          ? "reason=" + reason
                                          : labels + ",reason=" + reason),
              static_cast<double>(count));
  }
  std::uint64_t bytes = 0;
  std::uint64_t pkts = 0;
  for (const auto& r : routers_) {
    for (std::size_t pi = 0; pi < r.num_ports(); ++pi) {
      const Port& p = r.port(PortId(static_cast<std::uint32_t>(pi)));
      bytes += p.bytes_sent_total;
      pkts += p.pkts_sent_total;
    }
  }
  set("dp.port_bytes_sent", bytes);
  set("dp.port_pkts_sent", pkts);
}

RouterCounters Network::total_counters() const {
  RouterCounters total;
  for (const auto& r : routers_) {
    const auto& c = r.counters();
    total.forwarded += c.forwarded;
    total.deflected += c.deflected;
    total.encapsulated += c.encapsulated;
    total.returned_detected += c.returned_detected;
    total.valley_drops += c.valley_drops;
    total.no_route_drops += c.no_route_drops;
    total.ttl_drops += c.ttl_drops;
    total.flow_switches += c.flow_switches;
  }
  return total;
}

}  // namespace mifo::dp
