#include "dataplane/shard.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <limits>
#include <thread>

#include "common/contracts.hpp"
#include "obs/registry.hpp"

namespace mifo::dp {

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
/// host_shard_ value of a host that has not been connect_host()ed yet.
constexpr std::uint32_t kUnowned = std::numeric_limits<std::uint32_t>::max();

/// Shared explicit bucket bounds for the shard-runtime histograms, so the
/// worker-local accumulators and the registry metric agree bin-for-bin
/// (Registry::Shard::set_histogram requires identical binning).
/// Epoch windows are sim-time: typically one cross-shard delay (~hundreds
/// of microseconds) but stretched across idle gaps between flow starts.
std::vector<double> epoch_window_bounds() {
  return {0.0,    100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3,
          10e-3,  25e-3,  50e-3,  0.1,    0.25, 1.0};
}
/// Barrier waits are wall-clock: sub-microsecond when the load is balanced,
/// milliseconds when one worker owns a hot AS and the rest stall.
std::vector<double> barrier_wait_bounds() {
  return {0.0,   1e-6,  5e-6,  10e-6, 50e-6, 100e-6, 500e-6,
          1e-3,  5e-3,  10e-3, 50e-3, 0.1,   1.0};
}

double wall_seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

ShardedNetwork::WorkerStats::WorkerStats()
    : epoch_window(epoch_window_bounds()),
      barrier_wait(barrier_wait_bounds()) {}

ShardedNetwork::ShardedNetwork(std::size_t num_shards, ShardConfig cfg)
    : cfg_(cfg) {
  MIFO_EXPECTS(num_shards >= 1);
  MIFO_EXPECTS(cfg_.ring_capacity >= 2);
  nets_.reserve(num_shards);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    nets_.push_back(std::make_unique<Network>());
    nets_.back()->enable_shard_mode(
        s, &router_shard_, &host_shard_,
        [this, s](RemoteEvent&& ev) { on_remote(s, std::move(ev)); });
  }
  slots_.resize(num_shards);
  drain_scratch_.resize(num_shards);
  worker_stats_.resize(num_shards);
}

ShardedNetwork::~ShardedNetwork() = default;

// --- topology construction (mirrored into every replica) ---------------------

RouterId ShardedNetwork::add_router(AsId as) {
  MIFO_EXPECTS(!frozen_);
  RouterId id;
  for (auto& net : nets_) id = net->add_router(as);
  router_shard_.push_back(shard_of_as(as));
  router_as_.push_back(as);
  return id;
}

HostId ShardedNetwork::add_host() {
  MIFO_EXPECTS(!frozen_);
  HostId id;
  for (auto& net : nets_) id = net->add_host();
  host_shard_.push_back(kUnowned);  // owned once attached to a router
  host_router_.push_back(RouterId(kUnowned));
  return id;
}

std::pair<PortId, PortId> ShardedNetwork::connect_ebgp(RouterId a, RouterId b,
                                                       topo::Rel rel, Mbps rate,
                                                       SimTime delay) {
  MIFO_EXPECTS(!frozen_);
  std::pair<PortId, PortId> ids;
  for (auto& net : nets_) ids = net->connect_ebgp(a, b, rel, rate, delay);
  return ids;
}

std::pair<PortId, PortId> ShardedNetwork::connect_ibgp(RouterId a, RouterId b,
                                                       Mbps rate,
                                                       SimTime delay) {
  MIFO_EXPECTS(!frozen_);
  std::pair<PortId, PortId> ids;
  for (auto& net : nets_) ids = net->connect_ibgp(a, b, rate, delay);
  return ids;
}

PortId ShardedNetwork::connect_host(RouterId r, HostId h, Mbps rate,
                                    SimTime delay) {
  MIFO_EXPECTS(!frozen_);
  PortId id;
  for (auto& net : nets_) id = net->connect_host(r, h, rate, delay);
  host_shard_[h.value()] = router_shard_[r.value()];
  host_router_[h.value()] = r;
  return id;
}

// --- partition ----------------------------------------------------------------

std::uint32_t ShardedNetwork::shard_of_as(AsId as) const {
  // FNV-1a over the AS id's bytes. Anything uniform works; FNV keeps the
  // placement stable across runs, builds and shard-map reloads.
  std::uint64_t h = 14695981039346656037ull;
  auto v = static_cast<std::uint64_t>(as.value());
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffu;
    h *= 1099511628211ull;
  }
  return static_cast<std::uint32_t>(h % nets_.size());
}

std::uint32_t ShardedNetwork::shard_of(RouterId r) const {
  MIFO_EXPECTS(r.value() < router_shard_.size());
  return router_shard_[r.value()];
}

std::uint32_t ShardedNetwork::shard_of(HostId h) const {
  MIFO_EXPECTS(h.value() < host_shard_.size());
  MIFO_EXPECTS(host_shard_[h.value()] != kUnowned);
  return host_shard_[h.value()];
}

// --- owner-replica access -----------------------------------------------------

Router& ShardedNetwork::router(RouterId r) {
  return nets_[shard_of(r)]->router(r);
}

const Router& ShardedNetwork::router(RouterId r) const {
  return nets_[shard_of(r)]->router(r);
}

std::size_t ShardedNetwork::num_routers() const {
  return router_shard_.size();
}

std::size_t ShardedNetwork::num_hosts() const { return host_shard_.size(); }

Addr ShardedNetwork::router_addr(RouterId r) const {
  return nets_[0]->router_addr(r);
}

Addr ShardedNetwork::host_addr(HostId h) const {
  return nets_[0]->host_addr(h);
}

// --- flows --------------------------------------------------------------------

FlowId ShardedNetwork::start_flow(const FlowParams& params) {
  const std::uint32_t src = shard_of(params.src);
  FlowId id;
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    // Same FlowId in every replica (ids are dense and construction is
    // mirrored); only the source shard gets the FlowStart event.
    id = s == src ? nets_[s]->start_flow(params)
                  : nets_[s]->register_flow(params);
  }
  return id;
}

std::size_t ShardedNetwork::num_flows() const {
  return nets_[0]->flows().size();
}

const FlowState& ShardedNetwork::sender_flow(FlowId id) const {
  MIFO_EXPECTS(id.value() < num_flows());
  const FlowParams& p = nets_[0]->flows()[id.value()].params;
  return nets_[shard_of(p.src)]->flows()[id.value()];
}

const FlowState& ShardedNetwork::receiver_flow(FlowId id) const {
  MIFO_EXPECTS(id.value() < num_flows());
  const FlowParams& p = nets_[0]->flows()[id.value()].params;
  return nets_[shard_of(p.dst)]->flows()[id.value()];
}

// --- periodic work ------------------------------------------------------------

void ShardedNetwork::add_periodic(AsId as, SimTime interval,
                                  std::function<void(Network&, SimTime)> fn) {
  nets_[shard_of_as(as)]->add_periodic(interval, std::move(fn));
}

// --- cross-shard handoff ------------------------------------------------------

void ShardedNetwork::on_remote(std::uint32_t from, RemoteEvent&& ev) {
  const std::uint32_t to =
      ev.to_router ? router_shard_[ev.node] : host_shard_[ev.node];
  RingSlot& slot = ring_slot(from, to);
  MIFO_ASSERT(slot.ring != nullptr);
  if (!slot.ring->try_push(std::move(ev))) {
    ++slot.overflow;  // bounded handoff: the packet is dropped, accounted
    return;
  }
  ++slot.pushed;
  slot.peak = std::max(slot.peak, slot.ring->size());
}

void ShardedNetwork::drain_into(std::uint32_t s) {
  std::vector<RemoteEvent>& batch = drain_scratch_[s];
  batch.clear();
  for (std::uint32_t from = 0; from < num_shards(); ++from) {
    if (from == s) continue;
    ring_slot(from, s).ring->drain_into(batch);
  }
  if (batch.empty()) return;
  // Ring arrival order depends on which producer ran when; restore the
  // content-derived total order so injection (which assigns event_seq_, the
  // same-timestamp tie-break) is deterministic. (t, from_node, from_port) is
  // unique: a port's transmissions are serialized and tx time is non-zero.
  std::sort(batch.begin(), batch.end(),
            [](const RemoteEvent& x, const RemoteEvent& y) {
              if (x.t != y.t) return x.t < y.t;
              if (x.from_router != y.from_router) return x.from_router;
              if (x.from_node != y.from_node) return x.from_node < y.from_node;
              return x.from_port < y.from_port;
            });
  for (RemoteEvent& ev : batch) nets_[s]->inject_remote(std::move(ev));
  batch.clear();
}

// --- execution ----------------------------------------------------------------

void ShardedNetwork::freeze() {
  if (frozen_) return;
  frozen_ = true;
  const std::uint32_t n = num_shards();
  rings_.resize(static_cast<std::size_t>(n) * n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      ring_slot(i, j).ring =
          std::make_unique<SpscRing<RemoteEvent>>(cfg_.ring_capacity);
    }
  }

  // The conservative window is the minimum propagation delay of any link
  // whose endpoints hash to different shards (in practice: eBGP links, since
  // an AS never straddles shards). Topology is identical in every replica,
  // so replica 0 is representative.
  SimTime min_delay = kInf;
  const Network& net0 = *nets_[0];
  for (std::size_t r = 0; r < net0.num_routers(); ++r) {
    const Router& router = net0.router(RouterId(static_cast<std::uint32_t>(r)));
    for (std::size_t pi = 0; pi < router.num_ports(); ++pi) {
      const Port& port = router.port(PortId(static_cast<std::uint32_t>(pi)));
      if (!port.peer.is_router()) continue;  // host links never cross shards
      if (router_shard_[port.peer.id] == router_shard_[r]) continue;
      min_delay = std::min(min_delay, port.delay);
    }
  }
  if (cfg_.window > 0.0) {
    MIFO_EXPECTS(cfg_.window <= min_delay);
    window_ = cfg_.window;
  } else {
    window_ = min_delay;  // +inf with no cross-shard links: free-running
  }
  MIFO_EXPECTS(window_ > 0.0);
}

void ShardedNetwork::run_epochs(SimTime t_end) {
  const std::uint32_t n = num_shards();

  // Barrier-completion state. Written by the completion function (which runs
  // on exactly one thread per phase, synchronized against every worker's
  // arrive/unblock by the barrier itself), read by all workers after the
  // compute phase.
  struct Control {
    SimTime horizon = 0.0;
    bool done = false;
    bool compute = true;  ///< phases alternate compute / plain rendezvous
  } ctl;

  auto completion = [this, &ctl, t_end]() noexcept {
    if (!ctl.compute) {
      ctl.compute = true;  // post-window rendezvous: nothing to decide
      return;
    }
    ctl.compute = false;
    SimTime m = kInf;
    for (const ShardSlot& slot : slots_) m = std::min(m, slot.next_event);
    if (m > t_end) {
      // Nothing anywhere within the run bound (and the rings were drained
      // right before this barrier, with no worker running in between that
      // could refill them): the epoch loop is finished.
      ctl.done = true;
      ctl.horizon = t_end;
    } else {
      // Every event generated inside the window arrives after
      // m + tx + min_cross_delay > horizon, so no shard can receive work
      // in its past.
      ctl.horizon = std::min(m + window_, t_end);
    }
  };
  std::barrier bar(static_cast<std::ptrdiff_t>(n), completion);

  auto worker = [this, &bar, &ctl, t_end](std::uint32_t s) {
    Network& net = *nets_[s];
    WorkerStats& ws = worker_stats_[s];
    SimTime prev_horizon = net.now();
    while (true) {
      drain_into(s);
      slots_[s].next_event = net.next_event_time();
      const auto w0 = std::chrono::steady_clock::now();
      bar.arrive_and_wait();  // completion computes horizon / done
      ws.barrier_wait.add(wall_seconds_since(w0));
      if (ctl.done) {
        net.run_until(t_end);  // no events left <= t_end; advances the clock
        return;
      }
      // New conservative epoch window: stamp the worker epoch (flight-
      // recorder context for injected packets and trace events) before any
      // event of the window executes. The epoch count is a pure function of
      // the simulated event set, so it is identical across same-seed runs.
      ++ws.epochs;
      net.set_worker_epoch(net.worker_epoch() + 1);
      ws.epoch_window.add(ctl.horizon - prev_horizon);
      prev_horizon = ctl.horizon;
      net.run_until(ctl.horizon);
      const auto w1 = std::chrono::steady_clock::now();
      bar.arrive_and_wait();  // everyone out of the window before draining
      ws.barrier_wait.add(wall_seconds_since(w1));
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  for (std::uint32_t s = 1; s < n; ++s) threads.emplace_back(worker, s);
  worker(0);
  for (std::thread& t : threads) t.join();
}

void ShardedNetwork::run_until(SimTime t_end) {
  freeze();
  if (num_shards() == 1) {
    // Single shard: plain serial execution (the shard-mode hooks are active
    // but every node is self-owned, so nothing ever diverts to a ring).
    nets_[0]->run_until(t_end);
    return;
  }
  run_epochs(t_end);
}

void ShardedNetwork::run_to_completion(SimTime t_cap) {
  // The epoch loop already terminates as soon as every queue and ring is
  // empty (m == +inf), so completion-capped and bound-capped runs coincide;
  // unlike the serial engine the clock always lands on the cap.
  run_until(t_cap);
}

bool ShardedNetwork::idle() const {
  for (const auto& net : nets_) {
    if (!net->idle()) return false;
  }
  for (const RingSlot& slot : rings_) {
    if (slot.ring != nullptr && !slot.ring->empty()) return false;
  }
  return true;
}

// --- failure injection --------------------------------------------------------

void ShardedNetwork::set_port_up(RouterId r, PortId port, bool up) {
  nets_[shard_of(r)]->set_port_up(r, port, up);
}

// --- observability ------------------------------------------------------------

void ShardedNetwork::enable_delivery_trace(SimTime bucket_width) {
  for (auto& net : nets_) net->enable_delivery_trace(bucket_width);
}

std::vector<Bytes> ShardedNetwork::delivery_buckets() const {
  std::vector<Bytes> merged;
  for (const auto& net : nets_) {
    const std::vector<Bytes>& b = net->delivery_buckets();
    if (b.size() > merged.size()) merged.resize(b.size(), 0);
    for (std::size_t i = 0; i < b.size(); ++i) merged[i] += b[i];
  }
  return merged;
}

void ShardedNetwork::enable_link_sampling(SimTime interval) {
  // Every replica samples (the sampler skips routers it does not own), so
  // the merged series covers each eBGP port exactly once.
  for (auto& net : nets_) net->enable_link_sampling(interval);
}

obs::LinkSeries ShardedNetwork::link_samples() const {
  obs::LinkSeries merged;
  for (const auto& net : nets_) {
    const obs::LinkSeries& s = net->link_samples();
    merged.insert(merged.end(), s.begin(), s.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const obs::LinkSample& a, const obs::LinkSample& b) {
              if (a.t != b.t) return a.t < b.t;
              if (a.router != b.router) return a.router < b.router;
              return a.port < b.port;
            });
  return merged;
}

std::uint64_t ShardedNetwork::injected_pkts() const {
  std::uint64_t n = 0;
  for (const auto& net : nets_) n += net->injected_pkts();
  return n;
}

std::uint64_t ShardedNetwork::delivered_pkts() const {
  std::uint64_t n = 0;
  for (const auto& net : nets_) n += net->delivered_pkts();
  return n;
}

std::uint64_t ShardedNetwork::misdelivered_pkts() const {
  std::uint64_t n = 0;
  for (const auto& net : nets_) n += net->misdelivered_pkts();
  return n;
}

std::uint64_t ShardedNetwork::stale_flow_pkts() const {
  std::uint64_t n = 0;
  for (const auto& net : nets_) n += net->stale_flow_pkts();
  return n;
}

RouterCounters ShardedNetwork::total_counters() const {
  RouterCounters total;
  for (const auto& net : nets_) {
    const RouterCounters c = net->total_counters();
    total.forwarded += c.forwarded;
    total.deflected += c.deflected;
    total.encapsulated += c.encapsulated;
    total.returned_detected += c.returned_detected;
    total.valley_drops += c.valley_drops;
    total.no_route_drops += c.no_route_drops;
    total.ttl_drops += c.ttl_drops;
    total.flow_switches += c.flow_switches;
  }
  return total;
}

std::vector<std::pair<std::string, std::uint64_t>>
ShardedNetwork::drop_breakdown() const {
  // Dynamic state of a node is non-zero only in its owner replica, so the
  // elementwise sum of the per-replica breakdowns is the network total.
  std::vector<std::pair<std::string, std::uint64_t>> merged =
      nets_[0]->drop_breakdown();
  for (std::size_t s = 1; s < nets_.size(); ++s) {
    const auto shard = nets_[s]->drop_breakdown();
    MIFO_ASSERT(shard.size() == merged.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
      MIFO_ASSERT(shard[i].first == merged[i].first);
      merged[i].second += shard[i].second;
    }
  }
  std::uint64_t ring_overflow = 0;
  for (const RingSlot& slot : rings_) ring_overflow += slot.overflow;
  merged.emplace_back("ring_overflow", ring_overflow);
  return merged;
}

std::uint64_t ShardedNetwork::queued_pkts() const {
  std::uint64_t n = 0;
  for (const auto& net : nets_) n += net->queued_pkts();
  return n;
}

void ShardedNetwork::enable_tracing(std::size_t capacity_per_shard) {
  if (!tracers_.empty()) return;
  tracers_.reserve(num_shards());
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    tracers_.push_back(std::make_unique<obs::Tracer>(capacity_per_shard));
    tracers_.back()->set_shard(s);
    nets_[s]->set_tracer(tracers_.back().get());
  }
}

void ShardedNetwork::set_trace_flow(std::uint64_t flow) {
  for (auto& t : tracers_) t->set_flow_filter(flow);
}

const obs::Tracer* ShardedNetwork::tracer(std::uint32_t s) const {
  if (s >= tracers_.size()) return nullptr;
  return tracers_[s].get();
}

obs::Timeline ShardedNetwork::timeline() const {
  std::vector<const obs::Tracer*> ts;
  ts.reserve(tracers_.size());
  for (const auto& t : tracers_) ts.push_back(t.get());
  return obs::merge_timelines(ts);
}

std::vector<RingStats> ShardedNetwork::ring_stats() const {
  std::vector<RingStats> out;
  const std::uint32_t n = num_shards();
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const RingSlot& slot = ring_slot(i, j);
      out.push_back(RingStats{i, j, slot.pushed, slot.overflow, slot.peak});
    }
  }
  return out;
}

void ShardedNetwork::publish_metrics(obs::Registry& reg,
                                     const std::string& labels) const {
  for (const auto& net : nets_) net->publish_metrics(reg, labels);

  // Exactly-once per (registry, labels) — same idempotent-overwrite scheme
  // as Network::publish_metrics, so a snapshot between two publishes (e.g.
  // racing a barrier rendezvous) never sees this plane's gauges twice.
  obs::Registry::Shard* cached = nullptr;
  for (const PublishSlot& slot : pub_shards_) {
    if (slot.reg == &reg && slot.labels == labels) {
      cached = slot.shard;
      break;
    }
  }
  if (cached == nullptr) {
    cached = &reg.create_shard();
    pub_shards_.push_back(PublishSlot{&reg, labels, cached});
  }
  obs::Registry::Shard& shard = *cached;
  shard.set(reg.gauge("dp.num_shards", labels),
            static_cast<double>(num_shards()));
  if (window_ < kInf) {
    shard.set(reg.gauge("dp.shard_window_seconds", labels), window_);
  }
  for (const RingStats& rs : ring_stats()) {
    std::string l = "from=" + std::to_string(rs.from) +
                    ",to=" + std::to_string(rs.to);
    if (!labels.empty()) l = labels + "," + l;
    shard.set(reg.counter("dp.ring_pushed", l),
              static_cast<double>(rs.pushed));
    shard.set(reg.counter("dp.ring_overflow", l),
              static_cast<double>(rs.overflow));
    shard.set(reg.gauge("dp.ring_occupancy_peak", l),
              static_cast<double>(rs.peak));
  }

  // Shard-runtime instrumentation: per-worker epoch counts plus the merged
  // epoch-window (sim-time) and barrier-wait (wall-clock) histograms.
  // set_histogram replaces rather than accumulates, keeping re-publish
  // idempotent; the per-worker accumulators are summed into one scratch
  // histogram per family first.
  Histogram window_hist(epoch_window_bounds());
  Histogram wait_hist(barrier_wait_bounds());
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    const WorkerStats& ws = worker_stats_[s];
    std::string l = "shard=" + std::to_string(s);
    if (!labels.empty()) l = labels + "," + l;
    shard.set(reg.counter("dp.epochs", l), static_cast<double>(ws.epochs));
    window_hist.merge(ws.epoch_window);
    wait_hist.merge(ws.barrier_wait);
  }
  shard.set_histogram(
      reg.histogram("dp.epoch_window_seconds", epoch_window_bounds(), labels),
      window_hist);
  shard.set_histogram(
      reg.histogram("dp.barrier_wait_seconds", barrier_wait_bounds(), labels),
      wait_hist);
}

std::vector<Router> ShardedNetwork::gather_routers() const {
  std::vector<Router> out;
  out.reserve(num_routers());
  for (std::size_t r = 0; r < num_routers(); ++r) {
    const RouterId id(static_cast<std::uint32_t>(r));
    out.push_back(nets_[shard_of(id)]->router(id));
  }
  return out;
}

}  // namespace mifo::dp
