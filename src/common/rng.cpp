#include "common/rng.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace mifo {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash64(std::uint64_t x) {
  std::uint64_t state = x;
  return splitmix64(state);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return hash64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::bounded(std::uint64_t bound) {
  MIFO_EXPECTS(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  MIFO_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

double Rng::exponential(double rate) {
  MIFO_EXPECTS(rate > 0.0);
  // 1 - uniform() is in (0, 1], avoiding log(0).
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::split() { return Rng((*this)()); }

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
  MIFO_EXPECTS(n > 0);
  MIFO_EXPECTS(alpha >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -alpha);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::pmf(std::size_t rank) const {
  MIFO_EXPECTS(rank >= 1 && rank <= cdf_.size());
  const double hi = cdf_[rank - 1];
  const double lo = rank == 1 ? 0.0 : cdf_[rank - 2];
  return hi - lo;
}

}  // namespace mifo
