// Leveled, component-tagged logging to stderr. Off by default above Warn so
// simulation inner loops stay quiet; benches raise the level for progress
// reporting, or set MIFO_LOG (see below) without recompiling.
//
// Line format:  [  12.345678 INFO  dp.router] message
// (elapsed process seconds, severity, optional component tag).
//
// MIFO_LOG controls the global threshold and an optional component filter:
//   MIFO_LOG=debug            everything at Debug and above
//   MIFO_LOG=info             Info and above
//   MIFO_LOG=debug:dp         Debug, but only components starting with "dp"
//                             (untagged lines always pass the filter)
// Explicit set_log_level() calls override the env-derived level.
#pragma once

#include <string>

namespace mifo {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are discarded. Atomic: benches raise
/// the level while pool workers log.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Restrict tagged log lines to components with this prefix ("" = all).
void set_log_component_filter(std::string prefix);

/// Whether a line at `level` tagged `component` (nullptr = untagged) would
/// be emitted. Exposed so callers can skip expensive argument formatting.
[[nodiscard]] bool log_enabled(LogLevel level, const char* component = nullptr);

/// Parsed MIFO_LOG spec (exposed for tests).
struct LogSpec {
  LogLevel level = LogLevel::Warn;
  std::string component_prefix;  ///< empty = no filter
};
[[nodiscard]] LogSpec parse_log_spec(const std::string& spec,
                                     LogLevel fallback = LogLevel::Warn);

namespace detail {
void log_line(LogLevel level, const char* component,
              const std::string& message);
}

/// printf-style logging. The gnu::format attribute gives compile-time
/// format/argument checking at every call site; messages longer than the
/// stack buffer are heap-formatted at exact size (never silently truncated).
[[gnu::format(printf, 2, 3)]] void log(LogLevel level, const char* fmt, ...);

/// Same, with a component tag (e.g. "dp.router", "sim.fluid").
[[gnu::format(printf, 3, 4)]] void logc(LogLevel level, const char* component,
                                        const char* fmt, ...);

#define MIFO_LOG_DEBUG(...) ::mifo::log(::mifo::LogLevel::Debug, __VA_ARGS__)
#define MIFO_LOG_INFO(...) ::mifo::log(::mifo::LogLevel::Info, __VA_ARGS__)
#define MIFO_LOG_WARN(...) ::mifo::log(::mifo::LogLevel::Warn, __VA_ARGS__)
#define MIFO_LOG_ERROR(...) ::mifo::log(::mifo::LogLevel::Error, __VA_ARGS__)

}  // namespace mifo
