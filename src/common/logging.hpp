// Minimal leveled logging to stderr. Off by default above Warn so simulation
// inner loops stay quiet; benches raise the level for progress reporting.
#pragma once

#include <cstdio>
#include <string>

namespace mifo {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

template <typename... Args>
void log(LogLevel level, const char* fmt, Args... args) {
  if (level < log_level()) return;
  if constexpr (sizeof...(Args) == 0) {
    detail::log_line(level, fmt);
  } else {
    char buffer[1024];
    std::snprintf(buffer, sizeof(buffer), fmt, args...);
    detail::log_line(level, buffer);
  }
}

#define MIFO_LOG_DEBUG(...) ::mifo::log(::mifo::LogLevel::Debug, __VA_ARGS__)
#define MIFO_LOG_INFO(...) ::mifo::log(::mifo::LogLevel::Info, __VA_ARGS__)
#define MIFO_LOG_WARN(...) ::mifo::log(::mifo::LogLevel::Warn, __VA_ARGS__)
#define MIFO_LOG_ERROR(...) ::mifo::log(::mifo::LogLevel::Error, __VA_ARGS__)

}  // namespace mifo
