// Deterministic, seedable random number generation.
//
// Every stochastic component in the repo (topology generation, traffic
// matrices, deployment sampling, flow hashing) draws from these generators so
// that a (seed, parameters) pair fully reproduces an experiment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mifo {

/// SplitMix64 — used to expand one user seed into generator state and for
/// stateless hashing (flow five-tuple -> path choice).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless avalanche hash of a single 64-bit value (SplitMix64 finalizer).
[[nodiscard]] std::uint64_t hash64(std::uint64_t x);

/// Combine two hashes (order-dependent).
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b);

/// xoshiro256** 1.0 — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t bounded(std::uint64_t bound);

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Exponential variate with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate);

  /// True with probability p.
  [[nodiscard]] bool bernoulli(double p);

  /// Uniformly chosen index into a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    return items[bounded(items.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[bounded(i)]);
    }
  }

  /// Split off an independently seeded child generator (for parallel use).
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4];
};

/// Samples an integer rank in [1, n] from a Zipf distribution with exponent
/// `alpha` using an inverted-CDF table. Matches the paper's power-law
/// consumer model F(i) = a * i^-alpha (Section IV-B).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  /// Probability mass of rank i (1-based).
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace mifo
