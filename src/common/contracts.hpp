// Lightweight design-by-contract macros in the spirit of the C++ Core
// Guidelines' Expects()/Ensures() (I.6, I.8). Violations abort with a
// diagnostic; they are kept on in all build types because every simulation
// result in this repo depends on these invariants holding.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mifo::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s violation: (%s) at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace mifo::detail

#define MIFO_EXPECTS(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::mifo::detail::contract_failure("Precondition", #cond, __FILE__, \
                                       __LINE__);                       \
  } while (false)

#define MIFO_ENSURES(cond)                                               \
  do {                                                                   \
    if (!(cond))                                                         \
      ::mifo::detail::contract_failure("Postcondition", #cond, __FILE__, \
                                       __LINE__);                        \
  } while (false)

#define MIFO_ASSERT(cond)                                              \
  do {                                                                 \
    if (!(cond))                                                       \
      ::mifo::detail::contract_failure("Invariant", #cond, __FILE__,   \
                                       __LINE__);                      \
  } while (false)
