// Bounded lock-free single-producer / single-consumer ring.
//
// The cross-shard packet handoff of the sharded data plane (DESIGN.md §6):
// each ordered shard pair owns one ring, the producing worker pushes during
// its epoch window, the consuming worker drains at the epoch barrier. The
// MW-NFD input-thread -> forwarding-worker queues follow the same shape.
//
// Wait-free for both sides: one producer thread may call try_push/size and
// one consumer thread may call try_pop/empty concurrently with it. Indices
// are monotonically increasing uint64s (no wrap handling needed within any
// realistic run) on separate cache lines so the two sides do not false-share.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "common/contracts.hpp"

namespace mifo {

/// Destructive-interference distance. A constant rather than
/// std::hardware_destructive_interference_size: the latter varies with
/// -mtune (gcc warns about exactly that ABI trap), and 64 is correct for
/// every x86-64/aarch64 target this builds on.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full (the caller decides
  /// whether that is a drop — the sharded plane accounts it as
  /// `ring_overflow` in the drop breakdown).
  [[nodiscard]] bool try_push(T&& value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    // tail_cache_ avoids touching the consumer's line until actually full.
    if (head - tail_cache_ > mask_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side drain into `out` (appends). Returns the number popped.
  std::size_t drain_into(std::vector<T>& out) {
    std::size_t n = 0;
    T item;
    while (try_pop(item)) {
      out.push_back(std::move(item));
      ++n;
    }
    return n;
  }

  /// Approximate occupancy; exact when the other side is quiescent (the
  /// barrier protocol guarantees that at every sample point we care about).
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(head - tail);
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  const std::uint64_t mask_;
  std::vector<T> slots_;

  alignas(kCacheLine) std::atomic<std::uint64_t> head_{0};  ///< producer
  alignas(kCacheLine) std::uint64_t tail_cache_ = 0;        ///< producer-local
  alignas(kCacheLine) std::atomic<std::uint64_t> tail_{0};  ///< consumer
  alignas(kCacheLine) std::uint64_t head_cache_ = 0;        ///< consumer-local
};

}  // namespace mifo
