#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/contracts.hpp"

namespace mifo {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double RunningStats::max() const {
  return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Cdf::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double p) const {
  MIFO_EXPECTS(p >= 0.0 && p <= 1.0);
  MIFO_EXPECTS(!samples_.empty());
  ensure_sorted();
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(idx, samples_.size() - 1)];
}

double Cdf::fraction_at_least(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::lower_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(samples_.end() - it) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Cdf::table(double lo, double hi,
                                                  std::size_t points) const {
  MIFO_EXPECTS(points >= 2);
  MIFO_EXPECTS(hi > lo);
  std::vector<std::pair<double, double>> rows;
  rows.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) /
                 static_cast<double>(points - 1);
    rows.emplace_back(x, 100.0 * at(x));
  }
  return rows;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  MIFO_EXPECTS(hi > lo);
  MIFO_EXPECTS(bins > 0);
}

Histogram::Histogram(std::vector<double> edges)
    : lo_(0.0), hi_(0.0), edges_(std::move(edges)) {
  MIFO_EXPECTS(edges_.size() >= 2);
  MIFO_EXPECTS(std::is_sorted(edges_.begin(), edges_.end()));
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    MIFO_EXPECTS(edges_[i] > edges_[i - 1]);
  }
  lo_ = edges_.front();
  hi_ = edges_.back();
  counts_.assign(edges_.size() - 1, 0);
}

void Histogram::add(double x) {
  long idx;
  if (edges_.empty()) {
    const double span = hi_ - lo_;
    idx = static_cast<long>((x - lo_) / span *
                            static_cast<double>(counts_.size()));
  } else {
    // First edge strictly greater than x; bin i covers [edges[i], edges[i+1]).
    idx = std::upper_bound(edges_.begin(), edges_.end(), x) -
          edges_.begin() - 1;
  }
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::bin_count(std::size_t i) const {
  MIFO_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_low(std::size_t i) const {
  MIFO_EXPECTS(i < counts_.size());
  if (!edges_.empty()) return edges_[i];
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const {
  MIFO_EXPECTS(i < counts_.size());
  if (!edges_.empty()) return edges_[i + 1];
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(counts_.size());
}

void Histogram::merge(const Histogram& other) {
  MIFO_EXPECTS(lo_ == other.lo_ && hi_ == other.hi_);
  MIFO_EXPECTS(edges_ == other.edges_);
  MIFO_EXPECTS(counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double Histogram::fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bin_count(i)) / static_cast<double>(total_);
}

void IntCounter::add(std::uint64_t value) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  ++counts_[value];
  ++total_;
}

std::uint64_t IntCounter::count_of(std::uint64_t value) const {
  return value < counts_.size() ? counts_[value] : 0;
}

double IntCounter::fraction_of(std::uint64_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count_of(value)) / static_cast<double>(total_);
}

double IntCounter::fraction_at_most(std::uint64_t value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (std::uint64_t v = 0; v <= value && v < counts_.size(); ++v) {
    acc += counts_[v];
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::uint64_t IntCounter::max_value() const {
  for (std::size_t i = counts_.size(); i > 0; --i) {
    if (counts_[i - 1] > 0) return i - 1;
  }
  return 0;
}

std::string format_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size(), 0);
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    MIFO_EXPECTS(row.size() == header.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c] + 2; ++pad) {
        os << ' ';
      }
    }
    os << '\n';
  };
  emit(header);
  std::vector<std::string> rule;
  rule.reserve(header.size());
  for (auto w : widths) rule.emplace_back(std::string(w, '-'));
  emit(rule);
  for (const auto& row : rows) emit(row);
  return os.str();
}

}  // namespace mifo
