#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/contracts.hpp"

namespace mifo {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MIFO_EXPECTS(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    MIFO_EXPECTS(!stop_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = pool.size();
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::atomic<std::size_t> next{0};
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.submit([&fn, &next, n, chunk] {
      for (;;) {
        const std::size_t begin = next.fetch_add(chunk);
        if (begin >= n) return;
        const std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  pool.wait_idle();
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mifo
