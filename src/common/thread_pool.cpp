#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/contracts.hpp"
#include "common/env.hpp"

namespace mifo {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MIFO_EXPECTS(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    MIFO_EXPECTS(!stop_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace {

/// Completion tracking local to one parallel_for call, so concurrent or
/// nested invocations on the same pool never wait on each other's tasks.
/// Heap-allocated (shared with the helper tasks): a helper that is still
/// queued when the call returns must find valid state when it finally runs.
struct ForState {
  std::atomic<std::size_t> next{0};  ///< next unclaimed iteration offset
  std::atomic<bool> abort{false};    ///< set on first exception
  std::mutex mutex;
  std::condition_variable idle;
  std::size_t active = 0;  ///< helpers currently executing chunks
  std::exception_ptr error;
};

}  // namespace

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.size();
  if (workers <= 1 || n == 1) {
    // Serial fallback: in order, exceptions propagate directly.
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const std::size_t chunk = std::max<std::size_t>(1, n / (workers * 4));
  auto st = std::make_shared<ForState>();

  // `fn` is only dereferenced after a successful claim, and claims are
  // impossible once the call returns (all offsets handed out, or abort set
  // before any unstarted helper checks it) — so helpers may safely outlive
  // this frame while capturing `fn` by reference.
  auto run_chunks = [&st_ref = *st, &fn, begin, n, chunk] {
    while (!st_ref.abort.load(std::memory_order_relaxed)) {
      const std::size_t lo = st_ref.next.fetch_add(chunk);
      if (lo >= n) return;
      const std::size_t hi = std::min(n, lo + chunk);
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(begin + i);
      } catch (...) {
        std::lock_guard lock(st_ref.mutex);
        if (!st_ref.error) st_ref.error = std::current_exception();
        st_ref.abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // One helper per worker, each looping over chunk claims. The caller
  // participates too, so progress is guaranteed even when every pool worker
  // is busy with unrelated (or ancestor) tasks — nested parallel_for from
  // inside a pool task cannot deadlock.
  const std::size_t helpers = std::min(workers, (n + chunk - 1) / chunk);
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([st, run_chunks] {
      {
        std::lock_guard lock(st->mutex);
        ++st->active;
      }
      run_chunks();
      std::lock_guard lock(st->mutex);
      if (--st->active == 0) st->idle.notify_all();
    });
  }
  run_chunks();
  // All offsets are claimed (or abort is set); wait only for helpers that
  // actually started — ones still queued will no-op when they run.
  std::unique_lock lock(st->mutex);
  st->idle.wait(lock, [&st] { return st->active == 0; });
  if (st->error) std::rethrow_exception(st->error);
}

std::size_t default_thread_count() {
  const std::uint64_t requested = env_u64("MIFO_THREADS", 0);
  if (requested > 0) return static_cast<std::size_t>(requested);
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& global_pool() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

}  // namespace mifo
