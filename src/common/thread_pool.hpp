// A small work-stealing-free thread pool with a parallel_for helper.
//
// The heavy loops in this repo (per-destination route computation, per-pair
// path counting, independent simulation runs) are embarrassingly parallel;
// parallel_for chunks them across hardware threads. On a single-core host it
// degrades gracefully to serial execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mifo {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run `fn(i)` for i in [0, n) across `pool`, in contiguous chunks.
/// Blocks until all iterations complete. `fn` must be safe to call
/// concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Shared process-wide pool (lazily constructed).
ThreadPool& global_pool();

}  // namespace mifo
