// A small work-stealing-free thread pool with a parallel_for helper.
//
// The heavy loops in this repo (per-destination route computation, per-pair
// path counting, independent simulation runs) are embarrassingly parallel;
// parallel_for chunks them across hardware threads. On a single-core host it
// degrades gracefully to serial execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mifo {

class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately. Safe to call from inside a
  /// running task (the new task may start before or after the caller ends).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished. Must not be called from
  /// inside a pool task (the calling task counts as in flight, so it would
  /// wait on itself); parallel_for tracks its own completions instead and
  /// is nestable.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run `fn(i)` for i in [begin, end) across `pool`, in contiguous chunks.
/// Blocks until all iterations complete; the calling thread also executes
/// chunks, so nesting a parallel_for inside a pool task cannot deadlock.
/// `fn` must be safe to call concurrently for distinct i. If any iteration
/// throws, the first exception (by completion order) is rethrown on the
/// calling thread after the remaining workers drain; iterations not yet
/// started are abandoned.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

/// Convenience overload over [0, n).
inline void parallel_for(ThreadPool& pool, std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  parallel_for(pool, 0, n, fn);
}

/// Worker count selected by the MIFO_THREADS environment variable;
/// 0 / unset means std::thread::hardware_concurrency().
[[nodiscard]] std::size_t default_thread_count();

/// Shared process-wide pool (lazily constructed, sized by MIFO_THREADS).
ThreadPool& global_pool();

}  // namespace mifo
