// Environment-variable overrides for the bench harnesses.
//
// Every bench ships laptop-scale defaults but honours MIFO_* env vars so the
// experiments can be rerun at paper scale (documented in EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <string>

namespace mifo {

/// Returns the env var parsed as the requested type, or `fallback` when the
/// variable is unset or unparsable.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);
[[nodiscard]] double env_double(const char* name, double fallback);
[[nodiscard]] std::string env_string(const char* name,
                                     const std::string& fallback);

}  // namespace mifo
