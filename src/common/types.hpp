// Strong identifier and unit types shared by every MIFO library.
//
// Raw integers invite mixing AS numbers with router indices or link indices;
// per C++ Core Guidelines I.4 ("make interfaces precisely and strongly
// typed") every identity in the system gets its own vocabulary type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace mifo {

/// CRTP-free strong integer id. `Tag` distinguishes unrelated id spaces.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != invalid_rep; }

  static constexpr StrongId invalid() { return StrongId(invalid_rep); }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  static constexpr Rep invalid_rep = std::numeric_limits<Rep>::max();
  Rep value_ = invalid_rep;
};

struct AsTag {};
struct RouterTag {};
struct LinkTag {};
struct FlowTag {};
struct HostTag {};
struct PortTag {};

/// Autonomous-system number.
using AsId = StrongId<AsTag>;
/// A border (or host-facing) router inside the packet-level data plane.
using RouterId = StrongId<RouterTag>;
/// A directed inter-AS link in the flow-level simulator.
using LinkId = StrongId<LinkTag>;
/// A transport flow (either fluid or AIMD).
using FlowId = StrongId<FlowTag, std::uint64_t>;
/// An end host attached to the testbed.
using HostId = StrongId<HostTag>;
/// An output port index local to one router.
using PortId = StrongId<PortTag>;

/// Simulation time in seconds. Double precision gives ~microsecond
/// resolution over hour-long runs, which is ample for both planes.
using SimTime = double;

/// Bandwidth in megabits per second. The paper's links are 1 Gbps.
using Mbps = double;

/// Data sizes are carried in bytes.
using Bytes = std::uint64_t;

inline constexpr Mbps kGigabit = 1000.0;
inline constexpr Bytes kMegaByte = 1000ull * 1000ull;

/// Bytes -> megabits.
[[nodiscard]] constexpr double to_megabits(Bytes bytes) {
  return static_cast<double>(bytes) * 8.0 / 1e6;
}

/// Transfer time of `bytes` at `rate` (saturating at +inf for rate<=0).
[[nodiscard]] constexpr SimTime transfer_seconds(Bytes bytes, Mbps rate) {
  if (rate <= 0.0) return std::numeric_limits<SimTime>::infinity();
  return to_megabits(bytes) / rate;
}

}  // namespace mifo

template <typename Tag, typename Rep>
struct std::hash<mifo::StrongId<Tag, Rep>> {
  std::size_t operator()(mifo::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
