// Streaming statistics, histograms and empirical CDFs used by the
// experiment harnesses to print the paper's tables/figures as text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mifo {

/// Welford online mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Empirical CDF over collected samples.
class Cdf {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x) const;
  /// p-quantile, p in [0, 1].
  [[nodiscard]] double quantile(double p) const;
  /// Fraction of samples >= x (used for "X% of flows achieve Y Mbps").
  [[nodiscard]] double fraction_at_least(double x) const;

  /// Evenly spaced (x, CDF%) rows over [lo, hi] — matches the figures' axes.
  [[nodiscard]] std::vector<std::pair<double, double>> table(
      double lo, double hi, std::size_t points) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-bin histogram. Two binning modes:
///  * uniform — `bins` equal-width bins over [lo, hi);
///  * explicit — caller-supplied ascending bucket edges, so skewed
///    populations (e.g. 10 ms–1 s recovery latencies) get resolution where
///    the mass is instead of a uniform grid.
/// Out-of-range samples clamp to the edge bins in both modes.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  /// Explicit bucket edges: bin i covers [edges[i], edges[i+1]). Needs at
  /// least two strictly ascending edges.
  explicit Histogram(std::vector<double> edges);

  void add(double x);
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t i) const;
  /// Exclusive upper edge of bin i (== bin_low(i + 1) for inner bins).
  [[nodiscard]] double bin_high(std::size_t i) const;
  [[nodiscard]] double fraction(std::size_t i) const;
  [[nodiscard]] double low() const { return lo_; }
  [[nodiscard]] double high() const { return hi_; }
  /// Explicit edges (empty for uniform binning).
  [[nodiscard]] const std::vector<double>& edges() const { return edges_; }

  /// Accumulate another histogram's counts; the binning must match.
  void merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  std::vector<double> edges_;  ///< empty: uniform mode
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Counts of small non-negative integers (e.g. path switches per flow).
class IntCounter {
 public:
  void add(std::uint64_t value);
  [[nodiscard]] std::uint64_t count_of(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double fraction_of(std::uint64_t value) const;
  [[nodiscard]] double fraction_at_most(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t max_value() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Render a simple fixed-width text table (used by benches to print the
/// paper's rows).
std::string format_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

}  // namespace mifo
