#include "common/logging.hpp"

#include <atomic>
#include <mutex>

namespace mifo {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  std::lock_guard lock(g_io_mutex);
  std::fprintf(stderr, "[mifo %s] %s\n", level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace mifo
