#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <mutex>
#include <vector>

#include "common/env.hpp"

namespace mifo {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_io_mutex;
// Written only by set_log_component_filter (startup / env parse, before
// worker threads log); guarded by g_io_mutex for the read in log_line.
std::string g_component_prefix;  // NOLINT(runtime/string)

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}

/// Seconds since the first log statement of the process.
double elapsed_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// Applies MIFO_LOG exactly once, before the first threshold read.
void init_from_env_once() {
  static const bool done = [] {
    const std::string spec = env_string("MIFO_LOG", "");
    if (!spec.empty()) {
      const LogSpec parsed = parse_log_spec(spec);
      g_level.store(parsed.level);
      g_component_prefix = parsed.component_prefix;
    }
    return true;
  }();
  (void)done;
}

bool component_passes(const char* component) {
  if (component == nullptr || g_component_prefix.empty()) return true;
  return std::string_view(component).starts_with(g_component_prefix);
}

std::string vformat(const char* fmt, va_list args) {
  va_list probe;
  va_copy(probe, args);
  char stack_buf[1024];
  const int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, probe);
  va_end(probe);
  if (needed < 0) return std::string("<format error: ") + fmt + ">";
  if (static_cast<std::size_t>(needed) < sizeof(stack_buf)) {
    return std::string(stack_buf, static_cast<std::size_t>(needed));
  }
  // Message outgrew the stack buffer: format again at exact size rather
  // than silently truncating.
  std::vector<char> heap_buf(static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(heap_buf.data(), heap_buf.size(), fmt, args);
  return std::string(heap_buf.data(), static_cast<std::size_t>(needed));
}
}  // namespace

void set_log_level(LogLevel level) {
  init_from_env_once();  // so a later env re-read cannot clobber this
  g_level.store(level);
}

LogLevel log_level() {
  init_from_env_once();
  return g_level.load(std::memory_order_relaxed);
}

void set_log_component_filter(std::string prefix) {
  std::lock_guard lock(g_io_mutex);
  g_component_prefix = std::move(prefix);
}

bool log_enabled(LogLevel level, const char* component) {
  if (level < log_level()) return false;
  std::lock_guard lock(g_io_mutex);
  return component_passes(component);
}

LogSpec parse_log_spec(const std::string& spec, LogLevel fallback) {
  LogSpec out;
  out.level = fallback;
  const std::size_t colon = spec.find(':');
  std::string level = spec.substr(0, colon);
  if (colon != std::string::npos) {
    out.component_prefix = spec.substr(colon + 1);
  }
  if (level == "debug") {
    out.level = LogLevel::Debug;
  } else if (level == "info") {
    out.level = LogLevel::Info;
  } else if (level == "warn") {
    out.level = LogLevel::Warn;
  } else if (level == "error") {
    out.level = LogLevel::Error;
  } else if (level == "off") {
    out.level = LogLevel::Off;
  }
  return out;
}

namespace detail {
void log_line(LogLevel level, const char* component,
              const std::string& message) {
  const double t = elapsed_seconds();
  std::lock_guard lock(g_io_mutex);
  if (!component_passes(component)) return;
  if (component != nullptr) {
    std::fprintf(stderr, "[%11.6f %-5s %s] %s\n", t, level_name(level),
                 component, message.c_str());
  } else {
    std::fprintf(stderr, "[%11.6f %-5s] %s\n", t, level_name(level),
                 message.c_str());
  }
}
}  // namespace detail

void log(LogLevel level, const char* fmt, ...) {
  if (level < log_level()) return;
  va_list args;
  va_start(args, fmt);
  const std::string msg = vformat(fmt, args);
  va_end(args);
  detail::log_line(level, nullptr, msg);
}

void logc(LogLevel level, const char* component, const char* fmt, ...) {
  if (level < log_level()) return;
  va_list args;
  va_start(args, fmt);
  const std::string msg = vformat(fmt, args);
  va_end(args);
  detail::log_line(level, component, msg);
}

}  // namespace mifo
