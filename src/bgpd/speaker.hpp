// One BGP speaker per AS: Adj-RIB-In, the Gao–Rexford decision process and
// export policy, and generation of outbound UPDATEs when the best route for
// a prefix changes.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/route.hpp"
#include "bgpd/message.hpp"
#include "topo/as_graph.hpp"

namespace mifo::bgpd {

/// An Adj-RIB-In entry: a neighbor's current announcement for one prefix.
struct RibIn {
  AsId neighbor;
  std::vector<AsId> as_path;  ///< neighbor first, origin last
  bgp::RouteClass cls = bgp::RouteClass::None;

  [[nodiscard]] bgp::Route as_route() const {
    return bgp::Route{cls, static_cast<std::uint16_t>(as_path.size()),
                      neighbor};
  }
};

/// Outbound update with its addressee.
struct OutboundUpdate {
  AsId to;
  UpdateMsg msg;
};

class Speaker {
 public:
  Speaker(AsId self, const topo::AsGraph& g) : self_(self), graph_(&g) {}

  [[nodiscard]] AsId id() const { return self_; }

  /// Originate our own prefix: returns the announcements to every neighbor.
  [[nodiscard]] std::vector<OutboundUpdate> originate();

  /// Withdraw our own prefix.
  [[nodiscard]] std::vector<OutboundUpdate> withdraw_origin();

  /// Process one inbound update; returns the updates we must send in turn
  /// (empty when our best route for the prefix did not change).
  [[nodiscard]] std::vector<OutboundUpdate> receive(const UpdateMsg& msg,
                                                    AsId from);

  /// Current best route towards `dest` (None when unknown). For our own
  /// originated prefix this is a Self route.
  [[nodiscard]] bgp::Route best(AsId dest) const;

  /// The full AS path of the current best route (empty when none / self).
  [[nodiscard]] std::vector<AsId> best_path(AsId dest) const;

  /// All Adj-RIB-In entries for a prefix (MIFO's alternative paths).
  [[nodiscard]] std::vector<RibIn> rib_in(AsId dest) const;

  /// Number of prefixes with any state.
  [[nodiscard]] std::size_t known_prefixes() const { return table_.size(); }

  // Telemetry.
  std::uint64_t updates_received = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t loops_rejected = 0;

 private:
  struct PrefixState {
    std::unordered_map<std::uint32_t, RibIn> in;  ///< by neighbor id
    AsId best_neighbor = AsId::invalid();  ///< invalid = no route
    bool originated = false;
    /// What we last advertised (empty = withdrawn / never announced) and
    /// the class it was exported under — the diff against this drives
    /// update generation.
    std::vector<AsId> adv_path;
    bgp::RouteClass adv_cls = bgp::RouteClass::None;
  };

  /// Re-runs the decision process; returns outbound updates if the best
  /// changed (announcement or withdrawal per the export policy).
  std::vector<OutboundUpdate> decide(AsId dest, PrefixState& st);

  AsId self_;
  const topo::AsGraph* graph_;
  std::unordered_map<std::uint32_t, PrefixState> table_;  ///< by dest AS id
};

}  // namespace mifo::bgpd
