// Drives a full mesh of BGP sessions over an AS graph to convergence:
// deterministic FIFO message processing, per-run telemetry, and dynamic
// events (origination and withdrawal) mid-run.
#pragma once

#include <deque>
#include <vector>

#include "bgpd/speaker.hpp"

namespace mifo::bgpd {

class SessionNetwork {
 public:
  explicit SessionNetwork(const topo::AsGraph& g);

  [[nodiscard]] Speaker& speaker(AsId as);
  [[nodiscard]] const Speaker& speaker(AsId as) const;
  [[nodiscard]] std::size_t num_speakers() const { return speakers_.size(); }

  /// Originate one AS's prefix (enqueues its announcements).
  void originate(AsId as);
  /// Originate every AS's prefix.
  void originate_all();
  /// Withdraw a previously originated prefix.
  void withdraw(AsId as);

  /// Process queued messages until quiescence. Returns the number of
  /// messages processed; aborts via contract if `max_messages` is hit
  /// (Gao–Rexford policies guarantee convergence, so hitting the cap means
  /// a protocol bug).
  std::size_t run_to_convergence(std::size_t max_messages = 0);

  [[nodiscard]] bool converged() const { return queue_.empty(); }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

 private:
  struct InFlight {
    AsId from;
    AsId to;
    UpdateMsg msg;
  };

  void enqueue(AsId from, std::vector<OutboundUpdate> out);

  const topo::AsGraph* graph_;
  std::vector<Speaker> speakers_;
  std::deque<InFlight> queue_;
};

}  // namespace mifo::bgpd
