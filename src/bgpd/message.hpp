// BGP UPDATE messages at AS-path-vector granularity.
//
// The analytic three-phase computation in src/bgp/ produces the *converged*
// state directly; this module is the protocol that real routers (the
// paper's XORP daemon) run to get there: announcements and withdrawals
// propagating over sessions, with loop detection on the full AS path. The
// two are cross-validated in tests — the protocol must converge to exactly
// the analytic fixpoint.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace mifo::bgpd {

struct UpdateMsg {
  /// Destination prefix, identified by its origin AS.
  AsId dest = AsId::invalid();
  /// True for a withdrawal (as_path ignored).
  bool withdraw = false;
  /// Path vector, sender first, origin last. Receivers prepend nothing —
  /// the sender already placed itself at the front.
  std::vector<AsId> as_path;
};

}  // namespace mifo::bgpd
