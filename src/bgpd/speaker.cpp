#include "bgpd/speaker.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace mifo::bgpd {

namespace {

bool contains(const std::vector<AsId>& path, AsId as) {
  return std::find(path.begin(), path.end(), as) != path.end();
}

}  // namespace

std::vector<OutboundUpdate> Speaker::originate() {
  PrefixState& st = table_[self_.value()];
  st.originated = true;
  return decide(self_, st);
}

std::vector<OutboundUpdate> Speaker::withdraw_origin() {
  PrefixState& st = table_[self_.value()];
  st.originated = false;
  return decide(self_, st);
}

std::vector<OutboundUpdate> Speaker::receive(const UpdateMsg& msg,
                                             AsId from) {
  MIFO_EXPECTS(graph_->adjacent(self_, from));
  ++updates_received;
  PrefixState& st = table_[msg.dest.value()];

  if (msg.withdraw) {
    st.in.erase(from.value());
    return decide(msg.dest, st);
  }
  // Loop detection on the full path vector: a path through ourselves is an
  // implicit withdrawal of whatever the neighbor previously offered.
  MIFO_EXPECTS(!msg.as_path.empty());
  MIFO_EXPECTS(msg.as_path.front() == from);
  if (contains(msg.as_path, self_)) {
    ++loops_rejected;
    st.in.erase(from.value());
    return decide(msg.dest, st);
  }
  RibIn entry;
  entry.neighbor = from;
  entry.as_path = msg.as_path;
  entry.cls = bgp::classify(*graph_->rel(self_, from));
  st.in[from.value()] = std::move(entry);
  return decide(msg.dest, st);
}

std::vector<OutboundUpdate> Speaker::decide(AsId dest, PrefixState& st) {
  // Decision process over the Adj-RIB-In (plus our own origination).
  bgp::Route best;
  AsId best_neighbor = AsId::invalid();
  if (st.originated) best = bgp::Route{bgp::RouteClass::Self, 0, self_};
  for (const auto& [nid, rib] : st.in) {
    const bgp::Route r = rib.as_route();
    if (r.better_than(best)) {
      best = r;
      best_neighbor = rib.neighbor;
    }
  }
  st.best_neighbor = best_neighbor;

  // The announcement we would now send (empty = withdrawn).
  std::vector<AsId> new_path;
  if (st.originated && best.cls == bgp::RouteClass::Self) {
    new_path = {self_};
  } else if (best_neighbor.valid()) {
    new_path.reserve(st.in.at(best_neighbor.value()).as_path.size() + 1);
    new_path.push_back(self_);
    const auto& tail = st.in.at(best_neighbor.value()).as_path;
    new_path.insert(new_path.end(), tail.begin(), tail.end());
  }
  if (new_path == st.adv_path) return {};

  std::vector<OutboundUpdate> out;
  for (const auto& nb : graph_->neighbors(self_)) {
    // `nb.rel` is what the neighbor is to us — exactly the importer role
    // the export policy keys on.
    const bool was = !st.adv_path.empty() && may_export(st.adv_cls, nb.rel);
    const bool now = !new_path.empty() && may_export(best.cls, nb.rel);
    if (now) {
      UpdateMsg m;
      m.dest = dest;
      m.as_path = new_path;
      out.push_back(OutboundUpdate{nb.as, std::move(m)});
      ++updates_sent;
    } else if (was) {
      UpdateMsg m;
      m.dest = dest;
      m.withdraw = true;
      out.push_back(OutboundUpdate{nb.as, std::move(m)});
      ++updates_sent;
    }
  }
  st.adv_path = std::move(new_path);
  st.adv_cls = best.cls;
  return out;
}

bgp::Route Speaker::best(AsId dest) const {
  const auto it = table_.find(dest.value());
  if (it == table_.end()) return bgp::Route{};
  const PrefixState& st = it->second;
  if (st.originated) return bgp::Route{bgp::RouteClass::Self, 0, self_};
  if (!st.best_neighbor.valid()) return bgp::Route{};
  return st.in.at(st.best_neighbor.value()).as_route();
}

std::vector<AsId> Speaker::best_path(AsId dest) const {
  const auto it = table_.find(dest.value());
  if (it == table_.end()) return {};
  const PrefixState& st = it->second;
  if (st.originated) return {self_};
  if (!st.best_neighbor.valid()) return {};
  std::vector<AsId> path{self_};
  const auto& tail = st.in.at(st.best_neighbor.value()).as_path;
  path.insert(path.end(), tail.begin(), tail.end());
  return path;
}

std::vector<RibIn> Speaker::rib_in(AsId dest) const {
  std::vector<RibIn> out;
  const auto it = table_.find(dest.value());
  if (it == table_.end()) return out;
  for (const auto& [nid, rib] : it->second.in) out.push_back(rib);
  std::sort(out.begin(), out.end(), [](const RibIn& a, const RibIn& b) {
    return a.as_route().better_than(b.as_route());
  });
  return out;
}

}  // namespace mifo::bgpd
