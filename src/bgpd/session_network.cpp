#include "bgpd/session_network.hpp"

#include "common/contracts.hpp"

namespace mifo::bgpd {

SessionNetwork::SessionNetwork(const topo::AsGraph& g) : graph_(&g) {
  speakers_.reserve(g.num_ases());
  for (std::uint32_t i = 0; i < g.num_ases(); ++i) {
    speakers_.emplace_back(AsId(i), g);
  }
}

Speaker& SessionNetwork::speaker(AsId as) {
  MIFO_EXPECTS(as.value() < speakers_.size());
  return speakers_[as.value()];
}

const Speaker& SessionNetwork::speaker(AsId as) const {
  MIFO_EXPECTS(as.value() < speakers_.size());
  return speakers_[as.value()];
}

void SessionNetwork::originate(AsId as) {
  enqueue(as, speaker(as).originate());
}

void SessionNetwork::originate_all() {
  for (std::uint32_t i = 0; i < speakers_.size(); ++i) {
    originate(AsId(i));
  }
}

void SessionNetwork::withdraw(AsId as) {
  enqueue(as, speaker(as).withdraw_origin());
}

void SessionNetwork::enqueue(AsId from, std::vector<OutboundUpdate> out) {
  for (auto& o : out) {
    queue_.push_back(InFlight{from, o.to, std::move(o.msg)});
  }
}

std::size_t SessionNetwork::run_to_convergence(std::size_t max_messages) {
  if (max_messages == 0) {
    // Generous default: Gao–Rexford convergence is far below this.
    max_messages = 200 * graph_->num_ases() * graph_->num_ases() + 10000;
  }
  std::size_t processed = 0;
  while (!queue_.empty()) {
    InFlight m = std::move(queue_.front());
    queue_.pop_front();
    ++processed;
    MIFO_ASSERT(processed <= max_messages);  // non-convergence = bug
    enqueue(m.to, speaker(m.to).receive(m.msg, m.from));
  }
  return processed;
}

}  // namespace mifo::bgpd
