// The MIFO daemon (paper Section V, Fig. 10).
//
// One daemon instance runs per AS. On every tick it
//   1. samples the spare capacity of the AS's inter-AS links (LinkMonitor —
//    the XORP module's "constantly collects available link capacity"),
//   2. elects, per destination prefix, the alternative next-hop AS with the
//      most spare capacity (the greedy selection of Section III-C),
//   3. programs the `alt_port` of every router FIB in the AS so the
//      forwarding engine can deflect at line speed, and
//   4. runs the routers' flow re-evaluation (hysteresis back to defaults).
#pragma once

#include <span>
#include <vector>

#include "core/link_monitor.hpp"
#include "dataplane/network.hpp"
#include "topo/relationship.hpp"

namespace mifo::core {

/// Static wiring of one AS in the packet plane, produced by the network
/// builder: its routers, its external attachments, and the intra-AS mesh.
struct AsWiring {
  AsId as;
  std::vector<RouterId> routers;

  struct Egress {
    AsId neighbor;       ///< external AS
    RouterId router;     ///< our border router facing it
    PortId port;         ///< the eBGP port on that router
    topo::Rel rel;       ///< what the neighbor is to this AS
  };
  std::vector<Egress> egresses;

  struct IntraPort {
    RouterId from;
    RouterId to;
    PortId port;  ///< port on `from` towards `to`
  };
  std::vector<IntraPort> intra;

  [[nodiscard]] const Egress* egress_to(AsId neighbor) const;
  [[nodiscard]] PortId intra_port(RouterId from, RouterId to) const;
};

/// One prefix's AS-level routing knowledge inside this AS (from the BGP
/// RIB): the default next-hop AS plus the alternative neighbors that export
/// a route for it.
struct PrefixRoutes {
  dp::Addr prefix = dp::kInvalidAddr;
  AsId default_neighbor = AsId::invalid();  ///< invalid => local delivery
  std::vector<AsId> alternatives;           ///< RIB neighbors != default
};

class MifoDaemon {
 public:
  MifoDaemon(AsWiring wiring, std::vector<PrefixRoutes> prefixes)
      : wiring_(std::move(wiring)), prefixes_(std::move(prefixes)) {}

  /// Periodic daemon work; wire into Network::add_periodic.
  void tick(dp::Network& net, SimTime now);

  /// The alternative neighbor currently elected for a prefix (invalid when
  /// none programmed). Exposed for tests and examples.
  [[nodiscard]] AsId elected_alt(dp::Addr prefix) const;

  [[nodiscard]] const AsWiring& wiring() const { return wiring_; }

  /// Read-only view of the per-prefix RIB knowledge this daemon programs
  /// alt ports from — the verifier's FIB/RIB consistency lints read this.
  [[nodiscard]] std::span<const PrefixRoutes> prefixes() const {
    return prefixes_;
  }

  // --- churn hooks (chaos engine / route controller) -------------------------
  /// Replace (or add) the RIB knowledge for one prefix, e.g. after a BGP
  /// re-announcement changed the default or the alternative set. Any alt
  /// programmed from the old knowledge is cleared; the next tick re-elects.
  void update_prefix(dp::Network& net, PrefixRoutes pr);

  /// Drop all knowledge of a withdrawn prefix and clear the alt ports it had
  /// programmed (the FIB default eviction is the route controller's job).
  void remove_prefix(dp::Network& net, dp::Addr prefix);

  /// A frozen daemon skips its ticks entirely (router/XORP process crash);
  /// forwarding continues on whatever state was last programmed.
  void set_frozen(bool frozen) { frozen_ = frozen; }
  [[nodiscard]] bool frozen() const { return frozen_; }

  /// With the iBGP session dropped, border routers stop exchanging fresh
  /// spare-capacity measurements: elections keep running on the last adverts
  /// received before the drop (stale state, the paper's failure mode).
  void set_stale(bool stale) { stale_ = stale; }
  [[nodiscard]] bool stale() const { return stale_; }

 private:
  void program_alt(dp::Network& net, const PrefixRoutes& pr, AsId choice);
  void clear_alt(dp::Network& net, dp::Addr prefix);

  AsWiring wiring_;
  std::vector<PrefixRoutes> prefixes_;
  LinkMonitor monitor_;
  std::vector<std::pair<dp::Addr, AsId>> elected_;
  bool frozen_ = false;
  bool stale_ = false;
};

}  // namespace mifo::core
