#include "core/walk.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace mifo::core {

namespace {

/// Spare fraction of a link (1 - utilization), clamped.
double spare_of(const UtilizationFn& utilization, LinkId l) {
  const double u = utilization(l);
  return u >= 1.0 ? 0.0 : 1.0 - u;
}

/// End-to-end bottleneck spare along `via`'s default path towards the
/// destination, prefixed by the local link into `via` (the probing-based
/// scheme the paper rejects as too slow/expensive; see AltSelection).
double probe_spare(const topo::AsGraph& g, const bgp::RouteStore& routes,
                   AsId cur, AsId via, const UtilizationFn& utilization) {
  if (!routes.best(via).valid()) return 0.0;
  double spare = spare_of(utilization, g.link(cur, via));
  const auto path = routes.path(via);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    spare = std::min(spare, spare_of(utilization, g.link(path[i], path[i + 1])));
  }
  return spare;
}

}  // namespace

WalkResult mifo_walk(const topo::AsGraph& g, const bgp::RouteStore& routes,
                     const std::vector<bool>& deployed, AsId src,
                     const UtilizationFn& utilization,
                     const WalkConfig& cfg) {
  MIFO_EXPECTS(deployed.size() == g.num_ases());
  WalkResult res;
  if (!routes.best(src).valid()) return res;

  const AsId dst = routes.dest();
  AsId cur = src;
  // Tag semantics of Section III-A4: sources behave like customer ingress.
  bool tag = true;
  res.path.push_back(cur);

  while (cur != dst) {
    const bgp::Route& def = routes.best(cur);
    MIFO_ASSERT(def.valid());
    AsId next = def.next_hop;
    const LinkId def_link = g.link(cur, next);
    MIFO_ASSERT(def_link.valid());

    if (deployed[cur.value()] &&
        utilization(def_link) >= cfg.congest_threshold) {
      // Greedy alternative selection: among RIB neighbors admissible under
      // the Tag-Check rule (and not materially longer than the default),
      // pick the one whose local inter-AS link has the most spare capacity —
      // and only deflect when it beats the default by the margin.
      const bool probe = cfg.selection == AltSelection::EndToEndProbe;
      AsId best = AsId::invalid();
      double best_spare =
          (probe ? probe_spare(g, routes, cur, next, utilization)
                 : spare_of(utilization, def_link)) +
          cfg.min_spare_margin;
      for (const bgp::Route& offer : routes.rib(cur)) {
        const AsId alt = offer.next_hop;
        if (alt == next) continue;
        if (!topo::check_bit(tag, bgp::rel_of(offer.cls))) continue;  // valley-free gate
        if (offer.path_len > def.path_len + cfg.max_extra_hops) continue;
        const double spare =
            probe ? probe_spare(g, routes, cur, alt, utilization)
                  : spare_of(utilization, g.link(cur, alt));
        if (spare > best_spare ||
            (best.valid() && spare == best_spare && alt < best)) {
          best = alt;
          best_spare = spare;
        }
      }
      if (best.valid()) {
        next = best;
        ++res.deflections;
      }
    }

    const LinkId hop_link = g.link(cur, next);
    MIFO_ASSERT(hop_link.valid());
    res.links.push_back(hop_link);
    // Update the tag for the next AS: 1 iff we (cur) are its customer,
    // i.e. the step went up to a provider of cur.
    tag = (*g.rel(cur, next) == topo::Rel::Provider);
    cur = next;
    res.path.push_back(cur);
    // Theorem III-A3: admissible walks have the shape Up* [Flat] Down*, and
    // both the up and the down phase are simple (the P/C hierarchy is
    // acyclic) — so the walk length is bounded by one up plus one down
    // traversal. Exceeding the bound means the loop-freedom theorem broke.
    MIFO_ASSERT(res.path.size() <= 2 * g.num_ases() + 2);
  }

  res.reachable = true;
  return res;
}

WalkResult bgp_walk(const topo::AsGraph& g, const bgp::RouteStore& routes,
                    AsId src) {
  WalkResult res;
  const auto path = routes.path(src);
  if (path.empty()) return res;
  res.reachable = true;
  res.path.assign(path.begin(), path.end());
  res.links = links_of_path(g, res.path);
  return res;
}

std::vector<LinkId> links_of_path(const topo::AsGraph& g,
                                  const std::vector<AsId>& path) {
  std::vector<LinkId> links;
  if (path.size() < 2) return links;
  links.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const LinkId l = g.link(path[i], path[i + 1]);
    MIFO_EXPECTS(l.valid());
    links.push_back(l);
  }
  return links;
}

}  // namespace mifo::core
