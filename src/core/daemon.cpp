#include "core/daemon.hpp"

#include <algorithm>

#include "common/contracts.hpp"
#include "dataplane/change_log.hpp"
#include "obs/trace.hpp"

namespace mifo::core {

const AsWiring::Egress* AsWiring::egress_to(AsId neighbor) const {
  for (const auto& e : egresses) {
    if (e.neighbor == neighbor) return &e;
  }
  return nullptr;
}

PortId AsWiring::intra_port(RouterId from, RouterId to) const {
  for (const auto& ip : intra) {
    if (ip.from == from && ip.to == to) return ip.port;
  }
  return PortId::invalid();
}

void MifoDaemon::tick(dp::Network& net, SimTime now) {
  if (frozen_) return;  // the XORP process is dead; nothing reprograms

  // (1) Sample every inter-AS link once; border routers "communicate the
  // measurement results with each other" over iBGP — modeled as the shared
  // spare[] table. A down link advertises no spare (its byte counters would
  // read as a fully idle, fully spare link otherwise); with the iBGP session
  // dropped the table keeps the last adverts received before the drop.
  std::vector<Mbps> spare(wiring_.egresses.size(), 0.0);
  obs::Tracer* const tr = net.tracer();
  for (std::size_t i = 0; i < wiring_.egresses.size(); ++i) {
    const auto& e = wiring_.egresses[i];
    if (!net.router(e.router).port(e.port).up) {
      spare[i] = -1.0;
      continue;
    }
    spare[i] = stale_ ? monitor_.last(net, e.router, e.port).spare
                      : monitor_.sample(net, e.router, e.port, now).spare;
    if (tr) {
      obs::TraceEvent ev;
      ev.t = now;
      ev.kind = obs::TraceKind::SpareAdvert;
      ev.router = e.router.value();
      ev.port = e.port.value();
      ev.value = spare[i];
      tr->record(ev);
    }
  }

  // (2)+(3) Elect and program the best alternative per prefix. A prefix with
  // no electable alternative (all candidate links down) gets its previously
  // programmed alt cleared rather than left stale — deflecting onto a dead
  // link would just convert congestion drops into link-down drops.
  elected_.clear();
  for (const auto& pr : prefixes_) {
    if (!pr.default_neighbor.valid() || pr.alternatives.empty()) continue;
    AsId choice = AsId::invalid();
    Mbps best_spare = -1.0;
    for (const AsId alt : pr.alternatives) {
      for (std::size_t i = 0; i < wiring_.egresses.size(); ++i) {
        if (wiring_.egresses[i].neighbor != alt) continue;
        if (spare[i] < 0.0) continue;  // link down: not a candidate
        if (spare[i] > best_spare ||
            (spare[i] == best_spare && choice.valid() && alt < choice)) {
          best_spare = spare[i];
          choice = alt;
        }
      }
    }
    if (choice.valid()) {
      program_alt(net, pr, choice);
      elected_.emplace_back(pr.prefix, choice);
    } else {
      clear_alt(net, pr.prefix);
    }
  }

  // (4) Flow re-evaluation with hysteresis on every router of the AS, fed
  // with the monitor's rate-based utilization of that router's egresses.
  for (const RouterId r : wiring_.routers) {
    auto util = [this, &net, r, &spare](PortId p) {
      for (std::size_t i = 0; i < wiring_.egresses.size(); ++i) {
        const auto& e = wiring_.egresses[i];
        if (e.router == r && e.port == p) {
          const Mbps cap = net.router(r).port(p).rate;
          return cap > 0.0 ? 1.0 - spare[i] / cap : 1.0;
        }
      }
      return 0.0;
    };
    net.router(r).reevaluate_flows(net, util);
  }
}

void MifoDaemon::program_alt(dp::Network& net, const PrefixRoutes& pr,
                             AsId choice) {
  const auto* egress = wiring_.egress_to(choice);
  MIFO_EXPECTS(egress != nullptr);
  for (const RouterId r : wiring_.routers) {
    dp::Router& router = net.router(r);
    if (!router.fib().lookup(pr.prefix)) continue;
    if (r == egress->router) {
      router.fib().set_alt(pr.prefix, egress->port);
    } else {
      const PortId via = wiring_.intra_port(r, egress->router);
      // Full-mesh iBGP guarantees a direct intra link; a missing one means
      // the wiring the builder handed us is inconsistent.
      MIFO_EXPECTS(via.valid());
      router.fib().set_alt(pr.prefix, via);
    }
  }
}

void MifoDaemon::clear_alt(dp::Network& net, dp::Addr prefix) {
  for (const RouterId r : wiring_.routers) {
    net.router(r).fib().clear_alt(prefix);
  }
}

void MifoDaemon::update_prefix(dp::Network& net, PrefixRoutes pr) {
  if (auto* log = net.change_log()) log->note_daemon(wiring_.as, pr.prefix);
  clear_alt(net, pr.prefix);
  std::erase_if(elected_,
                [&pr](const auto& e) { return e.first == pr.prefix; });
  for (auto& existing : prefixes_) {
    if (existing.prefix == pr.prefix) {
      existing = std::move(pr);
      return;
    }
  }
  prefixes_.push_back(std::move(pr));
}

void MifoDaemon::remove_prefix(dp::Network& net, dp::Addr prefix) {
  if (auto* log = net.change_log()) log->note_daemon(wiring_.as, prefix);
  clear_alt(net, prefix);
  std::erase_if(prefixes_,
                [prefix](const PrefixRoutes& pr) { return pr.prefix == prefix; });
  std::erase_if(elected_,
                [prefix](const auto& e) { return e.first == prefix; });
}

AsId MifoDaemon::elected_alt(dp::Addr prefix) const {
  for (const auto& [p, as] : elected_) {
    if (p == prefix) return as;
  }
  return AsId::invalid();
}

}  // namespace mifo::core
