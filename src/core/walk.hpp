// AS-level MIFO forwarding: the hop-by-hop walk a packet's flow takes under
// MIFO, used by the flow-level simulator.
//
// At every deployed AS whose default egress link is congested, the walk
// deflects to the RIB alternative admissible under the Tag-Check rule with
// the most spare capacity on the local inter-AS link (the paper's greedy
// selection, Section III-C). Non-deployed ASes forward on their BGP default.
// By the paper's theorem (Section III-A3) the walk cannot loop; the
// implementation still carries a hop guard that aborts on violation, which
// doubles as a running check of the theorem.
#pragma once

#include <functional>
#include <vector>

#include "bgp/route_store.hpp"
#include "topo/as_graph.hpp"

namespace mifo::core {

/// How a border router scores alternative next hops (Section III-C).
enum class AltSelection : std::uint8_t {
  /// The paper's greedy: spare capacity of the *directly connected*
  /// inter-AS link ("turning path measurement into link monitoring").
  LocalGreedy,
  /// The rejected design the paper argues against for cost reasons —
  /// end-to-end bottleneck probing along the candidate's default path.
  /// Implemented as an oracle for the A3 ablation: it quantifies how much
  /// accuracy the cheap local signal gives up.
  EndToEndProbe,
};

struct WalkConfig {
  /// Utilization at which the default egress counts as congested.
  double congest_threshold = 0.7;
  AltSelection selection = AltSelection::LocalGreedy;
  /// Deflect only when the alternative's local spare fraction beats the
  /// default's by at least this margin. A zero margin deflects onto
  /// marginally-better links, churning flows for no throughput gain.
  double min_spare_margin = 0.2;
  /// Only RIB alternatives whose AS-path is at most this much longer than
  /// the default are eligible. Longer detours consume capacity on more
  /// links; unbounded detours reduce network-wide goodput under load.
  std::uint16_t max_extra_hops = 1;
};

/// Link utilization in [0, 1] for a directed inter-AS link.
using UtilizationFn = std::function<double(LinkId)>;

struct WalkResult {
  bool reachable = false;
  /// The AS-level path actually taken (src .. dst inclusive).
  std::vector<AsId> path;
  /// Directed links along the path.
  std::vector<LinkId> links;
  /// Number of hops where the walk left the default next hop.
  std::uint32_t deflections = 0;
};

/// Forward from `src` towards routes.dest() under MIFO with the given
/// deployment and congestion state.
[[nodiscard]] WalkResult mifo_walk(const topo::AsGraph& g,
                                   const bgp::RouteStore& routes,
                                   const std::vector<bool>& deployed,
                                   AsId src, const UtilizationFn& utilization,
                                   const WalkConfig& cfg = {});

/// Plain BGP forwarding (the default path) expressed as a WalkResult, for
/// uniform handling in the simulator.
[[nodiscard]] WalkResult bgp_walk(const topo::AsGraph& g,
                                  const bgp::RouteStore& routes, AsId src);

/// The links of an explicit AS path.
[[nodiscard]] std::vector<LinkId> links_of_path(const topo::AsGraph& g,
                                                const std::vector<AsId>& path);

}  // namespace mifo::core
