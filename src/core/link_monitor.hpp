// Link-capacity monitoring (Section III-C): MIFO turns "path" measurement
// into "link" monitoring — each border router tracks the spare capacity of
// its directly connected inter-AS links over a sliding window, and iBGP
// peers exchange the results over their existing sessions (here: shared
// daemon state within the AS).
#pragma once

#include <unordered_map>

#include "common/types.hpp"
#include "dataplane/network.hpp"

namespace mifo::core {

class LinkMonitor {
 public:
  /// Measurement for one (router, port).
  struct Measurement {
    Mbps rate = 0.0;   ///< sending rate over the last window
    Mbps spare = 0.0;  ///< capacity - rate, floored at 0
  };

  /// Samples the byte counters of `port` on `router` and updates the rate
  /// estimate for the elapsed window. Call once per daemon tick per link.
  Measurement sample(dp::Network& net, RouterId router, PortId port,
                     SimTime now);

  /// Last measurement without resampling (0/full-capacity before first
  /// sample).
  [[nodiscard]] Measurement last(const dp::Network& net, RouterId router,
                                 PortId port) const;

 private:
  struct State {
    std::uint64_t last_bytes = 0;
    SimTime last_time = 0.0;
    Measurement meas;
    bool primed = false;
  };
  static std::uint64_t key(RouterId r, PortId p) {
    return (static_cast<std::uint64_t>(r.value()) << 32) | p.value();
  }
  std::unordered_map<std::uint64_t, State> state_;
};

}  // namespace mifo::core
