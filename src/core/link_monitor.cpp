#include "core/link_monitor.hpp"

#include <algorithm>

namespace mifo::core {

LinkMonitor::Measurement LinkMonitor::sample(dp::Network& net,
                                             RouterId router, PortId port,
                                             SimTime now) {
  const dp::Port& p = net.router(router).port(port);
  State& s = state_[key(router, port)];
  if (!s.primed) {
    s.primed = true;
    s.last_bytes = p.bytes_sent_total;
    s.last_time = now;
    s.meas = Measurement{0.0, p.rate};
    return s.meas;
  }
  const SimTime dt = now - s.last_time;
  if (dt <= 0.0) return s.meas;
  const std::uint64_t delta = p.bytes_sent_total - s.last_bytes;
  s.last_bytes = p.bytes_sent_total;
  s.last_time = now;
  s.meas.rate = to_megabits(delta) / dt;
  s.meas.spare = std::max(0.0, p.rate - s.meas.rate);
  return s.meas;
}

LinkMonitor::Measurement LinkMonitor::last(const dp::Network& net,
                                           RouterId router,
                                           PortId port) const {
  const auto it = state_.find(key(router, port));
  if (it != state_.end() && it->second.primed) return it->second.meas;
  return Measurement{0.0, net.router(router).port(port).rate};
}

}  // namespace mifo::core
