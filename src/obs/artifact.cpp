#include "obs/artifact.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/contracts.hpp"
#include "common/env.hpp"

namespace mifo::obs {

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::str(std::string s) {
  Json j;
  j.kind_ = Kind::Str;
  j.str_ = std::move(s);
  return j;
}

Json Json::num(double v) {
  Json j;
  j.kind_ = Kind::Num;
  j.num_ = v;
  return j;
}

Json Json::num(std::uint64_t v) {
  Json j;
  j.kind_ = Kind::Num;
  j.num_ = static_cast<double>(v);
  j.integral_ = true;
  return j;
}

Json Json::num(std::int64_t v) {
  Json j;
  j.kind_ = Kind::Num;
  j.num_ = static_cast<double>(v);
  j.integral_ = true;
  return j;
}

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = b;
  return j;
}

Json& Json::set(const std::string& key, Json v) {
  MIFO_EXPECTS(kind_ == Kind::Object);
  members_.emplace_back(key, std::move(v));
  return *this;
}

Json& Json::push(Json v) {
  MIFO_EXPECTS(kind_ == Kind::Array);
  items_.push_back(std::move(v));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<Json>& Json::items() const {
  MIFO_EXPECTS(kind_ == Kind::Array);
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  MIFO_EXPECTS(kind_ == Kind::Object);
  return members_;
}

double Json::number() const {
  MIFO_EXPECTS(kind_ == Kind::Num);
  return num_;
}

const std::string& Json::text() const {
  MIFO_EXPECTS(kind_ == Kind::Str);
  return str_;
}

bool Json::truth() const {
  MIFO_EXPECTS(kind_ == Kind::Bool);
  return bool_;
}

namespace {
void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}
}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  char buf[64];
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Num:
      if (integral_ || (std::floor(num_) == num_ && std::abs(num_) < 1e15)) {
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<std::int64_t>(num_));
      } else if (std::isfinite(num_)) {
        std::snprintf(buf, sizeof(buf), "%.6g", num_);
      } else {
        std::snprintf(buf, sizeof(buf), "null");  // JSON has no inf/nan
      }
      out += buf;
      break;
    case Kind::Str:
      escape_into(out, str_);
      break;
    case Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_into(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline_indent(out, indent, depth);
      out += '}';
      break;
    }
    case Kind::Array: {
      out += '[';
      bool first = true;
      for (const auto& v : items_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_indent(out, indent, depth);
      out += ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {
/// Recursive-descent parser for the subset dump() emits (strict JSON minus
/// exotic escapes; \u decodes BMP code points to UTF-8).
struct JsonParser {
  const char* p;
  const char* end;
  bool ok = true;

  void skip_ws() {
    while (p < end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }

  bool literal(const char* s) {
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end - p) < n ||
        std::memcmp(p, s, n) != 0) {
      return false;
    }
    p += n;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p >= end) return false;
      const char esc = *p++;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (end - p < 4) return false;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p++;
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return false;
      }
    }
    return consume('"');
  }

  Json parse_value();  // sets ok=false on malformed input
};

Json JsonParser::parse_value() {
  skip_ws();
  if (p >= end) {
    ok = false;
    return {};
  }
  switch (*p) {
    case '{': {
      ++p;
      Json obj = Json::object();
      skip_ws();
      if (consume('}')) return obj;
      do {
        std::string key;
        if (!parse_string(key) || !consume(':')) {
          ok = false;
          return {};
        }
        Json v = parse_value();
        if (!ok) return {};
        obj.set(key, std::move(v));
      } while (consume(','));
      if (!consume('}')) ok = false;
      return obj;
    }
    case '[': {
      ++p;
      Json arr = Json::array();
      skip_ws();
      if (consume(']')) return arr;
      do {
        Json v = parse_value();
        if (!ok) return {};
        arr.push(std::move(v));
      } while (consume(','));
      if (!consume(']')) ok = false;
      return arr;
    }
    case '"': {
      std::string s;
      if (!parse_string(s)) {
        ok = false;
        return {};
      }
      return Json::str(std::move(s));
    }
    case 't':
      if (literal("true")) return Json::boolean(true);
      ok = false;
      return {};
    case 'f':
      if (literal("false")) return Json::boolean(false);
      ok = false;
      return {};
    case 'n':
      if (literal("null")) return {};
      ok = false;
      return {};
    default: {
      char* num_end = nullptr;
      const double v = std::strtod(p, &num_end);
      if (num_end == p || num_end > end) {
        ok = false;
        return {};
      }
      // Integer-looking input round-trips without a decimal point.
      const bool integral =
          std::find_if(p, static_cast<const char*>(num_end), [](char c) {
            return c == '.' || c == 'e' || c == 'E';
          }) == num_end;
      p = num_end;
      return integral ? Json::num(static_cast<std::int64_t>(v))
                      : Json::num(v);
    }
  }
}
}  // namespace

std::optional<Json> Json::parse(const std::string& text) {
  JsonParser parser{text.data(), text.data() + text.size()};
  Json v = parser.parse_value();
  parser.skip_ws();
  if (!parser.ok || parser.p != parser.end) return std::nullopt;
  return v;
}

std::string artifact_dir() {
  const std::string dir = env_string("MIFO_ARTIFACT_DIR", ".");
  return dir == "-" ? std::string() : dir;
}

namespace {
std::string write_text_file(const std::string& name, const char* ext,
                            const std::string& body) {
  const std::string dir = artifact_dir();
  if (dir.empty()) return {};
  const std::string path = dir + "/" + name + ext;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return {};
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return path;
}
}  // namespace

std::string write_artifact(const std::string& name, const Json& root) {
  return write_text_file(name, ".json", root.dump(2) + "\n");
}

std::string write_csv(const std::string& name,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<double>>& rows) {
  std::string body;
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c > 0) body += ',';
    body += header[c];
  }
  body += '\n';
  char buf[48];
  for (const auto& row : rows) {
    MIFO_EXPECTS(row.size() == header.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) body += ',';
      std::snprintf(buf, sizeof(buf), "%.9g", row[c]);
      body += buf;
    }
    body += '\n';
  }
  return write_text_file(name, ".csv", body);
}

Json to_json(const Snapshot& snap) {
  Json arr = Json::array();
  for (const auto& e : snap.scalars) {
    Json m = Json::object();
    m.set("name", Json::str(e.name));
    if (!e.labels.empty()) m.set("labels", Json::str(e.labels));
    m.set("kind", Json::str(to_string(e.kind)));
    m.set("value", Json::num(e.value));
    arr.push(std::move(m));
  }
  for (const auto& h : snap.histograms) {
    Json m = Json::object();
    m.set("name", Json::str(h.name));
    if (!h.labels.empty()) m.set("labels", Json::str(h.labels));
    m.set("kind", Json::str("histogram"));
    m.set("lo", Json::num(h.hist.low()));
    m.set("hi", Json::num(h.hist.high()));
    m.set("total", Json::num(h.hist.total()));
    if (!h.hist.edges().empty()) {
      Json bounds = Json::array();
      for (const double e : h.hist.edges()) bounds.push(Json::num(e));
      m.set("bounds", std::move(bounds));
    }
    Json bins = Json::array();
    for (std::size_t i = 0; i < h.hist.bins(); ++i) {
      bins.push(Json::num(h.hist.bin_count(i)));
    }
    m.set("bins", std::move(bins));
    arr.push(std::move(m));
  }
  return arr;
}

Json to_json(const UtilSeries& series) {
  Json arr = Json::array();
  for (const auto& s : series) {
    Json m = Json::object();
    m.set("t", Json::num(s.t));
    m.set("mean_util", Json::num(s.mean_util));
    m.set("max_util", Json::num(s.max_util));
    m.set("frac_congested", Json::num(s.frac_congested));
    m.set("total_spare_mbps", Json::num(s.total_spare_mbps));
    m.set("active_flows", Json::num(s.active_flows));
    arr.push(std::move(m));
  }
  return arr;
}

Json to_json(const LinkSeries& series) {
  Json arr = Json::array();
  for (const auto& s : series) {
    Json m = Json::object();
    m.set("t", Json::num(s.t));
    m.set("router", Json::num(static_cast<std::uint64_t>(s.router)));
    m.set("port", Json::num(static_cast<std::uint64_t>(s.port)));
    m.set("utilization", Json::num(s.utilization));
    m.set("spare_mbps", Json::num(s.spare_mbps));
    m.set("queue_ratio", Json::num(s.queue_ratio));
    arr.push(std::move(m));
  }
  return arr;
}

Json to_json(const LoadSeries& series) {
  Json arr = Json::array();
  for (const auto& s : series) {
    Json m = Json::object();
    m.set("t", Json::num(s.t));
    m.set("goodput_mbps", Json::num(s.goodput_mbps));
    m.set("offered_mbps", Json::num(s.offered_mbps));
    m.set("max_util", Json::num(s.max_util));
    m.set("frac_congested", Json::num(s.frac_congested));
    m.set("active_flows", Json::num(s.active_flows));
    m.set("arrivals", Json::num(s.arrivals));
    m.set("completions", Json::num(s.completions));
    arr.push(std::move(m));
  }
  return arr;
}

Json to_json(const Timeline& tl) {
  Json root = Json::object();
  root.set("overwritten", Json::num(tl.overwritten));
  Json evs = Json::array();
  for (const TraceEvent& e : tl.events) {
    Json m = Json::object();
    m.set("epoch", Json::num(e.epoch));
    m.set("t", Json::num(e.t));
    m.set("kind", Json::str(to_string(e.kind)));
    m.set("router", Json::num(static_cast<std::uint64_t>(e.router)));
    if (e.flow != kNoTraceFlow) m.set("flow", Json::num(e.flow));
    m.set("shard", Json::num(static_cast<std::uint64_t>(e.shard)));
    m.set("seq", Json::num(e.seq));
    m.set("port", Json::num(static_cast<std::uint64_t>(e.port)));
    m.set("dst", Json::num(static_cast<std::uint64_t>(e.dst)));
    m.set("tag", Json::boolean(e.tag));
    m.set("origin_shard",
          Json::num(static_cast<std::uint64_t>(e.origin_shard)));
    m.set("inject_epoch", Json::num(e.inject_epoch));
    if (e.value != 0.0) m.set("value", Json::num(e.value));
    evs.push(std::move(m));
  }
  root.set("events", std::move(evs));
  return root;
}

Json drops_json(
    const std::vector<std::pair<std::string, std::uint64_t>>& drops) {
  Json obj = Json::object();
  for (const auto& [reason, count] : drops) {
    obj.set(reason, Json::num(count));
  }
  return obj;
}

}  // namespace mifo::obs
