#include "obs/artifact.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/contracts.hpp"
#include "common/env.hpp"

namespace mifo::obs {

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::str(std::string s) {
  Json j;
  j.kind_ = Kind::Str;
  j.str_ = std::move(s);
  return j;
}

Json Json::num(double v) {
  Json j;
  j.kind_ = Kind::Num;
  j.num_ = v;
  return j;
}

Json Json::num(std::uint64_t v) {
  Json j;
  j.kind_ = Kind::Num;
  j.num_ = static_cast<double>(v);
  j.integral_ = true;
  return j;
}

Json Json::num(std::int64_t v) {
  Json j;
  j.kind_ = Kind::Num;
  j.num_ = static_cast<double>(v);
  j.integral_ = true;
  return j;
}

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = b;
  return j;
}

Json& Json::set(const std::string& key, Json v) {
  MIFO_EXPECTS(kind_ == Kind::Object);
  members_.emplace_back(key, std::move(v));
  return *this;
}

Json& Json::push(Json v) {
  MIFO_EXPECTS(kind_ == Kind::Array);
  items_.push_back(std::move(v));
  return *this;
}

namespace {
void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}
}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  char buf[64];
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Num:
      if (integral_ || (std::floor(num_) == num_ && std::abs(num_) < 1e15)) {
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<std::int64_t>(num_));
      } else if (std::isfinite(num_)) {
        std::snprintf(buf, sizeof(buf), "%.6g", num_);
      } else {
        std::snprintf(buf, sizeof(buf), "null");  // JSON has no inf/nan
      }
      out += buf;
      break;
    case Kind::Str:
      escape_into(out, str_);
      break;
    case Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_into(out, k);
        out += indent > 0 ? ": " : ":";
        v.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline_indent(out, indent, depth);
      out += '}';
      break;
    }
    case Kind::Array: {
      out += '[';
      bool first = true;
      for (const auto& v : items_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        v.dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline_indent(out, indent, depth);
      out += ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::string artifact_dir() {
  const std::string dir = env_string("MIFO_ARTIFACT_DIR", ".");
  return dir == "-" ? std::string() : dir;
}

namespace {
std::string write_text_file(const std::string& name, const char* ext,
                            const std::string& body) {
  const std::string dir = artifact_dir();
  if (dir.empty()) return {};
  const std::string path = dir + "/" + name + ext;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return {};
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return path;
}
}  // namespace

std::string write_artifact(const std::string& name, const Json& root) {
  return write_text_file(name, ".json", root.dump(2) + "\n");
}

std::string write_csv(const std::string& name,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<double>>& rows) {
  std::string body;
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (c > 0) body += ',';
    body += header[c];
  }
  body += '\n';
  char buf[48];
  for (const auto& row : rows) {
    MIFO_EXPECTS(row.size() == header.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) body += ',';
      std::snprintf(buf, sizeof(buf), "%.9g", row[c]);
      body += buf;
    }
    body += '\n';
  }
  return write_text_file(name, ".csv", body);
}

Json to_json(const Snapshot& snap) {
  Json arr = Json::array();
  for (const auto& e : snap.scalars) {
    Json m = Json::object();
    m.set("name", Json::str(e.name));
    if (!e.labels.empty()) m.set("labels", Json::str(e.labels));
    m.set("kind", Json::str(to_string(e.kind)));
    m.set("value", Json::num(e.value));
    arr.push(std::move(m));
  }
  for (const auto& h : snap.histograms) {
    Json m = Json::object();
    m.set("name", Json::str(h.name));
    if (!h.labels.empty()) m.set("labels", Json::str(h.labels));
    m.set("kind", Json::str("histogram"));
    m.set("lo", Json::num(h.hist.low()));
    m.set("hi", Json::num(h.hist.high()));
    m.set("total", Json::num(h.hist.total()));
    Json bins = Json::array();
    for (std::size_t i = 0; i < h.hist.bins(); ++i) {
      bins.push(Json::num(h.hist.bin_count(i)));
    }
    m.set("bins", std::move(bins));
    arr.push(std::move(m));
  }
  return arr;
}

Json to_json(const UtilSeries& series) {
  Json arr = Json::array();
  for (const auto& s : series) {
    Json m = Json::object();
    m.set("t", Json::num(s.t));
    m.set("mean_util", Json::num(s.mean_util));
    m.set("max_util", Json::num(s.max_util));
    m.set("frac_congested", Json::num(s.frac_congested));
    m.set("total_spare_mbps", Json::num(s.total_spare_mbps));
    m.set("active_flows", Json::num(s.active_flows));
    arr.push(std::move(m));
  }
  return arr;
}

Json to_json(const LinkSeries& series) {
  Json arr = Json::array();
  for (const auto& s : series) {
    Json m = Json::object();
    m.set("t", Json::num(s.t));
    m.set("router", Json::num(static_cast<std::uint64_t>(s.router)));
    m.set("port", Json::num(static_cast<std::uint64_t>(s.port)));
    m.set("utilization", Json::num(s.utilization));
    m.set("spare_mbps", Json::num(s.spare_mbps));
    m.set("queue_ratio", Json::num(s.queue_ratio));
    arr.push(std::move(m));
  }
  return arr;
}

Json drops_json(
    const std::vector<std::pair<std::string, std::uint64_t>>& drops) {
  Json obj = Json::object();
  for (const auto& [reason, count] : drops) {
    obj.set(reason, Json::num(count));
  }
  return obj;
}

}  // namespace mifo::obs
