// Machine-readable run artifacts: a dependency-free JSON tree builder plus
// JSON/CSV file writers, so every experiment arm emits one artifact that
// the tables, the figures and cross-commit diffing all read from the same
// data (schema: docs/OBSERVABILITY.md, `mifo.run_artifact.v1`).
//
// Output location: MIFO_ARTIFACT_DIR (default "."); set it to "-" to
// disable artifact emission entirely.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace mifo::obs {

/// Minimal JSON value: object / array / string / number / bool / null.
/// Key order is insertion order (stable artifacts diff cleanly).
class Json {
 public:
  Json() = default;  // null
  static Json object();
  static Json array();
  static Json str(std::string s);
  static Json num(double v);
  static Json num(std::uint64_t v);
  static Json num(std::int64_t v);
  static Json boolean(bool b);

  /// Parse a JSON document (the inverse of dump(); enough for reading our
  /// own artifacts back — tools/mifo-trace). std::nullopt on malformed
  /// input or trailing garbage.
  static std::optional<Json> parse(const std::string& text);

  /// Object member access (creates the member; asserts object kind).
  Json& set(const std::string& key, Json v);
  /// Array append (asserts array kind).
  Json& push(Json v);

  // --- read-side accessors (tools reading artifacts back) -------------------
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::Str; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Num; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(const std::string& key) const;
  /// Array elements (asserts array kind).
  [[nodiscard]] const std::vector<Json>& items() const;
  /// Object members in insertion order (asserts object kind).
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;
  [[nodiscard]] double number() const;        ///< asserts number kind
  [[nodiscard]] const std::string& text() const;  ///< asserts string kind
  [[nodiscard]] bool truth() const;           ///< asserts bool kind
  /// number() with a fallback for absent members: j.find("x") pattern.
  [[nodiscard]] double number_or(double fallback) const {
    return kind_ == Kind::Num ? num_ : fallback;
  }

  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  enum class Kind : std::uint8_t { Null, Object, Array, Str, Num, Bool };
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  bool integral_ = false;  ///< emit without decimal point
  std::string str_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> items_;
};

/// Directory artifacts are written to, from MIFO_ARTIFACT_DIR (default ".").
/// Empty result means emission is disabled (MIFO_ARTIFACT_DIR=-).
[[nodiscard]] std::string artifact_dir();

/// Writes `root` as pretty-printed JSON to `<dir>/<name>.json`. Returns the
/// path, or "" when artifacts are disabled or the file cannot be opened.
std::string write_artifact(const std::string& name, const Json& root);

/// Writes a CSV (header + numeric rows) to `<dir>/<name>.csv`; "" as above.
std::string write_csv(const std::string& name,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<double>>& rows);

// --- converters into Json ---------------------------------------------------
[[nodiscard]] Json to_json(const Snapshot& snap);
[[nodiscard]] Json to_json(const UtilSeries& series);
[[nodiscard]] Json to_json(const LinkSeries& series);
[[nodiscard]] Json to_json(const LoadSeries& series);
/// Flight-recorder timeline: {"overwritten": N, "events": [...]} with one
/// object per event carrying the full trace context (deterministic — only
/// sim-time values, byte-identical across same-seed runs).
[[nodiscard]] Json to_json(const Timeline& tl);

/// Drop-reason breakdown ({reason -> count}) as a JSON object.
[[nodiscard]] Json drops_json(
    const std::vector<std::pair<std::string, std::uint64_t>>& drops);

}  // namespace mifo::obs
