#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

#include "common/contracts.hpp"

namespace mifo::obs {

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::TagSet:
      return "tag-set";
    case TraceKind::TagCheckPass:
      return "tag-check-pass";
    case TraceKind::TagCheckFail:
      return "tag-check-FAIL";
    case TraceKind::ReturnDetected:
      return "return-detected";
    case TraceKind::PinCreated:
      return "pin-created";
    case TraceKind::PinsReleased:
      return "pins-released";
    case TraceKind::Encap:
      return "encap";
    case TraceKind::Decap:
      return "decap";
    case TraceKind::Deflect:
      return "deflect";
    case TraceKind::Forward:
      return "forward";
    case TraceKind::DropValley:
      return "DROP(valley)";
    case TraceKind::DropNoRoute:
      return "DROP(no-route)";
    case TraceKind::DropTtl:
      return "DROP(ttl)";
    case TraceKind::SpareAdvert:
      return "spare-advert";
    case TraceKind::ChaosEvent:
      return "chaos-event";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : ring_(capacity) {
  MIFO_EXPECTS(capacity > 0);
}

void Tracer::set_flow_filter(std::uint64_t flow) {
  filtered_ = true;
  filter_flow_ = flow;
}

void Tracer::clear_flow_filter() {
  filtered_ = false;
  filter_flow_ = kNoTraceFlow;
}

void Tracer::record(const TraceEvent& ev) {
  if (!wants(ev.flow)) return;
  if (!keep_spare_ && ev.kind == TraceKind::SpareAdvert) return;
  TraceEvent& slot = ring_[head_];
  slot = ev;
  slot.shard = shard_;
  slot.epoch = epoch_;
  slot.seq = seq_++;
  head_ = (head_ + 1) % ring_.size();
  ++recorded_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  const std::size_t n =
      recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                               : ring_.size();
  out.reserve(n);
  // Oldest entry: head_ when the ring has wrapped, index 0 otherwise.
  const std::size_t start = recorded_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::overwritten() const {
  return recorded_ < ring_.size() ? 0 : recorded_ - ring_.size();
}

void Tracer::clear() {
  head_ = 0;
  recorded_ = 0;
  seq_ = 0;
}

bool trace_order(const TraceEvent& a, const TraceEvent& b) {
  if (a.epoch != b.epoch) return a.epoch < b.epoch;
  if (a.t != b.t) return a.t < b.t;
  if (a.router != b.router) return a.router < b.router;
  if (a.flow != b.flow) return a.flow < b.flow;
  if (a.shard != b.shard) return a.shard < b.shard;
  return a.seq < b.seq;
}

bool Timeline::epoch_monotone() const {
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].epoch < events[i - 1].epoch) return false;
  }
  return true;
}

Timeline merge_timelines(const std::vector<const Tracer*>& tracers) {
  Timeline tl;
  std::size_t total = 0;
  for (const Tracer* t : tracers) {
    if (t == nullptr) continue;
    total += t->capacity();
    tl.overwritten += t->overwritten();
  }
  tl.events.reserve(total);
  for (const Tracer* t : tracers) {
    if (t == nullptr) continue;
    std::vector<TraceEvent> evs = t->events();
    tl.events.insert(tl.events.end(), evs.begin(), evs.end());
  }
  // stable_sort: trace_order is already a total order over distinct events
  // (shard, seq) is unique per tracer, but stability keeps equal-key
  // duplicates (same event recorded twice) in input order regardless.
  std::stable_sort(tl.events.begin(), tl.events.end(), trace_order);
  return tl;
}

std::string Tracer::describe(const TraceEvent& ev) {
  char buf[192];
  switch (ev.kind) {
    case TraceKind::TagSet:
      std::snprintf(buf, sizeof(buf),
                    "[%9.6f] r%u %-15s tag:=%d (entered from %s) flow=%llu",
                    ev.t, ev.router, to_string(ev.kind), ev.tag ? 1 : 0,
                    topo::to_string(ev.rel),
                    static_cast<unsigned long long>(ev.flow));
      break;
    case TraceKind::TagCheckPass:
    case TraceKind::TagCheckFail:
      std::snprintf(buf, sizeof(buf),
                    "[%9.6f] r%u %-15s tag=%d vs %s alternative (Eq. 3) "
                    "flow=%llu",
                    ev.t, ev.router, to_string(ev.kind), ev.tag ? 1 : 0,
                    topo::to_string(ev.rel),
                    static_cast<unsigned long long>(ev.flow));
      break;
    case TraceKind::SpareAdvert:
      std::snprintf(buf, sizeof(buf),
                    "[%9.6f] r%u %-15s port=%u spare=%.1f Mbps (iBGP)",
                    ev.t, ev.router, to_string(ev.kind), ev.port, ev.value);
      break;
    case TraceKind::PinsReleased:
      std::snprintf(buf, sizeof(buf), "[%9.6f] r%u %-15s %d pins", ev.t,
                    ev.router, to_string(ev.kind),
                    static_cast<int>(ev.value));
      break;
    case TraceKind::ChaosEvent:
      // `value` carries the chaos::EventKind ordinal; the engine's event
      // log holds the readable form.
      std::snprintf(buf, sizeof(buf), "[%9.6f] %-15s kind=%d subject=%u",
                    ev.t, to_string(ev.kind), static_cast<int>(ev.value),
                    ev.router);
      break;
    default:
      std::snprintf(buf, sizeof(buf),
                    "[%9.6f] r%u %-15s port=%u dst=0x%x flow=%llu", ev.t,
                    ev.router, to_string(ev.kind), ev.port, ev.dst,
                    static_cast<unsigned long long>(ev.flow));
      break;
  }
  return buf;
}

}  // namespace mifo::obs
