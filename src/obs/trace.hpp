// Opt-in forwarding-decision tracing: a bounded ring buffer of Algorithm-1
// events (tag set, tag check, deflect, encap, return-detect — Section III /
// Eq. 3) plus the daemon's spare-capacity advertisements between iBGP
// peers. Disabled tracing costs one null-pointer test per hook; enabled
// tracing is O(1) per event with no allocation past the ring itself.
//
// A per-flow filter turns a packet run into an annotated hop-by-hop walk
// (examples/loop_demo.cpp) without drowning in background traffic.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "topo/relationship.hpp"

namespace mifo::obs {

enum class TraceKind : std::uint8_t {
  TagSet,          ///< valley-free tag (re)written at the AS entering point
  TagCheckPass,    ///< Eq. 3 admitted the eBGP alternative
  TagCheckFail,    ///< Eq. 3 refused the eBGP alternative
  ReturnDetected,  ///< line 11: iBGP sender == default next hop
  PinCreated,      ///< flow newly pinned to the alternative
  PinsReleased,    ///< hysteresis released this router's pins
  Encap,           ///< IP-in-IP towards the iBGP peer (lines 12–15)
  Decap,           ///< outer header removed at the iBGP peer
  Deflect,         ///< packet emitted on the alternative port
  Forward,         ///< packet emitted on the default port
  DropValley,      ///< line-20 drop
  DropNoRoute,
  DropTtl,
  SpareAdvert,     ///< daemon advertised a link's spare capacity (III-C)
  ChaosEvent,      ///< fault-injection event applied (src/chaos/)
};

[[nodiscard]] const char* to_string(TraceKind k);

/// Flow id used for events not tied to a packet (SpareAdvert, PinsReleased).
inline constexpr std::uint64_t kNoTraceFlow =
    std::numeric_limits<std::uint64_t>::max();

struct TraceEvent {
  SimTime t = 0.0;
  TraceKind kind = TraceKind::Forward;
  std::uint32_t router = 0;
  std::uint64_t flow = kNoTraceFlow;
  std::uint32_t dst = 0;        ///< destination address (inner header)
  std::uint32_t port = 0;       ///< output / subject port index
  bool tag = false;             ///< valley-free tag at event time
  topo::Rel rel = topo::Rel::Peer;  ///< neighbor relationship (tag checks)
  double value = 0.0;           ///< kind-specific (spare Mbps, pin count…)

  // Flight-recorder context (docs/OBSERVABILITY.md). `shard`/`epoch`/`seq`
  // locate the *recording*: which worker tracer, during which conservative
  // epoch window, at which per-tracer ordinal. `origin_shard`/`inject_epoch`
  // travel with the packet from its injection point across RemoteEvent
  // handoffs, so a hop on shard 3 still names the shard that injected it.
  std::uint32_t shard = 0;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  std::uint32_t origin_shard = 0;
  std::uint64_t inject_epoch = 0;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096);

  /// Only record packet-scoped events for this flow (control-plane events
  /// like SpareAdvert always pass). Call before the run.
  void set_flow_filter(std::uint64_t flow);
  void clear_flow_filter();

  /// Flight-recorder context stamped onto every subsequent record(): which
  /// shard this tracer belongs to (0 for the serial engine). Call once at
  /// setup; single-writer like the rest of the tracer.
  void set_shard(std::uint32_t shard) { shard_ = shard; }
  [[nodiscard]] std::uint32_t shard() const { return shard_; }
  /// Current conservative epoch window; the shard worker loop bumps this at
  /// every rendezvous (the serial engine leaves it at 0).
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Drop SpareAdvert events at record time. They arrive at daemon-tick
  /// rate on every link, so over a long run they evict entire packet walks
  /// from the ring; flight-recorder users that care about paths rather
  /// than control chatter turn them off.
  void set_keep_spare_adverts(bool keep) { keep_spare_ = keep; }

  /// Cheap pre-check so hook sites can skip event construction.
  [[nodiscard]] bool wants(std::uint64_t flow) const {
    return !filtered_ || flow == filter_flow_ || flow == kNoTraceFlow;
  }

  void record(const TraceEvent& ev);

  /// Events oldest-to-newest (at most `capacity` of them).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// How many recorded events the ring has already overwritten.
  [[nodiscard]] std::uint64_t overwritten() const;
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  void clear();

  /// One-line human-readable rendering (loop_demo's annotated walk).
  [[nodiscard]] static std::string describe(const TraceEvent& ev);

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;       ///< next write slot
  std::uint64_t recorded_ = 0;
  bool filtered_ = false;
  bool keep_spare_ = true;
  std::uint64_t filter_flow_ = kNoTraceFlow;
  std::uint32_t shard_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t seq_ = 0;  ///< monotonic per-tracer stamp (never wraps back)
};

/// Deterministic total order over flight-recorder events from any number of
/// per-worker tracers: epoch-major, then the same (t, router, …) tie-break
/// the sharded injection sort uses, then (shard, seq) — which preserves each
/// tracer's own recording order for same-packet hook bursts at one router.
/// Cross-router events at equal t are causally independent (every link has
/// positive delay), so ordering them by router id is safe and reproducible.
[[nodiscard]] bool trace_order(const TraceEvent& a, const TraceEvent& b);

/// Snapshot-time causal merge: gathers every tracer's surviving events into
/// one timeline sorted by trace_order. Serial and sharded runs of the same
/// scenario merge to comparable timelines (the serial run is the single-
/// tracer special case).
struct Timeline {
  std::vector<TraceEvent> events;
  std::uint64_t overwritten = 0;  ///< summed ring overwrites (gap warning)

  /// True when events are epoch-major monotone (always, post-merge).
  [[nodiscard]] bool epoch_monotone() const;
};

[[nodiscard]] Timeline merge_timelines(
    const std::vector<const Tracer*>& tracers);

}  // namespace mifo::obs
