// Time-series sample types produced by the periodic samplers in
// dp::Network (per-link) and sim::FluidSim (aggregate over all inter-AS
// links), consumed by the run-artifact writer.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mifo::obs {

/// Aggregate inter-AS link state at one instant of a fluid-sim run. The
/// per-link vector would be O(links × samples); the figures need the
/// population shape, so each sample carries the distribution summary.
struct UtilSample {
  SimTime t = 0.0;
  double mean_util = 0.0;        ///< mean utilization over loaded links
  double max_util = 0.0;
  double frac_congested = 0.0;   ///< fraction of links ≥ congest threshold
  double total_spare_mbps = 0.0; ///< Σ max(0, capacity − alloc)
  std::uint64_t active_flows = 0;
};

/// One (router, port) inter-AS link measurement from the packet plane.
struct LinkSample {
  SimTime t = 0.0;
  std::uint32_t router = 0;
  std::uint32_t port = 0;
  double utilization = 0.0;  ///< send rate over the window / capacity
  double spare_mbps = 0.0;   ///< capacity − rate, floored at 0
  double queue_ratio = 0.0;  ///< tx-queue occupancy at sample time
};

/// One fixed-length goodput epoch of an open-loop streaming run
/// (FluidSim::run_stream): delivered goodput integrated over the epoch plus
/// the load/population state at its closing edge.
struct LoadSample {
  SimTime t = 0.0;                 ///< epoch end time
  double goodput_mbps = 0.0;       ///< megabits delivered / epoch length
  double offered_mbps = 0.0;       ///< analytic offered load at epoch end
  double max_util = 0.0;           ///< worst link utilization at epoch end
  double frac_congested = 0.0;     ///< loaded links ≥ congest threshold
  std::uint64_t active_flows = 0;  ///< concurrent flows at epoch end
  std::uint64_t arrivals = 0;      ///< admissions within the epoch
  std::uint64_t completions = 0;   ///< completions within the epoch
};

using UtilSeries = std::vector<UtilSample>;
using LinkSeries = std::vector<LinkSample>;
using LoadSeries = std::vector<LoadSample>;

}  // namespace mifo::obs
