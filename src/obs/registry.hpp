// Metrics registry: named, label-tagged counters, gauges and histograms.
//
// Accumulation is sharded: every producer (a FluidSim arm on a pool worker,
// a dp::Network event loop, a bench thread) owns one Shard and increments
// dense per-shard slots with no synchronization — safe under
// ThreadPool::parallel_for as long as a shard has a single writer.
// Aggregation happens only at snapshot() time, after producers quiesce
// (benches snapshot after the arms join), by summing shards through
// common/stats (RunningStats/Histogram merge).
//
// Metric identity is (name, labels); registering the same pair twice
// returns the same id, so independent components can share a family.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace mifo::obs {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

[[nodiscard]] constexpr const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::Counter:
      return "counter";
    case MetricKind::Gauge:
      return "gauge";
    case MetricKind::Histogram:
      return "histogram";
  }
  return "?";
}

/// Dense handle into every shard's slot array.
using MetricId = std::uint32_t;

/// One aggregated scalar in a snapshot.
struct SnapshotEntry {
  std::string name;
  std::string labels;  ///< pre-joined "k=v,k=v" (may be empty)
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;
};

/// One aggregated histogram in a snapshot.
struct SnapshotHistogram {
  std::string name;
  std::string labels;
  Histogram hist{0.0, 1.0, 1};
};

struct Snapshot {
  std::vector<SnapshotEntry> scalars;
  std::vector<SnapshotHistogram> histograms;

  /// First scalar matching (name, labels), or nullptr.
  [[nodiscard]] const SnapshotEntry* find(const std::string& name,
                                          const std::string& labels = {}) const;
  [[nodiscard]] double value_or(const std::string& name, double fallback,
                                const std::string& labels = {}) const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Single-writer accumulator. add()/observe()/set() are unsynchronized
  /// and O(1) into dense arrays; never share one shard between threads.
  class Shard {
   public:
    void add(MetricId id, double delta = 1.0) { slot(id) += delta; }
    void set(MetricId id, double value) { slot(id) = value; }
    void observe(MetricId id, double sample);
    /// Fold an externally accumulated histogram into this shard's slot (e.g.
    /// a worker-local barrier-wait histogram published at snapshot time).
    /// The binning must match the registered metric's exactly.
    void merge_histogram(MetricId id, const Histogram& h);
    /// Replace the slot's histogram with `h` (the histogram analogue of
    /// set(): idempotent, so re-publishing a still-growing worker-local
    /// histogram never double-counts). Binning must match.
    void set_histogram(MetricId id, const Histogram& h);

   private:
    friend class Registry;
    explicit Shard(Registry& owner) : owner_(&owner) {}
    /// Syncs local arrays with metrics registered after this shard was
    /// created (takes the registry mutex; amortized away on the hot path).
    void grow_to_fit();
    double& slot(MetricId id) {
      if (id >= scalars_.size()) grow_to_fit();
      return scalars_[id];
    }

    Registry* owner_;
    std::vector<double> scalars_;           ///< indexed by MetricId
    std::vector<std::int32_t> hist_index_;  ///< MetricId -> hists_ index, -1
    std::vector<Histogram> hists_;
  };

  /// Register (or look up) a metric family member. Thread-safe.
  MetricId counter(std::string name, std::string labels = {});
  MetricId gauge(std::string name, std::string labels = {});
  MetricId histogram(std::string name, double lo, double hi, std::size_t bins,
                     std::string labels = {});
  /// Histogram with explicit (ascending) bucket bounds — for skewed
  /// populations like chaos recovery latencies (10 ms–1 s) where uniform
  /// bins waste resolution. Bin i covers [bounds[i], bounds[i+1]).
  MetricId histogram(std::string name, std::vector<double> bounds,
                     std::string labels = {});

  /// Create a new shard; the reference stays valid for the registry's
  /// lifetime. Thread-safe (producers can register themselves lazily).
  Shard& create_shard();

  /// Sum every shard into one view. Call after producers quiesce; counters
  /// sum, gauges sum (producers own disjoint gauges — use one shard per
  /// logical gauge writer), histogram bins sum.
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] std::size_t num_metrics() const;

 private:
  struct MetricDef {
    std::string name;
    std::string labels;
    MetricKind kind;
    std::uint32_t hist_ordinal = 0;  ///< valid for Histogram kind
    double hist_lo = 0.0, hist_hi = 1.0;
    std::size_t hist_bins = 1;
    std::vector<double> hist_bounds;  ///< non-empty: explicit-bounds binning

    [[nodiscard]] Histogram make_histogram() const {
      return hist_bounds.empty() ? Histogram(hist_lo, hist_hi, hist_bins)
                                 : Histogram(hist_bounds);
    }
  };

  MetricId intern(std::string name, std::string labels, MetricKind kind,
                  double lo, double hi, std::size_t bins,
                  std::vector<double> bounds = {});

  mutable std::mutex mutex_;
  std::vector<MetricDef> defs_;
  std::uint32_t num_histograms_ = 0;
  /// deque: stable element addresses as shards are added.
  std::deque<Shard> shards_;
};

}  // namespace mifo::obs
