#include "obs/exposition.hpp"

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>

#include "common/env.hpp"

namespace mifo::obs {

namespace {

std::atomic<bool> g_dump_requested{false};

void on_dump_signal(int /*signo*/) {
  // Async-signal-safe: a lock-free atomic store and nothing else.
  g_dump_requested.store(true, std::memory_order_relaxed);
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted families
/// (dp.ring_pushed) map '.' to '_' and anything else unexpected to '_'.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

/// "k=v,k=v" -> {k="v",k="v"}; empty stays empty.
std::string prom_labels(const std::string& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  std::size_t start = 0;
  bool first = true;
  while (start <= labels.size()) {
    std::size_t comma = labels.find(',', start);
    if (comma == std::string::npos) comma = labels.size();
    const std::string pair = labels.substr(start, comma - start);
    const std::size_t eq = pair.find('=');
    if (!pair.empty() && eq != std::string::npos) {
      if (!first) out += ',';
      first = false;
      out += prom_name(pair.substr(0, eq));
      out += "=\"";
      for (const char c : pair.substr(eq + 1)) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
    }
    start = comma + 1;
  }
  out += '}';
  return out;
}

void append_number(std::string& out, double v) {
  char buf[48];
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  out += buf;
}

}  // namespace

std::string text_exposition(const Snapshot& snap) {
  std::string out;
  std::string last_typed;  // one # TYPE line per family
  for (const SnapshotEntry& e : snap.scalars) {
    const std::string name = prom_name(e.name);
    if (name != last_typed) {
      out += "# TYPE " + name + ' ' + to_string(e.kind) + '\n';
      last_typed = name;
    }
    out += name + prom_labels(e.labels) + ' ';
    append_number(out, e.value);
    out += '\n';
  }
  for (const SnapshotHistogram& h : snap.histograms) {
    const std::string name = prom_name(h.name);
    if (name != last_typed) {
      out += "# TYPE " + name + " histogram\n";
      last_typed = name;
    }
    // Cumulative le-buckets; the metric's own labels join each line.
    const std::string labels = h.labels;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.hist.bins(); ++i) {
      cum += h.hist.bin_count(i);
      std::string l = labels;
      char le[40];
      std::snprintf(le, sizeof(le), "%.9g", h.hist.bin_high(i));
      l += (l.empty() ? "" : ",") + std::string("le=") + le;
      out += name + "_bucket" + prom_labels(l) + ' ';
      append_number(out, static_cast<double>(cum));
      out += '\n';
    }
    std::string inf = labels;
    inf += (inf.empty() ? "" : ",") + std::string("le=+Inf");
    out += name + "_bucket" + prom_labels(inf) + ' ';
    append_number(out, static_cast<double>(h.hist.total()));
    out += '\n';
    out += name + "_count" + prom_labels(labels) + ' ';
    append_number(out, static_cast<double>(h.hist.total()));
    out += '\n';
  }
  return out;
}

void install_dump_signal() {
#ifdef SIGUSR1
  struct sigaction sa = {};
  sa.sa_handler = on_dump_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &sa, nullptr);
#endif
}

bool dump_requested() {
  return g_dump_requested.load(std::memory_order_relaxed);
}

void request_dump() { g_dump_requested.store(true, std::memory_order_relaxed); }

DumpService::DumpService(const Registry& reg)
    : reg_(&reg),
      interval_(env_double("MIFO_OBS_DUMP", 0.0)),
      last_(std::chrono::steady_clock::now()) {}

bool DumpService::service() {
  bool due = g_dump_requested.exchange(false, std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  if (!due && interval_ > 0.0) {
    due = std::chrono::duration<double>(now - last_).count() >= interval_;
  }
  if (!due) return false;
  last_ = now;
  const std::string text = text_exposition(reg_->snapshot());
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
  return true;
}

}  // namespace mifo::obs
