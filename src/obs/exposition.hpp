// Live introspection plane (docs/OBSERVABILITY.md).
//
// text_exposition() renders a Registry snapshot in the Prometheus text
// format (metric names with '.' mapped to '_', "k=v,k=v" label strings to
// {k="v",...}, histograms as cumulative _bucket/_count series), so a dump
// can be scraped, diffed or just read.
//
// DumpService is the "live" half: long-running drivers (tools/mifo-chaos,
// chaos::Engine runs) call service() at their parked points; a dump is
// emitted to stderr when SIGUSR1 arrived since the last call (see
// install_dump_signal) or when the MIFO_OBS_DUMP interval (seconds,
// wall-clock) elapsed. Everything stays on the caller's thread — the signal
// handler only sets a flag — so no locking against the packet plane.
#pragma once

#include <chrono>
#include <string>

#include "obs/registry.hpp"

namespace mifo::obs {

/// Prometheus-style text rendering of a snapshot.
[[nodiscard]] std::string text_exposition(const Snapshot& snap);

/// Arms SIGUSR1 to request a dump at the next service() call. Safe to call
/// more than once; no-op on platforms without sigaction.
void install_dump_signal();

/// True when a dump has been requested (by signal or request_dump) and not
/// yet serviced. Consuming is service()'s job.
[[nodiscard]] bool dump_requested();

/// Programmatic equivalent of SIGUSR1 (tests, embedding drivers).
void request_dump();

class DumpService {
 public:
  /// `reg` must outlive the service. Reads MIFO_OBS_DUMP once: a positive
  /// value enables periodic dumps every that-many wall-clock seconds; unset
  /// or 0 means signal-only.
  explicit DumpService(const Registry& reg);

  /// Call at parked points. Emits the registry's text exposition to stderr
  /// and returns true when a dump was due (signal or interval), false
  /// otherwise. Never blocks.
  bool service();

 private:
  const Registry* reg_;
  double interval_ = 0.0;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace mifo::obs
