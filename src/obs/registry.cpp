#include "obs/registry.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace mifo::obs {

const SnapshotEntry* Snapshot::find(const std::string& name,
                                    const std::string& labels) const {
  for (const auto& e : scalars) {
    if (e.name == name && e.labels == labels) return &e;
  }
  return nullptr;
}

double Snapshot::value_or(const std::string& name, double fallback,
                          const std::string& labels) const {
  const SnapshotEntry* e = find(name, labels);
  return e != nullptr ? e->value : fallback;
}

void Registry::Shard::observe(MetricId id, double sample) {
  if (id >= hist_index_.size()) grow_to_fit();
  const std::int32_t h = hist_index_[id];
  MIFO_EXPECTS(h >= 0);  // observe() on a non-histogram metric
  hists_[static_cast<std::size_t>(h)].add(sample);
}

void Registry::Shard::merge_histogram(MetricId id, const Histogram& h) {
  if (id >= hist_index_.size()) grow_to_fit();
  const std::int32_t idx = hist_index_[id];
  MIFO_EXPECTS(idx >= 0);  // merge_histogram() on a non-histogram metric
  hists_[static_cast<std::size_t>(idx)].merge(h);
}

void Registry::Shard::set_histogram(MetricId id, const Histogram& h) {
  if (id >= hist_index_.size()) grow_to_fit();
  const std::int32_t idx = hist_index_[id];
  MIFO_EXPECTS(idx >= 0);  // set_histogram() on a non-histogram metric
  Histogram& slot = hists_[static_cast<std::size_t>(idx)];
  MIFO_EXPECTS(slot.bins() == h.bins() && slot.low() == h.low() &&
               slot.high() == h.high() && slot.edges() == h.edges());
  slot = h;
}

void Registry::Shard::grow_to_fit() {
  std::lock_guard lock(owner_->mutex_);
  const std::size_t n = owner_->defs_.size();
  const std::size_t old = scalars_.size();
  scalars_.resize(n, 0.0);
  hist_index_.resize(n, -1);
  for (std::size_t i = old; i < n; ++i) {
    const MetricDef& d = owner_->defs_[i];
    if (d.kind != MetricKind::Histogram) continue;
    hist_index_[i] = static_cast<std::int32_t>(hists_.size());
    hists_.push_back(d.make_histogram());
  }
}

MetricId Registry::intern(std::string name, std::string labels,
                          MetricKind kind, double lo, double hi,
                          std::size_t bins, std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].name == name && defs_[i].labels == labels) {
      MIFO_EXPECTS(defs_[i].kind == kind);  // no kind-changing re-register
      return static_cast<MetricId>(i);
    }
  }
  MetricDef d;
  d.name = std::move(name);
  d.labels = std::move(labels);
  d.kind = kind;
  if (kind == MetricKind::Histogram) {
    d.hist_ordinal = num_histograms_++;
    d.hist_lo = lo;
    d.hist_hi = hi;
    d.hist_bins = bins;
    d.hist_bounds = std::move(bounds);
  }
  defs_.push_back(std::move(d));
  return static_cast<MetricId>(defs_.size() - 1);
}

MetricId Registry::counter(std::string name, std::string labels) {
  return intern(std::move(name), std::move(labels), MetricKind::Counter, 0, 1,
                1);
}

MetricId Registry::gauge(std::string name, std::string labels) {
  return intern(std::move(name), std::move(labels), MetricKind::Gauge, 0, 1,
                1);
}

MetricId Registry::histogram(std::string name, double lo, double hi,
                             std::size_t bins, std::string labels) {
  MIFO_EXPECTS(hi > lo && bins > 0);
  return intern(std::move(name), std::move(labels), MetricKind::Histogram, lo,
                hi, bins);
}

MetricId Registry::histogram(std::string name, std::vector<double> bounds,
                             std::string labels) {
  MIFO_EXPECTS(bounds.size() >= 2);
  const double lo = bounds.front();
  const double hi = bounds.back();
  const std::size_t bins = bounds.size() - 1;
  return intern(std::move(name), std::move(labels), MetricKind::Histogram, lo,
                hi, bins, std::move(bounds));
}

Registry::Shard& Registry::create_shard() {
  std::lock_guard lock(mutex_);
  shards_.push_back(Shard(*this));
  return shards_.back();
}

std::size_t Registry::num_metrics() const {
  std::lock_guard lock(mutex_);
  return defs_.size();
}

Snapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  for (std::size_t i = 0; i < defs_.size(); ++i) {
    const MetricDef& d = defs_[i];
    if (d.kind == MetricKind::Histogram) {
      SnapshotHistogram sh;
      sh.name = d.name;
      sh.labels = d.labels;
      sh.hist = d.make_histogram();
      for (const Shard& s : shards_) {
        if (i < s.hist_index_.size() && s.hist_index_[i] >= 0) {
          sh.hist.merge(s.hists_[static_cast<std::size_t>(s.hist_index_[i])]);
        }
      }
      snap.histograms.push_back(std::move(sh));
    } else {
      SnapshotEntry e;
      e.name = d.name;
      e.labels = d.labels;
      e.kind = d.kind;
      for (const Shard& s : shards_) {
        if (i < s.scalars_.size()) e.value += s.scalars_[i];
      }
      snap.scalars.push_back(std::move(e));
    }
  }
  return snap;
}

}  // namespace mifo::obs
