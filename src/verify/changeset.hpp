// ChangeSet: dirty-set computation for incremental verification.
//
// The per-destination deflection graph (deflection_graph.hpp) for `dst` is a
// pure function of
//   (a) each router's FIB entry for `dst` (out_port / alt_port),
//   (b) each router's RouterConfig (mifo_enabled, enforce_tag_check),
//   (c) the static port topology: kinds, peers, neighbor relationships.
// It does NOT read Port::up — Algorithm 1's decision logic is link-state
// oblivious; outages reach the prover only via the FIB/RIB reprogramming
// they trigger (daemon re-elections, route evictions), each of which lands
// as a FibChange. The deployment lints additionally read each daemon's
// per-prefix RIB knowledge (d), and every lint issue names the destination
// it concerns, so lints partition by destination exactly like proofs do.
//
// Hence the dirty mapping (soundness argument in docs/VERIFICATION.md):
//   FibChange(r, dst)      -> dst            (invalidates (a))
//   DaemonChange(as, pfx)  -> pfx            (invalidates (d))
//   ConfigChange(r)        -> every dst in r's current FIB (invalidates (b);
//                             a dst that entered/left the FIB since has its
//                             own FibChange record)
//   PortChange(r, p)       -> nothing for loop/valley/lint proofs; every dst
//                             in r's FIB for the blackhole analysis, the one
//                             property that deliberately reads Port::up.
//   RoutingChange(pfx)     -> pfx. Fed straight from the delta route
//                             engine's recompute set (bgp::DeltaStats):
//                             a destination whose route segment was swapped
//                             is dirty even before any FIB write lands.
//
// A ChangeSet accumulates drained dp::ChangeLog records between quiescent
// points and resolves them against the current router snapshot on demand.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dataplane/change_log.hpp"
#include "dataplane/router.hpp"

namespace mifo::verify {

class ChangeSet {
 public:
  /// Move all records out of `log` into this set (log is cleared).
  void drain(dp::ChangeLog& log);

  /// Direct recording (tests, call sites without a ChangeLog).
  void note_fib(RouterId r, dp::Addr dst) { fib_.push_back({r, dst}); }
  void note_port(RouterId r, PortId p) { ports_.push_back({r, p}); }
  void note_config(RouterId r) { configs_.push_back({r}); }
  void note_daemon(AsId as, dp::Addr prefix) {
    daemons_.push_back({as, prefix});
  }
  /// A delta route recompute touched `prefix`'s segment (no ChangeLog
  /// record type: the routing plane sits above the data-plane log).
  void note_routing(dp::Addr prefix) { routing_.push_back(prefix); }

  void clear();
  [[nodiscard]] bool empty() const {
    return fib_.empty() && ports_.empty() && configs_.empty() &&
           daemons_.empty() && routing_.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return fib_.size() + ports_.size() + configs_.size() + daemons_.size() +
           routing_.size();
  }

  /// Destinations whose loop/valley proofs and lints the recorded changes
  /// can invalidate (FIB + config + daemon records), ascending and unique.
  /// `routers` resolves router-level records against the *current* FIBs.
  [[nodiscard]] std::vector<dp::Addr> dirty_destinations(
      std::span<const dp::Router> routers) const;

  /// Additional destinations only the port-state-sensitive blackhole
  /// analysis must re-prove (PortChange records), ascending and unique.
  [[nodiscard]] std::vector<dp::Addr> port_dirty_destinations(
      std::span<const dp::Router> routers) const;

  [[nodiscard]] std::size_t fib_changes() const { return fib_.size(); }
  [[nodiscard]] std::size_t port_changes() const { return ports_.size(); }
  [[nodiscard]] std::size_t config_changes() const { return configs_.size(); }
  [[nodiscard]] std::size_t daemon_changes() const { return daemons_.size(); }
  [[nodiscard]] std::size_t routing_changes() const { return routing_.size(); }

  /// One-line summary for logs: "fib=3 ports=1 configs=0 daemons=1".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<dp::ChangeLog::FibChange> fib_;
  std::vector<dp::ChangeLog::PortChange> ports_;
  std::vector<dp::ChangeLog::ConfigChange> configs_;
  std::vector<dp::ChangeLog::DaemonChange> daemons_;
  std::vector<dp::Addr> routing_;
};

}  // namespace mifo::verify
