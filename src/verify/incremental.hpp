// Incremental multi-property verifier with a memoized per-destination
// proof cache.
//
// The full provers (check_loop_freedom, check_valley_freedom,
// check_reachability) and the deployment lints are all exactly
// per-destination: destination d's verdict depends only on d's FIB
// entries, the router configs, the static port topology and d's RIB
// knowledge — never on another destination's state (each full prover even
// resets its color array per destination). So proofs memoize per
// destination, and a ChangeSet (changeset.hpp) tells us exactly which
// destinations a batch of mutations can have invalidated. Everything else
// is served from cache, making per-event verify cost proportional to the
// fault's footprint instead of the deployment size (Prelude's scoped
// re-verification, PAPERS.md).
//
// Contract (enforced by the differential property tests and the chaos
// engine's differential mode): the merged incremental result is verdict-,
// counterexample- and lint-identical to a from-scratch full-prover run on
// the same state. The full provers are retained untouched as the oracle —
// the PR-1/PR-5 pattern.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "core/daemon.hpp"
#include "dataplane/network.hpp"
#include "topo/as_graph.hpp"
#include "verify/changeset.hpp"
#include "verify/deflection_graph.hpp"
#include "verify/lint.hpp"
#include "verify/reachability.hpp"
#include "verify/valley.hpp"

namespace mifo::verify {

struct IncrementalConfig {
  bool lint = true;    ///< run the deployment lints per dirty destination
  bool valley = true;  ///< run the valley-freedom prover
  /// Blackhole analysis (reachability.hpp). Off by default: it is the one
  /// port-state-sensitive property, and under live fault injection a downed
  /// link legitimately strands traffic until reconvergence.
  bool blackhole = false;
};

/// Cost accounting for one check() round.
struct IncrementalStats {
  std::size_t destinations = 0;        ///< destinations in the universe
  std::size_t dirty_destinations = 0;  ///< re-proved this round
  std::size_t cache_hits = 0;          ///< served entirely from cache
  std::size_t states_explored = 0;     ///< states re-explored this round
  std::size_t edges_explored = 0;      ///< edges re-explored this round
};

struct IncrementalResult {
  /// Merged over every destination (cached + recomputed), destination-
  /// ascending like the full prover. `loop.stats` aggregates the cached
  /// per-destination exploration costs (what the proofs cost when last
  /// computed); the cost of THIS round is in `stats`.
  LoopCheck loop;
  ValleyCheck valley;
  std::vector<LintIssue> lint;  ///< destination-ascending (full run orders
                                ///< by daemon; compare as multisets)
  ReachabilityCheck reach;
  IncrementalStats stats;
};

class IncrementalVerifier {
 public:
  explicit IncrementalVerifier(IncrementalConfig cfg = {}) : cfg_(cfg) {}

  /// Re-proves the destinations `changes` dirtied (all destinations on the
  /// first call), serves the rest from cache, and returns the merged
  /// verdicts. Destinations that vanished from every FIB are dropped; new
  /// ones are proved fresh. The caller clears `changes` afterwards (or
  /// keeps accumulating — re-proving a clean destination is wasteful but
  /// harmless).
  IncrementalResult check(const dp::Network& net, const topo::AsGraph& g,
                          std::span<const std::unique_ptr<core::MifoDaemon>>
                              daemons,
                          std::span<const std::pair<dp::Addr, AsId>> owners,
                          const ChangeSet& changes);

  /// Drops every cached proof (the next check() re-proves everything).
  void invalidate_all() { cache_.clear(); }

  [[nodiscard]] const IncrementalConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t cached_destinations() const {
    return cache_.size();
  }

 private:
  struct DestProof {
    bool loop_free = true;
    std::vector<Cycle> cycles;
    bool valley_free = true;
    std::vector<ValleyViolation> valleys;
    std::vector<LintIssue> lints;
    bool reach_clean = true;
    std::vector<Blackhole> blackholes;
    VerifyStats loop_stats;  ///< exploration cost when last proved
  };

  IncrementalConfig cfg_;
  /// Ordered: merging iterates destination-ascending, matching the full
  /// prover's fib_destinations() order.
  std::map<dp::Addr, DestProof> cache_;
};

}  // namespace mifo::verify
