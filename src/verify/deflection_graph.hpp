// Static loop-freedom verification of installed forwarding state.
//
// The paper argues (Section III, Eq. 3 + the iBGP return-detection rule of
// III-B) that MIFO's hop-by-hop deflection cannot form a forwarding cycle.
// The packet emulator only *samples* runs; this module proves — or refutes,
// with a concrete router-level counterexample — the claim directly from the
// installed topology + FIB state, without running a single packet.
//
// Model: for one destination, a packet's forwarding future is fully
// determined by (router, tag, returned) —
//   * `router`    — where the packet is,
//   * `tag`       — the one-bit valley-free tag, rewritten deterministically
//                   at every AS entering point (Section III-A4),
//   * `returned`  — whether the packet just arrived IP-in-IP-encapsulated
//                   from the iBGP peer that is this router's default next
//                   hop (Algorithm 1 line 11, Fig. 2(b)).
// Every Algorithm-1 branch a packet COULD take (congestion is abstracted
// away: deflection at a MIFO-enabled router is always considered possible)
// becomes an edge between such states. The deflection graph is this state
// graph; MIFO's loop-freedom theorem is exactly "the subgraph reachable
// from real ingress states is acyclic for every destination".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dataplane/network.hpp"

namespace mifo::verify {

/// How one router-level hop of a hypothetical packet is taken.
enum class HopKind : std::uint8_t {
  Default,  ///< FIB `out_port` (Algorithm 1 line 22)
  AltEbgp,  ///< deflection out an eBGP `alt_port`, Tag-Check gated (16–20)
  AltIbgp,  ///< IP-in-IP handoff to the iBGP peer holding the alt (12–15)
};

[[nodiscard]] const char* to_string(HopKind k);

/// One edge of the per-destination deflection graph.
struct Hop {
  RouterId from;
  RouterId to;
  HopKind kind = HopKind::Default;
  bool tag = false;  ///< valley-free tag carried when leaving `from`
};

/// A concrete forwarding cycle: a closed router-level walk every hop of
/// which is admissible under the modeled Algorithm-1 rules. Reproducing it
/// in the packet emulator exhausts the TTL (see the differential test).
struct Cycle {
  dp::Addr dst = dp::kInvalidAddr;
  std::vector<Hop> hops;  ///< hops.front().from == hops.back().to
  [[nodiscard]] std::string to_string() const;
};

struct VerifyStats {
  std::size_t destinations = 0;
  std::size_t states = 0;  ///< (router, tag, returned) states explored
  std::size_t edges = 0;   ///< admissible transitions explored
};

struct LoopCheck {
  bool loop_free = true;
  std::vector<Cycle> cycles;  ///< at most one counterexample per destination
  VerifyStats stats;
};

/// Every destination address present in any router FIB, ascending.
[[nodiscard]] std::vector<dp::Addr> fib_destinations(
    std::span<const dp::Router> routers);
[[nodiscard]] std::vector<dp::Addr> fib_destinations(const dp::Network& net);

/// Proves (or refutes) loop-freedom of the installed forwarding state for
/// the given destinations. Exhaustive over states, not over packet runs.
/// The span overload is what the sharded plane feeds: a consistent
/// whole-network snapshot assembled by ShardedNetwork::gather_routers() at
/// a quiescent point (DESIGN.md §6).
[[nodiscard]] LoopCheck check_loop_freedom(std::span<const dp::Router> routers,
                                           std::span<const dp::Addr> dests);
[[nodiscard]] LoopCheck check_loop_freedom(const dp::Network& net,
                                           std::span<const dp::Addr> dests);

/// Convenience: all destinations found in the FIBs.
[[nodiscard]] LoopCheck check_loop_freedom(std::span<const dp::Router> routers);
[[nodiscard]] LoopCheck check_loop_freedom(const dp::Network& net);

}  // namespace mifo::verify
