// Shared per-destination deflection-graph structure (verify:: internals).
//
// The loop prover, the valley-freedom prover, the reachability/blackhole
// analysis and the incremental engine all walk the SAME state graph — one
// (router, tag, returned) node set with one successor relation mirroring
// Algorithm 1. Defining it once here (implemented in deflection_graph.cpp,
// next to the loop prover that has used it since PR 3) guarantees the
// analyses can never disagree about what an admissible transition is.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dataplane/router.hpp"
#include "verify/deflection_graph.hpp"

namespace mifo::verify::detail {

/// State encoding: (router, tag, returned) -> router*4 + tag*2 + returned.
[[nodiscard]] constexpr std::uint32_t state_id(std::uint32_t router, bool tag,
                                               bool returned) {
  return router * 4 + (tag ? 2u : 0u) + (returned ? 1u : 0u);
}
[[nodiscard]] constexpr std::uint32_t state_router(std::uint32_t s) {
  return s / 4;
}
[[nodiscard]] constexpr bool state_tag(std::uint32_t s) {
  return (s & 2u) != 0;
}
[[nodiscard]] constexpr bool state_returned(std::uint32_t s) {
  return (s & 1u) != 0;
}

struct Succ {
  std::uint32_t state = 0;
  Hop hop;
};

/// All transitions a packet in state (r, tag, returned) could take under
/// Algorithm 1 as implemented by dp::Router::handle_packet. Congestion and
/// flow pinning are abstracted: a MIFO-enabled router may always deflect.
/// Link state (Port::up) is deliberately not consulted — see the dirty-set
/// soundness argument in changeset.hpp.
void successors(std::span<const dp::Router> routers, dp::Addr dst,
                std::uint32_t r, bool tag, bool returned,
                std::vector<Succ>& out);

/// Ingress states packets can genuinely enter the network in: host-origin
/// traffic (tag = 1) where a host attaches, plus one state per eBGP ingress
/// port with the tag that port's Tag-step would write. The loop prover's
/// entry set (sound over-approximation of traffic sources).
[[nodiscard]] std::vector<std::uint32_t> entry_states(
    std::span<const dp::Router> routers, dp::Addr dst);

/// Host-origin entry states only. The valley prover starts here: the
/// emulation is closed (every packet originates at an attached host), and
/// the hypothetical eBGP-ingress states above would manufacture paths no
/// neighbor would actually send — e.g. a provider handing us traffic we can
/// only route back up — which are valleys of the model, not of the network.
[[nodiscard]] std::vector<std::uint32_t> host_entry_states(
    std::span<const dp::Router> routers, dp::Addr dst);

}  // namespace mifo::verify::detail
