// Gao–Rexford valley-freedom prover over installed forwarding state.
//
// The loop prover (deflection_graph.hpp) proves packets cannot cycle; this
// prover proves they cannot traverse a *valley* — an AS-level path that
// goes up (or sideways) again after having gone down or sideways, i.e. a
// path a provider or peer is made to transit for free. MIFO's tag is
// exactly the Gao–Rexford phase bit: tag=1 while the last inter-AS hop
// came up from a customer, tag=0 once the path has crossed a peering or
// come down from a provider. A path is valley-free iff every inter-AS hop
// satisfies Eq. 3, check_bit(tag, rel) — the pairwise form of
// "up* flat? down*" (topo::is_valley_free checks the same thing over a
// whole path; here it is checked edge-locally over the whole graph).
//
// Algorithm 1 enforces Eq. 3 on *deflections* (line 16–20) but forwards
// *default* routes unchecked — BGP is trusted to have installed
// valley-free best paths, and deflections are trusted to be RIB-backed
// (the AltMissingFromRib lint). This prover discharges that trust: it
// walks every state reachable from host-origin traffic and reports a
// concrete counterexample path for any inter-AS hop — default or
// deflected — that Eq. 3 forbids. A planted valley ring (mifo-verify
// --mutate-valley) or a non-RIB-backed alternative shows up here with the
// exact hop sequence, even when it happens not to close into a loop.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dataplane/network.hpp"
#include "verify/deflection_graph.hpp"

namespace mifo::verify {

/// A concrete valley: hops walk from a host-origin entry state to the
/// offending inter-AS hop (the last element), which violates Eq. 3 with
/// the tag it carries.
struct ValleyViolation {
  dp::Addr dst = dp::kInvalidAddr;
  std::vector<Hop> hops;
  topo::Rel rel = topo::Rel::Peer;  ///< relationship of the offending egress
  [[nodiscard]] std::string to_string() const;
};

struct ValleyCheck {
  bool valley_free = true;
  /// At most one counterexample per destination.
  std::vector<ValleyViolation> violations;
  VerifyStats stats;
};

/// Proves (or refutes) valley-freedom of every path host-origin traffic can
/// take through the installed forwarding state, per destination.
[[nodiscard]] ValleyCheck check_valley_freedom(
    std::span<const dp::Router> routers, std::span<const dp::Addr> dests);
[[nodiscard]] ValleyCheck check_valley_freedom(const dp::Network& net,
                                               std::span<const dp::Addr> dests);

/// Convenience: all destinations found in the FIBs.
[[nodiscard]] ValleyCheck check_valley_freedom(
    std::span<const dp::Router> routers);
[[nodiscard]] ValleyCheck check_valley_freedom(const dp::Network& net);

}  // namespace mifo::verify
