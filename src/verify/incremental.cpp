#include "verify/incremental.hpp"

#include <algorithm>

namespace mifo::verify {

namespace {

bool contains(std::span<const dp::Addr> sorted, dp::Addr dst) {
  return std::binary_search(sorted.begin(), sorted.end(), dst);
}

void accumulate(VerifyStats& into, const VerifyStats& from) {
  into.states += from.states;
  into.edges += from.edges;
}

}  // namespace

IncrementalResult IncrementalVerifier::check(
    const dp::Network& net, const topo::AsGraph& g,
    std::span<const std::unique_ptr<core::MifoDaemon>> daemons,
    std::span<const std::pair<dp::Addr, AsId>> owners,
    const ChangeSet& changes) {
  const std::span<const dp::Router> routers = net.routers();
  const std::vector<dp::Addr> dests = fib_destinations(routers);
  const std::vector<dp::Addr> dirty = changes.dirty_destinations(routers);
  const std::vector<dp::Addr> port_dirty =
      cfg_.blackhole ? changes.port_dirty_destinations(routers)
                     : std::vector<dp::Addr>{};

  // Destinations that vanished from every FIB contribute nothing anymore.
  std::erase_if(cache_, [&](const auto& kv) {
    return !contains(dests, kv.first);
  });

  IncrementalResult result;
  result.stats.destinations = dests.size();
  result.loop.stats.destinations = dests.size();
  result.valley.stats.destinations = dests.size();
  result.reach.stats.destinations = dests.size();

  for (const dp::Addr dst : dests) {
    auto it = cache_.find(dst);
    const bool fresh = it == cache_.end();
    const bool graph_dirty = fresh || contains(dirty, dst);
    const bool reach_dirty =
        cfg_.blackhole && (graph_dirty || contains(port_dirty, dst));

    if (graph_dirty || reach_dirty) {
      if (fresh) it = cache_.emplace(dst, DestProof{}).first;
      DestProof& proof = it->second;
      const std::span<const dp::Addr> one(&dst, 1);
      ++result.stats.dirty_destinations;

      if (graph_dirty) {
        LoopCheck lc = check_loop_freedom(routers, one);
        proof.loop_free = lc.loop_free;
        proof.cycles = std::move(lc.cycles);
        proof.loop_stats = lc.stats;
        result.stats.states_explored += lc.stats.states;
        result.stats.edges_explored += lc.stats.edges;

        if (cfg_.valley) {
          ValleyCheck vc = check_valley_freedom(routers, one);
          proof.valley_free = vc.valley_free;
          proof.valleys = std::move(vc.violations);
          result.stats.states_explored += vc.stats.states;
          result.stats.edges_explored += vc.stats.edges;
        }
        if (cfg_.lint) {
          proof.lints = lint_deployment(net, g, daemons, owners, one);
        }
      }
      if (reach_dirty) {
        ReachabilityCheck rc = check_reachability(routers, one);
        proof.reach_clean = rc.clean;
        proof.blackholes = std::move(rc.blackholes);
        result.stats.states_explored += rc.stats.states;
        result.stats.edges_explored += rc.stats.edges;
      }
    } else {
      ++result.stats.cache_hits;
    }
  }

  // Merge destination-ascending (std::map iteration order), matching the
  // full prover's fib_destinations() sweep.
  for (const auto& [dst, proof] : cache_) {
    result.loop.loop_free = result.loop.loop_free && proof.loop_free;
    result.loop.cycles.insert(result.loop.cycles.end(), proof.cycles.begin(),
                              proof.cycles.end());
    accumulate(result.loop.stats, proof.loop_stats);
    result.valley.valley_free =
        result.valley.valley_free && proof.valley_free;
    result.valley.violations.insert(result.valley.violations.end(),
                                    proof.valleys.begin(),
                                    proof.valleys.end());
    result.lint.insert(result.lint.end(), proof.lints.begin(),
                       proof.lints.end());
    result.reach.clean = result.reach.clean && proof.reach_clean;
    result.reach.blackholes.insert(result.reach.blackholes.end(),
                                   proof.blackholes.begin(),
                                   proof.blackholes.end());
  }
  return result;
}

}  // namespace mifo::verify
