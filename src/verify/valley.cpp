#include "verify/valley.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <sstream>

#include "topo/relationship.hpp"
#include "verify/state_graph.hpp"

namespace mifo::verify {

namespace {

using detail::host_entry_states;
using detail::state_id;
using detail::state_returned;
using detail::state_router;
using detail::state_tag;
using detail::Succ;
using detail::successors;

/// The inter-AS egress relationship of a hop, or nullopt for intra-AS /
/// host-facing hops (which Eq. 3 does not constrain).
std::optional<topo::Rel> egress_rel(std::span<const dp::Router> routers,
                                    dp::Addr dst, const Hop& hop) {
  if (hop.kind == HopKind::AltIbgp) return std::nullopt;
  const dp::Router& from = routers[hop.from.value()];
  const auto fe = from.fib().lookup(dst);
  if (!fe) return std::nullopt;
  const PortId out = hop.kind == HopKind::Default ? fe->out_port : fe->alt_port;
  if (!out.valid()) return std::nullopt;
  const dp::Port& port = from.port(out);
  if (port.kind != dp::PortKind::Ebgp) return std::nullopt;
  return port.neighbor_rel;
}

}  // namespace

std::string ValleyViolation::to_string() const {
  std::ostringstream os;
  os << "dst=" << dst << " valley:";
  for (const Hop& h : hops) {
    os << " r" << h.from.value() << " -[" << verify::to_string(h.kind)
       << " tag=" << (h.tag ? 1 : 0) << "]->";
  }
  if (!hops.empty()) {
    os << " r" << hops.back().to.value() << " (final hop exits to a "
       << topo::to_string(rel) << " carrying tag=0, Eq. 3 violated)";
  }
  return os.str();
}

ValleyCheck check_valley_freedom(std::span<const dp::Router> routers,
                                 std::span<const dp::Addr> dests) {
  ValleyCheck result;
  result.stats.destinations = dests.size();
  const std::size_t num_states = routers.size() * 4;
  // prev[s]: -1 unvisited, -2 entry (BFS root), otherwise predecessor state.
  std::vector<std::int64_t> prev(num_states);
  std::vector<Hop> prev_hop(num_states);
  std::vector<Succ> succs;

  for (const dp::Addr dst : dests) {
    std::fill(prev.begin(), prev.end(), -1);
    std::deque<std::uint32_t> queue;
    for (const std::uint32_t entry : host_entry_states(routers, dst)) {
      prev[entry] = -2;
      queue.push_back(entry);
    }

    bool violated = false;
    while (!queue.empty() && !violated) {
      const std::uint32_t s = queue.front();
      queue.pop_front();
      succs.clear();
      successors(routers, dst, state_router(s), state_tag(s),
                 state_returned(s), succs);
      ++result.stats.states;
      result.stats.edges += succs.size();

      for (const Succ& succ : succs) {
        const auto rel = egress_rel(routers, dst, succ.hop);
        if (rel && !topo::check_bit(succ.hop.tag, *rel)) {
          // Eq. 3 fails on this hop: reconstruct the walk from the entry.
          ValleyViolation v;
          v.dst = dst;
          v.rel = *rel;
          for (std::int64_t at = s; prev[at] != -2; at = prev[at]) {
            v.hops.push_back(prev_hop[at]);
          }
          std::reverse(v.hops.begin(), v.hops.end());
          v.hops.push_back(succ.hop);
          result.violations.push_back(std::move(v));
          result.valley_free = false;
          violated = true;  // one counterexample per destination
          break;
        }
        if (prev[succ.state] == -1) {
          prev[succ.state] = s;
          prev_hop[succ.state] = succ.hop;
          queue.push_back(succ.state);
        }
      }
    }
  }
  return result;
}

ValleyCheck check_valley_freedom(const dp::Network& net,
                                 std::span<const dp::Addr> dests) {
  return check_valley_freedom(net.routers(), dests);
}

ValleyCheck check_valley_freedom(std::span<const dp::Router> routers) {
  const auto dests = fib_destinations(routers);
  return check_valley_freedom(routers, dests);
}

ValleyCheck check_valley_freedom(const dp::Network& net) {
  return check_valley_freedom(net.routers());
}

}  // namespace mifo::verify
