#include "verify/reachability.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <sstream>

#include "topo/relationship.hpp"
#include "verify/state_graph.hpp"

namespace mifo::verify {

namespace {

using detail::entry_states;
using detail::state_returned;
using detail::state_router;
using detail::state_tag;
using detail::Succ;
using detail::successors;

/// Whether the programmed alternative can actually move a packet carrying
/// `tag` onward: the port must exist, be up, lead to a router, and (for an
/// eBGP alt under an enforced Tag-Check) pass Eq. 3.
bool alt_usable(const dp::Router& router, const dp::FibEntry& fe, bool tag) {
  if (!fe.alt_port.valid()) return false;
  const dp::Port& alt = router.port(fe.alt_port);
  if (!alt.up) return false;
  if (alt.kind == dp::PortKind::Host || !alt.peer.is_router()) return false;
  if (alt.kind == dp::PortKind::Ebgp && router.config().enforce_tag_check &&
      !topo::check_bit(tag, alt.neighbor_rel)) {
    return false;
  }
  return true;
}

}  // namespace

const char* to_string(BlackholeKind k) {
  switch (k) {
    case BlackholeKind::NoRoute:
      return "no-route";
    case BlackholeKind::ReturnedNoAlt:
      return "returned-no-alt";
    case BlackholeKind::DefaultDown:
      return "default-down";
  }
  return "?";
}

std::string Blackhole::to_string() const {
  std::ostringstream os;
  os << "dst=" << dst << " blackhole[" << verify::to_string(kind) << "] at r"
     << router.value() << ":";
  if (hops.empty()) {
    os << " stranded at an ingress state";
  } else {
    for (const Hop& h : hops) {
      os << " r" << h.from.value() << " -[" << verify::to_string(h.kind)
         << " tag=" << (h.tag ? 1 : 0) << "]->";
    }
    os << " r" << hops.back().to.value();
  }
  return os.str();
}

ReachabilityCheck check_reachability(std::span<const dp::Router> routers,
                                     std::span<const dp::Addr> dests) {
  ReachabilityCheck result;
  result.stats.destinations = dests.size();
  const std::size_t num_states = routers.size() * 4;
  // prev[s]: -1 unvisited, -2 entry (BFS root), otherwise predecessor state.
  std::vector<std::int64_t> prev(num_states);
  std::vector<Hop> prev_hop(num_states);
  std::vector<std::uint8_t> reported(routers.size());
  std::vector<Succ> succs;

  const auto witness = [&](std::uint32_t s) {
    std::vector<Hop> hops;
    for (std::int64_t at = s; prev[at] != -2; at = prev[at]) {
      hops.push_back(prev_hop[at]);
    }
    std::reverse(hops.begin(), hops.end());
    return hops;
  };

  for (const dp::Addr dst : dests) {
    std::fill(prev.begin(), prev.end(), -1);
    std::fill(reported.begin(), reported.end(), 0);
    std::deque<std::uint32_t> queue;
    for (const std::uint32_t entry : entry_states(routers, dst)) {
      prev[entry] = -2;
      queue.push_back(entry);
    }

    while (!queue.empty()) {
      const std::uint32_t s = queue.front();
      queue.pop_front();
      const std::uint32_t r = state_router(s);
      const bool tag = state_tag(s);
      const bool returned = state_returned(s);
      const dp::Router& router = routers[r];
      ++result.stats.states;

      // Classify the state before expanding it.
      const auto fe = router.fib().lookup(dst);
      std::optional<BlackholeKind> kind;
      if (!fe) {
        kind = BlackholeKind::NoRoute;
      } else if (returned) {
        // The default would cycle (that is what `returned` means); with the
        // alternative structurally unusable the packet is stranded. An alt
        // that merely fails the Tag-Check is the intended line-20 drop.
        const bool has_alt =
            fe->alt_port.valid() &&
            router.port(fe->alt_port).kind != dp::PortKind::Host &&
            router.port(fe->alt_port).peer.is_router() &&
            router.port(fe->alt_port).up;
        if (!has_alt) kind = BlackholeKind::ReturnedNoAlt;
      } else {
        const dp::Port& def = router.port(fe->out_port);
        if (!def.up && !alt_usable(router, *fe, tag)) {
          kind = BlackholeKind::DefaultDown;
        }
      }
      if (kind && !reported[r]) {
        reported[r] = 1;
        Blackhole b;
        b.dst = dst;
        b.router = RouterId(r);
        b.kind = *kind;
        b.hops = witness(s);
        result.blackholes.push_back(std::move(b));
        result.clean = false;
      }

      succs.clear();
      successors(routers, dst, r, tag, returned, succs);
      result.stats.edges += succs.size();
      for (const Succ& succ : succs) {
        if (prev[succ.state] == -1) {
          prev[succ.state] = s;
          prev_hop[succ.state] = succ.hop;
          queue.push_back(succ.state);
        }
      }
    }
  }
  return result;
}

ReachabilityCheck check_reachability(const dp::Network& net,
                                     std::span<const dp::Addr> dests) {
  return check_reachability(net.routers(), dests);
}

ReachabilityCheck check_reachability(std::span<const dp::Router> routers) {
  const auto dests = fib_destinations(routers);
  return check_reachability(routers, dests);
}

ReachabilityCheck check_reachability(const dp::Network& net) {
  return check_reachability(net.routers());
}

}  // namespace mifo::verify
