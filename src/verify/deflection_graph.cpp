#include "verify/deflection_graph.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/contracts.hpp"
#include "topo/relationship.hpp"
#include "verify/state_graph.hpp"

namespace mifo::verify {

namespace detail {

/// All transitions a packet in state (r, tag, returned) could take under
/// Algorithm 1 as implemented by dp::Router::handle_packet. Congestion and
/// flow pinning are abstracted: a MIFO-enabled router may always deflect.
void successors(std::span<const dp::Router> routers, dp::Addr dst,
                std::uint32_t r, bool tag, bool returned,
                std::vector<Succ>& out) {
  const dp::Router& router = routers[r];
  const auto fe = router.fib().lookup(dst);
  if (!fe) return;  // line 4: no route -> drop, terminal

  const auto alt_edge = [&]() {
    if (!fe->alt_port.valid()) return;
    const dp::Port& alt = router.port(fe->alt_port);
    if (alt.kind == dp::PortKind::Host || !alt.peer.is_router()) return;
    const std::uint32_t s = alt.peer.id;
    if (alt.kind == dp::PortKind::Ibgp) {
      // Lines 12–15: IP-in-IP towards the iBGP peer. The peer decaps and
      // applies the line-11 return test: sender == its default next hop.
      // (Full-mesh iBGP: the port peer IS the encapsulation target.)
      bool ret2 = false;
      if (const auto fs = routers[s].fib().lookup(dst)) {
        const dp::Port& so = routers[s].port(fs->out_port);
        ret2 = so.peer_addr == router.addr();
      }
      out.push_back(
          {state_id(s, tag, ret2), Hop{RouterId(r), RouterId(s),
                                       HopKind::AltIbgp, tag}});
      return;
    }
    // Lines 16–20: eBGP alternative, gated by Eq. 3 unless the ablation
    // knob disabled the Tag-Check.
    if (router.config().enforce_tag_check &&
        !topo::check_bit(tag, alt.neighbor_rel)) {
      return;  // line 20: inadmissible -> drop (or stay on default)
    }
    // Lines 5–10 at the next AS entering point: the tag is rewritten from
    // the ingress port's relationship (what our AS is to the peer's AS).
    const dp::Port& ingress = routers[s].port(alt.peer_port);
    const bool tag2 = topo::tag_bit(ingress.neighbor_rel);
    out.push_back({state_id(s, tag2, false),
                   Hop{RouterId(r), RouterId(s), HopKind::AltEbgp, tag}});
  };

  if (returned) {
    // Line 11, returned packet: the default would cycle, so the alternative
    // is forced; with none admissible the packet drops (terminal).
    alt_edge();
    return;
  }

  const dp::Port& def = router.port(fe->out_port);
  if (def.kind == dp::PortKind::Host) return;  // delivery, terminal
  if (def.peer.is_router()) {
    const std::uint32_t s = def.peer.id;
    bool tag2 = tag;
    if (def.kind == dp::PortKind::Ebgp) {
      const dp::Port& ingress = routers[s].port(def.peer_port);
      tag2 = topo::tag_bit(ingress.neighbor_rel);
    }
    out.push_back({state_id(s, tag2, false),
                   Hop{RouterId(r), RouterId(s), HopKind::Default, tag}});
  }
  // Congestion-triggered deflection (line 11's second disjunct) is possible
  // whenever MIFO is on and the default egress is not the host port.
  if (router.config().mifo_enabled) alt_edge();
}

/// Ingress states packets can genuinely enter the network in: host-origin
/// traffic (tag = 1) where a host or customer attaches, plus one state per
/// eBGP ingress port with the tag that port's Tag-step would write.
std::vector<std::uint32_t> entry_states(std::span<const dp::Router> routers,
                                        dp::Addr dst) {
  std::vector<std::uint32_t> entries;
  for (std::uint32_t r = 0; r < routers.size(); ++r) {
    if (!routers[r].fib().contains(dst)) continue;
    for (const dp::Port& p : routers[r].ports()) {
      if (p.kind == dp::PortKind::Host) {
        entries.push_back(state_id(r, true, false));
      } else if (p.kind == dp::PortKind::Ebgp) {
        entries.push_back(state_id(r, topo::tag_bit(p.neighbor_rel), false));
      }
    }
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  return entries;
}

std::vector<std::uint32_t> host_entry_states(
    std::span<const dp::Router> routers, dp::Addr dst) {
  std::vector<std::uint32_t> entries;
  for (std::uint32_t r = 0; r < routers.size(); ++r) {
    if (!routers[r].fib().contains(dst)) continue;
    for (const dp::Port& p : routers[r].ports()) {
      if (p.kind == dp::PortKind::Host) {
        entries.push_back(state_id(r, true, false));
        break;
      }
    }
  }
  return entries;  // router-ascending, unique by construction
}

}  // namespace detail

namespace {

using detail::entry_states;
using detail::state_id;
using detail::state_router;
using detail::Succ;
using detail::successors;

enum : std::uint8_t { kWhite = 0, kGray = 1, kBlack = 2 };

struct Frame {
  std::uint32_t state = 0;
  Hop entered_by;  ///< hop that led here (unused for the root frame)
  std::vector<Succ> succs;
  std::size_t next = 0;
};

}  // namespace

const char* to_string(HopKind k) {
  switch (k) {
    case HopKind::Default:
      return "default";
    case HopKind::AltEbgp:
      return "alt-ebgp";
    case HopKind::AltIbgp:
      return "alt-ibgp";
  }
  return "?";
}

std::string Cycle::to_string() const {
  std::ostringstream os;
  os << "dst=" << dst << " cycle:";
  for (const Hop& h : hops) {
    os << " r" << h.from.value() << " -[" << verify::to_string(h.kind)
       << " tag=" << (h.tag ? 1 : 0) << "]->";
  }
  if (!hops.empty()) os << " r" << hops.back().to.value();
  return os.str();
}

std::vector<dp::Addr> fib_destinations(std::span<const dp::Router> routers) {
  std::unordered_set<dp::Addr> seen;
  for (const dp::Router& r : routers) {
    for (const auto& [dst, fe] : r.fib()) seen.insert(dst);
  }
  std::vector<dp::Addr> dests(seen.begin(), seen.end());
  std::sort(dests.begin(), dests.end());
  return dests;
}

std::vector<dp::Addr> fib_destinations(const dp::Network& net) {
  return fib_destinations(net.routers());
}

LoopCheck check_loop_freedom(std::span<const dp::Router> routers,
                             std::span<const dp::Addr> dests) {
  LoopCheck result;
  result.stats.destinations = dests.size();
  const std::size_t num_states = routers.size() * 4;
  std::vector<std::uint8_t> color(num_states);
  std::vector<Frame> stack;

  for (const dp::Addr dst : dests) {
    std::fill(color.begin(), color.end(), kWhite);
    bool cycle_found = false;

    for (const std::uint32_t entry : entry_states(routers, dst)) {
      if (cycle_found || color[entry] != kWhite) continue;
      color[entry] = kGray;
      stack.clear();
      stack.push_back(Frame{entry, Hop{}, {}, 0});
      successors(routers, dst, state_router(entry), (entry & 2u) != 0,
                 (entry & 1u) != 0, stack.back().succs);
      result.stats.edges += stack.back().succs.size();
      ++result.stats.states;

      while (!stack.empty() && !cycle_found) {
        Frame& f = stack.back();
        if (f.next == f.succs.size()) {
          color[f.state] = kBlack;
          stack.pop_back();
          continue;
        }
        const Succ succ = f.succs[f.next++];
        if (color[succ.state] == kGray) {
          // Back edge: the gray state sits on the DFS stack. The hops from
          // its frame down to here, closed by `succ.hop`, form a concrete
          // admissible cycle.
          Cycle cycle;
          cycle.dst = dst;
          std::size_t j = stack.size();
          while (j > 0 && stack[j - 1].state != succ.state) --j;
          MIFO_ASSERT(j > 0);
          for (std::size_t k = j; k < stack.size(); ++k) {
            cycle.hops.push_back(stack[k].entered_by);
          }
          cycle.hops.push_back(succ.hop);
          result.cycles.push_back(std::move(cycle));
          result.loop_free = false;
          cycle_found = true;  // one counterexample per destination
          break;
        }
        if (color[succ.state] == kWhite) {
          color[succ.state] = kGray;
          stack.push_back(Frame{succ.state, succ.hop, {}, 0});
          successors(routers, dst, state_router(succ.state),
                     (succ.state & 2u) != 0, (succ.state & 1u) != 0,
                     stack.back().succs);
          result.stats.edges += stack.back().succs.size();
          ++result.stats.states;
        }
      }
    }
  }
  return result;
}

LoopCheck check_loop_freedom(const dp::Network& net,
                             std::span<const dp::Addr> dests) {
  return check_loop_freedom(net.routers(), dests);
}

LoopCheck check_loop_freedom(std::span<const dp::Router> routers) {
  const auto dests = fib_destinations(routers);
  return check_loop_freedom(routers, dests);
}

LoopCheck check_loop_freedom(const dp::Network& net) {
  return check_loop_freedom(net.routers());
}

}  // namespace mifo::verify
