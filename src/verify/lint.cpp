#include "verify/lint.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "bgp/route_store.hpp"
#include "topo/analysis.hpp"

namespace mifo::verify {

const char* to_string(LintKind k) {
  switch (k) {
    case LintKind::AltEqualsDefault:
      return "alt-equals-default";
    case LintKind::AltMissingFromRib:
      return "alt-missing-from-rib";
    case LintKind::ExportViolation:
      return "export-violation";
    case LintKind::AsymmetricRelationship:
      return "asymmetric-relationship";
  }
  return "?";
}

std::string LintIssue::to_string() const {
  std::ostringstream os;
  os << "[" << verify::to_string(kind) << "]";
  if (as.valid()) os << " AS" << as.value();
  if (router.valid()) os << " r" << router.value();
  if (dst != dp::kInvalidAddr) os << " dst=" << dst;
  os << ": " << detail;
  return os.str();
}

std::vector<LintIssue> lint_topology(const topo::AsGraph& g) {
  std::vector<LintIssue> issues;
  for (const auto& asym : topo::relationship_asymmetries(g)) {
    LintIssue issue;
    issue.kind = LintKind::AsymmetricRelationship;
    issue.as = asym.a;
    std::ostringstream os;
    os << "AS" << asym.a.value() << " sees AS" << asym.b.value() << " as "
       << topo::to_string(asym.a_sees_b) << " but the reverse direction is "
       << (asym.b_sees_a ? topo::to_string(*asym.b_sees_a) : "missing");
    issue.detail = os.str();
    issues.push_back(std::move(issue));
  }
  return issues;
}

namespace {

/// Shared body of the full and destination-filtered deployment lints.
/// `dests` (sorted) restricts output to those destinations; nullptr lints
/// everything.
std::vector<LintIssue> lint_deployment_impl(
    const dp::Network& net, const topo::AsGraph& g,
    std::span<const std::unique_ptr<core::MifoDaemon>> daemons,
    std::span<const std::pair<dp::Addr, AsId>> prefix_owners,
    const std::span<const dp::Addr>* dests) {
  const auto want = [dests](dp::Addr dst) {
    return dests == nullptr ||
           std::binary_search(dests->begin(), dests->end(), dst);
  };
  std::vector<LintIssue> issues;

  std::unordered_map<dp::Addr, AsId> owner;
  for (const auto& [prefix, as] : prefix_owners) owner.emplace(prefix, as);

  // Converged routes are recomputed per destination AS once and shared
  // across every AS's lints (the RIB ground truth the daemons were fed).
  std::unordered_map<std::uint32_t, bgp::RouteStore> routes_cache;
  const auto routes_for = [&](AsId dest) -> const bgp::RouteStore& {
    auto it = routes_cache.find(dest.value());
    if (it == routes_cache.end()) {
      it = routes_cache.emplace(dest.value(), bgp::RouteStore(g, dest)).first;
    }
    return it->second;
  };

  for (const auto& daemon : daemons) {
    if (!daemon) continue;
    const core::AsWiring& w = daemon->wiring();

    std::unordered_map<dp::Addr, const core::PrefixRoutes*> pr_map;
    for (const core::PrefixRoutes& pr : daemon->prefixes()) {
      pr_map.emplace(pr.prefix, &pr);
    }

    // Gao–Rexford export-rule check of the daemon's advertised-route
    // knowledge: every claimed alternative must be a neighbor that would
    // genuinely export a route for the prefix.
    for (const core::PrefixRoutes& pr : daemon->prefixes()) {
      if (!want(pr.prefix)) continue;
      const auto own = owner.find(pr.prefix);
      if (own == owner.end() || own->second == w.as) continue;
      const bgp::RouteStore& routes = routes_for(own->second);
      for (const AsId alt : pr.alternatives) {
        if (alt == pr.default_neighbor) {
          LintIssue issue;
          issue.kind = LintKind::AltEqualsDefault;
          issue.as = w.as;
          issue.dst = pr.prefix;
          issue.detail = "RIB alternative duplicates the default neighbor AS" +
                         std::to_string(alt.value());
          issues.push_back(std::move(issue));
          continue;
        }
        if (!routes.rib_from(w.as, alt)) {
          LintIssue issue;
          issue.kind = LintKind::ExportViolation;
          issue.as = w.as;
          issue.dst = pr.prefix;
          issue.detail =
              "AS" + std::to_string(alt.value()) +
              " would not export a route for this prefix (Gao-Rexford)";
          issues.push_back(std::move(issue));
        }
      }
    }

    // Per-router FIB state against the daemon's RIB knowledge.
    for (const RouterId r : w.routers) {
      const dp::Router& router = net.router(r);
      for (const auto& [dst, fe] : router.fib()) {
        if (!fe.alt_port.valid() || !want(dst)) continue;
        if (fe.alt_port == fe.out_port) {
          LintIssue issue;
          issue.kind = LintKind::AltEqualsDefault;
          issue.as = w.as;
          issue.router = r;
          issue.dst = dst;
          issue.detail = "alt_port equals the default out_port";
          issues.push_back(std::move(issue));
          continue;
        }
        const dp::Port& alt = router.port(fe.alt_port);
        if (alt.kind != dp::PortKind::Ebgp) continue;
        const dp::Port& def = router.port(fe.out_port);
        if (def.kind == dp::PortKind::Ebgp &&
            def.neighbor_as == alt.neighbor_as) {
          LintIssue issue;
          issue.kind = LintKind::AltEqualsDefault;
          issue.as = w.as;
          issue.router = r;
          issue.dst = dst;
          issue.detail = "alt_port exits to the default's neighbor AS" +
                         std::to_string(alt.neighbor_as.value());
          issues.push_back(std::move(issue));
          continue;
        }
        const auto pr_it = pr_map.find(dst);
        const core::PrefixRoutes* pr =
            pr_it == pr_map.end() ? nullptr : pr_it->second;
        const bool in_rib =
            pr != nullptr &&
            std::find(pr->alternatives.begin(), pr->alternatives.end(),
                      alt.neighbor_as) != pr->alternatives.end();
        if (!in_rib) {
          LintIssue issue;
          issue.kind = LintKind::AltMissingFromRib;
          issue.as = w.as;
          issue.router = r;
          issue.dst = dst;
          issue.detail = "alt_port exits to AS" +
                         std::to_string(alt.neighbor_as.value()) +
                         ", which is not a RIB alternative for this prefix";
          issues.push_back(std::move(issue));
        }
      }
    }
  }
  return issues;
}

}  // namespace

std::vector<LintIssue> lint_deployment(
    const dp::Network& net, const topo::AsGraph& g,
    std::span<const std::unique_ptr<core::MifoDaemon>> daemons,
    std::span<const std::pair<dp::Addr, AsId>> prefix_owners) {
  return lint_deployment_impl(net, g, daemons, prefix_owners, nullptr);
}

std::vector<LintIssue> lint_deployment(
    const dp::Network& net, const topo::AsGraph& g,
    std::span<const std::unique_ptr<core::MifoDaemon>> daemons,
    std::span<const std::pair<dp::Addr, AsId>> prefix_owners,
    std::span<const dp::Addr> dests) {
  return lint_deployment_impl(net, g, daemons, prefix_owners, &dests);
}

}  // namespace mifo::verify
