// Reachability / blackhole analysis over installed forwarding state.
//
// A destination's deflection graph can *strand* packets: traffic reaches a
// router that has no way to move it onward — no FIB entry at all, a
// returned packet with no alternative left to force, or a default egress
// whose link is down with no alternative to deflect onto. The loop prover
// never sees these (a stranded state is terminal, not cyclic); this
// analysis walks the same reachable state space and reports each stranded
// router with a concrete witness path, like the loop prover's cycles.
//
// Deliberate non-findings: a returned packet whose alternative exists but
// fails the Eq. 3 Tag-Check is Algorithm 1's *intended* line-20 drop (the
// default would cycle, the alt would open a valley — dropping is the
// theorem, not a bug), so it is not reported. This is also the one
// analysis that reads Port::up — which is why ChangeSet keeps a separate
// port-dirty set for it, and why the chaos engine leaves it off by
// default: a link-down fault legitimately strands traffic until the
// daemons reconverge, and flagging that window would drown real findings.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dataplane/network.hpp"
#include "verify/deflection_graph.hpp"

namespace mifo::verify {

enum class BlackholeKind : std::uint8_t {
  /// A reachable router has no FIB entry for the destination (line 4 drop
  /// fed by a neighbor that still forwards here).
  NoRoute,
  /// A returned packet (line 11) finds no alternative programmed at all.
  ReturnedNoAlt,
  /// The default egress link is down and no usable alternative exists.
  DefaultDown,
};

[[nodiscard]] const char* to_string(BlackholeKind k);

/// One stranded router for one destination, with the witness walk that
/// reaches it from an ingress state (empty when the stranded state is
/// itself an ingress).
struct Blackhole {
  dp::Addr dst = dp::kInvalidAddr;
  RouterId router = RouterId::invalid();
  BlackholeKind kind = BlackholeKind::NoRoute;
  std::vector<Hop> hops;
  [[nodiscard]] std::string to_string() const;
};

struct ReachabilityCheck {
  bool clean = true;
  /// At most one finding per (destination, router).
  std::vector<Blackhole> blackholes;
  VerifyStats stats;
};

/// Finds every router a destination's reachable deflection graph strands
/// packets at. Entry states are the loop prover's (host + eBGP ingress).
[[nodiscard]] ReachabilityCheck check_reachability(
    std::span<const dp::Router> routers, std::span<const dp::Addr> dests);
[[nodiscard]] ReachabilityCheck check_reachability(
    const dp::Network& net, std::span<const dp::Addr> dests);

/// Convenience: all destinations found in the FIBs.
[[nodiscard]] ReachabilityCheck check_reachability(
    std::span<const dp::Router> routers);
[[nodiscard]] ReachabilityCheck check_reachability(const dp::Network& net);

}  // namespace mifo::verify
