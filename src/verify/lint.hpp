// Static FIB/RIB consistency lints (the verifier's second half).
//
// The deflection-graph check proves loop-freedom; these lints catch the
// installed-state corruption that *erodes* MIFO's usefulness without
// necessarily looping: alternatives the RIB never advertised, alternatives
// that duplicate the default, daemon RIB knowledge that violates the
// Gao–Rexford export rule, and topologies whose two link directions
// disagree about the business relationship.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/daemon.hpp"
#include "dataplane/network.hpp"
#include "topo/as_graph.hpp"

namespace mifo::verify {

enum class LintKind : std::uint8_t {
  /// A FIB entry's alt_port equals its out_port (or exits to the same
  /// neighbor AS as the default) — a "spare" path with zero diversity.
  AltEqualsDefault,
  /// An eBGP alt_port exits towards an AS that is not among the RIB
  /// alternatives the daemon knows for that prefix.
  AltMissingFromRib,
  /// A daemon RIB alternative the Gao–Rexford export rule says the
  /// neighbor would never have advertised.
  ExportViolation,
  /// The two directions of an adjacency disagree about the relationship.
  AsymmetricRelationship,
};

[[nodiscard]] const char* to_string(LintKind k);

struct LintIssue {
  LintKind kind = LintKind::AltEqualsDefault;
  AsId as = AsId::invalid();
  RouterId router = RouterId::invalid();
  dp::Addr dst = dp::kInvalidAddr;
  std::string detail;
  [[nodiscard]] std::string to_string() const;
};

/// Pure-topology lints (relationship asymmetry).
[[nodiscard]] std::vector<LintIssue> lint_topology(const topo::AsGraph& g);

/// Deployment lints over live router FIBs and daemon RIB state.
/// `prefix_owners` maps each destination prefix to the AS originating it
/// (the testbed's host attachments); prefixes absent from the map only get
/// the RIB-independent checks.
[[nodiscard]] std::vector<LintIssue> lint_deployment(
    const dp::Network& net, const topo::AsGraph& g,
    std::span<const std::unique_ptr<core::MifoDaemon>> daemons,
    std::span<const std::pair<dp::Addr, AsId>> prefix_owners);

/// Destination-filtered deployment lints: only issues whose `dst` is in
/// `dests` (which must be sorted ascending) are produced. Every deployment
/// lint names the destination it concerns, so issues partition exactly by
/// destination — the incremental verifier re-lints dirty destinations with
/// this overload and the union over all destinations equals the full run
/// (element-identical; see the differential property tests).
[[nodiscard]] std::vector<LintIssue> lint_deployment(
    const dp::Network& net, const topo::AsGraph& g,
    std::span<const std::unique_ptr<core::MifoDaemon>> daemons,
    std::span<const std::pair<dp::Addr, AsId>> prefix_owners,
    std::span<const dp::Addr> dests);

}  // namespace mifo::verify
