#include "verify/changeset.hpp"

#include <algorithm>
#include <sstream>

namespace mifo::verify {

namespace {

void sort_unique(std::vector<dp::Addr>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

void add_router_fib_dests(std::span<const dp::Router> routers, RouterId r,
                          std::vector<dp::Addr>& out) {
  if (!r.valid() || r.value() >= routers.size()) return;
  for (const auto& [dst, fe] : routers[r.value()].fib()) out.push_back(dst);
}

}  // namespace

void ChangeSet::drain(dp::ChangeLog& log) {
  const auto take = [](auto& dst, auto& src) {
    if (dst.empty()) {
      dst = std::move(src);
    } else {
      dst.insert(dst.end(), src.begin(), src.end());
    }
    src.clear();
  };
  take(fib_, log.fib);
  take(ports_, log.ports);
  take(configs_, log.configs);
  take(daemons_, log.daemons);
}

void ChangeSet::clear() {
  fib_.clear();
  ports_.clear();
  configs_.clear();
  daemons_.clear();
  routing_.clear();
}

std::vector<dp::Addr> ChangeSet::dirty_destinations(
    std::span<const dp::Router> routers) const {
  std::vector<dp::Addr> dirty;
  dirty.reserve(fib_.size() + daemons_.size() + routing_.size());
  for (const auto& c : fib_) dirty.push_back(c.dst);
  for (const auto& c : daemons_) dirty.push_back(c.prefix);
  for (const dp::Addr prefix : routing_) dirty.push_back(prefix);
  for (const auto& c : configs_) add_router_fib_dests(routers, c.router, dirty);
  sort_unique(dirty);
  return dirty;
}

std::vector<dp::Addr> ChangeSet::port_dirty_destinations(
    std::span<const dp::Router> routers) const {
  std::vector<dp::Addr> dirty;
  for (const auto& c : ports_) add_router_fib_dests(routers, c.router, dirty);
  sort_unique(dirty);
  return dirty;
}

std::string ChangeSet::to_string() const {
  std::ostringstream os;
  os << "fib=" << fib_.size() << " ports=" << ports_.size()
     << " configs=" << configs_.size() << " daemons=" << daemons_.size()
     << " routing=" << routing_.size();
  return os.str();
}

}  // namespace mifo::verify
