// Internet-scale study: BGP vs MIRO vs MIFO on a generated AS topology with
// uniform traffic — a miniature of the paper's Fig. 5(b) (50% deployment).
// The three scheme arms are independent sims and run concurrently across
// MIFO_THREADS workers (0/unset = hardware_concurrency).
//
// Emits an `internet_scale.json` run artifact (schema mifo.run_artifact.v1)
// into MIFO_ARTIFACT_DIR (default "."; "-" disables).
//
//   ./examples/internet_scale [num_ases] [num_flows] [deploy_ratio]

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "obs/artifact.hpp"
#include "obs/registry.hpp"
#include "sim/fluid_sim.hpp"
#include "sim/metrics.hpp"
#include "topo/analysis.hpp"
#include "topo/generator.hpp"
#include "traffic/traffic.hpp"

using namespace mifo;

int main(int argc, char** argv) {
  const std::size_t num_ases =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1500;
  const std::size_t num_flows =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;
  const double ratio = argc > 3 ? std::strtod(argv[3], nullptr) : 0.5;

  topo::GeneratorParams gp;
  gp.num_ases = num_ases;
  gp.seed = 3;
  const topo::AsGraph g = topo::generate_topology(gp);
  std::printf("topology: %s\n",
              topo::attributes_report(topo::attributes(g)).c_str());

  traffic::TrafficParams tp;
  tp.num_flows = num_flows;
  tp.dest_pool = 128;
  const auto flows = traffic::uniform_traffic(g, tp);
  const auto deployed = traffic::random_deployment(g.num_ases(), ratio, 17);

  const std::vector<sim::RoutingMode> modes{
      sim::RoutingMode::Bgp, sim::RoutingMode::Miro, sim::RoutingMode::Mifo};
  obs::Registry reg;
  std::vector<std::vector<std::string>> rows(modes.size());
  std::vector<sim::RunSummary> sums(modes.size());
  std::vector<obs::UtilSeries> samples(modes.size());
  auto run_mode = [&](std::size_t i) {
    sim::SimConfig sc;
    sc.mode = modes[i];
    sim::FluidSim fs(g, sc);
    fs.attach_registry(reg, std::string("mode=") + sim::to_string(modes[i]));
    fs.enable_sampling(0.05);
    fs.set_deployment(deployed);
    const auto records = fs.run(flows);
    sums[i] = sim::summarize(records);
    samples[i] = fs.samples();
    const auto& s = sums[i];
    char buf[64];
    std::vector<std::string> row;
    row.emplace_back(sim::to_string(modes[i]));
    std::snprintf(buf, sizeof(buf), "%.0f", s.mean_throughput);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.0f", s.median_throughput);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * s.frac_at_500mbps);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * s.offload);
    row.emplace_back(buf);
    rows[i] = std::move(row);
  };
  if (default_thread_count() > 1) {
    ThreadPool pool(std::min(default_thread_count(), modes.size()));
    parallel_for(pool, modes.size(), run_mode);
  } else {
    for (std::size_t i = 0; i < modes.size(); ++i) run_mode(i);
  }
  std::printf("\n%zu flows, %.0f%% deployment:\n%s", num_flows, 100.0 * ratio,
              format_table({"mode", "mean Mbps", "median Mbps", ">=500Mbps",
                            "offloaded"},
                           rows)
                  .c_str());

  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json::str("mifo.run_artifact.v1"));
  root.set("bench", obs::Json::str("internet_scale"));
  obs::Json scale = obs::Json::object();
  scale.set("topo_n", obs::Json::num(static_cast<std::uint64_t>(num_ases)));
  scale.set("flows", obs::Json::num(static_cast<std::uint64_t>(num_flows)));
  scale.set("deploy_ratio", obs::Json::num(ratio));
  root.set("scale", std::move(scale));
  obs::Json arms = obs::Json::array();
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const auto& s = sums[i];
    obs::Json a = obs::Json::object();
    a.set("name", obs::Json::str(sim::to_string(modes[i])));
    a.set("mode", obs::Json::str(sim::to_string(modes[i])));
    a.set("deploy_ratio", obs::Json::num(
                              modes[i] == sim::RoutingMode::Bgp ? 0.0 : ratio));
    obs::Json sum = obs::Json::object();
    sum.set("total", obs::Json::num(static_cast<std::uint64_t>(s.total)));
    sum.set("completed",
            obs::Json::num(static_cast<std::uint64_t>(s.completed)));
    sum.set("unreachable",
            obs::Json::num(static_cast<std::uint64_t>(s.unreachable)));
    sum.set("mean_throughput_mbps", obs::Json::num(s.mean_throughput));
    sum.set("median_throughput_mbps", obs::Json::num(s.median_throughput));
    sum.set("frac_at_500mbps", obs::Json::num(s.frac_at_500mbps));
    sum.set("offload", obs::Json::num(s.offload));
    a.set("summary", std::move(sum));
    a.set("drops",
          obs::drops_json(
              {{"unreachable", s.unreachable},
               {"incomplete", s.total - s.completed - s.unreachable}}));
    a.set("utilization", obs::to_json(samples[i]));
    arms.push(std::move(a));
  }
  root.set("arms", std::move(arms));
  root.set("metrics", obs::to_json(reg.snapshot()));
  const std::string path = obs::write_artifact("internet_scale", root);
  if (!path.empty()) std::printf("\nartifact: %s\n", path.c_str());
  return 0;
}
