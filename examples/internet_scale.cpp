// Internet-scale study: BGP vs MIRO vs MIFO on a generated AS topology with
// uniform traffic — a miniature of the paper's Fig. 5(b) (50% deployment).
// The three scheme arms are independent sims and run concurrently across
// MIFO_THREADS workers (0/unset = hardware_concurrency).
//
//   ./examples/internet_scale [num_ases] [num_flows] [deploy_ratio]

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "sim/fluid_sim.hpp"
#include "sim/metrics.hpp"
#include "topo/analysis.hpp"
#include "topo/generator.hpp"
#include "traffic/traffic.hpp"

using namespace mifo;

int main(int argc, char** argv) {
  const std::size_t num_ases =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1500;
  const std::size_t num_flows =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;
  const double ratio = argc > 3 ? std::strtod(argv[3], nullptr) : 0.5;

  topo::GeneratorParams gp;
  gp.num_ases = num_ases;
  gp.seed = 3;
  const topo::AsGraph g = topo::generate_topology(gp);
  std::printf("topology: %s\n",
              topo::attributes_report(topo::attributes(g)).c_str());

  traffic::TrafficParams tp;
  tp.num_flows = num_flows;
  tp.dest_pool = 128;
  const auto flows = traffic::uniform_traffic(g, tp);
  const auto deployed = traffic::random_deployment(g.num_ases(), ratio, 17);

  const std::vector<sim::RoutingMode> modes{
      sim::RoutingMode::Bgp, sim::RoutingMode::Miro, sim::RoutingMode::Mifo};
  std::vector<std::vector<std::string>> rows(modes.size());
  auto run_mode = [&](std::size_t i) {
    sim::SimConfig sc;
    sc.mode = modes[i];
    sim::FluidSim fs(g, sc);
    fs.set_deployment(deployed);
    const auto records = fs.run(flows);
    const auto s = sim::summarize(records);
    char buf[64];
    std::vector<std::string> row;
    row.emplace_back(sim::to_string(modes[i]));
    std::snprintf(buf, sizeof(buf), "%.0f", s.mean_throughput);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.0f", s.median_throughput);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * s.frac_at_500mbps);
    row.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * s.offload);
    row.emplace_back(buf);
    rows[i] = std::move(row);
  };
  if (default_thread_count() > 1) {
    ThreadPool pool(std::min(default_thread_count(), modes.size()));
    parallel_for(pool, modes.size(), run_mode);
  } else {
    for (std::size_t i = 0; i < modes.size(); ++i) run_mode(i);
  }
  std::printf("\n%zu flows, %.0f%% deployment:\n%s", num_flows, 100.0 * ratio,
              format_table({"mode", "mean Mbps", "median Mbps", ">=500Mbps",
                            "offloaded"},
                           rows)
                  .c_str());
  return 0;
}
