// Runs the paper's testbed experiment (Section V) in emulation: the Fig. 11
// topology with 30+30 back-to-back TCP flows, once under plain BGP and once
// with MIFO enabled on AS 3. Prints the Fig. 12 headline numbers.
//
//   ./examples/testbed_demo [flow_size_mb] [flows_per_pair]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "testbed/fig11.hpp"

using namespace mifo;

int main(int argc, char** argv) {
  const std::size_t mb = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  const std::size_t flows =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;

  testbed::Fig12Params params;
  params.flow_size = mb * kMegaByte;
  params.flows_per_pair = flows;

  testbed::Fig12Result results[2];
  for (const bool mifo : {false, true}) {
    params.mifo = mifo;
    results[mifo ? 1 : 0] = testbed::run_fig12(params);
  }
  const auto& bgp = results[0];
  const auto& mifo = results[1];

  std::printf("Fig.11 testbed, %zu MB flows, %zu per pair:\n", mb, flows);
  for (int i = 0; i < 2; ++i) {
    const auto& r = results[i];
    double fct_max = 0.0;
    for (const double f : r.fct) fct_max = std::max(fct_max, f);
    std::printf(
        "  %-4s aggregate %.2f Gbps, all flows done in %.2f s, "
        "slowest flow %.2f s, deflected pkts %llu, encaps %llu, "
        "switches %llu, returned %llu, valley_drops %llu\n",
        i == 0 ? "BGP" : "MIFO", r.aggregate_gbps, r.total_time, fct_max,
        static_cast<unsigned long long>(r.counters.deflected),
        static_cast<unsigned long long>(r.counters.encapsulated),
        static_cast<unsigned long long>(r.counters.flow_switches),
        static_cast<unsigned long long>(r.counters.returned_detected),
        static_cast<unsigned long long>(r.counters.valley_drops));
  }
  std::printf("MIFO improves aggregate throughput by %.0f%% (paper: 81%%)\n",
              100.0 * (mifo.aggregate_gbps / bgp.aggregate_gbps - 1.0));
  return 0;
}
