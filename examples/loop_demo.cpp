// Demonstrates the paper's core loop problem (Fig. 2(a)) and its fix.
//
// Three peering ASes (1, 2, 3) share a customer AS 0. Every AS's default
// path to AS 0 is its direct link; every AS also has alternative routes via
// its peers. When all default links congest simultaneously and every AS
// deflects clockwise, the data plane loops 1 -> 2 -> 3 -> 1 -> ... even
// though the control plane is loop-free — unless the valley-free Tag-Check
// rule gates each deflection, in which case the second peer hop is refused
// and the packet is dropped at once.

#include <cstdio>
#include <vector>

#include "bgp/routing.hpp"
#include "dataplane/network.hpp"
#include "obs/trace.hpp"
#include "topo/as_graph.hpp"
#include "topo/relationship.hpp"

using namespace mifo;

namespace {

/// Hand-rolled deflection walk: at every AS the default link is congested
/// and the AS deflects clockwise to the next peer. `enforce_rule` applies
/// the paper's Eq. 3 / Tag-Check gate.
void walk(const topo::AsGraph& g, const std::vector<AsId>& clockwise,
          bool enforce_rule) {
  const AsId dest(0);
  AsId cur = clockwise.front();
  bool tag = true;  // traffic originates inside the first AS
  std::printf("  %u", cur.value());
  for (int hop = 0; hop < 8; ++hop) {
    // Pick the clockwise peer as the (congested-default) deflection target.
    AsId next = AsId::invalid();
    for (std::size_t i = 0; i < clockwise.size(); ++i) {
      if (clockwise[i] == cur) {
        next = clockwise[(i + 1) % clockwise.size()];
        break;
      }
    }
    const topo::Rel rel = *g.rel(cur, next);
    if (enforce_rule && !topo::check_bit(tag, rel)) {
      std::printf("  -> DROP at AS%u (tag=%d, downstream is a %s; Eq.3 "
                  "refuses the transit)\n",
                  cur.value(), tag ? 1 : 0, topo::to_string(rel));
      return;
    }
    std::printf(" -> %u", next.value());
    tag = topo::tag_bit(*g.rel(next, cur));
    cur = next;
  }
  std::printf("  ... LOOP (packet never reaches AS%u)\n", dest.value());
}

/// The same story on the packet plane, observed through the event tracer:
/// a probe flow is deflected over iBGP at its source AS, bounces back
/// (returned-packet detection, Fig. 2(b)), escapes over a peer (Tag-Check
/// passes: tag=1), and is finally refused peer-to-peer transit at the next
/// AS (Tag-Check fails: tag=0) — the drop that severs the would-be loop.
void traced_packet_walk() {
  dp::Network net;
  obs::Tracer tracer(256);
  net.set_tracer(&tracer);

  // AS 100 has two border routers ra/rb (iBGP); AS 4 is a peer of AS 100
  // reached via rb. Extra stub ASes terminate the default egresses we
  // congest (3 and 5) and offer AS 4 a peer-class alternative (6).
  const RouterId ra = net.add_router(AsId(100));
  const RouterId rb = net.add_router(AsId(100));
  const RouterId r4 = net.add_router(AsId(4));
  const RouterId ra_def = net.add_router(AsId(3));
  const RouterId r4_def = net.add_router(AsId(5));
  const RouterId r4_alt = net.add_router(AsId(6));

  const HostId h = net.add_host();
  const PortId host_port = net.connect_host(ra, h);
  const PortId ra_out = net.connect_ebgp(ra, ra_def, topo::Rel::Peer).first;
  const auto [ra_ibgp, rb_ibgp] = net.connect_ibgp(ra, rb);
  const auto [rb_out, r4_in] = net.connect_ebgp(rb, r4, topo::Rel::Peer);
  const PortId r4_out =
      net.connect_ebgp(r4, r4_def, topo::Rel::Peer).first;
  const PortId r4_alt_port =
      net.connect_ebgp(r4, r4_alt, topo::Rel::Peer).first;
  (void)r4_in;

  const dp::Addr dst = 0x80000042;  // beyond AS 4's congested default
  net.router(ra).config().mifo_enabled = true;
  net.router(ra).fib().set_route(dst, ra_out);
  net.router(ra).fib().set_alt(dst, ra_ibgp);
  net.router(rb).config().mifo_enabled = true;
  net.router(rb).fib().set_route(dst, rb_ibgp);  // default next hop IS ra
  net.router(rb).fib().set_alt(dst, rb_out);
  net.router(r4).config().mifo_enabled = true;
  net.router(r4).config().drop_on_congested_no_alt = true;  // faithful l.20
  net.router(r4).fib().set_route(dst, r4_out);
  net.router(r4).fib().set_alt(dst, r4_alt_port);

  // Congest both default egresses with background fillers (flow 999 — the
  // per-flow filter keeps them out of the trace).
  auto congest = [&](RouterId r, PortId port) {
    for (int i = 0; i < 90; ++i) {
      dp::Packet filler;
      filler.src = 0x70000001;
      filler.dst = dst;
      filler.flow = FlowId(999);
      filler.size_bytes = 1000;
      net.transmit_router(r, port, filler);
    }
  };
  congest(ra, ra_out);
  congest(r4, r4_out);

  // The probe: flow 7, host-originated at ra.
  const std::uint64_t probe_flow = 7;
  tracer.set_flow_filter(probe_flow);
  dp::Packet probe;
  probe.src = net.host_addr(h);
  probe.dst = dst;
  probe.flow = FlowId(probe_flow);
  probe.size_bytes = 1000;
  net.router(ra).handle_packet(net, probe, host_port);
  net.run_to_completion(1.0);

  std::printf("\npacket-plane walk of probe flow %llu (event tracer):\n",
              static_cast<unsigned long long>(probe_flow));
  for (const obs::TraceEvent& ev : tracer.events()) {
    std::printf("  %s\n", obs::Tracer::describe(ev).c_str());
  }
  std::printf("\n  ra=r%u rb=r%u (AS100), r%u (AS4): the probe is deflected "
              "over iBGP at ra,\n  returned by rb (its default next hop is "
              "ra), escapes over the AS4 peer link\n  (tag=1 passes Eq. 3), "
              "and AS4 — entered from a peer, tag=0 — refuses\n  "
              "peer-to-peer transit and drops it: no loop.\n",
              ra.value(), rb.value(), r4.value());
}

}  // namespace

int main() {
  // Fig. 2(a): ASes 1,2,3 mutually peer; AS 0 is everyone's customer.
  topo::AsGraph g(4);
  const AsId as0(0), as1(1), as2(2), as3(3);
  g.add_provider_customer(as1, as0);
  g.add_provider_customer(as2, as0);
  g.add_provider_customer(as3, as0);
  g.add_peering(as1, as2);
  g.add_peering(as2, as3);
  g.add_peering(as3, as1);

  const auto routes = bgp::compute_routes(g, as0);
  std::printf("control plane (towards AS0):\n");
  for (const AsId as : {as1, as2, as3}) {
    const auto rib = bgp::rib_of(g, routes, as);
    std::printf("  AS%u: default via AS%u, %zu RIB routes\n", as.value(),
                routes.best(as).next_hop.value(), rib.size());
  }

  std::printf("\nall defaults congested, deflecting clockwise, no rule:\n");
  walk(g, {as1, as2, as3}, /*enforce_rule=*/false);

  std::printf("\nsame scenario with the valley-free Tag-Check rule:\n");
  walk(g, {as1, as2, as3}, /*enforce_rule=*/true);

  std::printf("\nThe drop severs the data-plane loop exactly as Section "
              "III-A2 describes.\n");

  traced_packet_walk();
  return 0;
}
