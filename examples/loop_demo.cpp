// Demonstrates the paper's core loop problem (Fig. 2(a)) and its fix.
//
// Three peering ASes (1, 2, 3) share a customer AS 0. Every AS's default
// path to AS 0 is its direct link; every AS also has alternative routes via
// its peers. When all default links congest simultaneously and every AS
// deflects clockwise, the data plane loops 1 -> 2 -> 3 -> 1 -> ... even
// though the control plane is loop-free — unless the valley-free Tag-Check
// rule gates each deflection, in which case the second peer hop is refused
// and the packet is dropped at once.

#include <cstdio>
#include <vector>

#include "bgp/routing.hpp"
#include "topo/as_graph.hpp"
#include "topo/relationship.hpp"

using namespace mifo;

namespace {

/// Hand-rolled deflection walk: at every AS the default link is congested
/// and the AS deflects clockwise to the next peer. `enforce_rule` applies
/// the paper's Eq. 3 / Tag-Check gate.
void walk(const topo::AsGraph& g, const std::vector<AsId>& clockwise,
          bool enforce_rule) {
  const AsId dest(0);
  AsId cur = clockwise.front();
  bool tag = true;  // traffic originates inside the first AS
  std::printf("  %u", cur.value());
  for (int hop = 0; hop < 8; ++hop) {
    // Pick the clockwise peer as the (congested-default) deflection target.
    AsId next = AsId::invalid();
    for (std::size_t i = 0; i < clockwise.size(); ++i) {
      if (clockwise[i] == cur) {
        next = clockwise[(i + 1) % clockwise.size()];
        break;
      }
    }
    const topo::Rel rel = *g.rel(cur, next);
    if (enforce_rule && !topo::check_bit(tag, rel)) {
      std::printf("  -> DROP at AS%u (tag=%d, downstream is a %s; Eq.3 "
                  "refuses the transit)\n",
                  cur.value(), tag ? 1 : 0, topo::to_string(rel));
      return;
    }
    std::printf(" -> %u", next.value());
    tag = topo::tag_bit(*g.rel(next, cur));
    cur = next;
  }
  std::printf("  ... LOOP (packet never reaches AS%u)\n", dest.value());
}

}  // namespace

int main() {
  // Fig. 2(a): ASes 1,2,3 mutually peer; AS 0 is everyone's customer.
  topo::AsGraph g(4);
  const AsId as0(0), as1(1), as2(2), as3(3);
  g.add_provider_customer(as1, as0);
  g.add_provider_customer(as2, as0);
  g.add_provider_customer(as3, as0);
  g.add_peering(as1, as2);
  g.add_peering(as2, as3);
  g.add_peering(as3, as1);

  const auto routes = bgp::compute_routes(g, as0);
  std::printf("control plane (towards AS0):\n");
  for (const AsId as : {as1, as2, as3}) {
    const auto rib = bgp::rib_of(g, routes, as);
    std::printf("  AS%u: default via AS%u, %zu RIB routes\n", as.value(),
                routes.best(as).next_hop.value(), rib.size());
  }

  std::printf("\nall defaults congested, deflecting clockwise, no rule:\n");
  walk(g, {as1, as2, as3}, /*enforce_rule=*/false);

  std::printf("\nsame scenario with the valley-free Tag-Check rule:\n");
  walk(g, {as1, as2, as3}, /*enforce_rule=*/true);

  std::printf("\nThe drop severs the data-plane loop exactly as Section "
              "III-A2 describes.\n");
  return 0;
}
