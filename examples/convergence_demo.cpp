// BGP protocol-engine demo: run real UPDATE/WITHDRAW message passing over a
// generated topology to convergence, compare with the analytic fixpoint,
// then withdraw a popular prefix and watch the network drain it.
//
//   ./examples/convergence_demo [num_ases]

#include <cstdio>
#include <cstdlib>

#include "bgp/routing.hpp"
#include "bgpd/session_network.hpp"
#include "topo/analysis.hpp"
#include "topo/generator.hpp"

using namespace mifo;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300;
  topo::GeneratorParams gp;
  gp.num_ases = n;
  gp.seed = 11;
  const auto g = topo::generate_topology(gp);
  std::printf("topology: %s\n",
              topo::attributes_report(topo::attributes(g)).c_str());

  bgpd::SessionNetwork net(g);
  net.originate_all();
  const std::size_t msgs = net.run_to_convergence();
  std::printf("converged after %zu UPDATE messages (%.1f per prefix)\n",
              msgs, static_cast<double>(msgs) / static_cast<double>(n));

  // Cross-check a few prefixes against the analytic three-phase fixpoint.
  std::size_t checked = 0;
  std::size_t mismatches = 0;
  for (std::uint32_t d = 0; d < g.num_ases(); d += 37) {
    const auto analytic = bgp::compute_routes(g, AsId(d));
    for (std::uint32_t s = 0; s < g.num_ases(); ++s) {
      if (s == d) continue;
      ++checked;
      const auto a = analytic.best(AsId(s));
      const auto b = net.speaker(AsId(s)).best(AsId(d));
      if (a.valid() != b.valid() ||
          (a.valid() && (a.cls != b.cls || a.path_len != b.path_len ||
                         a.next_hop != b.next_hop))) {
        ++mismatches;
      }
    }
  }
  std::printf("protocol vs analytic fixpoint: %zu routes checked, "
              "%zu mismatches\n", checked, mismatches);

  // Dynamic event: withdraw the best-connected AS's prefix.
  const auto ranked_degree = topo::degrees(g);
  AsId victim(0);
  for (std::uint32_t i = 1; i < g.num_ases(); ++i) {
    if (ranked_degree[i] > ranked_degree[victim.value()]) victim = AsId(i);
  }
  net.withdraw(victim);
  const std::size_t wd_msgs = net.run_to_convergence();
  std::size_t holders = 0;
  for (std::uint32_t s = 0; s < g.num_ases(); ++s) {
    if (s != victim.value() && net.speaker(AsId(s)).best(victim).valid()) {
      ++holders;
    }
  }
  std::printf("withdrew AS%u (degree %zu): %zu messages, %zu stale routes "
              "remain (must be 0)\n",
              victim.value(), ranked_degree[victim.value()], wd_msgs,
              holders);
  return holders == 0 ? 0 : 1;
}
