// RIB explorer: generate (or load) a topology, save it to the CAIDA-style
// text format, and inspect BGP routing state and MIFO's alternative paths
// for chosen AS pairs — the "zero overhead" path diversity of Section II-B.
//
//   ./examples/rib_explorer                       # generated topology
//   ./examples/rib_explorer topo.txt              # load from file
//   ./examples/rib_explorer topo.txt 17 3         # paths from AS17 to AS3

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bgp/path_count.hpp"
#include "bgp/routing.hpp"
#include "topo/analysis.hpp"
#include "topo/generator.hpp"
#include "topo/serialization.hpp"

using namespace mifo;

int main(int argc, char** argv) {
  topo::AsGraph g;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    g = topo::parse(in);
    std::printf("loaded %s: %s\n", argv[1],
                topo::attributes_report(topo::attributes(g)).c_str());
  } else {
    topo::GeneratorParams gp;
    gp.num_ases = 200;
    gp.seed = 7;
    g = topo::generate_topology(gp);
    std::ofstream out("mifo_topology.txt");
    topo::serialize(g, out);
    std::printf("generated %s and saved to mifo_topology.txt\n",
                topo::attributes_report(topo::attributes(g)).c_str());
  }

  const AsId src(argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                          : static_cast<std::uint32_t>(g.num_ases() - 1));
  const AsId dst(argc > 3 ? static_cast<std::uint32_t>(std::atoi(argv[3]))
                          : 0);
  if (src.value() >= g.num_ases() || dst.value() >= g.num_ases()) {
    std::fprintf(stderr, "AS ids out of range (0..%zu)\n", g.num_ases() - 1);
    return 1;
  }

  const auto routes = bgp::compute_routes(g, dst);
  std::printf("\nBGP state towards AS%u:\n", dst.value());
  const auto path = bgp::as_path(g, routes, src);
  if (path.empty()) {
    std::printf("  AS%u cannot reach AS%u\n", src.value(), dst.value());
    return 0;
  }
  std::printf("  default path:");
  for (const AsId as : path) std::printf(" %u", as.value());
  std::printf("\n  RIB of AS%u (%s):\n", src.value(),
              "what each neighbor exports");
  for (const auto& r : bgp::rib_of(g, routes, src)) {
    std::printf("    via AS%-6u class=%-8s as-path-len=%u\n",
                r.next_hop.value(), bgp::to_string(r.cls), r.path_len);
  }

  const auto order = topo::pc_topological_order(g);
  const std::vector<bool> all(g.num_ases(), true);
  const auto counts =
      bgp::count_mifo_paths(g, bgp::RouteStore(g, routes), order, all);
  std::printf("  MIFO-realizable forwarding paths (full deployment): %.0f\n",
              counts.paths_from(src));
  return 0;
}
