// Quickstart: generate a small Internet-like topology, inspect BGP routes
// and MIFO's alternative paths, then compare BGP vs MIFO end-to-end
// throughput on the same traffic.
//
//   ./examples/quickstart [num_ases] [num_flows]

#include <cstdio>
#include <cstdlib>

#include "bgp/routing.hpp"
#include "sim/fluid_sim.hpp"
#include "sim/metrics.hpp"
#include "topo/analysis.hpp"
#include "topo/generator.hpp"
#include "traffic/traffic.hpp"

using namespace mifo;

int main(int argc, char** argv) {
  const std::size_t num_ases =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 600;
  const std::size_t num_flows =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5000;

  // 1. Topology.
  topo::GeneratorParams gp;
  gp.num_ases = num_ases;
  gp.seed = 42;
  const topo::AsGraph g = topo::generate_topology(gp);
  std::printf("topology: %s\n",
              topo::attributes_report(topo::attributes(g)).c_str());

  // 2. BGP routes towards one destination, and the RIB alternatives MIFO
  //    taps into with zero control-plane overhead.
  const AsId dest(0);
  const auto routes = bgp::compute_routes(g, dest);
  const AsId src(static_cast<std::uint32_t>(num_ases - 1));
  const auto path = bgp::as_path(g, routes, src);
  std::printf("default path AS%u -> AS%u:", src.value(), dest.value());
  for (const AsId as : path) std::printf(" %u", as.value());
  std::printf("\n");
  const auto rib = bgp::rib_of(g, routes, src);
  std::printf("RIB of AS%u towards AS%u: %zu routes (", src.value(),
              dest.value(), rib.size());
  for (const auto& r : rib) {
    std::printf(" via-AS%u/%s/len%u", r.next_hop.value(),
                bgp::to_string(r.cls), r.path_len);
  }
  std::printf(" )\n");

  // 3. Same traffic under BGP and under 50%-deployed MIFO.
  traffic::TrafficParams tp;
  tp.num_flows = num_flows;
  tp.dest_pool = 64;
  tp.seed = 7;
  const auto flows = traffic::uniform_traffic(g, tp);
  const auto deployed = traffic::random_deployment(g.num_ases(), 0.5, 99);

  for (const auto mode : {sim::RoutingMode::Bgp, sim::RoutingMode::Mifo}) {
    sim::SimConfig sc;
    sc.mode = mode;
    sim::FluidSim fs(g, sc);
    if (mode == sim::RoutingMode::Mifo) fs.set_deployment(deployed);
    const auto records = fs.run(flows);
    const auto s = sim::summarize(records);
    std::printf(
        "%-4s: completed=%zu mean=%.0f Mbps median=%.0f Mbps "
        ">=500Mbps: %.1f%%  offloaded: %.1f%%\n",
        sim::to_string(mode), s.completed, s.mean_throughput,
        s.median_throughput, 100.0 * s.frac_at_500mbps, 100.0 * s.offload);
  }
  return 0;
}
