#include "traffic/traffic.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "topo/generator.hpp"

namespace mifo::traffic {
namespace {

topo::AsGraph topo_graph() {
  topo::GeneratorParams p;
  p.num_ases = 300;
  p.seed = 4;
  return topo::generate_topology(p);
}

TEST(UniformTraffic, BasicShape) {
  const auto g = topo_graph();
  TrafficParams p;
  p.num_flows = 5000;
  const auto flows = uniform_traffic(g, p);
  ASSERT_EQ(flows.size(), 5000u);
  for (const auto& f : flows) {
    EXPECT_NE(f.src, f.dst);
    EXPECT_LT(f.src.value(), g.num_ases());
    EXPECT_LT(f.dst.value(), g.num_ases());
    EXPECT_EQ(f.size, 10 * kMegaByte);
  }
}

TEST(UniformTraffic, ArrivalsAreSortedPoisson) {
  const auto g = topo_graph();
  TrafficParams p;
  p.num_flows = 20000;
  p.arrival_rate = 100.0;
  const auto flows = uniform_traffic(g, p);
  double prev = 0.0;
  for (const auto& f : flows) {
    EXPECT_GE(f.arrival, prev);
    prev = f.arrival;
  }
  // 20000 flows at 100/s should span ~200 s.
  EXPECT_NEAR(flows.back().arrival, 200.0, 20.0);
}

TEST(UniformTraffic, DestPoolBoundsDistinctDestinations) {
  const auto g = topo_graph();
  TrafficParams p;
  p.num_flows = 5000;
  p.dest_pool = 16;
  const auto flows = uniform_traffic(g, p);
  std::set<std::uint32_t> dests;
  for (const auto& f : flows) dests.insert(f.dst.value());
  EXPECT_LE(dests.size(), 16u);
}

TEST(UniformTraffic, Deterministic) {
  const auto g = topo_graph();
  TrafficParams p;
  p.num_flows = 100;
  const auto a = uniform_traffic(g, p);
  const auto b = uniform_traffic(g, p);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
  }
}

TEST(RankByConnectivity, SortedByProvidersPlusPeers) {
  const auto g = topo_graph();
  const auto ranked = rank_by_connectivity(g);
  ASSERT_EQ(ranked.size(), g.num_ases());
  auto score = [&g](AsId as) {
    return g.provider_count(as) + g.peer_count(as);
  };
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(score(ranked[i - 1]), score(ranked[i]));
  }
}

TEST(PowerLawTraffic, TopProviderDominates) {
  const auto g = topo_graph();
  PowerLawParams p;
  p.num_flows = 30000;
  p.alpha = 1.0;
  const auto flows = power_law_traffic(g, p);
  const auto ranked = rank_by_connectivity(g);
  std::size_t from_top = 0;
  for (const auto& f : flows) {
    if (f.src == ranked[0]) ++from_top;
  }
  // Zipf(1.0): rank-1 mass dominates any single lower rank.
  EXPECT_GT(from_top, flows.size() / 50);
  std::size_t from_rank100 = 0;
  for (const auto& f : flows) {
    if (f.src == ranked[99]) ++from_rank100;
  }
  EXPECT_GT(from_top, from_rank100);
}

TEST(PowerLawTraffic, HigherAlphaMoreSkewed) {
  const auto g = topo_graph();
  auto top_share = [&g](double alpha) {
    PowerLawParams p;
    p.num_flows = 20000;
    p.alpha = alpha;
    p.seed = 5;
    const auto flows = power_law_traffic(g, p);
    const auto ranked = rank_by_connectivity(g);
    std::set<std::uint32_t> top5(
        {ranked[0].value(), ranked[1].value(), ranked[2].value(),
         ranked[3].value(), ranked[4].value()});
    std::size_t n = 0;
    for (const auto& f : flows) n += top5.count(f.src.value());
    return static_cast<double>(n) / flows.size();
  };
  EXPECT_GT(top_share(1.2), top_share(0.8));
}

TEST(PowerLawTraffic, ConsumersAreStubs) {
  const auto g = topo_graph();
  PowerLawParams p;
  p.num_flows = 2000;
  const auto flows = power_law_traffic(g, p);
  for (const auto& f : flows) {
    EXPECT_EQ(g.info(f.dst).tier, 3) << "dst " << f.dst.value();
  }
}

TEST(UniformTraffic, ZeroDestPoolDrawsFromAllAses) {
  // Regression: dest_pool = 0 means "unbounded", not "empty" — destinations
  // must be drawn from the whole topology (with the route-cache memory
  // implication documented in TrafficParams).
  const auto g = topo_graph();
  TrafficParams p;
  p.num_flows = 20000;
  p.dest_pool = 0;
  p.seed = 3;
  const auto flows = uniform_traffic(g, p);
  ASSERT_EQ(flows.size(), p.num_flows);
  std::unordered_set<std::uint32_t> dsts;
  for (const auto& f : flows) {
    ASSERT_NE(f.src, f.dst);
    dsts.insert(f.dst.value());
  }
  // 20k uniform draws over the topology's ASes reach (nearly) all of them;
  // a bounded pool would cap the count at dest_pool.
  EXPECT_GT(dsts.size(), static_cast<std::size_t>(
                             0.95 * static_cast<double>(g.num_ases())));
}

TEST(RandomDeployment, RatioRespected) {
  const auto mask = random_deployment(10000, 0.3, 7);
  std::size_t on = 0;
  for (const bool b : mask) on += b ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(on) / mask.size(), 0.3, 0.03);
}

TEST(RandomDeployment, FullRatioIsAllTrue) {
  const auto mask = random_deployment(100, 1.0, 7);
  for (const bool b : mask) EXPECT_TRUE(b);
}

TEST(RandomDeployment, ZeroRatioIsAllFalse) {
  const auto mask = random_deployment(100, 0.0, 7);
  for (const bool b : mask) EXPECT_FALSE(b);
}

TEST(RandomDeployment, DeterministicPerSeed) {
  EXPECT_EQ(random_deployment(500, 0.5, 9), random_deployment(500, 0.5, 9));
  EXPECT_NE(random_deployment(500, 0.5, 9), random_deployment(500, 0.5, 10));
}

}  // namespace
}  // namespace mifo::traffic
