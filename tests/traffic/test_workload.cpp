// Seeded statistical tests for the open-loop workload engine: Poisson
// interarrival moments, bounded-Pareto tail behaviour, gravity-marginal
// consistency, diurnal/flash-crowd modulation, and bit-reproducibility of
// the generated flow stream across thread settings.
#include "traffic/workload.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <numbers>
#include <vector>

#include "topo/generator.hpp"

namespace mifo::traffic {
namespace {

topo::AsGraph test_graph() {
  topo::GeneratorParams gp;
  gp.num_ases = 400;
  gp.num_tier1 = 6;
  gp.seed = 11;
  return topo::generate_topology(gp);
}

std::vector<FlowSpec> drain(WorkloadEngine& eng) {
  std::vector<FlowSpec> out;
  FlowSpec fs;
  while (eng.next(fs)) out.push_back(fs);
  return out;
}

TEST(WorkloadEngine, PoissonInterarrivalMeanAndVariance) {
  const auto g = test_graph();
  WorkloadParams p;
  p.seed = 3;
  p.arrival_rate = 200.0;
  p.duration = 60.0;  // ~12k arrivals
  WorkloadEngine eng(g, p);
  const auto flows = drain(eng);
  ASSERT_GT(flows.size(), 10000u);

  double sum = 0.0;
  double sum_sq = 0.0;
  SimTime prev = 0.0;
  for (const auto& f : flows) {
    const double d = f.arrival - prev;
    ASSERT_GT(d, 0.0);  // strictly increasing arrivals
    sum += d;
    sum_sq += d * d;
    prev = f.arrival;
  }
  const double n = static_cast<double>(flows.size());
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  // Exponential(lambda): mean 1/lambda, CV^2 = var/mean^2 = 1.
  EXPECT_NEAR(mean, 1.0 / p.arrival_rate, 0.05 / p.arrival_rate);
  EXPECT_NEAR(var / (mean * mean), 1.0, 0.1);
}

TEST(WorkloadEngine, BoundedParetoTailIndexAndQuantiles) {
  const auto g = test_graph();
  WorkloadParams p;
  p.seed = 5;
  p.arrival_rate = 1000.0;
  p.duration = 50.0;  // ~50k sizes
  p.pareto_alpha = 1.3;
  p.size_min = 1 * kMegaByte;
  p.size_max = 10000 * kMegaByte;
  WorkloadEngine eng(g, p);
  const auto flows = drain(eng);
  ASSERT_GT(flows.size(), 40000u);

  std::vector<double> sizes;
  sizes.reserve(flows.size());
  for (const auto& f : flows) {
    ASSERT_GE(f.size, p.size_min);
    ASSERT_LE(f.size, p.size_max);
    sizes.push_back(static_cast<double>(f.size));
  }
  std::sort(sizes.begin(), sizes.end());
  const double n = static_cast<double>(sizes.size());

  // Quantiles must match the analytic bounded-Pareto inverse CDF.
  const double lo = static_cast<double>(p.size_min);
  const double hi = static_cast<double>(p.size_max);
  const double a = p.pareto_alpha;
  for (const double q : {0.25, 0.5, 0.9, 0.99}) {
    const double want =
        lo / std::pow(1.0 - q * (1.0 - std::pow(lo / hi, a)), 1.0 / a);
    const double got = sizes[static_cast<std::size_t>(q * (n - 1))];
    EXPECT_NEAR(got / want, 1.0, 0.05) << "quantile " << q;
  }

  // Tail index from the empirical survival function between two points far
  // from the truncation bound: S(x) ~ x^-alpha, so
  // alpha ~= log(S(x1)/S(x2)) / log(x2/x1).
  const auto survival = [&](double x) {
    const auto it = std::upper_bound(sizes.begin(), sizes.end(), x);
    return static_cast<double>(sizes.end() - it) / n;
  };
  const double x1 = 4.0 * lo;
  const double x2 = 64.0 * lo;
  const double alpha_hat =
      std::log(survival(x1) / survival(x2)) / std::log(x2 / x1);
  EXPECT_NEAR(alpha_hat, a, 0.15);
}

TEST(WorkloadEngine, GravityMarginalsMatchZipfWeights) {
  const auto g = test_graph();
  WorkloadParams p;
  p.seed = 9;
  p.arrival_rate = 1000.0;
  p.duration = 60.0;
  p.max_endpoints = 32;
  p.gravity_skew = 0.9;
  WorkloadEngine eng(g, p);
  const auto& eps = eng.endpoints();
  ASSERT_EQ(eps.size(), 32u);
  // Endpoints must be stub ASes in connectivity-rank order.
  for (const AsId as : eps) EXPECT_EQ(g.info(as).tier, 3);

  std::map<std::uint32_t, std::size_t> src_count;
  std::map<std::uint32_t, std::size_t> dst_count;
  const auto flows = drain(eng);
  ASSERT_GT(flows.size(), 40000u);
  for (const auto& f : flows) {
    EXPECT_NE(f.src, f.dst);
    ++src_count[f.src.value()];
    ++dst_count[f.dst.value()];
  }
  const double n = static_cast<double>(flows.size());
  const auto w = eng.marginals();
  double wsum = 0.0;
  for (const double x : w) wsum += x;
  EXPECT_NEAR(wsum, 1.0, 1e-9);

  // Row (source) marginals follow the normalized gravity weights directly;
  // column (destination) marginals follow them conditioned on dst != src:
  // P(dst=i) = w_i * (S - w_i/(1-w_i)) with S = sum_s w_s/(1-w_s). Check
  // the heavy head where counts are statistically solid.
  double cond_sum = 0.0;
  for (const double x : w) cond_sum += x / (1.0 - x);
  for (std::size_t i = 0; i < 8; ++i) {
    const double ps = static_cast<double>(src_count[eps[i].value()]) / n;
    const double pd = static_cast<double>(dst_count[eps[i].value()]) / n;
    EXPECT_NEAR(ps / w[i], 1.0, 0.1) << "src rank " << i;
    const double want_pd = w[i] * (cond_sum - w[i] / (1.0 - w[i]));
    EXPECT_NEAR(pd / want_pd, 1.0, 0.1) << "dst rank " << i;
  }
}

TEST(WorkloadEngine, DiurnalModulationShapesArrivals) {
  const auto g = test_graph();
  WorkloadParams p;
  p.seed = 13;
  p.arrival_rate = 400.0;
  p.duration = 120.0;
  p.diurnal_amplitude = 0.6;
  p.diurnal_period = 40.0;  // peak at t=10 (mod 40), trough at t=30
  WorkloadEngine eng(g, p);

  EXPECT_NEAR(eng.rate_at(10.0), 400.0 * 1.6, 1e-6);
  EXPECT_NEAR(eng.rate_at(30.0), 400.0 * 0.4, 1e-6);
  EXPECT_NEAR(eng.offered_load_mbps(10.0),
              400.0 * 1.6 * eng.mean_flow_megabits(), 1e-6);

  const auto flows = drain(eng);
  std::size_t peak = 0;
  std::size_t trough = 0;
  for (const auto& f : flows) {
    const double phase = std::fmod(f.arrival, p.diurnal_period);
    if (phase >= 5.0 && phase < 15.0) ++peak;
    if (phase >= 25.0 && phase < 35.0) ++trough;
  }
  // The windows average the sinusoid over a half-cycle quarter: the mean of
  // sin over [pi/4, 3pi/4] is (2/pi)*sqrt(2) ~= 0.9003, so the expected
  // arrival-count ratio is (1 + 0.6 m)/(1 - 0.6 m) ~= 3.35, not the
  // instantaneous peak/trough ratio of 4.
  const double m = 0.6 * 2.0 * std::numbers::sqrt2 / std::numbers::pi;
  const double ratio = static_cast<double>(peak) / static_cast<double>(trough);
  EXPECT_NEAR(ratio, (1.0 + m) / (1.0 - m), 0.35);
}

TEST(WorkloadEngine, FlashCrowdSurgesRateAndConcentratesHotspot) {
  const auto g = test_graph();
  WorkloadParams p;
  p.seed = 17;
  p.arrival_rate = 300.0;
  p.duration = 30.0;
  FlashCrowd fc;
  fc.start = 10.0;
  fc.duration = 10.0;
  fc.rate_multiplier = 3.0;
  fc.hotspot_share = 0.5;
  fc.hotspot_rank = 0;
  p.flash_crowds.push_back(fc);
  WorkloadEngine eng(g, p);
  const AsId hot = eng.hotspot(fc);

  EXPECT_NEAR(eng.rate_at(5.0), 300.0, 1e-9);
  EXPECT_NEAR(eng.rate_at(15.0), 900.0, 1e-9);

  const auto flows = drain(eng);
  std::size_t before = 0;
  std::size_t during = 0;
  std::size_t hot_during = 0;
  for (const auto& f : flows) {
    if (f.arrival < 10.0) ++before;
    if (f.arrival >= 10.0 && f.arrival < 20.0) {
      ++during;
      if (f.dst == hot) ++hot_during;
    }
  }
  // 3x arrival surge…
  const double surge =
      static_cast<double>(during) / static_cast<double>(before);
  EXPECT_NEAR(surge, 3.0, 0.45);
  // …with about half the arrivals (plus the hotspot's own gravity share)
  // aimed at the hotspot destination.
  const double hot_frac =
      static_cast<double>(hot_during) / static_cast<double>(during);
  EXPECT_GT(hot_frac, 0.45);
  EXPECT_LT(hot_frac, 0.75);
}

TEST(WorkloadEngine, SameSeedStreamsAreByteIdentical) {
  const auto g = test_graph();
  WorkloadParams p;
  p.seed = 21;
  p.arrival_rate = 500.0;
  p.duration = 10.0;
  p.diurnal_amplitude = 0.3;
  FlashCrowd fc;
  fc.start = 2.0;
  fc.duration = 3.0;
  fc.rate_multiplier = 2.0;
  fc.hotspot_share = 0.3;
  p.flash_crowds.push_back(fc);

  // The engine is a single-Rng pull generator: the stream must be
  // bit-identical regardless of the MIFO_THREADS consumer setting (threads
  // only parallelize the simulator's route-cache warmup).
  ::setenv("MIFO_THREADS", "1", 1);
  WorkloadEngine a(g, p);
  const auto fa = drain(a);
  ::setenv("MIFO_THREADS", "8", 1);
  WorkloadEngine b(g, p);
  const auto fb = drain(b);
  ::unsetenv("MIFO_THREADS");

  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].src, fb[i].src);
    EXPECT_EQ(fa[i].dst, fb[i].dst);
    EXPECT_EQ(fa[i].size, fb[i].size);
    EXPECT_EQ(fa[i].arrival, fb[i].arrival);  // bitwise double equality
  }
  EXPECT_EQ(a.generated(), b.generated());
}

TEST(WorkloadEngine, ExhaustedStreamStaysExhausted) {
  const auto g = test_graph();
  WorkloadParams p;
  p.seed = 1;
  p.arrival_rate = 50.0;
  p.duration = 1.0;
  WorkloadEngine eng(g, p);
  FlowSpec fs;
  while (eng.next(fs)) {
    EXPECT_LE(fs.arrival, p.duration);
  }
  EXPECT_TRUE(eng.exhausted());
  EXPECT_FALSE(eng.next(fs));
  EXPECT_FALSE(eng.next(fs));
}

}  // namespace
}  // namespace mifo::traffic
