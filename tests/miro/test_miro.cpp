#include "miro/miro.hpp"

#include <gtest/gtest.h>

#include "bgp/path_count.hpp"
#include "topo/analysis.hpp"
#include "topo/generator.hpp"

namespace mifo::miro {
namespace {

using topo::AsGraph;

// Dest 4 reachable from 0 via three parallel providers 1, 2, 3.
AsGraph diamond() {
  AsGraph g(5);
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(2), AsId(0));
  g.add_provider_customer(AsId(3), AsId(0));
  g.add_provider_customer(AsId(1), AsId(4));
  g.add_provider_customer(AsId(2), AsId(4));
  g.add_provider_customer(AsId(3), AsId(4));
  return g;
}

TEST(Miro, AlternativesSameClassOnly) {
  const AsGraph g = diamond();
  const bgp::RouteStore routes(g, AsId(4));
  const std::vector<bool> all(5, true);
  // Default from 0 is via AS1 (lowest id); alternatives via 2 and 3, both
  // provider-class like the default.
  EXPECT_EQ(routes.best(AsId(0)).next_hop, AsId(1));
  const auto alts = alternatives(g, routes, AsId(0), all);
  ASSERT_EQ(alts.size(), 2u);
  for (const auto& a : alts) {
    EXPECT_EQ(a.cls, bgp::RouteClass::Provider);
    EXPECT_NE(a.next_hop, AsId(1));
  }
}

TEST(Miro, StrictPolicyCapsAlternatives) {
  const AsGraph g = diamond();
  const bgp::RouteStore routes(g, AsId(4));
  const std::vector<bool> all(5, true);
  MiroConfig cfg;
  cfg.max_alternatives = 1;
  EXPECT_EQ(alternatives(g, routes, AsId(0), all, cfg).size(), 1u);
  EXPECT_EQ(path_count(g, routes, AsId(0), all, cfg), 2u);
}

TEST(Miro, RequiresBilateralDeployment) {
  const AsGraph g = diamond();
  const bgp::RouteStore routes(g, AsId(4));
  // Source not deployed: no alternatives at all.
  std::vector<bool> none(5, false);
  EXPECT_TRUE(alternatives(g, routes, AsId(0), none).empty());
  // Source deployed but neighbors 2,3 not: still nothing.
  std::vector<bool> only_src(5, false);
  only_src[0] = true;
  EXPECT_TRUE(alternatives(g, routes, AsId(0), only_src).empty());
  // Deploy AS2 as well: exactly the tunnel via 2 becomes available.
  only_src[2] = true;
  const auto alts = alternatives(g, routes, AsId(0), only_src);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(alts[0].next_hop, AsId(2));
}

TEST(Miro, DifferentClassRoutesExcluded) {
  // Default is a customer route; a peer-class alternative must be refused
  // by the strict policy.
  AsGraph g(4);
  g.add_provider_customer(AsId(0), AsId(1));  // 0 provides 1
  g.add_provider_customer(AsId(1), AsId(3));  // dest 3 is 1's customer...
  g.add_peering(AsId(0), AsId(2));
  g.add_provider_customer(AsId(2), AsId(3));
  const bgp::RouteStore routes(g, AsId(3));
  ASSERT_EQ(routes.best(AsId(0)).cls, bgp::RouteClass::Customer);
  const std::vector<bool> all(4, true);
  EXPECT_TRUE(alternatives(g, routes, AsId(0), all).empty());
  EXPECT_EQ(path_count(g, routes, AsId(0), all), 1u);
}

TEST(Miro, PathCountZeroWhenUnreachable) {
  AsGraph g(3);
  g.add_peering(AsId(0), AsId(1));
  const bgp::RouteStore routes(g, AsId(2));
  const std::vector<bool> all(3, true);
  EXPECT_EQ(path_count(g, routes, AsId(0), all), 0u);
}

TEST(Miro, PathCountOneAtDest) {
  const AsGraph g = diamond();
  const bgp::RouteStore routes(g, AsId(4));
  const std::vector<bool> all(5, true);
  EXPECT_EQ(path_count(g, routes, AsId(4), all), 1u);
}

TEST(Miro, AltPathPrependsSource) {
  const AsGraph g = diamond();
  const bgp::RouteStore routes(g, AsId(4));
  const auto path = alt_path(g, routes, AsId(0), AsId(2));
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], AsId(0));
  EXPECT_EQ(path[1], AsId(2));
  EXPECT_EQ(path[2], AsId(4));
}

TEST(Miro, FarFewerPathsThanMifoOnRealTopology) {
  // The Fig. 7 headline: MIFO's path diversity dwarfs MIRO's.
  topo::GeneratorParams p;
  p.num_ases = 300;
  p.seed = 9;
  const auto g = topo::generate_topology(p);
  const std::vector<bool> all(g.num_ases(), true);
  const auto order = topo::pc_topological_order(g);
  // Use a multihomed stub destination (diversity towards a tier-1 is
  // structurally tiny for both schemes — everything must funnel into it).
  const AsId dest(static_cast<std::uint32_t>(g.num_ases() - 1));
  const bgp::RouteStore routes(g, dest);
  const auto mifo_counts = bgp::count_mifo_paths(g, routes, order, all);
  double mifo_total = 0.0;
  double miro_total = 0.0;
  for (std::uint32_t s = 0; s + 1 < g.num_ases(); ++s) {
    mifo_total += mifo_counts.paths_from(AsId(s));
    miro_total += static_cast<double>(path_count(g, routes, AsId(s), all));
  }
  EXPECT_GT(mifo_total, 3.0 * miro_total);
}

}  // namespace
}  // namespace mifo::miro
