// IncrementalMaxMin vs from-scratch differential tests (the PR-1/PR-5/PR-8
// keep-the-old-code-as-oracle pattern, mirroring
// tests/bgp/test_route_store_diff.cpp): seeded random arrival / departure /
// path-change / capacity-change sequences must leave the incrementally
// maintained rates element-identical to the canonical from-scratch solve
// after every single event, and within tolerance of the PR-1 reference
// solver on the full monolithic instance.
#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/maxmin.hpp"

namespace mifo::sim {
namespace {

using Slot = IncrementalMaxMin::Slot;

std::vector<std::uint32_t> random_path(Rng& rng, std::size_t num_links,
                                       std::size_t max_len) {
  const std::size_t len = 1 + rng.bounded(max_len);
  std::vector<std::uint32_t> path;
  path.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    path.push_back(static_cast<std::uint32_t>(rng.bounded(num_links)));
  }
  return path;
}

/// Full-instance rates from the PR-1 reference solver, flows ordered by
/// admission (the canonical order), unfiltered paths.
std::map<Slot, double> reference_rates(
    const IncrementalMaxMin& inc,
    const std::map<Slot, std::vector<std::uint32_t>>& live_paths,
    std::span<const double> capacity) {
  std::vector<Slot> order;
  std::vector<std::span<const std::uint32_t>> views;
  for (const auto& [slot, path] : live_paths) {
    order.push_back(slot);
    views.emplace_back(path);
  }
  MaxMinInput in;
  in.flow_links = views;
  in.link_capacity = capacity;
  in.flow_cap = inc.flow_cap();
  in.num_links = capacity.size();
  const std::vector<double> rates = max_min_rates_reference(in);
  std::map<Slot, double> out;
  for (std::size_t i = 0; i < order.size(); ++i) out[order[i]] = rates[i];
  return out;
}

/// Seeded random op sequence; after EVERY event the incremental state must
/// be bitwise identical to the from-scratch canonical oracle, and the
/// RateChange stream must reproduce the stored rates exactly.
void run_random_sequence(std::uint64_t seed, double flow_cap,
                         std::size_t events) {
  constexpr std::size_t kLinks = 48;
  Rng rng(seed);
  std::vector<double> caps(kLinks);
  for (double& c : caps) c = rng.uniform(5.0, 25.0);
  const std::vector<double> caps0 = caps;

  IncrementalMaxMin inc(caps, flow_cap);
  // Shadow state driven purely by the public event API.
  std::map<Slot, std::vector<std::uint32_t>> live;  // slot -> path (dedup'd)
  std::map<Slot, double> shadow;                    // slot -> rate via changes()

  auto apply_changes = [&] {
    for (const auto& ch : inc.changes()) shadow[ch.slot] = ch.new_rate;
  };
  auto dedup = [](std::vector<std::uint32_t> p) {
    std::vector<std::uint32_t> out;
    for (const std::uint32_t l : p) {
      if (std::find(out.begin(), out.end(), l) == out.end()) out.push_back(l);
    }
    return out;
  };

  for (std::size_t e = 0; e < events; ++e) {
    const double roll = rng.uniform();
    if (live.empty() || roll < 0.5) {
      const auto path = random_path(rng, kLinks, 5);
      const Slot s = inc.add_flow(path);
      live[s] = dedup(path);
      shadow[s] = inc.rate(s);
      apply_changes();
    } else if (roll < 0.8) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.bounded(live.size())));
      inc.remove_flow(it->first);
      shadow.erase(it->first);
      live.erase(it);
      apply_changes();
    } else if (roll < 0.93) {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.bounded(live.size())));
      const auto path = random_path(rng, kLinks, 5);
      inc.update_path(it->first, path);
      it->second = dedup(path);
      apply_changes();
    } else {
      const auto l = static_cast<std::uint32_t>(rng.bounded(kLinks));
      const double c = caps0[l] * rng.uniform(0.2, 2.0);
      inc.set_capacity(l, c);
      caps[l] = c;
      apply_changes();
    }

    // The headline assertion: incremental == from-scratch, bitwise, after
    // every single event.
    ASSERT_TRUE(inc.check_differential()) << "seed=" << seed << " event=" << e;
    ASSERT_EQ(inc.active_flows(), live.size());

    // changes() must carry every value move: replaying it reproduces the
    // stored rates exactly.
    for (const auto& [slot, rate] : shadow) {
      ASSERT_EQ(rate, inc.rate(slot)) << "seed=" << seed << " event=" << e;
    }

    // Every ~20 events, cross-check the canonical decomposition against the
    // monolithic PR-1 reference solver (different FP evaluation order, so
    // tolerance- rather than bit-compared).
    if (e % 20 == 19) {
      const auto ref = reference_rates(inc, live, caps);
      for (const auto& [slot, want] : ref) {
        const double got = inc.rate(slot);
        ASSERT_NEAR(got, want, 1e-5 + 1e-5 * want)
            << "seed=" << seed << " event=" << e << " slot=" << slot;
      }
    }
  }
  EXPECT_EQ(inc.stats().differential_mismatches, 0u);
  EXPECT_EQ(inc.stats().differential_checks, events);
}

class IncrementalSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalSeeds, CappedRandomSequenceDifferential) {
  run_random_sequence(GetParam(), 3.0, 300);
}

TEST_P(IncrementalSeeds, UncappedRandomSequenceDifferential) {
  run_random_sequence(GetParam() + 100, 0.0, 200);
}

TEST_P(IncrementalSeeds, TightCapRandomSequenceDifferential) {
  // Cap near the smallest capacities: most links constrained, components
  // large — stresses split/merge bookkeeping rather than the pruning.
  run_random_sequence(GetParam() + 200, 8.0, 200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(IncrementalMaxMinTest, SingleCappedFlow) {
  IncrementalMaxMin inc({10.0, 10.0}, 4.0);
  const Slot s = inc.add_flow(std::vector<std::uint32_t>{0, 1});
  EXPECT_DOUBLE_EQ(inc.rate(s), 4.0);
  ASSERT_EQ(inc.changes().size(), 1u);
  EXPECT_EQ(inc.changes()[0].slot, s);
  EXPECT_DOUBLE_EQ(inc.changes()[0].new_rate, 4.0);
  EXPECT_TRUE(inc.check_differential());
  inc.remove_flow(s);
  EXPECT_EQ(inc.active_flows(), 0u);
  EXPECT_TRUE(inc.changes().empty());  // nobody left to move
  EXPECT_TRUE(inc.check_differential());
}

TEST(IncrementalMaxMinTest, DepartureResharesBottleneck) {
  IncrementalMaxMin inc({10.0}, 0.0);
  const Slot a = inc.add_flow(std::vector<std::uint32_t>{0});
  const Slot b = inc.add_flow(std::vector<std::uint32_t>{0});
  EXPECT_DOUBLE_EQ(inc.rate(a), 5.0);
  EXPECT_DOUBLE_EQ(inc.rate(b), 5.0);
  inc.remove_flow(a);
  ASSERT_EQ(inc.changes().size(), 1u);
  EXPECT_EQ(inc.changes()[0].slot, b);
  EXPECT_DOUBLE_EQ(inc.changes()[0].new_rate, 10.0);
  EXPECT_TRUE(inc.check_differential());
}

TEST(IncrementalMaxMinTest, UnconstrainedLinksDoNotCoupleFlows) {
  // Two capped flows share a fat link: neither can congest it, so each is
  // its own component and the arrival of the second never re-solves the
  // first.
  IncrementalMaxMin inc({1000.0}, 5.0);
  const Slot a = inc.add_flow(std::vector<std::uint32_t>{0});
  (void)a;
  const auto solved_before = inc.stats().flows_resolved;
  const Slot b = inc.add_flow(std::vector<std::uint32_t>{0});
  EXPECT_DOUBLE_EQ(inc.rate(b), 5.0);
  EXPECT_EQ(inc.stats().flows_resolved, solved_before + 1);  // b alone
  EXPECT_EQ(inc.stats().peak_component, 1u);
  EXPECT_TRUE(inc.check_differential());
}

TEST(IncrementalMaxMinTest, ArrivalConstrainsSharedLinkAndMergesComponents) {
  // Third capped flow pushes the shared link over n*cap > capacity: all
  // three now couple and share 12 Mbps max–min fair.
  IncrementalMaxMin inc({12.0}, 5.0);
  const Slot a = inc.add_flow(std::vector<std::uint32_t>{0});
  const Slot b = inc.add_flow(std::vector<std::uint32_t>{0});
  EXPECT_DOUBLE_EQ(inc.rate(a), 5.0);
  EXPECT_DOUBLE_EQ(inc.rate(b), 5.0);
  const Slot c = inc.add_flow(std::vector<std::uint32_t>{0});
  EXPECT_DOUBLE_EQ(inc.rate(a), 4.0);
  EXPECT_DOUBLE_EQ(inc.rate(b), 4.0);
  EXPECT_DOUBLE_EQ(inc.rate(c), 4.0);
  EXPECT_EQ(inc.stats().peak_component, 3u);
  EXPECT_TRUE(inc.check_differential());
}

TEST(IncrementalMaxMinTest, UpdatePathNoopReportsNothing) {
  IncrementalMaxMin inc({10.0, 10.0}, 4.0);
  const Slot s = inc.add_flow(std::vector<std::uint32_t>{0, 1});
  const auto events_before = inc.stats().events;
  inc.update_path(s, std::vector<std::uint32_t>{0, 1, 0});  // dedups to same
  EXPECT_TRUE(inc.changes().empty());
  EXPECT_EQ(inc.stats().events, events_before);
  EXPECT_TRUE(inc.check_differential());
}

TEST(IncrementalMaxMinTest, UpdatePathMovesLoad) {
  IncrementalMaxMin inc({10.0, 10.0}, 0.0);
  const Slot a = inc.add_flow(std::vector<std::uint32_t>{0});
  const Slot b = inc.add_flow(std::vector<std::uint32_t>{0});
  EXPECT_DOUBLE_EQ(inc.rate(b), 5.0);
  inc.update_path(b, std::vector<std::uint32_t>{1});
  EXPECT_DOUBLE_EQ(inc.rate(a), 10.0);
  EXPECT_DOUBLE_EQ(inc.rate(b), 10.0);
  EXPECT_TRUE(inc.check_differential());
}

TEST(IncrementalMaxMinTest, SetCapacityOnIdleOrUnconstrainedLinkIsFree) {
  IncrementalMaxMin inc({1000.0, 1000.0}, 5.0);
  const Slot s = inc.add_flow(std::vector<std::uint32_t>{0});
  (void)s;
  const auto solved_before = inc.stats().flows_resolved;
  inc.set_capacity(1, 500.0);  // no flows: nothing to do
  EXPECT_TRUE(inc.changes().empty());
  inc.set_capacity(0, 800.0);  // loaded but still unconstrainable
  EXPECT_TRUE(inc.changes().empty());
  EXPECT_EQ(inc.stats().flows_resolved, solved_before);
  EXPECT_TRUE(inc.check_differential());
}

TEST(IncrementalMaxMinTest, SetCapacityDegradeThenRestore) {
  IncrementalMaxMin inc({1000.0}, 5.0);
  const Slot a = inc.add_flow(std::vector<std::uint32_t>{0});
  const Slot b = inc.add_flow(std::vector<std::uint32_t>{0});
  inc.set_capacity(0, 6.0);  // now 2 * 5 > 6: constrained, fair share 3/3
  EXPECT_DOUBLE_EQ(inc.rate(a), 3.0);
  EXPECT_DOUBLE_EQ(inc.rate(b), 3.0);
  EXPECT_TRUE(inc.check_differential());
  inc.set_capacity(0, 1000.0);  // restore: both back to the cap
  EXPECT_DOUBLE_EQ(inc.rate(a), 5.0);
  EXPECT_DOUBLE_EQ(inc.rate(b), 5.0);
  EXPECT_TRUE(inc.check_differential());
}

TEST(IncrementalMaxMinTest, SlotsAreReusedAfterRemoval) {
  IncrementalMaxMin inc({10.0}, 2.0);
  const Slot a = inc.add_flow(std::vector<std::uint32_t>{0});
  inc.remove_flow(a);
  const Slot b = inc.add_flow(std::vector<std::uint32_t>{0});
  EXPECT_EQ(a, b);  // dense slot table: freed slots recycle
  EXPECT_DOUBLE_EQ(inc.rate(b), 2.0);
  EXPECT_TRUE(inc.check_differential());
}

TEST(IncrementalMaxMinTest, CappedCrowdReductionExceedsFivefold) {
  // The acceptance-criterion regime: many access-capped flows over fat
  // links. Every flow is (almost always) its own component, so per-event
  // work stays O(path) while the from-scratch baseline scans the whole
  // population — the reduction factor must clear 5x by a wide margin.
  constexpr std::size_t kLinks = 256;
  Rng rng(42);
  std::vector<double> caps(kLinks, 1000.0);
  IncrementalMaxMin inc(caps, 5.0);
  std::vector<Slot> slots;
  for (std::size_t i = 0; i < 400; ++i) {
    slots.push_back(inc.add_flow(random_path(rng, kLinks, 4)));
  }
  for (std::size_t i = 0; i < 200; ++i) {
    const std::size_t j = rng.bounded(slots.size());
    inc.remove_flow(slots[j]);
    slots[j] = slots.back();
    slots.pop_back();
  }
  EXPECT_TRUE(inc.check_differential());
  EXPECT_GT(inc.stats().reduction(), 5.0);
}

TEST(IncrementalMaxMinTest, OracleMatchesReferenceSolver) {
  // The canonical decomposition itself must agree with the monolithic PR-1
  // reference solver (tolerance: different FP summation order).
  Rng rng(7);
  constexpr std::size_t kLinks = 32;
  std::vector<double> caps(kLinks);
  for (double& c : caps) c = rng.uniform(5.0, 20.0);
  IncrementalMaxMin inc(caps, 4.0);
  std::map<Slot, std::vector<std::uint32_t>> live;
  for (std::size_t i = 0; i < 60; ++i) {
    const auto path = random_path(rng, kLinks, 5);
    const Slot s = inc.add_flow(path);
    std::vector<std::uint32_t> dd;
    for (const std::uint32_t l : path) {
      if (std::find(dd.begin(), dd.end(), l) == dd.end()) dd.push_back(l);
    }
    live[s] = dd;
  }
  const auto ref = reference_rates(inc, live, caps);
  const auto oracle = inc.oracle_rates();
  for (const auto& [slot, want] : ref) {
    EXPECT_NEAR(oracle[slot], want, 1e-5 + 1e-5 * want);
  }
}

}  // namespace
}  // namespace mifo::sim
