// Streaming event loop (FluidSim::run_stream): agreement with the batch
// run() on BGP, goodput conservation, per-event differential checking
// against the from-scratch oracle, chaos x workload composition, and
// bit-reproducibility across thread settings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "chaos/fluid.hpp"
#include "chaos/plan.hpp"
#include "obs/registry.hpp"
#include "sim/fluid_sim.hpp"
#include "topo/generator.hpp"
#include "traffic/traffic.hpp"
#include "traffic/workload.hpp"

namespace mifo::sim {
namespace {

using topo::AsGraph;

AsGraph stream_graph(std::size_t n = 200, std::uint64_t seed = 11) {
  topo::GeneratorParams gp;
  gp.num_ases = n;
  gp.num_tier1 = 5;
  gp.seed = seed;
  return topo::generate_topology(gp);
}

traffic::WorkloadParams small_workload(std::uint64_t seed = 7) {
  traffic::WorkloadParams p;
  p.seed = seed;
  p.arrival_rate = 150.0;
  p.duration = 4.0;
  p.size_min = 2 * kMegaByte;
  p.size_max = 200 * kMegaByte;
  p.max_endpoints = 64;
  return p;
}

TEST(RunStream, MatchesBatchRunUnderBgp) {
  const AsGraph g = stream_graph();
  traffic::TrafficParams tp;
  tp.num_flows = 80;
  tp.arrival_rate = 120.0;
  tp.flow_size = 20 * kMegaByte;
  tp.dest_pool = 24;
  tp.seed = 5;
  const auto specs = traffic::uniform_traffic(g, tp);

  SimConfig cfg;
  cfg.mode = RoutingMode::Bgp;
  FluidSim batch(g, cfg);
  const auto want = batch.run(specs);

  FluidSim stream(g, cfg);
  StreamConfig sc;
  const StreamResult res = stream.run_stream(specs, sc);

  ASSERT_EQ(res.records.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(res.records[i].unreachable, want[i].unreachable) << i;
    ASSERT_EQ(res.records[i].completed, want[i].completed) << i;
    if (!want[i].completed) continue;
    EXPECT_NEAR(res.records[i].finish, want[i].finish, 1e-6) << i;
    EXPECT_NEAR(res.records[i].throughput(), want[i].throughput(),
                1e-4 * want[i].throughput() + 1e-6)
        << i;
  }
  EXPECT_FALSE(res.truncated);
  EXPECT_GT(res.peak_active, 1u);
}

TEST(RunStream, GoodputSeriesConservesDeliveredBytes) {
  const AsGraph g = stream_graph(300, 13);
  auto wp = small_workload(3);
  wp.arrival_rate = 200.0;
  wp.duration = 5.0;
  traffic::WorkloadEngine eng(g, wp);

  SimConfig cfg;
  cfg.mode = RoutingMode::Bgp;
  FluidSim sim(g, cfg);
  StreamConfig sc;
  sc.epoch = 0.25;
  const StreamResult res = sim.run_stream(eng, sc);

  // Every generated flow is in the records; the run drains, so each
  // reachable flow completed.
  EXPECT_EQ(res.records.size(), eng.generated());
  double delivered = 0.0;
  for (const auto& r : res.records) {
    if (r.unreachable) continue;
    ASSERT_TRUE(r.completed);
    delivered += to_megabits(r.spec.size);
  }
  ASSERT_GT(delivered, 0.0);

  // The epoch series integrates Σ rates: goodput_i * length_i must add up
  // to exactly the delivered megabits (edges are cumulative timestamps).
  double integrated = 0.0;
  SimTime prev = 0.0;
  for (const auto& s : res.load) {
    ASSERT_GT(s.t, prev);
    integrated += s.goodput_mbps * (s.t - prev);
    EXPECT_GT(s.offered_mbps, 0.0);  // engine-driven run reports offered load
    prev = s.t;
  }
  EXPECT_NEAR(integrated / delivered, 1.0, 1e-6);

  // Arrival/completion epoch tallies cover the whole population too.
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  for (const auto& s : res.load) {
    arrivals += s.arrivals;
    completions += s.completions;
  }
  std::uint64_t reachable = 0;
  for (const auto& r : res.records) reachable += r.unreachable ? 0 : 1;
  EXPECT_EQ(arrivals, reachable);
  EXPECT_EQ(completions, reachable);
}

TEST(RunStream, DifferentialCleanThroughChaosAndFlashCrowd) {
  const AsGraph g = stream_graph();
  auto wp = small_workload(17);
  traffic::FlashCrowd fc;
  fc.start = 1.0;
  fc.duration = 1.5;
  fc.rate_multiplier = 2.0;
  fc.hotspot_share = 0.4;
  wp.flash_crowds.push_back(fc);
  traffic::WorkloadEngine eng(g, wp);

  SimConfig cfg;
  cfg.mode = RoutingMode::Mifo;
  FluidSim sim(g, cfg);
  sim.set_deployment(std::vector<bool>(g.num_ases(), true));

  // Compose a failure with the flash crowd: degrade and flap links inside
  // the crowd window via the chaos bridge.
  chaos::Plan plan;
  plan.duration = 1.0;
  std::size_t planned = 0;
  for (std::uint32_t a = 0; a < g.num_ases() && planned < 3; ++a) {
    for (const auto& nb : g.neighbors(AsId(a))) {
      if (nb.as.value() > a) {
        chaos::Event down;
        down.t = 0.1 + 0.2 * static_cast<double>(planned);
        down.kind = planned == 0 ? chaos::EventKind::Degrade
                                 : chaos::EventKind::LinkDown;
        down.value = 0.25;
        down.a = AsId(a);
        down.b = nb.as;
        plan.events.push_back(down);
        chaos::Event up = down;
        up.t = down.t + 0.4;
        up.kind = planned == 0 ? chaos::EventKind::Restore
                               : chaos::EventKind::LinkUp;
        plan.events.push_back(up);
        ++planned;
        break;
      }
    }
  }
  ASSERT_EQ(planned, 3u);
  plan.normalize();
  const std::size_t applied =
      chaos::apply_to_fluid_window(plan, g, sim, fc.start, fc.duration);
  EXPECT_EQ(applied, 6u);

  StreamConfig sc;
  sc.differential = true;  // oracle after EVERY arrival/departure/reroute
  const StreamResult res = sim.run_stream(eng, sc);

  EXPECT_FALSE(res.truncated);
  EXPECT_GT(res.solver.events, 0u);
  // At least one oracle check per solver event (capacity events that touch
  // idle links are checked too, so checks can exceed events).
  EXPECT_GE(res.solver.differential_checks, res.solver.events);
  EXPECT_EQ(res.solver.differential_mismatches, 0u);
  // Component-local re-solves must beat the from-scratch scan even at this
  // small scale.
  EXPECT_GT(res.solver.reduction(), 1.0);
  EXPECT_GT(res.peak_active, 0u);
}

TEST(RunStream, ThreadSettingKeepsResultsBitIdentical) {
  const AsGraph g = stream_graph();
  SimConfig cfg;
  cfg.mode = RoutingMode::Mifo;
  cfg.threads = 1;
  const auto deployed = traffic::random_deployment(g.num_ases(), 0.8, 3);

  const auto run_once = [&](std::size_t threads) {
    auto wp = small_workload(23);
    traffic::WorkloadEngine eng(g, wp);
    SimConfig c = cfg;
    c.threads = threads;
    FluidSim sim(g, c);
    sim.set_deployment(deployed);
    StreamConfig sc;
    return sim.run_stream(eng, sc);
  };
  const StreamResult a = run_once(1);
  const StreamResult b = run_once(4);

  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].finish, b.records[i].finish);  // bitwise double
    EXPECT_EQ(a.records[i].completed, b.records[i].completed);
    EXPECT_EQ(a.records[i].path_switches, b.records[i].path_switches);
    EXPECT_EQ(a.records[i].used_alternative, b.records[i].used_alternative);
  }
  ASSERT_EQ(a.load.size(), b.load.size());
  for (std::size_t i = 0; i < a.load.size(); ++i) {
    EXPECT_EQ(a.load[i].goodput_mbps, b.load[i].goodput_mbps);
    EXPECT_EQ(a.load[i].active_flows, b.load[i].active_flows);
  }
  EXPECT_EQ(a.peak_active, b.peak_active);
  EXPECT_EQ(a.solver.events, b.solver.events);
  EXPECT_EQ(a.solver.incidences_resolved, b.solver.incidences_resolved);
}

TEST(RunStream, MaxTimeTruncatesOpenLoopRun) {
  const AsGraph g = stream_graph();
  auto wp = small_workload(29);
  wp.duration = 30.0;
  wp.arrival_rate = 300.0;
  traffic::WorkloadEngine eng(g, wp);

  SimConfig cfg;
  cfg.mode = RoutingMode::Bgp;
  FluidSim sim(g, cfg);
  StreamConfig sc;
  sc.max_time = 1.0;
  const StreamResult res = sim.run_stream(eng, sc);

  EXPECT_TRUE(res.truncated);
  EXPECT_NEAR(res.duration, 1.0, 1e-9);
  std::size_t incomplete = 0;
  for (const auto& r : res.records) {
    if (!r.completed && !r.unreachable) ++incomplete;
    if (r.completed) EXPECT_LE(r.finish, 1.0 + 1e-9);
  }
  EXPECT_GT(incomplete, 0u);
  for (const auto& s : res.load) EXPECT_LE(s.t, 1.0 + 1e-9);
}

TEST(RunStream, SolverCountersFlowIntoRegistry) {
  const AsGraph g = stream_graph();
  auto wp = small_workload(31);
  wp.duration = 2.0;
  traffic::WorkloadEngine eng(g, wp);

  SimConfig cfg;
  cfg.mode = RoutingMode::Mifo;
  FluidSim sim(g, cfg);
  sim.set_deployment(std::vector<bool>(g.num_ases(), true));
  obs::Registry reg;
  sim.attach_registry(reg, "arm=stream");
  StreamConfig sc;
  sc.differential = true;
  const StreamResult res = sim.run_stream(eng, sc);

  const auto snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value_or("sim.solver_runs", -1.0, "arm=stream"),
                   static_cast<double>(res.solver.events));
  EXPECT_DOUBLE_EQ(snap.value_or("sim.solver_components", -1.0, "arm=stream"),
                   static_cast<double>(res.solver.components_solved));
  EXPECT_DOUBLE_EQ(snap.value_or("sim.solver_incidences", -1.0, "arm=stream"),
                   static_cast<double>(res.solver.incidences_resolved));
  EXPECT_DOUBLE_EQ(
      snap.value_or("sim.solver_full_incidences", -1.0, "arm=stream"),
      static_cast<double>(res.solver.full_incidences));
  EXPECT_DOUBLE_EQ(snap.value_or("sim.solver_diff_checks", -1.0, "arm=stream"),
                   static_cast<double>(res.solver.differential_checks));
  // Epoch gauges hold the last-emitted values.
  EXPECT_GE(snap.value_or("sim.active_flows", -1.0, "arm=stream"), 0.0);
  EXPECT_GE(snap.value_or("sim.offered_load_mbps", -1.0, "arm=stream"), 0.0);
}

TEST(RunStream, SolveLatencyRecordingCoversEveryEvent) {
  const AsGraph g = stream_graph();
  auto wp = small_workload(37);
  wp.duration = 1.5;
  traffic::WorkloadEngine eng(g, wp);

  SimConfig cfg;
  cfg.mode = RoutingMode::Bgp;
  FluidSim sim(g, cfg);
  StreamConfig sc;
  sc.measure_solve_latency = true;
  const StreamResult res = sim.run_stream(eng, sc);

  EXPECT_EQ(res.solve_seconds.size(), res.solver.events);
  for (const double s : res.solve_seconds) EXPECT_GE(s, 0.0);
}

}  // namespace
}  // namespace mifo::sim
