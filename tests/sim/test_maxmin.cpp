#include "sim/maxmin.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>

#include "common/rng.hpp"

namespace mifo::sim {
namespace {

std::vector<std::span<const std::uint32_t>> views_of(
    const std::vector<std::vector<std::uint32_t>>& paths) {
  return {paths.begin(), paths.end()};
}

std::vector<double> solve(const std::vector<std::vector<std::uint32_t>>& paths,
                          const std::vector<double>& caps,
                          double flow_cap = 0.0) {
  const auto views = views_of(paths);
  MaxMinInput in;
  in.flow_links = views;
  in.link_capacity = caps;
  in.flow_cap = flow_cap;
  return max_min_rates(in);
}

TEST(MaxMin, SingleFlowGetsFullLink) {
  const auto r = solve({{0}}, {1000.0});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0], 1000.0, 1e-6);
}

TEST(MaxMin, EqualSplitOnSharedLink) {
  const auto r = solve({{0}, {0}, {0}, {0}}, {1000.0});
  for (const double x : r) EXPECT_NEAR(x, 250.0, 1e-6);
}

TEST(MaxMin, ClassicTwoBottleneckExample) {
  // Flow A uses links 0 and 1; flow B uses link 0; flow C uses link 1.
  // cap(0)=1, cap(1)=10: A and B split link 0 at 0.5; C then gets 9.5.
  const auto r = solve({{0, 1}, {0}, {1}}, {1.0, 10.0});
  EXPECT_NEAR(r[0], 0.5, 1e-6);
  EXPECT_NEAR(r[1], 0.5, 1e-6);
  EXPECT_NEAR(r[2], 9.5, 1e-6);
}

TEST(MaxMin, FlowCapBindsBeforeLinks) {
  const auto r = solve({{0}, {0}}, {1000.0}, 100.0);
  EXPECT_NEAR(r[0], 100.0, 1e-6);
  EXPECT_NEAR(r[1], 100.0, 1e-6);
}

TEST(MaxMin, EmptyPathGetsFlowCap) {
  const auto r = solve({{}}, {}, 1000.0);
  EXPECT_DOUBLE_EQ(r[0], 1000.0);
}

TEST(MaxMin, NoFlows) { EXPECT_TRUE(solve({}, {1.0}).empty()); }

TEST(MaxMin, DuplicateLinkInPathChargedOnce) {
  // Defensive behaviour: a repeated link id must not double-charge.
  const auto r = solve({{0, 0}}, {1000.0});
  EXPECT_NEAR(r[0], 1000.0, 1e-6);
}

TEST(MaxMin, ExplicitLinkUniverseWiderThanUsedIds) {
  // num_links sizes the dense workspace; ids beyond the ones actually used
  // cost nothing, and any used id must still have a capacity entry.
  const std::vector<std::vector<std::uint32_t>> paths{{0}};
  const auto views = views_of(paths);
  const std::vector<double> caps{1000.0};
  MaxMinInput in;
  in.flow_links = views;
  in.link_capacity = caps;
  in.num_links = 16;  // sparse universe, only id 0 used
  MaxMinWorkspace ws;
  const auto r = max_min_rates(in, ws);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0], 1000.0, 1e-6);
}

TEST(MaxMin, WorkspaceReuseAcrossDifferentInstances) {
  // A workspace carrying state from one instance must not leak into the
  // next (epoch stamping) — including shrinking instances.
  MaxMinWorkspace ws;
  const std::vector<double> caps{100.0, 200.0, 300.0};

  const std::vector<std::vector<std::uint32_t>> a{{0, 1}, {1, 2}, {2}};
  const auto va = views_of(a);
  MaxMinInput ia;
  ia.flow_links = va;
  ia.link_capacity = caps;
  const auto ra = max_min_rates(ia, ws);
  (void)ra;

  const std::vector<std::vector<std::uint32_t>> b{{2}};
  const auto vb = views_of(b);
  MaxMinInput ib;
  ib.flow_links = vb;
  ib.link_capacity = caps;
  const auto rb = max_min_rates(ib, ws);
  ASSERT_EQ(rb.size(), 1u);
  EXPECT_NEAR(rb[0], 300.0, 1e-6);  // full link: flow count was re-stamped
}

// Property tests on random instances.
class MaxMinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinProperty, FeasibleAndBottleneckJustified) {
  Rng rng(GetParam());
  const std::size_t nl = 30;
  const std::size_t nf = 120;
  std::vector<double> caps(nl);
  for (auto& c : caps) c = rng.uniform(100.0, 1000.0);
  std::vector<std::vector<std::uint32_t>> paths(nf);
  for (auto& p : paths) {
    const std::size_t hops = 1 + rng.bounded(4);
    std::set<std::uint32_t> links;
    while (links.size() < hops) {
      links.insert(static_cast<std::uint32_t>(rng.bounded(nl)));
    }
    p.assign(links.begin(), links.end());
  }
  const auto views = views_of(paths);
  MaxMinInput in;
  in.flow_links = views;
  in.link_capacity = caps;
  in.flow_cap = 1000.0;
  const auto rates = max_min_rates(in);

  // (1) Feasibility: no link over capacity.
  std::vector<double> load(nl, 0.0);
  for (std::size_t f = 0; f < nf; ++f) {
    EXPECT_GT(rates[f], 0.0);
    EXPECT_LE(rates[f], 1000.0 + 1e-6);
    for (const auto l : paths[f]) load[l] += rates[f];
  }
  for (std::size_t l = 0; l < nl; ++l) {
    EXPECT_LE(load[l], caps[l] + 1e-4) << "link " << l;
  }
  // (2) Max-min witness: every flow is either at the flow cap or crosses a
  // link that is saturated and on which it has a maximal rate.
  for (std::size_t f = 0; f < nf; ++f) {
    if (rates[f] >= 1000.0 - 1e-6) continue;
    bool witnessed = false;
    for (const auto l : paths[f]) {
      if (load[l] >= caps[l] - 1e-3) {
        bool is_max = true;
        for (std::size_t g2 = 0; g2 < nf; ++g2) {
          if (std::find(paths[g2].begin(), paths[g2].end(), l) ==
              paths[g2].end()) {
            continue;
          }
          if (rates[g2] > rates[f] + 1e-6) {
            is_max = false;
            break;
          }
        }
        if (is_max) {
          witnessed = true;
          break;
        }
      }
    }
    EXPECT_TRUE(witnessed) << "flow " << f << " rate " << rates[f];
  }
}

// Differential property: the dense-workspace solver must return exactly the
// rates of the retained reference implementation, at scale, across random
// instances — reusing ONE workspace across all of them to also exercise
// stale-state isolation between calls.
TEST_P(MaxMinProperty, DenseSolverMatchesReferenceAtScale) {
  Rng rng(GetParam() * 977 + 5);
  MaxMinWorkspace ws;
  for (int round = 0; round < 4; ++round) {
    const std::size_t nl = 50 + rng.bounded(500);
    const std::size_t nf = 100 + rng.bounded(1500);
    std::vector<double> caps(nl);
    for (auto& c : caps) c = rng.uniform(10.0, 1000.0);
    std::vector<std::vector<std::uint32_t>> paths(nf);
    for (auto& p : paths) {
      // ~3% of flows get an empty path; some paths carry duplicate ids to
      // exercise the dedup branch.
      if (rng.bounded(32) == 0) continue;
      const std::size_t hops = 1 + rng.bounded(6);
      for (std::size_t h = 0; h < hops; ++h) {
        p.push_back(static_cast<std::uint32_t>(rng.bounded(nl)));
      }
      if (rng.bounded(8) == 0) p.push_back(p.front());
    }
    const auto views = views_of(paths);
    MaxMinInput in;
    in.flow_links = views;
    in.link_capacity = caps;
    in.flow_cap = round % 2 == 0 ? 1000.0 : 0.0;  // with and without cap
    in.num_links = nl;

    const auto dense = max_min_rates(in, ws);
    const auto ref = max_min_rates_reference(in);
    ASSERT_EQ(dense.size(), ref.size());
    for (std::size_t f = 0; f < nf; ++f) {
      // Identical arithmetic in identical order: bitwise-equal rates.
      EXPECT_EQ(dense[f], ref[f]) << "flow " << f << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mifo::sim
