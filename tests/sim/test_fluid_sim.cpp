#include "sim/fluid_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "obs/registry.hpp"
#include "sim/metrics.hpp"
#include "topo/generator.hpp"
#include "traffic/traffic.hpp"

namespace mifo::sim {
namespace {

using topo::AsGraph;

AsGraph fig2a() {
  AsGraph g(4);
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(2), AsId(0));
  g.add_provider_customer(AsId(3), AsId(0));
  g.add_peering(AsId(1), AsId(2));
  g.add_peering(AsId(2), AsId(3));
  g.add_peering(AsId(3), AsId(1));
  return g;
}

TEST(FluidSim, SingleFlowGetsLinkCapacity) {
  const AsGraph g = fig2a();
  SimConfig cfg;
  FluidSim sim(g, cfg);
  std::vector<traffic::FlowSpec> specs{{AsId(1), AsId(0), 10 * kMegaByte, 0.0}};
  const auto rec = sim.run(specs);
  ASSERT_EQ(rec.size(), 1u);
  ASSERT_TRUE(rec[0].completed);
  EXPECT_NEAR(rec[0].throughput(), 1000.0, 1.0);
  // 80 Mb at 1 Gbps = 0.08 s.
  EXPECT_NEAR(rec[0].finish, 0.08, 1e-6);
}

TEST(FluidSim, TwoFlowsShareUnderBgp) {
  const AsGraph g = fig2a();
  SimConfig cfg;
  cfg.mode = RoutingMode::Bgp;
  FluidSim sim(g, cfg);
  std::vector<traffic::FlowSpec> specs{
      {AsId(1), AsId(0), 10 * kMegaByte, 0.0},
      {AsId(1), AsId(0), 10 * kMegaByte, 0.0}};
  const auto rec = sim.run(specs);
  // Both share the 1->0 link at 500 Mbps.
  for (const auto& r : rec) {
    ASSERT_TRUE(r.completed);
    EXPECT_NEAR(r.throughput(), 500.0, 1.0);
    EXPECT_FALSE(r.used_alternative);
    EXPECT_EQ(r.path_switches, 0u);
  }
}

TEST(FluidSim, MifoOffloadsSecondFlowAtArrival) {
  const AsGraph g = fig2a();
  SimConfig cfg;
  cfg.mode = RoutingMode::Mifo;
  cfg.congest_threshold = 0.7;
  FluidSim sim(g, cfg);
  sim.set_deployment(std::vector<bool>(4, true));
  // First flow saturates 1->0; the second (slightly later) must deflect via
  // a peer and both finish at full rate.
  std::vector<traffic::FlowSpec> specs{
      {AsId(1), AsId(0), 10 * kMegaByte, 0.0},
      {AsId(1), AsId(0), 10 * kMegaByte, 0.001}};
  const auto rec = sim.run(specs);
  ASSERT_TRUE(rec[0].completed);
  ASSERT_TRUE(rec[1].completed);
  EXPECT_FALSE(rec[0].used_alternative);
  EXPECT_TRUE(rec[1].used_alternative);
  EXPECT_EQ(rec[1].path_switches, 1u);
  EXPECT_GT(rec[1].throughput(), 900.0);
  EXPECT_GT(rec[0].throughput(), 900.0);
}

TEST(FluidSim, MifoWithoutDeploymentEqualsBgp) {
  const AsGraph g = fig2a();
  std::vector<traffic::FlowSpec> specs{
      {AsId(1), AsId(0), 10 * kMegaByte, 0.0},
      {AsId(1), AsId(0), 10 * kMegaByte, 0.001}};
  SimConfig cfg;
  cfg.mode = RoutingMode::Mifo;
  FluidSim mifo(g, cfg);  // deployment defaults to all-false
  const auto rec = mifo.run(specs);
  cfg.mode = RoutingMode::Bgp;
  FluidSim bgp(g, cfg);
  const auto ref = bgp.run(specs);
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_NEAR(rec[i].throughput(), ref[i].throughput(), 1e-6);
    EXPECT_FALSE(rec[i].used_alternative);
  }
}

TEST(FluidSim, UnreachableFlowsMarked) {
  AsGraph g(3);
  g.add_peering(AsId(0), AsId(1));
  SimConfig cfg;
  FluidSim sim(g, cfg);
  std::vector<traffic::FlowSpec> specs{{AsId(0), AsId(2), kMegaByte, 0.0}};
  const auto rec = sim.run(specs);
  EXPECT_TRUE(rec[0].unreachable);
  EXPECT_FALSE(rec[0].completed);
}

TEST(FluidSim, MiroUsesSameClassAlternative) {
  // Diamond: src 0 reaches dest 4 through parallel providers 1,2,3 — the
  // alternatives share the default's (provider) class, so MIRO's strict
  // policy admits them.
  AsGraph g(5);
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(2), AsId(0));
  g.add_provider_customer(AsId(3), AsId(0));
  g.add_provider_customer(AsId(1), AsId(4));
  g.add_provider_customer(AsId(2), AsId(4));
  g.add_provider_customer(AsId(3), AsId(4));
  SimConfig cfg;
  cfg.mode = RoutingMode::Miro;
  cfg.congest_threshold = 0.7;
  FluidSim sim(g, cfg);
  sim.set_deployment(std::vector<bool>(5, true));
  std::vector<traffic::FlowSpec> specs{
      {AsId(0), AsId(4), 10 * kMegaByte, 0.0},
      {AsId(0), AsId(4), 10 * kMegaByte, 0.001}};
  const auto rec = sim.run(specs);
  ASSERT_TRUE(rec[1].completed);
  EXPECT_TRUE(rec[1].used_alternative);
  EXPECT_GT(rec[1].throughput(), 900.0);
}

TEST(FluidSim, MiroStrictPolicyRefusesOtherClassAlternative) {
  // In fig2a the alternatives are peer-class while the default is a
  // customer route: MIRO must NOT use them (MIFO would).
  const AsGraph g = fig2a();
  SimConfig cfg;
  cfg.mode = RoutingMode::Miro;
  cfg.congest_threshold = 0.7;
  FluidSim sim(g, cfg);
  sim.set_deployment(std::vector<bool>(4, true));
  std::vector<traffic::FlowSpec> specs{
      {AsId(1), AsId(0), 10 * kMegaByte, 0.0},
      {AsId(1), AsId(0), 10 * kMegaByte, 0.001}};
  const auto rec = sim.run(specs);
  ASSERT_TRUE(rec[1].completed);
  EXPECT_FALSE(rec[1].used_alternative);
  EXPECT_NEAR(rec[1].throughput(), 500.0, 25.0);  // shares the default
}

TEST(FluidSim, CompletionConservesBytes) {
  // Every admitted flow eventually completes; total transferred equals the
  // offered volume.
  topo::GeneratorParams gp;
  gp.num_ases = 200;
  gp.seed = 6;
  const AsGraph g = topo::generate_topology(gp);
  traffic::TrafficParams tp;
  tp.num_flows = 2000;
  tp.dest_pool = 32;
  const auto specs = traffic::uniform_traffic(g, tp);
  SimConfig cfg;
  cfg.mode = RoutingMode::Mifo;
  FluidSim sim(g, cfg);
  sim.set_deployment(traffic::random_deployment(g.num_ases(), 0.5, 3));
  const auto rec = sim.run(specs);
  std::size_t done = 0;
  std::size_t unreachable = 0;
  for (const auto& r : rec) {
    if (r.completed) {
      ++done;
      EXPECT_GT(r.throughput(), 0.0);
      EXPECT_LE(r.throughput(), 1000.0 + 1e-6);
      EXPECT_GE(r.finish, r.spec.arrival);
    } else {
      EXPECT_TRUE(r.unreachable);
      ++unreachable;
    }
  }
  EXPECT_EQ(done + unreachable, rec.size());
  EXPECT_GT(done, rec.size() * 9 / 10);
}

TEST(FluidSim, MifoNeverWorseThanBgpOnAggregate) {
  topo::GeneratorParams gp;
  gp.num_ases = 300;
  gp.seed = 8;
  const AsGraph g = topo::generate_topology(gp);
  traffic::TrafficParams tp;
  tp.num_flows = 3000;
  tp.dest_pool = 16;  // concentrate to force congestion
  tp.seed = 21;
  const auto specs = traffic::uniform_traffic(g, tp);

  auto mean = [&](RoutingMode mode) {
    SimConfig cfg;
    cfg.mode = mode;
    FluidSim sim(g, cfg);
    sim.set_deployment(std::vector<bool>(g.num_ases(), true));
    return summarize(sim.run(specs)).mean_throughput;
  };
  const double bgp = mean(RoutingMode::Bgp);
  const double mifo = mean(RoutingMode::Mifo);
  EXPECT_GE(mifo, bgp * 0.98);  // never meaningfully worse
}

TEST(FluidSim, DeflectedFlowReturnsAfterDefaultClears) {
  // Flow A congests 1->0; flow B deflects via a peer. When A finishes, the
  // next re-evaluation tick walks B back to its default (hysteresis):
  // exactly two path switches (deflect + resume), the paper's dominant
  // <=2-switch population in Fig. 9.
  const AsGraph g = fig2a();
  SimConfig cfg;
  cfg.mode = RoutingMode::Mifo;
  cfg.reeval_interval = 0.01;
  FluidSim sim(g, cfg);
  sim.set_deployment(std::vector<bool>(4, true));
  std::vector<traffic::FlowSpec> specs{
      {AsId(1), AsId(0), 5 * kMegaByte, 0.0},    // A: done at 0.04
      {AsId(1), AsId(0), 50 * kMegaByte, 0.001}  // B: outlives A
  };
  const auto rec = sim.run(specs);
  ASSERT_TRUE(rec[1].completed);
  EXPECT_TRUE(rec[1].used_alternative);
  EXPECT_EQ(rec[1].path_switches, 2u);  // deflect at arrival, return once
  // B barely shares with A: overall throughput near line rate.
  EXPECT_GT(rec[1].throughput(), 900.0);
}

TEST(FluidSim, LateCongestionDeflectsEstablishedFlow) {
  // B starts alone on the default; A floods the same link later; a re-eval
  // tick must move B (or keep both at 500 if deflection is impossible —
  // here peers exist, so B moves).
  const AsGraph g = fig2a();
  SimConfig cfg;
  cfg.mode = RoutingMode::Mifo;
  cfg.reeval_interval = 0.01;
  FluidSim sim(g, cfg);
  sim.set_deployment(std::vector<bool>(4, true));
  std::vector<traffic::FlowSpec> specs{
      {AsId(1), AsId(0), 50 * kMegaByte, 0.0},   // B: long-lived
      {AsId(1), AsId(0), 50 * kMegaByte, 0.05}   // A: arrives later
  };
  const auto rec = sim.run(specs);
  ASSERT_TRUE(rec[0].completed);
  ASSERT_TRUE(rec[1].completed);
  // One of them ends up on an alternative and both finish near line rate.
  EXPECT_TRUE(rec[0].used_alternative || rec[1].used_alternative);
  EXPECT_GT(rec[0].throughput(), 700.0);
  EXPECT_GT(rec[1].throughput(), 700.0);
}

TEST(FluidSim, ParallelRouteWarmupIsBitIdenticalToSerial) {
  // The threaded route-cache warmup must not change a single bit of the
  // simulation outcome: compute_routes is pure per destination, so warming
  // with 1 worker (lazy serial path) and with many workers must agree
  // exactly, for every routing mode.
  topo::GeneratorParams gp;
  gp.num_ases = 250;
  gp.seed = 11;
  const AsGraph g = topo::generate_topology(gp);
  traffic::TrafficParams tp;
  tp.num_flows = 2500;
  tp.dest_pool = 48;
  tp.seed = 9;
  const auto specs = traffic::uniform_traffic(g, tp);
  const auto deployed = traffic::random_deployment(g.num_ases(), 0.5, 3);

  for (const auto mode :
       {RoutingMode::Bgp, RoutingMode::Miro, RoutingMode::Mifo}) {
    SimConfig cfg;
    cfg.mode = mode;

    cfg.threads = 1;  // serial lazy path
    FluidSim serial(g, cfg);
    serial.set_deployment(deployed);
    const auto ser = serial.run(specs);

    cfg.threads = 8;  // parallel pre-warm
    FluidSim parallel(g, cfg);
    parallel.set_deployment(deployed);
    const auto par = parallel.run(specs);

    ASSERT_EQ(ser.size(), par.size());
    for (std::size_t i = 0; i < ser.size(); ++i) {
      EXPECT_EQ(ser[i].finish, par[i].finish) << i;  // bitwise, no tolerance
      EXPECT_EQ(ser[i].completed, par[i].completed) << i;
      EXPECT_EQ(ser[i].unreachable, par[i].unreachable) << i;
      EXPECT_EQ(ser[i].path_switches, par[i].path_switches) << i;
      EXPECT_EQ(ser[i].used_alternative, par[i].used_alternative) << i;
    }

    // The warmed CSR stores themselves must also be element-identical:
    // same flattened bytes, same best/RIB/path views for every destination
    // the traffic touches.
    std::unordered_set<std::uint32_t> dests;
    for (const auto& f : specs) dests.insert(f.dst.value());
    for (const std::uint32_t d : dests) {
      const bgp::RouteStore& rs = serial.routes_for(AsId(d));
      const bgp::RouteStore& rp = parallel.routes_for(AsId(d));
      ASSERT_EQ(rs.bytes(), rp.bytes()) << "dest " << d;
      ASSERT_EQ(rs.num_reachable(), rp.num_reachable()) << "dest " << d;
      const auto bs = rs.all_best();
      const auto bp = rp.all_best();
      ASSERT_TRUE(std::equal(bs.begin(), bs.end(), bp.begin(), bp.end()))
          << "dest " << d;
      for (std::uint32_t as = 0; as < g.num_ases(); ++as) {
        const auto ra = rs.rib(AsId(as));
        const auto rb = rp.rib(AsId(as));
        ASSERT_TRUE(std::equal(ra.begin(), ra.end(), rb.begin(), rb.end()))
            << "dest " << d << " as " << as;
        const auto pa = rs.path(AsId(as));
        const auto pb = rp.path(AsId(as));
        ASSERT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()))
            << "dest " << d << " as " << as;
      }
    }
  }
}

TEST(FluidSim, RouteCacheBytesGaugeTracksWarmedStores) {
  // sim.route_cache_bytes reports the resident CSR footprint: zero after
  // attach, equal to the sum of the warmed stores' bytes() once the cache
  // is populated — whether lazily (routes_for) or via the threaded warmup.
  topo::GeneratorParams gp;
  gp.num_ases = 120;
  gp.seed = 21;
  const AsGraph g = topo::generate_topology(gp);

  SimConfig cfg;
  cfg.mode = RoutingMode::Mifo;
  cfg.threads = 4;
  FluidSim sim(g, cfg);
  obs::Registry reg;
  sim.attach_registry(reg, "arm=test");
  EXPECT_DOUBLE_EQ(
      reg.snapshot().value_or("sim.route_cache_bytes", -1.0, "arm=test"),
      0.0);

  std::size_t expect = 0;
  for (std::uint32_t d = 0; d < 6; ++d) {
    expect += sim.routes_for(AsId(d)).bytes();
  }
  EXPECT_GT(expect, 0u);
  EXPECT_DOUBLE_EQ(
      reg.snapshot().value_or("sim.route_cache_bytes", -1.0, "arm=test"),
      static_cast<double>(expect));

  // A run() warms the remaining destinations in parallel; the gauge keeps
  // counting every resident store.
  traffic::TrafficParams tp;
  tp.num_flows = 200;
  tp.dest_pool = 16;
  tp.seed = 5;
  sim.set_deployment(traffic::random_deployment(g.num_ases(), 0.5, 3));
  sim.run(traffic::uniform_traffic(g, tp));
  EXPECT_GE(
      reg.snapshot().value_or("sim.route_cache_bytes", -1.0, "arm=test"),
      static_cast<double>(expect));
}

TEST(FluidSim, RepeatedRunsOnOneSimAreIdentical) {
  // The reusable MaxMinWorkspace and warmed route cache carry state across
  // run() calls; that state must never leak into results.
  const AsGraph g = fig2a();
  SimConfig cfg;
  cfg.mode = RoutingMode::Mifo;
  FluidSim sim(g, cfg);
  sim.set_deployment(std::vector<bool>(4, true));
  std::vector<traffic::FlowSpec> specs{
      {AsId(1), AsId(0), 10 * kMegaByte, 0.0},
      {AsId(1), AsId(0), 10 * kMegaByte, 0.001}};
  const auto first = sim.run(specs);
  const auto second = sim.run(specs);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].finish, second[i].finish);
    EXPECT_EQ(first[i].path_switches, second[i].path_switches);
  }
}

TEST(FluidSim, RoutesForCachesPerDestination) {
  const AsGraph g = fig2a();
  SimConfig cfg;
  FluidSim sim(g, cfg);
  const auto& a = sim.routes_for(AsId(0));
  const auto& b = sim.routes_for(AsId(0));
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.dest(), AsId(0));
}

TEST(FluidSim, InvalidateRoutesEvictsExactlyTheDeltaRecomputeSet) {
  // The bridge from the delta routing table to the sim's route cache: a
  // routing event's touched_dests maps onto invalidate_routes, which
  // must evict exactly those stores (misses ignored), roll the bytes gauge
  // back, and count the evictions.
  const AsGraph g = fig2a();
  SimConfig cfg;
  FluidSim sim(g, cfg);
  obs::Registry reg;
  sim.attach_registry(reg, "arm=inv");

  const auto& s0 = sim.routes_for(AsId(0));
  const auto& s1 = sim.routes_for(AsId(1));
  const std::size_t bytes0 = s0.bytes();
  const std::size_t both = bytes0 + s1.bytes();
  EXPECT_DOUBLE_EQ(
      reg.snapshot().value_or("sim.route_cache_bytes", -1.0, "arm=inv"),
      static_cast<double>(both));

  // AsId(2) is a cache miss — it must not count.
  const std::vector<AsId> dirty{AsId(1), AsId(2)};
  EXPECT_EQ(sim.invalidate_routes(dirty), 1u);
  EXPECT_DOUBLE_EQ(
      reg.snapshot().value_or("sim.route_cache_bytes", -1.0, "arm=inv"),
      static_cast<double>(bytes0));
  EXPECT_DOUBLE_EQ(
      reg.snapshot().value_or("sim.route_invalidations", -1.0, "arm=inv"),
      1.0);

  // The evicted destination rebuilds on next access; the survivor's store
  // was never touched.
  EXPECT_EQ(&sim.routes_for(AsId(0)), &s0);
  EXPECT_EQ(sim.routes_for(AsId(1)).dest(), AsId(1));
  EXPECT_DOUBLE_EQ(
      reg.snapshot().value_or("sim.route_cache_bytes", -1.0, "arm=inv"),
      static_cast<double>(both));

  // Repeated invalidation of now-missing entries is a counted no-op.
  EXPECT_EQ(sim.invalidate_routes(std::vector<AsId>{AsId(2)}), 0u);
  EXPECT_DOUBLE_EQ(
      reg.snapshot().value_or("sim.route_invalidations", -1.0, "arm=inv"),
      1.0);
}

}  // namespace
}  // namespace mifo::sim
