#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace mifo::sim {
namespace {

FlowRecord record(double mbps, bool completed = true, bool alt = false,
                  std::uint32_t switches = 0) {
  FlowRecord r;
  r.spec.src = AsId(0);
  r.spec.dst = AsId(1);
  r.spec.size = 10 * kMegaByte;
  r.spec.arrival = 0.0;
  r.completed = completed;
  if (completed) {
    r.finish = to_megabits(r.spec.size) / mbps;  // arrival = 0
  }
  r.used_alternative = alt;
  r.path_switches = switches;
  return r;
}

TEST(Metrics, ThroughputComputedFromRecord) {
  const auto r = record(400.0);
  EXPECT_NEAR(r.throughput(), 400.0, 1e-9);
  EXPECT_DOUBLE_EQ(record(100.0, false).throughput(), 0.0);
}

TEST(Metrics, ThroughputCdfSkipsIncomplete) {
  std::vector<FlowRecord> recs{record(100.0), record(900.0),
                               record(0.0, false)};
  const Cdf cdf = throughput_cdf(recs);
  EXPECT_EQ(cdf.count(), 2u);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_least(500.0), 0.5);
}

TEST(Metrics, OffloadFraction) {
  std::vector<FlowRecord> recs{record(100, true, true), record(100),
                               record(100, true, true), record(100)};
  EXPECT_DOUBLE_EQ(offload_fraction(recs), 0.5);
  recs.push_back(record(0, false, true));  // incomplete: not counted
  EXPECT_DOUBLE_EQ(offload_fraction(recs), 0.5);
}

TEST(Metrics, SwitchDistributionCountsOnlySwitchers) {
  std::vector<FlowRecord> recs{
      record(100, true, false, 0), record(100, true, true, 1),
      record(100, true, true, 1), record(100, true, true, 2)};
  const IntCounter c = switch_distribution(recs);
  EXPECT_EQ(c.total(), 3u);  // the 0-switch flow is excluded
  EXPECT_DOUBLE_EQ(c.fraction_of(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.fraction_at_most(2), 1.0);
}

TEST(Metrics, FractionAtLeast) {
  std::vector<FlowRecord> recs{record(100), record(400), record(600),
                               record(800)};
  EXPECT_DOUBLE_EQ(fraction_at_least(recs, 500.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_at_least(recs, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_at_least(recs, 900.0), 0.0);
}

TEST(Metrics, SummaryAggregates) {
  std::vector<FlowRecord> recs{record(200), record(600, true, true, 1)};
  FlowRecord bad;
  bad.spec.src = AsId(0);
  bad.spec.dst = AsId(9);
  bad.unreachable = true;
  recs.push_back(bad);
  const RunSummary s = summarize(recs);
  EXPECT_EQ(s.total, 3u);
  EXPECT_EQ(s.completed, 2u);
  EXPECT_EQ(s.unreachable, 1u);
  EXPECT_NEAR(s.mean_throughput, 400.0, 1e-6);
  EXPECT_DOUBLE_EQ(s.frac_at_500mbps, 0.5);
  EXPECT_DOUBLE_EQ(s.offload, 0.5);
}

TEST(Metrics, EmptyRecordsSafe) {
  std::vector<FlowRecord> recs;
  EXPECT_EQ(summarize(recs).completed, 0u);
  EXPECT_DOUBLE_EQ(offload_fraction(recs), 0.0);
  EXPECT_EQ(switch_distribution(recs).total(), 0u);
}

}  // namespace
}  // namespace mifo::sim
