#include "dataplane/fib.hpp"

#include <gtest/gtest.h>

namespace mifo::dp {
namespace {

TEST(Fib, LookupMissReturnsNullopt) {
  Fib fib;
  EXPECT_FALSE(fib.lookup(42).has_value());
  EXPECT_EQ(fib.size(), 0u);
}

TEST(Fib, SetAndLookupRoute) {
  Fib fib;
  fib.set_route(42, PortId(3));
  const auto e = fib.lookup(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->out_port, PortId(3));
  EXPECT_FALSE(e->alt_port.valid());
}

TEST(Fib, SetRouteOverwritesDefaultKeepsAlt) {
  Fib fib;
  fib.set_route(42, PortId(3));
  fib.set_alt(42, PortId(7));
  fib.set_route(42, PortId(4));
  const auto e = fib.lookup(42);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->out_port, PortId(4));
  EXPECT_EQ(e->alt_port, PortId(7));
  EXPECT_EQ(fib.size(), 1u);
}

TEST(Fib, AltPortLifecycle) {
  Fib fib;
  fib.set_route(7, PortId(0));
  fib.set_alt(7, PortId(1));
  EXPECT_EQ(fib.lookup(7)->alt_port, PortId(1));
  fib.set_alt(7, PortId(2));  // the daemon re-elects
  EXPECT_EQ(fib.lookup(7)->alt_port, PortId(2));
  fib.clear_alt(7);
  EXPECT_FALSE(fib.lookup(7)->alt_port.valid());
}

TEST(Fib, ClearAltOnMissingEntryIsNoop) {
  Fib fib;
  fib.clear_alt(99);  // must not crash
  EXPECT_EQ(fib.size(), 0u);
}

TEST(FibDeathTest, SetAltRequiresRoute) {
  Fib fib;
  EXPECT_DEATH(fib.set_alt(5, PortId(1)), "Precondition");
}

TEST(Fib, IterationCoversEntries) {
  Fib fib;
  fib.set_route(1, PortId(0));
  fib.set_route(2, PortId(1));
  std::size_t n = 0;
  for (const auto& [addr, entry] : fib) {
    EXPECT_TRUE(addr == 1 || addr == 2);
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

}  // namespace
}  // namespace mifo::dp
