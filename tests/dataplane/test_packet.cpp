#include "dataplane/packet.hpp"

#include <gtest/gtest.h>

namespace mifo::dp {
namespace {

TEST(Packet, DefaultsAreSane) {
  Packet p;
  EXPECT_FALSE(p.encapsulated);
  EXPECT_FALSE(p.mifo_tag);
  EXPECT_EQ(p.ttl, 64);
  EXPECT_EQ(p.kind, PacketKind::Data);
}

TEST(Packet, EncapSetsOuterHeader) {
  Packet p;
  p.size_bytes = 1000;
  encap(p, 10, 20);
  EXPECT_TRUE(p.encapsulated);
  EXPECT_EQ(p.outer_src, 10u);
  EXPECT_EQ(p.outer_dst, 20u);
  // IP-in-IP adds 20 bytes on the wire.
  EXPECT_EQ(p.wire_bytes(), 1020u);
}

TEST(Packet, DecapRecoversSenderAndInnerPacket) {
  Packet p;
  p.size_bytes = 500;
  p.src = 1;
  p.dst = 2;
  encap(p, 10, 20);
  const Addr sender = decap(p);
  EXPECT_EQ(sender, 10u);
  EXPECT_FALSE(p.encapsulated);
  EXPECT_EQ(p.outer_src, kInvalidAddr);
  EXPECT_EQ(p.outer_dst, kInvalidAddr);
  // The inner header is untouched.
  EXPECT_EQ(p.src, 1u);
  EXPECT_EQ(p.dst, 2u);
  EXPECT_EQ(p.wire_bytes(), 500u);
}

TEST(Packet, EncapDecapRoundTripPreservesTag) {
  Packet p;
  p.mifo_tag = true;
  p.size_bytes = 100;
  encap(p, 3, 4);
  decap(p);
  EXPECT_TRUE(p.mifo_tag);
}

TEST(PacketDeathTest, DoubleEncapAborts) {
  Packet p;
  encap(p, 1, 2);
  EXPECT_DEATH(encap(p, 3, 4), "Precondition");
}

TEST(PacketDeathTest, DecapWithoutOuterAborts) {
  Packet p;
  EXPECT_DEATH(decap(p), "Precondition");
}

}  // namespace
}  // namespace mifo::dp
