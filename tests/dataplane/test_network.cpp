#include "dataplane/network.hpp"

#include <gtest/gtest.h>

namespace mifo::dp {
namespace {

TEST(Network, AddressesAreUniqueAcrossNodeKinds) {
  Network net;
  const RouterId r0 = net.add_router(AsId(0));
  const RouterId r1 = net.add_router(AsId(1));
  const HostId h0 = net.add_host();
  EXPECT_NE(net.router_addr(r0), net.router_addr(r1));
  EXPECT_NE(net.router_addr(r0), net.host_addr(h0));
  EXPECT_NE(net.router_addr(r0), kInvalidAddr);
}

TEST(Network, ConnectEbgpSetsRelationshipBothWays) {
  Network net;
  const RouterId a = net.add_router(AsId(0));
  const RouterId b = net.add_router(AsId(1));
  // b's AS is a's customer.
  const auto [pa, pb] = net.connect_ebgp(a, b, topo::Rel::Customer);
  EXPECT_EQ(net.router(a).port(pa).neighbor_rel, topo::Rel::Customer);
  EXPECT_EQ(net.router(b).port(pb).neighbor_rel, topo::Rel::Provider);
  EXPECT_EQ(net.router(a).port(pa).kind, PortKind::Ebgp);
  EXPECT_EQ(net.router(a).port(pa).peer_addr, net.router_addr(b));
  EXPECT_EQ(net.router(a).port(pa).peer_port, pb);
}

TEST(Network, ConnectIbgpRequiresSameAs) {
  Network net;
  const RouterId a = net.add_router(AsId(7));
  const RouterId b = net.add_router(AsId(7));
  const auto [pa, pb] = net.connect_ibgp(a, b);
  EXPECT_EQ(net.router(a).port(pa).kind, PortKind::Ibgp);
  EXPECT_EQ(net.router(b).port(pb).kind, PortKind::Ibgp);
}

TEST(NetworkDeathTest, EbgpWithinSameAsAborts) {
  Network net;
  const RouterId a = net.add_router(AsId(1));
  const RouterId b = net.add_router(AsId(1));
  EXPECT_DEATH(net.connect_ebgp(a, b, topo::Rel::Peer), "Precondition");
}

TEST(Network, PacketTraversesChainToHost) {
  // h1 -- r0 -- r1 -- h2, verify an injected packet arrives and that
  // counters move.
  Network net;
  const RouterId r0 = net.add_router(AsId(0));
  const RouterId r1 = net.add_router(AsId(1));
  const HostId h1 = net.add_host();
  const HostId h2 = net.add_host();
  const PortId p_h1 = net.connect_host(r0, h1);
  const PortId p_h2 = net.connect_host(r1, h2);
  const auto [p01, p10] = net.connect_ebgp(r0, r1, topo::Rel::Peer);
  net.router(r0).fib().set_route(net.host_addr(h2), p01);
  net.router(r1).fib().set_route(net.host_addr(h2), p_h2);
  net.router(r1).fib().set_route(net.host_addr(h1), p10);
  net.router(r0).fib().set_route(net.host_addr(h1), p_h1);

  FlowParams fp;
  fp.src = h1;
  fp.dst = h2;
  fp.size = 5000;  // 5 packets
  net.start_flow(fp);
  net.run_to_completion(10.0);

  ASSERT_EQ(net.flows().size(), 1u);
  EXPECT_TRUE(net.flows()[0].done);
  EXPECT_GT(net.flows()[0].completion_time(), 0.0);
  EXPECT_GE(net.router(r0).counters().forwarded, 5u);
  EXPECT_GE(net.router(r1).counters().forwarded, 5u);
}

TEST(Network, NoRouteDropsCounted) {
  Network net;
  const RouterId r0 = net.add_router(AsId(0));
  const HostId h1 = net.add_host();
  const HostId h2 = net.add_host();
  net.connect_host(r0, h1);
  net.connect_host(r0, h2);
  // No FIB entries at all: data packets die at r0.
  FlowParams fp;
  fp.src = h1;
  fp.dst = h2;
  fp.size = 1000;
  net.start_flow(fp);
  net.run_until(0.1);
  EXPECT_GT(net.router(r0).counters().no_route_drops, 0u);
  EXPECT_FALSE(net.flows()[0].done);
}

TEST(Network, PeriodicCallbackFiresRepeatedly) {
  Network net;
  int fires = 0;
  net.add_periodic(0.1, [&fires](Network&, SimTime) { ++fires; });
  net.run_until(1.05);
  EXPECT_EQ(fires, 10);
}

TEST(Network, DeliveryTraceAccumulatesBytes) {
  Network net;
  const RouterId r0 = net.add_router(AsId(0));
  const HostId h1 = net.add_host();
  const HostId h2 = net.add_host();
  const PortId p1 = net.connect_host(r0, h1);
  const PortId p2 = net.connect_host(r0, h2);
  net.router(r0).fib().set_route(net.host_addr(h2), p2);
  net.router(r0).fib().set_route(net.host_addr(h1), p1);
  net.enable_delivery_trace(0.01);
  FlowParams fp;
  fp.src = h1;
  fp.dst = h2;
  fp.size = 100 * 1000;
  net.start_flow(fp);
  net.run_to_completion(10.0);
  Bytes total = 0;
  for (const Bytes b : net.delivery_buckets()) total += b;
  EXPECT_EQ(total, 100 * 1000u);
}

TEST(Network, RunUntilAdvancesClockWithoutEvents) {
  Network net;
  net.run_until(2.5);
  EXPECT_DOUBLE_EQ(net.now(), 2.5);
}

TEST(Network, TtlExpiryDropsLoopingPacket) {
  // Two routers pointing at each other for a host behind neither.
  Network net;
  const RouterId r0 = net.add_router(AsId(0));
  const RouterId r1 = net.add_router(AsId(1));
  const HostId h1 = net.add_host();
  const HostId h2 = net.add_host();
  net.connect_host(r0, h1);
  net.connect_host(r1, h2);
  const auto [p01, p10] = net.connect_ebgp(r0, r1, topo::Rel::Peer);
  const Addr fake = 0x7fffffff;
  net.router(r0).fib().set_route(fake, p01);
  net.router(r1).fib().set_route(fake, p10);

  Packet p;
  p.src = net.host_addr(h1);
  p.dst = fake;
  p.flow = FlowId(0);
  p.size_bytes = 1000;
  net.router(r0).handle_packet(net, p, PortId::invalid());
  net.run_until(1.0);
  EXPECT_EQ(net.router(r0).counters().ttl_drops +
                net.router(r1).counters().ttl_drops,
            1u);
}

TEST(Network, RunUntilTieBreakIsStableFifo) {
  // Events with identical timestamps must dispatch in creation order
  // (event_seq_ FIFO). The sharded plane's epoch barrier (shard.hpp) relies
  // on this invariant to keep per-shard dispatch deterministic, so a change
  // to EventLater's tie-break is a cross-engine breakage, not a tweak.
  Network net;
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    // Same interval => all eight events carry the same timestamp each round.
    net.add_periodic(0.25, [i, &fired](Network&, SimTime) {
      fired.push_back(i);
    });
  }
  net.run_until(0.25);
  ASSERT_EQ(fired.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(fired[i], i);

  // Each dispatch re-arms in dispatch order, so the order is stable across
  // rounds too — not just for the initially registered batch.
  for (int round = 2; round <= 5; ++round) {
    fired.clear();
    net.run_until(0.25 * round);
    ASSERT_EQ(fired.size(), 8u) << "round " << round;
    for (int i = 0; i < 8; ++i) EXPECT_EQ(fired[i], i) << "round " << round;
  }
}

TEST(Network, RegisterFlowDoesNotSchedule) {
  // register_flow is the shard-replica half of start_flow: the FlowState
  // exists (receiver side needs it) but no FlowStart event is pushed and
  // nothing is ever transmitted from this replica.
  Network net;
  const RouterId r0 = net.add_router(AsId(0));
  const RouterId r1 = net.add_router(AsId(1));
  const HostId h1 = net.add_host();
  const HostId h2 = net.add_host();
  net.connect_host(r0, h1);
  net.connect_host(r1, h2);
  net.connect_ebgp(r0, r1, topo::Rel::Peer);

  FlowParams fp;
  fp.src = h1;
  fp.dst = h2;
  fp.size = 10 * 1000;
  const FlowId id = net.register_flow(fp);
  EXPECT_EQ(net.flows().size(), 1u);
  EXPECT_EQ(net.flow(id).total_pkts, 10u);
  EXPECT_TRUE(net.idle());
  net.run_until(1.0);
  EXPECT_EQ(net.injected_pkts(), 0u);
  EXPECT_FALSE(net.flow(id).started);
}

}  // namespace
}  // namespace mifo::dp
