// AIMD transport behaviour on controlled topologies.

#include <gtest/gtest.h>

#include "dataplane/network.hpp"

namespace mifo::dp {
namespace {

/// h1 -- r0 -- r1 -- h2 chain with configurable middle-link rate.
struct Chain {
  Network net;
  RouterId r0, r1;
  HostId h1, h2;

  explicit Chain(Mbps middle_rate = kGigabit) {
    r0 = net.add_router(AsId(0));
    r1 = net.add_router(AsId(1));
    h1 = net.add_host();
    h2 = net.add_host();
    const PortId p1 = net.connect_host(r0, h1);
    const PortId p2 = net.connect_host(r1, h2);
    const auto [p01, p10] =
        net.connect_ebgp(r0, r1, topo::Rel::Peer, middle_rate);
    net.router(r0).fib().set_route(net.host_addr(h2), p01);
    net.router(r1).fib().set_route(net.host_addr(h2), p2);
    net.router(r1).fib().set_route(net.host_addr(h1), p10);
    net.router(r0).fib().set_route(net.host_addr(h1), p1);
  }

  FlowId flow(Bytes size, SimTime start = 0.0) {
    FlowParams fp;
    fp.src = h1;
    fp.dst = h2;
    fp.size = size;
    fp.start = start;
    return net.start_flow(fp);
  }
};

TEST(Transport, SingleFlowCompletesNearLineRate) {
  Chain c;
  c.flow(10 * kMegaByte);
  c.net.run_to_completion(30.0);
  const auto& f = c.net.flows()[0];
  ASSERT_TRUE(f.done);
  // Loss-free gigabit path: at least 80% of line rate end to end.
  EXPECT_GT(f.achieved_mbps(), 800.0);
  EXPECT_LT(f.achieved_mbps(), 1001.0);
}

TEST(Transport, ThroughputTracksBottleneck) {
  Chain c(100.0);  // 100 Mbps middle link
  c.flow(2 * kMegaByte);
  c.net.run_to_completion(30.0);
  const auto& f = c.net.flows()[0];
  ASSERT_TRUE(f.done);
  EXPECT_GT(f.achieved_mbps(), 60.0);
  EXPECT_LT(f.achieved_mbps(), 101.0);
}

TEST(Transport, TwoFlowsShareBottleneckRoughlyFairly) {
  Chain c;
  const HostId h3 = c.net.add_host();
  const HostId h4 = c.net.add_host();
  const PortId p3 = c.net.connect_host(c.r0, h3);
  const PortId p4 = c.net.connect_host(c.r1, h4);
  const PortId to_r1 = c.net.router(c.r0).fib().lookup(
      c.net.host_addr(c.h2))->out_port;
  c.net.router(c.r0).fib().set_route(c.net.host_addr(h4), to_r1);
  c.net.router(c.r1).fib().set_route(c.net.host_addr(h4), p4);
  const PortId to_r0 = c.net.router(c.r1).fib().lookup(
      c.net.host_addr(c.h1))->out_port;
  c.net.router(c.r1).fib().set_route(c.net.host_addr(h3), to_r0);
  c.net.router(c.r0).fib().set_route(c.net.host_addr(h3), p3);

  c.flow(10 * kMegaByte);
  FlowParams fp;
  fp.src = h3;
  fp.dst = h4;
  fp.size = 10 * kMegaByte;
  c.net.start_flow(fp);
  c.net.run_to_completion(30.0);

  const auto& f0 = c.net.flows()[0];
  const auto& f1 = c.net.flows()[1];
  ASSERT_TRUE(f0.done);
  ASSERT_TRUE(f1.done);
  const double sum = f0.achieved_mbps() + f1.achieved_mbps();
  // Sharing a 1 Gbps bottleneck: aggregate near capacity, neither starved.
  // (Per-flow averages can sum above link rate when one flow finishes first
  // and the other expands into the freed capacity.)
  EXPECT_GT(sum, 700.0);
  EXPECT_LT(sum, 1300.0);
  EXPECT_GT(f0.achieved_mbps(), 150.0);
  EXPECT_GT(f1.achieved_mbps(), 150.0);
}

TEST(Transport, RecoversFromHeavyLossViaRetransmission) {
  // A tiny bottleneck queue forces drops; the flow must still finish and
  // the sender must record retransmissions.
  Chain c(50.0);
  c.net.router(c.r0).port(PortId(1)).queue_capacity_bytes = 5 * 1000;
  c.flow(1 * kMegaByte);
  c.net.run_to_completion(60.0);
  const auto& f = c.net.flows()[0];
  ASSERT_TRUE(f.done);
  EXPECT_GT(f.retransmits, 0u);
}

TEST(Transport, SequentialFlowsViaCompletionCallback) {
  Chain c;
  int started = 0;
  c.net.set_flow_complete_callback([&](Network& net, FlowState& f) {
    if (started < 3) {
      ++started;
      FlowParams fp;
      fp.src = f.params.src;
      fp.dst = f.params.dst;
      fp.size = f.params.size;
      fp.start = net.now();
      net.start_flow(fp);
    }
  });
  c.flow(1 * kMegaByte);
  c.net.run_to_completion(60.0);
  ASSERT_EQ(c.net.flows().size(), 4u);
  for (const auto& f : c.net.flows()) EXPECT_TRUE(f.done);
  // Back-to-back: each starts when the previous one ends.
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GE(c.net.flows()[i].start_time, c.net.flows()[i - 1].end_time);
  }
}

TEST(Transport, CompletionTimeAccountsForStart) {
  Chain c;
  c.flow(1 * kMegaByte, 5.0);
  c.net.run_to_completion(60.0);
  const auto& f = c.net.flows()[0];
  ASSERT_TRUE(f.done);
  EXPECT_GE(f.start_time, 5.0);
  EXPECT_LT(f.completion_time(), 1.0);
}

TEST(Transport, SlowStartThenCongestionAvoidance) {
  Chain c;
  c.flow(10 * kMegaByte);
  c.net.run_to_completion(30.0);
  const auto& f = c.net.flows()[0];
  // After completion the window grew beyond its initial value.
  EXPECT_GT(f.cwnd, 4.0);
}

}  // namespace
}  // namespace mifo::dp
