// Algorithm 1 unit tests: each branch of the MIFO forwarding engine is
// exercised on a hand-built border-router fixture.

#include <gtest/gtest.h>

#include "dataplane/network.hpp"

namespace mifo::dp {
namespace {

// One AS-X border router with:
//   port in_cust : eBGP from a customer AS
//   port in_peer : eBGP from a peer AS
//   port out_def : eBGP default egress
//   port out_alt : eBGP alternative egress towards a *peer* AS
//   port ibgp    : iBGP link to a second router of AS X
// plus a destination FIB entry dst -> (out_def, out_alt or ibgp).
class ForwardingEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rx_ = net_.add_router(AsId(100));      // the router under test
    peer_ibgp_ = net_.add_router(AsId(100));
    cust_ = net_.add_router(AsId(1));
    peer_in_ = net_.add_router(AsId(2));
    def_ = net_.add_router(AsId(3));
    alt_ = net_.add_router(AsId(4));

    in_cust_ = net_.connect_ebgp(cust_, rx_, topo::Rel::Provider).second;
    in_peer_ = net_.connect_ebgp(peer_in_, rx_, topo::Rel::Peer).second;
    out_def_ = net_.connect_ebgp(rx_, def_, topo::Rel::Peer).first;
    out_alt_ = net_.connect_ebgp(rx_, alt_, topo::Rel::Peer).first;
    ibgp_ = net_.connect_ibgp(rx_, peer_ibgp_).first;

    router().config().mifo_enabled = true;
    router().config().congest_threshold = 0.5;
    router().fib().set_route(kDst, out_def_);
  }

  Router& router() { return net_.router(rx_); }

  Packet data_packet(std::uint64_t flow = 1) {
    Packet p;
    p.src = 0x80000001;
    p.dst = kDst;
    p.flow = FlowId(flow);
    p.size_bytes = 1000;
    return p;
  }

  /// Fills the default egress queue past the congestion threshold. The
  /// first packet starts transmitting immediately; the rest stay queued
  /// (no events run), so the queue ratio is deterministic.
  void congest_default() {
    for (int i = 0; i < 61; ++i) {
      Packet filler = data_packet(999);
      net_.transmit_router(rx_, out_def_, filler);
    }
    ASSERT_GE(router().port(out_def_).queue_ratio(), 0.5);
  }

  std::uint64_t sent_on(PortId p) {
    // Queued + already-transmitted packets on that port.
    return net_.router(rx_).port(p).pkts_sent_total +
           net_.router(rx_).port(p).queue.size();
  }

  static constexpr Addr kDst = 0x80000042;

  Network net_;
  RouterId rx_, peer_ibgp_, cust_, peer_in_, def_, alt_;
  PortId in_cust_, in_peer_, out_def_, out_alt_, ibgp_;
};

TEST_F(ForwardingEngineTest, DefaultForwardingWhenUncongested) {
  router().fib().set_alt(kDst, out_alt_);
  router().handle_packet(net_, data_packet(), in_cust_);
  EXPECT_EQ(sent_on(out_def_), 1u);
  EXPECT_EQ(sent_on(out_alt_), 0u);
  EXPECT_EQ(router().counters().deflected, 0u);
}

TEST_F(ForwardingEngineTest, NoRouteDrops) {
  Packet p = data_packet();
  p.dst = 0x80009999;  // no FIB entry
  router().handle_packet(net_, p, in_cust_);
  EXPECT_EQ(router().counters().no_route_drops, 1u);
}

TEST_F(ForwardingEngineTest, CongestionDeflectsWhenTagSet) {
  // Upstream is a customer -> tag=1 -> the peer alternative is admissible.
  router().fib().set_alt(kDst, out_alt_);
  congest_default();
  router().handle_packet(net_, data_packet(), in_cust_);
  EXPECT_EQ(router().counters().deflected, 1u);
  EXPECT_EQ(router().counters().flow_switches, 1u);
  EXPECT_EQ(sent_on(out_alt_), 1u);
  EXPECT_EQ(router().pinned_alt_flows(), 1u);
}

TEST_F(ForwardingEngineTest, TagCheckRefusesPeerToPeerTransit) {
  // Upstream peer (tag=0) + peer alternative: Eq. 3 refuses; the flow
  // stays on the (congested) default by default config.
  router().fib().set_alt(kDst, out_alt_);
  congest_default();
  router().handle_packet(net_, data_packet(), in_peer_);
  EXPECT_EQ(router().counters().deflected, 0u);
  EXPECT_EQ(sent_on(out_alt_), 0u);
  EXPECT_EQ(sent_on(out_def_), 62u);  // 61 fillers + this packet
  EXPECT_EQ(router().pinned_alt_flows(), 0u);
}

TEST_F(ForwardingEngineTest, FaithfulLine20DropsWhenConfigured) {
  router().config().drop_on_congested_no_alt = true;
  router().fib().set_alt(kDst, out_alt_);
  congest_default();
  router().handle_packet(net_, data_packet(), in_peer_);
  EXPECT_EQ(router().counters().valley_drops, 1u);
  EXPECT_EQ(sent_on(out_def_), 61u);  // only the fillers
}

TEST_F(ForwardingEngineTest, HostOriginatedPacketsAreTagged) {
  // Attach a host: packets entering from it behave like customer ingress.
  const HostId h = net_.add_host();
  const PortId host_port = net_.connect_host(rx_, h);
  router().fib().set_alt(kDst, out_alt_);
  congest_default();
  Packet p = data_packet();
  p.src = net_.host_addr(h);
  router().handle_packet(net_, p, host_port);
  EXPECT_EQ(router().counters().deflected, 1u);
  EXPECT_EQ(sent_on(out_alt_), 1u);
}

TEST_F(ForwardingEngineTest, DeflectionViaIbgpEncapsulates) {
  router().fib().set_alt(kDst, ibgp_);
  congest_default();
  router().handle_packet(net_, data_packet(), in_cust_);
  EXPECT_EQ(router().counters().encapsulated, 1u);
  EXPECT_EQ(router().counters().deflected, 1u);
  // The queued packet carries the outer header naming us as sender.
  const auto& q = router().port(ibgp_).queue;
  const Port& p = router().port(ibgp_);
  if (!q.empty()) {
    EXPECT_TRUE(q.front().encapsulated);
    EXPECT_EQ(q.front().outer_src, router().addr());
    EXPECT_EQ(q.front().outer_dst, p.peer_addr);
  } else {
    SUCCEED();  // already in flight; encap counter asserted above
  }
}

TEST_F(ForwardingEngineTest, ReturnedPacketMustDeflect) {
  // Fig. 2(b): this router's default next hop *is* the iBGP sender that
  // deflected the packet to us -> the alternative must be used even though
  // nothing is congested here.
  router().fib().set_route(kDst, ibgp_);  // default via iBGP peer
  router().fib().set_alt(kDst, out_alt_);
  Packet p = data_packet();
  p.mifo_tag = true;  // tagged at the AS entering point upstream
  encap(p, net_.router_addr(peer_ibgp_), net_.router_addr(rx_));
  router().handle_packet(net_, p, ibgp_);
  EXPECT_EQ(router().counters().returned_detected, 1u);
  EXPECT_EQ(router().counters().deflected, 1u);
  EXPECT_EQ(sent_on(out_alt_), 1u);
  EXPECT_EQ(sent_on(ibgp_), 0u);  // never bounced back
}

TEST_F(ForwardingEngineTest, ReturnedPacketWithoutAdmissibleAltDrops) {
  router().fib().set_route(kDst, ibgp_);
  router().fib().set_alt(kDst, out_alt_);
  Packet p = data_packet();
  p.mifo_tag = false;  // entered the AS from a peer/provider upstream
  encap(p, net_.router_addr(peer_ibgp_), net_.router_addr(rx_));
  router().handle_packet(net_, p, ibgp_);
  // Bouncing back would cycle (the sender is the default next hop), and the
  // peer-class alternative fails the Tag-Check: drop.
  EXPECT_EQ(router().counters().valley_drops, 1u);
  EXPECT_EQ(sent_on(ibgp_), 0u);
  EXPECT_EQ(sent_on(out_alt_), 0u);
}

TEST_F(ForwardingEngineTest, ReturnedPacketWithNoAltDrops) {
  router().fib().set_route(kDst, ibgp_);  // default via iBGP peer, no alt
  Packet p = data_packet();
  p.mifo_tag = true;
  encap(p, net_.router_addr(peer_ibgp_), net_.router_addr(rx_));
  router().handle_packet(net_, p, ibgp_);
  EXPECT_EQ(router().counters().valley_drops, 1u);
}

TEST_F(ForwardingEngineTest, FlowPinSticksAfterCongestionClears) {
  router().fib().set_alt(kDst, out_alt_);
  congest_default();
  router().handle_packet(net_, data_packet(7), in_cust_);
  ASSERT_EQ(router().counters().deflected, 1u);
  // Drain everything.
  net_.run_until(1.0);
  ASSERT_LT(router().port(out_def_).queue_ratio(), 0.01);
  // Same flow still deflects (pinned)…
  router().handle_packet(net_, data_packet(7), in_cust_);
  EXPECT_EQ(router().counters().deflected, 2u);
  // …but a new flow takes the (now uncongested) default.
  router().handle_packet(net_, data_packet(8), in_cust_);
  EXPECT_EQ(router().counters().deflected, 2u);
}

TEST_F(ForwardingEngineTest, ReevaluateReleasesPinsWhenDrained) {
  router().fib().set_alt(kDst, out_alt_);
  congest_default();
  router().handle_packet(net_, data_packet(7), in_cust_);
  ASSERT_EQ(router().pinned_alt_flows(), 1u);
  // Rate-utilization says the egress is idle -> pins released.
  router().reevaluate_flows(net_, [](PortId) { return 0.0; });
  EXPECT_EQ(router().pinned_alt_flows(), 0u);
  EXPECT_EQ(router().counters().flow_switches, 2u);  // deflect + return
}

TEST_F(ForwardingEngineTest, ReevaluateKeepsPinsWhileEgressBusy) {
  router().fib().set_alt(kDst, out_alt_);
  congest_default();
  router().handle_packet(net_, data_packet(7), in_cust_);
  router().reevaluate_flows(net_, [](PortId) { return 0.95; });
  EXPECT_EQ(router().pinned_alt_flows(), 1u);
}

TEST_F(ForwardingEngineTest, IdlePinsExpire) {
  router().fib().set_alt(kDst, out_alt_);
  router().config().pin_idle_timeout = 0.5;
  congest_default();
  router().handle_packet(net_, data_packet(7), in_cust_);
  ASSERT_EQ(router().pinned_alt_flows(), 1u);
  net_.run_until(1.0);
  router().reevaluate_flows(net_, [](PortId) { return 0.95; });
  EXPECT_EQ(router().pinned_alt_flows(), 0u);
}

TEST_F(ForwardingEngineTest, EncapForwardedByOuterHeaderWhenNotOurs) {
  // An encapsulated packet whose outer destination is a third router is
  // forwarded by the outer header (non-full-mesh intra topologies).
  const Addr other = net_.router_addr(peer_ibgp_);
  router().fib().set_route(other, ibgp_);
  Packet p = data_packet();
  encap(p, 0x777, other);
  router().handle_packet(net_, p, in_cust_);
  EXPECT_EQ(sent_on(ibgp_), 1u);
  // Still encapsulated in the queue (not decapped here).
  const auto& q = router().port(ibgp_).queue;
  if (!q.empty()) {
    EXPECT_TRUE(q.front().encapsulated);
  }
}

TEST_F(ForwardingEngineTest, TtlDecrementsAndDropsAtZero) {
  Packet p = data_packet();
  p.ttl = 1;
  router().handle_packet(net_, p, in_cust_);  // ttl 1 -> 0, still forwarded
  EXPECT_EQ(router().counters().ttl_drops, 0u);
  Packet q = data_packet();
  q.ttl = 0;
  router().handle_packet(net_, q, in_cust_);
  EXPECT_EQ(router().counters().ttl_drops, 1u);
}

TEST_F(ForwardingEngineTest, NonMifoRouterNeverDeflectsOnCongestion) {
  router().config().mifo_enabled = false;
  router().fib().set_alt(kDst, out_alt_);
  congest_default();
  router().handle_packet(net_, data_packet(), in_cust_);
  EXPECT_EQ(router().counters().deflected, 0u);
  EXPECT_EQ(sent_on(out_def_), 62u);
}

TEST_F(ForwardingEngineTest, NonMifoRouterStillHonoursReturnedRule) {
  // Compatibility: even a BGP-only router must not bounce a deflected
  // packet back to its iBGP sender.
  router().config().mifo_enabled = false;
  router().fib().set_route(kDst, ibgp_);
  router().fib().set_alt(kDst, out_alt_);
  Packet p = data_packet();
  p.mifo_tag = true;
  encap(p, net_.router_addr(peer_ibgp_), net_.router_addr(rx_));
  router().handle_packet(net_, p, ibgp_);
  EXPECT_EQ(router().counters().returned_detected, 1u);
  EXPECT_EQ(sent_on(ibgp_), 0u);
}

}  // namespace
}  // namespace mifo::dp
