#include "dataplane/shard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/network.hpp"
#include "obs/registry.hpp"

namespace mifo::dp {
namespace {

// Builds the same linear topology on a serial Network or a ShardedNetwork
// (identical construction API): one router per AS in a chain of eBGP peer
// links, a host hanging off each end, and static FIB routes in both
// directions. AS ids are spread out so consecutive routers usually hash to
// different shards.
struct Chain {
  std::vector<RouterId> routers;
  HostId h_left;
  HostId h_right;

  template <typename Net>
  static Chain build(Net& net, const std::vector<std::uint32_t>& as_ids,
                     SimTime ebgp_delay = 50e-6) {
    Chain c;
    for (const std::uint32_t as : as_ids) {
      c.routers.push_back(net.add_router(AsId(as)));
    }
    c.h_left = net.add_host();
    c.h_right = net.add_host();
    const PortId p_left = net.connect_host(c.routers.front(), c.h_left);
    const PortId p_right = net.connect_host(c.routers.back(), c.h_right);

    const Addr left = net.host_addr(c.h_left);
    const Addr right = net.host_addr(c.h_right);
    std::vector<std::pair<PortId, PortId>> links;
    for (std::size_t i = 0; i + 1 < c.routers.size(); ++i) {
      links.push_back(net.connect_ebgp(c.routers[i], c.routers[i + 1],
                                       topo::Rel::Peer, kGigabit, ebgp_delay));
    }
    for (std::size_t i = 0; i < c.routers.size(); ++i) {
      auto& fib = net.router(c.routers[i]).fib();
      if (i + 1 < c.routers.size()) fib.set_route(right, links[i].first);
      if (i > 0) fib.set_route(left, links[i - 1].second);
    }
    net.router(c.routers.front()).fib().set_route(left, p_left);
    net.router(c.routers.back()).fib().set_route(right, p_right);
    return c;
  }
};

// Staggered starts keep flows from colliding on identical event timestamps,
// which is what makes serial-vs-sharded comparisons exact (DESIGN.md §6).
template <typename Net>
std::vector<FlowId> start_chain_flows(Net& net, const Chain& c, int n_flows,
                                      Bytes size) {
  std::vector<FlowId> ids;
  for (int i = 0; i < n_flows; ++i) {
    FlowParams fp;
    fp.src = (i % 2 == 0) ? c.h_left : c.h_right;
    fp.dst = (i % 2 == 0) ? c.h_right : c.h_left;
    fp.size = size;
    fp.start = 1e-3 * i;
    ids.push_back(net.start_flow(fp));
  }
  return ids;
}

std::uint64_t drop_total(
    const std::vector<std::pair<std::string, std::uint64_t>>& breakdown) {
  std::uint64_t n = 0;
  for (const auto& [reason, count] : breakdown) n += count;
  return n;
}

// AS ids chosen so a 4-shard FNV partition splits the chain (asserted below).
const std::vector<std::uint32_t> kChainAses = {11, 23, 37, 41, 53, 67};

TEST(ShardedNetwork, PartitionKeepsEachAsOnOneShard) {
  ShardedNetwork net(4);
  const RouterId a0 = net.add_router(AsId(7));
  const RouterId a1 = net.add_router(AsId(7));
  const RouterId b0 = net.add_router(AsId(9));
  const HostId h = net.add_host();
  net.connect_host(a1, h);

  EXPECT_EQ(net.shard_of(a0), net.shard_of(a1));
  EXPECT_EQ(net.shard_of(a0), net.shard_of_as(AsId(7)));
  EXPECT_EQ(net.shard_of(b0), net.shard_of_as(AsId(9)));
  // A host lives where its access router lives.
  EXPECT_EQ(net.shard_of(h), net.shard_of(a1));
}

TEST(ShardedNetwork, ChainTopologyActuallyCrossesShards) {
  // Guards the fixture itself: if kChainAses ever degenerates to one shard,
  // every "sharded" test below would be vacuously serial.
  ShardedNetwork net(4);
  Chain c = Chain::build(net, kChainAses);
  bool crosses = false;
  for (std::size_t i = 0; i + 1 < c.routers.size(); ++i) {
    crosses |= net.shard_of(c.routers[i]) != net.shard_of(c.routers[i + 1]);
  }
  EXPECT_TRUE(crosses);
}

TEST(ShardedNetwork, CrossShardFlowCompletes) {
  ShardedNetwork net(4);
  Chain c = Chain::build(net, kChainAses);
  FlowParams fp;
  fp.src = c.h_left;
  fp.dst = c.h_right;
  fp.size = 50 * 1000;  // 50 packets
  const FlowId id = net.start_flow(fp);
  net.run_to_completion(10.0);

  EXPECT_TRUE(net.idle());
  EXPECT_TRUE(net.sender_flow(id).done);
  EXPECT_GT(net.sender_flow(id).completion_time(), 0.0);
  EXPECT_EQ(net.receiver_flow(id).expected, 50u);
  // The conservative window derives from the narrowest cross-shard link.
  EXPECT_DOUBLE_EQ(net.window(), 50e-6);
  // Data and ACKs really crossed rings.
  std::uint64_t pushed = 0;
  for (const RingStats& rs : net.ring_stats()) pushed += rs.pushed;
  EXPECT_GT(pushed, 0u);
}

TEST(ShardedNetwork, MatchesSerialOracleAtEveryThreadCount) {
  // The serial engine is the oracle: delivered/injected totals, per-flow
  // receiver counts, completion times (bit-exact) and the full drop
  // breakdown must agree at every shard count.
  Network oracle;
  Chain oc = Chain::build(oracle, kChainAses);
  const auto oracle_ids = start_chain_flows(oracle, oc, 4, 30 * 1000);
  oracle.run_to_completion(20.0);
  ASSERT_TRUE(oracle.idle());

  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedNetwork net(shards);
    Chain c = Chain::build(net, kChainAses);
    const auto ids = start_chain_flows(net, c, 4, 30 * 1000);
    net.run_to_completion(20.0);
    ASSERT_TRUE(net.idle());

    EXPECT_EQ(net.injected_pkts(), oracle.injected_pkts());
    EXPECT_EQ(net.delivered_pkts(), oracle.delivered_pkts());
    EXPECT_EQ(net.misdelivered_pkts(), oracle.misdelivered_pkts());
    EXPECT_EQ(net.stale_flow_pkts(), oracle.stale_flow_pkts());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const FlowState& of = oracle.flow(oracle_ids[i]);
      EXPECT_TRUE(net.sender_flow(ids[i]).done);
      EXPECT_EQ(net.sender_flow(ids[i]).end_time, of.end_time);
      EXPECT_EQ(net.sender_flow(ids[i]).retransmits, of.retransmits);
      EXPECT_EQ(net.receiver_flow(ids[i]).expected, of.total_pkts);
    }
    const auto ob = oracle.drop_breakdown();
    const auto sb = net.drop_breakdown();
    ASSERT_EQ(sb.size(), ob.size() + 1);  // + ring_overflow
    for (std::size_t i = 0; i < ob.size(); ++i) {
      EXPECT_EQ(sb[i].first, ob[i].first);
      EXPECT_EQ(sb[i].second, ob[i].second) << sb[i].first;
    }
    EXPECT_EQ(sb.back().first, "ring_overflow");
    EXPECT_EQ(sb.back().second, 0u);
  }
}

TEST(ShardedNetwork, RepeatedRunsAreDeterministic) {
  auto run_once = [] {
    ShardedNetwork net(4);
    Chain c = Chain::build(net, kChainAses);
    const auto ids = start_chain_flows(net, c, 6, 40 * 1000);
    net.run_to_completion(20.0);
    std::vector<double> fingerprint;
    fingerprint.push_back(static_cast<double>(net.delivered_pkts()));
    fingerprint.push_back(static_cast<double>(net.injected_pkts()));
    for (const FlowId id : ids) {
      fingerprint.push_back(net.sender_flow(id).end_time);
    }
    for (const auto& [reason, count] : net.drop_breakdown()) {
      fingerprint.push_back(static_cast<double>(count));
    }
    for (const RingStats& rs : net.ring_stats()) {
      fingerprint.push_back(static_cast<double>(rs.pushed));
    }
    return fingerprint;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ShardedNetwork, RingOverflowDropsAreAccountedAndConserved) {
  // A 2-entry ring under a multi-packet window forces overflow: the drops
  // must surface in the breakdown and packet conservation must still close.
  ShardConfig cfg;
  cfg.ring_capacity = 2;
  ShardedNetwork net(4, cfg);
  Chain c = Chain::build(net, kChainAses);
  const auto ids = start_chain_flows(net, c, 2, 100 * 1000);
  net.run_to_completion(120.0);
  ASSERT_TRUE(net.idle());

  const auto breakdown = net.drop_breakdown();
  ASSERT_EQ(breakdown.back().first, "ring_overflow");
  EXPECT_GT(breakdown.back().second, 0u);
  // AIMD throttles to what the ring lets through, so flows still finish.
  for (const FlowId id : ids) EXPECT_TRUE(net.sender_flow(id).done);
  // injected == delivered + misdelivered + stale + every drop bucket.
  EXPECT_EQ(net.injected_pkts(),
            net.delivered_pkts() + drop_total(breakdown));
  EXPECT_EQ(net.queued_pkts(), 0u);
}

TEST(ShardedNetwork, ConservationHoldsAtEveryThreadCount) {
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedNetwork net(shards);
    Chain c = Chain::build(net, kChainAses);
    start_chain_flows(net, c, 4, 30 * 1000);
    net.run_to_completion(20.0);
    ASSERT_TRUE(net.idle());
    // The breakdown already contains the misdelivered/stale buckets.
    EXPECT_EQ(net.injected_pkts(),
              net.delivered_pkts() + drop_total(net.drop_breakdown()));
    EXPECT_EQ(net.queued_pkts(), 0u);
  }
}

TEST(ShardedNetwork, PeriodicFiresOnOwningShardAtExactTimes) {
  ShardedNetwork net(4);
  Chain c = Chain::build(net, kChainAses);
  int fires = 0;
  std::vector<SimTime> at;
  net.add_periodic(AsId(kChainAses[2]), 0.1,
                   [&](Network&, SimTime now) {
                     ++fires;
                     at.push_back(now);
                   });
  net.run_until(1.05);
  EXPECT_EQ(fires, 10);
  for (int i = 0; i < fires; ++i) EXPECT_DOUBLE_EQ(at[i], 0.1 * (i + 1));
  EXPECT_DOUBLE_EQ(net.now(), 1.05);
}

TEST(ShardedNetwork, SegmentedRunsAllowParkedControlPlane) {
  // run_until segments with FIB surgery in between — the sharded plane's
  // management-thread moment (set_port_up / router() edits while parked).
  ShardedNetwork net(4);
  Chain c = Chain::build(net, kChainAses);
  FlowParams fp;
  fp.src = c.h_left;
  fp.dst = c.h_right;
  fp.size = 2 * 1000 * 1000;  // long enough to straddle all three segments
  const FlowId id = net.start_flow(fp);

  net.run_until(0.005);
  const std::uint64_t mid = net.delivered_pkts();
  // Cut the first eBGP hop; traffic must stop making progress.
  const PortId cut =
      net.router(c.routers[0]).fib().lookup(net.host_addr(c.h_right))->out_port;
  net.set_port_up(c.routers[0], cut, false);
  net.run_until(0.05);
  net.set_port_up(c.routers[0], cut, true);
  net.run_to_completion(60.0);
  EXPECT_TRUE(net.sender_flow(id).done);
  EXPECT_GT(net.delivered_pkts(), mid);
  const auto breakdown = net.drop_breakdown();
  std::uint64_t down = 0;
  for (const auto& [reason, count] : breakdown) {
    if (reason == "link_down") down = count;
  }
  EXPECT_GT(down, 0u);
}

TEST(ShardedNetwork, GatherRoutersReturnsOwnedState) {
  ShardedNetwork net(4);
  Chain c = Chain::build(net, kChainAses);
  FlowParams fp;
  fp.src = c.h_left;
  fp.dst = c.h_right;
  fp.size = 20 * 1000;
  net.start_flow(fp);
  net.run_to_completion(10.0);

  const std::vector<Router> routers = net.gather_routers();
  ASSERT_EQ(routers.size(), c.routers.size());
  std::uint64_t forwarded = 0;
  for (const Router& r : routers) forwarded += r.counters().forwarded;
  EXPECT_EQ(forwarded, net.total_counters().forwarded);
  EXPECT_GT(forwarded, 0u);  // the copies carry real (owner-shard) state
}

TEST(ShardedNetwork, PublishMetricsMergesReplicaShardsAndExportsRingGauges) {
  ShardedNetwork net(4);
  Chain c = Chain::build(net, kChainAses);
  start_chain_flows(net, c, 4, 30 * 1000);
  net.run_to_completion(10.0);

  obs::Registry reg;
  net.publish_metrics(reg, "eng=sharded");
  const obs::Snapshot snap = reg.snapshot();

  EXPECT_EQ(snap.value_or("dp.num_shards", -1.0, "eng=sharded"), 4.0);
  EXPECT_EQ(snap.value_or("dp.shard_window_seconds", -1.0, "eng=sharded"),
            net.window());
  // Each replica published its own registry shard; snapshot() sums them, so
  // the merged counters must equal the engine-level aggregates.
  EXPECT_EQ(snap.value_or("dp.injected", -1.0, "eng=sharded"),
            static_cast<double>(net.injected_pkts()));
  EXPECT_EQ(snap.value_or("dp.delivered", -1.0, "eng=sharded"),
            static_cast<double>(net.delivered_pkts()));
  EXPECT_EQ(snap.value_or("dp.forwarded", -1.0, "eng=sharded"),
            static_cast<double>(net.total_counters().forwarded));

  // Ring gauges appear per directed shard pair and sum to the engine's
  // ring_stats() view.
  double pushed = 0.0;
  std::uint64_t expected_pushed = 0;
  for (const RingStats& rs : net.ring_stats()) {
    const std::string l = "eng=sharded,from=" + std::to_string(rs.from) +
                          ",to=" + std::to_string(rs.to);
    EXPECT_EQ(snap.value_or("dp.ring_occupancy_peak", -1.0, l),
              static_cast<double>(rs.peak));
    pushed += snap.value_or("dp.ring_pushed", 0.0, l);
    expected_pushed += rs.pushed;
  }
  EXPECT_GT(expected_pushed, 0u);
  EXPECT_EQ(pushed, static_cast<double>(expected_pushed));
}

TEST(ShardedNetworkDeathTest, WindowOverrideAboveLinkDelayAborts) {
  ShardConfig cfg;
  cfg.window = 1.0;  // way above the 50us cross-shard delay
  ShardedNetwork net(4, cfg);
  Chain::build(net, kChainAses);
  EXPECT_DEATH(net.run_until(0.01), "Precondition");
}

}  // namespace
}  // namespace mifo::dp
