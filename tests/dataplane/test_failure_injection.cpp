// Failure-injection tests: downed links, blackholes and pathological FIBs.
// The transport and forwarding engine must degrade gracefully (stall,
// retry, recover) rather than wedge or crash.

#include <gtest/gtest.h>

#include "dataplane/network.hpp"

namespace mifo::dp {
namespace {

struct Chain {
  Network net;
  RouterId r0, r1;
  HostId h1, h2;
  PortId p01, p10;

  Chain() {
    r0 = net.add_router(AsId(0));
    r1 = net.add_router(AsId(1));
    h1 = net.add_host();
    h2 = net.add_host();
    const PortId ph1 = net.connect_host(r0, h1);
    const PortId ph2 = net.connect_host(r1, h2);
    std::tie(p01, p10) = net.connect_ebgp(r0, r1, topo::Rel::Peer);
    net.router(r0).fib().set_route(net.host_addr(h2), p01);
    net.router(r1).fib().set_route(net.host_addr(h2), ph2);
    net.router(r1).fib().set_route(net.host_addr(h1), p10);
    net.router(r0).fib().set_route(net.host_addr(h1), ph1);
  }
};

TEST(FailureInjection, FlowSurvivesTransientLinkOutage) {
  Chain c;
  FlowParams fp;
  fp.src = c.h1;
  fp.dst = c.h2;
  fp.size = 2 * kMegaByte;
  c.net.start_flow(fp);

  // Let it ramp, then pull the cable for 100 ms.
  c.net.run_until(0.004);
  c.net.router(c.r0).port(c.p01).up = false;
  c.net.run_until(0.104);
  c.net.router(c.r0).port(c.p01).up = true;
  c.net.run_to_completion(30.0);

  const auto& f = c.net.flows()[0];
  ASSERT_TRUE(f.done);
  EXPECT_GT(f.retransmits, 0u);
  EXPECT_GT(c.net.router(c.r0).port(c.p01).drops_down, 0u);
  // The outage costs roughly its duration plus RTO recovery, not minutes.
  EXPECT_LT(f.completion_time(), 1.0);
}

TEST(FailureInjection, ReverseAckPathOutageAlsoRecovers) {
  Chain c;
  FlowParams fp;
  fp.src = c.h1;
  fp.dst = c.h2;
  fp.size = kMegaByte;
  c.net.start_flow(fp);
  c.net.run_until(0.002);
  c.net.router(c.r1).port(c.p10).up = false;  // kill the ACK direction
  c.net.run_until(0.052);
  c.net.router(c.r1).port(c.p10).up = true;
  c.net.run_to_completion(30.0);
  ASSERT_TRUE(c.net.flows()[0].done);
}

TEST(FailureInjection, PermanentBlackholeNeverCompletesButNeverWedges) {
  Chain c;
  FlowParams fp;
  fp.src = c.h1;
  fp.dst = c.h2;
  fp.size = kMegaByte;
  c.net.start_flow(fp);
  c.net.run_until(0.002);
  c.net.router(c.r0).port(c.p01).up = false;
  // Run far: the sender must keep backing off on its timer without the
  // event loop exploding.
  c.net.run_until(5.0);
  EXPECT_FALSE(c.net.flows()[0].done);
  EXPECT_GT(c.net.router(c.r0).port(c.p01).drops_down, 0u);
}

TEST(FailureInjection, MisconfiguredAltPortToHostLinkIsHarmless) {
  // A buggy daemon programs the alt port at the destination's access link;
  // the engine treats Host-kind defaults as non-deflectable.
  Chain c;
  c.net.router(c.r1).config().mifo_enabled = true;
  const Addr dst = c.net.host_addr(c.h2);
  const auto fe = c.net.router(c.r1).fib().lookup(dst);
  ASSERT_TRUE(fe.has_value());
  c.net.router(c.r1).fib().set_alt(dst, c.p10);  // nonsense alternative
  FlowParams fp;
  fp.src = c.h1;
  fp.dst = c.h2;
  fp.size = 200 * 1000;
  c.net.start_flow(fp);
  c.net.run_to_completion(30.0);
  EXPECT_TRUE(c.net.flows()[0].done);
}

TEST(FailureInjection, ZeroByteQueueDropsEverything) {
  Chain c;
  c.net.router(c.r0).port(c.p01).queue_capacity_bytes = 0;
  FlowParams fp;
  fp.src = c.h1;
  fp.dst = c.h2;
  fp.size = 100 * 1000;
  c.net.start_flow(fp);
  c.net.run_until(1.0);
  EXPECT_FALSE(c.net.flows()[0].done);
  EXPECT_GT(c.net.router(c.r0).port(c.p01).drops_overflow, 0u);
}

}  // namespace
}  // namespace mifo::dp
