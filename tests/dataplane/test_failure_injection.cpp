// Failure-injection tests: downed links, blackholes and pathological FIBs.
// The transport and forwarding engine must degrade gracefully (stall,
// retry, recover) rather than wedge or crash.

#include <gtest/gtest.h>

#include "dataplane/network.hpp"

namespace mifo::dp {
namespace {

struct Chain {
  Network net;
  RouterId r0, r1;
  HostId h1, h2;
  PortId p01, p10;

  Chain() {
    r0 = net.add_router(AsId(0));
    r1 = net.add_router(AsId(1));
    h1 = net.add_host();
    h2 = net.add_host();
    const PortId ph1 = net.connect_host(r0, h1);
    const PortId ph2 = net.connect_host(r1, h2);
    std::tie(p01, p10) = net.connect_ebgp(r0, r1, topo::Rel::Peer);
    net.router(r0).fib().set_route(net.host_addr(h2), p01);
    net.router(r1).fib().set_route(net.host_addr(h2), ph2);
    net.router(r1).fib().set_route(net.host_addr(h1), p10);
    net.router(r0).fib().set_route(net.host_addr(h1), ph1);
  }
};

TEST(FailureInjection, FlowSurvivesTransientLinkOutage) {
  Chain c;
  FlowParams fp;
  fp.src = c.h1;
  fp.dst = c.h2;
  fp.size = 2 * kMegaByte;
  c.net.start_flow(fp);

  // Let it ramp, then pull the cable for 100 ms.
  c.net.run_until(0.004);
  c.net.router(c.r0).port(c.p01).up = false;
  c.net.run_until(0.104);
  c.net.router(c.r0).port(c.p01).up = true;
  c.net.run_to_completion(30.0);

  const auto& f = c.net.flows()[0];
  ASSERT_TRUE(f.done);
  EXPECT_GT(f.retransmits, 0u);
  EXPECT_GT(c.net.router(c.r0).port(c.p01).drops_down, 0u);
  // The outage costs roughly its duration plus RTO recovery, not minutes.
  EXPECT_LT(f.completion_time(), 1.0);
}

TEST(FailureInjection, ReverseAckPathOutageAlsoRecovers) {
  Chain c;
  FlowParams fp;
  fp.src = c.h1;
  fp.dst = c.h2;
  fp.size = kMegaByte;
  c.net.start_flow(fp);
  c.net.run_until(0.002);
  c.net.router(c.r1).port(c.p10).up = false;  // kill the ACK direction
  c.net.run_until(0.052);
  c.net.router(c.r1).port(c.p10).up = true;
  c.net.run_to_completion(30.0);
  ASSERT_TRUE(c.net.flows()[0].done);
}

TEST(FailureInjection, PermanentBlackholeNeverCompletesButNeverWedges) {
  Chain c;
  FlowParams fp;
  fp.src = c.h1;
  fp.dst = c.h2;
  fp.size = kMegaByte;
  c.net.start_flow(fp);
  c.net.run_until(0.002);
  c.net.router(c.r0).port(c.p01).up = false;
  // Run far: the sender must keep backing off on its timer without the
  // event loop exploding.
  c.net.run_until(5.0);
  EXPECT_FALSE(c.net.flows()[0].done);
  EXPECT_GT(c.net.router(c.r0).port(c.p01).drops_down, 0u);
}

TEST(FailureInjection, MisconfiguredAltPortToHostLinkIsHarmless) {
  // A buggy daemon programs the alt port at the destination's access link;
  // the engine treats Host-kind defaults as non-deflectable.
  Chain c;
  c.net.router(c.r1).config().mifo_enabled = true;
  const Addr dst = c.net.host_addr(c.h2);
  const auto fe = c.net.router(c.r1).fib().lookup(dst);
  ASSERT_TRUE(fe.has_value());
  c.net.router(c.r1).fib().set_alt(dst, c.p10);  // nonsense alternative
  FlowParams fp;
  fp.src = c.h1;
  fp.dst = c.h2;
  fp.size = 200 * 1000;
  c.net.start_flow(fp);
  c.net.run_to_completion(30.0);
  EXPECT_TRUE(c.net.flows()[0].done);
}

TEST(FailureInjection, DownIntervalDropsAttributedToDownNotOverflow) {
  // Regression: packets queued behind a link when the cable is pulled must
  // be charged to the down interval (drops_down), never folded into
  // queue_overflow — set_port_up discards the backlog immediately.
  Chain c;
  Port& p = c.net.router(c.r0).port(c.p01);
  p.rate = 100.0;  // 10:1 bottleneck: the egress queue holds a real backlog
  FlowParams fp;
  fp.src = c.h1;
  fp.dst = c.h2;
  fp.size = 2 * kMegaByte;
  c.net.start_flow(fp);

  c.net.run_until(0.004);  // ramp until a backlog sits in the egress queue
  ASSERT_GT(p.queue.size(), 0u);
  const std::uint64_t overflow_before = p.drops_overflow;

  c.net.set_port_up(c.r0, c.p01, false);
  // The queued backlog is discarded as down-drops at the flap instant...
  EXPECT_EQ(p.queue.size(), 0u);
  EXPECT_EQ(p.queue_bytes, 0u);
  const std::uint64_t down_at_flap = p.drops_down;
  EXPECT_GT(down_at_flap, 0u);
  // ...and retransmissions during the outage keep accruing there.
  c.net.run_until(0.104);
  EXPECT_GT(p.drops_down, down_at_flap);
  EXPECT_EQ(p.drops_overflow, overflow_before);

  c.net.set_port_up(c.r0, c.p01, true);
  c.net.run_to_completion(30.0);
  ASSERT_TRUE(c.net.flows()[0].done);
  EXPECT_EQ(p.drops_overflow, overflow_before);

  // The breakdown keeps the buckets distinct too.
  std::uint64_t down_bucket = 0;
  for (const auto& [reason, count] : c.net.drop_breakdown()) {
    if (reason == "link_down") down_bucket = count;
  }
  EXPECT_EQ(down_bucket, p.drops_down);
}

TEST(FailureInjection, MidTransmissionFlapFlushesBacklogAtTxDone) {
  // Pulling the cable via the raw flag (no flush) must still not leak the
  // backlog: the in-flight TxDone notices the port is down and discards
  // the queue into drops_down instead of restarting transmission.
  Chain c;
  Port& p = c.net.router(c.r0).port(c.p01);
  p.rate = 100.0;
  FlowParams fp;
  fp.src = c.h1;
  fp.dst = c.h2;
  fp.size = kMegaByte;
  c.net.start_flow(fp);
  c.net.run_until(0.004);
  ASSERT_GT(p.queue.size(), 0u);
  p.up = false;  // legacy direct flip, mid-transmission
  c.net.run_until(0.02);
  EXPECT_EQ(p.queue.size(), 0u);
  EXPECT_EQ(p.queue_bytes, 0u);
  EXPECT_GT(p.drops_down, 0u);
  p.up = true;
  c.net.run_to_completion(30.0);
  EXPECT_TRUE(c.net.flows()[0].done);
}

TEST(FailureInjection, ZeroByteQueueDropsEverything) {
  Chain c;
  c.net.router(c.r0).port(c.p01).queue_capacity_bytes = 0;
  FlowParams fp;
  fp.src = c.h1;
  fp.dst = c.h2;
  fp.size = 100 * 1000;
  c.net.start_flow(fp);
  c.net.run_until(1.0);
  EXPECT_FALSE(c.net.flows()[0].done);
  EXPECT_GT(c.net.router(c.r0).port(c.p01).drops_overflow, 0u);
}

}  // namespace
}  // namespace mifo::dp
