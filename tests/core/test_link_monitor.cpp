#include "core/link_monitor.hpp"

#include <gtest/gtest.h>

namespace mifo::core {
namespace {

struct Fixture {
  dp::Network net;
  RouterId r0, r1;
  PortId p01;

  Fixture() {
    r0 = net.add_router(AsId(0));
    r1 = net.add_router(AsId(1));
    p01 = net.connect_ebgp(r0, r1, topo::Rel::Peer).first;
  }

  void push_bytes(std::uint64_t n) {
    // Account bytes directly on the port counter (the monitor only reads
    // counters, not queues).
    net.router(r0).port(p01).bytes_sent_total += n;
  }
};

TEST(LinkMonitor, FirstSamplePrimesWithFullSpare) {
  Fixture f;
  LinkMonitor mon;
  const auto m = mon.sample(f.net, f.r0, f.p01, 0.0);
  EXPECT_DOUBLE_EQ(m.rate, 0.0);
  EXPECT_DOUBLE_EQ(m.spare, kGigabit);
}

TEST(LinkMonitor, RateFromByteDelta) {
  Fixture f;
  LinkMonitor mon;
  mon.sample(f.net, f.r0, f.p01, 0.0);
  // 12.5 MB in 0.1 s = 1 Gbps.
  f.push_bytes(12'500'000);
  const auto m = mon.sample(f.net, f.r0, f.p01, 0.1);
  EXPECT_NEAR(m.rate, 1000.0, 1e-6);
  EXPECT_NEAR(m.spare, 0.0, 1e-6);
}

TEST(LinkMonitor, HalfUtilizedLinkHasHalfSpare) {
  Fixture f;
  LinkMonitor mon;
  mon.sample(f.net, f.r0, f.p01, 0.0);
  f.push_bytes(6'250'000);  // 500 Mbps over 0.1 s
  const auto m = mon.sample(f.net, f.r0, f.p01, 0.1);
  EXPECT_NEAR(m.rate, 500.0, 1e-6);
  EXPECT_NEAR(m.spare, 500.0, 1e-6);
}

TEST(LinkMonitor, SpareFlooredAtZero) {
  Fixture f;
  LinkMonitor mon;
  mon.sample(f.net, f.r0, f.p01, 0.0);
  f.push_bytes(50'000'000);  // 4 Gbps burst over 0.1 s window
  const auto m = mon.sample(f.net, f.r0, f.p01, 0.1);
  EXPECT_DOUBLE_EQ(m.spare, 0.0);
}

TEST(LinkMonitor, LastReturnsPreviousMeasurement) {
  Fixture f;
  LinkMonitor mon;
  // Before any sample: full spare.
  EXPECT_DOUBLE_EQ(mon.last(f.net, f.r0, f.p01).spare, kGigabit);
  mon.sample(f.net, f.r0, f.p01, 0.0);
  f.push_bytes(6'250'000);
  mon.sample(f.net, f.r0, f.p01, 0.1);
  EXPECT_NEAR(mon.last(f.net, f.r0, f.p01).rate, 500.0, 1e-6);
}

TEST(LinkMonitor, ZeroElapsedKeepsMeasurement) {
  Fixture f;
  LinkMonitor mon;
  mon.sample(f.net, f.r0, f.p01, 0.0);
  f.push_bytes(1000);
  const auto m = mon.sample(f.net, f.r0, f.p01, 0.0);  // same instant
  EXPECT_DOUBLE_EQ(m.rate, 0.0);
}

TEST(LinkMonitor, WindowsAreIndependentPerPort) {
  Fixture f;
  const PortId p2 = f.net.connect_ebgp(f.r0, f.net.add_router(AsId(2)),
                                       topo::Rel::Peer)
                        .first;
  LinkMonitor mon;
  mon.sample(f.net, f.r0, f.p01, 0.0);
  mon.sample(f.net, f.r0, p2, 0.0);
  f.push_bytes(6'250'000);  // only p01
  EXPECT_NEAR(mon.sample(f.net, f.r0, f.p01, 0.1).rate, 500.0, 1e-6);
  EXPECT_NEAR(mon.sample(f.net, f.r0, p2, 0.1).rate, 0.0, 1e-6);
}

}  // namespace
}  // namespace mifo::core
