#include "core/daemon.hpp"

#include <gtest/gtest.h>

namespace mifo::core {
namespace {

// AS 0 with three border routers: Ra faces AS1 (default), Rb faces AS2,
// Rc faces AS3 (both alternatives). Full iBGP mesh.
struct DaemonFixture : ::testing::Test {
  dp::Network net;
  RouterId ra, rb, rc, x1, x2, x3;
  PortId e1, e2, e3;  // eBGP egress ports on ra/rb/rc
  AsWiring wiring;
  static constexpr dp::Addr kPrefix = 0x80000123;

  void SetUp() override {
    ra = net.add_router(AsId(0));
    rb = net.add_router(AsId(0));
    rc = net.add_router(AsId(0));
    x1 = net.add_router(AsId(1));
    x2 = net.add_router(AsId(2));
    x3 = net.add_router(AsId(3));
    e1 = net.connect_ebgp(ra, x1, topo::Rel::Peer).first;
    e2 = net.connect_ebgp(rb, x2, topo::Rel::Peer).first;
    e3 = net.connect_ebgp(rc, x3, topo::Rel::Peer).first;

    wiring.as = AsId(0);
    wiring.routers = {ra, rb, rc};
    wiring.egresses = {{AsId(1), ra, e1, topo::Rel::Peer},
                       {AsId(2), rb, e2, topo::Rel::Peer},
                       {AsId(3), rc, e3, topo::Rel::Peer}};
    for (auto [a, b] : {std::pair{ra, rb}, {ra, rc}, {rb, rc}}) {
      const auto [pa, pb] = net.connect_ibgp(a, b);
      wiring.intra.push_back({a, b, pa});
      wiring.intra.push_back({b, a, pb});
    }

    // Default route for the prefix: egress via ra/e1.
    net.router(ra).fib().set_route(kPrefix, e1);
    net.router(rb).fib().set_route(kPrefix, wiring.intra_port(rb, ra));
    net.router(rc).fib().set_route(kPrefix, wiring.intra_port(rc, ra));
  }

  std::vector<PrefixRoutes> prefixes() {
    return {PrefixRoutes{kPrefix, AsId(1), {AsId(2), AsId(3)}}};
  }

  void load_egress(PortId port, RouterId router, std::uint64_t bytes) {
    net.router(router).port(port).bytes_sent_total += bytes;
  }
};

TEST_F(DaemonFixture, WiringLookupHelpers) {
  EXPECT_EQ(wiring.egress_to(AsId(2))->router, rb);
  EXPECT_EQ(wiring.egress_to(AsId(9)), nullptr);
  EXPECT_TRUE(wiring.intra_port(ra, rb).valid());
  EXPECT_FALSE(wiring.intra_port(ra, ra).valid());
}

TEST_F(DaemonFixture, ElectsAlternativeAndProgramsAllFibs) {
  MifoDaemon daemon(wiring, prefixes());
  daemon.tick(net, 0.0);
  // Ties broken towards the lower AS id: AS2.
  EXPECT_EQ(daemon.elected_alt(kPrefix), AsId(2));
  // rb (the alt egress) points at its own eBGP port; others at intra links
  // towards rb.
  EXPECT_EQ(net.router(rb).fib().lookup(kPrefix)->alt_port, e2);
  EXPECT_EQ(net.router(ra).fib().lookup(kPrefix)->alt_port,
            wiring.intra_port(ra, rb));
  EXPECT_EQ(net.router(rc).fib().lookup(kPrefix)->alt_port,
            wiring.intra_port(rc, rb));
}

TEST_F(DaemonFixture, GreedyPrefersMostSpareCapacity) {
  MifoDaemon daemon(wiring, prefixes());
  daemon.tick(net, 0.0);  // primes the monitor
  // Load AS2's egress at ~800 Mbps over the next window; AS3 stays idle.
  load_egress(e2, rb, 10'000'000);
  daemon.tick(net, 0.1);
  EXPECT_EQ(daemon.elected_alt(kPrefix), AsId(3));
  EXPECT_EQ(net.router(rc).fib().lookup(kPrefix)->alt_port, e3);
  EXPECT_EQ(net.router(ra).fib().lookup(kPrefix)->alt_port,
            wiring.intra_port(ra, rc));
}

TEST_F(DaemonFixture, ReElectionFollowsLoadShifts) {
  MifoDaemon daemon(wiring, prefixes());
  daemon.tick(net, 0.0);
  load_egress(e2, rb, 10'000'000);
  daemon.tick(net, 0.1);
  ASSERT_EQ(daemon.elected_alt(kPrefix), AsId(3));
  // Load moves to AS3's egress; AS2 drains.
  load_egress(e3, rc, 10'000'000);
  daemon.tick(net, 0.2);
  EXPECT_EQ(daemon.elected_alt(kPrefix), AsId(2));
}

TEST_F(DaemonFixture, PrefixWithoutAlternativesLeftAlone) {
  std::vector<PrefixRoutes> pr{PrefixRoutes{kPrefix, AsId(1), {}}};
  MifoDaemon daemon(wiring, pr);
  daemon.tick(net, 0.0);
  EXPECT_FALSE(daemon.elected_alt(kPrefix).valid());
  EXPECT_FALSE(net.router(ra).fib().lookup(kPrefix)->alt_port.valid());
}

TEST_F(DaemonFixture, LocalPrefixNeverGetsAltPort) {
  std::vector<PrefixRoutes> pr{
      PrefixRoutes{kPrefix, AsId::invalid(), {AsId(2)}}};
  MifoDaemon daemon(wiring, pr);
  daemon.tick(net, 0.0);
  EXPECT_FALSE(net.router(ra).fib().lookup(kPrefix)->alt_port.valid());
}

TEST_F(DaemonFixture, TickRunsFlowReevaluation) {
  // A pin on ra with idle egresses must be released by the tick.
  net.router(ra).config().mifo_enabled = true;
  net.router(ra).fib().set_alt(kPrefix, wiring.intra_port(ra, rb));
  // Congest, then handle one packet to create a pin.
  for (int i = 0; i < 61; ++i) {
    dp::Packet filler;
    filler.dst = kPrefix;
    filler.flow = FlowId(99);
    filler.size_bytes = 1000;
    net.transmit_router(ra, e1, filler);
  }
  dp::Packet p;
  p.dst = kPrefix;
  p.flow = FlowId(7);
  p.size_bytes = 1000;
  p.mifo_tag = true;
  net.router(ra).handle_packet(net, p, PortId::invalid());
  ASSERT_EQ(net.router(ra).pinned_alt_flows(), 1u);

  MifoDaemon daemon(wiring, prefixes());
  daemon.tick(net, 0.0);  // prime: rates measure 0 -> egresses idle
  EXPECT_EQ(net.router(ra).pinned_alt_flows(), 0u);
}

}  // namespace
}  // namespace mifo::core
