#include "core/walk.hpp"

#include <gtest/gtest.h>

#include "topo/relationship.hpp"

namespace mifo::core {
namespace {

using topo::AsGraph;

AsGraph fig2a() {
  AsGraph g(4);
  g.add_provider_customer(AsId(1), AsId(0));
  g.add_provider_customer(AsId(2), AsId(0));
  g.add_provider_customer(AsId(3), AsId(0));
  g.add_peering(AsId(1), AsId(2));
  g.add_peering(AsId(2), AsId(3));
  g.add_peering(AsId(3), AsId(1));
  return g;
}

UtilizationFn no_congestion() {
  return [](LinkId) { return 0.0; };
}

TEST(BgpWalk, FollowsDefaultPath) {
  const AsGraph g = fig2a();
  const bgp::RouteStore routes(g, AsId(0));
  const auto w = bgp_walk(g, routes, AsId(1));
  ASSERT_TRUE(w.reachable);
  ASSERT_EQ(w.path.size(), 2u);
  EXPECT_EQ(w.path[0], AsId(1));
  EXPECT_EQ(w.path[1], AsId(0));
  ASSERT_EQ(w.links.size(), 1u);
  EXPECT_EQ(w.links[0], g.link(AsId(1), AsId(0)));
  EXPECT_EQ(w.deflections, 0u);
}

TEST(BgpWalk, UnreachableReportsFalse) {
  AsGraph g(3);
  g.add_peering(AsId(0), AsId(1));
  const bgp::RouteStore routes(g, AsId(2));
  EXPECT_FALSE(bgp_walk(g, routes, AsId(0)).reachable);
}

TEST(MifoWalk, NoCongestionEqualsDefault) {
  const AsGraph g = fig2a();
  const bgp::RouteStore routes(g, AsId(0));
  const std::vector<bool> all(4, true);
  const auto w = mifo_walk(g, routes, all, AsId(1), no_congestion());
  const auto d = bgp_walk(g, routes, AsId(1));
  EXPECT_EQ(w.path, d.path);
  EXPECT_EQ(w.deflections, 0u);
}

TEST(MifoWalk, DeflectsOffCongestedDefault) {
  const AsGraph g = fig2a();
  const bgp::RouteStore routes(g, AsId(0));
  const std::vector<bool> all(4, true);
  // Only AS1's direct link to AS0 is congested.
  const LinkId congested = g.link(AsId(1), AsId(0));
  const auto w = mifo_walk(
      g, routes, all, AsId(1),
      [congested](LinkId l) { return l == congested ? 0.95 : 0.0; });
  ASSERT_TRUE(w.reachable);
  // Deflects to a peer (source traffic is tagged), which forwards straight
  // down to the customer: 1 -> {2|3} -> 0.
  ASSERT_EQ(w.path.size(), 3u);
  EXPECT_EQ(w.path[0], AsId(1));
  EXPECT_EQ(w.path[2], AsId(0));
  EXPECT_EQ(w.deflections, 1u);
}

TEST(MifoWalk, NonDeployedAsNeverDeflects) {
  const AsGraph g = fig2a();
  const bgp::RouteStore routes(g, AsId(0));
  std::vector<bool> none(4, false);
  const LinkId congested = g.link(AsId(1), AsId(0));
  const auto w = mifo_walk(
      g, routes, none, AsId(1),
      [congested](LinkId l) { return l == congested ? 0.95 : 0.0; });
  // Stays on the congested default: AS1 is not MIFO-capable.
  ASSERT_EQ(w.path.size(), 2u);
  EXPECT_EQ(w.deflections, 0u);
}

TEST(MifoWalk, GreedyPicksMostSpareAlternative) {
  const AsGraph g = fig2a();
  const bgp::RouteStore routes(g, AsId(0));
  const std::vector<bool> all(4, true);
  const LinkId def = g.link(AsId(1), AsId(0));
  const LinkId via2 = g.link(AsId(1), AsId(2));
  const LinkId via3 = g.link(AsId(1), AsId(3));
  const auto w = mifo_walk(g, routes, all, AsId(1), [&](LinkId l) {
    if (l == def) return 0.95;
    if (l == via2) return 0.50;  // less spare
    if (l == via3) return 0.10;  // most spare -> chosen
    return 0.0;
  });
  ASSERT_GE(w.path.size(), 2u);
  EXPECT_EQ(w.path[1], AsId(3));
}

TEST(MifoWalk, StaysOnDefaultWhenAlternativesWorse) {
  const AsGraph g = fig2a();
  const bgp::RouteStore routes(g, AsId(0));
  const std::vector<bool> all(4, true);
  const LinkId def = g.link(AsId(1), AsId(0));
  const auto w = mifo_walk(g, routes, all, AsId(1), [&](LinkId l) {
    return l == def ? 0.8 : 0.99;  // defaults congested, alts worse
  });
  ASSERT_EQ(w.path.size(), 2u);
  EXPECT_EQ(w.path[1], AsId(0));
  EXPECT_EQ(w.deflections, 0u);
}

TEST(MifoWalk, MidPathTagBlocksSecondPeerHop) {
  // Source 1 deflects to peer 2; at 2 the packet is untagged, so 2 cannot
  // deflect to peer 3 even if its default (2->0) is congested — it must use
  // the customer link (the only admissible next hop).
  const AsGraph g = fig2a();
  const bgp::RouteStore routes(g, AsId(0));
  const std::vector<bool> all(4, true);
  const LinkId l10 = g.link(AsId(1), AsId(0));
  const LinkId l20 = g.link(AsId(2), AsId(0));
  const LinkId l13 = g.link(AsId(1), AsId(3));
  const auto w = mifo_walk(g, routes, all, AsId(1), [&](LinkId l) {
    if (l == l10 || l == l20) return 0.95;  // both defaults congested
    if (l == l13) return 0.99;              // keep 1 from choosing AS3
    return 0.0;
  });
  ASSERT_TRUE(w.reachable);
  // 1 -> 2 (deflection), then 2 -> 0 despite congestion (Eq. 3 gate).
  ASSERT_EQ(w.path.size(), 3u);
  EXPECT_EQ(w.path[1], AsId(2));
  EXPECT_EQ(w.path[2], AsId(0));
}

TEST(MifoWalk, EndToEndProbeSeesDownstreamCongestion) {
  // Dest 4 behind providers 2 and 3 of source... build: 1 -> {2,3} -> 4.
  // The local links 1->2 and 1->3 are both idle, but 2->4 is congested
  // downstream: the probing oracle must pick via 3; the local greedy cannot
  // tell them apart and keeps the (congested-default-triggering) choice by
  // id order.
  AsGraph g(5);
  g.add_provider_customer(AsId(2), AsId(1));
  g.add_provider_customer(AsId(3), AsId(1));
  g.add_provider_customer(AsId(2), AsId(4));
  g.add_provider_customer(AsId(3), AsId(4));
  g.add_provider_customer(AsId(2), AsId(0));  // extra AS keeps ids stable
  const bgp::RouteStore routes(g, AsId(4));
  ASSERT_EQ(routes.best(AsId(1)).next_hop, AsId(2));  // default via 2
  const std::vector<bool> all(5, true);
  const LinkId l24 = g.link(AsId(2), AsId(4));
  auto util = [l24](LinkId l) { return l == l24 ? 0.95 : 0.0; };

  WalkConfig local;
  local.selection = AltSelection::LocalGreedy;
  // Local greedy never deflects: the default *egress* 1->2 looks idle.
  const auto wl = mifo_walk(g, routes, all, AsId(1), util, local);
  EXPECT_EQ(wl.path[1], AsId(2));

  WalkConfig probe;
  probe.selection = AltSelection::EndToEndProbe;
  probe.congest_threshold = 0.7;
  // The probe cannot trigger either (deflection still keys off the local
  // egress queue — the paper's congestion signal); but when the default
  // egress IS congested, the probe ranks candidates by path bottleneck.
  const LinkId l12 = g.link(AsId(1), AsId(2));
  auto util2 = [l24, l12](LinkId l) {
    if (l == l12) return 0.9;   // default egress congested -> deflect
    if (l == l24) return 0.95;  // downstream of the default
    return 0.0;
  };
  const auto wp = mifo_walk(g, routes, all, AsId(1), util2, probe);
  ASSERT_GE(wp.path.size(), 2u);
  EXPECT_EQ(wp.path[1], AsId(3));  // avoids the congested downstream
  EXPECT_EQ(wp.deflections, 1u);
}

TEST(LinksOfPath, MapsPathToDirectedLinks) {
  const AsGraph g = fig2a();
  const auto links = links_of_path(g, {AsId(1), AsId(2), AsId(0)});
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], g.link(AsId(1), AsId(2)));
  EXPECT_EQ(links[1], g.link(AsId(2), AsId(0)));
  EXPECT_TRUE(links_of_path(g, {AsId(1)}).empty());
}

}  // namespace
}  // namespace mifo::core
