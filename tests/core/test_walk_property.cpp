// Empirical verification of the paper's theorem (Section III-A3): with the
// valley-free regulation on the data plane, multi-path forwarding is
// loop-free — under ANY congestion pattern, ANY deployment, ANY topology
// from the generator. The walk itself asserts the loop bound internally;
// these tests additionally verify termination at the destination, path
// validity and valley-freeness of every hop sequence.

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hpp"
#include "core/walk.hpp"
#include "topo/generator.hpp"
#include "topo/relationship.hpp"

namespace mifo::core {
namespace {

class WalkTheorem
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(WalkTheorem, AdversarialCongestionNeverLoops) {
  auto [n, seed] = GetParam();
  topo::GeneratorParams p;
  p.num_ases = n;
  p.seed = seed;
  const topo::AsGraph g = topo::generate_topology(p);

  Rng rng(seed * 977 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    // Random congestion: every link independently congested with
    // probability 1/2 (the paper's worst case congests every default).
    const double p_congest = trial == 0 ? 1.0 : rng.uniform();
    std::unordered_map<std::uint32_t, double> util;
    auto utilization = [&](LinkId l) -> double {
      auto [it, inserted] = util.try_emplace(l.value(), 0.0);
      if (inserted) {
        it->second = rng.bernoulli(p_congest) ? 0.9 + 0.1 * rng.uniform()
                                              : rng.uniform() * 0.5;
      }
      return it->second;
    };
    // Random deployment.
    const double ratio = rng.uniform();
    std::vector<bool> deployed(g.num_ases());
    for (std::size_t i = 0; i < deployed.size(); ++i) {
      deployed[i] = rng.bernoulli(ratio);
    }

    const AsId dest(static_cast<std::uint32_t>(rng.bounded(g.num_ases())));
    const bgp::RouteStore routes(g, dest);
    for (std::uint32_t s = 0; s < g.num_ases(); s += 3) {
      if (AsId(s) == dest) continue;
      const auto w =
          mifo_walk(g, routes, deployed, AsId(s), utilization);
      if (!routes.best(AsId(s)).valid()) {
        ASSERT_FALSE(w.reachable);
        continue;
      }
      // (1) terminates at the destination;
      ASSERT_TRUE(w.reachable);
      ASSERT_EQ(w.path.back(), dest);
      // (2) every hop is a real adjacency whose next AS holds a route;
      for (std::size_t i = 0; i + 1 < w.path.size(); ++i) {
        ASSERT_TRUE(g.adjacent(w.path[i], w.path[i + 1]));
        ASSERT_TRUE(routes.best(w.path[i + 1]).valid());
      }
      // (3) the hop sequence is valley-free (the theorem's invariant);
      std::vector<topo::StepDir> steps;
      for (std::size_t i = 0; i + 1 < w.path.size(); ++i) {
        steps.push_back(topo::step_dir(*g.rel(w.path[i], w.path[i + 1])));
      }
      ASSERT_TRUE(topo::is_valley_free(steps));
      // (4) no AS appears more than twice (once per phase).
      std::unordered_map<std::uint32_t, int> visits;
      for (const AsId as : w.path) {
        ASSERT_LE(++visits[as.value()], 2);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TopologySweep, WalkTheorem,
    ::testing::Combine(::testing::Values<std::size_t>(30, 100, 300),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 4)));

TEST(WalkTheorem, ProbeSelectionIsAlsoLoopFree) {
  // The loop-freedom theorem depends only on the Tag-Check gate, not on
  // how alternatives are scored: the probing oracle must be safe too.
  topo::GeneratorParams p;
  p.num_ases = 120;
  p.seed = 77;
  const topo::AsGraph g = topo::generate_topology(p);
  const std::vector<bool> all(g.num_ases(), true);
  const bgp::RouteStore routes(g, AsId(3));
  Rng rng(99);
  std::unordered_map<std::uint32_t, double> util_map;
  auto util = [&](LinkId l) -> double {
    auto [it, inserted] = util_map.try_emplace(l.value(), 0.0);
    if (inserted) it->second = rng.bernoulli(0.5) ? 0.95 : 0.2;
    return it->second;
  };
  WalkConfig cfg;
  cfg.selection = AltSelection::EndToEndProbe;
  for (std::uint32_t s = 0; s < g.num_ases(); s += 2) {
    if (AsId(s) == AsId(3)) continue;
    const auto w = mifo_walk(g, routes, all, AsId(s), util, cfg);
    if (routes.best(AsId(s)).valid()) {
      ASSERT_TRUE(w.reachable);
      ASSERT_EQ(w.path.back(), AsId(3));
    }
  }
}

TEST(WalkTheorem, FullCongestionFullDeploymentStillDelivers) {
  // Everything congested, everything deployed: MIFO may deflect at every
  // hop, yet every reachable pair still gets a loop-free path.
  topo::GeneratorParams p;
  p.num_ases = 200;
  p.seed = 42;
  const topo::AsGraph g = topo::generate_topology(p);
  const std::vector<bool> all(g.num_ases(), true);
  const bgp::RouteStore routes(g, AsId(0));
  std::size_t delivered = 0;
  for (std::uint32_t s = 1; s < g.num_ases(); ++s) {
    const auto w = mifo_walk(g, routes, all, AsId(s),
                             [](LinkId) { return 1.0; });
    if (w.reachable) {
      ++delivered;
      EXPECT_EQ(w.path.back(), AsId(0));
    }
  }
  EXPECT_EQ(delivered, routes.num_reachable() - 1);
}

}  // namespace
}  // namespace mifo::core
