#include "common/types.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

namespace mifo {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  AsId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, AsId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  AsId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(AsId(1), AsId(2));
  EXPECT_EQ(AsId(3), AsId(3));
  EXPECT_NE(AsId(3), AsId(4));
}

TEST(StrongId, DistinctTagTypesDoNotMix) {
  // Compile-time property: AsId and RouterId are unrelated types.
  static_assert(!std::is_same_v<AsId, RouterId>);
  static_assert(!std::is_convertible_v<AsId, RouterId>);
  SUCCEED();
}

TEST(StrongId, Hashable) {
  std::unordered_set<AsId> set;
  set.insert(AsId(1));
  set.insert(AsId(2));
  set.insert(AsId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Units, ToMegabits) {
  EXPECT_DOUBLE_EQ(to_megabits(1'000'000), 8.0);
  EXPECT_DOUBLE_EQ(to_megabits(0), 0.0);
}

TEST(Units, TransferSeconds) {
  // 1 MB at 8 Mbps takes 1 second.
  EXPECT_DOUBLE_EQ(transfer_seconds(1'000'000, 8.0), 1.0);
  // 10 MB flow at 1 Gbps: 80 ms — the paper's nominal best case.
  EXPECT_NEAR(transfer_seconds(10 * kMegaByte, kGigabit), 0.08, 1e-12);
  EXPECT_TRUE(std::isinf(transfer_seconds(1, 0.0)));
}

}  // namespace
}  // namespace mifo
