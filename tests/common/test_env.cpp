#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace mifo {
namespace {

TEST(Env, U64Fallback) {
  ::unsetenv("MIFO_TEST_U64");
  EXPECT_EQ(env_u64("MIFO_TEST_U64", 42), 42u);
}

TEST(Env, U64Parses) {
  ::setenv("MIFO_TEST_U64", "1234", 1);
  EXPECT_EQ(env_u64("MIFO_TEST_U64", 0), 1234u);
  ::unsetenv("MIFO_TEST_U64");
}

TEST(Env, U64GarbageFallsBack) {
  ::setenv("MIFO_TEST_U64", "12x", 1);
  EXPECT_EQ(env_u64("MIFO_TEST_U64", 9), 9u);
  ::setenv("MIFO_TEST_U64", "", 1);
  EXPECT_EQ(env_u64("MIFO_TEST_U64", 9), 9u);
  ::unsetenv("MIFO_TEST_U64");
}

TEST(Env, DoubleParses) {
  ::setenv("MIFO_TEST_D", "0.75", 1);
  EXPECT_DOUBLE_EQ(env_double("MIFO_TEST_D", 0.0), 0.75);
  ::unsetenv("MIFO_TEST_D");
  EXPECT_DOUBLE_EQ(env_double("MIFO_TEST_D", 0.5), 0.5);
}

TEST(Env, StringParses) {
  ::setenv("MIFO_TEST_S", "hello", 1);
  EXPECT_EQ(env_string("MIFO_TEST_S", "x"), "hello");
  ::unsetenv("MIFO_TEST_S");
  EXPECT_EQ(env_string("MIFO_TEST_S", "fallback"), "fallback");
}

}  // namespace
}  // namespace mifo
