#include "common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

namespace mifo {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, PushPopFifoSingleThread) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_FALSE(ring.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(std::uint64_t{i}));
    // Keep a fluctuating backlog (0-2 items) so head/tail wrap the 4-slot
    // buffer hundreds of times at varying offsets.
    while (ring.size() > i % 3) {
      std::uint64_t out = 0;
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, expect++);
    }
  }
  std::uint64_t out = 0;
  while (ring.try_pop(out)) EXPECT_EQ(out, expect++);
  EXPECT_EQ(expect, 1000u);
}

TEST(SpscRing, DrainIntoAppendsInOrder) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  std::vector<int> out{-1};
  EXPECT_EQ(ring.drain_into(out), 5u);
  EXPECT_EQ(out, (std::vector<int>{-1, 0, 1, 2, 3, 4}));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MoveOnlyPayloads) {
  SpscRing<std::unique_ptr<std::string>> ring(4);
  ASSERT_TRUE(ring.try_push(std::make_unique<std::string>("hello")));
  std::unique_ptr<std::string> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, "hello");
}

// One producer, one consumer, full backpressure: every value arrives exactly
// once, in order. Run under TSan by scripts/check.sh.
TEST(SpscRing, ConcurrentProducerConsumerPreservesFifo) {
  constexpr std::uint64_t kCount = 50000;
  SpscRing<std::uint64_t> ring(256);
  std::uint64_t sum = 0;
  std::thread consumer([&] {
    std::uint64_t expect = 0;
    std::uint64_t v = 0;
    while (expect < kCount) {
      if (ring.try_pop(v)) {
        ASSERT_EQ(v, expect);
        sum += v;
        ++expect;
      }
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!ring.try_push(std::uint64_t{i})) {
    }
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace mifo
